package lightwsp_test

import (
	"context"
	"fmt"

	"lightwsp"
)

// Example demonstrates the package's core promise: run ordinary code, cut
// the power anywhere, recover, and the persisted data is exactly what a
// failure-free run produces.
func Example() {
	ctx := context.Background()
	b := lightwsp.NewProgramBuilder("example")
	b.Func("main")
	b.MovImm(1, 0x1000) // pointer
	b.MovImm(2, 0)      // i
	b.MovImm(3, 10)     // limit
	loop := b.NewBlock()
	b.Store(1, 0, 2)
	b.AddImm(1, 1, 8)
	b.AddImm(2, 2, 1)
	b.CmpLT(4, 2, 3)
	b.Branch(4, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	prog, err := b.Build()
	if err != nil {
		panic(err)
	}

	rt, err := lightwsp.Open(prog)
	if err != nil {
		panic(err)
	}
	clean, err := rt.Run(ctx, 1_000_000)
	if err != nil {
		panic(err)
	}
	res, err := rt.RunWithFailure(ctx, clean.Stats.Cycles/2, 1_000_000)
	if err != nil {
		panic(err)
	}
	if err := lightwsp.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
		panic(err)
	}
	fmt.Println("failed:", res.Failed)
	fmt.Println("last word:", res.Recovered.PM().Read(0x1000+9*8))
	// Output:
	// failed: true
	// last word: 9
}

// ExampleOpen shows the functional-options entry point: configuration
// layers over defaults, and a metrics sink rides along on the run.
func ExampleOpen() {
	b := lightwsp.NewProgramBuilder("open")
	b.Func("main")
	b.MovImm(1, 0x2000)
	b.MovImm(2, 7)
	b.Store(1, 0, 2)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		panic(err)
	}

	cfg := lightwsp.DefaultConfig()
	cfg.Threads = 1
	m := lightwsp.NewMetrics()
	rt, err := lightwsp.Open(prog,
		lightwsp.WithConfig(cfg),
		lightwsp.WithMetrics(m),
	)
	if err != nil {
		panic(err)
	}
	sys, err := rt.Run(context.Background(), 1_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("value:", sys.PM().Read(0x2000))
	fmt.Println("regions closed:", m.Snapshot().RegionsClosed > 0)
	// Output:
	// value: 7
	// regions closed: true
}
