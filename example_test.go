package lightwsp_test

import (
	"fmt"

	"lightwsp"
)

// Example demonstrates the package's core promise: run ordinary code, cut
// the power anywhere, recover, and the persisted data is exactly what a
// failure-free run produces.
func Example() {
	b := lightwsp.NewProgramBuilder("example")
	b.Func("main")
	b.MovImm(1, 0x1000) // pointer
	b.MovImm(2, 0)      // i
	b.MovImm(3, 10)     // limit
	loop := b.NewBlock()
	b.Store(1, 0, 2)
	b.AddImm(1, 1, 8)
	b.AddImm(2, 2, 1)
	b.CmpLT(4, 2, 3)
	b.Branch(4, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	prog, err := b.Build()
	if err != nil {
		panic(err)
	}

	rt, err := lightwsp.New(prog, lightwsp.CompilerConfig{}, lightwsp.DefaultConfig())
	if err != nil {
		panic(err)
	}
	clean, err := rt.RunToCompletion(1_000_000)
	if err != nil {
		panic(err)
	}
	res, err := rt.RunWithFailure(clean.Stats.Cycles/2, 1_000_000)
	if err != nil {
		panic(err)
	}
	if err := lightwsp.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
		panic(err)
	}
	fmt.Println("failed:", res.Failed)
	fmt.Println("last word:", res.Recovered.PM().Read(0x1000+9*8))
	// Output:
	// failed: true
	// last word: 9
}
