// Command lightwsp-client is the CLI face of the lightwsp/client package:
// one binary that exercises every serving endpoint, built for smoke tests
// and operators poking at a node or a fleet front.
//
//	lightwsp-client -server http://127.0.0.1:8080 run -suite cpu2006 -app fuzz-st
//	lightwsp-client stream -suite cpu2006 -app fuzz-st          # raw NDJSON
//	lightwsp-client session-create -id alpha -suite cpu2006 -app fuzz-st
//	lightwsp-client advance -id alpha -target 10000             # raw NDJSON
//	lightwsp-client resume -id alpha -last-seq 0                # raw NDJSON
//
// -server defaults to $LIGHTWSP_SERVER. Streaming verbs pass the server's
// NDJSON lines through verbatim, so byte-identity checks (resume replay,
// cross-node rehash) are a plain diff of two invocations' outputs. Typed
// verbs print the response JSON. Exit status: 0 on success, 1 on any API
// or transport error (the error, with its HTTP status, goes to stderr).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lightwsp/client"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// usage lists the verbs; per-verb flags print via -h on the verb.
func usage() {
	fmt.Fprint(os.Stderr, `usage: lightwsp-client [-server URL] [-trace ID] [-timeout D] [-retries N] <verb> [verb flags]

verbs:
  health                         probe /healthz
  stats                          print the /stats snapshot
  run                            one cached run (-suite -app [-scheme])
  stream                         one fresh run, raw NDJSON to stdout
  run-with-failure               power-cut round trip (-suite -app -fail-cycle)
  crashfuzz                      fuzz campaign (-suite -app [-cuts -seed])
  session-create                 create a session (-id -suite -app [-scheme -snapshot-every])
  session-get                    one session's status (-id)
  session-list                   every open session
  session-delete                 remove a session (-id)
  advance                        advance a session, raw NDJSON (-id -target)
  resume                         replay a session stream, raw NDJSON (-id [-last-seq])
`)
}

func run(args []string) int {
	global := flag.NewFlagSet("lightwsp-client", flag.ExitOnError)
	global.Usage = usage
	var (
		server = global.String("server", os.Getenv("LIGHTWSP_SERVER"),
			"server or lb base URL (defaults to $LIGHTWSP_SERVER)")
		trace   = global.String("trace", "", "pin the request's X-LightWSP-Trace identity")
		timeout = global.Duration("timeout", 0, "per-call deadline (propagated to the server)")
		retries = global.Int("retries", 0, "retry saturated/unavailable answers this many times")
	)
	global.Parse(args)
	if global.NArg() == 0 {
		usage()
		return 2
	}
	if *server == "" {
		fmt.Fprintln(os.Stderr, "lightwsp-client: -server (or $LIGHTWSP_SERVER) is required")
		return 2
	}
	var opts []client.CallOption
	if *trace != "" {
		opts = append(opts, client.WithTrace(*trace))
	}
	if *timeout > 0 {
		opts = append(opts, client.WithDeadline(*timeout))
	}
	if *retries > 0 {
		opts = append(opts, client.WithRetry(*retries))
	}

	c := client.New(*server)
	verb, rest := global.Arg(0), global.Args()[1:]
	if err := dispatch(context.Background(), c, verb, rest, opts); err != nil {
		fmt.Fprintf(os.Stderr, "lightwsp-client: %s: %v\n", verb, err)
		return 1
	}
	return 0
}

// passthrough streams raw NDJSON lines to stdout unmodified.
func passthrough(ev client.StreamEvent) error {
	_, err := fmt.Printf("%s\n", ev.Raw)
	return err
}

// printJSON renders a typed response for the terminal.
func printJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func dispatch(ctx context.Context, c *client.Client, verb string, args []string, opts []client.CallOption) error {
	fs := flag.NewFlagSet(verb, flag.ExitOnError)
	var (
		suite  = fs.String("suite", "", "workload suite")
		app    = fs.String("app", "", "workload app")
		scheme = fs.String("scheme", "", "persistence scheme (empty: lightwsp)")
		id     = fs.String("id", "", "session ID")
	)
	switch verb {
	case "health":
		fs.Parse(args)
		if err := c.Health(ctx, opts...); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil

	case "stats":
		fs.Parse(args)
		st, err := c.Stats(ctx, opts...)
		if err != nil {
			return err
		}
		return printJSON(st)

	case "run":
		fs.Parse(args)
		res, err := c.Run(ctx, *suite, *app, *scheme, opts...)
		if err != nil {
			return err
		}
		return printJSON(res)

	case "stream":
		fs.Parse(args)
		return c.RunStream(ctx, *suite, *app, *scheme, passthrough, opts...)

	case "run-with-failure":
		failCycle := fs.Uint64("fail-cycle", 0, "power-cut cycle")
		fs.Parse(args)
		res, err := c.RunWithFailure(ctx, *suite, *app, *failCycle, opts...)
		if err != nil {
			return err
		}
		return printJSON(res)

	case "crashfuzz":
		cuts := fs.Int("cuts", 0, "power cuts per schedule (0: server default)")
		seed := fs.Int64("seed", 0, "sampled-mode seed (0: server default)")
		fs.Parse(args)
		res, err := c.Crashfuzz(ctx, client.CrashfuzzSpec{
			Suite: *suite, App: *app, Cuts: *cuts, Seed: *seed,
		}, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", res.Raw)
		return nil

	case "session-create":
		every := fs.Uint64("snapshot-every", 0, "snapshot cadence in cycles (0: server default)")
		fs.Parse(args)
		st, err := c.CreateSession(ctx, *id, client.SessionSpec{
			Suite: *suite, App: *app, Scheme: *scheme, SnapshotEvery: *every,
		}, opts...)
		if err != nil {
			return err
		}
		return printJSON(st)

	case "session-get":
		fs.Parse(args)
		st, err := c.Session(ctx, *id, opts...)
		if err != nil {
			return err
		}
		return printJSON(st)

	case "session-list":
		fs.Parse(args)
		list, err := c.Sessions(ctx, opts...)
		if err != nil {
			return err
		}
		return printJSON(list)

	case "session-delete":
		fs.Parse(args)
		if err := c.DeleteSession(ctx, *id, opts...); err != nil {
			return err
		}
		fmt.Println("removed", *id)
		return nil

	case "advance":
		target := fs.Uint64("target", 0, "session-total cycle to run until")
		fs.Parse(args)
		return c.Advance(ctx, *id, *target, passthrough, opts...)

	case "resume":
		lastSeq := fs.Uint64("last-seq", 0, "highest event seq already seen")
		fs.Parse(args)
		return c.Resume(ctx, *id, *lastSeq, passthrough, opts...)

	default:
		usage()
		return fmt.Errorf("unknown verb %q", verb)
	}
}
