// Command lightwsp-admin is the storage operator's toolbox for the durable
// layer. It has two verbs:
//
//	lightwsp-admin scrub -dir CACHEDIR [-quota BYTES] [-json]
//	lightwsp-admin scrub -sessions STOREDIR [-quota BYTES] [-json]
//	lightwsp-admin diskfuzz [-seed N] [-rounds N] [-legs N]
//	    [-disk-faults PLAN] [-skip-verify] [-out DIR] [-json FILE] [-v]
//
// scrub walks a blob store, verifies every entry's integrity seal,
// quarantines corrupt entries, evicts legacy/stale ones, garbage-collects
// blobs no session manifest references (-sessions mode), and enforces an
// optional size quota — the offline face of the self-healing the serving
// path performs lazily on every read.
//
// diskfuzz runs a hostile-disk fuzzing campaign (internal/diskfuzz): the
// durable-session and blob-cache stacks over an in-memory disk that injects
// ENOSPC, transient EIO, torn writes, lying fsyncs and digit-flipping power
// cuts, diffing every replay against a failure-free oracle. -skip-verify is
// the sabotage mode that proves the campaign catches what it claims.
//
// Exit status: 0 — clean; 1 — diskfuzz found silent corruption; 2 — usage
// or execution error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lightwsp/internal/cli"
	"lightwsp/internal/diskfuzz"
	"lightwsp/internal/experiments"
	"lightwsp/internal/hostfs"
	"lightwsp/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "scrub":
		os.Exit(runScrub(os.Args[2:]))
	case "diskfuzz":
		os.Exit(runDiskfuzz(os.Args[2:]))
	case "help", "-h", "-help", "--help":
		usage()
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "unknown verb %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  lightwsp-admin scrub -dir CACHEDIR | -sessions STOREDIR [-quota BYTES] [-json]
  lightwsp-admin diskfuzz [-seed N] [-rounds N] [-legs N] [-disk-faults PLAN]
      [-skip-verify] [-out DIR] [-json FILE] [-v]`)
}

// runScrub verifies, quarantines and garbage-collects one blob store.
func runScrub(args []string) int {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	var common cli.Common
	common.RegisterLogging(fs)
	var (
		dir      = fs.String("dir", "", "bare blob-cache directory to scrub (e.g. a result cache)")
		sessions = fs.String("sessions", "", "session store root to scrub (protects manifest-referenced snapshots)")
		quota    = fs.Int64("quota", 0, "size quota in bytes; unreferenced survivors are evicted oldest-first (0: unbounded)")
		asJSON   = fs.Bool("json", false, "print the report as JSON")
	)
	fs.Parse(args)
	if (*dir == "") == (*sessions == "") {
		fmt.Fprintln(os.Stderr, "scrub: exactly one of -dir or -sessions is required")
		return 2
	}
	log, err := common.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var rep experiments.ScrubReport
	target := *dir
	if *sessions != "" {
		target = *sessions
		st, err := experiments.OpenSessionStore(*sessions)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scrub: %v\n", err)
			return 2
		}
		defer st.Close()
		st.SetObserver(log, nil)
		rep, err = st.Scrub(*quota)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scrub: %v\n", err)
			return 2
		}
	} else {
		rep, err = experiments.ScrubStore(hostfs.Disk(), *dir, experiments.ScrubOptions{
			QuotaBytes: *quota,
			Log:        log,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "scrub: %v\n", err)
			return 2
		}
	}

	if *asJSON {
		b, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(b))
		return 0
	}
	t := &stats.Table{Title: "scrub " + target, Columns: []string{"metric", "value"}}
	t.Add("scanned", rep.Scanned)
	t.Add("kept", fmt.Sprintf("%d (%d bytes)", rep.Kept, rep.KeptBytes))
	t.Add("quarantined", rep.Quarantined)
	t.Add("removed legacy", rep.RemovedLegacy)
	t.Add("removed stale", rep.RemovedStale)
	t.Add("removed unreferenced", rep.RemovedUnreferenced)
	t.Add("removed temp", rep.RemovedTemp)
	t.Add("removed for quota", rep.RemovedQuota)
	fmt.Println(t)
	return 0
}

// runDiskfuzz executes one hostile-disk campaign and reports its verdict.
func runDiskfuzz(args []string) int {
	fs := flag.NewFlagSet("diskfuzz", flag.ExitOnError)
	var faults cli.DiskFaults
	faults.Register(fs)
	var (
		rounds     = fs.Int("rounds", diskfuzz.DefaultRounds, "campaign rounds including the round-0 control")
		legs       = fs.Int("legs", diskfuzz.DefaultLegs, "crash/reopen cycles per round")
		skipVerify = fs.Bool("skip-verify", false, "disable checksum verification (sabotage mode: silent corruption becomes reachable)")
		outDir     = fs.String("out", "", "directory for manifest.json and violation repro files (empty: none written)")
		jsonPath   = fs.String("json", "", "also write the campaign manifest to this file as JSON")
		verbose    = fs.Bool("v", false, "print per-round progress lines")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "diskfuzz: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if _, err := faults.Plan(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cfg := diskfuzz.Config{
		Seed:       faults.Seed,
		Rounds:     *rounds,
		Legs:       *legs,
		PlanSpec:   faults.Spec,
		SkipVerify: *skipVerify,
		OutDir:     *outDir,
	}
	if *verbose {
		cfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	res, err := diskfuzz.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diskfuzz: %v\n", err)
		return 2
	}
	fmt.Println(res)
	if *jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "\t")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if res.SilentCorruptions > 0 {
		fmt.Fprintf(os.Stderr, "diskfuzz: %d silent corruption(s) — see %s\n", res.SilentCorruptions, *outDir)
		return 1
	}
	return 0
}
