// Command lightwsp-bench runs the paper's evaluation experiments and prints
// each reproduced table or figure. With no positional arguments it runs
// everything; otherwise arguments name the experiments to run (fig7 fig8
// fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 tab2 regions
// hwcost recovery crashfuzz ablation-lrpo ablation-compiler). The stepper
// benchmark "corebench" is opt-in: name it explicitly (with -core-json,
// -core-apps, -core-min-speedup) to time the event/epoch fast path against
// the naive per-cycle stepper.
//
// The evaluation grid is embarrassingly parallel: every driver declares its
// run set up front and distinct simulations fan out across a worker pool
// (-j, default GOMAXPROCS). With -cache DIR (or LIGHTWSP_CACHE_DIR set),
// completed runs persist to disk and later invocations skip them entirely.
// Parallelism and caching never change a reproduced number: results are
// keyed by a canonical content hash and aggregated in deterministic order.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"lightwsp/internal/cli"
	"lightwsp/internal/crashfuzz"
	"lightwsp/internal/experiments"
	"lightwsp/internal/faults"
	"lightwsp/internal/metrics"
	"lightwsp/internal/workload"
)

// benchReport is the machine-readable summary written by -json: the
// perf-trajectory record of one full invocation.
type benchReport struct {
	// TotalRuns is the number of distinct simulations resolved.
	TotalRuns int `json:"total_runs"`
	// FreshRuns is how many of those were actually simulated.
	FreshRuns int `json:"fresh_runs"`
	// DiskCacheHits is how many were loaded from the persistent cache.
	DiskCacheHits int `json:"disk_cache_hits"`
	// MemCacheHits counts Run calls served by the in-memory memo table.
	MemCacheHits int `json:"mem_cache_hits"`
	// Workers is the worker-pool size used.
	Workers int `json:"workers"`
	// WallSeconds is the end-to-end wall time of the invocation.
	WallSeconds float64 `json:"wall_seconds"`
	// Experiments lists the experiments executed, in order.
	Experiments []string `json:"experiments"`
	// Metrics aggregates every resolved run's probe metrics (counters sum,
	// histogram buckets merge exactly), rendering suite-wide p50/p90/p99.
	Metrics metrics.Snapshot `json:"metrics"`
	// Runs holds one provenance manifest per distinct resolved run: key
	// hash, fresh/cached source, wall time, git describe, per-run metrics.
	Runs []experiments.RunManifest `json:"runs"`
}

func main() {
	var common cli.Common
	common.Register(flag.CommandLine)
	jsonPath := flag.String("json", "",
		"write a machine-readable run summary (e.g. BENCH_runner.json)")
	timelineDir := flag.String("timeline-dir", "",
		"write one Chrome trace-event timeline per fresh simulation into this directory")
	coreJSON := flag.String("core-json", "",
		"corebench: write the stepper benchmark report (e.g. BENCH_core.json)")
	coreApps := flag.String("core-apps", "",
		"corebench: comma-separated application subset (default: all evaluation profiles)")
	coreMinSpeedup := flag.Float64("core-min-speedup", 0,
		"corebench: fail unless the geomean fast-path speedup reaches this factor (0 disables)")
	flag.Parse()
	log, err := common.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	plan, err := common.Plan()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	all := len(want) == 0

	r := common.NewRunner()
	r.SetTimelineDir(*timelineDir)

	// The experiments registry plus the drivers that cannot live there
	// (crashfuzz imports internal/experiments) or are opt-in only (the
	// stepper benchmark doubles every run, so "run everything" skips it).
	type exp struct {
		name  string
		optIn bool
		run   func() (fmt.Stringer, error)
	}
	var exps []exp
	for _, e := range experiments.Registry() {
		e := e
		exps = append(exps, exp{e.Name, false, func() (fmt.Stringer, error) { return e.Run(r) }})
	}
	exps = append(exps, exp{"crashfuzz", false, func() (fmt.Stringer, error) { return crashfuzzSmoke(common.Workers, plan) }})
	exps = append(exps, exp{"corebench", true, func() (fmt.Stringer, error) {
		return coreBench(*coreApps, *coreJSON, *coreMinSpeedup)
	}})
	known := map[string]bool{}
	for _, e := range exps {
		known[e.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid names:", name)
			for _, e := range exps {
				fmt.Fprintf(os.Stderr, " %s", e.name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
	}

	start := time.Now()
	var ran []string
	for _, e := range exps {
		if !want[e.name] && (!all || e.optIn) {
			continue
		}
		expStart := time.Now()
		res, err := e.run()
		if err != nil {
			log.Error("experiment failed", "experiment", e.name, "error", err)
			os.Exit(1)
		}
		log.Debug("experiment done", "experiment", e.name,
			"wall_s", time.Since(expStart).Seconds())
		ran = append(ran, e.name)
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.name, time.Since(expStart).Seconds(), res)
	}

	c := r.Counters()
	if common.Verbose {
		log.Info("runner summary",
			"runs", c.Fresh+c.DiskHits, "fresh", c.Fresh, "disk_hits", c.DiskHits,
			"memo_hits", c.MemHits, "workers", common.Workers,
			"wall_s", time.Since(start).Seconds())
		fmt.Fprint(os.Stderr, experiments.AggregateMetrics(r.Manifests()).String())
	}
	if *jsonPath != "" {
		runs := r.Manifests()
		rep := benchReport{
			TotalRuns:     c.Fresh + c.DiskHits,
			FreshRuns:     c.Fresh,
			DiskCacheHits: c.DiskHits,
			MemCacheHits:  c.MemHits,
			Workers:       common.Workers,
			WallSeconds:   time.Since(start).Seconds(),
			Experiments:   ran,
			Metrics:       experiments.AggregateMetrics(runs),
			Runs:          runs,
		}
		data, err := json.MarshalIndent(rep, "", "\t")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// coreBench runs the event/epoch stepper benchmark over the selected
// applications, writes the JSON report if asked, and enforces the speedup
// guardrail.
func coreBench(apps, jsonPath string, minSpeedup float64) (fmt.Stringer, error) {
	profiles, err := experiments.CoreBenchProfiles(apps)
	if err != nil {
		return nil, err
	}
	rep, err := experiments.CoreBench(context.Background(), profiles)
	if err != nil {
		return nil, err
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "\t")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	if minSpeedup > 0 && rep.GeomeanSpeedup < minSpeedup {
		return nil, fmt.Errorf("corebench: geomean speedup %.2fx below the %.2fx guardrail",
			rep.GeomeanSpeedup, minSpeedup)
	}
	return rep, nil
}

// crashfuzzResults renders a batch of crash-consistency campaigns.
type crashfuzzResults []*crashfuzz.Result

func (rs crashfuzzResults) String() string {
	s := ""
	for i, r := range rs {
		if i > 0 {
			s += "\n"
		}
		s += r.String()
	}
	return s
}

// crashfuzzSmoke runs the exhaustive crash-consistency smoke campaigns: every
// cycle of each miniature fuzz profile is a power-cut point, with a two-cut
// pass over the single-threaded profile to cover failure during recovery. An
// enabled fault plan (-faults) additionally subjects every replay segment to
// persist-fabric faults; the oracle stays fault-free. Any divergence is an
// error — the harness's job in the bench grid is to prove there are none.
func crashfuzzSmoke(workers int, plan faults.Plan) (fmt.Stringer, error) {
	pool := experiments.NewPool(workers)
	var out crashfuzzResults
	for _, p := range workload.FuzzSmokeProfiles() {
		for cuts := 1; cuts <= 2; cuts++ {
			res, err := crashfuzz.Run(crashfuzz.Config{
				Profile: p,
				Cuts:    cuts,
				Seed:    1,
				Faults:  plan,
				Pool:    pool,
			})
			if err != nil {
				return nil, err
			}
			if res.Divergences > 0 {
				return nil, fmt.Errorf("crashfuzz: %s/%s (%d cuts): %d divergence(s)",
					p.Suite, p.Name, cuts, res.Divergences)
			}
			out = append(out, res)
		}
	}
	return out, nil
}
