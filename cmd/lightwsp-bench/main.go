// Command lightwsp-bench runs the paper's evaluation experiments and prints
// each reproduced table or figure. With no positional arguments it runs
// everything; otherwise arguments name the experiments to run (fig7 fig8
// fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 tab2 regions
// hwcost recovery crashfuzz ablation-lrpo ablation-compiler).
//
// The evaluation grid is embarrassingly parallel: every driver declares its
// run set up front and distinct simulations fan out across a worker pool
// (-j, default GOMAXPROCS). With -cache DIR (or LIGHTWSP_CACHE_DIR set),
// completed runs persist to disk and later invocations skip them entirely.
// Parallelism and caching never change a reproduced number: results are
// keyed by a canonical content hash and aggregated in deterministic order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lightwsp/internal/crashfuzz"
	"lightwsp/internal/experiments"
	"lightwsp/internal/faults"
	"lightwsp/internal/metrics"
	"lightwsp/internal/workload"
)

// benchReport is the machine-readable summary written by -json: the
// perf-trajectory record of one full invocation.
type benchReport struct {
	// TotalRuns is the number of distinct simulations resolved.
	TotalRuns int `json:"total_runs"`
	// FreshRuns is how many of those were actually simulated.
	FreshRuns int `json:"fresh_runs"`
	// DiskCacheHits is how many were loaded from the persistent cache.
	DiskCacheHits int `json:"disk_cache_hits"`
	// MemCacheHits counts Run calls served by the in-memory memo table.
	MemCacheHits int `json:"mem_cache_hits"`
	// Workers is the worker-pool size used.
	Workers int `json:"workers"`
	// WallSeconds is the end-to-end wall time of the invocation.
	WallSeconds float64 `json:"wall_seconds"`
	// Experiments lists the experiments executed, in order.
	Experiments []string `json:"experiments"`
	// Metrics aggregates every resolved run's probe metrics (counters sum,
	// histogram buckets merge exactly), rendering suite-wide p50/p90/p99.
	Metrics metrics.Snapshot `json:"metrics"`
	// Runs holds one provenance manifest per distinct resolved run: key
	// hash, fresh/cached source, wall time, git describe, per-run metrics.
	Runs []experiments.RunManifest `json:"runs"`
}

func main() {
	var (
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "simulation worker-pool size")
		cacheDir = flag.String("cache", os.Getenv(experiments.CacheDirEnv),
			"persistent result-cache directory (empty disables; defaults to $"+experiments.CacheDirEnv+")")
		verbose = flag.Bool("v", os.Getenv("BENCH_VERBOSE") != "",
			"print one progress line per resolved run (run key, fresh/cached, wall time)")
		jsonPath = flag.String("json", "",
			"write a machine-readable run summary (e.g. BENCH_runner.json)")
		timelineDir = flag.String("timeline-dir", "",
			"write one Chrome trace-event timeline per fresh simulation into this directory")
		faultsFlag = flag.String("faults", "",
			"persist-fabric fault plan for the crashfuzz experiment, e.g. "+
				"\"drop=10,dup=5,delay=20:48,reorder=5,stuck=1@100+500\" (empty/none: perfect fabric)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault plan's hashed decisions")
	)
	flag.Parse()

	plan, err := faults.ParsePlan(*faultsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	plan.Seed = *faultSeed

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	all := len(want) == 0

	r := experiments.NewRunner()
	r.SetWorkers(*workers)
	r.SetCacheDir(*cacheDir)
	r.SetTimelineDir(*timelineDir)
	if *verbose {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	type exp struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	exps := []exp{
		{"fig7", func() (fmt.Stringer, error) { return experiments.Fig7(r) }},
		{"fig8", func() (fmt.Stringer, error) { return experiments.Fig8(r) }},
		{"fig9", func() (fmt.Stringer, error) { return experiments.Fig9(r) }},
		{"fig10", func() (fmt.Stringer, error) { return experiments.Fig10(r) }},
		{"fig11", func() (fmt.Stringer, error) { return experiments.Fig11(r) }},
		{"fig12", func() (fmt.Stringer, error) { return experiments.Fig12(r) }},
		{"fig13", func() (fmt.Stringer, error) { return experiments.Fig13(r) }},
		{"fig14", func() (fmt.Stringer, error) { return experiments.Fig14(r) }},
		{"fig15", func() (fmt.Stringer, error) { return experiments.Fig15(r) }},
		{"fig16", func() (fmt.Stringer, error) { return experiments.Fig16(r) }},
		{"fig17", func() (fmt.Stringer, error) { return experiments.Fig17(r) }},
		{"fig18", func() (fmt.Stringer, error) { return experiments.Fig18(r) }},
		{"tab2", func() (fmt.Stringer, error) { return experiments.Table2(r) }},
		{"regions", func() (fmt.Stringer, error) { return experiments.RegionStats(r) }},
		{"hwcost", func() (fmt.Stringer, error) { return experiments.HWCost(8, 2), nil }},
		{"recovery", func() (fmt.Stringer, error) { return experiments.RecoverySweep(10) }},
		{"crashfuzz", func() (fmt.Stringer, error) { return crashfuzzSmoke(*workers, plan) }},
		{"ablation-lrpo", func() (fmt.Stringer, error) { return experiments.AblationLRPO(r) }},
		{"ablation-compiler", func() (fmt.Stringer, error) { return experiments.AblationCompiler(r) }},
	}
	known := map[string]bool{}
	for _, e := range exps {
		known[e.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid names:", name)
			for _, e := range exps {
				fmt.Fprintf(os.Stderr, " %s", e.name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
	}

	start := time.Now()
	var ran []string
	for _, e := range exps {
		if !all && !want[e.name] {
			continue
		}
		expStart := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		ran = append(ran, e.name)
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.name, time.Since(expStart).Seconds(), res)
	}

	c := r.Counters()
	if *verbose {
		fmt.Fprintf(os.Stderr, "runner: %d distinct runs (%d fresh, %d from disk cache), %d memo hits, %d workers, %.1fs\n",
			c.Fresh+c.DiskHits, c.Fresh, c.DiskHits, c.MemHits, *workers, time.Since(start).Seconds())
		fmt.Fprint(os.Stderr, experiments.AggregateMetrics(r.Manifests()).String())
	}
	if *jsonPath != "" {
		runs := r.Manifests()
		rep := benchReport{
			TotalRuns:     c.Fresh + c.DiskHits,
			FreshRuns:     c.Fresh,
			DiskCacheHits: c.DiskHits,
			MemCacheHits:  c.MemHits,
			Workers:       *workers,
			WallSeconds:   time.Since(start).Seconds(),
			Experiments:   ran,
			Metrics:       experiments.AggregateMetrics(runs),
			Runs:          runs,
		}
		data, err := json.MarshalIndent(rep, "", "\t")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// crashfuzzResults renders a batch of crash-consistency campaigns.
type crashfuzzResults []*crashfuzz.Result

func (rs crashfuzzResults) String() string {
	s := ""
	for i, r := range rs {
		if i > 0 {
			s += "\n"
		}
		s += r.String()
	}
	return s
}

// crashfuzzSmoke runs the exhaustive crash-consistency smoke campaigns: every
// cycle of each miniature fuzz profile is a power-cut point, with a two-cut
// pass over the single-threaded profile to cover failure during recovery. An
// enabled fault plan (-faults) additionally subjects every replay segment to
// persist-fabric faults; the oracle stays fault-free. Any divergence is an
// error — the harness's job in the bench grid is to prove there are none.
func crashfuzzSmoke(workers int, plan faults.Plan) (fmt.Stringer, error) {
	pool := experiments.NewPool(workers)
	var out crashfuzzResults
	for _, p := range workload.FuzzSmokeProfiles() {
		for cuts := 1; cuts <= 2; cuts++ {
			res, err := crashfuzz.Run(crashfuzz.Config{
				Profile: p,
				Cuts:    cuts,
				Seed:    1,
				Faults:  plan,
				Pool:    pool,
			})
			if err != nil {
				return nil, err
			}
			if res.Divergences > 0 {
				return nil, fmt.Errorf("crashfuzz: %s/%s (%d cuts): %d divergence(s)",
					p.Suite, p.Name, cuts, res.Divergences)
			}
			out = append(out, res)
		}
	}
	return out, nil
}
