// Command lightwsp-bench runs the paper's evaluation experiments and prints
// each reproduced table or figure. With no arguments it runs everything;
// otherwise arguments name the experiments to run (fig7 fig8 fig9 fig10
// fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 tab2 regions hwcost
// recovery).
package main

import (
	"fmt"
	"os"
	"time"

	"lightwsp/internal/experiments"
)

func main() {
	want := map[string]bool{}
	for _, a := range os.Args[1:] {
		want[a] = true
	}
	all := len(want) == 0
	r := experiments.NewRunner()
	if os.Getenv("BENCH_VERBOSE") != "" {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	type exp struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	exps := []exp{
		{"fig7", func() (fmt.Stringer, error) { return experiments.Fig7(r) }},
		{"fig8", func() (fmt.Stringer, error) { return experiments.Fig8(r) }},
		{"fig9", func() (fmt.Stringer, error) { return experiments.Fig9(r) }},
		{"fig10", func() (fmt.Stringer, error) { return experiments.Fig10(r) }},
		{"fig11", func() (fmt.Stringer, error) { return experiments.Fig11(r) }},
		{"fig12", func() (fmt.Stringer, error) { return experiments.Fig12(r) }},
		{"fig13", func() (fmt.Stringer, error) { return experiments.Fig13(r) }},
		{"fig14", func() (fmt.Stringer, error) { return experiments.Fig14(r) }},
		{"fig15", func() (fmt.Stringer, error) { return experiments.Fig15(r) }},
		{"fig16", func() (fmt.Stringer, error) { return experiments.Fig16(r) }},
		{"fig17", func() (fmt.Stringer, error) { return experiments.Fig17(r) }},
		{"fig18", func() (fmt.Stringer, error) { return experiments.Fig18(r) }},
		{"tab2", func() (fmt.Stringer, error) { return experiments.Table2(r) }},
		{"regions", func() (fmt.Stringer, error) { return experiments.RegionStats(r) }},
		{"hwcost", func() (fmt.Stringer, error) { return experiments.HWCost(8, 2), nil }},
		{"recovery", func() (fmt.Stringer, error) { return experiments.RecoverySweep(10) }},
		{"ablation-lrpo", func() (fmt.Stringer, error) { return experiments.AblationLRPO(r) }},
		{"ablation-compiler", func() (fmt.Stringer, error) { return experiments.AblationCompiler(r) }},
	}
	for _, e := range exps {
		if !all && !want[e.name] {
			continue
		}
		start := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.name, time.Since(start).Seconds(), res)
	}
}
