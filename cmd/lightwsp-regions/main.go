// Command lightwsp-regions dumps the LightWSP compiler's work for a
// workload: the region-instrumented assembly (boundaries, checkpoint
// stores) and the partitioning statistics, optionally across several store
// thresholds — the compiler-side view behind Figures 11 and 12.
//
// Usage:
//
//	lightwsp-regions [-suite CPU2006] [-app hmmer] [-thresholds 16,32,64] [-disasm]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lightwsp"
	"lightwsp/internal/cli"
	"lightwsp/internal/stats"
	"lightwsp/internal/workload"
)

func main() {
	var common cli.Common
	common.RegisterLogging(flag.CommandLine)
	suite := flag.String("suite", "CPU2006", "benchmark suite")
	app := flag.String("app", "hmmer", "application name")
	thresholds := flag.String("thresholds", "16,32,64", "store thresholds to compare")
	disasm := flag.Bool("disasm", false, "print the instrumented assembly (default threshold)")
	flag.Parse()
	log, err := common.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lightwsp-regions:", err)
		os.Exit(2)
	}

	if err := run(*suite, *app, *thresholds, *disasm); err != nil {
		log.Error("region dump failed", "suite", *suite, "app", *app, "error", err)
		os.Exit(1)
	}
}

func run(suite, app, thresholds string, disasm bool) error {
	p, ok := workload.ByName(workload.Suite(suite), app)
	if !ok {
		return fmt.Errorf("unknown workload %s/%s", suite, app)
	}
	prog, err := workload.Build(p)
	if err != nil {
		return err
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Region partitioning of %s/%s (%d source instructions)", suite, app, prog.NumInstrs()),
		Columns: []string{"threshold", "boundaries", "checkpoints", "pruned", "combined", "unrolled", "instrs", "max region stores"},
	}
	for _, f := range strings.Split(thresholds, ",") {
		th, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad threshold %q", f)
		}
		res, err := lightwsp.Compile(prog, lightwsp.CompilerConfig{StoreThreshold: th, MaxUnroll: 4})
		if err != nil {
			return err
		}
		s := res.Stats
		t.Add(th, s.Boundaries, s.Checkpoints, s.PrunedCheckpoints, s.CombinedBoundaries,
			s.UnrolledLoops, s.FinalInstrs, s.MaxRegionStores)
	}
	fmt.Print(t.String())

	// Region-end breakdown at the default threshold.
	res, err := lightwsp.Compile(prog, lightwsp.CompilerConfig{})
	if err != nil {
		return err
	}
	kinds := map[string]int{}
	maxStores, maxCkpts := 0, 0
	ends := res.RegionEnds()
	for _, e := range ends {
		switch e.Kind {
		case -1:
			kinds["sync (implicit)"]++
		case 0:
			kinds["required (entry/exit/call)"]++
		case 1:
			kinds["loop header"]++
		default:
			kinds["threshold split"]++
		}
		if e.MaxStores > maxStores {
			maxStores = e.MaxStores
		}
		if e.Checkpoints > maxCkpts {
			maxCkpts = e.Checkpoints
		}
	}
	t2 := &stats.Table{
		Title:   fmt.Sprintf("\nRegion ends at the default threshold (%d total)", len(ends)),
		Columns: []string{"kind", "count"},
	}
	for _, k := range []string{"required (entry/exit/call)", "loop header", "threshold split", "sync (implicit)"} {
		t2.Add(k, kinds[k])
	}
	t2.Add("max stores in a region", maxStores)
	t2.Add("max checkpoint run", maxCkpts)
	fmt.Print(t2.String())

	if disasm {
		fmt.Println()
		fmt.Print(res.Prog.Disasm())
	}
	return nil
}
