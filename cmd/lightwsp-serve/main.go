// Command lightwsp-serve exposes the simulation harness as a long-running
// HTTP/JSON daemon: compile, run, run-with-failure, crash-fuzzing and full
// experiment endpoints over one process-wide result cache and worker pool,
// so a fleet of clients shares simulations instead of re-running them.
//
//	lightwsp-serve -addr :8080 -j 8 -cache /var/cache/lightwsp
//
// Requests beyond the worker pool plus queue get 429 with Retry-After. On
// SIGTERM/SIGINT the server drains: /healthz flips to 503, new work is
// refused, in-flight requests finish (bounded by -drain-timeout), the
// cache manifest is flushed, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lightwsp/internal/cli"
	"lightwsp/internal/server"
)

func main() {
	var common cli.Common
	common.Register(flag.CommandLine)
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		queue = flag.Int("queue", 0,
			"admission queue depth beyond the worker pool (0: twice the workers)")
		timeout = flag.Duration("timeout", 0,
			"default per-request deadline (0: unbounded; requests may set timeout_ms)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"how long graceful shutdown waits for in-flight requests")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Workers:        common.Workers,
		QueueDepth:     *queue,
		CacheDir:       common.CacheDir,
		RequestTimeout: *timeout,
		Progress:       common.Progress(),
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "lightwsp-serve: listening on %s (%d workers)\n", *addr, common.Workers)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "lightwsp-serve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "lightwsp-serve: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "lightwsp-serve: shutdown: %v\n", err)
	}
	<-errc // ListenAndServe has returned http.ErrServerClosed
	fmt.Fprintln(os.Stderr, "lightwsp-serve: done")
}
