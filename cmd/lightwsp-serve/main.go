// Command lightwsp-serve exposes the simulation harness as a long-running
// HTTP/JSON daemon: compile, run, run-with-failure, crash-fuzzing and full
// experiment endpoints over one process-wide result cache and worker pool,
// so a fleet of clients shares simulations instead of re-running them.
//
//	lightwsp-serve -addr :8080 -j 8 -cache /var/cache/lightwsp \
//	    -session-dir /var/lib/lightwsp/sessions -snapshot-every 500000
//
// With -session-dir the daemon also hosts durable sessions (/v1/session):
// long-lived runs a client advances incrementally, journaled and
// periodically snapshotted so they survive power loss and restarts — a
// rebooted server replays the recovery protocol and reopens every session,
// and clients resume their event streams byte-identically from the last
// sequence number they saw.
//
// Requests beyond the worker pool plus queue get 429 with Retry-After. On
// SIGTERM/SIGINT the server drains: /healthz flips to 503, new work is
// refused, in-flight requests finish (bounded by -drain-timeout), every
// open session takes a final durable snapshot (lossless drain), the cache
// manifest is flushed, and the process exits 0. If the drain deadline
// fires with runs still executing, each victim's flight recorder dumps its
// final probe events — tagged with the session ID when the victim was a
// session operation — to the flight directory first.
//
// Telemetry: structured access and lifecycle logs on stderr (-log-level,
// -log-format), a Prometheus exposition at /metrics, per-request trace IDs
// (X-LightWSP-Trace) threaded into manifests and timeline exports, and an
// optional loopback-only -debug-addr serving net/http/pprof plus /metrics.
//
// Fleets: several nodes become one cache-coherent service with
// -fleet-self/-fleet-peers (a shared rendezvous ring over run keys and
// session IDs; wrong-node requests forward one hop to their owner) and -l2
// (a shared store — directory or peer URL — every node's cache reads
// through and publishes to). Front the fleet with lightwsp-lb.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lightwsp/internal/cli"
	"lightwsp/internal/server"
)

func main() {
	var common cli.Common
	common.Register(flag.CommandLine)
	var sessions cli.Sessions
	sessions.Register(flag.CommandLine)
	var fleetFlags cli.Fleet
	fleetFlags.Register(flag.CommandLine)
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		queue = flag.Int("queue", 0,
			"admission queue depth beyond the worker pool (0: twice the workers)")
		timeout = flag.Duration("timeout", 0,
			"default per-request deadline (0: unbounded; requests may set timeout_ms)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"how long graceful shutdown waits for in-flight requests")
		flightDir = flag.String("flight-dir", "",
			"flight-recorder dump directory (default <cache>/flightrec when -cache is set)")
		timelineDir = flag.String("timeline-dir", "",
			"export a Chrome trace-event timeline per fresh run into this directory")
		debugAddr = flag.String("debug-addr", "",
			"loopback-only debug listener serving net/http/pprof and /metrics, e.g. 127.0.0.1:6060")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	log, err := common.Logger()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lightwsp-serve: %v\n", err)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Workers:          common.Workers,
		QueueDepth:       *queue,
		CacheDir:         common.CacheDir,
		RequestTimeout:   *timeout,
		Progress:         common.Progress(),
		Logger:           log,
		FlightDir:        *flightDir,
		TimelineDir:      *timelineDir,
		SessionDir:       sessions.Dir,
		SnapshotEvery:    sessions.SnapshotEvery,
		SnapshotInterval: sessions.SnapshotInterval,
		FleetSelf:        fleetFlags.Self,
		FleetPeers:       fleetFlags.PeerList(),
		L2:               fleetFlags.Store(),
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	var debugSrv *http.Server
	if *debugAddr != "" {
		if !loopbackAddr(*debugAddr) {
			fmt.Fprintf(os.Stderr, "lightwsp-serve: -debug-addr %q is not loopback-only (use 127.0.0.1:PORT or [::1]:PORT)\n", *debugAddr)
			os.Exit(2)
		}
		debugSrv = &http.Server{Addr: *debugAddr, Handler: debugMux(srv)}
		go func() {
			log.Info("debug listener up", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("debug listener failed", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "workers", common.Workers,
			"queue", *queue, "cache", common.CacheDir, "sessions", sessions.Dir)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Info("signal received; draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Warn("drain incomplete", "error", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("shutdown", "error", err)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	<-errc // ListenAndServe has returned http.ErrServerClosed
	log.Info("done")
}

// debugMux is the loopback-only diagnostics surface: the four standard pprof
// handlers plus the same Prometheus exposition the public mux serves, so an
// operator on the box can profile and scrape without touching the API port.
func debugMux(srv *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", srv.MetricsHandler())
	return mux
}

// loopbackAddr reports whether addr binds a loopback interface only — the
// pprof surface must never face the network.
func loopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return false
	}
	if strings.EqualFold(host, "localhost") {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}
