// Command lightwsp demonstrates whole-system persistence end to end on one
// of the built-in workloads: it compiles the program with the LightWSP
// compiler, runs it on the simulated machine, cuts the power at a chosen
// cycle, executes the §IV-F drain protocol, recovers, finishes the run and
// verifies that the persisted result is bit-identical to a failure-free run.
//
// Usage:
//
//	lightwsp [-suite CPU2006] [-app hmmer] [-fail-at 0.5] [-threads 0] [-v]
//
// -fail-at is the failure point as a fraction of the failure-free run
// length; -threads overrides the workload's thread count (0 keeps it).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"lightwsp"
	"lightwsp/internal/cli"
	"lightwsp/internal/metrics"
	"lightwsp/internal/probe"
	"lightwsp/internal/recovery"
	"lightwsp/internal/trace"
	"lightwsp/internal/workload"
)

func main() {
	var common cli.Common
	common.RegisterLogging(flag.CommandLine)
	suite := flag.String("suite", "CPU2006", "benchmark suite (CPU2006, CPU2017, STAMP, NPB, SPLASH3, WHISPER)")
	app := flag.String("app", "hmmer", "application name within the suite")
	failAt := flag.Float64("fail-at", 0.5, "power-failure point as a fraction of the run")
	threads := flag.Int("threads", 0, "thread count override (0 = workload default)")
	verbose := flag.Bool("v", false, "print compiler and run statistics")
	traceOrder := flag.Bool("trace", false, "record the persist-order trace and verify the LRPO invariant")
	timeline := flag.String("timeline", "", "write the clean run's cycle-level timeline as Chrome trace-event JSON (load in Perfetto)")
	showMetrics := flag.Bool("metrics", false, "print the clean run's probe-metrics counters and histograms")
	flag.Parse()
	log, err := common.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lightwsp:", err)
		os.Exit(2)
	}

	if err := run(*suite, *app, *failAt, *threads, *verbose, *traceOrder, *timeline, *showMetrics); err != nil {
		log.Error("run failed", "suite", *suite, "app", *app, "error", err)
		os.Exit(1)
	}
}

func run(suite, app string, failAt float64, threads int, verbose, traceOrder bool, timeline string, showMetrics bool) error {
	p, ok := workload.ByName(workload.Suite(suite), app)
	if !ok {
		return fmt.Errorf("unknown workload %s/%s", suite, app)
	}
	if threads > 0 {
		p.Threads = threads
	}
	prog, err := workload.Build(p)
	if err != nil {
		return err
	}
	cfg := lightwsp.DefaultConfig()
	cfg.Threads = p.Threads
	if cfg.Threads > cfg.Cores {
		cfg.Cores = cfg.Threads
	}
	rt, err := lightwsp.Open(prog, lightwsp.WithConfig(cfg))
	if err != nil {
		return err
	}
	fmt.Printf("workload  %s/%s  (%d threads, %d static instructions)\n",
		suite, app, p.Threads, prog.NumInstrs())
	if verbose {
		cs := rt.Compiled.Stats
		fmt.Printf("compiler  %d boundaries, %d checkpoints (+%d pruned), max region stores %d\n",
			cs.Boundaries, cs.Checkpoints, cs.PrunedCheckpoints, cs.MaxRegionStores)
	}

	const budget = 2_000_000_000
	sys, err := rt.NewSystem()
	if err != nil {
		return err
	}
	var tr *trace.PersistTrace
	if traceOrder {
		tr = trace.New(0)
		sys.SetPersistTrace(tr)
	}
	var tl *probe.Timeline
	var met *metrics.Metrics
	var sinks []probe.Sink
	if timeline != "" {
		tl = probe.NewTimeline(0)
		sinks = append(sinks, tl)
	}
	if showMetrics {
		met = metrics.New()
		sinks = append(sinks, met)
	}
	if len(sinks) > 0 {
		sys.SetProbeSink(probe.Multi(sinks...))
	}
	if !sys.Run(budget) {
		return fmt.Errorf("run exceeded %d cycles", uint64(budget))
	}
	clean := sys
	fmt.Printf("clean run %d cycles, %d instructions, %d regions persisted\n",
		clean.Stats.Cycles, clean.Stats.Instructions, clean.Stats.RegionsClosed)
	if tr != nil {
		// The summary (including any dropped-event count) always prints;
		// verification then refuses a capped trace rather than passing on
		// an incomplete prefix.
		fmt.Printf("          %s\n", tr.Summary())
		if err := tr.VerifyRegionOrder(cfg.NumMCs); err != nil {
			return fmt.Errorf("persist-order invariant violated: %w", err)
		}
		fmt.Println("          LRPO region order verified")
	}
	if tl != nil {
		if err := tl.WriteFile(timeline); err != nil {
			return fmt.Errorf("writing timeline: %w", err)
		}
		fmt.Printf("timeline  %d events -> %s (load in Perfetto / chrome://tracing)\n", tl.Len(), timeline)
	}
	if met != nil {
		fmt.Print(met.String())
	}
	if verbose {
		fmt.Printf("          persistence efficiency %.2f%%, %.1f insts/region, %.1f stores/region\n",
			clean.Stats.PersistenceEfficiency(), clean.Stats.InstrPerRegion(), clean.Stats.StoresPerRegion())
		fmt.Printf("          %s\n", clean.Stats.Summary())
	}

	fail := uint64(float64(clean.Stats.Cycles) * failAt)
	if fail == 0 {
		fail = 1
	}
	res, err := rt.RunWithFailure(context.Background(), fail, budget)
	if err != nil {
		return err
	}
	if !res.Failed {
		fmt.Println("the run finished before the failure point; nothing to recover")
		return nil
	}
	fmt.Printf("power cut at cycle %d: %d unpersisted WPQ entries discarded by the drain protocol\n",
		res.Report.Cycle, res.Report.Discarded)
	fmt.Printf("recovered and finished in %d further cycles\n", res.Recovered.Stats.Cycles)

	if p.Threads == 1 {
		if err := lightwsp.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
			return err
		}
		fmt.Println("verified: persisted data identical to the failure-free run")
	} else {
		if !res.Recovered.PM().EqualRange(res.Recovered.Arch(), 0, recovery.UserRangeEnd) {
			return fmt.Errorf("PM diverges from the architectural state after recovery")
		}
		fmt.Println("verified: whole-system persistence holds after recovery (PM ≡ architectural state)")
	}
	return nil
}
