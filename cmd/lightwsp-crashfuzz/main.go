// Command lightwsp-crashfuzz runs crash-consistency fuzzing campaigns: for
// each selected workload it executes one failure-free oracle run, then
// replays the workload injecting PowerFail at enumerated cycles (every cycle
// below -threshold, probe-guided + seeded-random sampling above it), recovers,
// resumes, and diffs the final persisted state against the oracle. Any
// divergence is shrunk to a minimal failure schedule and written as a JSON
// repro file that `-replay file.json` re-executes deterministically.
//
// Exit status: 0 — all campaigns passed (or a -replay no longer fails);
// 1 — at least one divergence (or a -replay still fails); 2 — usage or
// campaign error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"lightwsp/internal/cli"
	"lightwsp/internal/crashfuzz"
	"lightwsp/internal/workload"
)

func main() {
	var common cli.Common
	common.Register(flag.CommandLine)
	var (
		suite = flag.String("suite", "", "workload suite (with -app; e.g. cpu2006)")
		app   = flag.String("app", "", "workload name within -suite")
		smoke = flag.Bool("smoke", false,
			"fuzz the miniature smoke profiles (fast; exhaustive over every cycle)")
		nightly = flag.Bool("nightly", false,
			"fuzz the nightly profile set (smoke profiles plus real benchmarks, sampled)")
		threshold = flag.Uint64("threshold", crashfuzz.DefaultExhaustiveThreshold,
			"oracles at most this many cycles are fuzzed exhaustively; longer ones sampled")
		points = flag.Int("points", crashfuzz.DefaultMaxInjections,
			"sampled-mode random injection-cycle budget (plus probe-guided cycles)")
		cuts = flag.Int("cuts", 1,
			"successive power failures per schedule (>1 includes cuts during recovery)")
		seed   = flag.Int64("seed", 1, "campaign seed (same seed = same schedule plan)")
		outDir = flag.String("out", "",
			"directory for repro files and the campaign manifest (empty: none written)")
		jsonPath = flag.String("json", "", "write all campaign manifests to this file as JSON")
		replay   = flag.String("replay", "",
			"replay a repro file instead of running a campaign")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments %v (workloads are selected by flag)\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	log, err := common.Logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}

	plan, err := common.Plan()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var profiles []workload.Profile
	switch {
	case *smoke:
		profiles = workload.FuzzSmokeProfiles()
	case *nightly:
		profiles = workload.FuzzNightlyProfiles()
	case *suite != "" && *app != "":
		p, ok := workload.Find(*suite, *app)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %s/%s\n", *suite, *app)
			os.Exit(2)
		}
		profiles = []workload.Profile{p}
	default:
		fmt.Fprintln(os.Stderr, "select workloads: -smoke, -nightly, or -suite S -app A")
		flag.Usage()
		os.Exit(2)
	}

	cache := common.BlobCache()
	pool := common.NewPool()

	start := time.Now()
	divergences := 0
	var results []*crashfuzz.Result
	for _, p := range profiles {
		cfg := crashfuzz.Config{
			Profile:             p,
			ExhaustiveThreshold: *threshold,
			MaxInjections:       *points,
			Cuts:                *cuts,
			Seed:                *seed,
			Faults:              plan,
			Pool:                pool,
			Cache:               cache,
			OutDir:              *outDir,
		}
		cfg.Progress = common.Progress()
		res, err := crashfuzz.Run(cfg)
		if err != nil {
			log.Error("campaign failed", "suite", p.Suite, "app", p.Name, "error", err)
			os.Exit(2)
		}
		results = append(results, res)
		divergences += res.Divergences
		fmt.Println(res)
		for _, path := range res.ReproPaths {
			fmt.Printf("repro written: %s\n", path)
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "\t")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	fmt.Printf("crashfuzz: %d campaign(s), %d divergence(s), %.1fs\n",
		len(results), divergences, time.Since(start).Seconds())
	if divergences > 0 {
		os.Exit(1)
	}
}

// runReplay re-executes one repro file and reports whether it still fails.
func runReplay(path string) int {
	r, err := crashfuzz.LoadRepro(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("replaying %s: %s/%s, cuts %v\n", path, r.Profile.Suite, r.Profile.Name, r.Cuts)
	if err := crashfuzz.ReplayRepro(r); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println("repro no longer fails: the divergence is fixed in this tree")
	return 0
}
