// Command lightwsp-lb fronts a fleet of lightwsp-serve nodes with one
// health-aware, cache-affine entry point:
//
//	lightwsp-lb -addr :8080 \
//	    -nodes http://10.0.0.1:8081,http://10.0.0.2:8081,http://10.0.0.3:8081
//
// Requests route by the same rendezvous ring the nodes themselves use — run
// requests by workload identity, session operations by session ID — so each
// key's traffic lands on the node whose cache is warm for it. A background
// poller probes every node's /healthz and /stats; an unhealthy or draining
// node leaves the ring (its keys rehash onto survivors, who refill from the
// shared L2 store), and a node that dies between polls is ejected the
// moment a proxy attempt fails, with the request failing over down the
// key's preference ladder. Backend admission decisions (429 + Retry-After)
// pass through verbatim: backpressure stays with the nodes.
//
// The lb serves its own /healthz (200 while at least one backend is in the
// ring), /lb/status (per-node probe state as JSON) and /metrics (Prometheus
// text format: per-node health and load, ring size, forward/failover
// counters). Everything else proxies.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lightwsp/internal/cli"
	"lightwsp/internal/fleet"
)

func main() {
	var common cli.Common
	common.RegisterLogging(flag.CommandLine)
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		nodes = flag.String("nodes", os.Getenv(cli.FleetPeersEnv),
			"comma-separated backend base URLs (defaults to $"+cli.FleetPeersEnv+")")
		poll = flag.Duration("poll", 500*time.Millisecond,
			"health-poll period for backend /healthz and /stats probes")
		probeTimeout = flag.Duration("probe-timeout", 2*time.Second,
			"per-probe timeout; a slower backend counts as down")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	log, err := common.Logger()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lightwsp-lb: %v\n", err)
		os.Exit(2)
	}
	backends := (&cli.Fleet{Peers: *nodes}).PeerList()
	if len(backends) == 0 {
		fmt.Fprintln(os.Stderr, "lightwsp-lb: -nodes is required (comma-separated backend URLs)")
		os.Exit(2)
	}

	router := fleet.NewRouter(fleet.RouterConfig{
		Nodes:        backends,
		PollInterval: *poll,
		ProbeTimeout: *probeTimeout,
		Logger:       log,
	})
	pollCtx, stopPoll := context.WithCancel(context.Background())
	defer stopPoll()
	go router.Poll(pollCtx)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !router.Healthy() {
			w.Header().Set("Retry-After", "10")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"no healthy nodes"}`)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /lb/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, statusJSON(router))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := router.WriteProm(w); err != nil {
			log.Error("metrics exposition failed", "error", err)
		}
	})
	mux.Handle("/", router)
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("lb listening", "addr", *addr, "nodes", backends, "poll", *poll)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Info("signal received; shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("shutdown", "error", err)
	}
	<-errc
	log.Info("done")
}

// statusJSON renders the per-node probe state by hand — the fleet package
// keeps its types flat enough that this stays trivial.
func statusJSON(router *fleet.Router) string {
	out := `{"nodes":[`
	for i, st := range router.Status() {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf(`{"url":%q,"healthy":%t,"in_flight":%d,"queued":%d,"draining":%t}`,
			st.URL, st.Healthy, st.InFlight, st.Queued, st.Draining)
	}
	return out + "]}\n"
}
