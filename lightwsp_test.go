package lightwsp_test

import (
	"context"
	"errors"
	"os"
	"testing"

	"lightwsp"
)

// TestQuickstart exercises the façade the way README.md shows it.
func TestQuickstart(t *testing.T) {
	ctx := context.Background()
	b := lightwsp.NewProgramBuilder("hello")
	b.Func("main")
	b.MovImm(1, 0x1000)
	b.MovImm(2, 42)
	b.Store(1, 0, 2)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := lightwsp.Open(prog)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rt.Run(ctx, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.PM().Read(0x1000); got != 42 {
		t.Fatalf("persisted value = %d, want 42", got)
	}
}

func TestFacadeCrashRecover(t *testing.T) {
	ctx := context.Background()
	b := lightwsp.NewProgramBuilder("crash")
	b.Func("main")
	b.MovImm(1, 0x2000)
	b.MovImm(3, 0)
	b.MovImm(4, 50)
	loop := b.NewBlock()
	b.Store(1, 0, 3)
	b.AddImm(1, 1, 8)
	b.AddImm(3, 3, 1)
	b.CmpLT(5, 3, 4)
	b.Branch(5, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := lightwsp.Open(prog)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := rt.Run(ctx, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.RunWithFailure(ctx, clean.Stats.Cycles/2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("failure not injected")
	}
	if err := lightwsp.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCompileOnly(t *testing.T) {
	b := lightwsp.NewProgramBuilder("c")
	b.Func("main")
	b.MovImm(1, 0x1000)
	for i := 0; i < 80; i++ {
		b.Store(1, int64(8*i), 1)
	}
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lightwsp.Compile(prog, lightwsp.CompilerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Boundaries < 3 {
		t.Fatalf("boundaries = %d", res.Stats.Boundaries)
	}
}

func TestFacadeSchemesRun(t *testing.T) {
	p, err := lightwsp.BuildWorkload(lightwsp.Workloads()[2]) // hmmer
	if err != nil {
		t.Fatal(err)
	}
	for _, sch := range []lightwsp.Scheme{
		lightwsp.BaselineScheme(), lightwsp.PSPIdealScheme(), lightwsp.PPAScheme(),
	} {
		sys, err := lightwsp.NewSystem(p, lightwsp.DefaultConfig(), sch)
		if err != nil {
			t.Fatal(err)
		}
		if !sys.Run(500_000_000) {
			t.Fatalf("%s did not complete", sch.Name)
		}
	}
}

func TestWorkloadsComplete(t *testing.T) {
	if got := len(lightwsp.Workloads()); got != 39 {
		t.Fatalf("workloads = %d, want 39", got)
	}
}

// TestFacadeDurableSession exercises the session surface the façade
// re-exports: create, advance, reopen after an abandoned handle (the
// kill -9 shape), and a byte-identical resume.
func TestFacadeDurableSession(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	spec := lightwsp.SessionSpec{Suite: "cpu2006", App: "fuzz-st", SnapshotEvery: 600}

	st, err := lightwsp.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := st.Create("demo", spec)
	if err != nil {
		t.Fatal(err)
	}
	var live []lightwsp.SessionEvent
	emit := func(ev lightwsp.SessionEvent) error { live = append(live, ev); return nil }
	if err := sess.Advance(ctx, 10_000, emit, nil); err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 || !sess.Status().Done {
		t.Fatalf("advance: %d events, done=%v", len(live), sess.Status().Done)
	}
	if _, err := st.Create("demo", spec); !errors.Is(err, lightwsp.ErrSessionExists) {
		t.Fatalf("duplicate create: %v", err)
	}

	// Abandon the store (as a crash would) and reopen the directory.
	st2, err := lightwsp.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sess2, err := st2.Open(ctx, "demo")
	if err != nil {
		t.Fatal(err)
	}
	var replay []lightwsp.SessionEvent
	if err := sess2.Resume(ctx, 0, func(ev lightwsp.SessionEvent) error {
		replay = append(replay, ev)
		return nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(live) {
		t.Fatalf("replay %d events, want %d", len(replay), len(live))
	}
	for i := range live {
		if replay[i] != live[i] {
			t.Fatalf("event %d diverged:\n%+v\n%+v", i, replay[i], live[i])
		}
	}
}

// TestFacadeStoreSeam exercises the public Store surface: a disk store
// round-trips documents, a tiered store reads through its second tier and
// writes back to both, and OpenSessionStore(WithStore) publishes a
// session's snapshots to the shared tier — the seam a fleet of serving
// nodes shares one warm cache through.
func TestFacadeStoreSeam(t *testing.T) {
	type doc struct {
		N int `json:"n"`
	}

	l1 := lightwsp.NewDiskStore(t.TempDir())
	shared := lightwsp.NewDiskStore(t.TempDir())
	tiered := lightwsp.NewTieredStore(l1, shared)

	shared.WriteJSON("only-in-l2", doc{N: 7})
	var got doc
	if !tiered.ReadJSON("only-in-l2", &got) || got.N != 7 {
		t.Fatalf("tiered read-through: got %+v", got)
	}
	tiered.WriteJSON("written-through", doc{N: 9})
	var fromShared doc
	if !shared.ReadJSON("written-through", &fromShared) || fromShared.N != 9 {
		t.Fatalf("write-back missing from shared tier: %+v", fromShared)
	}

	// A session store with a shared tier publishes every snapshot there:
	// advance far enough to snapshot, then watch the shared directory fill.
	ctx := context.Background()
	spec := lightwsp.SessionSpec{Suite: "cpu2006", App: "fuzz-st", SnapshotEvery: 600}
	l2dir := t.TempDir()
	sessDir := t.TempDir()

	st, err := lightwsp.OpenSessionStore(sessDir, lightwsp.WithStore(lightwsp.NewDiskStore(l2dir)))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := st.Create("handoff", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Advance(ctx, 10_000, func(lightwsp.SessionEvent) error { return nil }, nil); err != nil {
		t.Fatal(err)
	}
	if sess.Status().Snapshots == 0 {
		t.Fatal("session never snapshotted; nothing to publish")
	}
	st.Close()
	published, err := os.ReadDir(l2dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(published) == 0 {
		t.Fatal("no snapshot blobs published to the shared tier")
	}

	// Reopening over the same directory with the same shared tier restores
	// the session at its exact position.
	st2, err := lightwsp.OpenSessionStore(sessDir, lightwsp.WithStore(lightwsp.NewDiskStore(l2dir)))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sess2, err := st2.Open(ctx, "handoff")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sess2.Status().Total, sess.Status().Total; got != want {
		t.Fatalf("restored session at total %d, want %d", got, want)
	}
}
