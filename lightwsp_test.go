package lightwsp_test

import (
	"context"
	"testing"

	"lightwsp"
)

// TestQuickstart exercises the façade the way README.md shows it.
func TestQuickstart(t *testing.T) {
	ctx := context.Background()
	b := lightwsp.NewProgramBuilder("hello")
	b.Func("main")
	b.MovImm(1, 0x1000)
	b.MovImm(2, 42)
	b.Store(1, 0, 2)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := lightwsp.Open(prog)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rt.Run(ctx, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.PM().Read(0x1000); got != 42 {
		t.Fatalf("persisted value = %d, want 42", got)
	}
}

func TestFacadeCrashRecover(t *testing.T) {
	ctx := context.Background()
	b := lightwsp.NewProgramBuilder("crash")
	b.Func("main")
	b.MovImm(1, 0x2000)
	b.MovImm(3, 0)
	b.MovImm(4, 50)
	loop := b.NewBlock()
	b.Store(1, 0, 3)
	b.AddImm(1, 1, 8)
	b.AddImm(3, 3, 1)
	b.CmpLT(5, 3, 4)
	b.Branch(5, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := lightwsp.Open(prog)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := rt.Run(ctx, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.RunWithFailure(ctx, clean.Stats.Cycles/2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("failure not injected")
	}
	if err := lightwsp.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCompileOnly(t *testing.T) {
	b := lightwsp.NewProgramBuilder("c")
	b.Func("main")
	b.MovImm(1, 0x1000)
	for i := 0; i < 80; i++ {
		b.Store(1, int64(8*i), 1)
	}
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lightwsp.Compile(prog, lightwsp.CompilerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Boundaries < 3 {
		t.Fatalf("boundaries = %d", res.Stats.Boundaries)
	}
}

func TestFacadeSchemesRun(t *testing.T) {
	p, err := lightwsp.BuildWorkload(lightwsp.Workloads()[2]) // hmmer
	if err != nil {
		t.Fatal(err)
	}
	for _, sch := range []lightwsp.Scheme{
		lightwsp.BaselineScheme(), lightwsp.PSPIdealScheme(), lightwsp.PPAScheme(),
	} {
		sys, err := lightwsp.NewSystem(p, lightwsp.DefaultConfig(), sch)
		if err != nil {
			t.Fatal(err)
		}
		if !sys.Run(500_000_000) {
			t.Fatalf("%s did not complete", sch.Name)
		}
	}
}

func TestWorkloadsComplete(t *testing.T) {
	if got := len(lightwsp.Workloads()); got != 39 {
		t.Fatalf("workloads = %d, want 39", got)
	}
}
