package lightwsp_test

import (
	"context"
	"errors"
	"testing"

	"lightwsp"
)

// TestQuickstart exercises the façade the way README.md shows it.
func TestQuickstart(t *testing.T) {
	ctx := context.Background()
	b := lightwsp.NewProgramBuilder("hello")
	b.Func("main")
	b.MovImm(1, 0x1000)
	b.MovImm(2, 42)
	b.Store(1, 0, 2)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := lightwsp.Open(prog)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rt.Run(ctx, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.PM().Read(0x1000); got != 42 {
		t.Fatalf("persisted value = %d, want 42", got)
	}
}

func TestFacadeCrashRecover(t *testing.T) {
	ctx := context.Background()
	b := lightwsp.NewProgramBuilder("crash")
	b.Func("main")
	b.MovImm(1, 0x2000)
	b.MovImm(3, 0)
	b.MovImm(4, 50)
	loop := b.NewBlock()
	b.Store(1, 0, 3)
	b.AddImm(1, 1, 8)
	b.AddImm(3, 3, 1)
	b.CmpLT(5, 3, 4)
	b.Branch(5, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := lightwsp.Open(prog)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := rt.Run(ctx, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.RunWithFailure(ctx, clean.Stats.Cycles/2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("failure not injected")
	}
	if err := lightwsp.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCompileOnly(t *testing.T) {
	b := lightwsp.NewProgramBuilder("c")
	b.Func("main")
	b.MovImm(1, 0x1000)
	for i := 0; i < 80; i++ {
		b.Store(1, int64(8*i), 1)
	}
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lightwsp.Compile(prog, lightwsp.CompilerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Boundaries < 3 {
		t.Fatalf("boundaries = %d", res.Stats.Boundaries)
	}
}

func TestFacadeSchemesRun(t *testing.T) {
	p, err := lightwsp.BuildWorkload(lightwsp.Workloads()[2]) // hmmer
	if err != nil {
		t.Fatal(err)
	}
	for _, sch := range []lightwsp.Scheme{
		lightwsp.BaselineScheme(), lightwsp.PSPIdealScheme(), lightwsp.PPAScheme(),
	} {
		sys, err := lightwsp.NewSystem(p, lightwsp.DefaultConfig(), sch)
		if err != nil {
			t.Fatal(err)
		}
		if !sys.Run(500_000_000) {
			t.Fatalf("%s did not complete", sch.Name)
		}
	}
}

func TestWorkloadsComplete(t *testing.T) {
	if got := len(lightwsp.Workloads()); got != 39 {
		t.Fatalf("workloads = %d, want 39", got)
	}
}

// TestFacadeDurableSession exercises the session surface the façade
// re-exports: create, advance, reopen after an abandoned handle (the
// kill -9 shape), and a byte-identical resume.
func TestFacadeDurableSession(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	spec := lightwsp.SessionSpec{Suite: "cpu2006", App: "fuzz-st", SnapshotEvery: 600}

	st, err := lightwsp.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := st.Create("demo", spec)
	if err != nil {
		t.Fatal(err)
	}
	var live []lightwsp.SessionEvent
	emit := func(ev lightwsp.SessionEvent) error { live = append(live, ev); return nil }
	if err := sess.Advance(ctx, 10_000, emit, nil); err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 || !sess.Status().Done {
		t.Fatalf("advance: %d events, done=%v", len(live), sess.Status().Done)
	}
	if _, err := st.Create("demo", spec); !errors.Is(err, lightwsp.ErrSessionExists) {
		t.Fatalf("duplicate create: %v", err)
	}

	// Abandon the store (as a crash would) and reopen the directory.
	st2, err := lightwsp.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sess2, err := st2.Open(ctx, "demo")
	if err != nil {
		t.Fatal(err)
	}
	var replay []lightwsp.SessionEvent
	if err := sess2.Resume(ctx, 0, func(ev lightwsp.SessionEvent) error {
		replay = append(replay, ev)
		return nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(live) {
		t.Fatalf("replay %d events, want %d", len(replay), len(live))
	}
	for i := range live {
		if replay[i] != live[i] {
			t.Fatalf("event %d diverged:\n%+v\n%+v", i, replay[i], live[i])
		}
	}
}
