// matrix is an NPB/SPLASH3-style multi-threaded kernel under whole-system
// persistence: eight threads each scale a block of a matrix in place and
// fold a partial checksum into a shared accumulator under a lock. The
// example shows LightWSP's multi-threaded persist ordering (§III-D): region
// IDs follow the lock's happens-before order, so even after a mid-run power
// failure the recovered matrix and checksum are exactly right.
package main

import (
	"context"
	"fmt"
	"log"

	"lightwsp"
)

const (
	matrixBase = uint64(0x200000)
	lockAddr   = uint64(0x40000)
	sumAddr    = uint64(0x40008)
	rowsPerThr = 16
	cols       = 32
	threads    = 8
)

func buildKernel() (*lightwsp.Program, error) {
	b := lightwsp.NewProgramBuilder("matrix")
	b.Func("main")
	// Block base = matrixBase + tid*rowsPerThr*cols*8.
	b.MovImm(10, rowsPerThr*cols*8)
	b.Mul(10, 10, 1) // ArgReg(0) = tid arrives in r1
	b.MovImm(11, int64(matrixBase))
	b.Add(10, 10, 11) // r10 = block base
	b.MovImm(12, 0)   // element index
	b.MovImm(13, rowsPerThr*cols)
	b.MovImm(14, 0)    // partial checksum
	b.AddImm(15, 1, 2) // scale factor = tid + 2
	loop := b.NewBlock()
	// m[i] = (i+1) * scale; checksum += m[i]
	b.AddImm(16, 12, 1)
	b.Mul(16, 16, 15)
	b.MulImm(17, 12, 8)
	b.Add(17, 10, 17)
	b.Store(17, 0, 16)
	b.Add(14, 14, 16)
	b.AddImm(12, 12, 1)
	b.CmpLT(18, 12, 13)
	b.Branch(18, loop, loop+1)
	b.NewBlock()
	// Fold the partial checksum into the shared sum under the lock.
	b.MovImm(19, int64(lockAddr))
	b.LockAcquire(19, 0)
	b.MovImm(20, int64(sumAddr))
	b.Load(21, 20, 0)
	b.Add(21, 21, 14)
	b.Store(20, 0, 21)
	b.LockRelease(19, 0)
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	return b.Build()
}

// expectedSum computes the checksum the kernel must produce.
func expectedSum() uint64 {
	var sum uint64
	for tid := 0; tid < threads; tid++ {
		scale := uint64(tid + 2)
		for i := uint64(1); i <= rowsPerThr*cols; i++ {
			sum += i * scale
		}
	}
	return sum
}

func main() {
	ctx := context.Background()
	prog, err := buildKernel()
	if err != nil {
		log.Fatal(err)
	}
	cfg := lightwsp.DefaultConfig()
	cfg.Threads = threads
	rt, err := lightwsp.Open(prog, lightwsp.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	clean, err := rt.Run(ctx, 50_000_000)
	if err != nil {
		log.Fatal(err)
	}
	want := expectedSum()
	if got := clean.PM().Read(sumAddr); got != want {
		log.Fatalf("failure-free checksum = %d, want %d", got, want)
	}
	fmt.Printf("matrix: %d threads, checksum %d persisted in %d cycles (%d regions)\n",
		threads, want, clean.Stats.Cycles, clean.Stats.RegionsClosed)

	for _, pct := range []uint64{20, 50, 80} {
		res, err := rt.RunWithFailure(ctx, clean.Stats.Cycles*pct/100, 50_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if got := res.Recovered.PM().Read(sumAddr); got != want {
			log.Fatalf("crash at %d%%: checksum = %d, want %d", pct, got, want)
		}
		// Every matrix element must also have persisted correctly.
		for tid := 0; tid < threads; tid++ {
			base := matrixBase + uint64(tid)*rowsPerThr*cols*8
			for i := uint64(0); i < rowsPerThr*cols; i++ {
				want := (i + 1) * uint64(tid+2)
				if got := res.Recovered.PM().Read(base + i*8); got != want {
					log.Fatalf("crash at %d%%: m[%d][%d] = %d, want %d", pct, tid, i, got, want)
				}
			}
		}
		fmt.Printf("crash at %2d%%: matrix and checksum recovered exactly ✓\n", pct)
	}
}
