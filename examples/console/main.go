// console demonstrates the paper's §IV-A treatment of irrevocable I/O
// operations: an Io instruction forms its own region and the machine
// performs the external effect only after everything before it has
// persisted. Across a power failure, the combined output is the exact
// sequence with at most a single re-emission at the crash point —
// restartable I/O, as the paper proposes.
package main

import (
	"context"
	"fmt"
	"log"

	"lightwsp"
)

func buildProgram() (*lightwsp.Program, error) {
	b := lightwsp.NewProgramBuilder("console")
	b.Func("main")
	b.MovImm(1, 0x7000) // log pointer
	b.MovImm(2, 1)      // fib a
	b.MovImm(3, 1)      // fib b
	b.MovImm(4, 0)      // i
	b.MovImm(5, 15)     // count
	loop := b.NewBlock()
	b.Add(6, 2, 3)
	b.Mov(2, 3)
	b.Mov(3, 6)
	b.Store(1, 0, 6) // persist the value...
	b.AddImm(1, 1, 8)
	b.Io(6) // ...then print it (irrevocable)
	b.AddImm(4, 4, 1)
	b.CmpLT(7, 4, 5)
	b.Branch(7, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	return b.Build()
}

func main() {
	ctx := context.Background()
	prog, err := buildProgram()
	if err != nil {
		log.Fatal(err)
	}
	rt, err := lightwsp.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := rt.Run(ctx, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free console output: %v\n", clean.Output)

	sys, err := rt.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	sys.RunUntil(clean.Stats.Cycles / 2)
	rep := sys.PowerFail()
	fmt.Printf("before the crash (cycle %d):  %v\n", rep.Cycle, sys.Output)
	rec, err := rt.Recover(sys.PM(), rep.RegionCounter)
	if err != nil {
		log.Fatal(err)
	}
	if !rec.Run(1_000_000) {
		log.Fatal("recovered run did not complete")
	}
	fmt.Printf("after recovery:               %v\n", rec.Output)

	if err := lightwsp.VerifyEquivalence(rec.PM(), clean.PM()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("persisted log identical; console output restartable (at-least-once) ✓")
}
