// kvstore is a WHISPER-style persistent key-value store — except that,
// under whole-system persistence, it is written exactly like a volatile
// one: an ordinary open-addressing hash table with plain loads and stores.
// No transactions, no persist barriers, no pmalloc, no recovery code. The
// example crashes the store mid-workload at several points and shows that
// the recovered table always matches the failure-free one.
package main

import (
	"context"
	"fmt"
	"log"

	"lightwsp"
)

const (
	tableBase = uint64(0x100000)
	tableBits = 8 // 256 slots × (key, value)
	numOps    = 200
)

// buildStore builds the program: main issues numOps put operations with
// repeating keys (exercising both insert and update probes), then halts.
func buildStore() (*lightwsp.Program, error) {
	b := lightwsp.NewProgramBuilder("kvstore")

	b.Func("main")
	b.MovImm(10, 1)        // i
	b.MovImm(11, numOps+1) // limit
	loop := b.NewBlock()
	// key = (i*7) % 120 + 1; value = i*i + 3
	b.MulImm(1, 10, 7)
	b.MovImm(12, 120)
	// modulo via repeated subtraction is overkill; use AND against 127
	// then +1 for a near-uniform nonzero key.
	b.MovImm(12, 127)
	b.And(1, 1, 12)
	b.AddImm(1, 1, 1) // arg0 = key in 1..128
	b.Mul(2, 10, 10)
	b.AddImm(2, 2, 3) // arg1 = value
	b.Call(1, 2)      // put(key, value)
	b.AddImm(10, 10, 1)
	b.CmpLT(13, 10, 11)
	b.Branch(13, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)

	// put(key, value): open-addressing insert/update.
	// h = (key * 2654435761) & (slots-1)
	b.Func("put")
	b.MulImm(5, 1, 2654435761)
	b.MovImm(6, (1<<tableBits)-1)
	b.And(5, 5, 6)
	probe := b.NewBlock()
	// slot address = tableBase + h*16
	b.MulImm(7, 5, 16)
	b.MovImm(8, int64(tableBase))
	b.Add(7, 7, 8)
	b.Load(9, 7, 0) // k = slot.key
	b.CmpEQ(3, 9, 1)
	b.Branch(3, probe+2, probe+1) // found key -> store value
	b.NewBlock()                  // probe+1: empty or collision
	b.MovImm(4, 0)
	b.CmpEQ(3, 9, 4)
	b.Branch(3, probe+3, probe+4) // empty -> claim slot
	b.NewBlock()                  // probe+2: update
	b.Store(7, 8, 2)
	b.MovImm(0, 1)
	b.Ret(0)
	b.NewBlock() // probe+3: claim
	b.Store(7, 0, 1)
	b.Store(7, 8, 2)
	b.MovImm(0, 2)
	b.Ret(0)
	b.NewBlock() // probe+4: collision, advance
	b.AddImm(5, 5, 1)
	b.And(5, 5, 6)
	b.Jump(probe)
	b.SwitchTo(probe - 1)
	b.Jump(probe)

	return b.Build()
}

func main() {
	ctx := context.Background()
	prog, err := buildStore()
	if err != nil {
		log.Fatal(err)
	}
	rt, err := lightwsp.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := rt.Run(ctx, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	entries := 0
	for slot := uint64(0); slot < 1<<tableBits; slot++ {
		if clean.PM().Read(tableBase+slot*16) != 0 {
			entries++
		}
	}
	fmt.Printf("kvstore: %d puts -> %d live entries, %d cycles, %d regions persisted\n",
		numOps, entries, clean.Stats.Cycles, clean.Stats.RegionsClosed)

	// Crash the store at 10%, 35%, 60% and 85% of the run.
	for _, pct := range []uint64{10, 35, 60, 85} {
		fail := clean.Stats.Cycles * pct / 100
		res, err := rt.RunWithFailure(ctx, fail, 10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if err := lightwsp.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
			log.Fatalf("crash at %d%%: %v", pct, err)
		}
		fmt.Printf("crash at %2d%% of the run: recovered, table verified ✓\n", pct)
	}
}
