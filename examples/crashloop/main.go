// crashloop tortures the recovery protocol: power fails every few hundred
// cycles — including during recoveries of earlier failures — until the
// program manages to finish. Because every recovery point is just a region
// boundary (§III-E), nested failures need no special handling, and the
// final persisted data still matches a failure-free run exactly.
package main

import (
	"context"
	"fmt"
	"log"

	"lightwsp"
)

func buildProgram() (*lightwsp.Program, error) {
	b := lightwsp.NewProgramBuilder("crashloop")
	b.Func("main")
	b.MovImm(1, 0x8000) // output pointer
	b.MovImm(2, 1)      // fib a
	b.MovImm(3, 1)      // fib b
	b.MovImm(4, 0)      // i
	b.MovImm(5, 300)    // iterations
	loop := b.NewBlock()
	b.Add(6, 2, 3)
	b.Mov(2, 3)
	b.Mov(3, 6)
	b.Store(1, 0, 6)
	b.AddImm(1, 1, 8)
	b.AddImm(4, 4, 1)
	b.CmpLT(7, 4, 5)
	b.Branch(7, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	return b.Build()
}

func main() {
	ctx := context.Background()
	prog, err := buildProgram()
	if err != nil {
		log.Fatal(err)
	}
	rt, err := lightwsp.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := rt.Run(ctx, 5_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free run: %d cycles\n", clean.Stats.Cycles)

	for _, interval := range []uint64{
		clean.Stats.Cycles / 3,
		clean.Stats.Cycles / 8,
		clean.Stats.Cycles / 20,
	} {
		res, err := rt.RunWithRepeatedFailures(ctx, interval, 50_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if err := lightwsp.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
			log.Fatalf("interval %d: %v", interval, err)
		}
		fmt.Printf("power failed every %5d cycles: survived %2d failures, result exact ✓\n",
			interval, res.Rollbacks)
	}
}
