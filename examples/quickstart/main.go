// Quickstart: build a tiny program, run it under LightWSP, cut the power in
// the middle, recover, and verify the persisted result — the whole value
// proposition of whole-system persistence in ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"lightwsp"
)

func main() {
	ctx := context.Background()
	// A program that sums 1..100 into memory, one running total per step —
	// ordinary code, no persistence annotations anywhere.
	b := lightwsp.NewProgramBuilder("quickstart")
	b.Func("main")
	b.MovImm(1, 0x1000) // output pointer
	b.MovImm(2, 0)      // sum
	b.MovImm(3, 1)      // i
	b.MovImm(4, 101)    // limit
	loop := b.NewBlock()
	b.Add(2, 2, 3)    // sum += i
	b.Store(1, 0, 2)  // mem[out] = sum   (persisted transparently)
	b.AddImm(1, 1, 8) // out++
	b.AddImm(3, 3, 1) // i++
	b.CmpLT(5, 3, 4)
	b.Branch(5, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Compile for LightWSP (region partitioning + register checkpointing)
	// and boot the Table I machine.
	rt, err := lightwsp.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := rt.Run(ctx, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free run: %d cycles, final sum = %d\n",
		clean.Stats.Cycles, clean.PM().Read(0x1000+99*8))

	// Now cut the power mid-run. The §IV-F protocol drains the write
	// pending queues, recovery reloads registers from the checkpoint
	// array, and execution resumes at the last persisted region boundary.
	res, err := rt.RunWithFailure(ctx, clean.Stats.Cycles/2, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power failed at cycle %d (%d in-flight entries discarded)\n",
		res.Report.Cycle, res.Report.Discarded)
	fmt.Printf("recovered run:    final sum = %d\n", res.Recovered.PM().Read(0x1000+99*8))

	if err := lightwsp.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("persisted data identical to the failure-free run ✓")
}
