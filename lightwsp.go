// Package lightwsp is a from-scratch reproduction of "LightWSP: Whole-System
// Persistence on the Cheap" (Zhou, Zeng, Jung — MICRO 2024): a
// compiler/architecture co-design that persists every store of a program —
// transparently, with DRAM usable as a last-level cache over non-volatile
// main memory — by partitioning execution into recoverable regions whose
// stores are quarantined in the memory controllers' battery-backed write
// pending queues and flushed failure-atomically, strictly in region order
// (lazy region-level persist ordering).
//
// The package is a façade over the full system:
//
//   - a register-machine IR and program builder (internal/isa),
//   - the LightWSP compiler — region partitioning, live-out register
//     checkpointing, speculative loop unrolling, checkpoint pruning
//     (internal/compiler),
//   - a deterministic cycle-stepped multicore simulator with the paper's
//     Table I configuration: persist paths, gated WPQs, DRAM cache, PM
//     (internal/machine and friends),
//   - power-failure injection and the §IV-F recovery protocol
//     (internal/recovery),
//   - the comparison schemes Capri, PPA, cWSP, ideal PSP
//     (internal/baseline),
//   - synthetic stand-ins for the paper's 38 evaluation applications
//     (internal/workload) and one experiment driver per figure/table
//     (internal/experiments).
//
// Quickstart:
//
//	b := lightwsp.NewProgramBuilder("hello")
//	b.Func("main")
//	b.MovImm(1, 0x1000)
//	b.MovImm(2, 42)
//	b.Store(1, 0, 2)
//	b.Halt()
//	prog, _ := b.Build()
//
//	rt, _ := lightwsp.Open(prog)
//	res, _ := rt.RunWithFailure(context.Background(), 500, 1_000_000) // cut power at cycle 500
//	fmt.Println(res.Recovered.PM().Read(0x1000)) // 42, recovered
//
// # API stability
//
// Open, its options, and the context-taking Runtime methods are the stable,
// documented entry points. The positional constructors New and NewSystem are
// deprecated wrappers kept for one release so existing callers migrate
// incrementally; CI runs apidiff against the main branch, so any change to
// this façade's exported surface is flagged in review.
package lightwsp

import (
	"lightwsp/internal/baseline"
	"lightwsp/internal/compiler"
	"lightwsp/internal/core"
	"lightwsp/internal/experiments"
	"lightwsp/internal/isa"
	"lightwsp/internal/machine"
	"lightwsp/internal/mem"
	"lightwsp/internal/metrics"
	"lightwsp/internal/probe"
	"lightwsp/internal/recovery"
	"lightwsp/internal/workload"
	"lightwsp/internal/wsperr"
)

// Typed sentinel errors every run failure wraps; classify with errors.Is.
var (
	// ErrCanceled: the run's context was canceled or its deadline expired.
	ErrCanceled = wsperr.ErrCanceled
	// ErrCyclesExceeded: the run did not complete within its cycle budget.
	ErrCyclesExceeded = wsperr.ErrCyclesExceeded
	// ErrWPQOverflow: the budget ran out while a memory controller was
	// wedged in the §IV-D deadlock-escape overflow state.
	ErrWPQOverflow = wsperr.ErrWPQOverflow
	// ErrUnrecoverable: the persisted image cannot be resumed from.
	ErrUnrecoverable = wsperr.ErrUnrecoverable
)

// Config is the machine configuration; DefaultConfig mirrors Table I of the
// paper (8 wide-issue cores at 2 GHz, 64 KB L1, 16 MB L2, 4 GB direct-mapped
// DRAM cache, 32 GB PM at 175/90 ns, two memory controllers with 64-entry
// 8-byte-granular WPQs, a 4 GB/s persist path per core).
type Config = machine.Config

// DefaultConfig returns the Table I system.
func DefaultConfig() Config { return machine.DefaultConfig() }

// CompilerConfig controls region partitioning; the zero value uses the
// paper's defaults (store threshold = half the WPQ, 4x loop unrolling).
type CompilerConfig = compiler.Config

// CompileResult is a compiled program plus its recovery metadata (checkpoint
// pruning recipes) and static statistics.
type CompileResult = compiler.Result

// Program is a register-machine program; see Builder for construction.
type Program = isa.Program

// Builder assembles Programs instruction by instruction.
type Builder = isa.Builder

// NewProgramBuilder returns an empty program builder.
func NewProgramBuilder(name string) *Builder { return isa.NewBuilder(name) }

// Runtime binds a compiled program to a machine configuration and drives
// runs, power failures and recoveries.
type Runtime = core.Runtime

// CrashResult reports a crash/recover round trip.
type CrashResult = core.CrashResult

// System is a booted machine instance.
type System = machine.System

// Stats are one run's measurements.
type Stats = machine.Stats

// Scheme describes a persistence mechanism's hardware behaviour.
type Scheme = machine.Scheme

// Image is a sparse memory image (the persisted PM state).
type Image = mem.Image

// ProbeEvent is one cycle-level instrumentation event.
type ProbeEvent = probe.Event

// ProbeSink consumes cycle-level instrumentation events. Sinks are driven
// from the single simulation goroutine and need not be concurrency-safe.
type ProbeSink = probe.Sink

// ProbeSinkFunc adapts a function to ProbeSink.
type ProbeSinkFunc = probe.SinkFunc

// MultiProbeSink fans events out to several sinks, dropping nils.
func MultiProbeSink(sinks ...ProbeSink) ProbeSink { return probe.Multi(sinks...) }

// Metrics aggregates a run's probe events into the counters and histograms
// the evaluation cares about; it implements ProbeSink.
type Metrics = metrics.Metrics

// NewMetrics returns an empty metrics accumulator.
func NewMetrics() *Metrics { return metrics.New() }

// Option configures Open.
type Option func(*openOptions)

type openOptions struct {
	cfg    Config
	ccfg   CompilerConfig
	sch    Scheme
	sinks  []ProbeSink
	hasCfg bool
}

// WithConfig sets the machine configuration (default: DefaultConfig, the
// paper's Table I system).
func WithConfig(cfg Config) Option {
	return func(o *openOptions) { o.cfg = cfg; o.hasCfg = true }
}

// WithCompiler sets the region compiler configuration. The zero value — and
// omitting this option — uses the paper's defaults (store threshold = half
// the WPQ, 4x loop unrolling).
func WithCompiler(ccfg CompilerConfig) Option {
	return func(o *openOptions) { o.ccfg = ccfg }
}

// WithScheme selects the persistence scheme (default: LightWSPScheme).
// Instrumented schemes run prog through the region compiler; uninstrumented
// comparison schemes (BaselineScheme, PSPIdealScheme, ...) run it as built
// and cannot recover from failures.
func WithScheme(sch Scheme) Option {
	return func(o *openOptions) { o.sch = sch }
}

// WithProbeSink attaches a cycle-level instrumentation sink to every system
// the runtime boots. Repeated options (and WithMetrics) compose: each sink
// receives every event.
func WithProbeSink(s ProbeSink) Option {
	return func(o *openOptions) { o.sinks = append(o.sinks, s) }
}

// WithMetrics attaches a metrics accumulator to every system the runtime
// boots — shorthand for WithProbeSink(m).
func WithMetrics(m *Metrics) Option {
	return func(o *openOptions) { o.sinks = append(o.sinks, m) }
}

// Open binds prog to a machine configuration and persistence scheme and
// returns the Runtime that drives runs, power failures and recoveries. With
// no options it opens the paper's system: Table I hardware, LightWSP scheme,
// default compiler. Open is the package's entry point; see Option for the
// available knobs.
func Open(prog *Program, opts ...Option) (*Runtime, error) {
	o := openOptions{sch: core.Scheme()}
	for _, opt := range opts {
		opt(&o)
	}
	if !o.hasCfg {
		o.cfg = DefaultConfig()
	}
	return core.NewRuntimeFor(prog, o.ccfg, o.cfg, o.sch, probe.Multi(o.sinks...))
}

// New compiles prog for LightWSP and returns a Runtime. A zero ccfg uses
// the paper's compiler defaults.
//
// Deprecated: use Open with WithCompiler and WithConfig.
func New(prog *Program, ccfg CompilerConfig, cfg Config) (*Runtime, error) {
	return Open(prog, WithCompiler(ccfg), WithConfig(cfg))
}

// Compile runs only the LightWSP compiler (region partitioning +
// checkpointing) without building a machine.
func Compile(prog *Program, ccfg CompilerConfig) (*CompileResult, error) {
	if ccfg.StoreThreshold == 0 {
		ccfg = compiler.DefaultConfig()
	}
	return compiler.Compile(prog, ccfg)
}

// LightWSPScheme returns the paper's scheme: 8-byte persist path, gated
// WPQ with lazy region-level persist ordering, DRAM cache enabled.
func LightWSPScheme() Scheme { return core.Scheme() }

// Comparison schemes from the paper's evaluation (§V).
var (
	// BaselineScheme is Optane memory mode: DRAM cache, no persistence.
	BaselineScheme = baseline.Baseline
	// CapriScheme is Capri [53]: 64-byte persist path, stop-at-boundary
	// multi-controller ordering.
	CapriScheme = baseline.Capri
	// PPAScheme is PPA [108]: hardware regions with eager write-back and
	// boundary stalls.
	PPAScheme = baseline.PPA
	// CWSPScheme is cWSP [110]: idempotent regions with memory-controller
	// speculation and in-line undo logging.
	CWSPScheme = baseline.CWSP
	// PSPIdealScheme is an idealized partial-system persistence (no DRAM
	// cache, free persistence).
	PSPIdealScheme = baseline.PSPIdeal
	// NaiveSfenceScheme is LightWSP without LRPO (sfence per region).
	NaiveSfenceScheme = baseline.NaiveSfence
)

// NewSystem boots a machine running prog under an arbitrary scheme —
// the low-level entry the comparison schemes use.
//
// Deprecated: use Open with WithScheme, then Runtime.NewSystem (or
// Runtime.Run, which boots and runs in one step).
func NewSystem(prog *Program, cfg Config, sch Scheme) (*System, error) {
	return machine.NewSystem(prog, cfg, sch)
}

// VerifyEquivalence checks that two final persisted images agree on all
// program data — the crash-consistency acceptance test.
func VerifyEquivalence(got, want *Image) error {
	return recovery.VerifyEquivalence(got, want)
}

// WorkloadProfile describes one synthetic stand-in for a paper benchmark.
type WorkloadProfile = workload.Profile

// Workloads returns the 38-application evaluation set of Figure 7.
func Workloads() []WorkloadProfile { return workload.Profiles() }

// BuildWorkload synthesizes a profile's program deterministically.
func BuildWorkload(p WorkloadProfile) (*Program, error) { return workload.Build(p) }

// Store is the content-addressed blob-store seam the run cache, durable
// sessions and the serving fleet all plug into: ReadJSON/WriteJSON move
// CRC-sealed documents by name, Remove deletes them. Implementations are
// composable — a disk store is one node's L1, another node (or a shared
// directory) is the fleet's L2, and a tiered store stacks the two with
// read-through and write-back. Every fetch re-verifies the seal, so a
// corrupt or truncated entry reads as a miss, never as wrong data.
type Store = experiments.Store

// BlobCache is the concrete disk-backed Store implementation.
//
// Deprecated: hold the Store interface and construct with NewDiskStore;
// the concrete type remains for callers that need its extended surface
// (scrubbing, lease arbitration, raw sealed I/O).
type BlobCache = experiments.BlobCache

// NewDiskStore opens the disk-backed Store rooted at dir: one CRC-sealed,
// content-addressed file per entry, corrupt entries quarantined on read.
func NewDiskStore(dir string) *BlobCache { return experiments.NewBlobCache(dir) }

// NewTieredStore stacks two stores: reads try l1 then fall through to l2
// (promoting hits into l1), writes go to both. This is the fleet cache
// shape — local disk in front, a shared backend behind.
func NewTieredStore(l1, l2 Store) Store { return experiments.NewTieredStore(l1, l2) }

// NewRemoteStore returns a Store backed by another lightwsp-serve node's
// blob API at baseURL. Entries travel sealed and are re-verified locally
// on every fetch; a failed or corrupt transfer reads as a miss.
func NewRemoteStore(baseURL string) Store { return experiments.NewRemoteStore(baseURL) }

// Durable sessions: long-lived runs that survive power loss and process
// restarts. A SessionStore owns a directory of sessions; each session
// journals every advance before executing it and periodically snapshots the
// machine (a planned §IV-F power failure whose drained image is
// content-addressed into the store), so reopening the store replays the
// recovery protocol and restores every session to its exact last position —
// the event stream a resumed client sees is byte-identical to an
// uninterrupted run's. lightwsp-serve exposes the same machinery over HTTP
// at /v1/session.
type (
	// SessionStore owns a directory of durable sessions.
	SessionStore = experiments.SessionStore
	// Session is one durable run; see Advance, Resume, ForceSnapshot.
	Session = experiments.Session
	// SessionSpec declares a session's workload, scheme and snapshot cadence.
	SessionSpec = experiments.SessionSpec
	// SessionEvent is one line of a session's milestone event stream.
	SessionEvent = experiments.SessionEvent
	// SessionStatus is a point-in-time session summary.
	SessionStatus = experiments.SessionStatus
)

// Session sentinel errors; classify with errors.Is.
var (
	// ErrSessionBusy: another operation holds the session; retry later.
	ErrSessionBusy = experiments.ErrSessionBusy
	// ErrSessionExists: a session with that ID already exists.
	ErrSessionExists = experiments.ErrSessionExists
	// ErrNoSession: no session with that ID.
	ErrNoSession = experiments.ErrNoSession
	// ErrSessionClosed: the session handle was closed or removed.
	ErrSessionClosed = experiments.ErrSessionClosed
)

// SessionOption configures OpenSessionStore.
type SessionOption func(*sessionOptions)

type sessionOptions struct {
	l2 Store
}

// WithStore attaches a shared second-tier Store to the session store:
// snapshots still land on the local directory first, then publish to st,
// and a session restoring here can fetch snapshot blobs a fleet peer
// produced — what lets a session resume on a different node than the one
// that advanced it.
func WithStore(st Store) SessionOption {
	return func(o *sessionOptions) { o.l2 = st }
}

// OpenSessionStore opens (creating if needed) the durable-session store
// rooted at dir. Reopening a store after a crash or restart restores every
// session it contains from its newest durable snapshot plus journal replay.
func OpenSessionStore(dir string, opts ...SessionOption) (*SessionStore, error) {
	var o sessionOptions
	for _, opt := range opts {
		opt(&o)
	}
	st, err := experiments.OpenSessionStore(dir)
	if err != nil {
		return nil, err
	}
	if o.l2 != nil {
		st.SetL2(o.l2)
	}
	return st, nil
}
