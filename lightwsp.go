// Package lightwsp is a from-scratch reproduction of "LightWSP: Whole-System
// Persistence on the Cheap" (Zhou, Zeng, Jung — MICRO 2024): a
// compiler/architecture co-design that persists every store of a program —
// transparently, with DRAM usable as a last-level cache over non-volatile
// main memory — by partitioning execution into recoverable regions whose
// stores are quarantined in the memory controllers' battery-backed write
// pending queues and flushed failure-atomically, strictly in region order
// (lazy region-level persist ordering).
//
// The package is a façade over the full system:
//
//   - a register-machine IR and program builder (internal/isa),
//   - the LightWSP compiler — region partitioning, live-out register
//     checkpointing, speculative loop unrolling, checkpoint pruning
//     (internal/compiler),
//   - a deterministic cycle-stepped multicore simulator with the paper's
//     Table I configuration: persist paths, gated WPQs, DRAM cache, PM
//     (internal/machine and friends),
//   - power-failure injection and the §IV-F recovery protocol
//     (internal/recovery),
//   - the comparison schemes Capri, PPA, cWSP, ideal PSP
//     (internal/baseline),
//   - synthetic stand-ins for the paper's 38 evaluation applications
//     (internal/workload) and one experiment driver per figure/table
//     (internal/experiments).
//
// Quickstart:
//
//	b := lightwsp.NewProgramBuilder("hello")
//	b.Func("main")
//	b.MovImm(1, 0x1000)
//	b.MovImm(2, 42)
//	b.Store(1, 0, 2)
//	b.Halt()
//	prog, _ := b.Build()
//
//	rt, _ := lightwsp.New(prog, lightwsp.CompilerConfig{}, lightwsp.DefaultConfig())
//	res, _ := rt.RunWithFailure(500, 1_000_000) // cut power at cycle 500
//	fmt.Println(res.Recovered.PM().Read(0x1000)) // 42, recovered
package lightwsp

import (
	"lightwsp/internal/baseline"
	"lightwsp/internal/compiler"
	"lightwsp/internal/core"
	"lightwsp/internal/isa"
	"lightwsp/internal/machine"
	"lightwsp/internal/mem"
	"lightwsp/internal/recovery"
	"lightwsp/internal/workload"
)

// Config is the machine configuration; DefaultConfig mirrors Table I of the
// paper (8 wide-issue cores at 2 GHz, 64 KB L1, 16 MB L2, 4 GB direct-mapped
// DRAM cache, 32 GB PM at 175/90 ns, two memory controllers with 64-entry
// 8-byte-granular WPQs, a 4 GB/s persist path per core).
type Config = machine.Config

// DefaultConfig returns the Table I system.
func DefaultConfig() Config { return machine.DefaultConfig() }

// CompilerConfig controls region partitioning; the zero value uses the
// paper's defaults (store threshold = half the WPQ, 4x loop unrolling).
type CompilerConfig = compiler.Config

// CompileResult is a compiled program plus its recovery metadata (checkpoint
// pruning recipes) and static statistics.
type CompileResult = compiler.Result

// Program is a register-machine program; see Builder for construction.
type Program = isa.Program

// Builder assembles Programs instruction by instruction.
type Builder = isa.Builder

// NewProgramBuilder returns an empty program builder.
func NewProgramBuilder(name string) *Builder { return isa.NewBuilder(name) }

// Runtime binds a compiled program to a machine configuration and drives
// runs, power failures and recoveries.
type Runtime = core.Runtime

// CrashResult reports a crash/recover round trip.
type CrashResult = core.CrashResult

// System is a booted machine instance.
type System = machine.System

// Stats are one run's measurements.
type Stats = machine.Stats

// Scheme describes a persistence mechanism's hardware behaviour.
type Scheme = machine.Scheme

// Image is a sparse memory image (the persisted PM state).
type Image = mem.Image

// New compiles prog for LightWSP and returns a Runtime. A zero ccfg uses
// the paper's compiler defaults.
func New(prog *Program, ccfg CompilerConfig, cfg Config) (*Runtime, error) {
	return core.NewRuntime(prog, ccfg, cfg)
}

// Compile runs only the LightWSP compiler (region partitioning +
// checkpointing) without building a machine.
func Compile(prog *Program, ccfg CompilerConfig) (*CompileResult, error) {
	if ccfg.StoreThreshold == 0 {
		ccfg = compiler.DefaultConfig()
	}
	return compiler.Compile(prog, ccfg)
}

// LightWSPScheme returns the paper's scheme: 8-byte persist path, gated
// WPQ with lazy region-level persist ordering, DRAM cache enabled.
func LightWSPScheme() Scheme { return core.Scheme() }

// Comparison schemes from the paper's evaluation (§V).
var (
	// BaselineScheme is Optane memory mode: DRAM cache, no persistence.
	BaselineScheme = baseline.Baseline
	// CapriScheme is Capri [53]: 64-byte persist path, stop-at-boundary
	// multi-controller ordering.
	CapriScheme = baseline.Capri
	// PPAScheme is PPA [108]: hardware regions with eager write-back and
	// boundary stalls.
	PPAScheme = baseline.PPA
	// CWSPScheme is cWSP [110]: idempotent regions with memory-controller
	// speculation and in-line undo logging.
	CWSPScheme = baseline.CWSP
	// PSPIdealScheme is an idealized partial-system persistence (no DRAM
	// cache, free persistence).
	PSPIdealScheme = baseline.PSPIdeal
	// NaiveSfenceScheme is LightWSP without LRPO (sfence per region).
	NaiveSfenceScheme = baseline.NaiveSfence
)

// NewSystem boots a machine running prog under an arbitrary scheme —
// the low-level entry the comparison schemes use. For LightWSP itself,
// prefer New, which also compiles and wires recovery metadata.
func NewSystem(prog *Program, cfg Config, sch Scheme) (*System, error) {
	return machine.NewSystem(prog, cfg, sch)
}

// VerifyEquivalence checks that two final persisted images agree on all
// program data — the crash-consistency acceptance test.
func VerifyEquivalence(got, want *Image) error {
	return recovery.VerifyEquivalence(got, want)
}

// WorkloadProfile describes one synthetic stand-in for a paper benchmark.
type WorkloadProfile = workload.Profile

// Workloads returns the 38-application evaluation set of Figure 7.
func Workloads() []WorkloadProfile { return workload.Profiles() }

// BuildWorkload synthesizes a profile's program deterministically.
func BuildWorkload(p WorkloadProfile) (*Program, error) { return workload.Build(p) }
