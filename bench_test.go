// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V). Each benchmark runs the corresponding experiment driver and reports
// its headline numbers as custom metrics; the full row/series output the
// paper presents is logged with -v. Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// The drivers memoize simulation runs in a shared Runner, so a full -bench=.
// pass costs each (application, scheme, configuration) simulation once.
package lightwsp_test

import (
	"sync"
	"testing"

	"lightwsp/internal/experiments"
	"lightwsp/internal/workload"
)

var (
	benchRunner     *experiments.Runner
	benchRunnerOnce sync.Once
)

func runner() *experiments.Runner {
	benchRunnerOnce.Do(func() { benchRunner = experiments.NewRunner() })
	return benchRunner
}

// BenchmarkFig7Slowdown reproduces Figure 7: slowdown of Capri, PPA and
// LightWSP over the non-persistent baseline across the 38 applications.
// Paper averages: 50.5% / 8.1% / 9.0%.
func BenchmarkFig7Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(runner())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverallGeo[0], "capri-geo")
		b.ReportMetric(res.OverallGeo[1], "ppa-geo")
		b.ReportMetric(res.OverallGeo[2], "lightwsp-geo")
		b.Log("\n" + res.String())
	}
}

// BenchmarkFig8Efficiency reproduces Figure 8: region-level persistence
// efficiency (Eq. 1), PPA vs LightWSP. Paper: 89.3% vs 99.9%.
func BenchmarkFig8Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(runner())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Avg[0], "ppa-eff-%")
		b.ReportMetric(res.Avg[1], "lightwsp-eff-%")
		b.Log("\n" + res.String())
	}
}

// BenchmarkFig9PSPvsWSP reproduces Figure 9: ideal PSP (no DRAM cache) vs
// LightWSP on memory-intensive applications. Paper: 51.2% vs 3%.
func BenchmarkFig9PSPvsWSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(runner())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Geo[0], "psp-geo")
		b.ReportMetric(res.Geo[1], "lightwsp-geo")
		b.Log("\n" + res.String())
	}
}

// BenchmarkFig10CWSP reproduces Figure 10: cWSP vs LightWSP (NPB excluded).
// Paper: 5.7% vs 8.5%.
func BenchmarkFig10CWSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(runner())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Geo[0], "cwsp-geo")
		b.ReportMetric(res.Geo[1], "lightwsp-geo")
		b.Log("\n" + res.String())
	}
}

// BenchmarkFig11WPQSize reproduces Figure 11: WPQ size sweep 256/128/64.
func BenchmarkFig11WPQSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(runner())
		if err != nil {
			b.Fatal(err)
		}
		for j, name := range res.Configs {
			b.ReportMetric(res.OverallGeo[j], name)
		}
		b.Log("\n" + res.String())
	}
}

// BenchmarkFig12Threshold reproduces Figure 12: store-threshold sweep
// 16/32/64 at a 64-entry WPQ; 32 (half the WPQ) should be best or tied.
func BenchmarkFig12Threshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(runner())
		if err != nil {
			b.Fatal(err)
		}
		for j, name := range res.Configs {
			b.ReportMetric(res.OverallGeo[j], name)
		}
		b.Log("\n" + res.String())
	}
}

// BenchmarkFig13Victim reproduces Figure 13: buffer-snooping victim policy
// sweep (full/half/zero) — the paper finds no significant difference.
func BenchmarkFig13Victim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(runner())
		if err != nil {
			b.Fatal(err)
		}
		for j, name := range res.Configs {
			b.ReportMetric(res.OverallGeo[j], name)
		}
		b.Log("\n" + res.String())
	}
}

// BenchmarkFig14MissRate reproduces Figure 14: L1 miss rates under the
// victim policies and the stale-load mode.
func BenchmarkFig14MissRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(runner())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.StaleLoads), "stale-loads")
		b.Log("\n" + res.String())
	}
}

// BenchmarkFig15Bandwidth reproduces Figure 15: persist-path bandwidth
// sweep 4/2/1 GB/s.
func BenchmarkFig15Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(runner())
		if err != nil {
			b.Fatal(err)
		}
		for j, name := range res.Configs {
			b.ReportMetric(res.OverallGeo[j], name)
		}
		b.Log("\n" + res.String())
	}
}

// BenchmarkFig16Threads reproduces Figure 16 (§V-F5): thread-count sweep
// 8/16/32/64 on the parallel suites, plus the WPQ overflow rates.
func BenchmarkFig16Threads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16(runner())
		if err != nil {
			b.Fatal(err)
		}
		for j, name := range res.Sweep.Configs {
			b.ReportMetric(res.Sweep.OverallGeo[j], name)
		}
		b.ReportMetric(res.OverflowPer10K[len(res.OverflowPer10K)-1], "overflow/10k@64T")
		b.Log("\n" + res.String())
	}
}

// BenchmarkFig17CXL reproduces Figure 17 (§V-F6): the CXL device
// configurations of Table III; the paper reports < 16% average overhead.
func BenchmarkFig17CXL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig17(runner())
		if err != nil {
			b.Fatal(err)
		}
		for j, name := range res.Configs {
			b.ReportMetric(res.OverallGeo[j], name)
		}
		b.Log("\n" + res.String())
	}
}

// BenchmarkFig18WPQHit reproduces Figure 18: WPQ load hits per million
// instructions across WPQ sizes. Paper average: 0.039.
func BenchmarkFig18WPQHit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig18(runner())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Overall[len(res.Overall)-1], "hits/Minst@WPQ64")
		b.Log("\n" + res.String())
	}
}

// BenchmarkTable2Conflict reproduces Table II: the buffer-snooping conflict
// rate per suite (per mille).
func BenchmarkTable2Conflict(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(runner())
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, v := range res.Rate {
			if v > worst {
				worst = v
			}
		}
		b.ReportMetric(worst, "worst-permille")
		b.Log("\n" + res.String())
	}
}

// BenchmarkRegionStats reproduces §V-G3: dynamic instruction increase
// (paper: +7.03%), instructions per region (91.33), stores per region
// (11.29).
func BenchmarkRegionStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RegionStats(runner())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.InstrOverheadPct, "instr-overhead-%")
		b.ReportMetric(res.InstrPerRegion, "insts/region")
		b.ReportMetric(res.StoresPerRegion, "stores/region")
		b.Log("\n" + res.String())
	}
}

// BenchmarkHardwareCost reproduces §V-G4: per-core hardware cost.
// Paper: LightWSP 0.5 B, PPA 337 B, Capri 54 KB.
func BenchmarkHardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.HWCost(8, 2)
		b.ReportMetric(res.BytesPerCore["lightwsp"], "lightwsp-B/core")
		b.ReportMetric(res.BytesPerCore["ppa"], "ppa-B/core")
		b.ReportMetric(res.BytesPerCore["capri"], "capri-B/core")
		b.Log("\n" + res.String())
	}
}

// BenchmarkRecoverySweep validates §III-E/§IV-F: power failures injected
// across representative applications, each recovered and verified against
// the failure-free run.
func BenchmarkRecoverySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RecoverySweep(10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Verified), "verified-recoveries")
		b.Log("\n" + res.String())
	}
}

// BenchmarkAblationLRPO quantifies what lazy region-level persist ordering
// buys (§III-B): LightWSP against the naive sfence-per-region variant.
func BenchmarkAblationLRPO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationLRPO(runner())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Geo[0], "naive-sfence-geo")
		b.ReportMetric(res.Geo[1], "lightwsp-geo")
		b.Log("\n" + res.String())
	}
}

// BenchmarkAblationCompiler quantifies the compiler optimizations of §IV-A:
// default vs no-unrolling vs no-combining vs no-pruning, by checkpoint
// counts and run time on a representative subset.
func BenchmarkAblationCompiler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCompiler(runner())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.String())
	}
}

// BenchmarkSingleWorkload is the micro-benchmark: simulate one mid-size
// application under LightWSP once per iteration (a raw simulator-throughput
// number, allocations included).
func BenchmarkSingleWorkload(b *testing.B) {
	p, _ := workload.ByName(workload.CPU2006, "hmmer")
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner() // no memoization: measure the real run
		if _, err := r.Run(p, experiments.LightWSP(), experiments.CompilerDefaults()); err != nil {
			b.Fatal(err)
		}
	}
}
