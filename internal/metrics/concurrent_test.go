package metrics

import (
	"sync"
	"testing"

	"lightwsp/internal/probe"
)

// TestConcurrentEmitThenMerge exercises the aggregation contract under the
// race detector: a Metrics is single-goroutine (each simulation drives its
// own), and concurrency happens at the Snapshot/Merge layer — many runs
// snapshotting concurrently and merging into one shared accumulator under a
// mutex, exactly how the server aggregates per-run manifests. The merged
// totals must equal a sequential pass over the same events.
func TestConcurrentEmitThenMerge(t *testing.T) {
	const (
		workers       = 8
		eventsPerEach = 5000
	)
	emitAll := func(m *Metrics, seed int) {
		for i := 0; i < eventsPerEach; i++ {
			c := (seed + i) % 4
			m.Emit(probe.Event{Kind: probe.RegionOpen, Core: c, Cycle: uint64(i)})
			m.Emit(probe.Event{Kind: probe.RegionClose, Core: c, Cycle: uint64(i + seed), Arg: uint64(i % 9)})
			m.Emit(probe.Event{Kind: probe.WPQEnqueue, MC: c % 2})
			m.Emit(probe.Event{Kind: probe.WPQFlush, MC: c % 2, Arg: uint64(i % 17)})
		}
	}

	// Concurrent: one Metrics per worker, snapshots merged under a mutex.
	agg := New()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := New()
			emitAll(m, w)
			snap := m.Snapshot()
			mu.Lock()
			agg.Merge(snap)
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	// Sequential reference over the identical event stream.
	ref := New()
	for w := 0; w < workers; w++ {
		emitAll(ref, w)
	}

	got, want := agg.Snapshot(), ref.Snapshot()
	if got.Events != want.Events || got.RegionsClosed != want.RegionsClosed ||
		got.Enqueues != want.Enqueues || got.Flushes != want.Flushes {
		t.Fatalf("counter mismatch:\n got %+v\nwant %+v", got, want)
	}
	for _, h := range []struct {
		name      string
		got, want HistSnapshot
	}{
		{"RegionStores", got.RegionStores, want.RegionStores},
		{"WPQOccupancy", got.WPQOccupancy, want.WPQOccupancy},
	} {
		if h.got.Count != h.want.Count || h.got.Sum != h.want.Sum || h.got.Max != h.want.Max {
			t.Fatalf("%s mismatch: got count=%d sum=%d max=%d, want count=%d sum=%d max=%d",
				h.name, h.got.Count, h.got.Sum, h.got.Max, h.want.Count, h.want.Sum, h.want.Max)
		}
		if len(h.got.Buckets) != len(h.want.Buckets) {
			t.Fatalf("%s bucket lengths differ: %d vs %d", h.name, len(h.got.Buckets), len(h.want.Buckets))
		}
		for i := range h.got.Buckets {
			if h.got.Buckets[i] != h.want.Buckets[i] {
				t.Fatalf("%s bucket %d: got %d, want %d", h.name, i, h.got.Buckets[i], h.want.Buckets[i])
			}
		}
	}
	// Region residency depends on per-core open/close pairing, which the
	// seeded cycle offsets make deterministic per worker; the merged count
	// must still match exactly.
	if got.RegionResidency.Count != want.RegionResidency.Count {
		t.Fatalf("RegionResidency count: got %d, want %d",
			got.RegionResidency.Count, want.RegionResidency.Count)
	}
}
