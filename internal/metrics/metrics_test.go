package metrics

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"lightwsp/internal/probe"
)

// drive feeds a canned event sequence: two regions on core 0, one flush
// burst on MC 1, one completed FEB stall.
func drive(m *Metrics) {
	m.Emit(probe.Event{Kind: probe.RegionOpen, Cycle: 0, Core: 0, Region: 1})
	m.Emit(probe.Event{Kind: probe.RegionClose, Cycle: 100, Core: 0, Region: 1, Arg: 4})
	m.Emit(probe.Event{Kind: probe.RegionOpen, Cycle: 100, Core: 0, Region: 2})
	m.Emit(probe.Event{Kind: probe.RegionClose, Cycle: 500, Core: 0, Region: 2, Arg: 16})
	m.Emit(probe.Event{Kind: probe.WPQEnqueue, Cycle: 50, MC: 1, Arg: 3})
	m.Emit(probe.Event{Kind: probe.WPQFlush, Cycle: 60, MC: 1, Arg: 3})
	m.Emit(probe.Event{Kind: probe.WPQFlush, Cycle: 61, MC: 1, Arg: 2})
	m.Emit(probe.Event{Kind: probe.FEBStallStop, Cycle: 90, Core: 0, Arg: 30})
	m.Emit(probe.Event{Kind: probe.BoundaryBroadcast, Cycle: 95, Core: 0, Region: 1})
	m.Emit(probe.Event{Kind: probe.BoundaryAck, Cycle: 99, MC: 0, Region: 1})
}

func TestMetricsAccumulates(t *testing.T) {
	m := New()
	drive(m)
	s := m.Snapshot()
	if s.RegionsClosed != 2 || s.Flushes != 2 || s.Enqueues != 1 ||
		s.StallBursts != 1 || s.Boundaries != 1 || s.BoundaryAcks != 1 {
		t.Fatalf("counters wrong: %+v", s)
	}
	if s.RegionStores.Count != 2 || s.RegionStores.Max != 16 {
		t.Fatalf("region stores hist: %+v", s.RegionStores)
	}
	// Residencies are 100 and 400 cycles.
	if s.RegionResidency.Max != 400 || s.RegionResidency.Sum != 500 {
		t.Fatalf("residency hist: %+v", s.RegionResidency)
	}
	if s.WPQOccupancy.Max != 3 || s.StallBurst.Max != 30 {
		t.Fatalf("occupancy/stall hists: %+v / %+v", s.WPQOccupancy, s.StallBurst)
	}
}

func TestBootRegionImpliedOpenAtZero(t *testing.T) {
	// A close with no recorded open (the boot region predates the sink)
	// must count residency from cycle 0.
	m := New()
	m.Emit(probe.Event{Kind: probe.RegionClose, Cycle: 250, Core: 3, Region: 1, Arg: 1})
	if got := m.RegionResidency.Max; got != 250 {
		t.Fatalf("boot-region residency = %d, want 250", got)
	}
}

func TestSnapshotMergeEqualsCombinedStream(t *testing.T) {
	a, b := New(), New()
	drive(a)
	drive(b)
	b.Emit(probe.Event{Kind: probe.WPQFlush, Cycle: 70, MC: 0, Arg: 7})

	merged := New()
	merged.Merge(a.Snapshot())
	merged.Merge(b.Snapshot())

	direct := New()
	drive(direct)
	drive(direct)
	direct.Emit(probe.Event{Kind: probe.WPQFlush, Cycle: 70, MC: 0, Arg: 7})

	got, want := merged.Snapshot(), direct.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	m := New()
	drive(m)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, m.Snapshot()) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", s, m.Snapshot())
	}
	for _, key := range []string{"region_stores", "wpq_occupancy_at_flush", "p99", "buckets"} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("JSON missing %q:\n%s", key, data)
		}
	}
}

func TestStringRendersQuantiles(t *testing.T) {
	m := New()
	drive(m)
	out := m.String()
	for _, want := range []string{"histogram", "p50", "p99", "region stores", "wpq occupancy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFabricCountersAccumulateAndMerge(t *testing.T) {
	m := New()
	m.Emit(probe.Event{Kind: probe.FabricRetry, Cycle: 10, MC: 0, Region: 1, Arg: 1})
	m.Emit(probe.Event{Kind: probe.FabricRetry, Cycle: 20, MC: 0, Region: 1, Arg: 2})
	m.Emit(probe.Event{Kind: probe.FabricDupSuppressed, Cycle: 30, MC: 1, Region: 1, Arg: 0})
	m.Emit(probe.Event{Kind: probe.MCDegraded, Cycle: 40, MC: 1, Arg: 0})
	if m.Retries != 2 || m.DupSuppressed != 1 || m.Degradations != 1 {
		t.Fatalf("fabric counters = %d/%d/%d", m.Retries, m.DupSuppressed, m.Degradations)
	}
	other := New()
	other.Merge(m.Snapshot())
	other.Merge(m.Snapshot())
	if other.Retries != 4 || other.DupSuppressed != 2 || other.Degradations != 2 {
		t.Fatalf("merged fabric counters = %d/%d/%d", other.Retries, other.DupSuppressed, other.Degradations)
	}
	if !strings.Contains(m.String(), "degradations=1") {
		t.Fatalf("text rendering missing fabric line:\n%s", m.String())
	}
	empty := New()
	if strings.Contains(empty.String(), "fabric:") {
		t.Fatal("fabric line rendered with zero fabric activity")
	}
}
