package metrics

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"lightwsp/internal/probe"
	"lightwsp/internal/stats"
)

// Exposition-format line shapes (text format 0.0.4).
var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]?Inf)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// parseExposition validates an exposition line by line: every line is a
// HELP, a TYPE or a sample; every sample's family (stripping the histogram
// _bucket/_sum/_count suffixes) was TYPE-declared before it; no family is
// declared twice. It returns the samples by full series name.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	declared := map[string]bool{}
	samples := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Fatalf("line %d: bad HELP line %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad TYPE line %q", i+1, line)
			}
			if declared[m[1]] {
				t.Fatalf("line %d: family %s declared twice", i+1, m[1])
			}
			declared[m[1]] = true
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad sample line %q", i+1, line)
			}
			name := m[1]
			family := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suf); base != name && declared[base] {
					family = base
					break
				}
			}
			if !declared[family] {
				t.Fatalf("line %d: sample %q precedes its TYPE declaration", i+1, name)
			}
			if labels := m[2]; labels != "" {
				for _, l := range splitLabels(labels) {
					if !labelRe.MatchString(l) {
						t.Fatalf("line %d: bad label %q", i+1, l)
					}
				}
			}
			v, err := strconv.ParseFloat(m[len(m)-2], 64)
			if err == nil {
				samples[name+m[2]] = v
			}
		}
	}
	return samples
}

// splitLabels splits `{a="b",c="d"}` into pairs, respecting escaped quotes.
func splitLabels(s string) []string {
	s = strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	var out []string
	depth := false // inside a quoted value
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestWritePromParses drives a real metrics snapshot through the exposition
// writer and validates it line by line — the golden-shape test behind the
// server's /metrics endpoint.
func TestWritePromParses(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		m.Emit(probe.Event{Kind: probe.RegionOpen, Core: 0, Cycle: uint64(i)})
		m.Emit(probe.Event{Kind: probe.RegionClose, Core: 0, Cycle: uint64(i + 10), Arg: uint64(i % 7)})
		m.Emit(probe.Event{Kind: probe.WPQFlush, MC: i % 2, Arg: uint64(i % 5)})
	}
	var buf bytes.Buffer
	p := NewProm(&buf)
	m.Snapshot().WriteProm(p, "lightwsp_")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())

	if got := samples["lightwsp_regions_closed_total"]; got != 100 {
		t.Fatalf("regions_closed_total = %g, want 100", got)
	}
	// The histogram contract: the +Inf bucket equals _count, and the
	// cumulative bucket counts are non-decreasing in le order.
	if inf, count := samples[`lightwsp_region_stores_bucket{le="+Inf"}`], samples["lightwsp_region_stores_count"]; inf != count || count != 100 {
		t.Fatalf("+Inf bucket %g, _count %g, want both 100", inf, count)
	}
	var prev float64 = -1
	h := m.Snapshot().RegionStores
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if c == 0 && i != 0 {
			continue
		}
		le := strconv.FormatUint(stats.BucketUpper(i), 10)
		got, ok := samples[`lightwsp_region_stores_bucket{le="`+le+`"}`]
		if !ok {
			t.Fatalf("missing bucket le=%s", le)
		}
		if got != float64(cum) {
			t.Fatalf("bucket le=%s = %g, want cumulative %d", le, got, cum)
		}
		if got < prev {
			t.Fatalf("bucket le=%s decreases: %g < %g", le, got, prev)
		}
		prev = got
	}
}

func TestPromLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := NewProm(&buf)
	p.Family("x_total", "counter", `help with \ backslash
and newline`)
	p.Sample("x_total", []Label{{Name: "path", Value: "a\"b\\c\nd"}}, 1)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `path="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped: %q", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("raw newline leaked into exposition: %q", out)
	}
	parseExposition(t, out)
}

func TestPromWriterErrors(t *testing.T) {
	var buf bytes.Buffer
	p := NewProm(&buf)
	p.Family("a_total", "counter", "")
	p.Family("a_total", "counter", "")
	if p.Err() == nil {
		t.Fatal("double declaration should error")
	}

	p2 := NewProm(&buf)
	p2.Sample("undeclared_total", nil, 1)
	if p2.Err() == nil {
		t.Fatal("undeclared sample should error")
	}
}

func TestFormatValueIntegersExact(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{1e12, "1000000000000"},
		{0.5, "0.5"},
		{-3, "-3"},
	} {
		if got := formatValue(tc.v); got != tc.want {
			t.Errorf("formatValue(%g) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
