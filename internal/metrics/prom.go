package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"lightwsp/internal/stats"
)

// This file is the hand-rolled Prometheus text-format exposition layer
// (version 0.0.4 — the format every scraper speaks). The repo takes no
// dependencies, so instead of client_golang there is a small writer that
// knows the three shapes the harness needs: counters, gauges and native
// histograms rendered from the log-2 stats.Histogram buckets. The server's
// /metrics endpoint composes its families with WriteProm's probe families
// through the same writer, so escaping and formatting rules live here once.

// Label is one name="value" pair on a sample.
type Label struct{ Name, Value string }

// Prom writes Prometheus text-format exposition. Families must be declared
// (Family) before their samples; the writer enforces one HELP/TYPE block per
// family name. Errors are sticky — check Err once at the end.
type Prom struct {
	w        io.Writer
	declared map[string]bool
	err      error
}

// NewProm returns a writer emitting onto w.
func NewProm(w io.Writer) *Prom {
	return &Prom{w: w, declared: map[string]bool{}}
}

// Err returns the first write error, if any.
func (p *Prom) Err() error { return p.err }

func (p *Prom) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family declares a metric family: its HELP and TYPE header lines. typ is
// "counter", "gauge" or "histogram". Declaring the same family twice is a
// bug in the caller; the writer records it as an error rather than emitting
// an exposition scrapers reject.
func (p *Prom) Family(name, typ, help string) {
	if p.declared[name] {
		if p.err == nil {
			p.err = fmt.Errorf("metrics: family %q declared twice", name)
		}
		return
	}
	p.declared[name] = true
	if help != "" {
		p.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line for a declared family.
func (p *Prom) Sample(name string, labels []Label, v float64) {
	if !p.declared[name] && p.err == nil {
		p.err = fmt.Errorf("metrics: sample for undeclared family %q", name)
		return
	}
	p.printf("%s%s %s\n", name, renderLabels(labels), formatValue(v))
}

// Histogram emits the _bucket/_sum/_count series of one log-2 histogram
// snapshot under a declared histogram family. Bucket bounds are the log-2
// bucket upper bounds (0, 1, 3, 7, ...), cumulative per the exposition
// contract, with the mandatory le="+Inf" terminal bucket.
func (p *Prom) Histogram(name string, labels []Label, h HistSnapshot) {
	if !p.declared[name] && p.err == nil {
		p.err = fmt.Errorf("metrics: histogram for undeclared family %q", name)
		return
	}
	bucketLabels := func(le string) string {
		ls := make([]Label, len(labels)+1)
		copy(ls, labels)
		ls[len(labels)] = Label{"le", le}
		return renderLabels(ls)
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if c == 0 && i != 0 {
			// Empty buckets add nothing: cumulative counts repeat, so
			// skipping them keeps the exposition proportional to the data
			// while staying valid (le bounds need not be dense).
			continue
		}
		p.printf("%s_bucket%s %d\n", name, bucketLabels(strconv.FormatUint(stats.BucketUpper(i), 10)), cum)
	}
	p.printf("%s_bucket%s %d\n", name, bucketLabels("+Inf"), h.Count)
	p.printf("%s_sum%s %d\n", name, renderLabels(labels), h.Sum)
	p.printf("%s_count%s %d\n", name, renderLabels(labels), h.Count)
}

// renderLabels renders {a="b",c="d"}, or "" for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP text: backslash and newline (quotes are fine).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value: integers exactly (counters routinely
// exceed float64-precision territory in spirit if not in practice), floats
// in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// counterFamily is one probe counter's exposition mapping.
type counterFamily struct {
	name string
	help string
	v    func(Snapshot) uint64
}

var probeCounters = []counterFamily{
	{"probe_events_total", "Probe events observed across all resolved runs.", func(s Snapshot) uint64 { return s.Events }},
	{"regions_closed_total", "Persistence regions closed at a boundary.", func(s Snapshot) uint64 { return s.RegionsClosed }},
	{"boundary_broadcasts_total", "Boundary entries broadcast to every memory controller.", func(s Snapshot) uint64 { return s.Boundaries }},
	{"boundary_acks_total", "Boundary ACKs received by controllers.", func(s Snapshot) uint64 { return s.BoundaryAcks }},
	{"wpq_enqueues_total", "Entries enqueued into write-pending queues.", func(s Snapshot) uint64 { return s.Enqueues }},
	{"wpq_flushes_total", "WPQ entries flushed to persistent memory.", func(s Snapshot) uint64 { return s.Flushes }},
	{"wpq_overflows_total", "Deadlock-escape activations (WPQ overflow).", func(s Snapshot) uint64 { return s.Overflows }},
	{"wpq_undo_writes_total", "Undo-log pre-image writes on the escape path.", func(s Snapshot) uint64 { return s.UndoWrites }},
	{"feb_stall_bursts_total", "Completed front-end-buffer back-pressure bursts.", func(s Snapshot) uint64 { return s.StallBursts }},
	{"snoop_hits_total", "L1 victim-selection snoops that hit a front-end buffer entry.", func(s Snapshot) uint64 { return s.SnoopHits }},
	{"power_fails_total", "Power failures injected.", func(s Snapshot) uint64 { return s.PowerFails }},
	{"recoveries_total", "Machines booted from a crash image.", func(s Snapshot) uint64 { return s.Recoveries }},
	{"fabric_retries_total", "Boundary replays retransmitted over the persist fabric.", func(s Snapshot) uint64 { return s.Retries }},
	{"fabric_dup_suppressed_total", "Duplicate fabric ACKs absorbed idempotently.", func(s Snapshot) uint64 { return s.DupSuppressed }},
	{"mc_degradations_total", "Memory controllers degraded to undo-logged eager persist.", func(s Snapshot) uint64 { return s.Degradations }},
}

// histFamily is one probe histogram's exposition mapping.
type histFamily struct {
	name string
	help string
	h    func(Snapshot) HistSnapshot
}

var probeHists = []histFamily{
	{"region_stores", "Dynamic stores per closed region (log-2 buckets).", func(s Snapshot) HistSnapshot { return s.RegionStores }},
	{"region_residency_cycles", "Open-to-close cycles per region (log-2 buckets).", func(s Snapshot) HistSnapshot { return s.RegionResidency }},
	{"wpq_occupancy_at_flush", "WPQ occupancy sampled at each flush (log-2 buckets).", func(s Snapshot) HistSnapshot { return s.WPQOccupancy }},
	{"feb_stall_burst_cycles", "FEB back-pressure burst lengths in cycles (log-2 buckets).", func(s Snapshot) HistSnapshot { return s.StallBurst }},
}

// WriteProm renders the snapshot as Prometheus text-format families on p,
// each name prefixed (conventionally "lightwsp_"). Counters become counter
// families; the log-2 histograms become native histogram families whose
// `le` bounds are the bucket upper bounds.
func (s Snapshot) WriteProm(p *Prom, prefix string) {
	for _, c := range probeCounters {
		name := prefix + c.name
		p.Family(name, "counter", c.help)
		p.Sample(name, nil, float64(c.v(s)))
	}
	for _, h := range probeHists {
		name := prefix + h.name
		p.Family(name, "histogram", h.help)
		p.Histogram(name, nil, h.h(s))
	}
}
