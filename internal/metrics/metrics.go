// Package metrics is the aggregating consumer of the probe event stream:
// counters plus log-2-bucketed histograms of the distributions the paper's
// evaluation cares about — per-region dynamic store counts, region
// residency (open→close cycles, the denominator behaviour behind Eq. (1)'s
// Tp), WPQ occupancy sampled at each flush, and FEB back-pressure burst
// lengths (the shape of LightWSP's Twait). A Snapshot renders p50/p90/p99/
// max in text and JSON and round-trips through the experiment harness's
// run manifests, where per-run snapshots merge into suite-wide aggregates.
package metrics

import (
	"encoding/json"
	"fmt"
	"strings"

	"lightwsp/internal/probe"
	"lightwsp/internal/stats"
)

// Metrics accumulates probe events for one run. It implements probe.Sink
// and is driven from a single simulation goroutine; it is not safe for
// concurrent use.
type Metrics struct {
	// Counters.
	Events        uint64
	RegionsOpened uint64
	RegionsClosed uint64
	Boundaries    uint64 // boundary broadcasts dispatched
	BoundaryAcks  uint64
	Enqueues      uint64
	Flushes       uint64
	Overflows     uint64 // deadlock-escape activations
	UndoWrites    uint64
	StallBursts   uint64 // completed FEB back-pressure bursts
	SnoopHits     uint64
	PowerFails    uint64
	Recoveries    uint64
	Retries       uint64 // boundary replays retransmitted (fault injection)
	DupSuppressed uint64 // duplicate ACKs absorbed idempotently
	Degradations  uint64 // controllers declared degraded

	// Distributions.
	RegionStores    stats.Histogram // dynamic stores per closed region
	RegionResidency stats.Histogram // open→close cycles per region
	WPQOccupancy    stats.Histogram // queue occupancy sampled at each flush
	StallBurst      stats.Histogram // FEB back-pressure burst lengths, cycles

	// openCycle tracks each core's current region-open cycle; regions
	// already open when the sink attaches (the boot regions) count from 0.
	openCycle map[int]uint64
}

// New returns an empty metrics accumulator.
func New() *Metrics {
	return &Metrics{openCycle: map[int]uint64{}}
}

// Emit implements probe.Sink.
func (m *Metrics) Emit(e probe.Event) {
	m.Events++
	switch e.Kind {
	case probe.RegionOpen:
		m.RegionsOpened++
		m.openCycle[e.Core] = e.Cycle
	case probe.RegionClose:
		m.RegionsClosed++
		m.RegionStores.Observe(e.Arg)
		m.RegionResidency.Observe(e.Cycle - m.openCycle[e.Core])
		delete(m.openCycle, e.Core)
	case probe.BoundaryBroadcast:
		m.Boundaries++
	case probe.BoundaryAck:
		m.BoundaryAcks++
	case probe.WPQEnqueue:
		m.Enqueues++
	case probe.WPQFlush:
		m.Flushes++
		m.WPQOccupancy.Observe(e.Arg)
	case probe.WPQOverflowEnter:
		m.Overflows++
	case probe.WPQUndo:
		m.UndoWrites++
	case probe.FEBStallStop:
		m.StallBursts++
		m.StallBurst.Observe(e.Arg)
	case probe.SnoopHit:
		m.SnoopHits++
	case probe.PowerFailCut:
		m.PowerFails++
	case probe.RecoveryBoot:
		m.Recoveries++
	case probe.FabricRetry:
		m.Retries++
	case probe.FabricDupSuppressed:
		m.DupSuppressed++
	case probe.MCDegraded:
		m.Degradations++
	}
}

// HistSnapshot is the serialized summary of one histogram: headline
// quantiles for humans plus the compact buckets, sum and max that make it
// mergeable (the quantiles alone would not be).
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	P50     uint64   `json:"p50"`
	P90     uint64   `json:"p90"`
	P99     uint64   `json:"p99"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	Sum     uint64   `json:"sum"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// SnapHistogram freezes a raw stats.Histogram into the snapshot form — for
// consumers outside the probe pipeline (the server's request-latency
// histograms) that want the same Prometheus rendering as the probe families.
func SnapHistogram(h *stats.Histogram) HistSnapshot { return snapHist(h) }

func snapHist(h *stats.Histogram) HistSnapshot {
	return HistSnapshot{
		Count:   h.Count,
		P50:     h.Quantile(0.50),
		P90:     h.Quantile(0.90),
		P99:     h.Quantile(0.99),
		Max:     h.Max,
		Mean:    h.Mean(),
		Sum:     h.Sum,
		Buckets: h.Compact(),
	}
}

func (s HistSnapshot) restore() stats.Histogram {
	return stats.RestoreHistogram(s.Buckets, s.Sum, s.Max)
}

// Snapshot is the portable form of a Metrics: what run manifests embed and
// what -json outputs carry.
type Snapshot struct {
	Events        uint64 `json:"events"`
	RegionsClosed uint64 `json:"regions_closed"`
	Boundaries    uint64 `json:"boundaries"`
	BoundaryAcks  uint64 `json:"boundary_acks"`
	Enqueues      uint64 `json:"wpq_enqueues"`
	Flushes       uint64 `json:"wpq_flushes"`
	Overflows     uint64 `json:"wpq_overflows"`
	UndoWrites    uint64 `json:"wpq_undo_writes"`
	StallBursts   uint64 `json:"feb_stall_bursts"`
	SnoopHits     uint64 `json:"snoop_hits"`
	PowerFails    uint64 `json:"power_fails"`
	Recoveries    uint64 `json:"recoveries"`
	Retries       uint64 `json:"fabric_retries,omitempty"`
	DupSuppressed uint64 `json:"fabric_dup_suppressed,omitempty"`
	Degradations  uint64 `json:"mc_degradations,omitempty"`

	RegionStores    HistSnapshot `json:"region_stores"`
	RegionResidency HistSnapshot `json:"region_residency_cycles"`
	WPQOccupancy    HistSnapshot `json:"wpq_occupancy_at_flush"`
	StallBurst      HistSnapshot `json:"feb_stall_burst_cycles"`
}

// Snapshot freezes the accumulator's current state.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Events:        m.Events,
		RegionsClosed: m.RegionsClosed,
		Boundaries:    m.Boundaries,
		BoundaryAcks:  m.BoundaryAcks,
		Enqueues:      m.Enqueues,
		Flushes:       m.Flushes,
		Overflows:     m.Overflows,
		UndoWrites:    m.UndoWrites,
		StallBursts:   m.StallBursts,
		SnoopHits:     m.SnoopHits,
		PowerFails:    m.PowerFails,
		Recoveries:    m.Recoveries,
		Retries:       m.Retries,
		DupSuppressed: m.DupSuppressed,
		Degradations:  m.Degradations,

		RegionStores:    snapHist(&m.RegionStores),
		RegionResidency: snapHist(&m.RegionResidency),
		WPQOccupancy:    snapHist(&m.WPQOccupancy),
		StallBurst:      snapHist(&m.StallBurst),
	}
}

// Merge folds a snapshot's observations into the accumulator — how the
// experiment harness aggregates per-run metrics (including disk-cached
// ones, whose snapshots carry the mergeable buckets) into one view.
func (m *Metrics) Merge(s Snapshot) {
	m.Events += s.Events
	m.RegionsClosed += s.RegionsClosed
	m.Boundaries += s.Boundaries
	m.BoundaryAcks += s.BoundaryAcks
	m.Enqueues += s.Enqueues
	m.Flushes += s.Flushes
	m.Overflows += s.Overflows
	m.UndoWrites += s.UndoWrites
	m.StallBursts += s.StallBursts
	m.SnoopHits += s.SnoopHits
	m.PowerFails += s.PowerFails
	m.Recoveries += s.Recoveries
	m.Retries += s.Retries
	m.DupSuppressed += s.DupSuppressed
	m.Degradations += s.Degradations

	for _, h := range []struct {
		dst *stats.Histogram
		src HistSnapshot
	}{
		{&m.RegionStores, s.RegionStores},
		{&m.RegionResidency, s.RegionResidency},
		{&m.WPQOccupancy, s.WPQOccupancy},
		{&m.StallBurst, s.StallBurst},
	} {
		restored := h.src.restore()
		h.dst.Merge(&restored)
	}
}

// MarshalJSON writes the snapshot form.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}

// String renders the snapshot as a fixed-width table.
func (m *Metrics) String() string { return m.Snapshot().String() }

// String renders counters and histogram quantiles for terminals.
func (s Snapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "events=%d regions=%d boundaries=%d acks=%d enqueues=%d flushes=%d overflows=%d undo=%d snoop-hits=%d\n",
		s.Events, s.RegionsClosed, s.Boundaries, s.BoundaryAcks,
		s.Enqueues, s.Flushes, s.Overflows, s.UndoWrites, s.SnoopHits)
	if s.Retries+s.DupSuppressed+s.Degradations > 0 {
		fmt.Fprintf(&sb, "fabric: retries=%d dup-suppressed=%d degradations=%d\n",
			s.Retries, s.DupSuppressed, s.Degradations)
	}
	tab := &stats.Table{
		Columns: []string{"histogram", "count", "p50", "p90", "p99", "max", "mean"},
	}
	for _, row := range []struct {
		name string
		h    HistSnapshot
	}{
		{"region stores", s.RegionStores},
		{"region residency (cyc)", s.RegionResidency},
		{"wpq occupancy @flush", s.WPQOccupancy},
		{"feb stall burst (cyc)", s.StallBurst},
	} {
		tab.Add(row.name, row.h.Count, row.h.P50, row.h.P90, row.h.P99, row.h.Max, row.h.Mean)
	}
	sb.WriteString(tab.String())
	return sb.String()
}
