// Package cfg provides the control-flow analyses the LightWSP compiler is
// built on: CFG construction, reverse postorder, dominators, natural-loop
// detection and iterative live-variable analysis — the standard toolkit the
// paper cites ([4], [5]) for its region partitioning and checkpoint
// insertion passes.
package cfg

import (
	"lightwsp/internal/isa"
)

// Graph is the control-flow graph of one function. Node i corresponds to
// Function.Blocks[i]; edges follow block terminators.
type Graph struct {
	Fn   *isa.Function
	Succ [][]int
	Pred [][]int
	// RPO is the blocks in reverse postorder from the entry; unreachable
	// blocks are absent.
	RPO []int
	// RPONum maps block index to its position in RPO, or -1 if the block
	// is unreachable.
	RPONum []int
}

// New builds the CFG for fn.
func New(fn *isa.Function) *Graph {
	n := len(fn.Blocks)
	g := &Graph{
		Fn:     fn,
		Succ:   make([][]int, n),
		Pred:   make([][]int, n),
		RPONum: make([]int, n),
	}
	for i, b := range fn.Blocks {
		g.Succ[i] = b.Succs(nil)
	}
	for i, ss := range g.Succ {
		for _, s := range ss {
			g.Pred[s] = append(g.Pred[s], i)
		}
	}
	// Postorder DFS from the entry block, then reverse.
	seen := make([]bool, n)
	post := make([]int, 0, n)
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Succ[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	g.RPO = make([]int, len(post))
	for i := range post {
		g.RPO[i] = post[len(post)-1-i]
	}
	for i := range g.RPONum {
		g.RPONum[i] = -1
	}
	for i, b := range g.RPO {
		g.RPONum[b] = i
	}
	return g
}

// Reachable reports whether block b is reachable from the entry.
func (g *Graph) Reachable(b int) bool { return g.RPONum[b] >= 0 }

// Dominators computes the immediate-dominator array using the classic
// Cooper–Harvey–Kennedy iterative algorithm. idom[entry] == entry;
// idom[b] == -1 for unreachable blocks.
func (g *Graph) Dominators() []int {
	n := len(g.Fn.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for g.RPONum[a] > g.RPONum[b] {
				a = idom[a]
			}
			for g.RPONum[b] > g.RPONum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.RPO {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Pred[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b given the idom array.
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == idom[b] { // reached the entry
			return a == b
		}
		b = idom[b]
	}
}

// Loop describes one natural loop.
type Loop struct {
	Header int
	// Latches are the blocks with back edges to the header.
	Latches []int
	// Body is the set of blocks in the loop, including the header,
	// in ascending block order.
	Body []int
}

// NaturalLoops finds all natural loops (back edges t→h where h dominates t)
// and merges loops sharing a header. Loops are returned in ascending header
// order.
func (g *Graph) NaturalLoops() []*Loop {
	idom := g.Dominators()
	byHeader := map[int]*Loop{}
	var headers []int
	for _, t := range g.RPO {
		for _, h := range g.Succ[t] {
			if !Dominates(idom, h, t) {
				continue
			}
			l := byHeader[h]
			if l == nil {
				l = &Loop{Header: h}
				byHeader[h] = l
				headers = append(headers, h)
			}
			l.Latches = append(l.Latches, t)
		}
	}
	// Compute each loop body: header plus all blocks that reach a latch
	// without passing through the header.
	for _, h := range headers {
		l := byHeader[h]
		in := map[int]bool{h: true}
		var stack []int
		for _, t := range l.Latches {
			if !in[t] {
				in[t] = true
				stack = append(stack, t)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Pred[b] {
				if !in[p] && g.Reachable(p) {
					in[p] = true
					stack = append(stack, p)
				}
			}
		}
		for b := range in {
			l.Body = append(l.Body, b)
		}
		sortInts(l.Body)
		sortInts(l.Latches)
	}
	sortInts(headers)
	loops := make([]*Loop, len(headers))
	for i, h := range headers {
		loops[i] = byHeader[h]
	}
	return loops
}

// Contains reports whether block b is in the loop body.
func (l *Loop) Contains(b int) bool {
	for _, x := range l.Body {
		if x == b {
			return true
		}
	}
	return false
}

func sortInts(s []int) {
	// Insertion sort: loop bodies are small and this keeps the package
	// dependency-free.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
