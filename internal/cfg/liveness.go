package cfg

import (
	"lightwsp/internal/isa"
)

// RegSet is a set of registers, one bit per architectural register.
// isa.NumRegs is 32, so a uint32 covers the file.
type RegSet uint32

// Add returns s with r added.
func (s RegSet) Add(r isa.Reg) RegSet { return s | 1<<uint(r) }

// Remove returns s with r removed.
func (s RegSet) Remove(r isa.Reg) RegSet { return s &^ (1 << uint(r)) }

// Has reports whether r is in s.
func (s RegSet) Has(r isa.Reg) bool { return s&(1<<uint(r)) != 0 }

// Union returns s ∪ t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Count returns the number of registers in s.
func (s RegSet) Count() int {
	n := 0
	for x := uint32(s); x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Regs returns the members of s in ascending order.
func (s RegSet) Regs() []isa.Reg {
	var out []isa.Reg
	for r := 0; r < isa.NumRegs; r++ {
		if s.Has(isa.Reg(r)) {
			out = append(out, isa.Reg(r))
		}
	}
	return out
}

// Liveness holds the result of live-variable analysis for one function.
type Liveness struct {
	// LiveIn[b] is the set of registers live at the entry of block b.
	LiveIn []RegSet
	// LiveOut[b] is the set live at the exit of block b.
	LiveOut []RegSet
}

// InstrEffect returns (use, def) register sets of a single instruction.
func InstrEffect(in *isa.Instr) (use, def RegSet) {
	var buf [8]isa.Reg
	for _, r := range in.Uses(buf[:0]) {
		use = use.Add(r)
	}
	if d, ok := in.Defs(); ok {
		def = def.Add(d)
	}
	return use, def
}

// ComputeLiveness runs the standard backward iterative dataflow analysis:
//
//	LiveOut[b] = ∪ LiveIn[s] for s in succ(b)
//	LiveIn[b]  = use[b] ∪ (LiveOut[b] − def[b])
//
// Ret uses its operand; the analysis is intraprocedural (the compiler puts
// region boundaries at every call site, so checkpoints never need to be
// reasoned about across function bodies).
func ComputeLiveness(g *Graph) *Liveness {
	n := len(g.Fn.Blocks)
	lv := &Liveness{LiveIn: make([]RegSet, n), LiveOut: make([]RegSet, n)}
	use := make([]RegSet, n)
	def := make([]RegSet, n)
	for b, blk := range g.Fn.Blocks {
		// Backward scan composes per-instruction effects into
		// block-level upward-exposed uses and defs.
		var u, d RegSet
		for i := len(blk.Instrs) - 1; i >= 0; i-- {
			iu, id := InstrEffect(&blk.Instrs[i])
			u = (u &^ id) | iu
			d |= id
		}
		use[b], def[b] = u, d
	}
	// Iterate to a fixed point; visiting in reverse RPO converges fast.
	for changed := true; changed; {
		changed = false
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := g.RPO[i]
			var out RegSet
			for _, s := range g.Succ[b] {
				out |= lv.LiveIn[s]
			}
			in := use[b] | (out &^ def[b])
			if out != lv.LiveOut[b] || in != lv.LiveIn[b] {
				lv.LiveOut[b] = out
				lv.LiveIn[b] = in
				changed = true
			}
		}
	}
	return lv
}

// LiveBefore returns the set of registers live immediately before
// instruction index idx of block b, derived by walking backward from the
// block's live-out set.
func (lv *Liveness) LiveBefore(g *Graph, b, idx int) RegSet {
	live := lv.LiveOut[b]
	blk := g.Fn.Blocks[b]
	for i := len(blk.Instrs) - 1; i >= idx; i-- {
		u, d := InstrEffect(&blk.Instrs[i])
		live = (live &^ d) | u
	}
	return live
}
