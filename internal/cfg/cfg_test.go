package cfg

import (
	"testing"
	"testing/quick"

	"lightwsp/internal/isa"
)

// diamond builds: b0 -> b1/b2 -> b3(halt)
func diamond(t *testing.T) *isa.Function {
	t.Helper()
	b := isa.NewBuilder("t")
	b.Func("f")
	b.MovImm(1, 1)
	b.Branch(1, 1, 2)
	b.NewBlock() // b1
	b.MovImm(2, 2)
	b.Jump(3)
	b.NewBlock() // b2
	b.MovImm(2, 3)
	b.Jump(3)
	b.NewBlock() // b3
	b.Store(2, 0, 1)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p.Funcs[0]
}

// loopFn builds: b0 -> b1(loop: body, branch b1/b2) -> b2(halt)
func loopFn(t *testing.T) *isa.Function {
	t.Helper()
	b := isa.NewBuilder("t")
	b.Func("f")
	b.MovImm(1, 0)
	b.MovImm(2, 80)
	b.Jump(1)
	b.NewBlock() // b1
	b.Store(1, 0, 2)
	b.AddImm(1, 1, 8)
	b.CmpLT(3, 1, 2)
	b.Branch(3, 1, 2)
	b.NewBlock() // b2
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p.Funcs[0]
}

func TestCFGEdges(t *testing.T) {
	g := New(diamond(t))
	if len(g.Succ[0]) != 2 || g.Succ[0][0] != 1 || g.Succ[0][1] != 2 {
		t.Errorf("succ(b0) = %v", g.Succ[0])
	}
	if len(g.Pred[3]) != 2 {
		t.Errorf("pred(b3) = %v", g.Pred[3])
	}
	if len(g.RPO) != 4 || g.RPO[0] != 0 {
		t.Errorf("RPO = %v", g.RPO)
	}
}

func TestUnreachableBlock(t *testing.T) {
	f := diamond(t)
	// Append an unreachable block.
	f.Blocks = append(f.Blocks, &isa.Block{Instrs: []isa.Instr{{Op: isa.Halt}}})
	g := New(f)
	if g.Reachable(4) {
		t.Error("block 4 should be unreachable")
	}
	if len(g.RPO) != 4 {
		t.Errorf("RPO should exclude unreachable block: %v", g.RPO)
	}
	idom := g.Dominators()
	if idom[4] != -1 {
		t.Errorf("idom of unreachable block = %d", idom[4])
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := New(diamond(t))
	idom := g.Dominators()
	want := []int{0, 0, 0, 0}
	for b, w := range want {
		if idom[b] != w {
			t.Errorf("idom[%d] = %d, want %d", b, idom[b], w)
		}
	}
	if !Dominates(idom, 0, 3) {
		t.Error("entry must dominate exit")
	}
	if Dominates(idom, 1, 3) {
		t.Error("b1 must not dominate b3")
	}
	if !Dominates(idom, 2, 2) {
		t.Error("block must dominate itself")
	}
}

func TestNaturalLoopDetection(t *testing.T) {
	g := New(loopFn(t))
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Errorf("header = %d, want 1", l.Header)
	}
	if len(l.Latches) != 1 || l.Latches[0] != 1 {
		t.Errorf("latches = %v", l.Latches)
	}
	if len(l.Body) != 1 || !l.Contains(1) || l.Contains(0) {
		t.Errorf("body = %v", l.Body)
	}
}

func TestNestedLoops(t *testing.T) {
	// b0 -> b1(outer hdr) -> b2(inner hdr, latch to b2) -> b3(latch to b1) -> b4
	b := isa.NewBuilder("t")
	b.Func("f")
	b.MovImm(1, 0)
	b.Jump(1)
	b.NewBlock() // b1 outer header
	b.AddImm(1, 1, 1)
	b.Jump(2)
	b.NewBlock() // b2 inner header+latch
	b.AddImm(2, 2, 1)
	b.CmpLT(3, 2, 1)
	b.Branch(3, 2, 3)
	b.NewBlock() // b3 outer latch
	b.CmpLT(3, 1, 2)
	b.Branch(3, 1, 4)
	b.NewBlock() // b4
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := New(p.Funcs[0])
	loops := g.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if outer.Header != 1 || inner.Header != 2 {
		t.Fatalf("headers = %d,%d", outer.Header, inner.Header)
	}
	if !outer.Contains(2) || !outer.Contains(3) {
		t.Errorf("outer body = %v", outer.Body)
	}
	if inner.Contains(1) || inner.Contains(3) {
		t.Errorf("inner body = %v", inner.Body)
	}
}

func TestRegSetOps(t *testing.T) {
	var s RegSet
	s = s.Add(3).Add(7).Add(3)
	if !s.Has(3) || !s.Has(7) || s.Has(5) {
		t.Errorf("set membership wrong: %b", s)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d, want 2", s.Count())
	}
	s = s.Remove(3)
	if s.Has(3) || s.Count() != 1 {
		t.Errorf("Remove failed: %b", s)
	}
	regs := RegSet(0).Add(1).Add(31).Regs()
	if len(regs) != 2 || regs[0] != 1 || regs[1] != 31 {
		t.Errorf("Regs = %v", regs)
	}
}

func TestRegSetProperties(t *testing.T) {
	add := func(s uint32, r uint8) bool {
		set := RegSet(s).Add(isa.Reg(r % isa.NumRegs))
		return set.Has(isa.Reg(r % isa.NumRegs))
	}
	if err := quick.Check(add, nil); err != nil {
		t.Error(err)
	}
	unionCount := func(a, b uint32) bool {
		u := RegSet(a).Union(RegSet(b))
		return u.Count() <= RegSet(a).Count()+RegSet(b).Count() &&
			u.Count() >= RegSet(a).Count() && u.Count() >= RegSet(b).Count()
	}
	if err := quick.Check(unionCount, nil); err != nil {
		t.Error(err)
	}
}

func TestLivenessStraightLine(t *testing.T) {
	// r2 defined in b0 and b?; used in b3 store. r1 used in b3 store addr.
	f := diamond(t)
	g := New(f)
	lv := ComputeLiveness(g)
	// At entry of b3, r1 (branch src defined in b0... r1=movi in b0) and r2 live.
	if !lv.LiveIn[3].Has(1) || !lv.LiveIn[3].Has(2) {
		t.Errorf("LiveIn[b3] = %v", lv.LiveIn[3].Regs())
	}
	// r2 is defined in both b1 and b2, so it is NOT live into b1/b2.
	if lv.LiveIn[1].Has(2) || lv.LiveIn[2].Has(2) {
		t.Errorf("r2 must not be live into b1/b2")
	}
	// r1 is live through b1 and b2 (defined b0, used b3).
	if !lv.LiveIn[1].Has(1) || !lv.LiveOut[1].Has(1) {
		t.Errorf("r1 must be live through b1")
	}
	// Nothing is live out of the exit block.
	if lv.LiveOut[3] != 0 {
		t.Errorf("LiveOut[exit] = %v", lv.LiveOut[3].Regs())
	}
}

func TestLivenessLoop(t *testing.T) {
	g := New(loopFn(t))
	lv := ComputeLiveness(g)
	// r1 and r2 are live around the loop (b1 -> b1).
	if !lv.LiveIn[1].Has(1) || !lv.LiveIn[1].Has(2) {
		t.Errorf("LiveIn[loop] = %v", lv.LiveIn[1].Regs())
	}
	if !lv.LiveOut[0].Has(1) || !lv.LiveOut[0].Has(2) {
		t.Errorf("LiveOut[preheader] = %v", lv.LiveOut[0].Regs())
	}
	// r3 (the compare temp) is dead at loop entry.
	if lv.LiveIn[1].Has(3) {
		t.Error("r3 must be dead at loop entry")
	}
}

func TestLiveBefore(t *testing.T) {
	g := New(loopFn(t))
	lv := ComputeLiveness(g)
	// Before the CmpLT in b1 (index 2), r1 and r2 live; r3 not yet.
	live := lv.LiveBefore(g, 1, 2)
	if !live.Has(1) || !live.Has(2) || live.Has(3) {
		t.Errorf("LiveBefore(b1,2) = %v", live.Regs())
	}
	// Before the Branch (index 3), r3 is live.
	live = lv.LiveBefore(g, 1, 3)
	if !live.Has(3) {
		t.Errorf("LiveBefore(b1,3) = %v", live.Regs())
	}
	// LiveBefore at index 0 equals LiveIn.
	if lv.LiveBefore(g, 1, 0) != lv.LiveIn[1] {
		t.Error("LiveBefore(b,0) != LiveIn[b]")
	}
}

func TestInstrEffect(t *testing.T) {
	in := isa.Instr{Op: isa.Add, Rd: 1, Rs1: 2, Rs2: 3}
	u, d := InstrEffect(&in)
	if !u.Has(2) || !u.Has(3) || u.Has(1) {
		t.Errorf("use = %v", u.Regs())
	}
	if !d.Has(1) || d.Count() != 1 {
		t.Errorf("def = %v", d.Regs())
	}
}

func TestRPOIsTopologicalOnAcyclicCFG(t *testing.T) {
	g := New(diamond(t))
	// In an acyclic CFG, every edge must go forward in RPO.
	for _, b := range g.RPO {
		for _, s := range g.Succ[b] {
			if g.RPONum[s] <= g.RPONum[b] {
				t.Fatalf("edge b%d->b%d goes backward in RPO", b, s)
			}
		}
	}
}

func TestDominatorsIdempotent(t *testing.T) {
	f := loopFn(t)
	g := New(f)
	a := g.Dominators()
	b := g.Dominators()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Dominators not deterministic")
		}
	}
}
