// Package baseline provides the comparison persistence schemes of the
// paper's evaluation, re-implemented from their published mechanisms as
// machine.Scheme parameterizations: Capri [53], PPA [108], cWSP [110], an
// idealized partial-system-persistence scheme (BBB-like [6], Figure 9), the
// naive sfence-per-region variant LRPO is motivated against (§III-B), and
// the non-persistent baseline (Optane memory mode) all results are
// normalized to.
package baseline

import "lightwsp/internal/machine"

// Baseline is Intel Optane PMem's memory mode with the original binary:
// DRAM cache enabled, no persistence, no crash consistency (§V-A).
func Baseline() machine.Scheme {
	return machine.Scheme{
		Name:         "baseline",
		UseDRAMCache: true,
	}
}

// PSPIdeal is an idealized partial-system-persistence scheme modeled on
// BBB [6] / eADR: battery-backed buffers make persistence itself free (no
// persist barriers, no logging), but PSP cannot use DRAM as a last-level
// cache (§I) — every LLC miss pays the full PM latency. Figure 9.
func PSPIdeal() machine.Scheme {
	return machine.Scheme{
		Name:         "psp-ideal",
		UseDRAMCache: false,
	}
}

// Capri persists through a separate 64-byte-granular path from L1 to PM
// (every 8-byte store ships a full cacheline: 8× write amplification), and
// with multiple memory controllers must stop the path at each region end
// until the previous region is fully flushed (§II-C2, §V-B). It runs the
// region-instrumented binary: Capri's compiler also forms regions and
// checkpoints their live-outs.
func Capri() machine.Scheme {
	return machine.Scheme{
		Name:            "capri",
		Instrumented:    true,
		UsePersistPath:  true,
		EntryBytes:      64,
		StallAtBoundary: true,
		UseDRAMCache:    true,
	}
}

// PPAStoresPerRegion approximates PPA's implicit region length: a region
// ends when the physical register file can no longer enforce store
// integrity (§II-C2), which under register pressure yields regions much
// shorter than LightWSP's compiler-formed ones — the effect the paper's
// Figure 8 efficiency gap comes from.
const PPAStoresPerRegion = 16

// PPA runs the original binary (regions are hardware-delineated), writes
// stores back eagerly as they reach L1 — so persistence overlaps in-region
// execution — but must stall at every implicit region boundary until all
// pending stores persist (§II-C2). Near-zero instruction overhead, boundary
// stalls instead.
func PPA() machine.Scheme {
	return machine.Scheme{
		Name:           "ppa",
		UsePersistPath: true,
		EntryBytes:     8,
		HWRegionStores: PPAStoresPerRegion,
		UseDRAMCache:   true,
	}
}

// CWSPUndoDelay is the extra PM-write cycles cWSP's in-line undo logging
// costs after mitigation: each persist must copy the original data before
// the write (§II-C2).
const CWSPUndoDelay = 2

// CWSP forms idempotent regions (no register checkpoints — boundaries
// shrink to a single PC store and CkptStores are stripped at load time) and
// never orders persists: memory-controller speculation flushes eagerly,
// paying an undo-logging delay on every PM write instead (§II-C2, §V-E).
func CWSP() machine.Scheme {
	return machine.Scheme{
		Name:             "cwsp",
		Instrumented:     true,
		StripCheckpoints: true,
		UsePersistPath:   true,
		EntryBytes:       8,
		PMWriteExtra:     CWSPUndoDelay,
		UseDRAMCache:     true,
	}
}

// NaiveSfence is LightWSP without LRPO: an sfence at every region boundary
// stalls the core until the region's stores persist (the strawman of
// §III-B). Used by the LRPO ablation.
func NaiveSfence() machine.Scheme {
	return machine.Scheme{
		Name:            "naive-sfence",
		Instrumented:    true,
		UsePersistPath:  true,
		EntryBytes:      8,
		StallAtBoundary: true,
		UseDRAMCache:    true,
	}
}

// All returns every comparison scheme. LightWSP itself lives in
// internal/core; callers add core.Scheme() alongside these.
func All() []machine.Scheme {
	return []machine.Scheme{Baseline(), PSPIdeal(), Capri(), PPA(), CWSP(), NaiveSfence()}
}
