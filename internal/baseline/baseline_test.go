package baseline

import (
	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/isa"
	"lightwsp/internal/machine"
)

// storeHeavy builds a single-threaded store loop — the workload that
// separates the schemes most sharply.
func storeHeavy(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("sh")
	b.Func("main")
	b.MovImm(1, 0x10000)
	b.MovImm(2, 0)
	b.MovImm(3, 400)
	loop := b.NewBlock()
	b.Store(1, 0, 2)
	b.AddImm(1, 1, 8)
	b.AddImm(2, 2, 1)
	// a little compute between stores
	b.AddImm(4, 4, 3)
	b.Xor(5, 5, 4)
	b.CmpLT(6, 2, 3)
	b.Branch(6, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runScheme(t *testing.T, prog *isa.Program, sch machine.Scheme) *machine.Stats {
	t.Helper()
	if sch.Instrumented {
		res, err := compiler.Compile(prog, compiler.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		prog = res.Prog
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 1
	sys, err := machine.NewSystem(prog, cfg, sch)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(100_000_000) {
		t.Fatalf("%s did not complete", sch.Name)
	}
	return &sys.Stats
}

func TestAllSchemesHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if s.Name == "" || seen[s.Name] {
			t.Errorf("scheme name %q empty or duplicated", s.Name)
		}
		seen[s.Name] = true
	}
	if len(All()) != 6 {
		t.Fatalf("schemes = %d, want 6", len(All()))
	}
}

func TestCapriAmplifiesTraffic(t *testing.T) {
	prog := storeHeavy(t)
	capri := runScheme(t, prog, Capri())
	// Capri's path carries 64 B per store at the same bandwidth: it must
	// be much slower than PPA's 8 B path on a store-heavy loop.
	ppa := runScheme(t, prog, PPA())
	if capri.Cycles <= ppa.Cycles {
		t.Fatalf("capri (%d cycles) not slower than ppa (%d)", capri.Cycles, ppa.Cycles)
	}
	if capri.StallDrain == 0 {
		t.Fatal("capri recorded no boundary-drain stalls")
	}
}

func TestPPAStallsAtHardwareBoundaries(t *testing.T) {
	st := runScheme(t, storeHeavy(t), PPA())
	if st.StallDrain == 0 {
		t.Fatal("PPA recorded no region-boundary stalls")
	}
	// 400 stores at one region per PPAStoresPerRegion.
	wantRegions := uint64(400 / PPAStoresPerRegion)
	if st.RegionsClosed < wantRegions {
		t.Fatalf("hardware regions = %d, want >= %d", st.RegionsClosed, wantRegions)
	}
	if st.Boundaries != 0 || st.Checkpoints != 0 {
		t.Fatal("PPA must run the uninstrumented binary")
	}
}

func TestCWSPStripsCheckpoints(t *testing.T) {
	st := runScheme(t, storeHeavy(t), CWSP())
	if st.Checkpoints != 0 {
		t.Fatalf("cWSP executed %d checkpoint stores", st.Checkpoints)
	}
	if st.Boundaries == 0 {
		t.Fatal("cWSP must keep region boundaries (idempotent regions)")
	}
	// No ordering stalls: speculation never waits.
	if st.StallDrain != 0 {
		t.Fatalf("cWSP stalled %d cycles at boundaries", st.StallDrain)
	}
}

func TestCWSPUndoDelaySlowsWrites(t *testing.T) {
	prog := storeHeavy(t)
	cwsp := runScheme(t, prog, CWSP())
	noDelay := CWSP()
	noDelay.PMWriteExtra = 0
	fast := runScheme(t, prog, noDelay)
	if cwsp.Cycles < fast.Cycles {
		t.Fatalf("undo delay made cWSP faster: %d vs %d", cwsp.Cycles, fast.Cycles)
	}
}

func TestPSPIdealHasNoPersistMachinery(t *testing.T) {
	st := runScheme(t, storeHeavy(t), PSPIdeal())
	if st.PersistEntries != 0 || st.StallFEBFull != 0 {
		t.Fatal("ideal PSP must not touch the persist path")
	}
	if st.DRAMHits+st.DRAMMisses != 0 {
		t.Fatal("ideal PSP must not have a DRAM cache")
	}
}

func TestBaselineIsFastest(t *testing.T) {
	prog := storeHeavy(t)
	base := runScheme(t, prog, Baseline())
	for _, sch := range []machine.Scheme{Capri(), PPA(), CWSP(), NaiveSfence()} {
		st := runScheme(t, prog, sch)
		if st.Cycles < base.Cycles {
			t.Errorf("%s (%d cycles) beat the baseline (%d)", sch.Name, st.Cycles, base.Cycles)
		}
	}
}

func TestNaiveSfenceSlowerThanGatedLightWSP(t *testing.T) {
	prog := storeHeavy(t)
	naive := runScheme(t, prog, NaiveSfence())
	light := runScheme(t, prog, machine.Scheme{
		Name: "lightwsp", Instrumented: true, UsePersistPath: true,
		EntryBytes: 8, GatedWPQ: true, UseDRAMCache: true,
	})
	if naive.Cycles <= light.Cycles {
		t.Fatalf("naive sfence (%d) not slower than LRPO (%d)", naive.Cycles, light.Cycles)
	}
}
