package recovery

import (
	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/isa"
	"lightwsp/internal/machine"
	"lightwsp/internal/mem"
)

// accumProg builds a program whose result depends on every iteration: sum
// 1..n into rAcc, publishing the running total each step. Any lost or
// duplicated recovery work changes the final word.
func accumProg(t *testing.T, n int) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("accum")
	b.Func("main")
	b.MovImm(1, 0x2000)
	b.MovImm(2, 0) // i
	b.MovImm(3, int64(n))
	b.MovImm(4, 0) // acc
	loop := b.NewBlock()
	b.AddImm(2, 2, 1)
	b.Add(4, 4, 2)
	b.Store(1, 0, 4)
	b.CmpLT(5, 2, 3)
	b.Branch(5, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func lightwspScheme() machine.Scheme {
	return machine.Scheme{Name: "lightwsp", Instrumented: true, UsePersistPath: true,
		EntryBytes: 8, GatedWPQ: true, UseDRAMCache: true}
}

// failAndRecover cuts power on sys and hands back the recovered system.
func failAndRecover(t *testing.T, sys *machine.System, res *compiler.Result, cfg machine.Config) *machine.System {
	t.Helper()
	rep := sys.PowerFail()
	next, err := Recover(res.Prog, cfg, lightwspScheme(), sys.PM(), res.Recipes, rep.RegionCounter)
	if err != nil {
		t.Fatal(err)
	}
	return next
}

func TestDoubleFailureRoundTrip(t *testing.T) {
	// Two successive power failures — fail, recover, run a little, fail
	// again, recover again — must still converge to the failure-free
	// result: persistence is all-or-nothing per region regardless of how
	// many times the chain is cut.
	const n = 64
	res, err := compiler.Compile(accumProg(t, n), compiler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 1

	oracle, err := machine.NewSystem(res.Prog, cfg, lightwspScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.Run(10_000_000) {
		t.Fatal("oracle run did not complete")
	}
	want := oracle.PM().Read(0x2000)
	if want != n*(n+1)/2 {
		t.Fatalf("oracle result %d, want %d", want, n*(n+1)/2)
	}

	for _, cuts := range [][2]uint64{{40, 40}, {100, 30}, {250, 1}} {
		sys, err := machine.NewSystem(res.Prog, cfg, lightwspScheme())
		if err != nil {
			t.Fatal(err)
		}
		sys.RunUntil(cuts[0])
		sys = failAndRecover(t, sys, res, cfg)
		sys.RunUntil(cuts[1])
		sys = failAndRecover(t, sys, res, cfg)
		if !sys.Run(10_000_000) {
			t.Fatalf("cuts %v: final run did not complete", cuts)
		}
		if err := VerifyEquivalence(sys.PM(), oracle.PM()); err != nil {
			t.Fatalf("cuts %v: %v", cuts, err)
		}
	}
}

func TestFailureDuringRecoveryRoundTrip(t *testing.T) {
	// The tightest double failure: power is cut the instant recovery hands
	// off, before the recovered machine executes one cycle. The crash image
	// must survive unchanged through the second failure, and the third
	// machine must still finish with the oracle's state.
	res, err := compiler.Compile(accumProg(t, 48), compiler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 1

	oracle, err := machine.NewSystem(res.Prog, cfg, lightwspScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.Run(10_000_000) {
		t.Fatal("oracle run did not complete")
	}

	sys, err := machine.NewSystem(res.Prog, cfg, lightwspScheme())
	if err != nil {
		t.Fatal(err)
	}
	sys.RunUntil(120)
	sys = failAndRecover(t, sys, res, cfg)
	crash := sys.PM().Clone()
	// Cut again at cycle 0 of the recovered machine: a failure during
	// recovery itself.
	sys = failAndRecover(t, sys, res, cfg)
	if err := VerifyEquivalence(sys.PM(), crash); err != nil {
		t.Fatalf("zero-cycle failure perturbed the crash image: %v", err)
	}
	if !sys.Run(10_000_000) {
		t.Fatal("final run did not complete")
	}
	if err := VerifyEquivalence(sys.PM(), oracle.PM()); err != nil {
		t.Fatal(err)
	}
	if err := VerifyPMMatchesArch(sys.PM(), sys.Arch()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyPMMatchesArch(t *testing.T) {
	pm, arch := mem.NewImage(), mem.NewImage()
	pm.Write(0x100, 7)
	arch.Write(0x100, 7)
	if err := VerifyPMMatchesArch(pm, arch); err != nil {
		t.Fatal(err)
	}
	// Reserved-range state (checkpoints, stacks) is not program data.
	pm.Write(mem.CkptAddr(0, 3), 1234)
	if err := VerifyPMMatchesArch(pm, arch); err != nil {
		t.Fatalf("reserved-range difference should be ignored: %v", err)
	}
	arch.Write(0x108, 9)
	if err := VerifyPMMatchesArch(pm, arch); err == nil {
		t.Fatal("lost program data accepted")
	}
}
