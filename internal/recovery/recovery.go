// Package recovery implements LightWSP's power-failure recovery runtime
// (§III-E, §IV-F): after the memory controllers' drain protocol leaves PM
// holding exactly the persisted-region prefix, the runtime (1) rolls back
// any undo-logged WPQ-overflow writes of uncommitted regions (§IV-D),
// (2) reloads each thread's registers, stack pointer and recovery PC from
// its PM-resident checkpoint array, and (3) reconstructs pruned checkpoints
// from the compiler's recipes — then execution resumes at the beginning of
// each thread's latest unpersisted region.
package recovery

import (
	"fmt"

	"lightwsp/internal/compiler"
	"lightwsp/internal/isa"
	"lightwsp/internal/machine"
	"lightwsp/internal/mem"
	"lightwsp/internal/wpq"
)

// RollbackUndoLogs reverts the undo-logged overflow writes of every memory
// controller whose escape-path region never committed. It must run before
// thread state is read: overflow writes may cover checkpoint slots. It
// returns the total records rolled back.
func RollbackUndoLogs(pm *mem.Image, numMCs int) int {
	n := 0
	for m := 0; m < numMCs; m++ {
		n += wpq.RecoverUndo(m, pm.Read, pm.Write)
	}
	return n
}

// ThreadStates reads each thread's recovery state from its checkpoint array
// in the persisted image and applies the pruning recipes recorded for its
// recovery PC.
func ThreadStates(pm *mem.Image, threads int, prog *isa.Program, recipes map[uint64][]compiler.Recipe) ([]machine.ThreadState, error) {
	states := make([]machine.ThreadState, threads)
	for t := 0; t < threads; t++ {
		st := &states[t]
		pcWord := pm.Read(mem.CkptAddr(t, mem.CkptSlotPC))
		st.PC = isa.UnpackPC(pcWord)
		if err := validatePC(prog, st.PC); err != nil {
			return nil, fmt.Errorf("recovery: thread %d: %w", t, err)
		}
		st.SP = pm.Read(mem.CkptAddr(t, mem.CkptSlotSP))
		for r := 0; r < isa.NumRegs; r++ {
			st.Regs[r] = pm.Read(mem.CkptAddr(t, r))
		}
		for _, rec := range recipes[pcWord] {
			st.Regs[rec.Reg] = uint64(rec.Const)
		}
	}
	return states, nil
}

func validatePC(prog *isa.Program, pc isa.PC) error {
	if pc.Func < 0 || pc.Func >= len(prog.Funcs) {
		return fmt.Errorf("recovery PC %v: function out of range", pc)
	}
	f := prog.Funcs[pc.Func]
	if pc.Block < 0 || pc.Block >= len(f.Blocks) {
		return fmt.Errorf("recovery PC %v: block out of range", pc)
	}
	if pc.Index < 0 || pc.Index >= len(f.Blocks[pc.Block].Instrs) {
		return fmt.Errorf("recovery PC %v: index out of range", pc)
	}
	return nil
}

// Recover builds a recovered machine from a crash image: undo rollback,
// thread-state reload, and a region counter seeded above every persisted
// ID. The returned system resumes each thread at its latest unpersisted
// region.
func Recover(prog *isa.Program, cfg machine.Config, scheme machine.Scheme,
	pm *mem.Image, recipes map[uint64][]compiler.Recipe, regionCounter uint64) (*machine.System, error) {
	RollbackUndoLogs(pm, cfg.NumMCs)
	states, err := ThreadStates(pm, cfg.Threads, prog, recipes)
	if err != nil {
		return nil, err
	}
	return machine.NewRecoveredSystem(prog, cfg, scheme, pm, states, regionCounter+1)
}

// ValidateImage checks that a persisted image is a viable recovery point —
// its undo logs roll back cleanly and every thread's checkpointed PC lands
// inside the program — without building a machine or mutating pm. Durable
// snapshot stores use it to vet a deserialized image before committing to
// resume from it; a snapshot file truncated by the very power failure it was
// meant to survive fails here and the store falls back to an older one.
func ValidateImage(prog *isa.Program, cfg machine.Config, recipes map[uint64][]compiler.Recipe, pm *mem.Image) error {
	scratch := pm.Clone()
	RollbackUndoLogs(scratch, cfg.NumMCs)
	_, err := ThreadStates(scratch, cfg.Threads, prog, recipes)
	return err
}

// UserRangeEnd is the top of the address range holding program data: above
// it live the undo logs, call stacks and checkpoint arrays, whose final
// contents legitimately differ between a run that crashed and recovered and
// one that never crashed (a recovered run re-seeds all checkpoint slots).
// Crash-consistency comparisons use [0, UserRangeEnd).
const UserRangeEnd = mem.UndoLogBase

// VerifyEquivalence checks that two final persisted images agree on all
// program data — the crash-anywhere/recover/finish result must be
// indistinguishable from the failure-free run (invariant 5 of DESIGN.md).
func VerifyEquivalence(got, want *mem.Image) error {
	if got.EqualRange(want, 0, UserRangeEnd) {
		return nil
	}
	diffs := got.Diff(want, 8)
	return fmt.Errorf("recovery: persisted data diverges from failure-free run: %v", diffs)
}

// VerifyPMMatchesArch checks that a completed run's persisted image agrees
// with its final architectural state on all program data. This is the
// invariant every whole-system-persistence run must satisfy at completion —
// and the one multi-threaded crash comparisons fall back to, because
// commutative critical sections can legally interleave differently across a
// recovery, so the final data need not match any one failure-free run
// word-for-word.
func VerifyPMMatchesArch(pm, arch *mem.Image) error {
	if pm.EqualRange(arch, 0, UserRangeEnd) {
		return nil
	}
	diffs := pm.Diff(arch, 8)
	return fmt.Errorf("recovery: persisted data diverges from final architectural state: %v", diffs)
}
