package recovery

import (
	"strings"
	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/isa"
	"lightwsp/internal/machine"
	"lightwsp/internal/mem"
)

func crashImage(t *testing.T, threads int) *mem.Image {
	t.Helper()
	pm := mem.NewImage()
	for tid := 0; tid < threads; tid++ {
		for r := 0; r < isa.NumRegs; r++ {
			pm.Write(mem.CkptAddr(tid, r), uint64(100*tid+r))
		}
		pm.Write(mem.CkptAddr(tid, mem.CkptSlotPC), isa.PC{Func: 0, Block: 0, Index: 0}.Pack())
		pm.Write(mem.CkptAddr(tid, mem.CkptSlotSP), mem.StackTop(tid))
	}
	return pm
}

func trivialProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("t")
	b.Func("main")
	b.Nop()
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestThreadStatesReadsSlots(t *testing.T) {
	pm := crashImage(t, 2)
	states, err := ThreadStates(pm, 2, trivialProg(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if states[0].Regs[5] != 5 || states[1].Regs[5] != 105 {
		t.Fatalf("register slots misread: %d %d", states[0].Regs[5], states[1].Regs[5])
	}
	if states[1].SP != mem.StackTop(1) {
		t.Fatalf("SP misread: %#x", states[1].SP)
	}
	if states[0].PC != (isa.PC{}) {
		t.Fatalf("PC misread: %v", states[0].PC)
	}
}

func TestThreadStatesAppliesRecipes(t *testing.T) {
	pm := crashImage(t, 1)
	pcWord := pm.Read(mem.CkptAddr(0, mem.CkptSlotPC))
	recipes := map[uint64][]compiler.Recipe{
		pcWord: {{Reg: 7, Const: 424242}},
	}
	states, err := ThreadStates(pm, 1, trivialProg(t), recipes)
	if err != nil {
		t.Fatal(err)
	}
	if states[0].Regs[7] != 424242 {
		t.Fatalf("recipe not applied: r7 = %d", states[0].Regs[7])
	}
	// Registers without recipes keep their slot values.
	if states[0].Regs[6] != 6 {
		t.Fatalf("slot clobbered: r6 = %d", states[0].Regs[6])
	}
}

func TestThreadStatesRejectsCorruptPC(t *testing.T) {
	pm := crashImage(t, 1)
	pm.Write(mem.CkptAddr(0, mem.CkptSlotPC), isa.PC{Func: 99, Block: 0, Index: 0}.Pack())
	if _, err := ThreadStates(pm, 1, trivialProg(t), nil); err == nil {
		t.Fatal("corrupt recovery PC accepted")
	}
	pm.Write(mem.CkptAddr(0, mem.CkptSlotPC), isa.PC{Func: 0, Block: 7, Index: 0}.Pack())
	if _, err := ThreadStates(pm, 1, trivialProg(t), nil); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	pm.Write(mem.CkptAddr(0, mem.CkptSlotPC), isa.PC{Func: 0, Block: 0, Index: 42}.Pack())
	if _, err := ThreadStates(pm, 1, trivialProg(t), nil); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestRollbackUndoLogs(t *testing.T) {
	pm := mem.NewImage()
	// MC 1 has two uncommitted overflow records.
	base := mem.UndoLogAddr(1, 0)
	pm.Write(0x100, 0xBB)      // current (overflow-written) value
	pm.Write(base, 2)          // record count
	pm.Write(base+8, 0x100)    // record 0: addr
	pm.Write(base+16, 0xAA)    // record 0: pre-image
	pm.Write(base+8+16, 0x108) // record 1: addr
	pm.Write(base+16+16, 0)    // record 1: pre-image (zero)
	pm.Write(0x108, 7)
	n := RollbackUndoLogs(pm, 2)
	if n != 2 {
		t.Fatalf("rolled back %d records, want 2", n)
	}
	if pm.Read(0x100) != 0xAA || pm.Read(0x108) != 0 {
		t.Fatalf("pre-images not restored: %#x %#x", pm.Read(0x100), pm.Read(0x108))
	}
	if pm.Read(base) != 0 {
		t.Fatal("undo log not invalidated")
	}
}

func TestRecoverBuildsRunnableSystem(t *testing.T) {
	// A crash image pointing at a program that stores a register and
	// halts: the recovered system must run and persist the restored
	// register value.
	b := isa.NewBuilder("r")
	b.Func("main")
	b.MovImm(1, 0x5000)
	b.Store(1, 0, 9) // r9 comes from the checkpoint slots
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(prog, compiler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pm := crashImage(t, 1) // r9 slot holds 9
	cfg := machine.DefaultConfig()
	cfg.Threads = 1
	sch := machine.Scheme{Name: "lightwsp", Instrumented: true, UsePersistPath: true,
		EntryBytes: 8, GatedWPQ: true, UseDRAMCache: true}
	sys, err := Recover(res.Prog, cfg, sch, pm, res.Recipes, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("recovered system did not complete")
	}
	if got := sys.PM().Read(0x5000); got != 9 {
		t.Fatalf("restored register not used: %d", got)
	}
}

func TestVerifyEquivalence(t *testing.T) {
	a, b := mem.NewImage(), mem.NewImage()
	a.Write(0x100, 1)
	b.Write(0x100, 1)
	if err := VerifyEquivalence(a, b); err != nil {
		t.Fatal(err)
	}
	// Differences above UserRangeEnd are ignored (stacks, checkpoints).
	a.Write(mem.CkptAddr(0, 0), 99)
	if err := VerifyEquivalence(a, b); err != nil {
		t.Fatalf("reserved-range difference should be ignored: %v", err)
	}
	// Differences in program data are reported.
	a.Write(0x200, 5)
	err := VerifyEquivalence(a, b)
	if err == nil {
		t.Fatal("diverging data accepted")
	}
	if !strings.Contains(err.Error(), "0x200") {
		t.Fatalf("diff should name the address: %v", err)
	}
}

func TestValidateImageAcceptsViableCheckpoint(t *testing.T) {
	pm := crashImage(t, 2)
	cfg := machine.DefaultConfig()
	cfg.Threads = 2
	before := pm.Clone()
	if err := ValidateImage(trivialProg(t), cfg, nil, pm); err != nil {
		t.Fatalf("viable image rejected: %v", err)
	}
	// Validation must be read-only: the caller may still recover from pm.
	if !pm.Equal(before) {
		t.Fatalf("ValidateImage mutated the image: %v", pm.Diff(before, 5))
	}
}

func TestValidateImageRejectsCorruptPC(t *testing.T) {
	pm := crashImage(t, 1)
	pm.Write(mem.CkptAddr(0, mem.CkptSlotPC), isa.PC{Func: 99}.Pack())
	cfg := machine.DefaultConfig()
	cfg.Threads = 1
	err := ValidateImage(trivialProg(t), cfg, nil, pm)
	if err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("unexpected error: %v", err)
	}
}
