package persistpath

import (
	"testing"

	"lightwsp/internal/mem"
)

func testCfg() Config {
	return Config{
		FEBEntries:     4,
		BytesPerCredit: 8,
		CreditCycles:   1,
		ChannelCap:     8,
		NumMCs:         2,
		Latency: func(mc int) uint64 {
			if mc == 0 {
				return 10
			}
			return 30 // far controller: NUMA skew
		},
		MCOf: func(addr uint64) int { return int(addr / mem.LineSize % 2) },
	}
}

func entry(addr uint64, region uint64) Entry {
	return Entry{Addr: addr, Val: 1, Region: region, Bytes: 8}
}

func TestEnqueueBackPressure(t *testing.T) {
	p := New(testCfg())
	for i := 0; i < 4; i++ {
		if !p.Enqueue(entry(uint64(i*8), 1)) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if p.Enqueue(entry(100*8, 1)) {
		t.Fatal("full buffer accepted an entry")
	}
	if p.FEBFullCycles != 1 {
		t.Fatalf("FEBFullCycles = %d", p.FEBFullCycles)
	}
}

func TestBandwidthThrottling(t *testing.T) {
	cfg := testCfg()
	cfg.BytesPerCredit = 2 // one 8-byte entry per 4 cycles
	p := New(cfg)
	for i := 0; i < 3; i++ {
		p.Enqueue(entry(uint64(i)*mem.LineSize*2, 1)) // all to MC0
	}
	p.Tick(0)
	if p.Dispatched != 0 {
		t.Fatalf("dispatched %d with 2 credit", p.Dispatched)
	}
	p.Tick(1)
	p.Tick(2)
	p.Tick(3) // 8 bytes accumulated
	if p.Dispatched != 1 {
		t.Fatalf("dispatched = %d, want 1", p.Dispatched)
	}
}

func TestDeliveryRespectsLatencyAndFIFO(t *testing.T) {
	p := New(testCfg())
	p.Enqueue(entry(0, 1))            // MC0
	p.Enqueue(entry(mem.LineSize, 1)) // MC1
	p.Tick(0)                         // 8 bytes credit: one entry dispatched
	p.Tick(1)
	var got []Entry
	sink := func(mc int, e Entry) bool { got = append(got, e); return true }
	p.DeliverReady(9, sink)
	if len(got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	p.DeliverReady(10, sink)
	if len(got) != 1 || got[0].Addr != 0 {
		t.Fatalf("MC0 delivery wrong: %v", got)
	}
	p.DeliverReady(31, sink)
	if len(got) != 2 || got[1].Addr != mem.LineSize {
		t.Fatalf("MC1 delivery wrong: %v", got)
	}
}

func TestBoundaryReplicatesToAllMCs(t *testing.T) {
	p := New(testCfg())
	b := entry(0, 5)
	b.Boundary = true
	p.Enqueue(b)
	p.Tick(0)
	var home, control int
	p.DeliverReady(1000, func(mc int, e Entry) bool {
		if !e.Boundary {
			t.Fatal("non-boundary delivered")
		}
		if e.Control {
			control++
			if mc == 0 {
				t.Fatal("control replica delivered to home controller")
			}
		} else {
			home++
			if mc != 0 {
				t.Fatal("data boundary delivered to wrong controller")
			}
		}
		return true
	})
	if home != 1 || control != 1 {
		t.Fatalf("home=%d control=%d", home, control)
	}
}

func TestBoundaryArrivesAfterEarlierStoresPerChannel(t *testing.T) {
	// The per-channel FIFO property LRPO relies on: even with a full
	// credit budget, a boundary dispatched after stores is delivered
	// after them on every channel.
	p := New(testCfg())
	p.Enqueue(entry(0, 1))            // MC0
	p.Enqueue(entry(mem.LineSize, 1)) // MC1
	b := entry(2*mem.LineSize, 1)     // home MC0
	b.Boundary = true
	p.Enqueue(b)
	p.Tick(0) // 8 bytes/cycle: one entry per tick
	p.Tick(1)
	p.Tick(2)
	var orderMC0, orderMC1 []bool // true = boundary
	p.DeliverReady(1000, func(mc int, e Entry) bool {
		if mc == 0 {
			orderMC0 = append(orderMC0, e.Boundary)
		} else {
			orderMC1 = append(orderMC1, e.Boundary)
		}
		return true
	})
	if len(orderMC0) != 2 || orderMC0[0] || !orderMC0[1] {
		t.Fatalf("MC0 order = %v", orderMC0)
	}
	if len(orderMC1) != 2 || orderMC1[0] || !orderMC1[1] {
		t.Fatalf("MC1 order = %v", orderMC1)
	}
}

func TestSinkRejectionBlocksChannelHead(t *testing.T) {
	p := New(testCfg())
	p.Enqueue(entry(0, 1))
	p.Enqueue(entry(2*mem.LineSize, 2)) // also MC0
	p.Tick(0)
	p.Tick(1)
	calls := 0
	p.DeliverReady(1000, func(mc int, e Entry) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("rejected head must block the channel; calls = %d", calls)
	}
	if p.InFlight() != 2 {
		t.Fatalf("in flight = %d, want 2", p.InFlight())
	}
	delivered := 0
	p.DeliverReady(1000, func(mc int, e Entry) bool { delivered++; return true })
	if delivered != 2 {
		t.Fatalf("retry delivered %d", delivered)
	}
}

func TestChannelCapBackPressure(t *testing.T) {
	cfg := testCfg()
	cfg.ChannelCap = 1
	cfg.FEBEntries = 8
	p := New(cfg)
	p.Enqueue(entry(0, 1))
	p.Enqueue(entry(2*mem.LineSize, 1)) // same MC0 channel
	p.Tick(0)
	if p.InFlight() != 1 || p.FEBLen() != 1 {
		t.Fatalf("cap ignored: inflight=%d feb=%d", p.InFlight(), p.FEBLen())
	}
}

func TestSnoop(t *testing.T) {
	p := New(testCfg())
	p.Enqueue(entry(0x1008, 1))
	if !p.Snoop(mem.LineAddr(0x1008)) {
		t.Fatal("snoop missed a pending line")
	}
	if p.Snoop(0x2000) {
		t.Fatal("snoop false positive")
	}
	if p.SnoopSearches != 2 || p.SnoopConflicts != 1 {
		t.Fatalf("snoop stats = %d/%d", p.SnoopConflicts, p.SnoopSearches)
	}
}

func TestContainsAddrCoversChannels(t *testing.T) {
	p := New(testCfg())
	p.Enqueue(entry(0x40, 1))
	if !p.ContainsAddr(0x40) {
		t.Fatal("FEB entry not found")
	}
	p.Tick(0) // moves to channel
	if p.FEBLen() != 0 {
		t.Fatal("entry did not dispatch")
	}
	if !p.ContainsAddr(0x40) {
		t.Fatal("channel entry not found")
	}
	if p.ContainsAddr(0x48) {
		t.Fatal("false positive")
	}
}

func TestDropAll(t *testing.T) {
	p := New(testCfg())
	p.Enqueue(entry(0, 1))
	p.Enqueue(entry(8, 1))
	p.Tick(0)
	p.DropAll()
	if !p.Empty() {
		t.Fatal("DropAll left entries")
	}
}

func TestEmpty(t *testing.T) {
	p := New(testCfg())
	if !p.Empty() {
		t.Fatal("new path not empty")
	}
	p.Enqueue(entry(0, 1))
	if p.Empty() {
		t.Fatal("path with FEB entry reported empty")
	}
	p.Tick(0)
	if p.Empty() {
		t.Fatal("path with channel entry reported empty")
	}
	p.DeliverReady(1000, func(int, Entry) bool { return true })
	if !p.Empty() {
		t.Fatal("drained path not empty")
	}
}

func TestCreditCapBoundsIdleAccumulation(t *testing.T) {
	p := New(testCfg())
	// A long idle period must not bank unbounded credit.
	for c := uint64(0); c < 100000; c++ {
		p.Tick(c)
	}
	// Now a burst: dispatch is still limited by channel capacity, and the
	// credit counter must not have overflowed into nonsense.
	for i := 0; i < 20; i++ {
		p.Enqueue(entry(uint64(i)*2*64, 1))
	}
	p.Tick(100001)
	if p.InFlight() > testCfg().ChannelCap*2 {
		t.Fatalf("in flight %d exceeds channel caps", p.InFlight())
	}
}

func TestCreditInterval(t *testing.T) {
	cfg := testCfg()
	cfg.BytesPerCredit = 1
	cfg.CreditCycles = 2 // 0.5 B/cycle: one entry per 16 cycles
	p := New(cfg)
	p.Enqueue(entry(0, 1))
	// Credit arrives on even cycles: 7 bytes through cycle 13.
	for c := uint64(0); c < 14; c++ {
		p.Tick(c)
		if p.Dispatched != 0 {
			t.Fatalf("dispatched at cycle %d with insufficient credit", c)
		}
	}
	p.Tick(14) // 8th byte of credit
	if p.Dispatched != 1 {
		t.Fatalf("dispatched = %d after 8 bytes of credit", p.Dispatched)
	}
}
