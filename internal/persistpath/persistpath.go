// Package persistpath models LightWSP's repurposed non-temporal data path
// (§II-A, §III-A): a per-core front-end buffer (the write-combining buffer,
// combining disabled) feeding per-memory-controller FIFO channels under a
// fixed path bandwidth. Stores travel it in 8-byte entries tagged with their
// region ID; the region boundary travels the same FIFO, so per
// (core, controller) channel a boundary always arrives after every earlier
// store of its region — the ordering LightWSP's LRPO protocol relies on.
// Channel latencies differ per controller (the NUMA effect of §II-B), which
// is exactly the skew LRPO must tolerate.
package persistpath

import (
	"lightwsp/internal/mem"
	"lightwsp/internal/probe"
)

// Entry is one unit of persist-path traffic.
type Entry struct {
	// Addr and Val are the store's address and value (8-byte granular).
	Addr, Val uint64
	// Region is the region ID tag (§IV-B).
	Region uint64
	// Boundary marks the PC-checkpointing store that closes Region: it is
	// replicated into every channel, and its delivery tells the MC that
	// the region finished.
	Boundary bool
	// Control marks a replica of a boundary delivered to a non-home MC:
	// it signals "region finished" but occupies no WPQ entry.
	Control bool
	// Core is the issuing core (for per-core outstanding accounting).
	Core int
	// Bytes is the traffic the entry costs on the path: 8 for LightWSP's
	// word-granular entries, 64 for Capri's cacheline flushes (§II-C2).
	Bytes int
	// Born is the cycle the entry was created (store-buffer departure),
	// used for persistence-residency accounting (Eq. (1)'s Tp).
	Born uint64
}

// Config parameterizes one core's persist path.
type Config struct {
	// FEBEntries is the front-end buffer capacity (Table I: 64).
	FEBEntries int
	// BytesPerCredit and CreditCycles set the path bandwidth: every
	// CreditCycles cycles the path earns BytesPerCredit bytes of credit.
	// (2, 1) models the paper's 4 GB/s at 2 GHz; (1, 2) models 1 GB/s.
	BytesPerCredit int
	CreditCycles   uint64
	// ChannelCap bounds in-flight entries per (core, MC) channel; a full
	// channel back-pressures the front-end buffer.
	ChannelCap int
	// NumMCs is the number of memory controllers.
	NumMCs int
	// Latency returns the core→MC transit latency in cycles; unequal
	// values model NUMA skew.
	Latency func(mc int) uint64
	// MCOf maps an address to its home controller.
	MCOf func(addr uint64) int
}

type inflight struct {
	e       Entry
	arrival uint64
}

// Path is one core's persist path: front-end buffer plus channels.
type Path struct {
	cfg      Config
	feb      []Entry
	credit   int
	channels [][]inflight // per MC, FIFO
	// pending mirrors len(feb) + InFlight() so Empty and Pending are O(1):
	// a boundary leaving the front-end buffer replicates into every channel,
	// so dispatch is not occupancy-neutral.
	pending int

	// Stats.
	Dispatched     uint64 // entries that left the front-end buffer
	FEBFullCycles  uint64 // cycles the buffer rejected an enqueue
	SnoopConflicts uint64 // buffer-snooping CAM hits (§IV-G)
	SnoopSearches  uint64 // buffer-snooping CAM searches

	// probe, when set, receives boundary-broadcast events (the path is
	// where a boundary replicates into every controller channel).
	probe probe.Sink
}

// SetProbe attaches an instrumentation sink (nil detaches).
func (p *Path) SetProbe(s probe.Sink) { p.probe = s }

// New builds a persist path.
func New(cfg Config) *Path {
	return &Path{cfg: cfg, channels: make([][]inflight, cfg.NumMCs)}
}

// FEBLen returns the current front-end buffer occupancy.
func (p *Path) FEBLen() int { return len(p.feb) }

// InFlight returns the number of entries in the channels.
func (p *Path) InFlight() int {
	n := 0
	for _, ch := range p.channels {
		n += len(ch)
	}
	return n
}

// Empty reports whether the buffer and all channels are drained.
func (p *Path) Empty() bool { return p.pending == 0 }

// Pending returns the entries anywhere on the path (buffer plus channels)
// in O(1); the machine's completion check aggregates it.
func (p *Path) Pending() int { return p.pending }

// Enqueue appends an entry to the front-end buffer; false means the buffer
// is full and the store buffer must hold the store (back pressure).
func (p *Path) Enqueue(e Entry) bool {
	if len(p.feb) >= p.cfg.FEBEntries {
		p.FEBFullCycles++
		return false
	}
	p.feb = append(p.feb, e)
	p.pending++
	return true
}

// Snoop performs the buffer-snooping CAM search of §IV-G: it reports whether
// any front-end buffer entry falls in the given cache line. It also counts
// the search and any conflict.
func (p *Path) Snoop(lineAddr uint64) bool {
	p.SnoopSearches++
	for i := range p.feb {
		if mem.LineAddr(p.feb[i].Addr) == lineAddr {
			p.SnoopConflicts++
			return true
		}
	}
	return false
}

// ContainsAddr reports whether a word address has a pending entry anywhere
// on this path (front-end buffer or channels). Used by the stale-load
// evaluation mode.
func (p *Path) ContainsAddr(addr uint64) bool {
	for i := range p.feb {
		if p.feb[i].Addr == addr {
			return true
		}
	}
	for _, ch := range p.channels {
		for i := range ch {
			if !ch[i].e.Control && ch[i].e.Addr == addr {
				return true
			}
		}
	}
	return false
}

// Tick advances the path one cycle: it accrues bandwidth credit and moves
// front-end buffer entries into their channels while credit and channel
// space allow. Boundary entries replicate into every channel (the home MC
// receives the data store, the others a control copy) and require space in
// all of them.
func (p *Path) Tick(now uint64) {
	if cc := p.cfg.CreditCycles; cc > 1 && now%cc != 0 {
		// No credit earned this cycle, but dispatching may continue on
		// banked credit.
	} else {
		p.credit += p.cfg.BytesPerCredit
	}
	if max := p.cfg.ChannelCap * p.cfg.NumMCs * 64; p.credit > max {
		p.credit = max // cap idle accumulation
	}
	for len(p.feb) > 0 {
		e := p.feb[0]
		if p.credit < e.Bytes {
			return
		}
		if e.Boundary {
			ok := true
			for m := 0; m < p.cfg.NumMCs; m++ {
				if len(p.channels[m]) >= p.cfg.ChannelCap {
					ok = false
					break
				}
			}
			if !ok {
				return
			}
			home := p.cfg.MCOf(e.Addr)
			for m := 0; m < p.cfg.NumMCs; m++ {
				c := e
				c.Control = m != home
				p.channels[m] = append(p.channels[m], inflight{e: c, arrival: now + p.cfg.Latency(m)})
			}
			p.pending += p.cfg.NumMCs - 1 // one buffer entry became NumMCs channel entries
			if p.probe != nil {
				p.probe.Emit(probe.Event{Kind: probe.BoundaryBroadcast, Cycle: now,
					Core: e.Core, MC: -1, Region: e.Region})
			}
		} else {
			m := p.cfg.MCOf(e.Addr)
			if len(p.channels[m]) >= p.cfg.ChannelCap {
				return
			}
			p.channels[m] = append(p.channels[m], inflight{e: e, arrival: now + p.cfg.Latency(m)})
		}
		p.credit -= e.Bytes
		p.feb = p.feb[1:]
		p.Dispatched++
	}
}

// DeliverReady hands each channel's due entries to sink in FIFO order. sink
// returns false when the controller cannot accept the entry (WPQ full); the
// channel then blocks head-of-line until a later cycle, preserving order.
func (p *Path) DeliverReady(now uint64, sink func(mc int, e Entry) bool) {
	for m := range p.channels {
		ch := p.channels[m]
		for len(ch) > 0 && ch[0].arrival <= now {
			if !sink(m, ch[0].e) {
				break
			}
			ch = ch[1:]
			p.pending--
		}
		p.channels[m] = ch
	}
}

// DropAll models power failure: the front-end buffer and the core-side
// channels are volatile and lose their contents (§IV-F: only WPQ and the
// MC↔MC ACKs are battery-backed).
func (p *Path) DropAll() {
	p.feb = nil
	for m := range p.channels {
		p.channels[m] = nil
	}
	p.credit = 0
	p.pending = 0
}

// NoEvent is NextEvent's result for a fully drained path.
const NoEvent = ^uint64(0)

// NextEvent returns the earliest cycle strictly after now at which Tick or
// DeliverReady would do observable work, assuming no other component acts
// first. The contract is one-sided: the result may be conservative (an
// early tick is a no-op) but never late — every cycle in (now, NextEvent)
// is provably an idle tick whose only effect is bandwidth-credit accrual,
// which SkipIdle replays in bulk.
func (p *Path) NextEvent(now uint64) uint64 {
	next := uint64(NoEvent)
	for _, ch := range p.channels {
		if len(ch) == 0 {
			continue
		}
		a := ch[0].arrival
		if a <= now {
			// Head-of-line blocked delivery: the sink retry happens (and
			// may count a WPQ rejection) every cycle.
			return now + 1
		}
		if a < next {
			next = a
		}
	}
	if len(p.feb) > 0 {
		need := p.feb[0].Bytes
		if p.cfg.BytesPerCredit <= 0 {
			return now + 1 // wedged bandwidth config: step like the naive loop
		}
		if p.credit < need {
			// Credit-starved: dispatch first becomes possible at the accrual
			// that covers the head entry. Cycles in between only accrue.
			if cr := p.creditReady(now, need); cr < next {
				next = cr
			}
		} else if !p.dispatchBlocked() {
			return now + 1
		}
		// else: banked credit but no channel space — the delivery that
		// frees a slot is already covered by the channel arrivals above.
	}
	return next
}

// creditReady returns the first cycle after now whose accrual lifts credit
// to at least need bytes.
func (p *Path) creditReady(now uint64, need int) uint64 {
	bpc := p.cfg.BytesPerCredit
	k := uint64((need - p.credit + bpc - 1) / bpc)
	if cc := p.cfg.CreditCycles; cc > 1 {
		return (now/cc + k) * cc
	}
	return now + k
}

// dispatchBlocked reports whether the head entry cannot enter its channels
// for lack of space (mirrors Tick's admission checks exactly).
func (p *Path) dispatchBlocked() bool {
	e := &p.feb[0]
	if e.Boundary {
		for m := 0; m < p.cfg.NumMCs; m++ {
			if len(p.channels[m]) >= p.cfg.ChannelCap {
				return true
			}
		}
		return false
	}
	return len(p.channels[p.cfg.MCOf(e.Addr)]) >= p.cfg.ChannelCap
}

// SkipIdle applies the cumulative effect of ticking the path over the idle
// cycles from..to (inclusive) in one step: bandwidth-credit accrual under
// the same cap Tick enforces. The caller guarantees the span is quiescent —
// NextEvent(from-1) > to — so accrual is the span's only effect; capping
// once at the end equals capping per cycle because accrual is monotone.
func (p *Path) SkipIdle(from, to uint64) {
	bpc := p.cfg.BytesPerCredit
	if bpc <= 0 {
		return
	}
	var accruals uint64
	if cc := p.cfg.CreditCycles; cc > 1 {
		accruals = to/cc - (from-1)/cc
	} else {
		accruals = to - from + 1
	}
	max := p.cfg.ChannelCap * p.cfg.NumMCs * 64
	if c := uint64(p.credit) + accruals*uint64(bpc); c > uint64(max) {
		p.credit = max
	} else {
		p.credit = int(c)
	}
}
