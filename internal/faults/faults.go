// Package faults is the deterministic fault model of the persist fabric:
// a seed-driven Injector that the NoC and the machine consult to drop,
// duplicate, delay or reorder individual protocol messages (boundary
// broadcasts, bdry-ACKs, flush-ACKs) and to mark a memory controller slow
// or stuck for a cycle window.
//
// Every decision is derived from a hash of the (seed, cycle, message)
// tuple plus a per-injector consultation counter, so a campaign replays
// bit-identically from its Plan alone: no wall clock, no shared PRNG state,
// no map iteration order. Duplicates and retransmissions of the same
// logical message hash independently (the counter advances per decision),
// which is what makes retry-until-delivered terminate under any drop rate
// below 100%.
//
// The zero Plan is the disabled model: New returns a nil *Injector for it,
// and every Injector method is nil-receiver safe, so fault-free simulations
// keep their single-branch fast path.
package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultMaxDelay bounds injected per-message jitter when a Plan enables
// delay faults without choosing a bound.
const DefaultMaxDelay = 32

// Plan describes one campaign's fault model. It is JSON-serializable and
// embedded verbatim in crash-fuzzing repro files; the same Plan always
// produces the same Injector decision stream.
type Plan struct {
	// Seed drives every hashed decision.
	Seed int64 `json:"seed"`
	// DropPct, DupPct, DelayPct and ReorderPct are per-message fault
	// probabilities in percent (0–100). Drop wins over the others.
	DropPct    int `json:"drop_pct"`
	DupPct     int `json:"dup_pct"`
	DelayPct   int `json:"delay_pct"`
	ReorderPct int `json:"reorder_pct"`
	// MaxDelay bounds the extra cycles of a delayed message
	// (0 = DefaultMaxDelay).
	MaxDelay uint64 `json:"max_delay,omitempty"`
	// StuckMC marks controller StuckMC unresponsive — no WPQ progress, no
	// message ingress, no persist-path acceptance — for StuckFor cycles
	// starting at StuckFrom. StuckFor = 0 disables the window.
	StuckMC   int    `json:"stuck_mc,omitempty"`
	StuckFrom uint64 `json:"stuck_from,omitempty"`
	StuckFor  uint64 `json:"stuck_for,omitempty"`
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.DropPct > 0 || p.DupPct > 0 || p.DelayPct > 0 || p.ReorderPct > 0 ||
		p.StuckFor > 0
}

// Key renders the plan canonically for cache keys: every field in a fixed
// order, so two equal plans always produce equal keys.
func (p Plan) Key() string {
	return fmt.Sprintf("seed=%d,drop=%d,dup=%d,delay=%d:%d,reorder=%d,stuck=%d@%d+%d",
		p.Seed, p.DropPct, p.DupPct, p.DelayPct, p.maxDelay(), p.ReorderPct,
		p.StuckMC, p.StuckFrom, p.StuckFor)
}

// String renders the plan in the -faults flag syntax (see ParsePlan),
// omitting disabled dimensions.
func (p Plan) String() string {
	var parts []string
	if p.DropPct > 0 {
		parts = append(parts, fmt.Sprintf("drop=%d", p.DropPct))
	}
	if p.DupPct > 0 {
		parts = append(parts, fmt.Sprintf("dup=%d", p.DupPct))
	}
	if p.DelayPct > 0 {
		parts = append(parts, fmt.Sprintf("delay=%d:%d", p.DelayPct, p.maxDelay()))
	}
	if p.ReorderPct > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%d", p.ReorderPct))
	}
	if p.StuckFor > 0 {
		parts = append(parts, fmt.Sprintf("stuck=%d@%d+%d", p.StuckMC, p.StuckFrom, p.StuckFor))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

func (p Plan) maxDelay() uint64 {
	if p.MaxDelay == 0 {
		return DefaultMaxDelay
	}
	return p.MaxDelay
}

// ParsePlan parses the -faults flag syntax: a comma-separated list of
// fault dimensions, e.g. "drop=10,dup=5,delay=20:48,reorder=5,stuck=1@100+500".
//
//	drop=P      drop P% of messages
//	dup=P       duplicate P% of messages
//	delay=P[:M] delay P% of messages by 1..M extra cycles (default M = 32)
//	reorder=P   let P% of messages overtake within their delivery cycle
//	stuck=M@F+N controller M is stuck for N cycles starting at cycle F
//
// The empty string and "none" parse to the disabled zero Plan. The seed is
// not part of the syntax; set Plan.Seed (the -fault-seed flag) separately.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return Plan{}, fmt.Errorf("faults: %q: want key=value", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "drop", "dup", "reorder":
			pct, err := parsePct(val)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: %s=%s: %w", key, val, err)
			}
			switch key {
			case "drop":
				p.DropPct = pct
			case "dup":
				p.DupPct = pct
			case "reorder":
				p.ReorderPct = pct
			}
		case "delay":
			spec := strings.SplitN(val, ":", 2)
			pct, err := parsePct(spec[0])
			if err != nil {
				return Plan{}, fmt.Errorf("faults: delay=%s: %w", val, err)
			}
			p.DelayPct = pct
			if len(spec) == 2 {
				max, err := strconv.ParseUint(spec[1], 10, 64)
				if err != nil || max == 0 {
					return Plan{}, fmt.Errorf("faults: delay=%s: bad max delay", val)
				}
				p.MaxDelay = max
			}
		case "stuck":
			// M@F+N
			at := strings.SplitN(val, "@", 2)
			if len(at) != 2 {
				return Plan{}, fmt.Errorf("faults: stuck=%s: want MC@FROM+FOR", val)
			}
			mc, err := strconv.Atoi(at[0])
			if err != nil || mc < 0 {
				return Plan{}, fmt.Errorf("faults: stuck=%s: bad controller index", val)
			}
			win := strings.SplitN(at[1], "+", 2)
			if len(win) != 2 {
				return Plan{}, fmt.Errorf("faults: stuck=%s: want MC@FROM+FOR", val)
			}
			from, err := strconv.ParseUint(win[0], 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: stuck=%s: bad start cycle", val)
			}
			dur, err := strconv.ParseUint(win[1], 10, 64)
			if err != nil || dur == 0 {
				return Plan{}, fmt.Errorf("faults: stuck=%s: bad duration", val)
			}
			p.StuckMC, p.StuckFrom, p.StuckFor = mc, from, dur
		default:
			return Plan{}, fmt.Errorf("faults: unknown dimension %q", key)
		}
	}
	return p, nil
}

func parsePct(s string) (int, error) {
	pct, err := strconv.Atoi(s)
	if err != nil || pct < 0 || pct > 100 {
		return 0, fmt.Errorf("bad percentage %q (want 0–100)", s)
	}
	return pct, nil
}

// Decision is the injector's verdict on one message. The zero Decision is
// "deliver normally". Drop excludes the other faults.
type Decision struct {
	Drop    bool
	Dup     bool
	Delay   uint64
	Reorder bool
}

// Injector hands out hashed fault decisions for one simulated machine. It is
// driven from a single simulation goroutine; all methods are nil-receiver
// safe and a nil *Injector is the fault-free model.
type Injector struct {
	plan  Plan
	nonce uint64

	// Counters of faults actually injected, folded into machine stats.
	Drops, Dups, Delays, Reorders uint64
}

// New returns an injector for the plan, or nil when the plan is disabled —
// callers gate every consultation on a nil check, which keeps the fault-free
// fast path to a single branch.
func New(p Plan) *Injector {
	if !p.Enabled() {
		return nil
	}
	return &Injector{plan: p}
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Message decides the fate of one protocol message. kind is the noc.MsgKind
// (or the boundary kind for persist-path control replicas), region/from/to
// identify the message. Each call advances the injector's consultation
// counter, so retransmissions and duplicates of the same logical message
// draw independent decisions.
func (in *Injector) Message(now uint64, kind int, region uint64, from, to int) Decision {
	var d Decision
	if in == nil {
		return d
	}
	in.nonce++
	h := splitmix64(uint64(in.plan.Seed)) ^
		splitmix64(now+0x9E3779B97F4A7C15) ^
		splitmix64(uint64(kind)<<48|region<<8|uint64(uint8(from))<<4|uint64(uint8(to))) ^
		splitmix64(in.nonce)
	if roll(h, 1, in.plan.DropPct) {
		in.Drops++
		d.Drop = true
		return d
	}
	if roll(h, 2, in.plan.DupPct) {
		in.Dups++
		d.Dup = true
	}
	if roll(h, 3, in.plan.DelayPct) {
		in.Delays++
		d.Delay = 1 + splitmix64(h^4)%in.plan.maxDelay()
	}
	if roll(h, 5, in.plan.ReorderPct) {
		in.Reorders++
		d.Reorder = true
	}
	return d
}

// MCStuck reports whether controller mc is inside its stuck window at cycle
// now. The window is explicit in the Plan (not hashed), so campaigns can
// place it deliberately.
func (in *Injector) MCStuck(now uint64, mc int) bool {
	if in == nil || in.plan.StuckFor == 0 || mc != in.plan.StuckMC {
		return false
	}
	return now >= in.plan.StuckFrom && now-in.plan.StuckFrom < in.plan.StuckFor
}

// NoEvent is NextEvent's result when no time-driven edge remains.
const NoEvent = ^uint64(0)

// NextEvent returns the next cycle strictly after now at which a
// time-driven decision of the injector changes: the stuck window's start or
// its end. Per-message faults (drop/dup/delay/reorder) are decided at Send
// time and need no schedule of their own. Nil-receiver safe; returns
// NoEvent when no edge remains.
func (in *Injector) NextEvent(now uint64) uint64 {
	if in == nil || in.plan.StuckFor == 0 {
		return NoEvent
	}
	if in.plan.StuckFrom > now {
		return in.plan.StuckFrom
	}
	if end := in.plan.StuckFrom + in.plan.StuckFor; end > now {
		return end
	}
	return NoEvent
}

// StuckUntil returns the first cycle at or after now at which mc is outside
// its stuck window — now itself when it is not currently stuck. The
// event/epoch scheduler uses it to defer a stuck controller's queue events
// to the window's end, mirroring the per-cycle stepper, which skips a stuck
// controller's tick entirely.
func (in *Injector) StuckUntil(now uint64, mc int) uint64 {
	if !in.MCStuck(now, mc) {
		return now
	}
	return in.plan.StuckFrom + in.plan.StuckFor
}

// roll draws an independent percentage decision from the message hash.
func roll(h uint64, salt uint64, pct int) bool {
	if pct <= 0 {
		return false
	}
	return splitmix64(h^salt)%100 < uint64(pct)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-distributed 64-bit mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
