package faults

import (
	"encoding/json"
	"testing"
)

// Two injectors built from the same plan must produce the same decision
// stream — this is the bit-identical replay guarantee crashfuzz relies on.
func TestInjectorDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, DropPct: 10, DupPct: 10, DelayPct: 20, ReorderPct: 5}
	a, b := New(plan), New(plan)
	for now := uint64(0); now < 2000; now++ {
		da := a.Message(now, int(now%3), now/7, int(now%4), int(now%5))
		db := b.Message(now, int(now%3), now/7, int(now%4), int(now%5))
		if da != db {
			t.Fatalf("cycle %d: decisions diverge: %+v vs %+v", now, da, db)
		}
	}
	if a.Drops != b.Drops || a.Dups != b.Dups || a.Delays != b.Delays || a.Reorders != b.Reorders {
		t.Fatalf("counters diverge: %+v vs %+v", a, b)
	}
}

// Different seeds must produce different decision streams (overwhelmingly).
func TestInjectorSeedMatters(t *testing.T) {
	a := New(Plan{Seed: 1, DropPct: 50})
	b := New(Plan{Seed: 2, DropPct: 50})
	same := 0
	const n = 1000
	for now := uint64(0); now < n; now++ {
		if a.Message(now, 0, 0, 0, 1) == b.Message(now, 0, 0, 0, 1) {
			same++
		}
	}
	if same == n {
		t.Fatalf("seeds 1 and 2 produced identical decision streams")
	}
}

// Observed fault rates should be in the right ballpark of the configured
// percentages — loose bounds, this is a sanity check not a statistics test.
func TestInjectorRates(t *testing.T) {
	in := New(Plan{Seed: 7, DropPct: 25, DupPct: 25, DelayPct: 25, ReorderPct: 25})
	const n = 20000
	for now := uint64(0); now < n; now++ {
		in.Message(now, 0, now, 0, 1)
	}
	check := func(name string, got uint64, pct float64) {
		t.Helper()
		lo, hi := uint64(n*pct*0.7), uint64(n*pct*1.3)
		if got < lo || got > hi {
			t.Errorf("%s: got %d faults of %d messages, want within [%d, %d]", name, got, n, lo, hi)
		}
	}
	check("drops", in.Drops, 0.25)
	// Dup/delay/reorder only roll on non-dropped messages (~75% of n).
	check("dups", in.Dups, 0.25*0.75)
	check("delays", in.Delays, 0.25*0.75)
	check("reorders", in.Reorders, 0.25*0.75)
}

// Drop excludes the other faults within a single decision.
func TestDropExcludesOtherFaults(t *testing.T) {
	in := New(Plan{Seed: 3, DropPct: 60, DupPct: 100, DelayPct: 100, ReorderPct: 100})
	dropped := false
	for now := uint64(0); now < 500; now++ {
		d := in.Message(now, 0, now, 0, 1)
		if d.Drop {
			dropped = true
			if d.Dup || d.Delay != 0 || d.Reorder {
				t.Fatalf("cycle %d: drop combined with other faults: %+v", now, d)
			}
		}
	}
	if !dropped {
		t.Fatalf("60%% drop rate produced no drops in 500 messages")
	}
}

func TestDelayBounded(t *testing.T) {
	in := New(Plan{Seed: 9, DelayPct: 100, MaxDelay: 5})
	seen := map[uint64]bool{}
	for now := uint64(0); now < 500; now++ {
		d := in.Message(now, 0, now, 0, 1)
		if d.Delay < 1 || d.Delay > 5 {
			t.Fatalf("delay %d outside [1, 5]", d.Delay)
		}
		seen[d.Delay] = true
	}
	if len(seen) < 2 {
		t.Fatalf("delays not varied: %v", seen)
	}
}

// A disabled plan yields a nil injector, and the nil injector is inert.
func TestDisabledPlanIsNilInjector(t *testing.T) {
	if in := New(Plan{}); in != nil {
		t.Fatalf("New(zero Plan) = %v, want nil", in)
	}
	if in := New(Plan{Seed: 99}); in != nil {
		t.Fatalf("seed without fault dimensions should be disabled, got %v", in)
	}
	var in *Injector
	if d := in.Message(10, 0, 1, 0, 1); d != (Decision{}) {
		t.Fatalf("nil injector decision = %+v, want zero", d)
	}
	if in.MCStuck(10, 0) {
		t.Fatalf("nil injector reports a stuck MC")
	}
	if p := in.Plan(); p != (Plan{}) {
		t.Fatalf("nil injector plan = %+v, want zero", p)
	}
}

func TestMCStuckWindow(t *testing.T) {
	in := New(Plan{StuckMC: 1, StuckFrom: 100, StuckFor: 50})
	cases := []struct {
		now  uint64
		mc   int
		want bool
	}{
		{99, 1, false},
		{100, 1, true},
		{149, 1, true},
		{150, 1, false},
		{120, 0, false}, // other controller unaffected
	}
	for _, c := range cases {
		if got := in.MCStuck(c.now, c.mc); got != c.want {
			t.Errorf("MCStuck(%d, %d) = %v, want %v", c.now, c.mc, got, c.want)
		}
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"drop=10",
		"drop=10,dup=5,delay=20:48,reorder=5,stuck=1@100+500",
		"delay=15:32",
		"stuck=0@0+1200",
	}
	for _, s := range cases {
		p, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", s, err)
		}
		// String() normalizes (e.g. adds the default max delay), so round-trip
		// through a second parse instead of comparing strings.
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("ParsePlan(%q.String() = %q): %v", s, p.String(), err)
		}
		if p != p2 {
			t.Errorf("round trip of %q: %+v != %+v", s, p, p2)
		}
	}
	if p, err := ParsePlan(""); err != nil || p.Enabled() {
		t.Errorf("empty plan: %+v, %v", p, err)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, s := range []string{
		"drop", "drop=abc", "drop=101", "drop=-1",
		"delay=10:0", "delay=10:x",
		"stuck=1", "stuck=1@5", "stuck=x@5+9", "stuck=1@x+9", "stuck=1@5+0",
		"bogus=3",
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted, want error", s)
		}
	}
}

// The Plan is embedded in crashfuzz JSON repros; it must survive a
// marshal/unmarshal round trip unchanged.
func TestPlanJSONRoundTrip(t *testing.T) {
	p := Plan{Seed: -3, DropPct: 10, DupPct: 5, DelayPct: 20, ReorderPct: 5,
		MaxDelay: 48, StuckMC: 1, StuckFrom: 100, StuckFor: 500}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Plan
	if err := json.Unmarshal(raw, &q); err != nil {
		t.Fatal(err)
	}
	if p != q {
		t.Fatalf("JSON round trip: %+v != %+v", p, q)
	}
	if p.Key() != q.Key() {
		t.Fatalf("keys differ after round trip")
	}
}
