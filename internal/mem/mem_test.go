package mem

import (
	"testing"
	"testing/quick"
)

func TestImageReadWrite(t *testing.T) {
	im := NewImage()
	if im.Read(0x1000) != 0 {
		t.Fatal("unwritten word must read zero")
	}
	im.Write(0x1000, 42)
	if im.Read(0x1000) != 42 {
		t.Fatal("read after write")
	}
	im.Write(0x1000, 0)
	if im.Read(0x1000) != 0 || im.Len() != 0 {
		t.Fatal("zero write must keep the image sparse")
	}
}

func TestImageAlignmentPanics(t *testing.T) {
	im := NewImage()
	for _, f := range []func(){
		func() { im.Read(0x1001) },
		func() { im.Write(0x1004, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unaligned access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestImageCloneEqualDiff(t *testing.T) {
	a := NewImage()
	a.Write(8, 1)
	a.Write(16, 2)
	b := a.Clone()
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("clone must equal original")
	}
	b.Write(16, 3)
	if a.Equal(b) {
		t.Fatal("diverged images compare equal")
	}
	d := a.Diff(b, 10)
	if len(d) != 1 {
		t.Fatalf("Diff = %v, want one entry", d)
	}
	b.Write(24, 9)
	if len(a.Diff(b, 1)) != 1 {
		t.Fatal("Diff must honor max")
	}
}

func TestImagePageReclamation(t *testing.T) {
	im := NewImage()
	// Fill one page (addresses 0..4 KiB) and its neighbour, then zero the
	// first page word by word: its backing page must be dropped so sparse
	// images stay proportional to their live footprint.
	for a := uint64(0); a < 2*pageWords*WordSize; a += WordSize {
		im.Write(a, a+1)
	}
	for a := uint64(0); a < pageWords*WordSize; a += WordSize {
		im.Write(a, 0)
	}
	if im.Len() != pageWords {
		t.Fatalf("Len = %d, want %d", im.Len(), pageWords)
	}
	if len(im.pages) != 1 {
		t.Fatalf("zeroed page not reclaimed: %d pages", len(im.pages))
	}
}

func TestImagePageBoundary(t *testing.T) {
	im := NewImage()
	// The last word of one page and the first of the next must not alias.
	lastA := uint64(pageWords-1) * WordSize
	firstB := uint64(pageWords) * WordSize
	im.Write(lastA, 11)
	im.Write(firstB, 22)
	if im.Read(lastA) != 11 || im.Read(firstB) != 22 {
		t.Fatalf("page-boundary words alias: %d %d", im.Read(lastA), im.Read(firstB))
	}
	if im.Len() != 2 {
		t.Fatalf("Len = %d, want 2", im.Len())
	}
	other := NewImage()
	other.Write(lastA, 11)
	if im.EqualRange(other, 0, firstB) != true {
		t.Fatal("EqualRange must exclude the first word of the next page")
	}
	if im.EqualRange(other, 0, firstB+WordSize) {
		t.Fatal("EqualRange must include words up to hi")
	}
}

func TestImageEqualRange(t *testing.T) {
	a, b := NewImage(), NewImage()
	a.Write(0x100, 7)
	b.Write(0x100, 7)
	a.Write(0x8000, 1)
	b.Write(0x8000, 2)
	if !a.EqualRange(b, 0, 0x1000) {
		t.Fatal("ranges agree below 0x1000")
	}
	if a.EqualRange(b, 0, 0x10000) {
		t.Fatal("ranges disagree at 0x8000")
	}
}

func TestImageProperties(t *testing.T) {
	roundTrip := func(addr uint32, val uint64) bool {
		im := NewImage()
		a := uint64(addr) &^ 7
		im.Write(a, val)
		return im.Read(a) == val
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutDisjoint(t *testing.T) {
	// Checkpoint arrays, stacks and undo logs must not overlap.
	if CkptArrayBase+MaxThreads*CkptStride > PMSize {
		t.Error("checkpoint arrays exceed PM")
	}
	if StackRegionBase+MaxThreads*StackSize > CkptArrayBase {
		t.Error("stacks overlap checkpoint arrays")
	}
	if UndoLogBase+8*UndoLogSize > StackRegionBase {
		t.Error("undo logs overlap stacks")
	}
	if CkptAddr(0, CkptSlots-1) >= CkptAddr(1, 0) {
		t.Error("checkpoint arrays overlap across threads")
	}
	if StackTop(0) >= StackRegionBase+StackSize {
		t.Error("stack top outside its reservation")
	}
	if StackTop(1)-StackTop(0) != StackSize {
		t.Error("stack stride wrong")
	}
}

func TestCkptAddrBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range checkpoint slot did not panic")
		}
	}()
	CkptAddr(0, CkptSlots)
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Fatalf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	prop := func(a uint64) bool {
		l := LineAddr(a)
		return l%LineSize == 0 && a-l < LineSize
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4096, 4) // 16 sets
	a := uint64(0x10000)
	if c.Lookup(a, false) {
		t.Fatal("cold cache hit")
	}
	c.Fill(a, false, FullVictim, nil)
	if !c.Lookup(a, false) {
		t.Fatal("miss after fill")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2*LineSize*2, 2) // 2 sets, 2 ways
	// Three lines mapping to the same set (stride = sets*LineSize).
	stride := uint64(c.Sets() * LineSize)
	a, b, d := uint64(0), stride, 2*stride
	c.Fill(a, false, FullVictim, nil)
	c.Fill(b, false, FullVictim, nil)
	c.Lookup(a, false) // make a most-recent
	res := c.Fill(d, false, FullVictim, nil)
	if !res.EvictedValid || res.Evicted != b {
		t.Fatalf("evicted %#x, want %#x (LRU)", res.Evicted, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := NewCache(LineSize*2, 2) // 1 set, 2 ways
	c.Fill(0, true, FullVictim, nil)
	c.Fill(LineSize*1*uint64(c.Sets()), false, FullVictim, nil)
	res := c.Fill(LineSize*2*uint64(c.Sets()), false, FullVictim, nil)
	if !res.EvictedValid || !res.EvictedDirty {
		t.Fatalf("dirty LRU victim not reported: %+v", res)
	}
}

func TestVictimPolicyFull(t *testing.T) {
	c := NewCache(LineSize*4, 4) // 1 set, 4 ways
	stride := uint64(c.Sets() * LineSize)
	for i := uint64(0); i < 4; i++ {
		c.Fill(i*stride, true, FullVictim, nil) // all dirty
	}
	// LRU victim (line 0) conflicts; line at stride does not.
	conflicts := func(line uint64) bool { return line == 0 }
	res := c.Fill(4*stride, false, FullVictim, conflicts)
	if res.Stalled {
		t.Fatal("full-victim must find the conflict-free way")
	}
	if !res.Conflict {
		t.Fatal("conflict on the default victim must be reported")
	}
	if res.Evicted != stride {
		t.Fatalf("evicted %#x, want %#x", res.Evicted, stride)
	}
	if res.Scanned < 2 {
		t.Fatalf("scanned = %d, want >= 2", res.Scanned)
	}
}

func TestVictimPolicyZeroStalls(t *testing.T) {
	c := NewCache(LineSize*2, 2)
	stride := uint64(c.Sets() * LineSize)
	c.Fill(0, true, ZeroVictim, nil)
	c.Fill(stride, true, ZeroVictim, nil)
	all := func(uint64) bool { return true }
	res := c.Fill(2*stride, false, ZeroVictim, all)
	if !res.Stalled || !res.Conflict {
		t.Fatalf("zero-victim with conflicting LRU must stall: %+v", res)
	}
	if !c.Contains(0) || !c.Contains(stride) {
		t.Fatal("stalled fill must not modify the cache")
	}
}

func TestVictimPolicyHalfLimitsScan(t *testing.T) {
	c := NewCache(LineSize*8, 8)
	stride := uint64(c.Sets() * LineSize)
	for i := uint64(0); i < 8; i++ {
		c.Fill(i*stride, true, HalfVictim, nil)
	}
	all := func(uint64) bool { return true }
	res := c.Fill(9*stride, false, HalfVictim, all)
	if !res.Stalled {
		t.Fatal("all-conflicting set must stall")
	}
	if res.Scanned != 4 {
		t.Fatalf("half-victim scanned %d ways, want 4", res.Scanned)
	}
}

func TestStaleLoadSkipsSnooping(t *testing.T) {
	c := NewCache(LineSize*2, 2)
	stride := uint64(c.Sets() * LineSize)
	c.Fill(0, true, StaleLoad, nil)
	c.Fill(stride, true, StaleLoad, nil)
	all := func(uint64) bool { return true }
	res := c.Fill(2*stride, false, StaleLoad, all)
	if res.Stalled || res.Conflict || res.Scanned != 0 {
		t.Fatalf("stale-load mode must evict without snooping: %+v", res)
	}
}

func TestCleanVictimNeverSnooped(t *testing.T) {
	c := NewCache(LineSize*2, 2)
	stride := uint64(c.Sets() * LineSize)
	c.Fill(0, false, FullVictim, nil) // clean
	c.Fill(stride, false, FullVictim, nil)
	called := false
	res := c.Fill(2*stride, false, FullVictim, func(uint64) bool { called = true; return true })
	if called {
		t.Fatal("clean victims must not consult the front-end buffer")
	}
	if res.Stalled {
		t.Fatal("clean victim eviction stalled")
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	c := NewCache(4096, 4)
	c.Fill(0x100*LineSize, true, FullVictim, nil)
	c.InvalidateAll()
	if c.Contains(0x100 * LineSize) {
		t.Fatal("InvalidateAll left valid lines")
	}
}

func TestDRAMCacheDirectMapped(t *testing.T) {
	d := NewDRAMCache(1 << 20) // 16384 lines
	a := uint64(0x40)
	conflict := a + 1<<20 // same index, different tag
	if d.Access(a) {
		t.Fatal("cold hit")
	}
	if !d.Access(a) {
		t.Fatal("warm miss")
	}
	if d.Access(conflict) {
		t.Fatal("conflicting tag hit")
	}
	if d.Access(a) {
		t.Fatal("displaced line still hits")
	}
	if d.Hits != 1 || d.Misses != 3 {
		t.Fatalf("hits/misses = %d/%d", d.Hits, d.Misses)
	}
	d.InvalidateAll()
	if d.Access(a) {
		t.Fatal("hit after invalidate")
	}
}

func TestVictimPolicyString(t *testing.T) {
	for _, p := range []VictimPolicy{FullVictim, HalfVictim, ZeroVictim, StaleLoad} {
		if p.String() == "" {
			t.Errorf("policy %d has no name", p)
		}
	}
}

func TestEqualRangeSymmetric(t *testing.T) {
	prop := func(addrs []uint16, vals []uint8) bool {
		a, b := NewImage(), NewImage()
		for i, ad := range addrs {
			addr := uint64(ad) &^ 7
			if i < len(vals) {
				a.Write(addr, uint64(vals[i]))
			}
			b.Write(addr, uint64(i))
		}
		lo, hi := uint64(0), uint64(1<<20)
		return a.EqualRange(b, lo, hi) == b.EqualRange(a, lo, hi)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneEqualProperty(t *testing.T) {
	prop := func(addrs []uint16, vals []uint16) bool {
		im := NewImage()
		for i, ad := range addrs {
			v := uint64(0)
			if i < len(vals) {
				v = uint64(vals[i])
			}
			im.Write(uint64(ad)&^7, v)
		}
		return im.Clone().Equal(im)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestImageExportImportRoundTrip(t *testing.T) {
	im := NewImage()
	// Words spread across pages, including a page-boundary straddle.
	for _, w := range []struct{ addr, val uint64 }{
		{0x0, 1}, {0x1000 - 8, 2}, {0x1000, 3}, {0x40000, 4}, {0x40008, 5},
	} {
		im.Write(w.addr, w.val)
	}
	pairs := im.Export()
	if len(pairs) != 2*im.Len() {
		t.Fatalf("export length %d, want %d", len(pairs), 2*im.Len())
	}
	back, err := ImportImage(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(im) {
		t.Fatalf("round trip diverged: %v", back.Diff(im, 5))
	}
	// Canonical form: re-export must be identical.
	again := back.Export()
	for i := range pairs {
		if again[i] != pairs[i] {
			t.Fatalf("re-export differs at %d: %#x != %#x", i, again[i], pairs[i])
		}
	}
	if empty, err := ImportImage(nil); err != nil || empty.Len() != 0 {
		t.Fatalf("empty import: %v len=%d", err, empty.Len())
	}
}

func TestImageExportImportProperty(t *testing.T) {
	prop := func(addrs []uint16, vals []uint16) bool {
		im := NewImage()
		for i, ad := range addrs {
			v := uint64(0)
			if i < len(vals) {
				v = uint64(vals[i])
			}
			im.Write(uint64(ad)&^7, v)
		}
		back, err := ImportImage(im.Export())
		return err == nil && back.Equal(im)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestImportImageRejectsNonCanonical(t *testing.T) {
	cases := map[string][]uint64{
		"odd length": {0x8, 1, 0x10},
		"unaligned":  {0x9, 1},
		"zero value": {0x8, 0},
		"descending": {0x10, 1, 0x8, 2},
		"duplicate":  {0x8, 1, 0x8, 2},
	}
	for name, pairs := range cases {
		if _, err := ImportImage(pairs); err == nil {
			t.Errorf("%s import accepted: %v", name, pairs)
		}
	}
}
