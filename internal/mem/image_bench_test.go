package mem

import "testing"

// The image benchmarks model the simulator's access pattern: a working set
// of a few hundred KB touched word-by-word with high locality (every load,
// store, WPQ flush and power-failure check goes through the image). The
// paged layout (512-word pages behind one map lookup) replaced a
// word-granular map[uint64]uint64; these benchmarks track that win.

const benchFootprint = 256 << 10 // 256 KB, a mid-size profile's working set

func benchImage() *Image {
	im := NewImage()
	for a := uint64(0); a < benchFootprint; a += WordSize {
		im.Write(a, a^0x5bd1e995)
	}
	return im
}

func BenchmarkImageReadWrite(b *testing.B) {
	im := benchImage()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		a := (uint64(i) * 72) % benchFootprint &^ 7
		sink += im.Read(a)
		im.Write(a, uint64(i))
	}
	_ = sink
}

func BenchmarkImageClone(b *testing.B) {
	im := benchImage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := im.Clone()
		if c.Len() != im.Len() {
			b.Fatal("clone lost words")
		}
	}
}

func BenchmarkImageEqual(b *testing.B) {
	im := benchImage()
	other := im.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !im.Equal(other) {
			b.Fatal("clones must compare equal")
		}
	}
}
