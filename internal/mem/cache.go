package mem

import "fmt"

// VictimPolicy selects how a set-associative cache picks an eviction victim
// when LightWSP's buffer snooping (§IV-G) reports that the default victim's
// line is still pending in the front-end buffer (a "buffer conflict").
type VictimPolicy int

const (
	// FullVictim scans every way for a conflict-free victim (default).
	FullVictim VictimPolicy = iota
	// HalfVictim scans only half the ways.
	HalfVictim
	// ZeroVictim never switches victims: a conflicting eviction waits
	// until the front-end buffer entry drains.
	ZeroVictim
	// StaleLoad disables buffer snooping entirely; the machine then
	// counts the stale loads that would corrupt the persist order
	// (evaluation mode for Figure 14).
	StaleLoad
)

func (p VictimPolicy) String() string {
	switch p {
	case FullVictim:
		return "full-victim"
	case HalfVictim:
		return "half-victim"
	case ZeroVictim:
		return "zero-victim"
	case StaleLoad:
		return "stale-load"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative write-back, write-allocate tag store. It tracks
// no data — functional values live in the architectural Image — only tags,
// dirty bits and LRU state, which is all the timing and the buffer-snooping
// logic need.
type Cache struct {
	sets  int
	ways  int
	lines []cacheLine
	clock uint64

	// Hits and Misses count lookups.
	Hits, Misses uint64
}

// NewCache builds a cache of the given total size in bytes and
// associativity, with LineSize lines.
func NewCache(sizeBytes, ways int) *Cache {
	if sizeBytes%(ways*LineSize) != 0 {
		panic(fmt.Sprintf("mem: cache size %d not divisible by %d ways of %dB lines", sizeBytes, ways, LineSize))
	}
	sets := sizeBytes / (ways * LineSize)
	return &Cache{sets: sets, ways: ways, lines: make([]cacheLine, sets*ways)}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) set(lineAddr uint64) []cacheLine {
	idx := int((lineAddr / LineSize) % uint64(c.sets))
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

// Lookup probes the cache. On a hit it updates LRU state and, for a write,
// the dirty bit, and returns true.
func (c *Cache) Lookup(lineAddr uint64, write bool) bool {
	c.clock++
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].used = c.clock
			if write {
				set[i].dirty = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Contains probes without touching LRU or statistics.
func (c *Cache) Contains(lineAddr uint64) bool {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// FillResult describes the outcome of a Fill.
type FillResult struct {
	// Evicted is the line address of the displaced victim, valid only
	// when EvictedValid.
	Evicted      uint64
	EvictedValid bool
	// EvictedDirty reports whether the victim was dirty (a writeback on
	// the regular path, which LightWSP's LLC silently drops).
	EvictedDirty bool
	// Conflict reports that the default (LRU) victim was dirty and
	// conflicted with a front-end buffer entry.
	Conflict bool
	// Stalled reports that no conflict-free victim was found under the
	// policy: the fill must be retried after the buffer drains. The
	// cache state is unchanged.
	Stalled bool
	// Scanned is the number of victim candidates examined (CAM searches
	// against the front-end buffer).
	Scanned int
}

// Fill inserts lineAddr after a miss. conflicts reports whether a dirty
// victim line still has pending entries in the front-end buffer; it is only
// consulted for dirty victims (clean evictions cannot corrupt the persist
// order). The policy governs how many candidates are scanned for a
// conflict-free victim, implementing §IV-G and the Figure 13 ablation.
func (c *Cache) Fill(lineAddr uint64, write bool, policy VictimPolicy, conflicts func(lineAddr uint64) bool) FillResult {
	c.clock++
	set := c.set(lineAddr)
	// Prefer an invalid way.
	for i := range set {
		if !set[i].valid {
			set[i] = cacheLine{tag: lineAddr, valid: true, dirty: write, used: c.clock}
			return FillResult{}
		}
	}
	// Candidates in LRU order.
	order := make([]int, len(set))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && set[order[j]].used < set[order[j-1]].used; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	limit := 1
	switch policy {
	case FullVictim:
		limit = len(order)
	case HalfVictim:
		limit = (len(order) + 1) / 2
	case ZeroVictim, StaleLoad:
		limit = 1
	}
	res := FillResult{}
	for k := 0; k < limit; k++ {
		v := &set[order[k]]
		if v.dirty && policy != StaleLoad && conflicts != nil {
			res.Scanned++
			if conflicts(v.tag) {
				if k == 0 {
					res.Conflict = true
				}
				continue // try the next candidate
			}
		}
		res.Evicted, res.EvictedValid, res.EvictedDirty = v.tag, true, v.dirty
		*v = cacheLine{tag: lineAddr, valid: true, dirty: write, used: c.clock}
		return res
	}
	// Every scanned candidate conflicted: the eviction must wait.
	res.Conflict = true
	res.Stalled = true
	return res
}

// InvalidateAll clears the cache (used at recovery: volatile state is lost).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
}

// DRAMCache models the off-chip direct-mapped DRAM cache that fronts PM in
// Optane's memory mode (Table I: 4 GB, direct-mapped, managed by the MC).
// Tags are kept sparsely; untouched indices miss. The DRAM cache is a
// memory-side cache: it is volatile and, under LightWSP, never writes back
// to PM (dirty evictions are dropped; the persist path is the only way data
// reaches PM).
type DRAMCache struct {
	numLines uint64
	tags     map[uint64]uint64 // index -> line address currently cached

	Hits, Misses uint64
}

// NewDRAMCache builds a DRAM cache of the given size in bytes.
func NewDRAMCache(sizeBytes uint64) *DRAMCache {
	return &DRAMCache{numLines: sizeBytes / LineSize, tags: map[uint64]uint64{}}
}

// Access probes the DRAM cache and fills on a miss (direct-mapped, so the
// previous occupant of the index is displaced). Returns hit.
func (d *DRAMCache) Access(lineAddr uint64) bool {
	idx := (lineAddr / LineSize) % d.numLines
	if tag, ok := d.tags[idx]; ok && tag == lineAddr {
		d.Hits++
		return true
	}
	d.Misses++
	d.tags[idx] = lineAddr
	return false
}

// InvalidateAll clears the DRAM cache (power failure: DRAM contents are
// volatile).
func (d *DRAMCache) InvalidateAll() { d.tags = map[uint64]uint64{} }
