// Package mem provides the memory substrate of the simulator: the sparse
// functional memory image, the persistent-memory (PM) model, set-associative
// write-back caches with pluggable victim selection (needed by LightWSP's
// buffer snooping, §IV-G), the direct-mapped DRAM cache that Intel Optane's
// memory mode places in front of PM, and the physical address-space layout
// shared by the compiler runtime, the machine and the recovery code.
package mem

import "fmt"

// Address-space layout. All addresses are physical, byte-granular and 8-byte
// aligned at the access level. PM backs the whole space (Table I: 32 GB).
const (
	// WordSize is the persist-path data granularity (§III-A: 8 B).
	WordSize = 8
	// LineSize is the cache line size (Table I: 64 B).
	LineSize = 64
	// PMSize is the persistent main memory capacity (Table I: 32 GB).
	PMSize = uint64(32) << 30

	// CkptSlots is the number of 8-byte slots in one thread's checkpoint
	// array: one per architectural register plus the recovery PC and the
	// stack pointer (§IV-A "Checkpoint Storage Management").
	CkptSlots = 34
	// CkptSlotPC is the slot index holding the recovery PC.
	CkptSlotPC = 32
	// CkptSlotSP is the slot index holding the stack pointer.
	CkptSlotSP = 33
	// CkptStride is the per-thread spacing of checkpoint arrays.
	CkptStride = uint64(512)
	// MaxThreads bounds the number of hardware threads the layout
	// reserves space for.
	MaxThreads = 64

	// CkptArrayBase is where the per-thread checkpoint arrays live: the
	// top of PM.
	CkptArrayBase = PMSize - MaxThreads*CkptStride

	// StackSize is the per-thread call-stack reservation. Stacks grow
	// down from their top.
	StackSize = uint64(1) << 20
	// StackRegionBase is the bottom of the stack region.
	StackRegionBase = CkptArrayBase - MaxThreads*StackSize

	// UndoLogSize is the per-MC undo-log reservation used by the WPQ
	// overflow escape path (§IV-D).
	UndoLogSize = uint64(1) << 20
	// UndoLogBase is the bottom of the undo-log region (2 MCs max 8).
	UndoLogBase = StackRegionBase - 8*UndoLogSize
)

// CkptAddr returns the address of checkpoint slot for a thread.
func CkptAddr(thread, slot int) uint64 {
	if thread < 0 || thread >= MaxThreads || slot < 0 || slot >= CkptSlots {
		panic(fmt.Sprintf("mem: checkpoint slot out of range (thread %d slot %d)", thread, slot))
	}
	return CkptArrayBase + uint64(thread)*CkptStride + uint64(slot)*WordSize
}

// StackTop returns the initial stack pointer for a thread. The first push
// writes to this address and the pointer then decrements.
func StackTop(thread int) uint64 {
	if thread < 0 || thread >= MaxThreads {
		panic(fmt.Sprintf("mem: thread %d out of range", thread))
	}
	return StackRegionBase + uint64(thread+1)*StackSize - WordSize
}

// UndoLogAddr returns the address of the i-th undo-log record slot pair of
// a memory controller. Each record is two words: address and old value.
func UndoLogAddr(mc, i int) uint64 {
	return UndoLogBase + uint64(mc)*UndoLogSize + uint64(i)*2*WordSize
}

// LineAddr returns the line-aligned address containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }

// Align8 reports whether addr is 8-byte aligned.
func Align8(addr uint64) bool { return addr&7 == 0 }
