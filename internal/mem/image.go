package mem

import (
	"fmt"
	"sort"
)

// Image is a sparse, word-granular memory image. The simulator keeps two:
// the architectural image (what loads observe through the cache hierarchy)
// and the PM image (what has actually persisted — the only thing that
// survives a power failure). Unwritten words read as zero.
type Image struct {
	words map[uint64]uint64
}

// NewImage returns an empty image.
func NewImage() *Image { return &Image{words: map[uint64]uint64{}} }

// Read returns the word at addr (8-byte aligned).
func (im *Image) Read(addr uint64) uint64 {
	if !Align8(addr) {
		panic(fmt.Sprintf("mem: unaligned read at %#x", addr))
	}
	return im.words[addr]
}

// Write stores a word at addr (8-byte aligned).
func (im *Image) Write(addr, val uint64) {
	if !Align8(addr) {
		panic(fmt.Sprintf("mem: unaligned write at %#x", addr))
	}
	if val == 0 {
		// Keep the map sparse: zero is the default.
		delete(im.words, addr)
		return
	}
	im.words[addr] = val
}

// Len returns the number of non-zero words.
func (im *Image) Len() int { return len(im.words) }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := NewImage()
	for a, v := range im.words {
		c.words[a] = v
	}
	return c
}

// Equal reports whether two images hold identical contents.
func (im *Image) Equal(other *Image) bool {
	if len(im.words) != len(other.words) {
		return false
	}
	for a, v := range im.words {
		if other.words[a] != v {
			return false
		}
	}
	return true
}

// Diff returns up to max human-readable differences between the images,
// for failure reports from the crash-consistency checker.
func (im *Image) Diff(other *Image, max int) []string {
	var addrs []uint64
	seen := map[uint64]bool{}
	for a := range im.words {
		seen[a] = true
		addrs = append(addrs, a)
	}
	for a := range other.words {
		if !seen[a] {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var out []string
	for _, a := range addrs {
		x, y := im.words[a], other.words[a]
		if x != y {
			out = append(out, fmt.Sprintf("[%#x] %#x != %#x", a, x, y))
			if len(out) == max {
				break
			}
		}
	}
	return out
}

// EqualRange reports whether the images agree on every word in [lo, hi).
func (im *Image) EqualRange(other *Image, lo, hi uint64) bool {
	check := func(a *Image, b *Image) bool {
		for addr, v := range a.words {
			if addr >= lo && addr < hi && b.words[addr] != v {
				return false
			}
		}
		return true
	}
	return check(im, other) && check(other, im)
}
