package mem

import (
	"fmt"
	"sort"
)

// Image page geometry. Every load, store, WPQ flush and power-failure check
// goes through the image, so its layout is the simulator's hottest data
// structure: words are grouped into 512-word (4 KiB) pages backed by flat
// arrays, reached through one map lookup per page instead of one per word.
const (
	pageWords = 512
	pageShift = 9 // log2(pageWords)
	pageMask  = pageWords - 1
)

// page is one 4 KiB span of the address space plus a population count, so
// pages can be dropped from the index the moment their last word returns to
// zero (unwritten words read as zero, and sparseness keeps Clone/Equal
// proportional to the touched footprint).
type page struct {
	words   [pageWords]uint64
	nonzero int
}

// Image is a sparse, paged, word-granular memory image. The simulator keeps
// two: the architectural image (what loads observe through the cache
// hierarchy) and the PM image (what has actually persisted — the only thing
// that survives a power failure). Unwritten words read as zero.
type Image struct {
	pages map[uint64]*page
	count int // non-zero words across all pages
}

// NewImage returns an empty image.
func NewImage() *Image { return &Image{pages: map[uint64]*page{}} }

// Read returns the word at addr (8-byte aligned).
func (im *Image) Read(addr uint64) uint64 {
	if !Align8(addr) {
		panic(fmt.Sprintf("mem: unaligned read at %#x", addr))
	}
	w := addr >> 3
	pg := im.pages[w>>pageShift]
	if pg == nil {
		return 0
	}
	return pg.words[w&pageMask]
}

// Write stores a word at addr (8-byte aligned).
func (im *Image) Write(addr, val uint64) {
	if !Align8(addr) {
		panic(fmt.Sprintf("mem: unaligned write at %#x", addr))
	}
	w := addr >> 3
	pi := w >> pageShift
	pg := im.pages[pi]
	if pg == nil {
		if val == 0 {
			return // zero is the default: stay sparse
		}
		pg = &page{}
		im.pages[pi] = pg
	}
	off := w & pageMask
	old := pg.words[off]
	if old == val {
		return
	}
	pg.words[off] = val
	switch {
	case old == 0:
		pg.nonzero++
		im.count++
	case val == 0:
		pg.nonzero--
		im.count--
		if pg.nonzero == 0 {
			delete(im.pages, pi)
		}
	}
}

// Len returns the number of non-zero words.
func (im *Image) Len() int { return im.count }

// Clone returns a deep copy. Copying flat page arrays is far cheaper than
// re-inserting every word into a fresh map, which matters because the
// machine clones the PM image at construction and at every power-failure
// injection.
func (im *Image) Clone() *Image {
	c := &Image{pages: make(map[uint64]*page, len(im.pages)), count: im.count}
	for pi, pg := range im.pages {
		cp := *pg
		c.pages[pi] = &cp
	}
	return c
}

// Equal reports whether two images hold identical contents.
func (im *Image) Equal(other *Image) bool {
	if im.count != other.count || len(im.pages) != len(other.pages) {
		return false
	}
	for pi, pg := range im.pages {
		opg, ok := other.pages[pi]
		if !ok || pg.words != opg.words {
			return false
		}
	}
	return true
}

// pageIndices returns the sorted union of both images' page indices.
func pageIndices(a, b *Image) []uint64 {
	idx := make([]uint64, 0, len(a.pages)+len(b.pages))
	for pi := range a.pages {
		idx = append(idx, pi)
	}
	for pi := range b.pages {
		if _, ok := a.pages[pi]; !ok {
			idx = append(idx, pi)
		}
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx
}

// Diff returns up to max human-readable differences between the images,
// for failure reports from the crash-consistency checker.
func (im *Image) Diff(other *Image, max int) []string {
	var out []string
	for _, pi := range pageIndices(im, other) {
		a, b := im.pages[pi], other.pages[pi]
		if a != nil && b != nil && a.words == b.words {
			continue
		}
		for off := uint64(0); off < pageWords; off++ {
			var x, y uint64
			if a != nil {
				x = a.words[off]
			}
			if b != nil {
				y = b.words[off]
			}
			if x != y {
				addr := ((pi << pageShift) | off) << 3
				out = append(out, fmt.Sprintf("[%#x] %#x != %#x", addr, x, y))
				if len(out) == max {
					return out
				}
			}
		}
	}
	return out
}

// Hash returns a deterministic FNV-1a fingerprint of the image's contents:
// every non-zero word folded in ascending address order. Two images hash
// equal iff they hold identical contents (modulo collisions), so harnesses
// can compare or log an image's identity — the crash fuzzer's oracle hash —
// without retaining the image itself.
func (im *Image) Hash() uint64 {
	idx := make([]uint64, 0, len(im.pages))
	for pi := range im.pages {
		idx = append(idx, pi)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	word := func(w uint64) {
		for i := 0; i < 8; i++ {
			h ^= w & 0xff
			h *= prime64
			w >>= 8
		}
	}
	for _, pi := range idx {
		pg := im.pages[pi]
		for off := uint64(0); off < pageWords; off++ {
			if v := pg.words[off]; v != 0 {
				word((pi<<pageShift | off) << 3) // address
				word(v)
			}
		}
	}
	return h
}

// Export serializes the image as flat (address, value) pairs — every
// non-zero word in ascending address order. The layout is canonical: two
// images export equal slices iff they hold identical contents, so a
// content-addressed snapshot store can hash the export and deduplicate.
// ImportImage is the inverse.
func (im *Image) Export() []uint64 {
	idx := make([]uint64, 0, len(im.pages))
	for pi := range im.pages {
		idx = append(idx, pi)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	out := make([]uint64, 0, 2*im.count)
	for _, pi := range idx {
		pg := im.pages[pi]
		for off := uint64(0); off < pageWords; off++ {
			if v := pg.words[off]; v != 0 {
				out = append(out, (pi<<pageShift|off)<<3, v)
			}
		}
	}
	return out
}

// ImportImage rebuilds an image from Export's pair layout. It insists on the
// canonical form — even length, 8-byte-aligned strictly ascending addresses,
// non-zero values — so a truncated or hand-mangled snapshot is rejected
// instead of silently importing as a different memory.
func ImportImage(pairs []uint64) (*Image, error) {
	if len(pairs)%2 != 0 {
		return nil, fmt.Errorf("mem: import of %d values (odd; want address/value pairs)", len(pairs))
	}
	im := NewImage()
	var prev uint64
	for i := 0; i < len(pairs); i += 2 {
		addr, val := pairs[i], pairs[i+1]
		if !Align8(addr) {
			return nil, fmt.Errorf("mem: import pair %d: unaligned address %#x", i/2, addr)
		}
		if val == 0 {
			return nil, fmt.Errorf("mem: import pair %d: zero value at %#x", i/2, addr)
		}
		if i > 0 && addr <= prev {
			return nil, fmt.Errorf("mem: import pair %d: address %#x not ascending", i/2, addr)
		}
		prev = addr
		im.Write(addr, val)
	}
	return im, nil
}

// EqualRange reports whether the images agree on every word in [lo, hi).
func (im *Image) EqualRange(other *Image, lo, hi uint64) bool {
	if lo >= hi {
		return true
	}
	// Word-index range covering the addresses in [lo, hi).
	loW, hiW := (lo+7)>>3, (hi+7)>>3
	for _, pi := range pageIndices(im, other) {
		pLo, pHi := pi<<pageShift, (pi+1)<<pageShift
		if pHi <= loW || pLo >= hiW {
			continue
		}
		a, b := im.pages[pi], other.pages[pi]
		if a != nil && b != nil && a.words == b.words {
			continue
		}
		from, to := uint64(0), uint64(pageWords)
		if pLo < loW {
			from = loW - pLo
		}
		if pHi > hiW {
			to = hiW - pLo
		}
		for off := from; off < to; off++ {
			var x, y uint64
			if a != nil {
				x = a.words[off]
			}
			if b != nil {
				y = b.words[off]
			}
			if x != y {
				return false
			}
		}
	}
	return true
}
