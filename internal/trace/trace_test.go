package trace_test

import (
	"strings"
	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/isa"
	"lightwsp/internal/machine"
	"lightwsp/internal/trace"
)

func TestRecordAndCap(t *testing.T) {
	tr := trace.New(2)
	for i := 0; i < 5; i++ {
		tr.Record(trace.PMWrite{Region: uint64(i)})
	}
	if tr.Len() != 2 || tr.Dropped != 3 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped)
	}
	unbounded := trace.New(0)
	for i := 0; i < 5; i++ {
		unbounded.Record(trace.PMWrite{Region: uint64(i)})
	}
	if unbounded.Len() != 5 || unbounded.Dropped != 0 {
		t.Fatal("unbounded trace dropped events")
	}
}

func TestSummaryReportsDropped(t *testing.T) {
	tr := trace.New(2)
	for i := 0; i < 5; i++ {
		tr.Record(trace.PMWrite{MC: 0, Region: uint64(i), Addr: uint64(8 * i)})
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "3 dropped") {
		t.Fatalf("summary hides the dropped count: %q", sum)
	}
}

func TestVerifyRegionOrderRefusesCappedTrace(t *testing.T) {
	// The retained prefix is perfectly ordered — but the trace dropped
	// events, so a verification pass over it would prove nothing and must
	// fail loudly instead.
	tr := trace.New(2)
	for i := 0; i < 5; i++ {
		tr.Record(trace.PMWrite{MC: 0, Region: uint64(i), Addr: uint64(8 * i)})
	}
	err := tr.VerifyRegionOrder(1)
	if err == nil {
		t.Fatal("capped trace verified")
	}
	if !strings.Contains(err.Error(), "dropped 3") {
		t.Fatalf("error hides the dropped count: %v", err)
	}
	// The same stream without a cap verifies fine.
	full := trace.New(0)
	for i := 0; i < 5; i++ {
		full.Record(trace.PMWrite{MC: 0, Region: uint64(i), Addr: uint64(8 * i)})
	}
	if err := full.VerifyRegionOrder(1); err != nil {
		t.Fatalf("uncapped trace rejected: %v", err)
	}
}

func TestVerifyRegionOrderDetectsViolations(t *testing.T) {
	ok := trace.New(0)
	ok.Record(trace.PMWrite{MC: 0, Region: 1, Addr: 0x10})
	ok.Record(trace.PMWrite{MC: 1, Region: 3, Addr: 0x40}) // other MC may run ahead
	ok.Record(trace.PMWrite{MC: 0, Region: 2, Addr: 0x18})
	if err := ok.VerifyRegionOrder(2); err != nil {
		t.Fatalf("legal trace rejected: %v", err)
	}

	bad := trace.New(0)
	bad.Record(trace.PMWrite{MC: 0, Region: 2, Addr: 0x10})
	bad.Record(trace.PMWrite{MC: 0, Region: 1, Addr: 0x18}) // per-MC regression
	if err := bad.VerifyRegionOrder(2); err == nil {
		t.Fatal("per-controller regression accepted")
	}

	conflict := trace.New(0)
	conflict.Record(trace.PMWrite{MC: 0, Region: 2, Addr: 0x10})
	conflict.Record(trace.PMWrite{MC: 1, Region: 1, Addr: 0x10}) // same-address regression
	if err := conflict.VerifyRegionOrder(2); err == nil {
		t.Fatal("same-address regression accepted")
	}

	oob := trace.New(0)
	oob.Record(trace.PMWrite{MC: 5, Region: 1})
	if err := oob.VerifyRegionOrder(2); err == nil {
		t.Fatal("out-of-range controller accepted")
	}
}

// lockProg builds a multi-threaded locked-counter program: the canonical
// conflicting-access pattern of Fig. 4.
func lockProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("lk")
	b.Func("main")
	b.MovImm(3, 0x40000)
	b.MovImm(4, 0x40008)
	b.MovImm(7, 0)
	b.MovImm(8, 5)
	loop := b.NewBlock()
	b.LockAcquire(3, 0)
	b.Load(5, 4, 0)
	b.AddImm(5, 5, 1)
	b.Store(4, 0, 5)
	b.LockRelease(3, 0)
	b.AddImm(7, 7, 1)
	b.CmpLT(9, 7, 8)
	b.Branch(9, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLightWSPRunSatisfiesRegionOrder(t *testing.T) {
	res, err := compiler.Compile(lockProg(t), compiler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 4
	sys, err := machine.NewSystem(res.Prog, cfg, machine.Scheme{
		Name: "lightwsp", Instrumented: true, UsePersistPath: true,
		EntryBytes: 8, GatedWPQ: true, UseDRAMCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(0)
	sys.SetPersistTrace(tr)
	if !sys.Run(10_000_000) {
		t.Fatal("run did not complete")
	}
	if tr.Len() == 0 {
		t.Fatal("no PM writes traced")
	}
	if err := tr.VerifyRegionOrder(cfg.NumMCs); err != nil {
		t.Fatalf("LRPO invariant violated on a real run: %v", err)
	}
	// The shared counter must have been written by monotonically
	// increasing regions — the happens-before order of Fig. 4.
	var last uint64
	for _, w := range tr.Writes {
		if w.Addr == 0x40008 {
			if w.Region < last {
				t.Fatalf("counter regions regressed: %d after %d", w.Region, last)
			}
			last = w.Region
		}
	}
	if !strings.Contains(tr.Summary(), "PM writes") {
		t.Fatal("summary malformed")
	}
}

func TestCWSPSpeculationViolatesPerMCOrder(t *testing.T) {
	// cWSP's FIFO speculation flushes out of region order by design —
	// that is exactly why it needs undo logging. The trace should catch
	// it on a contended run.
	res, err := compiler.Compile(lockProg(t), compiler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 8
	sys, err := machine.NewSystem(res.Prog, cfg, machine.Scheme{
		Name: "cwsp", Instrumented: true, StripCheckpoints: true,
		UsePersistPath: true, EntryBytes: 8, UseDRAMCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(0)
	sys.SetPersistTrace(tr)
	if !sys.Run(10_000_000) {
		t.Fatal("run did not complete")
	}
	if err := tr.VerifyRegionOrder(cfg.NumMCs); err == nil {
		t.Skip("speculation happened to stay ordered on this run")
	}
}
