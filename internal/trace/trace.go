// Package trace records the persist-order event stream of a run — every
// WPQ→PM write with its cycle, controller, address and region tag — and
// checks LightWSP's ordering invariants over it (DESIGN.md invariant 2):
//
//   - per controller, the region IDs of flushed entries never decrease
//     (the gated WPQ opens quarantines strictly in flush-ID order), and
//   - per address, region IDs never decrease across controllers either
//     (same-address conflicts are homed on one controller, so cross-region
//     write order is preserved exactly where it matters).
//
// The experiment harness and tests attach a PersistTrace to a machine to
// prove the ordering property on real executions; the cWSP baseline's
// speculative FIFO flushing visibly violates the per-controller ordering,
// which is precisely the behaviour its undo logging exists to repair.
package trace

import (
	"fmt"
)

// PMWrite is one persisted store.
type PMWrite struct {
	// Cycle is when the write reached PM.
	Cycle uint64
	// MC is the memory controller that issued it.
	MC int
	// Addr and Val are the written word.
	Addr, Val uint64
	// Region is the entry's region ID tag (0 for uninstrumented schemes).
	Region uint64
	// Core is the store's issuing core.
	Core int
	// Boundary marks the PC-checkpointing store closing Region.
	Boundary bool
}

// PersistTrace accumulates the persist-order event stream of one run.
type PersistTrace struct {
	// Writes is the stream in flush order (global simulation order).
	Writes []PMWrite
	// cap bounds memory for very long runs; 0 means unbounded.
	cap int
	// Dropped counts events discarded past the cap.
	Dropped uint64
}

// New returns a trace that keeps at most cap events (0 = unbounded).
func New(cap int) *PersistTrace {
	return &PersistTrace{cap: cap}
}

// Record appends one write.
func (t *PersistTrace) Record(w PMWrite) {
	if t.cap > 0 && len(t.Writes) >= t.cap {
		t.Dropped++
		return
	}
	t.Writes = append(t.Writes, w)
}

// Len returns the number of retained events.
func (t *PersistTrace) Len() int { return len(t.Writes) }

// VerifyRegionOrder checks the LRPO ordering invariants over the trace and
// returns the first violation found, or nil. numMCs sizes the per-controller
// cursor table. A capped trace that dropped events is an error: the retained
// prefix may well be ordered while a violation sits in the dropped tail, so
// a pass over it would prove nothing.
func (t *PersistTrace) VerifyRegionOrder(numMCs int) error {
	if t.Dropped > 0 {
		return fmt.Errorf("trace dropped %d events past its %d-event cap; ordering cannot be verified", t.Dropped, t.cap)
	}
	perMC := make([]uint64, numMCs)
	perAddr := map[uint64]uint64{}
	for i, w := range t.Writes {
		if w.MC < 0 || w.MC >= numMCs {
			return fmt.Errorf("trace[%d]: controller %d out of range", i, w.MC)
		}
		if w.Region < perMC[w.MC] {
			return fmt.Errorf("trace[%d]: controller %d flushed region %d after region %d",
				i, w.MC, w.Region, perMC[w.MC])
		}
		perMC[w.MC] = w.Region
		if last, ok := perAddr[w.Addr]; ok && w.Region < last {
			return fmt.Errorf("trace[%d]: address %#x written by region %d after region %d",
				i, w.Addr, w.Region, last)
		}
		perAddr[w.Addr] = w.Region
	}
	return nil
}

// RegionsFlushed returns the set of distinct region IDs observed.
func (t *PersistTrace) RegionsFlushed() map[uint64]int {
	out := map[uint64]int{}
	for _, w := range t.Writes {
		out[w.Region]++
	}
	return out
}

// Summary renders a one-line digest for logs.
func (t *PersistTrace) Summary() string {
	return fmt.Sprintf("trace: %d PM writes across %d regions (%d dropped)",
		len(t.Writes), len(t.RegionsFlushed()), t.Dropped)
}
