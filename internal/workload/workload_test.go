package workload

import (
	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/isa"
	"lightwsp/internal/machine"
	"lightwsp/internal/mem"
)

func TestProfileTableShape(t *testing.T) {
	ps := Profiles()
	if len(ps) != 39 {
		t.Fatalf("profiles = %d, want 39 (38 applications; lbm and namd repeat)", len(ps))
	}
	counts := map[Suite]int{}
	names := map[string]bool{}
	for _, p := range ps {
		counts[p.Suite]++
		key := string(p.Suite) + "/" + p.Name
		if names[key] {
			t.Errorf("duplicate profile %s", key)
		}
		names[key] = true
		if p.Threads < 1 || p.Segments <= 0 || p.Iterations <= 0 || p.WorkingSet == 0 {
			t.Errorf("%s: degenerate shape %+v", key, p)
		}
	}
	want := map[Suite]int{CPU2006: 8, CPU2017: 7, STAMP: 4, NPB: 7, SPLASH3: 10, WHISPER: 3}
	for s, n := range want {
		if counts[s] != n {
			t.Errorf("suite %s has %d profiles, want %d", s, counts[s], n)
		}
	}
}

func TestMemoryIntensiveSet(t *testing.T) {
	ms := MemoryIntensiveProfiles()
	want := map[string]bool{"lbm": true, "libquan": true, "milc": true, "rb": true, "tatp": true, "tpcc": true}
	if len(ms) != len(want) {
		t.Fatalf("memory-intensive set = %d entries, want %d", len(ms), len(want))
	}
	for _, p := range ms {
		if !want[p.Name] {
			t.Errorf("unexpected memory-intensive profile %s", p.Name)
		}
	}
}

func TestByNameAndBySuite(t *testing.T) {
	if _, ok := ByName(CPU2006, "lbm"); !ok {
		t.Error("lbm missing from CPU2006")
	}
	if _, ok := ByName(WHISPER, "lbm"); ok {
		t.Error("lbm found in WHISPER")
	}
	if got := len(BySuite(STAMP)); got != 4 {
		t.Errorf("STAMP profiles = %d", got)
	}
}

func TestBuildAllProfilesValid(t *testing.T) {
	for _, p := range Profiles() {
		prog, err := Build(p)
		if err != nil {
			t.Fatalf("%s/%s: %v", p.Suite, p.Name, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s/%s: invalid program: %v", p.Suite, p.Name, err)
		}
		if prog.NumInstrs() < 50 {
			t.Errorf("%s/%s: suspiciously small (%d instrs)", p.Suite, p.Name, prog.NumInstrs())
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	p, _ := ByName(CPU2006, "mcf")
	a, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Disasm() != b.Disasm() {
		t.Fatal("generator is not deterministic")
	}
}

func TestBuildAllProfilesCompile(t *testing.T) {
	for _, p := range Profiles() {
		prog, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := compiler.Compile(prog, compiler.DefaultConfig())
		if err != nil {
			t.Fatalf("%s/%s: %v", p.Suite, p.Name, err)
		}
		if res.Stats.Boundaries == 0 {
			t.Errorf("%s/%s: no boundaries", p.Suite, p.Name)
		}
	}
}

func TestWorkloadRunsOnBaseline(t *testing.T) {
	for _, name := range []string{"bzip2", "lbm", "mcf"} {
		p, _ := ByName(CPU2006, name)
		prog, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.DefaultConfig()
		cfg.Threads = p.Threads
		sys, err := machine.NewSystem(prog, cfg, machine.Scheme{Name: "b", UseDRAMCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sys.Run(100_000_000) {
			t.Fatalf("%s did not complete", name)
		}
		if sys.Stats.Instructions < 1000 || sys.Stats.Stores == 0 || sys.Stats.Loads == 0 {
			t.Fatalf("%s: degenerate run: %+v", name, sys.Stats)
		}
	}
}

func TestMultithreadedWorkloadRuns(t *testing.T) {
	p, _ := ByName(STAMP, "vacation")
	prog, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = p.Threads
	sys, err := machine.NewSystem(prog, cfg, machine.Scheme{Name: "b", UseDRAMCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(100_000_000) {
		t.Fatal("vacation did not complete")
	}
	if sys.Stats.Atomics == 0 {
		t.Fatal("no critical sections executed")
	}
	// Shared counters accumulated under the lock.
	sum := uint64(0)
	for off := uint64(8); off <= 32; off += 8 {
		sum += sys.Arch().Read(SharedBase + off)
	}
	if sum == 0 {
		t.Fatal("critical sections left no trace")
	}
}

func TestMemoryIntensiveHasWorseLocality(t *testing.T) {
	run := func(name string) *machine.Stats {
		p, _ := ByName(CPU2006, name)
		prog, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.DefaultConfig()
		cfg.L2Size = 2 << 20 // scaled capacity, see EXPERIMENTS.md
		cfg.Threads = 1
		sys, err := machine.NewSystem(prog, cfg, machine.Scheme{Name: "b", UseDRAMCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sys.Run(200_000_000) {
			t.Fatalf("%s did not complete", name)
		}
		return &sys.Stats
	}
	mem := run("lbm")   // memory-intensive
	cpu := run("hmmer") // cache-friendly
	if mem.L2Misses == 0 {
		t.Fatal("lbm produced no L2 misses")
	}
	// Compare misses per instruction: an L1-friendly workload barely
	// touches L2 at all, so its per-access ratio is uninformative.
	memMPKI := float64(mem.L2Misses) / float64(mem.Instructions) * 1000
	cpuMPKI := float64(cpu.L2Misses) / float64(cpu.Instructions) * 1000
	if memMPKI <= 2*cpuMPKI {
		t.Fatalf("lbm L2 MPKI %.2f not clearly worse than hmmer %.2f", memMPKI, cpuMPKI)
	}
}

func TestAddressesStayInBounds(t *testing.T) {
	// All generated addresses must stay inside the heap partitions and
	// the shared region — far below the reserved machine regions.
	p, _ := ByName(WHISPER, "tpcc")
	prog, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = p.Threads
	sys, err := machine.NewSystem(prog, cfg, machine.Scheme{Name: "b", UseDRAMCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(100_000_000) {
		t.Fatal("tpcc did not complete")
	}
	// The machine panics on out-of-PM accesses; additionally verify the
	// workload never wrote into the reserved top of PM other than via
	// the machine itself (no persistence scheme here, so arch only).
	_ = mem.UndoLogBase
}

func TestHelperFunctionCalled(t *testing.T) {
	p, _ := ByName(CPU2006, "bzip2") // CallEvery > 0
	prog, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range prog.Funcs[0].Blocks {
		for i := range f.Instrs {
			if f.Instrs[i].Op == isa.Call {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no calls generated for a CallEvery profile")
	}
}

func TestRandomProgramsValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := RandomProgram(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q := RandomProgram(seed)
		if p.Disasm() != q.Disasm() {
			t.Fatalf("seed %d: nondeterministic generation", seed)
		}
	}
	if RandomProgram(1).Disasm() == RandomProgram(2).Disasm() {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestRandomProgramsCompileAcrossThresholds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := RandomProgram(seed)
		for _, th := range []int{8, 16, 32, 64} {
			res, err := compiler.Compile(p, compiler.Config{StoreThreshold: th, MaxUnroll: 4})
			if err != nil {
				t.Fatalf("seed %d threshold %d: %v", seed, th, err)
			}
			if res.Stats.MaxRegionStores > th {
				t.Fatalf("seed %d: bound %d > %d", seed, res.Stats.MaxRegionStores, th)
			}
		}
	}
}

func TestStoreFractionPaddingBounded(t *testing.T) {
	// The padding must keep the static persist-store fraction at or
	// below ~1.4x of the target (the documented dilution cap) for every
	// profile, and never grow the body unboundedly.
	for _, p := range Profiles() {
		prog, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		stores, insts := 0, 0
		for _, blk := range prog.Funcs[0].Blocks {
			for i := range blk.Instrs {
				insts++
				stores += blk.Instrs[i].Op.PersistStores()
			}
		}
		frac := float64(stores) / float64(insts)
		target := p.StoreFrac
		if target == 0 {
			target = 0.07
		}
		if frac > target*2.2 {
			t.Errorf("%s/%s: static persist fraction %.3f far above target %.3f",
				p.Suite, p.Name, frac, target)
		}
	}
}
