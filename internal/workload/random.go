package workload

import (
	"math/rand"

	"lightwsp/internal/isa"
)

// RandomProgram generates a structurally random but always-valid program:
// store runs, ALU chains, self-loops, branch diamonds, helper calls and
// fences in random order. It is the fuzz fodder for the end-to-end
// crash-consistency property tests — every generated program must satisfy
// "crash anywhere + recover ≡ failure-free" under LightWSP.
//
// Programs are single-threaded and deterministic for a given seed.
func RandomProgram(seed int64) *isa.Program {
	r := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("random")
	nLeaf := 1 + r.Intn(2)
	b.Func("main")
	b.MovImm(1, 0x10000+int64(r.Intn(64))*8) // base pointer
	b.MovImm(2, int64(1+r.Intn(100)))
	segs := 3 + r.Intn(8)
	for s := 0; s < segs; s++ {
		switch r.Intn(7) {
		case 0: // store run
			n := 1 + r.Intn(24)
			for i := 0; i < n; i++ {
				b.Store(1, int64(8*i), 2)
				b.AddImm(2, 2, int64(r.Intn(5)))
			}
		case 1: // ALU chain
			for i := 0; i < 2+r.Intn(8); i++ {
				b.MulImm(2, 2, int64(1+r.Intn(7)))
				b.AddImm(3, 2, int64(i))
			}
		case 2: // self-loop with stores and an evolving pointer
			b.MovImm(4, 0)
			b.MovImm(5, int64(2+r.Intn(24)))
			loop := b.NewBlock()
			b.Store(1, 0, 4)
			b.AddImm(1, 1, 8)
			b.AddImm(4, 4, 1)
			b.CmpLT(6, 4, 5)
			next := loop + 1
			b.Branch(6, loop, next)
			b.NewBlock()
			b.SwitchTo(loop - 1)
			b.Jump(loop)
			b.SwitchTo(next)
		case 3: // fence (implicit hardware boundary)
			b.Fence()
		case 4: // diamond with stores on both arms
			b.MovImm(6, int64(r.Intn(2)))
			pre := b.CurrentBlock()
			then := b.NewBlock()
			b.AddImm(2, 2, 17)
			b.Store(1, 16, 2)
			b.Jump(then + 2)
			els := b.NewBlock()
			b.MulImm(2, 2, 3)
			b.Store(1, 24, 2)
			b.Jump(els + 1)
			join := b.NewBlock()
			b.SwitchTo(pre)
			b.Branch(6, then, els)
			b.SwitchTo(join)
		case 5: // call a leaf: args are (accumulator, base pointer)
			b.Mov(8, 1) // save the base across the argument shuffle
			b.Mov(isa.ArgReg(0), 2)
			b.Mov(isa.ArgReg(1), 8)
			b.Call(1+r.Intn(nLeaf), 2)
			b.Mov(2, isa.RetReg) // acc = leaf(acc)
			b.Mov(1, 8)          // restore the base pointer
		case 6: // atomic update (implicit boundary + store)
			b.AtomicAdd(7, 1, 32, 2)
		}
	}
	// Publish the accumulator so the whole computation is observable.
	b.MovImm(9, 0x9000)
	b.Store(9, 0, 2)
	b.Halt()
	for i := 0; i < nLeaf; i++ {
		b.Func("leaf")
		n := r.Intn(6)
		for j := 0; j < n; j++ {
			b.Store(isa.ArgReg(1), int64(8*(j+8)), isa.ArgReg(0))
		}
		b.MulImm(0, isa.ArgReg(0), int64(2+i))
		b.AddImm(0, 0, 1)
		b.Ret(0)
	}
	p, err := b.Build()
	if err != nil {
		// The generator only emits structurally valid programs; a build
		// failure is a bug in the generator itself.
		panic(err)
	}
	return p
}
