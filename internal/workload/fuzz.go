package workload

// Crash-consistency fuzzing workloads: miniature calibrated programs whose
// complete runs span a few thousand cycles, so a campaign can afford to make
// *every* cycle an injection point (exhaustive mode) instead of sampling.
// They exercise the same generator features as the evaluation profiles —
// stores, loads, ALU chains, branch diamonds, helper calls, and (for the
// multi-threaded one) lock-protected critical sections — just at a scale
// where total cycles × injections stays cheap.
//
// Like every profile, they are deterministic: the generator PRNG is seeded
// from the profile name, so a repro file naming one of these rebuilds a
// bit-identical program.

// FuzzSmokeProfiles returns the standard crash-fuzzing smoke set: one
// single-threaded workload (checked word-for-word against the failure-free
// oracle) and one multi-threaded, critical-section-heavy workload (checked
// for PM ≡ final architectural state, since commutative critical sections
// may legally reorder across a recovery).
func FuzzSmokeProfiles() []Profile {
	return []Profile{
		{
			Name: "fuzz-st", Suite: CPU2006,
			StoreWeight: 4, LoadWeight: 4, ALUWeight: 5, StoreFrac: 0.08,
			WorkingSet: 64 * kb, HotFraction: 0.6, Branchiness: 0.3,
			CallEvery: 5, Threads: 1, Segments: 6, Iterations: 4,
		},
		{
			Name: "fuzz-mt", Suite: STAMP,
			StoreWeight: 4, LoadWeight: 4, ALUWeight: 4, StoreFrac: 0.09,
			WorkingSet: 128 * kb, HotFraction: 0.5, Branchiness: 0.3,
			CallEvery: 5, Threads: 2, CritEvery: 3, Segments: 6, Iterations: 3,
		},
	}
}

// FuzzNightlyProfiles returns the deeper randomized-campaign set: the smoke
// workloads plus representative evaluation profiles from the suites whose
// persistence behaviour differs most (a cache-resident SPEC integer code, a
// memory-intensive streaming code, and a write-intensive transactional
// workload).
func FuzzNightlyProfiles() []Profile {
	out := FuzzSmokeProfiles()
	for _, pick := range []struct {
		suite Suite
		name  string
	}{
		{CPU2006, "hmmer"},
		{CPU2006, "lbm"},
		{WHISPER, "tatp"},
	} {
		if p, ok := ByName(pick.suite, pick.name); ok {
			out = append(out, p)
		}
	}
	return out
}
