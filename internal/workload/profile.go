// Package workload synthesizes the evaluation programs. The paper runs 38
// applications from SPEC CPU2006/2017, SPLASH3, NPB-CPP, STAMP and WHISPER
// under gem5 full-system simulation; neither the binaries nor gem5 are
// reproducible here, so each application is replaced by a calibrated
// synthetic program (DESIGN.md §2): a deterministic kernel whose store
// density, working-set size, locality, branchiness, call frequency, thread
// count and synchronization rate match the qualitative class the paper's
// evaluation depends on (e.g. lbm/libquantum/milc and the WHISPER workloads
// are memory-intensive; STAMP is critical-section-heavy; NPB and SPLASH3
// are parallel scientific kernels).
//
// Programs are generated from a per-application seeded PRNG, so every run
// of the harness builds bit-identical workloads.
package workload

import "strings"

// Suite names a benchmark suite from the paper's evaluation.
type Suite string

// The evaluated suites (§V-A).
const (
	CPU2006 Suite = "CPU2006"
	CPU2017 Suite = "CPU2017"
	STAMP   Suite = "STAMP"
	NPB     Suite = "NPB"
	SPLASH3 Suite = "SPLASH3"
	WHISPER Suite = "WHISPER"
)

// Suites lists all suites in the paper's presentation order.
func Suites() []Suite { return []Suite{CPU2006, CPU2017, STAMP, NPB, SPLASH3, WHISPER} }

// Profile characterizes one application's synthetic stand-in.
type Profile struct {
	// Name is the application name as it appears in Figure 7.
	Name  string
	Suite Suite

	// StoreWeight, LoadWeight and ALUWeight set the instruction mix
	// (relative weights of generated segment types).
	StoreWeight, LoadWeight, ALUWeight int

	// StoreFrac is the target dynamic store fraction (stores per
	// instruction). The builder pads the loop body with ALU work until
	// the static ratio matches, which pins the persist-path demand of
	// the application class regardless of segment-mix randomness.
	// Zero defaults to 0.07.
	StoreFrac float64

	// WorkingSet is the data footprint in bytes (split across threads).
	// Memory-intensive applications exceed the L2 so their reuse lands
	// in the DRAM cache — the behaviour Figure 9 (PSP vs WSP) hinges on.
	WorkingSet uint64

	// HotFraction is the share of accesses that hit a small hot region
	// (locality); the rest sweep the full working set with a wrapping
	// strided pointer, so laps revisit every line.
	HotFraction float64

	// Branchiness adds data-dependent diamonds per segment.
	Branchiness float64

	// CallEvery inserts a helper-function call every n segments
	// (0 = never).
	CallEvery int

	// Threads is the thread count (1 for SPEC; parallel suites use 8).
	Threads int

	// CritEvery inserts a lock-protected critical section every n
	// segments (0 = never); STAMP and WHISPER are sync-heavy.
	CritEvery int

	// Segments scales the loop body; Iterations the outer trip count.
	Segments   int
	Iterations int

	// MemoryIntensive marks the applications Figure 9 evaluates.
	MemoryIntensive bool
}

// kb and mb improve profile-table readability.
const (
	kb = uint64(1) << 10
	mb = uint64(1) << 20
)

// coverIters returns the outer-loop trip count that sweeps the per-thread
// working-set partition the given number of times (in tenths of a pass),
// with floors and caps keeping every run simulable in well under a second
// of wall time. The cold sweep advances 72 bytes per access.
func coverIters(p Profile, passesTenths int) int {
	threads := p.Threads
	if threads < 1 {
		threads = 1
	}
	part := float64(p.WorkingSet) / float64(threads)
	// Average cold accesses per iteration: memory segments dominate at
	// roughly 80% density with the profile's locality split.
	coldPerIter := float64(p.Segments) * 0.8 * (1 - p.HotFraction)
	if coldPerIter < 1 {
		coldPerIter = 1
	}
	iters := int(part / 72 / coldPerIter * float64(passesTenths) / 10)
	if iters < 80 {
		iters = 80
	}
	if iters > 9000 {
		iters = 9000
	}
	return iters
}

// Profiles returns the full application list of Figure 7, in its order.
// lbm and namd appear in both CPU2006 and CPU2017 (the paper's 38
// applications span 39 suite entries).
func Profiles() []Profile {
	var out []Profile
	add := func(p Profile, passesTenths int) {
		p.Iterations = coverIters(p, passesTenths)
		out = append(out, p)
	}

	// --- SPEC CPU2006 (single-threaded) ---
	add(Profile{Name: "bzip2", Suite: CPU2006, StoreFrac: 0.065, StoreWeight: 3, LoadWeight: 4, ALUWeight: 6,
		WorkingSet: 512 * kb, HotFraction: 0.6, Branchiness: 0.5, CallEvery: 12, Threads: 1, Segments: 26}, 15)
	add(Profile{Name: "h264ref", Suite: CPU2006, StoreFrac: 0.06, StoreWeight: 3, LoadWeight: 5, ALUWeight: 7,
		WorkingSet: 512 * kb, HotFraction: 0.65, Branchiness: 0.6, CallEvery: 8, Threads: 1, Segments: 30}, 15)
	add(Profile{Name: "hmmer", Suite: CPU2006, StoreFrac: 0.06, StoreWeight: 4, LoadWeight: 5, ALUWeight: 8,
		WorkingSet: 256 * kb, HotFraction: 0.8, Branchiness: 0.3, CallEvery: 16, Threads: 1, Segments: 28}, 20)
	add(Profile{Name: "lbm", Suite: CPU2006, StoreFrac: 0.12, StoreWeight: 6, LoadWeight: 6, ALUWeight: 3,
		WorkingSet: 3 * mb, HotFraction: 0.1, Branchiness: 0.1, CallEvery: 0, Threads: 1, Segments: 18,
		MemoryIntensive: true}, 22)
	add(Profile{Name: "libquan", Suite: CPU2006, StoreFrac: 0.08, StoreWeight: 4, LoadWeight: 8, ALUWeight: 2,
		WorkingSet: 4 * mb, HotFraction: 0.05, Branchiness: 0.1, CallEvery: 0, Threads: 1, Segments: 18,
		MemoryIntensive: true}, 22)
	add(Profile{Name: "mcf", Suite: CPU2006, StoreFrac: 0.05, StoreWeight: 3, LoadWeight: 8, ALUWeight: 3,
		WorkingSet: 1 * mb, HotFraction: 0.3, Branchiness: 0.5, CallEvery: 20, Threads: 1, Segments: 26}, 15)
	add(Profile{Name: "milc", Suite: CPU2006, StoreFrac: 0.10, StoreWeight: 5, LoadWeight: 7, ALUWeight: 4,
		WorkingSet: 3 * mb, HotFraction: 0.12, Branchiness: 0.15, CallEvery: 0, Threads: 1, Segments: 18,
		MemoryIntensive: true}, 22)
	add(Profile{Name: "namd", Suite: CPU2006, StoreFrac: 0.06, StoreWeight: 4, LoadWeight: 5, ALUWeight: 9,
		WorkingSet: 192 * kb, HotFraction: 0.85, Branchiness: 0.2, CallEvery: 14, Threads: 1, Segments: 30}, 20)

	// --- SPEC CPU2017 (single-threaded) ---
	add(Profile{Name: "dsjeng", Suite: CPU2017, StoreFrac: 0.06, StoreWeight: 3, LoadWeight: 5, ALUWeight: 7,
		WorkingSet: 384 * kb, HotFraction: 0.7, Branchiness: 0.7, CallEvery: 10, Threads: 1, Segments: 28}, 15)
	add(Profile{Name: "imagick", Suite: CPU2017, StoreFrac: 0.07, StoreWeight: 5, LoadWeight: 5, ALUWeight: 8,
		WorkingSet: 512 * kb, HotFraction: 0.55, Branchiness: 0.2, CallEvery: 18, Threads: 1, Segments: 30}, 15)
	add(Profile{Name: "lbm", Suite: CPU2017, StoreFrac: 0.12, StoreWeight: 6, LoadWeight: 6, ALUWeight: 3,
		WorkingSet: 3 * mb, HotFraction: 0.1, Branchiness: 0.1, CallEvery: 0, Threads: 1, Segments: 18,
		MemoryIntensive: true}, 22)
	add(Profile{Name: "leela", Suite: CPU2017, StoreFrac: 0.055, StoreWeight: 3, LoadWeight: 5, ALUWeight: 7,
		WorkingSet: 384 * kb, HotFraction: 0.65, Branchiness: 0.8, CallEvery: 8, Threads: 1, Segments: 26}, 15)
	add(Profile{Name: "nab", Suite: CPU2017, StoreFrac: 0.06, StoreWeight: 4, LoadWeight: 5, ALUWeight: 8,
		WorkingSet: 256 * kb, HotFraction: 0.75, Branchiness: 0.2, CallEvery: 16, Threads: 1, Segments: 28}, 20)
	add(Profile{Name: "namd", Suite: CPU2017, StoreFrac: 0.06, StoreWeight: 4, LoadWeight: 5, ALUWeight: 9,
		WorkingSet: 192 * kb, HotFraction: 0.85, Branchiness: 0.2, CallEvery: 14, Threads: 1, Segments: 30}, 20)
	add(Profile{Name: "xz", Suite: CPU2017, StoreFrac: 0.065, StoreWeight: 4, LoadWeight: 6, ALUWeight: 5,
		WorkingSet: 768 * kb, HotFraction: 0.5, Branchiness: 0.5, CallEvery: 12, Threads: 1, Segments: 26}, 15)

	// --- STAMP (multi-threaded, critical-section-heavy) ---
	add(Profile{Name: "intruder", Suite: STAMP, StoreFrac: 0.065, StoreWeight: 3, LoadWeight: 6, ALUWeight: 5,
		WorkingSet: 1 * mb, HotFraction: 0.4, Branchiness: 0.6, CallEvery: 14, Threads: 8, CritEvery: 8, Segments: 10}, 15)
	add(Profile{Name: "labyrinth", Suite: STAMP, StoreFrac: 0.07, StoreWeight: 4, LoadWeight: 6, ALUWeight: 5,
		WorkingSet: 2 * mb, HotFraction: 0.3, Branchiness: 0.4, CallEvery: 18, Threads: 8, CritEvery: 9, Segments: 10}, 15)
	add(Profile{Name: "ssca2", Suite: STAMP, StoreFrac: 0.06, StoreWeight: 3, LoadWeight: 7, ALUWeight: 4,
		WorkingSet: 3 * mb, HotFraction: 0.2, Branchiness: 0.3, CallEvery: 0, Threads: 8, CritEvery: 10, Segments: 10}, 15)
	add(Profile{Name: "vacation", Suite: STAMP, StoreFrac: 0.065, StoreWeight: 3, LoadWeight: 6, ALUWeight: 5,
		WorkingSet: 2 * mb, HotFraction: 0.35, Branchiness: 0.5, CallEvery: 12, Threads: 8, CritEvery: 8, Segments: 10}, 15)

	// --- NPB (multi-threaded scientific kernels) ---
	npb := func(name string, st, ld, alu int, ws uint64, hot float64, passes int) {
		add(Profile{Name: name, Suite: NPB, StoreFrac: 0.06, StoreWeight: st, LoadWeight: ld, ALUWeight: alu,
			WorkingSet: ws, HotFraction: hot, Branchiness: 0.2, CallEvery: 18, Threads: 8,
			CritEvery: 10, Segments: 10}, passes)
	}
	npb("cg", 3, 7, 5, 3*mb, 0.3, 15)
	npb("ep", 2, 3, 10, 128*kb, 0.9, 20)
	npb("is", 4, 6, 4, 3*mb, 0.2, 15)
	npb("ft", 4, 6, 5, 2*mb, 0.25, 15)
	npb("lu", 4, 6, 6, 2*mb, 0.35, 15)
	npb("mg", 3, 7, 5, 3*mb, 0.2, 15)
	npb("sp", 4, 6, 5, 2*mb, 0.3, 15)

	// --- SPLASH3 (multi-threaded) ---
	spl := func(name string, st, ld, alu int, ws uint64, hot float64, crit int) {
		add(Profile{Name: name, Suite: SPLASH3, StoreFrac: 0.055, StoreWeight: st, LoadWeight: ld, ALUWeight: alu,
			WorkingSet: ws, HotFraction: hot, Branchiness: 0.3, CallEvery: 14, Threads: 8,
			CritEvery: crit, Segments: 10}, 15)
	}
	spl("cholesky", 4, 6, 6, 2*mb, 0.35, 10)
	spl("fft", 4, 6, 5, 2*mb, 0.25, 10)
	spl("radix", 4, 6, 4, 3*mb, 0.2, 10)
	spl("barnes", 3, 7, 5, 2*mb, 0.4, 9)
	spl("raytrace", 3, 7, 6, 1*mb, 0.55, 10)
	spl("lu-cg", 4, 6, 6, 2*mb, 0.35, 10)
	spl("lu-ncg", 4, 6, 6, 2*mb, 0.3, 10)
	spl("ocean-cg", 4, 6, 5, 3*mb, 0.2, 10)
	spl("water-ns", 3, 6, 7, 1*mb, 0.5, 10)
	spl("water-sp", 3, 6, 7, 1*mb, 0.55, 10)

	// --- WHISPER (persistent-memory transactional, write-intensive) ---
	wsp := func(name string, st, ld int, ws uint64, crit int) {
		add(Profile{Name: name, Suite: WHISPER, StoreFrac: 0.13, StoreWeight: st, LoadWeight: ld, ALUWeight: 3,
			WorkingSet: ws, HotFraction: 0.25, Branchiness: 0.4, CallEvery: 16, Threads: 8,
			CritEvery: crit, Segments: 10, MemoryIntensive: true}, 20)
	}
	wsp("rb", 5, 7, 3*mb, 9)
	wsp("tatp", 4, 6, 3*mb, 10)
	wsp("tpcc", 5, 7, 3*mb, 9)

	return out
}

// BySuite returns the profiles of one suite.
func BySuite(s Suite) []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}

// ByName returns the profile with the given name in the given suite, or
// false. Names repeat across suites (lbm, namd), so the suite qualifies.
func ByName(s Suite, name string) (Profile, bool) {
	for _, p := range BySuite(s) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Find resolves a suite/name pair against the benchmark registry and the
// fuzzing profile sets, matching the suite case-insensitively — the lookup
// every CLI and the serving layer share.
func Find(suite, name string) (Profile, bool) {
	for _, s := range Suites() {
		if strings.EqualFold(string(s), suite) {
			if p, ok := ByName(s, name); ok {
				return p, true
			}
		}
	}
	for _, p := range FuzzNightlyProfiles() {
		if strings.EqualFold(string(p.Suite), suite) && p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// MemoryIntensiveProfiles returns the Figure 9 set: the memory-intensive
// CPU2006 applications and the WHISPER workloads.
func MemoryIntensiveProfiles() []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.MemoryIntensive && (p.Suite == CPU2006 || p.Suite == WHISPER) {
			out = append(out, p)
		}
	}
	return out
}
