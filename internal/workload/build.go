package workload

import (
	"fmt"
	"math/rand"

	"lightwsp/internal/isa"
	"lightwsp/internal/mem"
)

// Address-space layout of generated programs. The heap starts above the
// small fixed addresses unit tests use and stays far below the machine's
// reserved regions (stacks, checkpoint arrays, undo logs).
const (
	// HeapBase is where per-thread data partitions start.
	HeapBase = uint64(1) << 20
	// SharedBase holds the lock word and shared counters of critical
	// sections.
	SharedBase = uint64(256) << 10
	// HotRegion is the size of the per-thread hot region.
	HotRegion = uint64(32) << 10
)

// Register conventions of generated code. ArgReg(0)/ArgReg(1) arrive with
// the thread ID and thread count and are copied out immediately; r0–r4 stay
// free for calls.
const (
	rScratch0 = isa.Reg(17)
	rScratch1 = isa.Reg(18)
	rScratch2 = isa.Reg(19)
	rAcc      = isa.Reg(20) // running computation accumulator
	rAcc2     = isa.Reg(24) // second accumulator (independent ALU chain)
	rAddr     = isa.Reg(21) // generated effective address
	rAddrTmp  = isa.Reg(22) // address-generation temporary
	rShared   = isa.Reg(23) // shared region base
	rLCG      = isa.Reg(10) // address-generator state
	rColdBase = isa.Reg(11)
	rHotBase  = isa.Reg(12)
	rColdMask = isa.Reg(13) // byte mask of the cold range (range−1)
	rHotMask  = isa.Reg(14) // word-index mask of the hot range
	rColdPtr  = isa.Reg(27) // cold-sweep byte offset
	rIter     = isa.Reg(15)
	rIterN    = isa.Reg(16)
	rC8       = isa.Reg(25) // constant 8 (LCG shift)
	rC3       = isa.Reg(26) // constant 3 (word→byte shift)
	rTID      = isa.Reg(30)
	rNThreads = isa.Reg(29)
)

// Build synthesizes the profile's program. The same profile always yields
// the same program: the generator PRNG is seeded from the profile name.
func Build(p Profile) (*isa.Program, error) {
	if p.Segments <= 0 || p.Iterations <= 0 {
		return nil, fmt.Errorf("workload %s: empty shape", p.Name)
	}
	r := rand.New(rand.NewSource(seed(p)))
	b := isa.NewBuilder(string(p.Suite) + "/" + p.Name)
	b.Func("main")

	threads := p.Threads
	if threads < 1 {
		threads = 1
	}
	part := p.WorkingSet / uint64(threads)
	if part < HotRegion*2 {
		part = HotRegion * 2
	}
	part = pow2Floor(part)

	// Prologue: pin thread identity, bases, masks and constants.
	b.Mov(rTID, isa.ArgReg(0))
	b.Mov(rNThreads, isa.ArgReg(1))
	b.MovImm(rScratch0, int64(part))
	b.Mul(rColdBase, rTID, rScratch0)
	b.MovImm(rScratch0, int64(HeapBase))
	b.Add(rColdBase, rColdBase, rScratch0)
	b.Mov(rHotBase, rColdBase)
	b.MovImm(rColdMask, int64(part-1))
	b.MovImm(rHotMask, int64(HotRegion/mem.WordSize-1))
	b.MovImm(rColdPtr, 0)
	b.MovImm(rShared, int64(SharedBase))
	b.MovImm(rLCG, seed(p)^0x5E3779B97F4A7C15)
	b.Add(rLCG, rLCG, rTID) // decorrelate threads
	b.MovImm(rC8, 8)
	b.MovImm(rC3, 3)
	b.MovImm(rAcc, 1)
	b.MovImm(rAcc2, 2)
	b.MovImm(rIter, 0)
	b.MovImm(rIterN, int64(p.Iterations))

	head := b.NewBlock()
	g := &gen{b: b, p: p, r: r}
	for s := 0; s < p.Segments; s++ {
		g.segment(s)
	}
	g.padToStoreFraction(head)
	// Latch.
	b.AddImm(rIter, rIter, 1)
	b.CmpLT(rScratch0, rIter, rIterN)
	exit := g.splitTarget()
	b.Branch(rScratch0, head, exit)
	b.SwitchTo(exit)
	// Publish the accumulator so dead-code concerns never arise and the
	// final memory state witnesses the whole computation.
	b.MulImm(rScratch0, rTID, 8)
	b.Add(rScratch0, rShared, rScratch0)
	b.Store(rScratch0, 64, rAcc)
	b.Halt()
	b.SwitchTo(0)
	b.Jump(head)

	// Helper (leaf) function: a short computation over its argument with
	// one store into the caller-passed scratch address.
	b.Func("helper")
	b.MulImm(3, isa.ArgReg(0), 3)
	b.AddImm(3, 3, 0x5D)
	b.Xor(3, 3, isa.ArgReg(0))
	b.Store(isa.ArgReg(1), 0, 3)
	b.Ret(3)

	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", p.Name, err)
	}
	return prog, nil
}

func seed(p Profile) int64 {
	h := int64(1469598103934665603)
	for _, c := range string(p.Suite) + "/" + p.Name {
		h = (h ^ int64(c)) * 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

func pow2Floor(x uint64) uint64 {
	p := uint64(1)
	for p*2 <= x {
		p *= 2
	}
	return p
}

// gen emits one program's segments.
type gen struct {
	b *isa.Builder
	p Profile
	r *rand.Rand
}

// splitTarget allocates the block that follows the current one and returns
// its index, leaving the builder on the current block.
func (g *gen) splitTarget() int {
	cur := g.b.CurrentBlock()
	nb := g.b.NewBlock()
	g.b.SwitchTo(cur)
	return nb
}

// address emits code leaving a generated effective address in rAddr,
// drawing from the hot or cold range per the profile's locality. Hot
// accesses scatter pseudo-randomly over the small hot region (cache-
// resident reuse); cold accesses sweep the full working set with a strided
// pointer that wraps, so every line is revisited once the sweep laps — the
// reuse pattern that makes a DRAM cache (and its absence under PSP,
// Figure 9) matter.
func (g *gen) address() {
	b := g.b
	if g.r.Float64() < g.p.HotFraction {
		// LCG step over the hot region.
		b.MulImm(rLCG, rLCG, 6364136223846793005)
		b.AddImm(rLCG, rLCG, 1442695040888963407)
		b.Shr(rAddrTmp, rLCG, rC8)
		b.And(rAddrTmp, rAddrTmp, rHotMask)
		b.Shl(rAddrTmp, rAddrTmp, rC3)
		b.Add(rAddr, rHotBase, rAddrTmp)
		return
	}
	b.Add(rAddr, rColdBase, rColdPtr)
	b.AddImm(rColdPtr, rColdPtr, int64(mem.LineSize+mem.WordSize))
	b.And(rColdPtr, rColdPtr, rColdMask)
}

// segmentKind returns the deterministic segment type for index idx: a
// weighted round-robin over (store, load, alu) plus the structural features
// (calls, critical sections, branch diamonds) at their fixed cadences.
// Determinism matters: with few segments per loop body, random draws give
// the generated applications bimodal instruction mixes.
type segmentKind int

const (
	segStore segmentKind = iota
	segLoad
	segALU
)

func (g *gen) segmentKind(idx int) segmentKind {
	p := g.p
	total := p.StoreWeight + p.LoadWeight + p.ALUWeight
	slot := (idx * total) / maxInt(p.Segments, 1) % total
	switch {
	case slot < p.StoreWeight:
		return segStore
	case slot < p.StoreWeight+p.LoadWeight:
		return segLoad
	}
	return segALU
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// segment emits one kernel segment.
func (g *gen) segment(idx int) {
	b, p := g.b, g.p
	if p.CritEvery > 0 && p.Threads > 1 && idx%p.CritEvery == p.CritEvery-1 {
		g.critical()
		return
	}
	if p.CallEvery > 0 && idx%p.CallEvery == p.CallEvery-1 {
		g.call()
		return
	}
	if g.r.Float64() < p.Branchiness {
		g.diamond()
		return
	}
	switch g.segmentKind(idx) {
	case segStore:
		n := 1 + g.r.Intn(2)
		for i := 0; i < n; i++ {
			g.address()
			g.filler()
			b.Store(rAddr, 0, rAcc)
		}
	case segLoad:
		// Issue the loads back to back into rotating scratch registers so
		// independent misses overlap (memory-level parallelism), then fold.
		n := 1 + g.r.Intn(3)
		regs := []isa.Reg{rScratch0, rScratch1, rScratch2}
		for i := 0; i < n; i++ {
			g.address()
			g.filler()
			b.Load(regs[i%len(regs)], rAddr, 0)
		}
		for i := 0; i < n; i++ {
			b.Add(rAcc, rAcc, regs[i%len(regs)])
		}
	default:
		// Two independent chains keep the 4-wide core fed, so the
		// instruction count — not a serial dependence — sets the pace.
		n := 4 + g.r.Intn(8)
		for i := 0; i < n; i++ {
			b.AddImm(rAcc, rAcc, int64(1+g.r.Intn(64)))
			b.Xor(rAcc2, rAcc2, rAcc)
			b.AddImm(rAcc2, rAcc2, int64(1+g.r.Intn(16)))
			if i%4 == 3 {
				b.MulImm(rAcc, rAcc, 7)
			}
		}
		b.Add(rAcc, rAcc, rAcc2)
	}
}

// padToStoreFraction appends ALU work to the loop body until the static
// ratio of persist-path stores to instructions matches the profile's
// StoreFrac target. This pins each application class's persist-path demand
// — the quantity every persistence scheme's overhead scales with — against
// the randomness of the segment mix. Diamond arms are counted statically
// (both arms), which over-counts executed stores slightly, so the realized
// dynamic fraction errs below the target.
func (g *gen) padToStoreFraction(head int) {
	frac := g.p.StoreFrac
	if frac <= 0 {
		frac = 0.07
	}
	fn := g.b
	_ = fn
	stores, insts := 0, 0
	// Count the loop body: every block from head onward.
	prog := g.b
	_ = prog
	blocks := g.b.BodyBlocks(head)
	for _, blk := range blocks {
		for i := range blk.Instrs {
			insts++
			stores += blk.Instrs[i].Op.PersistStores()
		}
	}
	target := int(float64(stores) / frac)
	// Cap the dilution: past ~35% body growth the padding would distort
	// the application's compute/memory balance more than it stabilizes
	// the store rate.
	if max := insts + insts*35/100; target > max {
		target = max
	}
	for pad := insts; pad < target; pad++ {
		if pad%2 == 0 {
			g.b.AddImm(rAcc2, rAcc2, int64(1+g.r.Intn(32)))
		} else {
			g.b.Xor(rAcc, rAcc, rAcc2)
		}
	}
}

// filler emits a few single-cycle ALU operations between memory accesses,
// keeping the generated store density per instruction in a realistic range.
func (g *gen) filler() {
	b := g.b
	n := 2 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		b.AddImm(rAcc2, rAcc2, int64(1+g.r.Intn(32)))
		b.Xor(rAcc, rAcc, rAcc2)
	}
}

// diamond emits a data-dependent branch with a store on each arm.
func (g *gen) diamond() {
	b := g.b
	pre := b.CurrentBlock()
	b.MovImm(rScratch0, 1)
	b.And(rScratch0, rLCG, rScratch0)
	then := b.NewBlock()
	g.address()
	g.filler()
	b.AddImm(rAcc, rAcc, 13)
	b.Store(rAddr, 0, rAcc)
	els := b.NewBlock()
	g.address()
	g.filler()
	b.MulImm(rAcc, rAcc, 3)
	b.Store(rAddr, 0, rAcc)
	join := b.NewBlock()
	b.SwitchTo(els)
	b.Jump(join)
	b.SwitchTo(then)
	b.Jump(join)
	b.SwitchTo(pre)
	b.Branch(rScratch0, then, els)
	b.SwitchTo(join)
}

// call emits a helper invocation feeding the accumulator through it.
func (g *gen) call() {
	b := g.b
	b.Mov(isa.ArgReg(0), rAcc)
	// Scratch address: a fixed per-thread slot.
	b.MulImm(rScratch0, rTID, 8)
	b.AddImm(rScratch0, rScratch0, int64(SharedBase+4096))
	b.Mov(isa.ArgReg(1), rScratch0)
	b.Call(1, 2)
	b.Add(rAcc, rAcc, isa.RetReg)
}

// critical emits a lock-protected commutative update of shared counters —
// the happens-before pattern of Figure 4.
func (g *gen) critical() {
	b := g.b
	b.LockAcquire(rShared, 0)
	n := 2 + g.r.Intn(2)
	for i := 0; i < n; i++ {
		off := int64(8 * (1 + g.r.Intn(4)))
		b.Load(rScratch2, rShared, off)
		b.AddImm(rScratch2, rScratch2, int64(1+g.r.Intn(9)))
		b.Store(rShared, off, rScratch2)
	}
	b.LockRelease(rShared, 0)
}
