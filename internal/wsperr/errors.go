// Package wsperr defines the typed sentinel errors every layer of the
// simulator maps its failures onto. It is a leaf package — no imports beyond
// the standard library — so the machine, the runtime, the experiment harness
// and the serving layer can all wrap the same sentinels without cycles, and a
// caller can classify any failure with errors.Is instead of matching
// formatted strings. The HTTP server uses exactly this classification to map
// run failures onto response statuses.
package wsperr

import "errors"

var (
	// ErrCanceled marks a run abandoned because its context was canceled
	// or its deadline expired; the simulation stopped at a cycle-batch
	// boundary without completing.
	ErrCanceled = errors.New("run canceled")

	// ErrCyclesExceeded marks a run that did not complete within its cycle
	// budget.
	ErrCyclesExceeded = errors.New("cycle budget exceeded")

	// ErrWPQOverflow marks a run that exhausted its cycle budget while at
	// least one memory controller was wedged in the §IV-D deadlock-escape
	// overflow state — the persist fabric, not the program, is what failed
	// to make progress.
	ErrWPQOverflow = errors.New("WPQ overflow: persist path wedged in deadlock escape")

	// ErrUnrecoverable marks a persisted image that the §IV-F recovery
	// protocol cannot resume from (corrupt checkpoint state, a scheme
	// without recovery metadata, or no forward progress across repeated
	// failures).
	ErrUnrecoverable = errors.New("persisted state is unrecoverable")
)
