package hostfs

import (
	"bytes"
	"encoding/json"
	"errors"
	iofs "io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestSealRoundTrip(t *testing.T) {
	payload := []byte(`{"hello":"world","n":42}`)
	sealed := Seal(payload)
	got, err := Unseal(sealed)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
}

func TestSealDetectsCorruption(t *testing.T) {
	payload := []byte(`{"value":123456}`)
	sealed := Seal(payload)

	// A digit flip deep in the payload still parses as JSON but must fail
	// the seal — this is the corruption class the envelope exists for.
	flipped := append([]byte(nil), sealed...)
	i := bytes.LastIndexByte(flipped, '3')
	flipped[i] = '7'
	var v map[string]any
	if json.Unmarshal(flipped[bytes.IndexByte(flipped, '\n')+1:], &v) != nil {
		t.Fatal("test setup: flipped payload should still parse as JSON")
	}
	if _, err := Unseal(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload: got %v, want ErrCorrupt", err)
	}

	// Truncation (torn write) fails the length check.
	if _, err := Unseal(sealed[:len(sealed)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated payload: got %v, want ErrCorrupt", err)
	}

	// A pre-seal legacy file is not corrupt, just unsealed.
	if _, err := Unseal(payload); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("legacy file: got %v, want ErrNotSealed", err)
	}

	// verify=false is the sabotage hatch: corruption sails through.
	if got, err := UnsealPayload(flipped, false); err != nil || bytes.Equal(got, payload) {
		t.Fatalf("skip-verify should return the corrupt payload: %q, %v", got, err)
	}
}

func TestSealLineRoundTripAndCorruption(t *testing.T) {
	rec := []byte(`{"n":3,"op":"advance","target":1200}`)
	line := SealLine(rec)
	got, err := UnsealLine(line, true)
	if err != nil || !bytes.Equal(got, rec) {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	flipped := append([]byte(nil), line...)
	flipped[bytes.LastIndexByte(flipped, '2')] = '9'
	if _, err := UnsealLine(flipped, true); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped record: got %v, want ErrCorrupt", err)
	}
	if _, err := UnsealLine(rec, true); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("legacy record: got %v, want ErrNotSealed", err)
	}
	if got, err := UnsealLine(flipped, false); err != nil || bytes.Equal(got, rec) {
		t.Fatalf("skip-verify should return the corrupt record: %q, %v", got, err)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "enospc=5,eio=7,fsynclie=20,short=3,slow=2:40,torn=30"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.ENOSPCPct != 5 || p.EIOPct != 7 || p.ShortPct != 3 || p.SlowPct != 2 ||
		p.SlowMaxMs != 40 || p.FsyncLiePct != 20 || p.TornPct != 30 {
		t.Fatalf("parsed %+v", p)
	}
	back, err := ParsePlan(p.String())
	if err != nil || back != p {
		t.Fatalf("String round trip: %+v vs %+v (%v)", back, p, err)
	}
	if q, err := ParsePlan("none"); err != nil || !q.Zero() {
		t.Fatalf("none: %+v, %v", q, err)
	}
	for _, bad := range []string{"eio", "eio=101", "bogus=5", "slow=5", "keep=60,torn=60"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q): want error", bad)
		}
	}
}

func TestInjectorDeterministicAndClassified(t *testing.T) {
	plan, err := ParsePlan("enospc=20,eio=20,short=20")
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = 7
	run := func() []string {
		mem := NewMem(Plan{})
		in := Inject(mem, plan)
		var outcomes []string
		in.MkdirAll("d", 0o755)
		for i := 0; i < 60; i++ {
			f, err := in.CreateTemp("d", "t.tmp*")
			if err != nil {
				outcomes = append(outcomes, "create:"+errno(err))
				continue
			}
			_, werr := f.Write([]byte(`{"x":123}`))
			serr := f.Sync()
			f.Close()
			outcomes = append(outcomes, "write:"+errno(werr)+",sync:"+errno(serr))
		}
		return outcomes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
	var sawENOSPC, sawEIO, sawOK bool
	for _, o := range a {
		switch {
		case bytes.Contains([]byte(o), []byte("ENOSPC")):
			sawENOSPC = true
		case bytes.Contains([]byte(o), []byte("EIO")):
			sawEIO = true
		case o == "write:ok,sync:ok":
			sawOK = true
		}
	}
	if !sawENOSPC || !sawEIO || !sawOK {
		t.Fatalf("fault mix not exercised: %v", a[:10])
	}
}

func errno(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, syscall.ENOSPC):
		return "ENOSPC"
	case errors.Is(err, syscall.EIO):
		return "EIO"
	default:
		return "other"
	}
}

// TestMemCrashDurability is the durability contract: synced bytes survive a
// power cut, unsynced bytes do not (under the strict zero plan), and a
// rename is only durable after the parent directory syncs.
func TestMemCrashDurability(t *testing.T) {
	m := NewMem(Plan{})
	m.MkdirAll("store", 0o755)

	// Synced content + synced entry: survives.
	f, err := m.OpenFile(filepath.Join("store", "synced"), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	m.SyncDir("store")

	// Unsynced tail on the same file: appended after the sync, lost.
	f.Write([]byte("+tail"))

	// Synced content, entry never synced into the directory: lost.
	g, _ := m.OpenFile(filepath.Join("store", "orphan"), os.O_CREATE|os.O_WRONLY, 0o644)
	g.Write([]byte("content"))
	g.Sync()

	m.Crash()

	data, err := m.ReadFile(filepath.Join("store", "synced"))
	if err != nil || string(data) != "durable" {
		t.Fatalf("synced file after crash: %q, %v", data, err)
	}
	if _, err := m.ReadFile(filepath.Join("store", "orphan")); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("orphan should be gone, got %v", err)
	}
	// The old handle is dead.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write: %v", err)
	}
}

func TestMemRenameDurableOnlyAfterSyncDir(t *testing.T) {
	m := NewMem(Plan{})
	m.MkdirAll("d", 0o755)
	tmp, _ := m.CreateTemp("d", "e.tmp*")
	tmp.Write([]byte("payload"))
	tmp.Sync()
	tmp.Close()
	if err := m.Rename(tmp.Name(), filepath.Join("d", "entry")); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.ReadFile(filepath.Join("d", "entry")); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("rename without dir sync must not survive, got %v", err)
	}

	// Same sequence with the directory sync: survives.
	tmp, _ = m.CreateTemp("d", "e.tmp*")
	tmp.Write([]byte("payload"))
	tmp.Sync()
	tmp.Close()
	m.Rename(tmp.Name(), filepath.Join("d", "entry"))
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if data, err := m.ReadFile(filepath.Join("d", "entry")); err != nil || string(data) != "payload" {
		t.Fatalf("rename + dir sync must survive: %q, %v", data, err)
	}
}

func TestMemFsyncLieExposedByCrash(t *testing.T) {
	plan := Plan{Seed: 3, FsyncLiePct: 100}
	m := NewMem(plan)
	m.MkdirAll("d", 0o755)
	f, _ := m.OpenFile(filepath.Join("d", "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("believed durable"))
	if err := f.Sync(); err != nil {
		t.Fatalf("a lying sync still reports success: %v", err)
	}
	if m.Lies() == 0 {
		t.Fatal("lie not counted")
	}
	m.Crash()
	if _, err := m.ReadFile(filepath.Join("d", "f")); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("lied-about data must not survive, got %v", err)
	}
}

func TestMemCrashFlipPolicyParsesAsJSON(t *testing.T) {
	plan := Plan{Seed: 5, FlipPct: 100}
	m := NewMem(plan)
	m.MkdirAll("d", 0o755)
	f, _ := m.OpenFile(filepath.Join("d", "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	doc := []byte(`{"values":[111,222,333,444]}`)
	f.Write(doc)
	f.Sync()
	m.SyncDir("d")
	f.Write([]byte(`{"more":[555,666]}`))
	m.Crash()
	data, err := m.ReadFile(filepath.Join("d", "f"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[:len(doc)], doc) {
		t.Fatalf("durable prefix mutated: %q", data)
	}
	if bytes.Equal(data[len(doc):], []byte(`{"more":[555,666]}`)) {
		t.Fatalf("unsynced tail should be flipped: %q", data)
	}
	var v map[string]any
	if err := json.Unmarshal(data[len(doc):], &v); err != nil {
		t.Fatalf("flipped tail should still parse: %v (%q)", err, data)
	}
}

func TestWithRetryOutlastsTransients(t *testing.T) {
	plan, _ := ParsePlan("eio=40")
	plan.Seed = 9
	mem := NewMem(Plan{})
	mem.MkdirAll("d", 0o755)
	h, _ := mem.OpenFile(filepath.Join("d", "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	h.Write([]byte("x"))
	h.Sync()
	mem.SyncDir("d")

	retries := 0
	var slept []time.Duration
	fsys := WithRetry(Inject(mem, plan), RetryPolicy{
		Attempts: 8,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
		OnRetry:  func(op string, attempt int, err error) { retries++ },
	})
	for i := 0; i < 40; i++ {
		if _, err := fsys.ReadFile(filepath.Join("d", "f")); err != nil {
			t.Fatalf("read %d failed despite retry: %v", i, err)
		}
	}
	if retries == 0 {
		t.Fatal("injector never fired; plan not exercised")
	}
	for i := 1; i < len(slept); i++ {
		if slept[i] < slept[i-1] && slept[i] != slept[0] {
			// Backoff resets per op; within an op it must grow.
			continue
		}
	}

	// ENOSPC is not transient: no retries, immediate failure.
	full, _ := ParsePlan("enospc=100")
	fsys = WithRetry(Inject(mem, full), RetryPolicy{Attempts: 5, Sleep: func(time.Duration) { t.Fatal("slept on ENOSPC") }})
	if err := fsys.MkdirAll("e", 0o755); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC through retry wrapper, got %v", err)
	}
}

// TestDiskFSSatellite verifies the production implementation against a real
// temp dir: the full atomic-replace sequence (temp, write, sync, rename,
// dir sync) and SyncDir on a real directory.
func TestDiskFSSatellite(t *testing.T) {
	dir := t.TempDir()
	fsys := Disk()
	f, err := fsys.CreateTemp(dir, "e.tmp*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	dst := filepath.Join(dir, "entry.json")
	if err := fsys.Rename(f.Name(), dst); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if data, err := fsys.ReadFile(dst); err != nil || string(data) != "x" {
		t.Fatalf("read back: %q, %v", data, err)
	}
}
