package hostfs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Plan describes a host-storage fault campaign, in the style of
// internal/faults: a seed plus percentage dimensions, every individual
// decision derived by hashing (seed, dimension, decision counter) so a
// plan replays identically from its textual form. The zero value is a
// perfect disk.
//
// The operation-level dimensions (consulted by Inject) model the errors a
// filesystem returns; the crash-survival dimensions (consulted by MemFS)
// model what a power cut does to writes the device acknowledged but had
// not persisted.
type Plan struct {
	// Seed drives every hashed decision.
	Seed int64 `json:"seed"`

	// ENOSPCPct fails write-path operations (create, write, rename,
	// mkdir) with ENOSPC.
	ENOSPCPct int `json:"enospc,omitempty"`
	// EIOPct fails I/O operations (read, write, sync, rename, remove,
	// truncate) with EIO. Injected EIOs re-roll per attempt, so they are
	// the transient failures bounded-backoff retry can outlast.
	EIOPct int `json:"eio,omitempty"`
	// ShortPct makes a file write persist only a hashed prefix before
	// failing — a torn write the caller sees as an error.
	ShortPct int `json:"short,omitempty"`
	// SlowPct delays operations by a hashed latency up to SlowMaxMs
	// milliseconds.
	SlowPct   int `json:"slow,omitempty"`
	SlowMaxMs int `json:"slow_max_ms,omitempty"`

	// FsyncLiePct makes MemFS report a successful Sync without actually
	// promoting the data to durable — the firmware lie a later Crash
	// exposes.
	FsyncLiePct int `json:"fsynclie,omitempty"`
	// KeepPct, TornPct and FlipPct decide, per file at Crash time, what
	// happens to acknowledged-but-unsynced bytes: survive whole (Keep),
	// survive as a torn prefix (Torn), or survive with one ASCII digit
	// flipped (Flip — corruption that still parses as JSON, exactly what
	// checksums catch and JSON parsing does not). The remainder reverts
	// to the last honestly-synced content.
	KeepPct int `json:"keep,omitempty"`
	TornPct int `json:"torn,omitempty"`
	FlipPct int `json:"flip,omitempty"`
}

// Zero reports whether the plan injects nothing (a perfect disk).
func (p Plan) Zero() bool {
	return p.ENOSPCPct == 0 && p.EIOPct == 0 && p.ShortPct == 0 && p.SlowPct == 0 &&
		p.FsyncLiePct == 0 && p.KeepPct == 0 && p.TornPct == 0 && p.FlipPct == 0
}

// String renders the plan in ParsePlan's grammar (without the seed).
func (p Plan) String() string {
	if p.Zero() {
		return "none"
	}
	var parts []string
	add := func(k string, v int) {
		if v != 0 {
			parts = append(parts, k+"="+strconv.Itoa(v))
		}
	}
	add("enospc", p.ENOSPCPct)
	add("eio", p.EIOPct)
	add("short", p.ShortPct)
	if p.SlowPct != 0 {
		parts = append(parts, fmt.Sprintf("slow=%d:%d", p.SlowPct, p.SlowMaxMs))
	}
	add("fsynclie", p.FsyncLiePct)
	add("keep", p.KeepPct)
	add("torn", p.TornPct)
	add("flip", p.FlipPct)
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// ParsePlan parses the textual plan grammar:
//
//	enospc=5,eio=5,short=5,slow=2:40,fsynclie=20,keep=10,torn=30,flip=10
//
// Each key is a percentage in [0,100]; slow=PCT:MAXMS carries its latency
// cap. Empty and "none" parse to the zero plan. The seed is not part of
// the grammar; set Plan.Seed after parsing.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Plan{}, fmt.Errorf("hostfs: plan term %q: want key=value", part)
		}
		if key == "slow" {
			pctStr, msStr, ok := strings.Cut(val, ":")
			if !ok {
				return Plan{}, fmt.Errorf("hostfs: plan term %q: want slow=PCT:MAXMS", part)
			}
			pct, err := parsePct(pctStr)
			if err != nil {
				return Plan{}, fmt.Errorf("hostfs: plan term %q: %v", part, err)
			}
			ms, err := strconv.Atoi(msStr)
			if err != nil || ms < 0 {
				return Plan{}, fmt.Errorf("hostfs: plan term %q: bad latency cap", part)
			}
			p.SlowPct, p.SlowMaxMs = pct, ms
			continue
		}
		pct, err := parsePct(val)
		if err != nil {
			return Plan{}, fmt.Errorf("hostfs: plan term %q: %v", part, err)
		}
		switch key {
		case "enospc":
			p.ENOSPCPct = pct
		case "eio":
			p.EIOPct = pct
		case "short":
			p.ShortPct = pct
		case "fsynclie":
			p.FsyncLiePct = pct
		case "keep":
			p.KeepPct = pct
		case "torn":
			p.TornPct = pct
		case "flip":
			p.FlipPct = pct
		default:
			return Plan{}, fmt.Errorf("hostfs: unknown plan dimension %q", key)
		}
	}
	if p.KeepPct+p.TornPct+p.FlipPct > 100 {
		return Plan{}, fmt.Errorf("hostfs: keep+torn+flip exceed 100%%")
	}
	return p, nil
}

func parsePct(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > 100 {
		return 0, fmt.Errorf("bad percentage %q", s)
	}
	return n, nil
}

// splitmix64 is the avalanche mixer behind every hashed decision (the same
// construction internal/faults uses): statistically uniform, trivially
// reproducible, and stateless.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds any number of values into one hashed decision word.
func mix(vals ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// strHash folds a path into a decision word (FNV-1a).
func strHash(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
