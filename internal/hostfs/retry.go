package hostfs

import (
	"errors"
	iofs "io/fs"
	"syscall"
	"time"
)

// Transient reports whether err is a host-I/O failure worth retrying: the
// errnos that routinely clear on a second attempt (EIO from a glitching
// device path, EAGAIN, EINTR). ENOSPC is deliberately not transient —
// retrying a full disk burns the backoff budget for nothing; callers
// should fall through to the degradation ladder instead.
func Transient(err error) bool {
	if errors.Is(err, ErrCrashed) {
		return false
	}
	return errors.Is(err, syscall.EIO) || errors.Is(err, syscall.EAGAIN) || errors.Is(err, syscall.EINTR)
}

// RetryPolicy bounds WithRetry: total attempts per operation and the base
// backoff, doubled between attempts.
type RetryPolicy struct {
	// Attempts is the total tries per operation (minimum 1; default 3).
	Attempts int
	// Backoff is the sleep before the first retry, doubled each further
	// retry (default 2ms).
	Backoff time.Duration
	// Sleep replaces time.Sleep when non-nil (tests and fuzz campaigns
	// pass a no-op).
	Sleep func(time.Duration)
	// OnRetry observes each retry (metrics hook); may be nil.
	OnRetry func(op string, attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 2 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// WithRetry wraps fs so whole operations that fail transiently are retried
// with bounded exponential backoff. Only idempotent whole-file operations
// are retried; File handles pass through unwrapped, because re-driving a
// partially applied Write is not idempotent — handle-level recovery (tear
// down, truncate, re-append) belongs to the caller, and the session
// journal implements exactly that.
func WithRetry(fsys FS, p RetryPolicy) FS {
	return &retryFS{inner: fsys, p: p.withDefaults()}
}

type retryFS struct {
	inner FS
	p     RetryPolicy
}

func (r *retryFS) do(op string, f func() error) error {
	backoff := r.p.Backoff
	for attempt := 1; ; attempt++ {
		err := f()
		if err == nil || attempt >= r.p.Attempts || !Transient(err) {
			return err
		}
		if r.p.OnRetry != nil {
			r.p.OnRetry(op, attempt, err)
		}
		r.p.Sleep(backoff)
		backoff *= 2
	}
}

func (r *retryFS) ReadFile(name string) (data []byte, err error) {
	err = r.do("read", func() error { data, err = r.inner.ReadFile(name); return err })
	return data, err
}

func (r *retryFS) OpenFile(name string, flag int, perm iofs.FileMode) (f File, err error) {
	err = r.do("open", func() error { f, err = r.inner.OpenFile(name, flag, perm); return err })
	return f, err
}

func (r *retryFS) CreateTemp(dir, pattern string) (f File, err error) {
	err = r.do("createtemp", func() error { f, err = r.inner.CreateTemp(dir, pattern); return err })
	return f, err
}

func (r *retryFS) Rename(oldpath, newpath string) error {
	return r.do("rename", func() error { return r.inner.Rename(oldpath, newpath) })
}

func (r *retryFS) Remove(name string) error {
	return r.do("remove", func() error { return r.inner.Remove(name) })
}

func (r *retryFS) RemoveAll(path string) error {
	return r.do("removeall", func() error { return r.inner.RemoveAll(path) })
}

func (r *retryFS) MkdirAll(path string, perm iofs.FileMode) error {
	return r.do("mkdir", func() error { return r.inner.MkdirAll(path, perm) })
}

func (r *retryFS) ReadDir(name string) (ents []iofs.DirEntry, err error) {
	err = r.do("readdir", func() error { ents, err = r.inner.ReadDir(name); return err })
	return ents, err
}

func (r *retryFS) Stat(name string) (info iofs.FileInfo, err error) {
	err = r.do("stat", func() error { info, err = r.inner.Stat(name); return err })
	return info, err
}

func (r *retryFS) Truncate(name string, size int64) error {
	return r.do("truncate", func() error { return r.inner.Truncate(name, size) })
}

func (r *retryFS) SyncDir(name string) error {
	return r.do("syncdir", func() error { return r.inner.SyncDir(name) })
}
