package hostfs

import (
	"fmt"
	iofs "io/fs"
	"sync/atomic"
	"syscall"
	"time"
)

// FaultError is an injected host-filesystem failure. Err is the errno the
// real syscall would have produced (syscall.ENOSPC, syscall.EIO), so
// callers classify injected and real failures identically with errors.Is.
type FaultError struct {
	Op   string
	Path string
	Err  error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("hostfs: injected %v: %s %s", e.Err, e.Op, e.Path)
}

func (e *FaultError) Unwrap() error { return e.Err }

// Operation salts: each operation kind hashes its decisions independently.
const (
	opRead uint64 = iota + 1
	opCreate
	opWrite
	opSync
	opRename
	opRemove
	opMkdir
	opTruncate
	opSyncDir
)

// Injector wraps an FS and injects the plan's operation-level faults:
// ENOSPC on the write path, EIO anywhere, short (torn) file writes, and
// latency. Every decision hashes (seed, op kind, decision counter), so a
// run under a given plan replays identically. Decisions re-roll per call:
// an injected EIO is transient, which is what makes bounded-backoff retry
// (WithRetry) a meaningful defense to fuzz.
type Injector struct {
	inner FS
	plan  Plan
	nonce atomic.Uint64

	// Sleep, when non-nil, replaces time.Sleep for injected latency
	// (campaigns pass a no-op to keep wall time down while still
	// exercising the slow path's decision points).
	Sleep func(time.Duration)

	enospcs atomic.Uint64
	eios    atomic.Uint64
	shorts  atomic.Uint64
	slows   atomic.Uint64
}

// Inject wraps inner with the plan's operation-level fault dimensions.
func Inject(inner FS, plan Plan) *Injector {
	return &Injector{inner: inner, plan: plan}
}

// Counts reports how many faults of each kind have been injected.
func (in *Injector) Counts() (enospc, eio, short, slow uint64) {
	return in.enospcs.Load(), in.eios.Load(), in.shorts.Load(), in.slows.Load()
}

// decide rolls one hashed percentage decision, advancing the counter.
func (in *Injector) decide(op uint64, pct int) (uint64, bool) {
	n := in.nonce.Add(1)
	if pct <= 0 {
		return n, false
	}
	h := mix(uint64(in.plan.Seed), op, n)
	return n, h%100 < uint64(pct)
}

func (in *Injector) maybeSlow(op uint64) {
	if _, hit := in.decide(op, in.plan.SlowPct); !hit {
		return
	}
	in.slows.Add(1)
	d := time.Duration(1+mix(uint64(in.plan.Seed), op, in.nonce.Load())%uint64(max(in.plan.SlowMaxMs, 1))) * time.Millisecond
	if in.Sleep != nil {
		in.Sleep(d)
		return
	}
	time.Sleep(d)
}

func (in *Injector) enospc(op uint64, name, what string) error {
	if _, hit := in.decide(op, in.plan.ENOSPCPct); hit {
		in.enospcs.Add(1)
		return &FaultError{Op: what, Path: name, Err: syscall.ENOSPC}
	}
	return nil
}

func (in *Injector) eio(op uint64, name, what string) error {
	if _, hit := in.decide(op, in.plan.EIOPct); hit {
		in.eios.Add(1)
		return &FaultError{Op: what, Path: name, Err: syscall.EIO}
	}
	return nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	in.maybeSlow(opRead)
	if err := in.eio(opRead, name, "read"); err != nil {
		return nil, err
	}
	return in.inner.ReadFile(name)
}

func (in *Injector) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	in.maybeSlow(opCreate)
	if flag&(syscall.O_CREAT|syscall.O_WRONLY|syscall.O_RDWR) != 0 {
		if err := in.enospc(opCreate, name, "open"); err != nil {
			return nil, err
		}
	}
	if err := in.eio(opCreate, name, "open"); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, inner: f}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	in.maybeSlow(opCreate)
	if err := in.enospc(opCreate, dir, "createtemp"); err != nil {
		return nil, err
	}
	if err := in.eio(opCreate, dir, "createtemp"); err != nil {
		return nil, err
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, inner: f}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	in.maybeSlow(opRename)
	if err := in.enospc(opRename, newpath, "rename"); err != nil {
		return err
	}
	if err := in.eio(opRename, newpath, "rename"); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.eio(opRemove, name, "remove"); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

func (in *Injector) RemoveAll(path string) error {
	if err := in.eio(opRemove, path, "removeall"); err != nil {
		return err
	}
	return in.inner.RemoveAll(path)
}

func (in *Injector) MkdirAll(path string, perm iofs.FileMode) error {
	if err := in.enospc(opMkdir, path, "mkdir"); err != nil {
		return err
	}
	return in.inner.MkdirAll(path, perm)
}

// ReadDir and Stat are metadata reads: left clean so listing a store stays
// reliable — the interesting faults are on the data path.
func (in *Injector) ReadDir(name string) ([]iofs.DirEntry, error) { return in.inner.ReadDir(name) }

func (in *Injector) Stat(name string) (iofs.FileInfo, error) { return in.inner.Stat(name) }

func (in *Injector) Truncate(name string, size int64) error {
	if err := in.eio(opTruncate, name, "truncate"); err != nil {
		return err
	}
	return in.inner.Truncate(name, size)
}

func (in *Injector) SyncDir(name string) error {
	in.maybeSlow(opSyncDir)
	if err := in.eio(opSyncDir, name, "syncdir"); err != nil {
		return err
	}
	return in.inner.SyncDir(name)
}

// injFile injects write-path faults on one handle. A short write persists
// a hashed prefix to the inner file before failing — the torn write a
// checksum must catch if the caller trusts the file later.
type injFile struct {
	in    *Injector
	inner File
}

func (f *injFile) Name() string { return f.inner.Name() }

func (f *injFile) Write(p []byte) (int, error) {
	f.in.maybeSlow(opWrite)
	if err := f.in.enospc(opWrite, f.inner.Name(), "write"); err != nil {
		return 0, err
	}
	if err := f.in.eio(opWrite, f.inner.Name(), "write"); err != nil {
		return 0, err
	}
	if n, hit := f.in.decide(opWrite, f.in.plan.ShortPct); hit && len(p) > 0 {
		f.in.shorts.Add(1)
		keep := int(mix(uint64(f.in.plan.Seed), opWrite, n, 7) % uint64(len(p)))
		wrote, _ := f.inner.Write(p[:keep])
		return wrote, &FaultError{Op: "write", Path: f.inner.Name(), Err: syscall.EIO}
	}
	return f.inner.Write(p)
}

func (f *injFile) Sync() error {
	f.in.maybeSlow(opSync)
	if err := f.in.eio(opSync, f.inner.Name(), "sync"); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *injFile) Close() error { return f.inner.Close() }
