// Package hostfs abstracts the host filesystem operations the durable layer
// depends on — blob-cache writes, the session write-ahead journal, result
// caches — behind a small injectable interface, so the exact failure modes a
// hostile disk exhibits (ENOSPC, EIO, torn writes, fsync lies followed by a
// power cut, slow I/O) can be injected deterministically in tests and fuzz
// campaigns. The package also owns the storage integrity envelope: every
// durable artifact is sealed with a CRC-32C + length header (Seal/SealLine)
// so corruption is detected, quarantined and healed instead of silently
// trusted.
//
// Three implementations of FS exist:
//
//   - Disk() — the real host filesystem (os.*), used in production.
//   - NewMem(plan) — an in-memory filesystem with an explicit durability
//     model: data is durable only after an honest fsync, directory entries
//     only after a parent-directory sync, and Crash() discards everything
//     else (or worse: a seeded policy lets unsynced tails survive torn or
//     bit-flipped, modeling firmware that acknowledged writes it lost).
//   - Inject(inner, plan) — a wrapper that injects operation-level faults
//     (ENOSPC, EIO, short writes, latency) with seed-hashed decisions, in
//     the style of internal/faults.
//
// WithRetry composes over any of them, retrying transient failures with
// bounded backoff — the first rung of the durable layer's degradation
// ladder.
package hostfs

import (
	"io"
	iofs "io/fs"
	"os"
)

// File is the write-side file handle the durable layer needs: sequential
// writes, an explicit durability barrier (Sync), and Close. Reads go through
// FS.ReadFile — every durable artifact is read whole.
type File interface {
	// Name returns the path the handle was opened with.
	Name() string
	io.Writer
	// Sync flushes the file's content to stable storage. A lying device
	// (modeled by MemFS fault plans) may return nil without persisting.
	Sync() error
	Close() error
}

// FS is the host-filesystem surface the durable layer is written against.
// Implementations must be safe for concurrent use.
type FS interface {
	ReadFile(name string) ([]byte, error)
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	// CreateTemp creates a new unique file in dir from pattern (a single
	// '*' is replaced by a unique suffix), like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm iofs.FileMode) error
	ReadDir(name string) ([]iofs.DirEntry, error)
	Stat(name string) (iofs.FileInfo, error)
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making its entries (creates,
	// renames, removes) durable. Atomic-replace writers must call it after
	// rename or a power cut can lose the entry despite a synced file.
	SyncDir(name string) error
}

// osFS is the production implementation: straight delegation to the os
// package.
type osFS struct{}

// Disk returns the real host filesystem.
func Disk() FS { return osFS{} }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) RemoveAll(path string) error { return os.RemoveAll(path) }

func (osFS) MkdirAll(path string, perm iofs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]iofs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(name string) (iofs.FileInfo, error) { return os.Stat(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
