package hostfs

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
)

// The storage integrity envelope. Two formats share one CRC-32C
// (Castagnoli) checksum:
//
//   - Whole-file seal (Seal/Unseal): a one-line text header
//     "%lightwsp-seal v1 crc32c=xxxxxxxx len=N" followed by the payload.
//     Every blob-cache entry is stored sealed; a reader that finds a
//     mismatching checksum or length quarantines the file instead of
//     trusting it, and a file with no header at all is a legacy
//     (pre-seal) entry to evict as stale.
//
//   - Line seal (SealLine/UnsealLine): "xxxxxxxx <record>" — an 8-hex
//     CRC-32C prefix on each write-ahead journal record, so a bit flip
//     inside a record that still parses as JSON is detected and the
//     journal is truncated (and the severed tail quarantined) at the
//     first corrupt record.
//
// CRC-32C is not cryptographic; it defends against torn writes, bit rot
// and firmware lies, not an adversary with write access to the store.

// Seal errors, distinguishable with errors.Is.
var (
	// ErrNotSealed reports a file or line with no integrity envelope — a
	// legacy artifact from before sealing (readers evict it as stale).
	ErrNotSealed = errors.New("hostfs: no integrity seal")
	// ErrCorrupt reports a sealed artifact whose checksum or length does
	// not match its payload — detected corruption (readers quarantine it).
	ErrCorrupt = errors.New("hostfs: integrity seal mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC-32C of data, as used by both seal formats.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

const sealMagic = "%lightwsp-seal v1 "

// Seal wraps payload in the whole-file integrity envelope.
func Seal(payload []byte) []byte {
	hdr := fmt.Sprintf("%scrc32c=%08x len=%d\n", sealMagic, Checksum(payload), len(payload))
	out := make([]byte, 0, len(hdr)+len(payload))
	out = append(out, hdr...)
	return append(out, payload...)
}

// Unseal verifies data's whole-file envelope and returns the payload.
// It returns ErrNotSealed when no envelope is present and ErrCorrupt when
// the length or checksum disagrees with the payload.
func Unseal(data []byte) ([]byte, error) { return UnsealPayload(data, true) }

// UnsealPayload is Unseal with the integrity check optionally disabled
// (verify=false): the header is stripped but the checksum and length are
// not enforced. The escape hatch exists so the diskfuzz sabotage test can
// prove the campaign detects the corruption verification would have
// caught; production readers always verify.
func UnsealPayload(data []byte, verify bool) ([]byte, error) {
	if !bytes.HasPrefix(data, []byte(sealMagic)) {
		return nil, ErrNotSealed
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, ErrCorrupt // header itself torn
	}
	var sum uint32
	var n int
	if _, err := fmt.Sscanf(string(data[len(sealMagic):nl]), "crc32c=%08x len=%d", &sum, &n); err != nil {
		return nil, ErrCorrupt
	}
	payload := data[nl+1:]
	if !verify {
		return payload, nil
	}
	if n < 0 || n != len(payload) || Checksum(payload) != sum {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// SealLine prefixes one journal record with its 8-hex CRC-32C. The record
// must not contain a newline; the caller owns line framing.
func SealLine(record []byte) []byte {
	out := make([]byte, 0, 9+len(record))
	out = fmt.Appendf(out, "%08x ", Checksum(record))
	return append(out, record...)
}

// UnsealLine verifies one sealed journal line (without its trailing
// newline) and returns the record. ErrNotSealed means the line carries no
// checksum prefix (a legacy pre-seal record, still readable by the caller's
// fallback); ErrCorrupt means the prefix is present but wrong. verify=false
// strips the prefix without checking it (see UnsealPayload).
func UnsealLine(line []byte, verify bool) ([]byte, error) {
	if len(line) < 9 || line[8] != ' ' {
		return nil, ErrNotSealed
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return nil, ErrNotSealed
	}
	record := line[9:]
	if verify && Checksum(record) != sum {
		return nil, ErrCorrupt
	}
	return record, nil
}
