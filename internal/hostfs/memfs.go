package hostfs

import (
	"bytes"
	"errors"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrCrashed reports an operation on a file handle that was open when the
// simulated power cut hit: the descriptor is gone with the process.
var ErrCrashed = errors.New("hostfs: file handle lost in crash")

// MemFS is an in-memory filesystem with an explicit durability model,
// built to answer one question the real filesystem cannot answer in a unit
// test: what does the store look like after a power cut?
//
// Two namespaces exist. The current namespace is what operations see — it
// tracks every write immediately, like the page cache. The durable
// namespace is what a power cut reverts to, and it only advances at the
// barriers the durable layer is supposed to use:
//
//   - File content becomes durable when the handle's Sync returns honestly
//     (a plan's FsyncLiePct makes some Syncs lie: return nil, persist
//     nothing — the classic firmware betrayal).
//   - Directory entries (creates, renames, removes) become durable when
//     SyncDir runs on the parent. Rename without SyncDir = an entry a
//     crash forgets, even if the content was synced.
//   - Directories themselves (MkdirAll) are durable immediately; entry
//     durability is the interesting failure, not mkdir.
//   - RemoveAll is administrative (session deletion) and durable
//     immediately.
//
// Crash() reverts to the durable namespace and applies the plan's
// survival policy to each file's unsynced tail: revert (default), keep
// whole (KeepPct), keep a torn prefix (TornPct), or keep with one ASCII
// digit flipped (FlipPct) — corruption that still parses as JSON. Open
// handles fail every later operation with ErrCrashed.
//
// All decisions hash (seed, crash count, path), so a campaign replays
// identically from its plan.
type MemFS struct {
	mu   sync.Mutex
	plan Plan

	gen     int // crash generation; handles from older generations are dead
	crashes uint64
	lies    uint64
	tmpSeq  uint64

	files map[string]*memFile // current namespace
	dirs  map[string]bool
	dur   map[string]*memFile // durable namespace: name -> inode
}

// memFile is one inode: its current content and the prefix state an honest
// Sync last persisted.
type memFile struct {
	data    []byte
	durable []byte // content as of the last honest Sync (nil: never synced)
}

// NewMem returns an empty MemFS governed by plan's durability dimensions
// (FsyncLiePct, KeepPct, TornPct, FlipPct). Compose with Inject for the
// operation-level error dimensions.
func NewMem(plan Plan) *MemFS {
	return &MemFS{
		plan:  plan,
		files: map[string]*memFile{},
		dirs:  map[string]bool{".": true},
		dur:   map[string]*memFile{},
	}
}

// Crashes reports how many power cuts have been simulated.
func (m *MemFS) Crashes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashes
}

// Lies reports how many Syncs returned success without persisting.
func (m *MemFS) Lies() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lies
}

// Crash simulates a power cut: the current namespace is discarded in favor
// of the durable one, each surviving file's unsynced tail is resolved by
// the plan's survival policy, and every open handle dies.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashes++
	m.gen++
	files := make(map[string]*memFile, len(m.dur))
	for name, f := range m.dur {
		data := m.surviving(name, f)
		files[name] = &memFile{data: data, durable: append([]byte(nil), data...)}
	}
	m.files = files
	// Directories are modeled durable; keep them, drop everything else.
}

// surviving resolves what one file holds after the cut. The durable prefix
// (honestly synced bytes) always survives; the policy only governs the
// unsynced tail, because fsync is exactly the contract that those bytes
// reached media.
func (m *MemFS) surviving(name string, f *memFile) []byte {
	durable := f.durable
	if durable == nil {
		durable = []byte{}
	}
	if bytes.Equal(durable, f.data) {
		return append([]byte(nil), durable...)
	}
	cp := commonPrefix(durable, f.data)
	h := mix(uint64(m.plan.Seed), m.crashes, strHash(name))
	r := int(h % 100)
	switch {
	case r < m.plan.KeepPct:
		return append([]byte(nil), f.data...)
	case r < m.plan.KeepPct+m.plan.TornPct:
		keep := cp
		if tail := len(f.data) - cp; tail > 0 {
			keep += int(mix(h, 3) % uint64(tail+1))
		}
		if keep < len(durable) {
			keep = len(durable)
		}
		return append([]byte(nil), f.data[:keep]...)
	case r < m.plan.KeepPct+m.plan.TornPct+m.plan.FlipPct:
		out := append([]byte(nil), f.data...)
		flipDigit(out[cp:], mix(h, 5))
		return out
	default:
		return append([]byte(nil), durable...)
	}
}

// flipDigit replaces one hashed ASCII digit in tail with a different
// digit, so the corrupted artifact still parses as JSON — the corruption
// class only a checksum catches.
func flipDigit(tail []byte, h uint64) {
	var digits []int
	for i, c := range tail {
		if c >= '0' && c <= '9' {
			digits = append(digits, i)
		}
	}
	if len(digits) == 0 {
		return
	}
	i := digits[h%uint64(len(digits))]
	tail[i] = '0' + (tail[i]-'0'+1+byte(h>>32)%9)%10
}

func commonPrefix(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func clean(name string) string { return filepath.Clean(name) }

func (m *MemFS) pathErr(op, name string, err error) error {
	return &iofs.PathError{Op: op, Path: name, Err: err}
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[clean(name)]
	if !ok {
		return nil, m.pathErr("open", name, iofs.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, exists := m.files[name]
	const oCreate, oExcl, oTrunc, oAppend = os.O_CREATE, os.O_EXCL, os.O_TRUNC, os.O_APPEND
	if exists && flag&oCreate != 0 && flag&oExcl != 0 {
		return nil, m.pathErr("open", name, iofs.ErrExist)
	}
	if !exists {
		if flag&oCreate == 0 {
			return nil, m.pathErr("open", name, iofs.ErrNotExist)
		}
		if parent := filepath.Dir(name); !m.dirs[parent] {
			return nil, m.pathErr("open", name, iofs.ErrNotExist)
		}
		f = &memFile{}
		m.files[name] = f
	}
	if flag&oTrunc != 0 {
		f.data = nil
	}
	h := &memHandle{m: m, name: name, f: f, gen: m.gen}
	if flag&oAppend == 0 {
		f.data = f.data[:0]
	}
	return h, nil
}

func (m *MemFS) CreateTemp(dir, pattern string) (File, error) {
	dir = clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] {
		return nil, m.pathErr("createtemp", dir, iofs.ErrNotExist)
	}
	m.tmpSeq++
	base := strings.Replace(pattern, "*", fmt.Sprintf("%d", m.tmpSeq), 1)
	if base == pattern {
		base = pattern + fmt.Sprintf("%d", m.tmpSeq)
	}
	name := filepath.Join(dir, base)
	f := &memFile{}
	m.files[name] = f
	return &memHandle{m: m, name: name, f: f, gen: m.gen}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = clean(oldpath), clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return m.pathErr("rename", oldpath, iofs.ErrNotExist)
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	// The durable namespace is untouched: the rename is persisted only by
	// a later SyncDir on the parent directory.
	return nil
}

func (m *MemFS) Remove(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return m.pathErr("remove", name, iofs.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) RemoveAll(path string) error {
	path = clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	for name := range m.files {
		if under(name, path) {
			delete(m.files, name)
		}
	}
	for name := range m.dur {
		if under(name, path) {
			delete(m.dur, name)
		}
	}
	for name := range m.dirs {
		if name != "." && under(name, path) {
			delete(m.dirs, name)
		}
	}
	return nil
}

func under(name, root string) bool {
	return name == root || strings.HasPrefix(name, root+string(filepath.Separator))
}

func (m *MemFS) MkdirAll(path string, perm iofs.FileMode) error {
	path = clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := path; p != "." && p != string(filepath.Separator); p = filepath.Dir(p) {
		m.dirs[p] = true
	}
	return nil
}

func (m *MemFS) ReadDir(name string) ([]iofs.DirEntry, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[name] {
		return nil, m.pathErr("readdir", name, iofs.ErrNotExist)
	}
	seen := map[string]iofs.DirEntry{}
	for p, f := range m.files {
		if filepath.Dir(p) == name {
			base := filepath.Base(p)
			seen[base] = memInfo{name: base, size: int64(len(f.data))}
		}
	}
	for d := range m.dirs {
		if d != "." && filepath.Dir(d) == name {
			base := filepath.Base(d)
			seen[base] = memInfo{name: base, dir: true}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]iofs.DirEntry, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out, nil
}

func (m *MemFS) Stat(name string) (iofs.FileInfo, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return memInfo{name: filepath.Base(name), size: int64(len(f.data))}, nil
	}
	if m.dirs[name] {
		return memInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, m.pathErr("stat", name, iofs.ErrNotExist)
}

func (m *MemFS) Truncate(name string, size int64) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return m.pathErr("truncate", name, iofs.ErrNotExist)
	}
	if size < 0 || size > int64(len(f.data)) {
		return m.pathErr("truncate", name, errors.New("size out of range"))
	}
	f.data = f.data[:size]
	if len(f.durable) > int(size) {
		// An explicit truncate is a metadata+data operation the caller
		// follows with appends; model it as durable at the new length.
		f.durable = f.durable[:size]
	}
	return nil
}

// SyncDir persists dir's entry table: files currently under dir become
// reachable after a crash, entries removed or renamed away are forgotten.
// Subject to the plan's fsync lie like any other sync.
func (m *MemFS) SyncDir(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[name] {
		return m.pathErr("syncdir", name, iofs.ErrNotExist)
	}
	if m.lieRoll(strHash(name)) {
		return nil
	}
	for p, f := range m.files {
		if filepath.Dir(p) == name {
			m.dur[p] = f
		}
	}
	for p := range m.dur {
		if filepath.Dir(p) == name {
			if _, ok := m.files[p]; !ok {
				delete(m.dur, p)
			}
		}
	}
	return nil
}

// lieRoll decides one fsync lie; callers hold m.mu.
func (m *MemFS) lieRoll(salt uint64) bool {
	if m.plan.FsyncLiePct <= 0 {
		return false
	}
	m.tmpSeq++ // reuse as a decision nonce so repeated lies differ
	if mix(uint64(m.plan.Seed), 11, salt, m.tmpSeq)%100 < uint64(m.plan.FsyncLiePct) {
		m.lies++
		return true
	}
	return false
}

// memHandle is one open descriptor. It appends sequentially; the durable
// layer never seeks.
type memHandle struct {
	m    *MemFS
	name string
	f    *memFile
	gen  int
}

func (h *memHandle) Name() string { return h.name }

func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.gen != h.m.gen {
		return 0, h.m.pathErr("write", h.name, ErrCrashed)
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.gen != h.m.gen {
		return h.m.pathErr("sync", h.name, ErrCrashed)
	}
	if h.m.lieRoll(strHash(h.name)) {
		return nil
	}
	h.f.durable = append([]byte(nil), h.f.data...)
	return nil
}

func (h *memHandle) Close() error { return nil }

// memInfo satisfies both fs.FileInfo and fs.DirEntry for MemFS listings.
type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() iofs.FileMode {
	if i.dir {
		return iofs.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time           { return time.Time{} }
func (i memInfo) IsDir() bool                  { return i.dir }
func (i memInfo) Sys() any                     { return nil }
func (i memInfo) Type() iofs.FileMode          { return i.Mode().Type() }
func (i memInfo) Info() (iofs.FileInfo, error) { return i, nil }
