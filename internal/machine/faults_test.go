package machine

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"lightwsp/internal/faults"
	"lightwsp/internal/mem"
	"lightwsp/internal/metrics"
	"lightwsp/internal/probe"
)

// TestNilInjectorByteIdentical is the regression for the fault machinery's
// zero-cost contract: a system that saw SetFaultInjector(nil) must produce a
// byte-identical PM image, the same cycle count and the same statistics as a
// system that never heard of fault injection.
func TestNilInjectorByteIdentical(t *testing.T) {
	prog := compiled(t, storeProg(40, 0x1000))
	plain, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Run(2_000_000) {
		t.Fatal("plain run did not complete")
	}
	nilInj, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	nilInj.SetFaultInjector(nil)
	nilInj.SetFaultInjector(faults.New(faults.Plan{})) // disabled plan is also nil
	if !nilInj.Run(2_000_000) {
		t.Fatal("nil-injector run did not complete")
	}
	if plain.Stats.Cycles != nilInj.Stats.Cycles {
		t.Fatalf("cycle counts diverge: %d vs %d", plain.Stats.Cycles, nilInj.Stats.Cycles)
	}
	if !plain.PM().Equal(nilInj.PM()) {
		t.Fatal("final PM images diverge with a nil injector")
	}
	if !reflect.DeepEqual(plain.Stats, nilInj.Stats) {
		t.Fatalf("stats diverge:\n plain: %+v\n nil:   %+v", plain.Stats, nilInj.Stats)
	}
}

// TestFaultedRunConverges runs the full drop/dup/delay/reorder gauntlet and
// verifies reliable delivery: the run still completes, the final PM image is
// exactly the fault-free one, and the retry machinery visibly did the work.
func TestFaultedRunConverges(t *testing.T) {
	prog := compiled(t, storeProg(60, 0x1000))
	clean, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Run(2_000_000) {
		t.Fatal("clean run did not complete")
	}

	cfg := smallCfg()
	cfg.RetryTimeout = 40 // trip retries well inside the test's horizon
	sys, err := NewSystem(prog, cfg, lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFaultInjector(faults.New(faults.Plan{
		Seed: 3, DropPct: 25, DupPct: 10, DelayPct: 20, MaxDelay: 16, ReorderPct: 10,
	}))
	if !sys.Run(4_000_000) {
		t.Fatal("faulted run did not complete: reliable delivery lost a region")
	}
	if !sys.PM().Equal(clean.PM()) {
		t.Fatal("faulted run's final PM diverges from the fault-free image")
	}
	if sys.Stats.FaultDrops == 0 || sys.Stats.FaultDups == 0 || sys.Stats.FaultDelays == 0 {
		t.Fatalf("injector saw no action: drops=%d dups=%d delays=%d",
			sys.Stats.FaultDrops, sys.Stats.FaultDups, sys.Stats.FaultDelays)
	}
	if sys.Stats.WPQRetries == 0 {
		t.Fatal("no boundary replays under 25%% ACK loss — retries cannot be working")
	}
	if sys.Stats.WPQDupSuppressed == 0 {
		t.Fatal("no duplicate ACKs suppressed under 10%% duplication")
	}
}

// TestFaultedRunDeterministic replays the same seed twice and requires
// bit-identical outcomes — the property every crashfuzz repro rests on.
func TestFaultedRunDeterministic(t *testing.T) {
	prog := compiled(t, storeProg(30, 0x1000))
	run := func() (*System, error) {
		sys, err := NewSystem(prog, smallCfg(), lightScheme())
		if err != nil {
			return nil, err
		}
		sys.SetFaultInjector(faults.New(faults.Plan{
			Seed: 99, DropPct: 15, DupPct: 15, DelayPct: 25, MaxDelay: 12,
		}))
		sys.Run(4_000_000)
		return sys, nil
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("same seed, different stats:\n a: %+v\n b: %+v", a.Stats, b.Stats)
	}
	if !a.PM().Equal(b.PM()) {
		t.Fatal("same seed, different PM images")
	}
}

// TestStuckMCDegradesAndCompletes wedges controller 1 for longer than the
// degradation deadline and verifies graceful degradation end to end: the
// machine declares it degraded, falls back to undo-logged eager persistence,
// still completes with the correct PM image, and the degradation is visible
// in stats, metrics and the exported timeline.
func TestStuckMCDegradesAndCompletes(t *testing.T) {
	prog := compiled(t, storeProg(60, 0x1000))
	clean, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Run(2_000_000) {
		t.Fatal("clean run did not complete")
	}

	cfg := smallCfg()
	cfg.DegradeDeadline = 150
	cfg.RetryTimeout = 40
	sys, err := NewSystem(prog, cfg, lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	m := metrics.New()
	tl := probe.NewTimeline(0)
	sys.SetProbeSink(probe.Multi(m, tl))
	sys.SetFaultInjector(faults.New(faults.Plan{
		Seed: 5, StuckMC: 1, StuckFrom: 100, StuckFor: 1500,
	}))
	if !sys.Run(4_000_000) {
		t.Fatal("stuck-MC run did not complete: degradation failed to unwedge it")
	}
	if !sys.Degraded(1) {
		t.Fatal("controller 1 not marked degraded after exceeding the deadline")
	}
	if sys.Stats.MCDegradations == 0 {
		t.Fatal("Stats.MCDegradations = 0")
	}
	// The data must match the fault-free image exactly; the whole-image
	// comparison is out because committed undo records leave stale scratch
	// words behind the (zeroed) log header.
	for i := 0; i < 60; i++ {
		addr := 0x1000 + uint64(8*i)
		if got, want := sys.PM().Read(addr), clean.PM().Read(addr); got != want {
			t.Fatalf("degraded run diverges at %#x: %d != %d", addr, got, want)
		}
	}
	if got := sys.PM().Read(mem.UndoLogAddr(1, 0)); got != 0 {
		t.Fatalf("undo log header = %d after a completed run, want 0", got)
	}
	if m.Degradations == 0 {
		t.Fatalf("metrics missed the degradation: %+v", m.Snapshot())
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mc-degraded") {
		t.Fatal("timeline export missing the mc-degraded instant")
	}
}
