package machine

import (
	"testing"

	"lightwsp/internal/isa"
	"lightwsp/internal/mem"
)

// storeProg writes n words at base and halts (uninstrumented).
func storeProg(n int, base uint64) *isa.Program {
	b := isa.NewBuilder("stores")
	b.Func("main")
	b.MovImm(1, int64(base))
	for i := 0; i < n; i++ {
		b.MovImm(2, int64(100+i))
		b.Store(1, int64(8*i), 2)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func plainScheme() Scheme {
	return Scheme{Name: "test-baseline", UseDRAMCache: true}
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.Threads = 1
	return cfg
}

func TestBaselineExecutesStores(t *testing.T) {
	sys, err := NewSystem(storeProg(10, 0x1000), smallCfg(), plainScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("run did not complete")
	}
	for i := 0; i < 10; i++ {
		if got := sys.Arch().Read(0x1000 + uint64(8*i)); got != uint64(100+i) {
			t.Fatalf("arch[%d] = %d", i, got)
		}
	}
	// No persistence scheme: PM stays empty.
	if sys.PM().Len() != 0 {
		t.Fatalf("baseline wrote %d words to PM", sys.PM().Len())
	}
	if sys.Stats.Instructions == 0 || sys.Stats.Stores != 10 {
		t.Fatalf("stats: insts=%d stores=%d", sys.Stats.Instructions, sys.Stats.Stores)
	}
}

func TestALUAndBranchSemantics(t *testing.T) {
	b := isa.NewBuilder("alu")
	b.Func("main")
	b.MovImm(1, 6)
	b.MovImm(2, 7)
	b.Mul(3, 1, 2)    // 42
	b.AddImm(3, 3, 8) // 50
	b.Sub(4, 3, 1)    // 44
	b.And(5, 3, 2)    // 50&7 = 2
	b.Or(6, 5, 2)     // 7
	b.Xor(7, 6, 2)    // 0
	b.Shl(8, 1, 5)    // 6<<2 = 24
	b.Shr(9, 8, 5)    // 24>>2 = 6
	b.CmpLT(10, 1, 2) // 1
	b.CmpEQ(11, 9, 1) // 1
	b.MovImm(12, 0x2000)
	for i, r := range []isa.Reg{3, 4, 5, 6, 7, 8, 9, 10, 11} {
		b.Store(12, int64(8*i), r)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(p, smallCfg(), plainScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("run did not complete")
	}
	want := []uint64{50, 44, 2, 7, 0, 24, 6, 1, 1}
	for i, w := range want {
		if got := sys.Arch().Read(0x2000 + uint64(8*i)); got != w {
			t.Errorf("slot %d = %d, want %d", i, got, w)
		}
	}
}

func TestCallRetSemantics(t *testing.T) {
	b := isa.NewBuilder("call")
	b.Func("main")
	b.MovImm(isa.ArgReg(0), 5)
	b.Call(1, 1)
	b.MovImm(10, 0x3000)
	b.Store(10, 0, isa.RetReg) // r0 = 5*5+1 = 26
	b.Halt()
	b.Func("square-plus-one")
	b.Mul(2, isa.ArgReg(0), isa.ArgReg(0))
	b.AddImm(2, 2, 1)
	b.Ret(2)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(p, smallCfg(), plainScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("run did not complete")
	}
	if got := sys.Arch().Read(0x3000); got != 26 {
		t.Fatalf("call result = %d, want 26", got)
	}
}

func TestRecursionUsesInMemoryStack(t *testing.T) {
	// fact(n): recursive factorial via the persisted call stack.
	b := isa.NewBuilder("fact")
	b.Func("main")
	b.MovImm(isa.ArgReg(0), 6)
	b.Call(1, 1)
	b.MovImm(10, 0x3000)
	b.Store(10, 0, isa.RetReg)
	b.Halt()
	b.Func("fact")
	// if n < 2 return 1
	b.MovImm(3, 2)
	b.CmpLT(4, isa.ArgReg(0), 3)
	b.Branch(4, 1, 2)
	b.NewBlock() // base case
	b.MovImm(0, 1)
	b.Ret(0)
	b.NewBlock() // recursive case: save n, call fact(n-1), multiply
	b.Mov(5, isa.ArgReg(0))
	b.MovImm(6, 0x4000)
	b.Store(6, 0, 5) // spill n (registers are caller-visible)
	b.AddImm(isa.ArgReg(0), isa.ArgReg(0), -1)
	b.Call(1, 1)
	b.MovImm(6, 0x4000)
	b.Load(5, 6, 0)
	b.Mul(0, 0, 5)
	b.Ret(0)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The spill slot is shared across recursion levels, so this computes
	// n * (n-1) * ... with the reloaded value always the innermost spill.
	// Use an iterative check instead: simply verify the run terminates
	// and returns a nonzero product of the recursion.
	sys, err := NewSystem(p, smallCfg(), plainScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(10_000_000) {
		t.Fatal("recursion did not complete")
	}
	if got := sys.Arch().Read(0x3000); got == 0 {
		t.Fatal("recursive call chain returned 0")
	}
}

func TestLoadLatencyHierarchy(t *testing.T) {
	cfg := smallCfg()
	sys, err := NewSystem(storeProg(1, 0x1000), cfg, plainScheme())
	if err != nil {
		t.Fatal(err)
	}
	c := sys.cores[0]
	addr := uint64(0x9000)
	// Cold: L1 miss, L2 miss, DRAM-cache miss -> PM.
	lat1 := sys.loadLatency(c, addr)
	if lat1 < cfg.PMReadLat {
		t.Fatalf("cold load latency %d < PM latency", lat1)
	}
	// Warm L1.
	lat2 := sys.loadLatency(c, addr)
	if lat2 != cfg.L1Lat {
		t.Fatalf("warm load latency = %d, want %d", lat2, cfg.L1Lat)
	}
}

func TestPSPIdealSkipsDRAMCache(t *testing.T) {
	sch := Scheme{Name: "psp", UseDRAMCache: false}
	sys, err := NewSystem(storeProg(1, 0x1000), smallCfg(), sch)
	if err != nil {
		t.Fatal(err)
	}
	c := sys.cores[0]
	lat := sys.loadLatency(c, 0x9000)
	sys.finalizeStats()
	if sys.Stats.DRAMHits+sys.Stats.DRAMMisses != 0 {
		t.Fatal("PSP touched the DRAM cache")
	}
	withCache, _ := NewSystem(storeProg(1, 0x1000), smallCfg(), plainScheme())
	// Warm the DRAM cache, then compare a hit against PSP's PM access.
	withCache.loadLatency(withCache.cores[0], 0x9000)
	withCache.cores[0].l1.InvalidateAll()
	withCache.l2.InvalidateAll()
	lat2 := withCache.loadLatency(withCache.cores[0], 0x9000)
	if lat2 >= lat {
		t.Fatalf("DRAM-cache hit (%d) not faster than PSP PM access (%d)", lat2, lat)
	}
}

func TestThreadValidation(t *testing.T) {
	cfg := smallCfg()
	cfg.Threads = 99
	if _, err := NewSystem(storeProg(1, 0), cfg, plainScheme()); err == nil {
		t.Fatal("accepted more threads than cores")
	}
}

func TestMultiThreadArgRegisters(t *testing.T) {
	// Each thread stores its ID at base+8*tid.
	b := isa.NewBuilder("tid")
	b.Func("main")
	b.MovImm(3, 0x5000)
	b.MovImm(4, 8)
	b.Mul(5, isa.ArgReg(0), 4)
	b.Add(3, 3, 5)
	b.AddImm(6, isa.ArgReg(0), 1000)
	b.Store(3, 0, 6)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Threads = 4
	sys, err := NewSystem(p, cfg, plainScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("run did not complete")
	}
	for tid := 0; tid < 4; tid++ {
		if got := sys.Arch().Read(0x5000 + uint64(8*tid)); got != uint64(1000+tid) {
			t.Fatalf("thread %d wrote %d", tid, got)
		}
	}
}

func TestAtomicAddAcrossThreads(t *testing.T) {
	// All threads atomically add their (id+1) to a counter.
	b := isa.NewBuilder("amo")
	b.Func("main")
	b.MovImm(3, 0x6000)
	b.AddImm(4, isa.ArgReg(0), 1)
	b.AtomicAdd(5, 3, 0, 4)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Threads = 4
	sys, err := NewSystem(p, cfg, plainScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("run did not complete")
	}
	if got := sys.Arch().Read(0x6000); got != 1+2+3+4 {
		t.Fatalf("atomic sum = %d, want 10", got)
	}
}

func TestLockMutualExclusionFunctional(t *testing.T) {
	// Threads increment a shared counter under a lock (non-atomic
	// load/add/store), which is only correct if the lock serializes.
	b := isa.NewBuilder("lock")
	b.Func("main")
	b.MovImm(3, 0x7000) // lock
	b.MovImm(4, 0x7008) // counter
	b.MovImm(7, 0)      // i
	b.MovImm(8, 10)     // iterations
	loop := b.NewBlock()
	b.LockAcquire(3, 0)
	b.Load(5, 4, 0)
	b.AddImm(5, 5, 1)
	b.Store(4, 0, 5)
	b.LockRelease(3, 0)
	b.AddImm(7, 7, 1)
	b.CmpLT(9, 7, 8)
	b.Branch(9, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Threads = 4
	sys, err := NewSystem(p, cfg, plainScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(10_000_000) {
		t.Fatal("run did not complete")
	}
	if got := sys.Arch().Read(0x7008); got != 40 {
		t.Fatalf("locked counter = %d, want 40", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	sys, err := NewSystem(storeProg(20, 0x1000), smallCfg(), plainScheme())
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000_000)
	if sys.Stats.Cycles == 0 || sys.Stats.L1Hits+sys.Stats.L1Misses == 0 {
		t.Fatalf("stats empty: %+v", sys.Stats)
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	b := isa.NewBuilder("bad")
	b.Func("main")
	b.MovImm(1, 0x1001)
	b.MovImm(2, 1)
	b.Store(1, 0, 2)
	b.Halt()
	p, _ := b.Build()
	sys, err := NewSystem(p, smallCfg(), plainScheme())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned store did not panic")
		}
	}()
	sys.Run(1000)
}

func TestSchemeValidation(t *testing.T) {
	cfg := smallCfg()
	cfg.Threads = 0
	if _, err := NewSystem(storeProg(1, 0), cfg, plainScheme()); err == nil {
		t.Fatal("accepted zero threads")
	}
}

func TestMCInterleaving(t *testing.T) {
	sys, _ := NewSystem(storeProg(1, 0), smallCfg(), plainScheme())
	if sys.mcOf(0) == sys.mcOf(mem.LineSize) {
		t.Fatal("adjacent lines map to the same controller")
	}
	if sys.mcOf(0) != sys.mcOf(uint64(2*mem.LineSize)) {
		t.Fatal("interleaving is not modulo the controller count")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	// The simulator must be bit-deterministic: identical configurations
	// produce identical cycle counts, statistics and persisted images.
	// (This is what keeps Go's GC and scheduler out of the results.)
	prog := compiled(t, ioProg(6))
	run := func() *System {
		sys, err := NewSystem(prog, smallCfg(), lightScheme())
		if err != nil {
			t.Fatal(err)
		}
		if !sys.Run(10_000_000) {
			t.Fatal("run did not complete")
		}
		return sys
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if !a.PM().Equal(b.PM()) {
		t.Fatal("persisted images diverge")
	}
	if len(a.Output) != len(b.Output) {
		t.Fatal("outputs diverge")
	}
}

func TestBuilderSwitchToOutOfRange(t *testing.T) {
	b := isa.NewBuilder("x")
	b.Func("f")
	b.SwitchTo(99)
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range SwitchTo accepted")
	}
}

func TestStatsSummaryMentionsKeyFields(t *testing.T) {
	s := &Stats{Cycles: 100, Instructions: 250, Stores: 10, RegionsClosed: 4}
	out := s.Summary()
	for _, want := range []string{"cycles=100", "ipc 2.50", "regions=4"} {
		if !containsStr(out, want) {
			t.Fatalf("summary missing %q: %s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestFenceDelimitsRegions(t *testing.T) {
	b := isa.NewBuilder("fence")
	b.Func("main")
	b.MovImm(1, 0x2000)
	b.MovImm(2, 5)
	b.Store(1, 0, 2)
	b.Fence()
	b.Store(1, 8, 2)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(compiled(t, p), smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("run did not complete")
	}
	// Entry boundary + fence implicit + exit: at least 3 regions.
	if sys.Stats.RegionsClosed < 3 {
		t.Fatalf("regions = %d, want >= 3", sys.Stats.RegionsClosed)
	}
	if sys.PM().Read(0x2000) != 5 || sys.PM().Read(0x2008) != 5 {
		t.Fatal("stores across the fence not persisted")
	}
}

func TestNewSystemRejectsInvalidProgram(t *testing.T) {
	bad := &isa.Program{Funcs: []*isa.Function{{Name: "f", Blocks: []*isa.Block{{}}}}}
	if _, err := NewSystem(bad, smallCfg(), plainScheme()); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	// Table I of the paper, converted to cycles at 2 GHz.
	cfg := DefaultConfig()
	checks := []struct {
		name string
		got  interface{}
		want interface{}
	}{
		{"cores", cfg.Cores, 8},
		{"issue width", cfg.IssueWidth, 4},
		{"SQ entries", cfg.SBEntries, 56},
		{"L1D size", cfg.L1Size, 64 << 10},
		{"L1D ways", cfg.L1Ways, 8},
		{"L1D latency", cfg.L1Lat, uint64(4)},
		{"L2 size", cfg.L2Size, 16 << 20},
		{"L2 ways", cfg.L2Ways, 16},
		{"L2 latency", cfg.L2Lat, uint64(44)},
		{"DRAM cache", cfg.DRAMCacheSize, uint64(4) << 30},
		{"PM read (175ns)", cfg.PMReadLat, uint64(350)},
		{"PM write (90ns)", cfg.PMWriteLat, uint64(180)},
		{"MCs", cfg.NumMCs, 2},
		{"WPQ entries", cfg.WPQEntries, 64},
		{"FEB entries", cfg.FEBEntries, 64},
		{"persist path 4GB/s", cfg.PersistBytesPerCredit, 2},
		{"persist path 20ns worst", cfg.PersistLatFar, uint64(40)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}
