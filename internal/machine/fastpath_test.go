package machine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"lightwsp/internal/faults"
	"lightwsp/internal/probe"
	"lightwsp/internal/wsperr"
)

// eventHash is an order-sensitive FNV-style digest over a probe event
// stream. Two runs with equal hashes and counts emitted the same events, in
// the same order, with the same cycles — the strongest cheap witness that
// the fast path preserved probe fidelity.
type eventHash struct {
	n, h uint64
}

func newEventHash() *eventHash { return &eventHash{h: 14695981039346656037} }

func (s *eventHash) Emit(e probe.Event) {
	s.n++
	for _, v := range [...]uint64{uint64(e.Kind), e.Cycle, uint64(int64(e.Core)),
		uint64(int64(e.MC)), e.Region, e.Addr, e.Arg} {
		s.h ^= v
		s.h *= 1099511628211
	}
}

// steppedPair runs the same program twice — once on the naive per-cycle
// reference stepper, once on the event/epoch fast path — with an event hash
// attached to each, and returns both finished systems and hashes.
func steppedPair(t *testing.T, mk func() *System, budget uint64) (naive, fast *System, nh, fh *eventHash) {
	t.Helper()
	naive, fast = mk(), mk()
	naive.SetNaiveStepper(true)
	nh, fh = newEventHash(), newEventHash()
	naive.SetProbeSink(nh)
	fast.SetProbeSink(fh)
	if !naive.Run(budget) {
		t.Fatal("naive run did not complete")
	}
	if !fast.Run(budget) {
		t.Fatal("fast run did not complete")
	}
	return naive, fast, nh, fh
}

// assertIdentical is the byte-identical oracle: every observable of the two
// runs must match exactly.
func assertIdentical(t *testing.T, naive, fast *System, nh, fh *eventHash) {
	t.Helper()
	if naive.Stats.Cycles != fast.Stats.Cycles {
		t.Errorf("cycle counts diverge: naive=%d fast=%d", naive.Stats.Cycles, fast.Stats.Cycles)
	}
	if !reflect.DeepEqual(naive.Stats, fast.Stats) {
		t.Errorf("stats diverge:\n naive: %+v\n fast:  %+v", naive.Stats, fast.Stats)
	}
	if !naive.PM().Equal(fast.PM()) {
		t.Error("final PM images diverge")
	}
	if !naive.Arch().Equal(fast.Arch()) {
		t.Error("final architectural memories diverge")
	}
	if !reflect.DeepEqual(naive.Output, fast.Output) {
		t.Errorf("outputs diverge: naive=%v fast=%v", naive.Output, fast.Output)
	}
	if nh.n != fh.n || nh.h != fh.h {
		t.Errorf("probe streams diverge: naive %d events (hash %#x), fast %d events (hash %#x)",
			nh.n, nh.h, fh.n, fh.h)
	}
}

func TestFastMatchesNaiveSmoke(t *testing.T) {
	for _, tc := range []struct {
		name      string
		wantSkips bool // contended runs may legitimately never jump
		mk        func() *System
	}{
		{"baseline", false, func() *System {
			sys, err := NewSystem(storeProg(40, 0x1000), smallCfg(), plainScheme())
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}},
		{"lightwsp", true, func() *System {
			prog := compiled(t, storeProg(60, 0x1000))
			sys, err := NewSystem(prog, smallCfg(), lightScheme())
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			naive, fast, nh, fh := steppedPair(t, tc.mk, 2_000_000)
			assertIdentical(t, naive, fast, nh, fh)
			if sk, j := fast.FastForwardStats(); tc.wantSkips && (sk == 0 || j == 0) {
				t.Errorf("fast path never fast-forwarded: skipped=%d jumps=%d", sk, j)
			}
			if sk, j := naive.FastForwardStats(); sk != 0 || j != 0 {
				t.Errorf("naive stepper fast-forwarded: skipped=%d jumps=%d", sk, j)
			}
		})
	}
}

// TestDoneMatchesScanEveryCycle cross-checks the O(1) completion counters
// against the reference component scan at every single cycle of a run —
// including a fault-injected one, where parked messages and stuck windows
// move entries along the unusual paths.
func TestDoneMatchesScanEveryCycle(t *testing.T) {
	check := func(t *testing.T, sys *System) {
		t.Helper()
		for c := uint64(0); c < 2_000_000 && !sys.scanDone(); c++ {
			if sys.Done() != sys.scanDone() {
				t.Fatalf("cycle %d: Done()=%v but scanDone()=%v", sys.Cycle(), sys.Done(), sys.scanDone())
			}
			sys.Tick()
		}
		if !sys.Done() {
			t.Fatalf("run did not complete, or Done()=false at scanDone: %s", sys.DebugState())
		}
	}
	t.Run("clean", func(t *testing.T) {
		sys, err := NewSystem(compiled(t, storeProg(50, 0x1000)), smallCfg(), lightScheme())
		if err != nil {
			t.Fatal(err)
		}
		check(t, sys)
	})
	t.Run("faulted", func(t *testing.T) {
		cfg := smallCfg()
		cfg.RetryTimeout = 40
		cfg.DegradeDeadline = 150
		sys, err := NewSystem(compiled(t, storeProg(50, 0x1000)), cfg, lightScheme())
		if err != nil {
			t.Fatal(err)
		}
		sys.SetFaultInjector(faults.New(faults.Plan{
			Seed: 7, DropPct: 20, DupPct: 10, DelayPct: 15, MaxDelay: 12,
			StuckMC: 1, StuckFrom: 100, StuckFor: 400,
		}))
		check(t, sys)
	})
}

// TestRunUntilLandsExactly pins the crashfuzz contract: a fast-forwarding
// machine must stop at exactly the requested cycle, never past it, so
// PowerFail cuts land on the same cycle the naive stepper would cut.
func TestRunUntilLandsExactly(t *testing.T) {
	prog := compiled(t, storeProg(60, 0x1000))
	ref, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	ref.SetNaiveStepper(true)
	if !ref.Run(2_000_000) {
		t.Fatal("reference run did not complete")
	}
	total := ref.Stats.Cycles
	step := total / 9
	if step == 0 {
		step = 1
	}
	for cut := step; cut < total; cut += step {
		sys, err := NewSystem(prog, smallCfg(), lightScheme())
		if err != nil {
			t.Fatal(err)
		}
		if sys.RunUntil(cut) {
			t.Fatalf("done before reference completion at cut %d", cut)
		}
		if sys.Cycle() != cut {
			t.Fatalf("RunUntil(%d) stopped at cycle %d", cut, sys.Cycle())
		}
	}
	// Past completion the machine finishes at the same cycle as naive.
	sys, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.RunUntil(total + 10_000) {
		t.Fatal("run past completion cycle did not finish")
	}
	if sys.Stats.Cycles != total {
		t.Fatalf("fast completion at cycle %d, naive at %d", sys.Stats.Cycles, total)
	}
}

// TestBudgetErrorIdentical verifies that blowing the cycle budget behaves
// identically under both steppers: same error class, same final cycle.
func TestBudgetErrorIdentical(t *testing.T) {
	prog := compiled(t, storeProg(60, 0x1000))
	ref, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	ref.SetNaiveStepper(true)
	if !ref.Run(2_000_000) {
		t.Fatal("reference run did not complete")
	}
	budget := ref.Stats.Cycles / 2
	run := func(naiveStep bool) *System {
		sys, err := NewSystem(prog, smallCfg(), lightScheme())
		if err != nil {
			t.Fatal(err)
		}
		sys.SetNaiveStepper(naiveStep)
		if sys.Run(budget) {
			t.Fatalf("run completed inside a %d-cycle budget", budget)
		}
		return sys
	}
	naive, fast := run(true), run(false)
	if naive.Stats.Cycles != budget || fast.Stats.Cycles != budget {
		t.Fatalf("budget landings: naive=%d fast=%d, want %d", naive.Stats.Cycles, fast.Stats.Cycles, budget)
	}
	if !reflect.DeepEqual(naive.Stats, fast.Stats) {
		t.Fatalf("stats diverge at the budget:\n naive: %+v\n fast:  %+v", naive.Stats, fast.Stats)
	}
}

// TestFastForwardActuallySkips pins the perf payoff: a latency-dominated
// run must spend a nonzero share of its cycles fast-forwarded, and the
// skip accounting must stay inside the run's cycle count.
func TestFastForwardActuallySkips(t *testing.T) {
	prog := compiled(t, storeProg(80, 0x1000))
	sys, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(2_000_000) {
		t.Fatal("run did not complete")
	}
	skipped, jumps := sys.FastForwardStats()
	if skipped == 0 || jumps == 0 {
		t.Fatalf("no fast-forwarding on a latency-dominated run: skipped=%d jumps=%d", skipped, jumps)
	}
	if skipped >= sys.Stats.Cycles {
		t.Fatalf("skipped %d of %d cycles — accounting is broken", skipped, sys.Stats.Cycles)
	}
}

// TestBrokenFastForwardIsCaught gives the equivalence oracle its teeth: a
// deliberately broken scheduler — every next-event estimate one cycle late,
// violating the never-late half of the contract — must produce a divergence
// the byte-identical comparison detects. If this test fails, the oracle
// cannot be trusted to catch real scheduler bugs.
func TestBrokenFastForwardIsCaught(t *testing.T) {
	prog := compiled(t, storeProg(60, 0x1000))
	naive, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	naive.SetNaiveStepper(true)
	nh := newEventHash()
	naive.SetProbeSink(nh)
	if !naive.Run(2_000_000) {
		t.Fatal("naive run did not complete")
	}

	broken, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	broken.ffSkew = 1 // sabotage: overshoot every event by one cycle
	bh := newEventHash()
	broken.SetProbeSink(bh)
	broken.Run(4_000_000) // completion is not guaranteed with a broken scheduler

	if _, jumps := broken.FastForwardStats(); jumps == 0 {
		t.Fatal("sabotaged scheduler never jumped — the sabotage did not engage")
	}
	diverged := naive.Stats.Cycles != broken.Stats.Cycles ||
		!reflect.DeepEqual(naive.Stats, broken.Stats) ||
		!naive.PM().Equal(broken.PM()) ||
		nh.n != bh.n || nh.h != bh.h
	if !diverged {
		t.Fatal("a deliberately late scheduler produced byte-identical results — the oracle has no teeth")
	}
}

// TestCanceledContextStopsRunLoop keeps the single run loop honoring
// context cancellation before the first tick.
func TestCanceledContextStopsRunLoop(t *testing.T) {
	sys, err := NewSystem(compiled(t, storeProg(10, 0x1000)), smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sys.RunContext(ctx, 1_000_000); !errors.Is(err, wsperr.ErrCanceled) {
		t.Fatalf("RunContext on a dead context: %v, want ErrCanceled", err)
	}
	if sys.Cycle() != 0 {
		t.Fatalf("machine advanced %d cycles under a dead context", sys.Cycle())
	}
}
