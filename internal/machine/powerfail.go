package machine

import (
	"lightwsp/internal/noc"
	"lightwsp/internal/probe"
)

// FailureReport summarises a power failure's drain protocol.
type FailureReport struct {
	// Cycle is when the power was cut.
	Cycle uint64
	// Discarded counts WPQ entries of unpersisted regions dropped.
	Discarded int
	// RegionCounter is the global region counter at failure time; the
	// recovery runtime seeds fresh region IDs above it.
	RegionCounter uint64
}

// PowerFail cuts the power at the current cycle and executes the §IV-F
// protocol: cores, caches, store buffers and persist paths are volatile and
// lose everything; in-flight MC↔MC ACKs are delivered on battery; every
// region whose boundary provably reached all controllers flushes from the
// WPQ to PM; the remaining entries are discarded. Afterwards the PM image is
// exactly the crash state the recovery runtime starts from. The machine is
// dead after this call — build a recovered system to continue.
func (s *System) PowerFail() FailureReport {
	rep := FailureReport{Cycle: s.cycle, RegionCounter: s.regionCounter}
	if s.probe != nil {
		s.probe.Emit(probe.Event{Kind: probe.PowerFailCut, Cycle: s.cycle,
			Core: -1, MC: -1})
	}

	// (0) Volatile state disappears with the cores.
	for _, c := range s.cores {
		c.sb = nil
		c.halted = true
		if c.path != nil {
			c.path.DropAll()
		}
	}
	s.runningCores, s.sbPending, s.pathPending = 0, 0, 0
	// Boundary broadcasts still on the core side are lost; MC↔MC ACKs
	// survive on battery and are guaranteed to arrive (§IV-F step 1).
	s.net.DropCoreTraffic()
	if s.inj == nil {
		for _, m := range s.net.DrainAll() {
			s.mcs[m.To].q.OnMessage(s.cycle, m)
		}
	} else {
		// Fault-injected runs: replies (replay re-ACKs) must not enter the
		// dead NoC, so every battery delivery routes through a synchronous
		// recursive exchange. Messages parked at a stuck controller are
		// MC↔MC and battery-backed too — they arrive now. Then one
		// Reannounce round per controller re-solicits the ACKs the faulty
		// fabric dropped, restoring the fault-free drain invariant that
		// every controller's view of which boundaries are global agrees.
		var sync func(m noc.Message)
		sync = func(m noc.Message) { s.mcs[m.To].q.OnMessageSync(s.cycle, m, sync) }
		for _, m := range s.net.DrainAll() {
			sync(m)
		}
		for _, m := range s.parked {
			if m.Kind != noc.MsgBoundary {
				sync(m)
			}
		}
		s.parked = nil
		for _, ctrl := range s.mcs {
			ctrl.q.Reannounce(sync)
		}
	}

	// (2)–(5) Flush persisted regions, exchanging ACKs synchronously on
	// battery, until no controller makes progress.
	exchange := func(m noc.Message) { s.mcs[m.To].q.OnMessage(s.cycle, m) }
	for {
		progress := false
		for _, m := range s.mcs {
			progress = m.q.DrainStep(exchange) || progress
		}
		if !progress {
			break
		}
	}

	// (6) Discard the stores of unpersisted regions.
	for _, m := range s.mcs {
		rep.Discarded += m.q.Discard()
	}
	s.wpqPending = 0
	if s.probe != nil {
		s.probe.Emit(probe.Event{Kind: probe.PowerFailDrained, Cycle: s.cycle,
			Core: -1, MC: -1, Arg: uint64(rep.Discarded)})
	}
	s.finalizeStats()
	s.Stats.Cycles = s.cycle
	return rep
}
