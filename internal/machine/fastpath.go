package machine

import (
	"context"
	"fmt"

	"lightwsp/internal/wsperr"
)

// This file is the event/epoch hybrid stepper. The per-cycle loop in Tick
// remains the reference semantics: every component steps every cycle, in a
// fixed order. The fast path layers a scheduler on top of it: each
// component reports the next cycle at which it would do observable work
// (its "next interesting cycle"), the scheduler takes the minimum over the
// whole machine, and the span in between — provably idle for every
// component at once — is fast-forwarded in one jump. Contended windows,
// where some component acts every cycle, degenerate to plain Tick calls.
//
// The correctness contract, per component NextEvent hook:
//
//   - It may be EARLY: an extra tick lands on a cycle where the component
//     has nothing to do, which is exactly what the naive stepper does, so
//     it is always safe.
//   - It may NEVER be late: every cycle strictly inside (now, NextEvent)
//     must be an idle tick — no state change, no statistic, no probe
//     event — except for the cumulative idle effects (core stall counters,
//     persist-path bandwidth credit) that skipTo replays in bulk via the
//     components' SkipIdle hooks.
//
// Because the scheduler takes the global minimum, no component acts inside
// a skipped span, so shared state is frozen and each component's idle
// effects depend only on its own frozen state. Ticks still land exactly on
// every interesting cycle, which is what keeps probe event streams, stats,
// and crashfuzz PowerFail cut cycles (RunUntil clamps the jump target to
// its limit) byte-identical to the naive stepper.

// noEvent means "no scheduled activity": the component will only act in
// response to another component's event. All component NoEvent constants
// share this value.
const noEvent = ^uint64(0)

// SetNaiveStepper switches the machine to the reference per-cycle stepper
// (true) or the event/epoch fast path (false, the default). The two are
// byte-identical in every observable — final PM image, stats, probe event
// stream; the naive stepper exists as the equivalence oracle and the
// benchmark baseline.
func (s *System) SetNaiveStepper(v bool) { s.naiveStep = v }

// FastForwardStats reports how many cycles the event/epoch scheduler
// skipped and in how many jumps. Deliberately not part of Stats: the fast
// path's observables must be identical to the naive stepper's, and Stats
// is compared field-for-field by the equivalence harness.
func (s *System) FastForwardStats() (skipped, jumps uint64) {
	return s.ffSkipped, s.ffJumps
}

// runLoop advances the machine until Done or the cycle limit, polling ctx
// every ctxCheckBatch cycles. It is the single run loop behind RunContext
// and RunUntilContext; the fast path lives only here. The limit is a hard
// landing point: a jump never overshoots it, so budget checks and
// crashfuzz power-cut cycles land exactly where the naive stepper stops.
func (s *System) runLoop(ctx context.Context, limit uint64) (bool, error) {
	poll := s.cycle // poll ctx before the first tick, so an expired deadline never runs
	for !s.Done() {
		if s.cycle >= limit {
			return false, nil
		}
		if s.cycle >= poll {
			if err := ctx.Err(); err != nil {
				return false, fmt.Errorf("machine: %w at cycle %d: %v", wsperr.ErrCanceled, s.cycle, err)
			}
			poll = s.cycle + ctxCheckBatch
		}
		if !s.naiveStep {
			if next := s.nextInteresting(s.cycle); next > s.cycle+1 {
				if next > limit {
					// Either a wedged machine (no events at all) or events
					// beyond the budget/cut cycle: land exactly on the limit.
					next = limit
				}
				if next > s.cycle+1 {
					s.skipTo(next)
				}
			}
		}
		s.Tick()
	}
	return true, nil
}

// nextInteresting returns the earliest cycle strictly after now at which
// any component would do observable work — the next cycle Tick must
// actually run. noEvent means the machine is wedged (nothing will ever
// happen again without external intervention).
func (s *System) nextInteresting(now uint64) uint64 {
	next := uint64(noEvent)
	for _, c := range s.cores {
		if ev := c.nextEvent(now); ev < next {
			next = ev
		}
		if c.path != nil {
			if ev := c.path.NextEvent(now); ev < next {
				next = ev
			}
		}
	}
	if ev := s.net.NextArrival(); ev < next {
		next = ev
	}
	for _, m := range s.mcs {
		ev := m.q.NextEvent(now)
		if s.inj != nil && ev != noEvent && s.inj.MCStuck(ev, m.id) {
			// A stuck controller is not ticked at all (Tick skips it), and
			// nothing mutates its queue during the window, so its due work
			// runs at the first cycle after the window — exactly as naive.
			ev = s.inj.StuckUntil(ev, m.id)
		}
		if ev < next {
			next = ev
		}
	}
	if s.inj != nil {
		if ev := s.faultsNext(now); ev < next {
			next = ev
		}
	}
	if s.ffSkew != 0 && next != noEvent {
		// Test-only sabotage: deliberately violate the never-late contract
		// so the equivalence oracle can prove it has teeth.
		next += s.ffSkew
	}
	return next
}

// faultsNext schedules the time-driven fault-model bookkeeping tickFaults
// performs: the stuck window's edges (stuckSince recording at entry, parked
// release and stuckSince reset at exit) and the degrade deadline.
func (s *System) faultsNext(now uint64) uint64 {
	next := s.inj.NextEvent(now)
	pl := s.inj.Plan()
	if pl.StuckFor > 0 && pl.StuckMC >= 0 && pl.StuckMC < len(s.mcs) {
		id := pl.StuckMC
		if s.stuckSince[id] == 0 && s.inj.MCStuck(now+1, id) {
			return now + 1 // the next tick must record the stuck observation
		}
		if s.stuckSince[id] != 0 && !s.degradedMC[id] {
			ev := s.stuckSince[id] + s.cfg.degradeDeadline()
			if ev <= now {
				ev = now + 1
			}
			if ev < next {
				next = ev
			}
		}
	}
	return next
}

// skipTo fast-forwards the quiescent span up to (but not including) target:
// per-cycle effects that accrue even when idle — core stall statistics,
// persist-path bandwidth credit — are applied in bulk, and the clock jumps
// so the next Tick lands exactly on target.
func (s *System) skipTo(target uint64) {
	from := s.cycle + 1
	n := target - from // cycles skipped: from .. target-1
	if n == 0 {
		return
	}
	for _, c := range s.cores {
		c.skipIdle(from, n)
		if c.path != nil {
			c.path.SkipIdle(from, target-1)
		}
	}
	s.ffSkipped += n
	s.ffJumps++
	s.cycle = target - 1
}
