package machine

import (
	"fmt"

	"lightwsp/internal/isa"
	"lightwsp/internal/mem"
	"lightwsp/internal/persistpath"
	"lightwsp/internal/probe"
)

// sbEntry is one store-buffer slot: a retired store awaiting its trip down
// the regular path (L1) and, under a persistence scheme, the persist path.
type sbEntry struct {
	addr, val uint64
	region    uint64
	boundary  bool
	born      uint64
}

// Core is one hardware thread: an in-order-issue, non-blocking-load engine
// that approximates the paper's 4-wide OoO core. Register readiness is
// tracked with a scoreboard so independent load misses overlap; stores
// retire into the store buffer and drain one per cycle.
type Core struct {
	id  int
	sys *System

	pc     isa.PC
	regs   [isa.NumRegs]uint64
	ready  [isa.NumRegs]uint64 // cycle each register's value is available
	sp     uint64
	region uint64
	halted bool
	active bool

	sb   []sbEntry
	l1   *mem.Cache
	path *persistpath.Path // nil when the scheme has no persist path

	outstanding int    // persist entries created but not yet flushed to PM
	waitDrain   bool   // stalled at a boundary until outstanding == 0
	spinning    bool   // waiting on a lock with the region already closed
	ioPending   bool   // an Io closed its region and waits for the drain
	bubbleUntil uint64 // fetch-redirect bubble after taken control flow

	storesSinceHWBoundary int // PPA's PRF-pressure region counter

	// Region-shape accounting.
	instrInRegion  uint64
	storesInRegion int

	// FEB back-pressure burst tracking (probe-only; untouched when no
	// sink is attached).
	febStalled    bool
	febStallStart uint64
}

// ThreadState is the architectural state a thread resumes with (recovery).
type ThreadState struct {
	PC   isa.PC
	Regs [isa.NumRegs]uint64
	SP   uint64
}

// Halted reports whether the thread finished.
func (c *Core) Halted() bool { return c.halted }

// Outstanding returns the core's unflushed persist entries.
func (c *Core) Outstanding() int { return c.outstanding }

// opReady reports whether every source register of in is available.
func (c *Core) opReady(in *isa.Instr, now uint64) bool {
	var buf [8]isa.Reg
	for _, r := range in.Uses(buf[:0]) {
		if c.ready[r] > now {
			return false
		}
	}
	return true
}

// pushStore appends a store to the store buffer; the caller must have
// verified space with sbRoom.
func (c *Core) pushStore(addr, val, region uint64, boundary bool, now uint64) {
	c.sb = append(c.sb, sbEntry{addr: addr, val: val, region: region, boundary: boundary, born: now})
	c.sys.sbPending++
}

func (c *Core) sbRoom(n int) bool { return len(c.sb)+n <= c.sys.cfg.SBEntries }

// emitBoundary closes the current region: it checkpoints the stack pointer
// and the recovery PC (the boundary's two persist-path slot stores), then
// allocates a fresh region ID from the global counter. cWSP-style schemes
// (StripCheckpoints) persist only the PC. When allocateNext is false (thread
// halt) the region closes without opening another, so the flush ID is never
// blocked by a region that will never end.
func (c *Core) emitBoundary(resume isa.PC, now uint64, allocateNext bool) {
	s := c.sys
	if !s.scheme.StripCheckpoints {
		c.pushStore(mem.CkptAddr(c.id, mem.CkptSlotSP), c.sp, c.region, false, now)
		s.arch.Write(mem.CkptAddr(c.id, mem.CkptSlotSP), c.sp)
	}
	c.pushStore(mem.CkptAddr(c.id, mem.CkptSlotPC), resume.Pack(), c.region, true, now)
	s.arch.Write(mem.CkptAddr(c.id, mem.CkptSlotPC), resume.Pack())

	s.Stats.RegionsClosed++
	s.Stats.InstrInRegions += c.instrInRegion
	s.Stats.StoresInRegions += uint64(c.storesInRegion)
	if c.storesInRegion > s.Stats.MaxDynRegionStores {
		s.Stats.MaxDynRegionStores = c.storesInRegion
	}
	if s.probe != nil {
		s.probe.Emit(probe.Event{Kind: probe.RegionClose, Cycle: now,
			Core: c.id, MC: -1, Region: c.region, Arg: uint64(c.storesInRegion)})
	}
	c.instrInRegion = 0
	c.storesInRegion = 0

	if allocateNext {
		c.region = s.nextRegion()
		if s.probe != nil {
			s.probe.Emit(probe.Event{Kind: probe.RegionOpen, Cycle: now,
				Core: c.id, MC: -1, Region: c.region})
		}
	}
	if s.scheme.StallAtBoundary {
		c.waitDrain = true
	}
}

// boundaryCost is how many store-buffer slots a boundary needs.
func (c *Core) boundaryCost() int {
	if c.sys.scheme.StripCheckpoints {
		return 1
	}
	return 2
}

// tick advances the core one cycle: drain the store buffer, then issue.
func (c *Core) tick(now uint64) {
	if !c.active || c.halted && len(c.sb) == 0 {
		return
	}
	c.drainSB(now)
	if c.halted {
		return
	}
	if c.waitDrain {
		if c.outstanding == 0 && (c.path == nil || c.path.Empty()) && len(c.sb) == 0 {
			c.waitDrain = false
		} else {
			c.sys.Stats.StallDrain++
			return
		}
	}
	c.issue(now)
}

// drainSB retires up to one store per cycle from the store buffer into the
// L1 (regular path) and the persist path.
func (c *Core) drainSB(now uint64) {
	if len(c.sb) == 0 {
		return
	}
	e := c.sb[0]
	s := c.sys
	if c.path != nil {
		bytes := s.scheme.EntryBytes
		pe := persistpath.Entry{
			Addr: e.addr, Val: e.val, Region: e.region, Boundary: e.boundary,
			Core: c.id, Bytes: bytes, Born: e.born,
		}
		if !c.path.Enqueue(pe) {
			s.Stats.StallFEBFull++
			if s.probe != nil && !c.febStalled {
				c.febStalled = true
				c.febStallStart = now
				s.probe.Emit(probe.Event{Kind: probe.FEBStallStart, Cycle: now,
					Core: c.id, MC: -1})
			}
			return // back pressure: the store stays in the buffer
		}
		if c.febStalled {
			c.febStalled = false
			if s.probe != nil {
				s.probe.Emit(probe.Event{Kind: probe.FEBStallStop, Cycle: now,
					Core: c.id, MC: -1, Arg: now - c.febStallStart})
			}
		}
		c.outstanding++
		s.pathPending++
		s.Stats.PersistEntries++
	}
	// Regular path: write-allocate into L1 (checkpoint-array and stack
	// stores included — they are ordinary cached stores).
	line := mem.LineAddr(e.addr)
	if !c.l1.Lookup(line, true) {
		res := c.l1.Fill(line, true, s.cfg.VictimPolicy, c.snoopFn())
		if res.Stalled {
			// Zero-victim policy: the eviction (and hence the fill)
			// waits for the conflicting buffer entry to drain. The
			// store itself proceeds without allocating.
			s.Stats.StallEviction++
		}
		if res.EvictedValid {
			s.l2.Lookup(res.Evicted, res.EvictedDirty) // writeback touches L2
		}
		if !s.l2.Lookup(line, false) && s.scheme.UseDRAMCache {
			// The write-allocate fill reaches the memory side and
			// populates the DRAM cache (memory mode), so store-swept
			// data later hits it. No latency is charged: the drain is
			// decoupled from the pipeline (MSHR-covered).
			s.mcs[s.mcOf(e.addr)].dram.Access(line)
		}
	}
	c.sb = c.sb[1:]
	s.sbPending--
}

// snoopFn returns the buffer-snooping predicate for L1 victim selection, or
// nil when the scheme has no persist path.
func (c *Core) snoopFn() func(uint64) bool {
	if c.path == nil || c.sys.cfg.VictimPolicy == mem.StaleLoad {
		return nil
	}
	if s := c.sys; s.probe != nil {
		return func(line uint64) bool {
			hit := c.path.Snoop(line)
			if hit {
				s.probe.Emit(probe.Event{Kind: probe.SnoopHit, Cycle: s.cycle,
					Core: c.id, MC: -1, Addr: line})
			}
			return hit
		}
	}
	return c.path.Snoop
}

// issue executes up to IssueWidth instructions in order.
func (c *Core) issue(now uint64) {
	s := c.sys
	if now < c.bubbleUntil {
		return // fetch redirect after taken control flow
	}
	for slot := 0; slot < s.cfg.IssueWidth && !c.halted && !c.waitDrain; slot++ {
		in := s.prog.InstrAt(c.pc)
		if !c.opReady(in, now) {
			s.Stats.StallOperand++
			return
		}
		if !c.step(in, now) {
			return // structural stall (SB full, lock spin); retry next cycle
		}
		if in.Op.IsTerminator() || in.Op == isa.Call {
			// Control flow ends the issue group and redirects fetch.
			c.bubbleUntil = now + 2
			return
		}
	}
}

// step executes one instruction functionally and charges its timing.
// It returns false if the instruction could not issue this cycle.
func (c *Core) step(in *isa.Instr, now uint64) bool {
	s := c.sys
	regs := &c.regs
	next := func() { c.pc.Index++ }
	// A new definition supersedes any pending latency on the register;
	// long-latency cases below overwrite this with now+latency.
	if d, ok := in.Defs(); ok {
		c.ready[d] = now
	}
	switch in.Op {
	case isa.Nop:
		next()
	case isa.MovImm:
		regs[in.Rd] = uint64(in.Imm)
		next()
	case isa.Mov:
		regs[in.Rd] = regs[in.Rs1]
		next()
	case isa.Add:
		regs[in.Rd] = regs[in.Rs1] + regs[in.Rs2]
		next()
	case isa.AddImm:
		regs[in.Rd] = regs[in.Rs1] + uint64(in.Imm)
		next()
	case isa.Sub:
		regs[in.Rd] = regs[in.Rs1] - regs[in.Rs2]
		next()
	case isa.Mul:
		// ALU operations are single-cycle — an idealization that keeps
		// the core issue-bound, which maximizes the visibility of the
		// instrumentation's added instructions (conservative for the
		// schemes under study).
		regs[in.Rd] = regs[in.Rs1] * regs[in.Rs2]
		next()
	case isa.MulImm:
		regs[in.Rd] = regs[in.Rs1] * uint64(in.Imm)
		next()
	case isa.And:
		regs[in.Rd] = regs[in.Rs1] & regs[in.Rs2]
		next()
	case isa.Or:
		regs[in.Rd] = regs[in.Rs1] | regs[in.Rs2]
		next()
	case isa.Xor:
		regs[in.Rd] = regs[in.Rs1] ^ regs[in.Rs2]
		next()
	case isa.Shl:
		regs[in.Rd] = regs[in.Rs1] << (regs[in.Rs2] & 63)
		next()
	case isa.Shr:
		regs[in.Rd] = regs[in.Rs1] >> (regs[in.Rs2] & 63)
		next()
	case isa.CmpLT:
		regs[in.Rd] = b2u(int64(regs[in.Rs1]) < int64(regs[in.Rs2]))
		next()
	case isa.CmpEQ:
		regs[in.Rd] = b2u(regs[in.Rs1] == regs[in.Rs2])
		next()

	case isa.Load:
		addr := c.effAddr(regs[in.Rs1], in.Imm)
		regs[in.Rd] = s.arch.Read(addr)
		c.ready[in.Rd] = now + hideLatency(s.loadLatency(c, addr), s.cfg.OOOWindow)
		s.Stats.Loads++
		next()

	case isa.Store:
		if !c.sbRoom(1) {
			s.Stats.StallSBFull++
			return false
		}
		addr := c.effAddr(regs[in.Rs1], in.Imm)
		s.arch.Write(addr, regs[in.Rs2])
		c.pushStore(addr, regs[in.Rs2], c.region, false, now)
		c.noteStore()
		next()

	case isa.Jump:
		c.pc = isa.PC{Func: c.pc.Func, Block: in.Target}

	case isa.Branch:
		if regs[in.Rs1] != 0 {
			c.pc = isa.PC{Func: c.pc.Func, Block: in.Target}
		} else {
			c.pc = isa.PC{Func: c.pc.Func, Block: in.Target2}
		}

	case isa.Call:
		if !c.sbRoom(1) {
			s.Stats.StallSBFull++
			return false
		}
		ret := isa.PC{Func: c.pc.Func, Block: c.pc.Block, Index: c.pc.Index + 1}
		s.arch.Write(c.sp, ret.Pack())
		c.pushStore(c.sp, ret.Pack(), c.region, false, now)
		c.noteStore()
		c.sp -= mem.WordSize
		c.pc = isa.PC{Func: in.Target}

	case isa.Ret:
		regs[isa.RetReg] = regs[in.Rs1]
		c.sp += mem.WordSize
		retAddr := c.sp
		ret := isa.UnpackPC(s.arch.Read(retAddr))
		c.ready[isa.RetReg] = now + hideLatency(s.loadLatency(c, retAddr), s.cfg.OOOWindow)
		s.Stats.Loads++
		c.pc = ret

	case isa.Halt:
		if s.scheme.Instrumented {
			if !c.sbRoom(c.boundaryCost()) {
				s.Stats.StallSBFull++
				return false
			}
			c.emitBoundary(c.pc, now, false)
		}
		c.halted = true
		s.runningCores--

	case isa.Fence:
		if !c.syncBoundary(now, 0) {
			return false
		}
		next()

	case isa.AtomicAdd:
		addr := c.effAddr(regs[in.Rs1], in.Imm)
		if !c.syncBoundary(now, 1) {
			return false
		}
		old := s.arch.Read(addr)
		regs[in.Rd] = old
		s.arch.Write(addr, old+regs[in.Rs2])
		c.pushStore(addr, old+regs[in.Rs2], c.region, false, now)
		c.noteStore()
		c.ready[in.Rd] = now + s.cfg.L2Lat // atomics bypass L1
		s.Stats.Atomics++
		next()

	case isa.LockAcquire:
		addr := c.effAddr(regs[in.Rs1], in.Imm)
		// A waiting thread must not keep a region open: an open region
		// blocks the global flush-ID sequence, and a full WPQ waiting on
		// it while the lock holder is back-pressured would deadlock the
		// system (§III-C). So the current region closes when the spin
		// begins — recovery then re-executes the acquire — and a fresh
		// region ID is allocated only once the lock is observed free,
		// which also makes the ID sequence follow the happens-before
		// order (§III-D, Fig. 4): the new ID postdates the releaser's.
		if s.scheme.Instrumented && !c.spinning {
			if !c.sbRoom(c.boundaryCost() + 1) {
				s.Stats.StallSBFull++
				return false
			}
			c.emitBoundary(c.pc, now, false)
			c.spinning = true
		}
		if s.arch.Read(addr) != 0 {
			s.Stats.StallLockSpin++
			return false // spin: retry next cycle
		}
		if s.scheme.Instrumented {
			c.region = s.nextRegion()
			if s.probe != nil {
				s.probe.Emit(probe.Event{Kind: probe.RegionOpen, Cycle: now,
					Core: c.id, MC: -1, Region: c.region})
			}
			c.spinning = false
		} else if !c.sbRoom(1) {
			s.Stats.StallSBFull++
			return false
		}
		s.arch.Write(addr, uint64(c.id)+1)
		c.pushStore(addr, uint64(c.id)+1, c.region, false, now)
		c.noteStore()
		s.Stats.Atomics++
		next()

	case isa.LockRelease:
		addr := c.effAddr(regs[in.Rs1], in.Imm)
		if !c.syncBoundary(now, 1) {
			return false
		}
		s.arch.Write(addr, 0)
		c.pushStore(addr, 0, c.region, false, now)
		c.noteStore()
		s.Stats.Atomics++
		next()

	case isa.Io:
		// Irrevocable operation (§IV-A): close the current region with
		// the Io itself as the recovery point, wait until every prior
		// store has persisted, then perform the external effect. A
		// power failure therefore either precedes the effect (recovery
		// re-runs the Io — restartable I/O) or follows a state in which
		// everything the Io depended on is durable.
		if s.scheme.Instrumented {
			if !c.ioPending {
				if !c.syncBoundary(now, 0) {
					return false
				}
				c.ioPending = true
				c.waitDrain = true
				return false
			}
			c.ioPending = false
		}
		s.Output = append(s.Output, regs[in.Rs1])
		s.Stats.IOOps++
		next()

	case isa.Boundary:
		if !c.sbRoom(c.boundaryCost()) {
			s.Stats.StallSBFull++
			return false
		}
		resume := isa.PC{Func: c.pc.Func, Block: c.pc.Block, Index: c.pc.Index + 1}
		c.emitBoundary(resume, now, true)
		s.Stats.Boundaries++
		next()

	case isa.CkptStore:
		if !c.sbRoom(1) {
			s.Stats.StallSBFull++
			return false
		}
		slot := mem.CkptAddr(c.id, int(in.Rs1))
		s.arch.Write(slot, regs[in.Rs1])
		c.pushStore(slot, regs[in.Rs1], c.region, false, now)
		c.noteStore()
		s.Stats.Checkpoints++
		next()

	default:
		panic(fmt.Sprintf("machine: unknown opcode %s at %v", in.Op, c.pc))
	}

	s.Stats.Instructions++
	c.instrInRegion++
	return true
}

// syncBoundary performs the implicit hardware boundary at a synchronization
// instruction (§III-D): the current region closes with the sync's own PC as
// the recovery point, and the sync's effects belong to the freshly
// allocated region — which is what makes the region-ID sequence follow the
// happens-before order (Fig. 4). extraStores is the sync's own store count,
// reserved in the store buffer together with the boundary slots.
//
// Under non-instrumented schemes a sync is just its memory operation.
func (c *Core) syncBoundary(now uint64, extraStores int) bool {
	if !c.sys.scheme.Instrumented {
		return c.sbRoom(extraStores)
	}
	if !c.sbRoom(c.boundaryCost() + extraStores) {
		c.sys.Stats.StallSBFull++
		return false
	}
	c.emitBoundary(c.pc, now, true)
	return true
}

// noteStore counts a persist-path store and, for PPA's hardware regions,
// ends the region when the PRF-pressure budget is exhausted.
func (c *Core) noteStore() {
	s := c.sys
	s.Stats.Stores++
	c.storesInRegion++
	if s.scheme.HWRegionStores > 0 {
		c.storesSinceHWBoundary++
		if c.storesSinceHWBoundary >= s.scheme.HWRegionStores {
			c.storesSinceHWBoundary = 0
			c.waitDrain = true
			s.Stats.RegionsClosed++
			s.Stats.InstrInRegions += c.instrInRegion
			s.Stats.StoresInRegions += uint64(c.storesInRegion)
			c.instrInRegion = 0
			c.storesInRegion = 0
		}
	}
}

// effAddr computes and sanity-checks an effective address.
func (c *Core) effAddr(base uint64, imm int64) uint64 {
	addr := base + uint64(imm)
	if !mem.Align8(addr) {
		panic(fmt.Sprintf("machine: core %d unaligned access %#x at %v", c.id, addr, c.pc))
	}
	if addr >= mem.PMSize {
		panic(fmt.Sprintf("machine: core %d access %#x beyond PM at %v", c.id, addr, c.pc))
	}
	return addr
}

// nextEvent returns the earliest cycle strictly after now at which tick
// would do observable work, assuming no other component acts first. The
// contract is one-sided: the result may be early (the extra tick repeats a
// stall and is accounted identically) but never late. A core that can only
// be woken externally — waitDrain with unmet conditions — reports noEvent;
// the flush or path drain that wakes it is another component's event, and
// skipIdle accounts the per-cycle drain-stall statistic for the span.
func (c *Core) nextEvent(now uint64) uint64 {
	if !c.active {
		return noEvent
	}
	if len(c.sb) > 0 {
		return now + 1 // store-buffer drain (or FEB back-pressure retry) every cycle
	}
	if c.halted {
		return noEvent
	}
	if c.waitDrain {
		if c.outstanding == 0 && (c.path == nil || c.path.Empty()) {
			return now + 1 // the next tick clears the stall and issues
		}
		return noEvent
	}
	if c.bubbleUntil > now+1 {
		return c.bubbleUntil // fetch-redirect bubble: no stats, no effects
	}
	// Operand readiness of the next instruction is the only predictable
	// issue stall; everything else (lock spins read shared memory, SB-full
	// depends on same-cycle drains) must be retried per cycle.
	in := c.sys.prog.InstrAt(c.pc)
	next := now + 1
	var buf [8]isa.Reg
	for _, r := range in.Uses(buf[:0]) {
		if c.ready[r] > next {
			next = c.ready[r]
		}
	}
	return next
}

// skipIdle applies the cumulative effect of ticking the core over an idle
// span of n cycles starting at from. The caller guarantees the span is
// quiescent for this core — nextEvent(from-1) > the span's last cycle — so
// the core's state is frozen and the only per-cycle effects are the stall
// statistics the naive stepper would have counted.
func (c *Core) skipIdle(from, n uint64) {
	if !c.active || c.halted || len(c.sb) > 0 {
		return // inactive or halted-idle cores tick to nothing; sb>0 is never skipped
	}
	if c.waitDrain {
		// Unmet by construction: a satisfied waitDrain reports now+1 and
		// forbids any skip.
		c.sys.Stats.StallDrain += n
		return
	}
	if c.bubbleUntil > from {
		// The whole span sits inside the fetch-redirect bubble (nextEvent
		// stops at bubbleUntil, so a span never straddles it): no stats.
		return
	}
	// Operand stall: nextEvent beyond the span means some source register
	// stays unready through every cycle of it.
	c.sys.Stats.StallOperand += n
}

// hideLatency models the out-of-order window: a consumer of a load pays
// only the part of the latency the window cannot hide.
func hideLatency(lat, window uint64) uint64 {
	if lat <= window {
		return 1
	}
	return lat - window
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
