package machine

import (
	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/isa"
	"lightwsp/internal/mem"
)

func lightScheme() Scheme {
	return Scheme{Name: "lightwsp", Instrumented: true, UsePersistPath: true,
		EntryBytes: 8, GatedWPQ: true, UseDRAMCache: true}
}

func compiled(t *testing.T, p *isa.Program) *isa.Program {
	t.Helper()
	res, err := compiler.Compile(p, compiler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res.Prog
}

func TestPowerFailAtCycleZeroLeavesBootImage(t *testing.T) {
	prog := compiled(t, storeProg(10, 0x1000))
	sys, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.PowerFail()
	if rep.Discarded != 0 {
		t.Fatalf("discarded %d entries before any execution", rep.Discarded)
	}
	// Only the boot checkpoint image exists; no program data.
	if sys.PM().Read(0x1000) != 0 {
		t.Fatal("program data persisted before execution")
	}
	pc := isa.UnpackPC(sys.PM().Read(mem.CkptAddr(0, mem.CkptSlotPC)))
	if pc != (isa.PC{Func: prog.Entry}) {
		t.Fatalf("boot recovery PC = %v", pc)
	}
}

func TestPowerFailPrefixProperty(t *testing.T) {
	// At any failure point, the persisted stores must be a prefix of the
	// program's store sequence: if store k is in PM, stores 1..k-1 are
	// too (single-threaded, distinct addresses).
	prog := compiled(t, storeProg(40, 0x1000))
	clean, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Run(1_000_000) {
		t.Fatal("clean run did not complete")
	}
	total := clean.Stats.Cycles
	for fail := uint64(1); fail < total; fail += total / 23 {
		sys, err := NewSystem(prog, smallCfg(), lightScheme())
		if err != nil {
			t.Fatal(err)
		}
		sys.RunUntil(fail)
		sys.PowerFail()
		seenGap := false
		for i := 0; i < 40; i++ {
			v := sys.PM().Read(0x1000 + uint64(8*i))
			if v == 0 {
				seenGap = true
			} else if seenGap {
				t.Fatalf("failure at %d: store %d persisted after a gap (non-prefix)", fail, i)
			}
		}
	}
}

func TestPowerFailIsTerminal(t *testing.T) {
	prog := compiled(t, storeProg(10, 0x1000))
	sys, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	sys.RunUntil(50)
	sys.PowerFail()
	img := sys.PM().Clone()
	// Ticking a dead machine must not change the persisted image.
	for i := 0; i < 1000; i++ {
		sys.Tick()
	}
	if !sys.PM().Equal(img) {
		t.Fatal("PM changed after power failure")
	}
}

func TestRecoveredSystemColdCaches(t *testing.T) {
	prog := compiled(t, storeProg(10, 0x1000))
	pm := mem.NewImage()
	states := []ThreadState{{PC: isa.PC{Func: prog.Entry}, SP: mem.StackTop(0)}}
	sys, err := NewRecoveredSystem(prog, smallCfg(), lightScheme(), pm, states, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("recovered system did not complete")
	}
	// Fresh region IDs start at the seed.
	if sys.Stats.RegionsClosed == 0 {
		t.Fatal("no regions closed after recovery")
	}
	if got := sys.PM().Read(0x1000); got != 100 {
		t.Fatalf("recovered run result = %d", got)
	}
}

func TestRecoveredSystemRejectsWrongStateCount(t *testing.T) {
	prog := compiled(t, storeProg(1, 0x1000))
	if _, err := NewRecoveredSystem(prog, smallCfg(), lightScheme(), mem.NewImage(), nil, 5); err == nil {
		t.Fatal("accepted zero thread states for one thread")
	}
}

func TestDrainFlushesBoundaryConfirmedRegions(t *testing.T) {
	// Freeze the machine mid-run with entries in flight, fail, and check
	// that everything the drain kept is consistent: each persisted word
	// of the store loop belongs to a region whose boundary committed.
	prog := compiled(t, storeProg(64, 0x1000))
	sys, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	// Stop at a point where the WPQ almost certainly holds entries.
	sys.RunUntil(120)
	rep := sys.PowerFail()
	persisted := 0
	for i := 0; i < 64; i++ {
		if sys.PM().Read(0x1000+uint64(8*i)) != 0 {
			persisted++
		}
	}
	t.Logf("failure at %d: %d stores persisted, %d entries discarded", rep.Cycle, persisted, rep.Discarded)
	// The report's region counter allows recovery to seed fresh IDs.
	if rep.RegionCounter == 0 {
		t.Fatal("region counter not reported")
	}
}

func TestStaleLoadModeCountsRefetches(t *testing.T) {
	// A load that chases its own recent store through a cold cache can
	// observe the stale-load window when snooping is off.
	b := isa.NewBuilder("stale")
	b.Func("main")
	b.MovImm(1, 0x30000)
	b.MovImm(2, 0)
	b.MovImm(3, 300)
	loop := b.NewBlock()
	b.Store(1, 0, 2)
	// Immediately load it back through a second pointer (same address).
	b.Load(4, 1, 0)
	b.Add(5, 5, 4)
	b.AddImm(1, 1, 8)
	b.AddImm(2, 2, 1)
	b.CmpLT(6, 2, 3)
	b.Branch(6, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	cfg.VictimPolicy = mem.StaleLoad
	cfg.L1Size = mem.LineSize * 16 // tiny L1: evictions guaranteed
	cfg.L1Ways = 2
	sys, err := NewSystem(compiled(t, p), cfg, lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(10_000_000) {
		t.Fatal("run did not complete")
	}
	// Functional correctness is preserved (the model charges the refetch
	// latency rather than corrupting data).
	if sys.Arch().Read(0x30000+8) != 1 {
		t.Fatal("data corrupted")
	}
	t.Logf("stale loads observed: %d", sys.Stats.StaleLoads)
}

func TestZeroVictimStallAccounting(t *testing.T) {
	cfg := smallCfg()
	cfg.VictimPolicy = mem.ZeroVictim
	cfg.L1Size = mem.LineSize * 8
	cfg.L1Ways = 2
	cfg.PersistBytesPerCredit = 1
	cfg.PersistCreditCycles = 4 // slow path: FEB holds entries longer
	sys, err := NewSystem(compiled(t, storeProg(200, 0x1000)), cfg, lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(10_000_000) {
		t.Fatal("run did not complete")
	}
	t.Logf("eviction stalls: %d, snoop conflicts: %d", sys.Stats.StallEviction, sys.Stats.SnoopConflicts)
}

func TestCXLStyleLatencyOverride(t *testing.T) {
	// Raising PM latency and narrowing the write interval must slow an
	// instrumented run — the Figure 17 mechanism.
	prog := compiled(t, storeProg(100, 0x1000))
	run := func(readLat, writeInterval uint64) uint64 {
		cfg := smallCfg()
		cfg.PMReadLat = readLat
		cfg.PMWriteInterval = writeInterval
		sys, err := NewSystem(prog, cfg, lightScheme())
		if err != nil {
			t.Fatal(err)
		}
		if !sys.Run(10_000_000) {
			t.Fatal("run did not complete")
		}
		return sys.Stats.Cycles
	}
	local := run(350, 1)
	cxl := run(700, 7)
	if cxl <= local {
		t.Fatalf("CXL-style latencies (%d cycles) not slower than local (%d)", cxl, local)
	}
}

func TestPersistenceResidencyAccounting(t *testing.T) {
	sys, err := NewSystem(compiled(t, storeProg(20, 0x1000)), smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("run did not complete")
	}
	if sys.Stats.PersistFlushed == 0 || sys.Stats.PersistResidency == 0 {
		t.Fatalf("residency accounting empty: %+v", sys.Stats)
	}
	avg := float64(sys.Stats.PersistResidency) / float64(sys.Stats.PersistFlushed)
	// Every entry at least crosses the persist path (≥ near latency).
	if avg < float64(smallCfg().PersistLatNear) {
		t.Fatalf("average residency %.1f below transit latency", avg)
	}
}

func TestStatsFinalizeIdempotent(t *testing.T) {
	sys, err := NewSystem(compiled(t, storeProg(10, 0x1000)), smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("run did not complete")
	}
	l1 := sys.Stats.L1Hits
	sys.PowerFail() // a second finalize path
	if sys.Stats.L1Hits != l1 {
		t.Fatalf("stats double-counted: %d -> %d", l1, sys.Stats.L1Hits)
	}
}
