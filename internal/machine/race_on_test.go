//go:build race

package machine

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = true
