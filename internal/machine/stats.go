package machine

import "fmt"

// Stats aggregates one run's measurements. Counters are cumulative across
// all cores unless noted.
type Stats struct {
	Cycles uint64

	// Instruction mix.
	Instructions uint64 // all issued instructions
	Boundaries   uint64 // Boundary instructions issued
	Checkpoints  uint64 // CkptStore instructions issued
	Stores       uint64 // persist-path store operations (incl. call pushes)
	Loads        uint64
	Atomics      uint64
	IOOps        uint64 // irrevocable Io operations performed

	// Stall cycles by cause (per-core cycles summed).
	StallOperand  uint64 // waiting for a register (load latency)
	StallSBFull   uint64 // store buffer full
	StallFEBFull  uint64 // persist path back pressure (LightWSP's Twait)
	StallDrain    uint64 // waiting at a boundary for persists (PPA/Capri Twait)
	StallLockSpin uint64 // spinning on a lock
	StallEviction uint64 // zero-victim snoop-conflict eviction delays

	// Persistence activity.
	PersistEntries   uint64 // entries that entered the persist path
	PersistFlushed   uint64 // entries written to PM
	PersistResidency uint64 // Σ (flush cycle − creation cycle): Tp of Eq. (1)

	// WPQ behaviour.
	WPQCAMHits      uint64
	WPQCAMSearches  uint64
	WPQDeadlocks    uint64
	WPQUndoWrites   uint64
	WPQFullRejects  uint64
	WPQMaxOccupancy int

	// Persist-fabric robustness (all zero without a fault injector).
	WPQRetries       uint64 // boundary replays retransmitted
	WPQDupSuppressed uint64 // duplicate ACKs absorbed idempotently
	MCDegradations   uint64 // controllers declared degraded
	FaultDrops       uint64 // messages the injector dropped
	FaultDups        uint64 // messages the injector duplicated
	FaultDelays      uint64 // messages the injector delayed
	FaultReorders    uint64 // messages the injector reordered

	// Cache behaviour.
	L1Hits, L1Misses     uint64
	L2Hits, L2Misses     uint64
	DRAMHits, DRAMMisses uint64
	SnoopConflicts       uint64 // buffer-snooping CAM hits (Table II)
	SnoopSearches        uint64
	StaleLoads           uint64 // stale-load refetches (StaleLoad mode only)

	// Region shape (dynamic).
	RegionsClosed      uint64
	InstrInRegions     uint64 // instructions attributed to closed regions
	StoresInRegions    uint64 // stores attributed to closed regions
	MaxDynRegionStores int    // largest per-region dynamic store count seen
}

// Twait returns the persistence-attributable core wait time of Eq. (1):
// back-pressure stalls for LightWSP, boundary drain stalls for PPA and
// Capri.
func (s *Stats) Twait() uint64 {
	return s.StallFEBFull + s.StallDrain
}

// PersistenceEfficiency computes Eq. (1): (Tp − Twait) / Tp × 100. With no
// persistence activity it returns 100.
func (s *Stats) PersistenceEfficiency() float64 {
	if s.PersistResidency == 0 {
		return 100
	}
	tw := s.Twait()
	if tw >= s.PersistResidency {
		return 0
	}
	return float64(s.PersistResidency-tw) / float64(s.PersistResidency) * 100
}

// L1MissRate returns the L1 miss ratio in percent.
func (s *Stats) L1MissRate() float64 {
	t := s.L1Hits + s.L1Misses
	if t == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(t) * 100
}

// ConflictRate returns buffer-snooping conflicts per mille of searches
// (Table II's metric).
func (s *Stats) ConflictRate() float64 {
	if s.SnoopSearches == 0 {
		return 0
	}
	return float64(s.SnoopConflicts) / float64(s.SnoopSearches) * 1000
}

// WPQHitsPerMInst returns WPQ load hits per million instructions (Fig. 18).
func (s *Stats) WPQHitsPerMInst() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.WPQCAMHits) / float64(s.Instructions) * 1e6
}

// InstrPerRegion returns the average dynamic instructions per region.
func (s *Stats) InstrPerRegion() float64 {
	if s.RegionsClosed == 0 {
		return 0
	}
	return float64(s.InstrInRegions) / float64(s.RegionsClosed)
}

// StoresPerRegion returns the average dynamic stores per region.
func (s *Stats) StoresPerRegion() float64 {
	if s.RegionsClosed == 0 {
		return 0
	}
	return float64(s.StoresInRegions) / float64(s.RegionsClosed)
}

// Summary renders the run's headline numbers for human consumption.
func (s *Stats) Summary() string {
	ipc := 0.0
	if s.Cycles > 0 {
		ipc = float64(s.Instructions) / float64(s.Cycles)
	}
	return fmt.Sprintf(
		"cycles=%d insts=%d (ipc %.2f) stores=%d loads=%d regions=%d "+
			"eff=%.2f%% l1miss=%.2f%% stalls[op=%d sb=%d feb=%d drain=%d spin=%d] "+
			"wpq[deadlocks=%d undo=%d maxocc=%d]",
		s.Cycles, s.Instructions, ipc, s.Stores, s.Loads, s.RegionsClosed,
		s.PersistenceEfficiency(), s.L1MissRate(),
		s.StallOperand, s.StallSBFull, s.StallFEBFull, s.StallDrain, s.StallLockSpin,
		s.WPQDeadlocks, s.WPQUndoWrites, s.WPQMaxOccupancy)
}
