package machine

import (
	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/isa"
	"lightwsp/internal/mem"
)

// ioProg emits the values 1..n interleaved with stores.
func ioProg(n int) *isa.Program {
	b := isa.NewBuilder("io")
	b.Func("main")
	b.MovImm(1, 0x6000)
	b.MovImm(2, 0)
	b.MovImm(3, int64(n))
	loop := b.NewBlock()
	b.AddImm(2, 2, 1)
	b.Store(1, 0, 2)
	b.AddImm(1, 1, 8)
	b.Io(2)
	b.CmpLT(4, 2, 3)
	b.Branch(4, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func TestIoEmitsInOrder(t *testing.T) {
	for _, sch := range []Scheme{plainScheme(), lightScheme()} {
		prog := ioProg(10)
		if sch.Instrumented {
			prog = compiled(t, prog)
		}
		sys, err := NewSystem(prog, smallCfg(), sch)
		if err != nil {
			t.Fatal(err)
		}
		if !sys.Run(10_000_000) {
			t.Fatalf("%s: run did not complete", sch.Name)
		}
		if len(sys.Output) != 10 || sys.Stats.IOOps != 10 {
			t.Fatalf("%s: output = %v", sch.Name, sys.Output)
		}
		for i, v := range sys.Output {
			if v != uint64(i+1) {
				t.Fatalf("%s: output[%d] = %d", sch.Name, i, v)
			}
		}
	}
}

func TestIoWaitsForPersistence(t *testing.T) {
	// Under LightWSP, at the moment an Io emits, every store that
	// program-order-precedes it must already be in PM.
	prog := compiled(t, ioProg(8))
	sys, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	for !sys.Done() {
		sys.Tick()
		emitted := len(sys.Output)
		for i := 0; i < emitted; i++ {
			if got := sys.PM().Read(0x6000 + uint64(8*i)); got != uint64(i+1) {
				t.Fatalf("Io %d emitted before its preceding store persisted (PM=%d)", i+1, got)
			}
		}
	}
	if len(sys.Output) != 8 {
		t.Fatalf("output = %v", sys.Output)
	}
}

func TestIoRestartableAcrossFailure(t *testing.T) {
	// Crash mid-run: the combined output of the crashed run and the
	// recovered run must contain every value in order, with at most one
	// duplicated value at the crash point (at-least-once, restartable).
	//
	// This test drives NewRecoveredSystem directly from raw checkpoint
	// slots, bypassing the recovery runtime's recipe application — so it
	// compiles with pruning disabled (every live-out gets a real slot).
	// End-to-end recipe-based recovery is internal/core's territory.
	res, err := compiler.Compile(ioProg(12), compiler.Config{StoreThreshold: 32, MaxUnroll: 4, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	prog := res.Prog
	clean, err2 := NewSystem(prog, smallCfg(), lightScheme())
	if err2 != nil {
		t.Fatal(err2)
	}
	if !clean.Run(10_000_000) {
		t.Fatal("clean run did not complete")
	}
	total := clean.Stats.Cycles
	for frac := uint64(2); frac <= 5; frac++ {
		sys, err := NewSystem(prog, smallCfg(), lightScheme())
		if err != nil {
			t.Fatal(err)
		}
		sys.RunUntil(total / frac)
		rep := sys.PowerFail()
		// Resume from the persisted state.
		pcSlot := sys.PM().Read(ckptPCAddr(0))
		states := []ThreadState{{PC: isa.UnpackPC(pcSlot), SP: sys.PM().Read(ckptSPAddr(0))}}
		for r := 0; r < isa.NumRegs; r++ {
			states[0].Regs[r] = sys.PM().Read(ckptRegAddr(0, r))
		}
		rec, err := NewRecoveredSystem(prog, smallCfg(), lightScheme(), sys.PM(), states, rep.RegionCounter+1)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Run(10_000_000) {
			t.Fatal("recovered run did not complete")
		}
		combined := append(append([]uint64{}, sys.Output...), rec.Output...)
		// Must be a merge of 1..12 with at most one duplicate run at the
		// crash point: non-decreasing, covering every value.
		want := uint64(1)
		for _, v := range combined {
			switch {
			case v == want:
				want++
			case v == want-1:
				// the restarted Io re-emitted the crash-point value
			default:
				t.Fatalf("frac %d: output sequence broken at %d (want %d): %v",
					frac, v, want, combined)
			}
		}
		if want != 13 {
			t.Fatalf("frac %d: values missing, reached %d: %v", frac, want, combined)
		}
	}
}

// Checkpoint-array address helpers for tests (thin wrappers over mem).
func ckptPCAddr(tid int) uint64         { return mem.CkptAddr(tid, mem.CkptSlotPC) }
func ckptSPAddr(tid int) uint64         { return mem.CkptAddr(tid, mem.CkptSlotSP) }
func ckptRegAddr(tid int, r int) uint64 { return mem.CkptAddr(tid, r) }
