// Package machine is the cycle-stepped architectural simulator: out-of-order
// -approximating cores (in-order issue, non-blocking loads, store buffer),
// an L1/L2/DRAM-cache/PM hierarchy with the Table I configuration, per-core
// persist paths and two memory controllers with write pending queues. The
// persistence scheme — LightWSP, Capri, PPA, cWSP, an ideal PSP, or the
// non-persistent baseline — is a parameter (Scheme), so every evaluation in
// the paper runs the same machine with different persistence plumbing.
//
// The machine is deterministic: all state advances on a virtual cycle
// counter, cores tick in index order, and no wall-clock time or map
// iteration order reaches simulation results. This matters in Go, where GC
// pauses would otherwise contaminate an instrumentation-based model.
package machine

import (
	"lightwsp/internal/mem"
)

// Config mirrors Table I of the paper, converted to cycles at 2 GHz
// (1 cycle = 0.5 ns).
type Config struct {
	// Cores is the number of cores (one hardware thread each).
	Cores int
	// IssueWidth is instructions issued per cycle (4-wide OoO).
	IssueWidth int
	// SBEntries is the store-buffer capacity (Table I SQ: 56).
	SBEntries int

	// L1Size/L1Ways/L1Lat describe the per-core L1 data cache
	// (64 KB, 8-way, 4 cycles).
	L1Size, L1Ways int
	L1Lat          uint64
	// L2Size/L2Ways/L2Lat describe the shared L2 (16 MB, 16-way, 44c).
	L2Size, L2Ways int
	L2Lat          uint64

	// DRAMCacheSize is the per-system DRAM cache capacity (4 GB),
	// split across controllers; DRAMLat its access latency (~30 ns).
	DRAMCacheSize uint64
	DRAMLat       uint64

	// PMReadLat and PMWriteLat are Optane latencies (175 ns / 90 ns).
	PMReadLat, PMWriteLat uint64
	// PMWriteInterval is the cycles between successive 8-byte WPQ→PM
	// writes per controller: the PM write-bandwidth model. The default
	// of 1 (16 GB/s per controller) reflects the write combining a WPQ
	// performs when flushing adjacent 8-byte entries of a region.
	PMWriteInterval uint64

	// NumMCs is the number of memory controllers (2).
	NumMCs int
	// WPQEntries is the write pending queue capacity per MC (64 × 8 B).
	WPQEntries int
	// FEBEntries is the front-end buffer capacity per core (64).
	FEBEntries int

	// PersistBytesPerCredit and PersistCreditCycles set the per-core
	// persist-path bandwidth: PersistBytesPerCredit bytes of credit every
	// PersistCreditCycles cycles. (2, 1) models the paper's 4 GB/s at
	// 2 GHz; (1, 2) models 1 GB/s (Figure 15's sweep).
	PersistBytesPerCredit int
	PersistCreditCycles   uint64
	// PersistLatNear/PersistLatFar are the core→MC transit latencies in
	// cycles; their difference is the NUMA skew of §II-B. The paper's
	// worst case is 20 ns = 40 cycles.
	PersistLatNear, PersistLatFar uint64
	// ChannelCap bounds in-flight entries per (core, MC) channel.
	ChannelCap int

	// NoCLat is the boundary/ACK message latency between MCs.
	NoCLat uint64

	// RetryTimeout is the cycles a controller waits for missing bdry-ACKs
	// before retransmitting a boundary replay (reliable delivery under an
	// attached fault injector; successive rounds back off exponentially).
	// 0 means the default.
	RetryTimeout uint64
	// RetryBudget is the retransmission rounds before the silent peer is
	// declared degraded; replaying continues at maximum backoff after.
	// 0 means the default.
	RetryBudget int
	// DegradeDeadline is the cycles a controller may stay stuck
	// (fault-injected) before the machine declares it degraded and it
	// falls back to undo-logged eager persistence. 0 means the default.
	DegradeDeadline uint64
	// BrokenDupAcks (test-only) disables idempotent duplicate-ACK
	// handling in every WPQ, re-creating the pre-reliable-delivery
	// counting bug so the crash-fuzzing campaign can prove it catches it.
	BrokenDupAcks bool

	// NUMAExtra is the extra load latency for accessing the far
	// controller.
	NUMAExtra uint64

	// OOOWindow is the load latency (cycles) the out-of-order window can
	// hide behind independent work: the scoreboard charges a consumer
	// max(1, latency − OOOWindow). Table I's 224-entry ROB hides on the
	// order of an L2 hit.
	OOOWindow uint64

	// VictimPolicy selects the L1 eviction policy under buffer snooping
	// (§IV-G, Figure 13); StaleLoad disables snooping (Figure 14).
	VictimPolicy mem.VictimPolicy

	// Threads is the number of software threads; each runs on its own
	// core, so Threads ≤ Cores.
	Threads int
}

// retryTimeout resolves the reliable-delivery timeout (default 80 cycles:
// several NoC round trips, so a fault-free exchange never trips it).
func (c Config) retryTimeout() uint64 {
	if c.RetryTimeout == 0 {
		return 80
	}
	return c.RetryTimeout
}

// retryBudget resolves the retransmission budget before degradation.
func (c Config) retryBudget() int {
	if c.RetryBudget == 0 {
		return 6
	}
	return c.RetryBudget
}

// degradeDeadline resolves the stuck-controller degradation deadline.
func (c Config) degradeDeadline() uint64 {
	if c.DegradeDeadline == 0 {
		return 1200
	}
	return c.DegradeDeadline
}

// DefaultConfig returns the Table I system.
func DefaultConfig() Config {
	return Config{
		Cores:      8,
		IssueWidth: 4,
		SBEntries:  56,

		L1Size: 64 << 10, L1Ways: 8, L1Lat: 4,
		L2Size: 16 << 20, L2Ways: 16, L2Lat: 44,

		DRAMCacheSize: 4 << 30, DRAMLat: 60,
		PMReadLat: 350, PMWriteLat: 180,
		PMWriteInterval: 1,

		NumMCs:     2,
		WPQEntries: 64,
		FEBEntries: 64,

		PersistBytesPerCredit: 2,
		PersistCreditCycles:   1,
		PersistLatNear:        20,
		PersistLatFar:         40,
		ChannelCap:            16,

		NoCLat:    10,
		NUMAExtra: 10,
		OOOWindow: 40,

		RetryTimeout:    80,
		RetryBudget:     6,
		DegradeDeadline: 1200,

		VictimPolicy: mem.FullVictim,
		Threads:      1,
	}
}

// Scheme describes a persistence mechanism's hardware behaviour. Predefined
// schemes live in internal/core (LightWSP) and internal/baseline (Capri,
// PPA, cWSP, PSP-Ideal, the naive sfence variant, and the non-persistent
// baseline).
type Scheme struct {
	// Name identifies the scheme in reports.
	Name string
	// Instrumented means the program carries compiler-inserted region
	// boundaries and checkpoint stores and the machine maintains region
	// IDs.
	Instrumented bool
	// StripCheckpoints removes CkptStore instructions at load time and
	// shrinks boundaries to a single PC store (cWSP: idempotent regions
	// need no register checkpoints).
	StripCheckpoints bool
	// UsePersistPath routes every store through the non-temporal persist
	// path into the WPQ.
	UsePersistPath bool
	// EntryBytes is the persist-path traffic per store: 8 for LightWSP's
	// word-granular path, 64 for Capri's cacheline flushes.
	EntryBytes int
	// GatedWPQ enables LightWSP's LRPO protocol (region-gated flushing);
	// otherwise the WPQ flushes FIFO.
	GatedWPQ bool
	// StallAtBoundary stalls the core at each region boundary until all
	// its outstanding persists have reached PM (Capri's stop-the-path
	// multi-MC ordering; the naive-sfence ablation).
	StallAtBoundary bool
	// HWRegionStores, when non-zero, ends a hardware-delineated region
	// every N stores and stalls until outstanding persists drain — PPA's
	// PRF-pressure-driven implicit regions with eager write-back.
	HWRegionStores int
	// PMWriteExtra is added to every WPQ→PM write: cWSP's in-line undo
	// logging cost.
	PMWriteExtra uint64
	// UseDRAMCache enables the DRAM cache (LLC) in front of PM. Partial-
	// system persistence cannot have it (§I); whole-system schemes can.
	UseDRAMCache bool
}
