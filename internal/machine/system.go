package machine

import (
	"context"
	"fmt"

	"lightwsp/internal/faults"
	"lightwsp/internal/isa"
	"lightwsp/internal/mem"
	"lightwsp/internal/noc"
	"lightwsp/internal/persistpath"
	"lightwsp/internal/probe"
	"lightwsp/internal/trace"
	"lightwsp/internal/wpq"
	"lightwsp/internal/wsperr"
)

// mc is one memory controller: its DRAM-cache slice and its WPQ.
type mc struct {
	id   int
	dram *mem.DRAMCache
	q    *wpq.Queue
}

// System is the whole machine.
type System struct {
	cfg    Config
	scheme Scheme
	prog   *isa.Program

	// arch is the architectural memory (what the cores observe); pm is
	// the persisted image — the only state that survives power failure.
	arch *mem.Image
	pm   *mem.Image

	cores []*Core
	l2    *mem.Cache
	mcs   []*mc
	net   *noc.Network

	cycle         uint64
	regionCounter uint64

	// inj, when set, is the persist-fabric fault injector (SetFaultInjector);
	// nil keeps every fault consultation to a single branch.
	inj *faults.Injector
	// parked holds NoC messages addressed to a stuck controller, delivered
	// in arrival order once its window ends (they are MC↔MC and
	// battery-backed, so they are delayed, never lost).
	parked []noc.Message
	// stuckSince[mc] is the cycle the controller was first observed stuck
	// (0 = not stuck); degradedMC[mc] marks controllers declared degraded.
	stuckSince []uint64
	degradedMC []bool

	// ptrace, when set, records every WPQ→PM write (SetPersistTrace).
	ptrace *trace.PersistTrace

	// probe, when set, receives cycle-level instrumentation events
	// (SetProbeSink); nil keeps every emit site to a single branch.
	probe probe.Sink

	// recovered marks a machine booted from a crash image, so an attached
	// sink gets the recovery milestone.
	recovered bool

	statsFinal bool // finalizeStats already folded component counters in

	// Done bookkeeping: live counters maintained at every state transition
	// so completion is an O(1) check instead of a scan of every component.
	runningCores int // active cores not yet halted
	sbPending    int // store-buffer entries across all cores
	pathPending  int // persist-path entries (front-end buffers + channels)
	wpqPending   int // data entries across all WPQs

	// Event/epoch stepper state (fastpath.go).
	naiveStep bool   // true = reference per-cycle stepper
	ffSkipped uint64 // cycles fast-forwarded past
	ffJumps   uint64 // fast-forward jumps taken
	ffSkew    uint64 // test-only: offsets next-events to break the contract

	// Output is the machine's output device: the values emitted by Io
	// instructions, in emission order (§IV-A irrevocable operations).
	Output []uint64

	Stats Stats
}

// NewSystem builds and boots a machine running prog from the beginning:
// every thread starts at the program entry with its thread ID in ArgReg(0)
// and the thread count in ArgReg(1), and — for instrumented schemes — its
// initial state written to the checkpoint array (the boot-time equivalent of
// the OS initializing the recovery metadata).
func NewSystem(prog *isa.Program, cfg Config, scheme Scheme) (*System, error) {
	s, err := newBare(prog, cfg, scheme, 1)
	if err != nil {
		return nil, err
	}
	for t := 0; t < cfg.Threads; t++ {
		c := s.cores[t]
		c.active = true
		s.runningCores++
		c.pc = isa.PC{Func: prog.Entry}
		c.regs[isa.ArgReg(0)] = uint64(t)
		c.regs[isa.ArgReg(1)] = uint64(cfg.Threads)
		c.sp = mem.StackTop(t)
		if scheme.Instrumented {
			c.region = s.nextRegion()
			s.initCheckpoint(c)
		}
	}
	return s, nil
}

// NewRecoveredSystem builds a machine resuming from a persisted image:
// caches are cold, the architectural memory is the PM image, and each
// thread starts from the given recovery state. nextRegion seeds the global
// region counter above every persisted region ID.
func NewRecoveredSystem(prog *isa.Program, cfg Config, scheme Scheme, pmImage *mem.Image, states []ThreadState, nextRegion uint64) (*System, error) {
	if len(states) != cfg.Threads {
		return nil, fmt.Errorf("machine: %d thread states for %d threads", len(states), cfg.Threads)
	}
	// The recovered controllers' flush IDs must start at the first region
	// the recovered threads will allocate — in real hardware the flush ID
	// is a persistent register and the region counter is restored from it
	// (§IV-F footnote 7).
	s, err := newBare(prog, cfg, scheme, nextRegion)
	if err != nil {
		return nil, err
	}
	s.pm = pmImage
	s.arch = pmImage.Clone()
	s.recovered = true
	for t := 0; t < cfg.Threads; t++ {
		c := s.cores[t]
		c.active = true
		s.runningCores++
		c.pc = states[t].PC
		c.regs = states[t].Regs
		c.sp = states[t].SP
		if scheme.Instrumented {
			c.region = s.nextRegion()
			s.initCheckpoint(c)
		}
	}
	return s, nil
}

func newBare(prog *isa.Program, cfg Config, scheme Scheme, firstRegion uint64) (*System, error) {
	if cfg.Threads < 1 || cfg.Threads > cfg.Cores {
		return nil, fmt.Errorf("machine: %d threads on %d cores", cfg.Threads, cfg.Cores)
	}
	if cfg.Cores > mem.MaxThreads {
		return nil, fmt.Errorf("machine: %d cores exceeds layout maximum %d", cfg.Cores, mem.MaxThreads)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if scheme.StripCheckpoints {
		prog = stripCheckpoints(prog)
	}
	s := &System{
		cfg:           cfg,
		scheme:        scheme,
		prog:          prog,
		arch:          mem.NewImage(),
		pm:            mem.NewImage(),
		l2:            mem.NewCache(cfg.L2Size, cfg.L2Ways),
		net:           noc.New(cfg.NoCLat),
		regionCounter: firstRegion - 1,
	}
	mode := wpq.FIFO
	if scheme.GatedWPQ {
		mode = wpq.Gated
	}
	for m := 0; m < cfg.NumMCs; m++ {
		m := m
		ctrl := &mc{
			id:   m,
			dram: mem.NewDRAMCache(cfg.DRAMCacheSize / uint64(cfg.NumMCs)),
		}
		ctrl.q = wpq.New(wpq.Config{
			ID: m, NumMCs: cfg.NumMCs, Entries: cfg.WPQEntries, Mode: mode,
			PMWriteInterval: cfg.PMWriteInterval, PMWriteExtra: scheme.PMWriteExtra,
			FirstRegion:  firstRegion,
			RetryTimeout: cfg.retryTimeout(), RetryBudget: cfg.retryBudget(),
			BrokenDupAcks: cfg.BrokenDupAcks,
		}, wpq.Sinks{
			PMWrite:       s.pmWrite,
			PMRead:        func(a uint64) uint64 { return s.pm.Read(a) },
			Send:          func(msg noc.Message) { s.net.Send(s.cycle, msg) },
			OnFlush:       func(e wpq.Entry) { s.onFlush(m, e) },
			OnPeerTimeout: s.onPeerTimeout,
		})
		s.mcs = append(s.mcs, ctrl)
	}
	s.stuckSince = make([]uint64, cfg.NumMCs)
	s.degradedMC = make([]bool, cfg.NumMCs)
	for i := 0; i < cfg.Cores; i++ {
		c := &Core{id: i, sys: s, l1: mem.NewCache(cfg.L1Size, cfg.L1Ways)}
		if scheme.UsePersistPath {
			i := i
			c.path = persistpath.New(persistpath.Config{
				FEBEntries:     cfg.FEBEntries,
				BytesPerCredit: cfg.PersistBytesPerCredit,
				CreditCycles:   cfg.PersistCreditCycles,
				ChannelCap:     cfg.ChannelCap,
				NumMCs:         cfg.NumMCs,
				Latency: func(m int) uint64 {
					if m == i%cfg.NumMCs {
						return cfg.PersistLatNear
					}
					return cfg.PersistLatFar
				},
				MCOf: s.mcOf,
			})
		}
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// stripCheckpoints removes CkptStore instructions (cWSP mode: idempotent
// regions do not checkpoint registers).
func stripCheckpoints(p *isa.Program) *isa.Program {
	q := p.Clone()
	for _, f := range q.Funcs {
		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op != isa.CkptStore {
					out = append(out, in)
				}
			}
			b.Instrs = out
		}
	}
	return q
}

// initCheckpoint writes a thread's boot/recovery state into its checkpoint
// array in both images — the OS-maintained starting recovery point.
func (s *System) initCheckpoint(c *Core) {
	for r := 0; r < isa.NumRegs; r++ {
		a := mem.CkptAddr(c.id, r)
		s.arch.Write(a, c.regs[r])
		s.pm.Write(a, c.regs[r])
	}
	pcA, spA := mem.CkptAddr(c.id, mem.CkptSlotPC), mem.CkptAddr(c.id, mem.CkptSlotSP)
	s.arch.Write(pcA, c.pc.Pack())
	s.pm.Write(pcA, c.pc.Pack())
	s.arch.Write(spA, c.sp)
	s.pm.Write(spA, c.sp)
}

// mcOf maps an address to its home controller (line interleaving).
func (s *System) mcOf(addr uint64) int {
	return int(addr / mem.LineSize % uint64(s.cfg.NumMCs))
}

func (s *System) nextRegion() uint64 {
	s.regionCounter++
	return s.regionCounter
}

// NextRegionID returns the next region ID the counter would hand out.
func (s *System) NextRegionID() uint64 { return s.regionCounter + 1 }

func (s *System) pmWrite(addr, val uint64) { s.pm.Write(addr, val) }

func (s *System) onFlush(mcID int, e wpq.Entry) {
	s.wpqPending--
	s.Stats.PersistFlushed++
	s.Stats.PersistResidency += s.cycle - e.Born
	if e.Core >= 0 && e.Core < len(s.cores) {
		s.cores[e.Core].outstanding--
	}
	if s.probe != nil {
		// The entry is already off the queue; +1 restores the occupancy
		// the flush sampled.
		s.probe.Emit(probe.Event{Kind: probe.WPQFlush, Cycle: s.cycle,
			Core: e.Core, MC: mcID, Region: e.Region, Addr: e.Addr,
			Arg: uint64(s.mcs[mcID].q.Len() + 1)})
	}
	if s.ptrace != nil {
		s.ptrace.Record(trace.PMWrite{
			Cycle: s.cycle, MC: mcID, Addr: e.Addr, Val: e.Val,
			Region: e.Region, Core: e.Core, Boundary: e.Boundary,
		})
	}
}

// SetPersistTrace attaches a persist-order trace; every subsequent WPQ→PM
// write is recorded. Pass nil to detach.
func (s *System) SetPersistTrace(t *trace.PersistTrace) { s.ptrace = t }

// SetFaultInjector attaches a persist-fabric fault injector: the NoC starts
// consulting it on every message and the WPQs arm their reliable-delivery
// retransmission machinery. Attach before Run. A nil injector (the default)
// leaves the fault-free fast paths untouched — the simulation is then
// decision-for-decision identical to a machine that never saw this call.
func (s *System) SetFaultInjector(inj *faults.Injector) {
	s.inj = inj
	s.net.SetInjector(inj)
	if inj == nil {
		return
	}
	for _, m := range s.mcs {
		m.q.EnableRetry()
	}
}

// FaultInjector returns the attached injector (nil when fault-free).
func (s *System) FaultInjector() *faults.Injector { return s.inj }

// Degraded reports whether controller mc was declared degraded.
func (s *System) Degraded(mc int) bool { return s.degradedMC[mc] }

// onPeerTimeout handles a WPQ's report that a peer stayed silent through
// the whole retry budget: the peer is declared degraded.
func (s *System) onPeerTimeout(peer int) { s.degradeMC(peer, 1) }

// degradeMC declares a controller degraded (idempotently): its WPQ falls
// back to undo-logged eager persistence so it can work off its backlog
// without global boundary confirmation, preserving all-or-nothing region
// persistence instead of wedging the persist path. Arg 0 = stuck past the
// deadline, 1 = silent through a peer's retry budget.
func (s *System) degradeMC(id int, cause uint64) {
	if s.degradedMC[id] {
		return
	}
	s.degradedMC[id] = true
	s.mcs[id].q.SetDegraded()
	s.Stats.MCDegradations++
	if s.probe != nil {
		s.probe.Emit(probe.Event{Kind: probe.MCDegraded, Cycle: s.cycle,
			Core: -1, MC: id, Region: s.mcs[id].q.FlushID(), Arg: cause})
	}
}

// tickFaults services the stuck-controller model: releases messages parked
// at controllers whose window ended, and degrades controllers stuck past
// the deadline. Called only with an injector attached.
func (s *System) tickFaults(now uint64) {
	if len(s.parked) > 0 {
		keep := s.parked[:0]
		for _, m := range s.parked {
			if s.inj.MCStuck(now, m.To) {
				keep = append(keep, m)
			} else {
				s.deliverMsg(now, m)
			}
		}
		s.parked = keep
	}
	for id := range s.mcs {
		if s.inj.MCStuck(now, id) {
			if s.stuckSince[id] == 0 {
				s.stuckSince[id] = now
			}
			if !s.degradedMC[id] && now-s.stuckSince[id] >= s.cfg.degradeDeadline() {
				s.degradeMC(id, 0)
			}
		} else {
			s.stuckSince[id] = 0
		}
	}
}

// SetProbeSink attaches a cycle-level instrumentation sink to the machine
// and all its components; pass nil to detach. Attach before Run: regions
// already open when the sink attaches are implied open at the current
// cycle's start (consumers treat a close without an open as opened at 0,
// which is exactly when NewSystem allocated the boot regions). Attaching
// to a recovered machine emits the recovery milestone.
func (s *System) SetProbeSink(sink probe.Sink) {
	s.probe = sink
	for _, c := range s.cores {
		if c.path != nil {
			c.path.SetProbe(sink)
		}
	}
	for _, m := range s.mcs {
		m.q.SetProbe(sink)
	}
	if sink != nil && s.recovered {
		sink.Emit(probe.Event{Kind: probe.RecoveryBoot, Cycle: s.cycle,
			Core: -1, MC: -1, Arg: s.regionCounter})
	}
}

// Cycle returns the current cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// Arch returns the architectural memory image.
func (s *System) Arch() *mem.Image { return s.arch }

// PM returns the persisted image.
func (s *System) PM() *mem.Image { return s.pm }

// Prog returns the program the machine runs (after any load-time stripping).
func (s *System) Prog() *isa.Program { return s.prog }

// Scheme returns the persistence scheme.
func (s *System) SchemeInfo() Scheme { return s.scheme }

// Done reports whether execution and persistence both finished: all threads
// halted, every store buffer and persist path drained, every WPQ empty, no
// in-flight or parked messages. O(1): the counters are maintained at every
// state transition (scanDone is the reference scan, cross-checked in tests).
func (s *System) Done() bool {
	return s.runningCores == 0 && s.sbPending == 0 && s.pathPending == 0 &&
		s.wpqPending == 0 && s.net.Pending() == 0 && len(s.parked) == 0
}

// scanDone is the reference completion check: a full scan of every
// component. Done must agree with it at every cycle; tests enforce that.
func (s *System) scanDone() bool {
	for _, c := range s.cores {
		if c.active && (!c.halted || len(c.sb) != 0) {
			return false
		}
		if c.path != nil && !c.path.Empty() {
			return false
		}
	}
	for _, m := range s.mcs {
		if !m.q.Empty() {
			return false
		}
	}
	return s.net.Pending() == 0 && len(s.parked) == 0
}

// Tick advances the machine one cycle.
func (s *System) Tick() {
	s.cycle++
	now := s.cycle
	for _, c := range s.cores {
		c.tick(now)
	}
	for _, c := range s.cores {
		if c.path == nil {
			continue
		}
		// The path mutates its own occupancy (boundary dispatch replicates
		// one buffer entry into every channel; deliveries pop); fold the
		// difference into the machine-wide counter.
		before := c.path.Pending()
		c.path.Tick(now)
		c.path.DeliverReady(now, s.sink)
		s.pathPending += c.path.Pending() - before
	}
	if s.inj != nil {
		s.tickFaults(now)
	}
	for _, m := range s.net.Deliver(now) {
		if s.inj != nil && s.inj.MCStuck(now, m.To) {
			// A stuck controller ingests nothing; MC↔MC messages are
			// battery-backed, so they wait instead of being lost.
			s.parked = append(s.parked, m)
			continue
		}
		s.deliverMsg(now, m)
	}
	for _, m := range s.mcs {
		if s.inj != nil && s.inj.MCStuck(now, m.id) {
			continue // a stuck controller makes no progress
		}
		m.q.Tick(now)
	}
}

// deliverMsg hands one NoC message to its controller, bracketed with the
// instrumentation events the probe layer expects.
func (s *System) deliverMsg(now uint64, m noc.Message) {
	q := s.mcs[m.To].q
	if s.probe == nil {
		q.OnMessage(now, m)
		return
	}
	if m.Kind == noc.MsgBdryAck {
		s.probe.Emit(probe.Event{Kind: probe.BoundaryAck, Cycle: now,
			Core: -1, MC: m.To, Region: m.Region})
	}
	wasOverflow := q.InOverflow()
	q.OnMessage(now, m)
	if wasOverflow && !q.InOverflow() {
		s.probe.Emit(probe.Event{Kind: probe.WPQOverflowExit, Cycle: now,
			Core: -1, MC: m.To, Region: m.Region})
	}
}

// sink delivers a persist-path entry to its controller.
func (s *System) sink(m int, e persistpath.Entry) bool {
	if s.inj != nil && s.inj.MCStuck(s.cycle, m) {
		// A stuck controller accepts nothing; the persist path holds the
		// entry and retries, so nothing is lost — the boundary-knowledge
		// invariant (knowledge only via a controller's own channel, behind
		// all of its region's stores) survives the window.
		return false
	}
	q := s.mcs[m].q
	if s.probe == nil {
		if e.Control {
			// Boundary replicas at non-home controllers carry no data;
			// only the home copy occupies a WPQ slot and settles the
			// core's outstanding count when it flushes.
			q.AcceptControl(e.Region)
			return true
		}
		ok := q.Accept(wpq.Entry{
			Addr: e.Addr, Val: e.Val, Region: e.Region,
			Boundary: e.Boundary, Core: e.Core, Born: e.Born,
		})
		if ok {
			s.wpqPending++
		}
		return ok
	}
	// Instrumented path: same delivery, bracketed so WPQ enqueues and the
	// overflow-escape transitions (which happen inside Accept and the
	// boundary bookkeeping) emit with the global cycle attached.
	wasOverflow := q.InOverflow()
	var ok bool
	if e.Control {
		q.AcceptControl(e.Region)
		ok = true
	} else {
		ok = q.Accept(wpq.Entry{
			Addr: e.Addr, Val: e.Val, Region: e.Region,
			Boundary: e.Boundary, Core: e.Core, Born: e.Born,
		})
		if ok {
			s.wpqPending++
			s.probe.Emit(probe.Event{Kind: probe.WPQEnqueue, Cycle: s.cycle,
				Core: e.Core, MC: m, Region: e.Region, Addr: e.Addr,
				Arg: uint64(q.Len())})
		}
	}
	switch {
	case !wasOverflow && q.InOverflow():
		s.probe.Emit(probe.Event{Kind: probe.WPQOverflowEnter, Cycle: s.cycle,
			Core: -1, MC: m, Region: q.FlushID()})
	case wasOverflow && !q.InOverflow():
		s.probe.Emit(probe.Event{Kind: probe.WPQOverflowExit, Cycle: s.cycle,
			Core: -1, MC: m, Region: e.Region})
	}
	return ok
}

// Run advances the machine until Done or maxCycles, returning whether the
// run completed.
func (s *System) Run(maxCycles uint64) bool {
	return s.RunContext(context.Background(), maxCycles) == nil
}

// ctxCheckBatch is how many cycles RunContext and RunUntilContext advance
// between context polls. Cancellation is therefore honored at cycle-batch
// granularity: cheap enough to be invisible on the hot loop, prompt enough
// (a batch simulates in microseconds) for request deadlines.
const ctxCheckBatch = 4096

// RunContext advances the machine until Done, the cycle budget, or ctx
// cancellation, whichever comes first. It returns nil when the run completed,
// an error wrapping wsperr.ErrCanceled when the context ended first, and an
// error wrapping wsperr.ErrWPQOverflow (a controller was wedged in the
// deadlock-escape state when the budget ran out) or wsperr.ErrCyclesExceeded
// otherwise. Context cancellation is checked every ctxCheckBatch cycles.
func (s *System) RunContext(ctx context.Context, maxCycles uint64) error {
	done, err := s.runLoop(ctx, maxCycles)
	s.Stats.Cycles = s.cycle
	if err != nil {
		return err
	}
	if !done {
		return s.budgetErr(maxCycles)
	}
	s.finalizeStats()
	return nil
}

// budgetErr classifies a blown cycle budget: a controller stuck in the
// overflow-escape state means the persist fabric wedged, not the program.
func (s *System) budgetErr(maxCycles uint64) error {
	if s.AnyWPQOverflow() {
		return fmt.Errorf("machine: %w after %d cycles", wsperr.ErrWPQOverflow, maxCycles)
	}
	return fmt.Errorf("machine: %w (%d cycles)", wsperr.ErrCyclesExceeded, maxCycles)
}

// AnyWPQOverflow reports whether any controller is currently in the §IV-D
// deadlock-escape overflow state.
func (s *System) AnyWPQOverflow() bool {
	for _, m := range s.mcs {
		if m.q.InOverflow() {
			return true
		}
	}
	return false
}

// RunUntil advances the machine to the given cycle (or completion),
// returning whether it is Done.
func (s *System) RunUntil(cycle uint64) bool {
	done, _ := s.RunUntilContext(context.Background(), cycle)
	return done
}

// RunUntilContext advances the machine to the given cycle, completion, or
// ctx cancellation. It returns (true, nil) when the machine is Done,
// (false, nil) when the target cycle was reached first, and (false, err
// wrapping wsperr.ErrCanceled) when the context ended first.
func (s *System) RunUntilContext(ctx context.Context, cycle uint64) (bool, error) {
	done, err := s.runLoop(ctx, cycle)
	s.Stats.Cycles = s.cycle
	if err != nil {
		return false, err
	}
	if done {
		s.finalizeStats()
	}
	return done, nil
}

func (s *System) finalizeStats() {
	if s.statsFinal {
		// Run/RunUntil and PowerFail can both reach here; component
		// counters must fold into Stats exactly once.
		return
	}
	s.statsFinal = true
	for _, c := range s.cores {
		s.Stats.L1Hits += c.l1.Hits
		s.Stats.L1Misses += c.l1.Misses
		if c.path != nil {
			s.Stats.SnoopConflicts += c.path.SnoopConflicts
			s.Stats.SnoopSearches += c.path.SnoopSearches
		}
	}
	s.Stats.L2Hits, s.Stats.L2Misses = s.l2.Hits, s.l2.Misses
	for _, m := range s.mcs {
		s.Stats.DRAMHits += m.dram.Hits
		s.Stats.DRAMMisses += m.dram.Misses
		s.Stats.WPQCAMHits += m.q.CAMHits
		s.Stats.WPQCAMSearches += m.q.CAMSearches
		s.Stats.WPQDeadlocks += m.q.Deadlocks
		s.Stats.WPQUndoWrites += m.q.UndoWrites
		s.Stats.WPQFullRejects += m.q.FullRejects
		s.Stats.WPQRetries += m.q.Retries
		s.Stats.WPQDupSuppressed += m.q.DupSuppressed
		if m.q.MaxOccupancy > s.Stats.WPQMaxOccupancy {
			s.Stats.WPQMaxOccupancy = m.q.MaxOccupancy
		}
	}
	if s.inj != nil {
		s.Stats.FaultDrops = s.inj.Drops
		s.Stats.FaultDups = s.inj.Dups
		s.Stats.FaultDelays = s.inj.Delays
		s.Stats.FaultReorders = s.inj.Reorders
	}
}

// loadLatency walks the hierarchy for a load and returns its latency,
// updating cache state and statistics (§IV-G snooping, §IV-H WPQ search).
func (s *System) loadLatency(c *Core, addr uint64) uint64 {
	line := mem.LineAddr(addr)
	if c.l1.Lookup(line, false) {
		return s.cfg.L1Lat
	}
	lat := s.cfg.L1Lat
	res := c.l1.Fill(line, false, s.cfg.VictimPolicy, c.snoopFn())
	if res.Stalled {
		s.Stats.StallEviction++
	}
	if res.EvictedValid && res.EvictedDirty {
		s.l2.Lookup(res.Evicted, true) // dirty writeback touches L2
	}
	if s.l2.Lookup(line, false) {
		return lat + s.cfg.L2Lat
	}
	lat += s.cfg.L2Lat
	s.l2.Fill(line, false, mem.FullVictim, nil)

	m := s.mcOf(addr)
	if m != c.id%s.cfg.NumMCs {
		lat += s.cfg.NUMAExtra
	}

	// Stale-load mode (§IV-G, Figure 14): without buffer snooping, a miss
	// that reaches memory while the word is still on the persist path
	// fetches stale data and must be refetched once the store lands.
	if c.path != nil && s.cfg.VictimPolicy == mem.StaleLoad && c.path.ContainsAddr(addr) {
		s.Stats.StaleLoads++
		c.l1.Misses++ // the refetch
		lat += s.cfg.DRAMLat + s.cfg.PMReadLat
	}

	if s.scheme.UseDRAMCache {
		if s.mcs[m].dram.Access(line) {
			return lat + s.cfg.DRAMLat
		}
		lat += s.cfg.DRAMLat
	}

	// §IV-H: the controller searches the WPQ in parallel with the PM
	// load; a hit postpones the load until the entry flushes.
	if s.scheme.UsePersistPath && s.mcs[m].q.Search(addr) {
		lat += s.cfg.PMReadLat
	}
	return lat + s.cfg.PMReadLat
}

// DebugState renders internal machine state for test diagnostics.
func (s *System) DebugState() string {
	out := ""
	for _, c := range s.cores {
		if !c.active {
			continue
		}
		out += fmt.Sprintf("core%d halted=%v pc=%v region=%d sb=%d spinning=%v waitDrain=%v outstanding=%d",
			c.id, c.halted, c.pc, c.region, len(c.sb), c.spinning, c.waitDrain, c.outstanding)
		if c.path != nil {
			out += fmt.Sprintf(" feb=%d inflight=%d", c.path.FEBLen(), c.path.InFlight())
		}
		out += "\n"
	}
	for _, m := range s.mcs {
		out += m.q.String() + "\n"
	}
	out += fmt.Sprintf("net pending=%d regionCounter=%d\n", s.net.Pending(), s.regionCounter)
	return out
}
