package machine

import (
	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/probe"
)

// benchSystem builds the reference workload for the probe-overhead
// benchmarks: a two-thread instrumented store loop long enough that the
// per-cycle hot loop dominates setup.
func benchSystem(b *testing.B, sink probe.Sink) *System {
	b.Helper()
	res, err := compiler.Compile(storeProg(200, 0x1000), compiler.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := smallCfg()
	cfg.Threads = 2
	sys, err2 := NewSystem(res.Prog, cfg, lightScheme())
	if err2 != nil {
		b.Fatal(err2)
	}
	sys.SetProbeSink(sink)
	return sys
}

// BenchmarkRunNoSink is the reference: instrumented scheme, no probe sink
// attached — every emission site reduces to a single nil check. Compare
// against BenchmarkRunCounterSink to price the instrumentation; the nil-sink
// case must stay within noise (<2%) of the pre-probe simulator, which this
// pair demonstrates by bounding the full-sink cost itself.
func BenchmarkRunNoSink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := benchSystem(b, nil)
		b.StartTimer()
		if !sys.Run(10_000_000) {
			b.Fatal("run did not complete")
		}
	}
}

// BenchmarkRunCounterSink attaches the cheapest real consumer.
func BenchmarkRunCounterSink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := benchSystem(b, &probe.Counter{})
		b.StartTimer()
		if !sys.Run(10_000_000) {
			b.Fatal("run did not complete")
		}
	}
}

// BenchmarkRunTimelineSink attaches the heaviest consumer (event buffering).
func BenchmarkRunTimelineSink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := benchSystem(b, probe.NewTimeline(0))
		b.StartTimer()
		if !sys.Run(10_000_000) {
			b.Fatal("run did not complete")
		}
	}
}
