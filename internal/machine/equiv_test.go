package machine

import (
	"fmt"
	"reflect"
	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/faults"
	"lightwsp/internal/isa"
	"lightwsp/internal/workload"
)

// This file is the tentpole regression of the event/epoch stepper: the fast
// path must be byte-identical to the naive per-cycle reference over the full
// 38-workload evaluation matrix — same final PM image, same architectural
// memory, same statistics, same probe event stream (order, cycles and
// payloads) — including fault-injected and stuck-controller runs. The
// workloads are the real evaluation profiles under the experiment harness's
// scaled Table I configuration; only the iteration counts are trimmed so the
// matrix stays runnable inside the tier-1 suite (and further under -race).

// equivIters bounds a profile's outer-loop trip count for the matrix run.
func equivIters() int {
	if raceEnabled || testing.Short() {
		return 100
	}
	return 300
}

// scaledEquivConfig mirrors experiments.ScaledConfig + resolve (which cannot
// be imported here without a cycle): the Table I configuration with
// capacity-class parameters scaled 8× down and the profile's thread count.
func scaledEquivConfig(p workload.Profile) Config {
	cfg := DefaultConfig()
	cfg.L2Size = 2 << 20
	cfg.DRAMCacheSize = 512 << 20
	cfg.Threads = p.Threads
	if cfg.Threads > cfg.Cores {
		cfg.Cores = cfg.Threads
	}
	return cfg
}

// buildEquivProg builds and (for instrumented schemes) compiles one profile,
// with the §IV-A store-threshold default the harness uses.
func buildEquivProg(t *testing.T, p workload.Profile, cfg Config, sch Scheme) *isa.Program {
	t.Helper()
	prog, err := workload.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Instrumented {
		return prog
	}
	ccfg := compiler.Config{
		StoreThreshold: cfg.WPQEntries / 2,
		MaxUnroll:      compiler.DefaultConfig().MaxUnroll,
	}
	res, err := compiler.Compile(prog, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Prog
}

// equivPair builds, runs and compares the naive and fast steppers for one
// (profile, scheme, fault plan) cell, and returns the fast system for any
// extra assertions.
func equivPair(t *testing.T, p workload.Profile, sch Scheme, plan *faults.Plan, mut func(*Config)) *System {
	t.Helper()
	cfg := scaledEquivConfig(p)
	if mut != nil {
		mut(&cfg)
	}
	prog := buildEquivProg(t, p, cfg, sch)
	mk := func() *System {
		sys, err := NewSystem(prog, cfg, sch)
		if err != nil {
			t.Fatal(err)
		}
		if plan != nil {
			sys.SetFaultInjector(faults.New(*plan))
		}
		return sys
	}
	naive, fast, nh, fh := steppedPair(t, mk, 2_000_000_000)
	assertIdentical(t, naive, fast, nh, fh)
	return fast
}

// TestFastMatchesNaiveFullMatrix sweeps every evaluation profile under
// LightWSP and the non-persistent baseline. The aggregate must also show
// the fast path actually skipping work, or the whole exercise is a no-op.
func TestFastMatchesNaiveFullMatrix(t *testing.T) {
	schemes := []Scheme{lightScheme(), plainScheme()}
	type agg struct {
		skipped, cycles uint64
	}
	results := make(chan agg, len(workload.Profiles())*len(schemes))
	t.Run("matrix", func(t *testing.T) {
		for _, sch := range schemes {
			for _, p := range workload.Profiles() {
				p.Iterations = equivIters()
				p, sch := p, sch
				t.Run(fmt.Sprintf("%s/%s/%s", p.Suite, p.Name, sch.Name), func(t *testing.T) {
					t.Parallel()
					fast := equivPair(t, p, sch, nil, nil)
					sk, _ := fast.FastForwardStats()
					results <- agg{skipped: sk, cycles: fast.Stats.Cycles}
				})
			}
		}
	})
	close(results)
	var total agg
	for r := range results {
		total.skipped += r.skipped
		total.cycles += r.cycles
	}
	if total.cycles == 0 {
		t.Fatal("matrix ran no cycles")
	}
	if total.skipped == 0 {
		t.Fatal("fast path skipped nothing across the whole matrix")
	}
	t.Logf("matrix fast-forward ratio: %.1f%% of %d cycles",
		float64(total.skipped)/float64(total.cycles)*100, total.cycles)
}

// TestFastMatchesNaiveUnderFaults replays the matrix's byte-identical
// oracle under the fault gauntlet (drop/dup/delay/reorder), a degrading
// stuck-controller window, and a transient stuck window that ends before
// the degrade deadline — the regimes where the scheduler must reproduce
// retry timers, parked-message release and degradation edges exactly.
func TestFastMatchesNaiveUnderFaults(t *testing.T) {
	profiles := map[string]bool{"lbm": true, "intruder": true, "rb": true, "cg": true}
	plans := []struct {
		name string
		plan faults.Plan
		mut  func(*Config)
	}{
		{"gauntlet",
			faults.Plan{Seed: 3, DropPct: 25, DupPct: 10, DelayPct: 20, MaxDelay: 16, ReorderPct: 10},
			func(c *Config) { c.RetryTimeout = 40 }},
		{"stuck-degrade",
			faults.Plan{Seed: 5, StuckMC: 1, StuckFrom: 100, StuckFor: 1500},
			func(c *Config) { c.RetryTimeout = 40; c.DegradeDeadline = 150 }},
		{"stuck-transient",
			faults.Plan{Seed: 9, StuckMC: 0, StuckFrom: 200, StuckFor: 300},
			func(c *Config) { c.RetryTimeout = 60 }},
		{"gauntlet-stuck",
			faults.Plan{Seed: 11, DropPct: 15, DupPct: 10, DelayPct: 15, MaxDelay: 12,
				StuckMC: 1, StuckFrom: 150, StuckFor: 900},
			func(c *Config) { c.RetryTimeout = 40; c.DegradeDeadline = 200 }},
	}
	for _, p := range workload.Profiles() {
		if !profiles[p.Name] || p.Suite == workload.CPU2017 {
			continue
		}
		p.Iterations = equivIters()
		for _, tc := range plans {
			p, tc := p, tc
			t.Run(fmt.Sprintf("%s/%s/%s", p.Suite, p.Name, tc.name), func(t *testing.T) {
				t.Parallel()
				equivPair(t, p, lightScheme(), &tc.plan, tc.mut)
			})
		}
	}
}

// TestFastMatchesNaiveAfterFailure pins the crash protocol: cutting power at
// the same cycle on both steppers must drain to the same PM image and the
// same failure report. This is what keeps crashfuzz repro schedules valid
// under the fast path.
func TestFastMatchesNaiveAfterFailure(t *testing.T) {
	p, ok := workload.ByName(workload.WHISPER, "tatp")
	if !ok {
		t.Fatal("tatp profile missing")
	}
	p.Iterations = 80
	cfg := scaledEquivConfig(p)
	sch := lightScheme()
	prog := buildEquivProg(t, p, cfg, sch)

	ref, err := NewSystem(prog, cfg, sch)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetNaiveStepper(true)
	if !ref.Run(2_000_000_000) {
		t.Fatal("reference run did not complete")
	}
	total := ref.Stats.Cycles
	step := total / 6
	if step == 0 {
		step = 1
	}
	for cut := step; cut < total; cut += step {
		cut := cut
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			t.Parallel()
			run := func(naiveStep bool) (*System, FailureReport) {
				sys, err := NewSystem(prog, cfg, sch)
				if err != nil {
					t.Fatal(err)
				}
				sys.SetNaiveStepper(naiveStep)
				if sys.RunUntil(cut) {
					t.Fatalf("done before cut %d", cut)
				}
				if sys.Cycle() != cut {
					t.Fatalf("stopped at %d, want %d", sys.Cycle(), cut)
				}
				return sys, sys.PowerFail()
			}
			nSys, nRep := run(true)
			fSys, fRep := run(false)
			if nRep != fRep {
				t.Errorf("failure reports diverge:\n naive: %+v\n fast:  %+v", nRep, fRep)
			}
			if !nSys.PM().Equal(fSys.PM()) {
				t.Error("post-drain PM images diverge")
			}
			if !reflect.DeepEqual(nSys.Stats, fSys.Stats) {
				t.Errorf("post-drain stats diverge:\n naive: %+v\n fast:  %+v", nSys.Stats, fSys.Stats)
			}
		})
	}
}
