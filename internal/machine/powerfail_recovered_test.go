package machine

import (
	"testing"

	"lightwsp/internal/isa"
	"lightwsp/internal/mem"
	"lightwsp/internal/wpq"
)

// recoveredAt builds a recovered system over a boot-style crash image: thread
// state restored at the program entry, region counter seeded above the
// failed run's.
func recoveredAt(t *testing.T, prog *isa.Program, seed uint64) *System {
	t.Helper()
	pm := mem.NewImage()
	states := []ThreadState{{PC: isa.PC{Func: prog.Entry}, SP: mem.StackTop(0)}}
	sys, err := NewRecoveredSystem(prog, smallCfg(), lightScheme(), pm, states, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPowerFailOnRecoveredSystemAtCycleZero(t *testing.T) {
	// A power failure the instant recovery hands off — before the recovered
	// machine executes a single cycle — must behave exactly like a failure
	// at cycle 0 of a fresh machine: nothing to flush, nothing to discard,
	// and the crash image passes through untouched.
	prog := compiled(t, storeProg(10, 0x1000))
	sys := recoveredAt(t, prog, 500)
	before := sys.PM().Clone()
	rep := sys.PowerFail()
	if rep.Cycle != 0 {
		t.Fatalf("failure cycle = %d on an unticked recovered machine", rep.Cycle)
	}
	if rep.Discarded != 0 {
		t.Fatalf("discarded %d entries before any execution", rep.Discarded)
	}
	if rep.RegionCounter < 500 {
		t.Fatalf("region counter %d regressed below the recovery seed", rep.RegionCounter)
	}
	if !sys.PM().Equal(before) {
		t.Fatal("crash image changed by a zero-cycle failure")
	}
}

func TestPowerFailOnRecoveredSystemMidRun(t *testing.T) {
	// Recovery itself is just execution: a second failure mid-way through a
	// recovered run must obey the same prefix discipline as the first.
	prog := compiled(t, storeProg(40, 0x1000))
	sys := recoveredAt(t, prog, 500)
	sys.RunUntil(150)
	rep := sys.PowerFail()
	if rep.RegionCounter < 500 {
		t.Fatalf("region counter %d regressed below the recovery seed", rep.RegionCounter)
	}
	seenGap := false
	for i := 0; i < 40; i++ {
		v := sys.PM().Read(0x1000 + uint64(8*i))
		if v == 0 {
			seenGap = true
		} else if seenGap {
			t.Fatalf("store %d persisted after a gap (non-prefix) on a recovered machine", i)
		}
	}
}

func TestSecondPowerFailIsIdempotent(t *testing.T) {
	// The machine is dead after PowerFail; a second cut must change nothing
	// — no extra discards, no new persisted words, stable report.
	prog := compiled(t, storeProg(30, 0x1000))
	sys, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	sys.RunUntil(100)
	first := sys.PowerFail()
	img := sys.PM().Clone()
	second := sys.PowerFail()
	if second.Discarded != 0 {
		t.Fatalf("second failure discarded %d entries from a drained machine", second.Discarded)
	}
	if second.Cycle != first.Cycle || second.RegionCounter != first.RegionCounter {
		t.Fatalf("second report %+v disagrees with first %+v", second, first)
	}
	if !sys.PM().Equal(img) {
		t.Fatal("PM changed on the second power failure")
	}
}

// TestRecoveryWhileDegradedReplaysUndoLog crashes a machine whose controller
// 1 is degraded (undo-logged eager persistence active) at a point where the
// undo log still covers never-confirmed regions, and verifies the recovery
// sequence: wpq.RecoverUndo must roll the eager writes back BEFORE the
// recovered machine runs, restoring all-or-nothing region persistence (the
// prefix property); the recovered run then completes correctly.
func TestRecoveryWhileDegradedReplaysUndoLog(t *testing.T) {
	const stores = 40
	prog := compiled(t, storeProg(stores, 0x1000))
	crashed := func(cut uint64) *System {
		sys, err := NewSystem(prog, smallCfg(), lightScheme())
		if err != nil {
			t.Fatal(err)
		}
		// Degrade controller 1 from the start: every entry whose region is
		// not yet globally confirmed flushes eagerly with its pre-image
		// undo-logged, exactly the state a stuck window leaves behind.
		sys.degradeMC(1, 0)
		sys.RunUntil(cut)
		return sys
	}
	// Find a cut where controller 1's undo log survives the drain: some
	// eagerly-persisted region never got its boundary confirmed everywhere.
	var sys *System
	var rep FailureReport
	for cut := uint64(20); cut < 2000; cut += 7 {
		s := crashed(cut)
		r := s.PowerFail()
		if s.PM().Read(mem.UndoLogAddr(1, 0)) > 0 {
			sys, rep = s, r
			break
		}
	}
	if sys == nil {
		t.Fatal("no cut left a live undo log; degraded eager persistence never outran confirmation")
	}
	pm := sys.PM()

	// Recovery step 1: roll back the never-confirmed eager writes.
	rolled := 0
	for mc := 0; mc < smallCfg().NumMCs; mc++ {
		rolled += wpq.RecoverUndo(mc, pm.Read, func(a, v uint64) { pm.Write(a, v) })
	}
	if rolled == 0 {
		t.Fatal("live undo log rolled back zero records")
	}
	if pm.Read(mem.UndoLogAddr(1, 0)) != 0 {
		t.Fatal("undo log not invalidated by rollback")
	}
	// All-or-nothing is restored: the persisted stores are again a prefix.
	seenGap := false
	for i := 0; i < stores; i++ {
		v := pm.Read(0x1000 + uint64(8*i))
		if v == 0 {
			seenGap = true
		} else if seenGap {
			t.Fatalf("store %d persisted after a gap even after undo replay", i)
		}
	}

	// Recovery step 2: the recovered machine reruns and completes.
	states := []ThreadState{{PC: isa.PC{Func: prog.Entry}, SP: mem.StackTop(0)}}
	rec, err := NewRecoveredSystem(prog, smallCfg(), lightScheme(), pm, states, rep.RegionCounter+1)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Run(2_000_000) {
		t.Fatal("recovered run did not complete")
	}
	for i := 0; i < stores; i++ {
		if got := rec.PM().Read(0x1000 + uint64(8*i)); got != uint64(100+i) {
			t.Fatalf("recovered store %d = %d, want %d", i, got, 100+i)
		}
	}
}
