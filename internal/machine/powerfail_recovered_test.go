package machine

import (
	"testing"

	"lightwsp/internal/isa"
	"lightwsp/internal/mem"
)

// recoveredAt builds a recovered system over a boot-style crash image: thread
// state restored at the program entry, region counter seeded above the
// failed run's.
func recoveredAt(t *testing.T, prog *isa.Program, seed uint64) *System {
	t.Helper()
	pm := mem.NewImage()
	states := []ThreadState{{PC: isa.PC{Func: prog.Entry}, SP: mem.StackTop(0)}}
	sys, err := NewRecoveredSystem(prog, smallCfg(), lightScheme(), pm, states, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPowerFailOnRecoveredSystemAtCycleZero(t *testing.T) {
	// A power failure the instant recovery hands off — before the recovered
	// machine executes a single cycle — must behave exactly like a failure
	// at cycle 0 of a fresh machine: nothing to flush, nothing to discard,
	// and the crash image passes through untouched.
	prog := compiled(t, storeProg(10, 0x1000))
	sys := recoveredAt(t, prog, 500)
	before := sys.PM().Clone()
	rep := sys.PowerFail()
	if rep.Cycle != 0 {
		t.Fatalf("failure cycle = %d on an unticked recovered machine", rep.Cycle)
	}
	if rep.Discarded != 0 {
		t.Fatalf("discarded %d entries before any execution", rep.Discarded)
	}
	if rep.RegionCounter < 500 {
		t.Fatalf("region counter %d regressed below the recovery seed", rep.RegionCounter)
	}
	if !sys.PM().Equal(before) {
		t.Fatal("crash image changed by a zero-cycle failure")
	}
}

func TestPowerFailOnRecoveredSystemMidRun(t *testing.T) {
	// Recovery itself is just execution: a second failure mid-way through a
	// recovered run must obey the same prefix discipline as the first.
	prog := compiled(t, storeProg(40, 0x1000))
	sys := recoveredAt(t, prog, 500)
	sys.RunUntil(150)
	rep := sys.PowerFail()
	if rep.RegionCounter < 500 {
		t.Fatalf("region counter %d regressed below the recovery seed", rep.RegionCounter)
	}
	seenGap := false
	for i := 0; i < 40; i++ {
		v := sys.PM().Read(0x1000 + uint64(8*i))
		if v == 0 {
			seenGap = true
		} else if seenGap {
			t.Fatalf("store %d persisted after a gap (non-prefix) on a recovered machine", i)
		}
	}
}

func TestSecondPowerFailIsIdempotent(t *testing.T) {
	// The machine is dead after PowerFail; a second cut must change nothing
	// — no extra discards, no new persisted words, stable report.
	prog := compiled(t, storeProg(30, 0x1000))
	sys, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	sys.RunUntil(100)
	first := sys.PowerFail()
	img := sys.PM().Clone()
	second := sys.PowerFail()
	if second.Discarded != 0 {
		t.Fatalf("second failure discarded %d entries from a drained machine", second.Discarded)
	}
	if second.Cycle != first.Cycle || second.RegionCounter != first.RegionCounter {
		t.Fatalf("second report %+v disagrees with first %+v", second, first)
	}
	if !sys.PM().Equal(img) {
		t.Fatal("PM changed on the second power failure")
	}
}
