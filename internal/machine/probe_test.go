package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"lightwsp/internal/isa"
	"lightwsp/internal/probe"
)

// twoThreadCfg exercises both cores (and, via line interleaving, both MCs).
func twoThreadCfg() Config {
	cfg := smallCfg()
	cfg.Threads = 2
	return cfg
}

// probeRun executes a two-thread instrumented store workload with the given
// sink attached and returns the finished system.
func probeRun(t *testing.T, sink probe.Sink) *System {
	t.Helper()
	sys, err := NewSystem(compiled(t, storeProg(40, 0x1000)), twoThreadCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	sys.SetProbeSink(sink)
	if !sys.Run(10_000_000) {
		t.Fatal("run did not complete")
	}
	return sys
}

func TestProbeCountsProtocolEvents(t *testing.T) {
	ctr := &probe.Counter{}
	sys := probeRun(t, ctr)
	for _, k := range []probe.Kind{
		probe.RegionClose, probe.BoundaryBroadcast, probe.BoundaryAck,
		probe.WPQEnqueue, probe.WPQFlush,
	} {
		if ctr.ByKind[k] == 0 {
			t.Errorf("no %v events emitted", k)
		}
	}
	if got := ctr.ByKind[probe.RegionClose]; got != sys.Stats.RegionsClosed {
		t.Errorf("RegionClose events = %d, Stats.RegionsClosed = %d", got, sys.Stats.RegionsClosed)
	}
	if got := ctr.ByKind[probe.WPQFlush]; got != sys.Stats.PersistFlushed {
		t.Errorf("WPQFlush events = %d, Stats.PersistFlushed = %d", got, sys.Stats.PersistFlushed)
	}
}

func TestProbeSinkDoesNotPerturbSimulation(t *testing.T) {
	plain := probeRun(t, nil)
	probed := probeRun(t, &probe.Counter{})
	if plain.Stats != probed.Stats {
		t.Fatalf("stats diverge with a sink attached:\n%+v\n%+v", plain.Stats, probed.Stats)
	}
	if !plain.PM().Equal(probed.PM()) {
		t.Fatal("persisted images diverge with a sink attached")
	}
}

// TestProbeTimelineGoldenSchema is the golden check on the exported Chrome
// trace: a valid trace-event JSON document with at least one region slice and
// boundary instant on every core track and at least one WPQ-flush instant on
// every MC track, all tracks named via metadata events.
func TestProbeTimelineGoldenSchema(t *testing.T) {
	tl := probe.NewTimeline(0)
	sys := probeRun(t, tl)
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if doc.Metadata["dropped-events"] != float64(0) {
		t.Fatalf("dropped-events = %v, want 0", doc.Metadata["dropped-events"])
	}

	regionSlices := map[int]int{} // core -> count
	boundaries := map[int]int{}   // core -> count
	flushes := map[int]int{}      // mc -> count
	occupancy := map[int]int{}    // mc -> counter samples
	threadNames := map[string]bool{}
	processNames := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Name == "" {
			t.Fatalf("event with empty name: %+v", e)
		}
		switch e.Ph {
		case "X", "C":
		case "i":
			if e.S != "t" && e.S != "g" {
				t.Fatalf("instant %q has scope %q", e.Name, e.S)
			}
		case "M":
			switch e.Name {
			case "process_name":
				processNames[e.Pid] = e.Args["name"].(string)
			case "thread_name":
				threadNames[fmt.Sprintf("%d/%d", e.Pid, e.Tid)] = true
			}
		default:
			t.Fatalf("unexpected phase %q on %q", e.Ph, e.Name)
		}
		switch {
		case strings.HasPrefix(e.Name, "region ") && e.Ph == "X" && e.Pid == 1:
			regionSlices[e.Tid]++
			if e.Ts+e.Dur > sys.Stats.Cycles {
				t.Fatalf("region slice ends at %d, past cycle %d", e.Ts+e.Dur, sys.Stats.Cycles)
			}
		case strings.HasPrefix(e.Name, "boundary ") && e.Pid == 1:
			boundaries[e.Tid]++
		case e.Name == "wpq-flush" && e.Pid == 2:
			flushes[e.Tid]++
		case strings.HasPrefix(e.Name, "wpq") && e.Ph == "C" && e.Pid == 2:
			occupancy[e.Tid]++
		}
	}
	if processNames[1] != "cores" || processNames[2] != "memory controllers" {
		t.Fatalf("process names = %v", processNames)
	}
	for core := 0; core < 2; core++ {
		if regionSlices[core] == 0 {
			t.Errorf("core %d track has no region slice", core)
		}
		if boundaries[core] == 0 {
			t.Errorf("core %d track has no boundary instant", core)
		}
		if !threadNames[fmt.Sprintf("1/%d", core)] {
			t.Errorf("core %d track unnamed", core)
		}
	}
	for mc := 0; mc < 2; mc++ {
		if flushes[mc] == 0 {
			t.Errorf("mc %d track has no wpq-flush instant", mc)
		}
		if occupancy[mc] == 0 {
			t.Errorf("mc %d track has no occupancy counter", mc)
		}
		if !threadNames[fmt.Sprintf("2/%d", mc)] {
			t.Errorf("mc %d track unnamed", mc)
		}
	}
}

func TestProbePowerFailAndRecoveryMilestones(t *testing.T) {
	prog := compiled(t, storeProg(40, 0x1000))
	sys, err := NewSystem(prog, smallCfg(), lightScheme())
	if err != nil {
		t.Fatal(err)
	}
	ctr := &probe.Counter{}
	sys.SetProbeSink(ctr)
	sys.RunUntil(200)
	rep := sys.PowerFail()
	if ctr.ByKind[probe.PowerFailCut] != 1 {
		t.Fatalf("PowerFailCut events = %d", ctr.ByKind[probe.PowerFailCut])
	}
	if ctr.ByKind[probe.PowerFailDrained] != 1 {
		t.Fatalf("PowerFailDrained events = %d", ctr.ByKind[probe.PowerFailDrained])
	}

	states := []ThreadState{{PC: isa.UnpackPC(sys.PM().Read(ckptPCAddr(0))), SP: sys.PM().Read(ckptSPAddr(0))}}
	for r := 0; r < isa.NumRegs; r++ {
		states[0].Regs[r] = sys.PM().Read(ckptRegAddr(0, r))
	}
	rec, err := NewRecoveredSystem(prog, smallCfg(), lightScheme(), sys.PM(), states, rep.RegionCounter+1)
	if err != nil {
		t.Fatal(err)
	}
	rctr := &probe.Counter{}
	rec.SetProbeSink(rctr)
	if rctr.ByKind[probe.RecoveryBoot] != 1 {
		t.Fatalf("RecoveryBoot events = %d", rctr.ByKind[probe.RecoveryBoot])
	}
	// A fresh (non-recovered) system must not claim a recovery boot.
	if ctr.ByKind[probe.RecoveryBoot] != 0 {
		t.Fatalf("fresh system emitted RecoveryBoot")
	}
}
