// Package isa defines the register-machine intermediate representation that
// LightWSP compiles and the simulator executes.
//
// The machine is a 64-bit load/store architecture with 32 general-purpose
// registers, 8-byte memory words and structured control flow (functions made
// of basic blocks). It is deliberately small: it carries exactly the features
// the LightWSP compiler passes care about — stores, loads, calls, loops,
// fences and atomics — plus the two instructions the compiler itself inserts,
// region boundaries (Boundary) and live-out register checkpoints (CkptStore).
package isa

import "fmt"

// NumRegs is the number of architectural general-purpose registers.
// The checkpoint storage array (§IV-A, "Checkpoint Storage Management")
// reserves one 8-byte slot per architectural register, so this constant also
// fixes the checkpoint-array layout.
const NumRegs = 32

// Reg identifies a general-purpose register, r0 through r31.
type Reg uint8

// Calling convention registers. A Call uses ArgReg(0..NArgs-1) and defines
// RetReg; everything else is preserved across the call by convention (the
// compiler places a region boundary at every call site anyway, so liveness
// never has to reason across a call body).
const (
	// RetReg receives a function's return value.
	RetReg Reg = 0
	// FirstArgReg is the first argument register; arguments are passed in
	// consecutive registers starting here.
	FirstArgReg Reg = 1
	// MaxArgs is the maximum number of register arguments.
	MaxArgs = 6
)

// ArgReg returns the i-th argument register.
func ArgReg(i int) Reg {
	if i < 0 || i >= MaxArgs {
		panic(fmt.Sprintf("isa: argument index %d out of range", i))
	}
	return FirstArgReg + Reg(i)
}

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes. The set splits into four groups: ALU, memory, control
// flow, and synchronization; plus the two compiler-inserted opcodes at the
// end. WordSize-granularity (8 B) addressing is assumed throughout.
const (
	// Nop does nothing.
	Nop Op = iota

	// --- ALU ---

	// MovImm: rd = imm.
	MovImm
	// Mov: rd = rs1.
	Mov
	// Add: rd = rs1 + rs2.
	Add
	// AddImm: rd = rs1 + imm.
	AddImm
	// Sub: rd = rs1 - rs2.
	Sub
	// Mul: rd = rs1 * rs2.
	Mul
	// MulImm: rd = rs1 * imm.
	MulImm
	// And: rd = rs1 & rs2.
	And
	// Or: rd = rs1 | rs2.
	Or
	// Xor: rd = rs1 ^ rs2.
	Xor
	// Shl: rd = rs1 << (rs2 & 63).
	Shl
	// Shr: rd = rs1 >> (rs2 & 63) (logical).
	Shr
	// CmpLT: rd = 1 if rs1 < rs2 (signed) else 0.
	CmpLT
	// CmpEQ: rd = 1 if rs1 == rs2 else 0.
	CmpEQ

	// --- Memory ---

	// Load: rd = mem[rs1 + imm].
	Load
	// Store: mem[rs1 + imm] = rs2.
	Store

	// --- Control flow ---

	// Jump: unconditional branch to block Target.
	Jump
	// Branch: if rs1 != 0 branch to block Target, else fall through to
	// block Target2. Branch must terminate its block.
	Branch
	// Call: call function Target with NArgs arguments in ArgReg(0..);
	// the return value arrives in RetReg (rd is ignored; RetReg is the
	// defined register).
	Call
	// Ret: return rs1 from the current function (value lands in the
	// caller's RetReg).
	Ret
	// Halt: stop the hardware thread. Only valid in the entry function.
	Halt

	// --- Synchronization (multi-threaded programs) ---

	// Fence: full memory fence. The LightWSP compiler places a region
	// boundary at every fence (§III-D).
	Fence
	// AtomicAdd: atomically rd = mem[rs1+imm]; mem[rs1+imm] += rs2.
	// Acts as a fence; the compiler places a boundary here too.
	AtomicAdd
	// LockAcquire: spin until the lock word at rs1+imm is 0, then set it
	// to 1 (atomically). Synchronization edge for happens-before.
	LockAcquire
	// LockRelease: set the lock word at rs1+imm to 0 (atomically).
	LockRelease

	// --- Irrevocable operations ---

	// Io emits the value of rs1 to the machine's output device — the
	// stand-in for the irrevocable I/O operations of §IV-A. The compiler
	// treats an Io like a synchronization point (its own region), and
	// the machine performs the emission only after every prior region
	// has persisted, so a power failure can only interrupt an Io region
	// before its effect or re-run the Io itself: restartable,
	// at-least-once I/O, exactly the semantics the paper proposes
	// ("allowing power-interrupted I/O operations to be restarted").
	Io

	// --- Compiler-inserted (never appear in source programs) ---

	// Boundary is a region boundary: the PC-checkpointing store (§IV-A).
	// It stores the recovery PC into the per-thread checkpoint array and
	// broadcasts the current region ID to all memory controllers, then
	// atomically takes a fresh region ID. It counts as one 8-byte store
	// on the persist path.
	Boundary
	// CkptStore checkpoints register rs1 into its dedicated slot of the
	// per-thread checkpoint array (slot index = register number). It
	// counts as one 8-byte store on both paths.
	CkptStore

	numOps
)

var opNames = [numOps]string{
	Nop: "nop", MovImm: "movi", Mov: "mov", Add: "add", AddImm: "addi",
	Sub: "sub", Mul: "mul", MulImm: "muli", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", CmpLT: "cmplt", CmpEQ: "cmpeq",
	Load: "ld", Store: "st",
	Jump: "jmp", Branch: "br", Call: "call", Ret: "ret", Halt: "halt",
	Fence: "fence", AtomicAdd: "amoadd",
	LockAcquire: "lock", LockRelease: "unlock", Io: "io",
	Boundary: "bdry", CkptStore: "ckpt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// IsStore reports whether the instruction writes memory and therefore
// travels the persist path under LightWSP. Boundary and CkptStore count:
// both are stores into the PM-resident checkpoint array. Call counts
// because it pushes the return PC onto the in-memory call stack.
func (o Op) IsStore() bool {
	return o.PersistStores() > 0
}

// PersistStores returns the number of 8-byte persist-path entries the
// instruction generates directly. A Boundary writes two checkpoint slots
// (recovery PC and stack pointer). Synchronization instructions trigger an
// additional implicit hardware boundary (§III-D) worth BoundaryStores more
// entries, accounted separately by the region partitioner.
func (o Op) PersistStores() int {
	switch o {
	case Store, CkptStore, AtomicAdd, LockAcquire, LockRelease, Call:
		return 1
	case Boundary:
		return BoundaryStores
	}
	return 0
}

// BoundaryStores is the number of persist-path stores a region boundary
// issues: the PC-checkpointing store plus the stack-pointer checkpoint.
const BoundaryStores = 2

// PersistStoresIncludingSync returns the total persist-path entries the
// instruction generates, counting the implicit hardware boundary that
// synchronization instructions trigger.
func (in *Instr) PersistStoresIncludingSync() int {
	n := in.Op.PersistStores()
	if in.Op.IsSync() {
		n += BoundaryStores
	}
	return n
}

// IsSync reports whether the instruction is a synchronization primitive at
// which the compiler must place a region boundary (§III-D). Irrevocable
// operations (Io) count: they delimit their own region (§IV-A).
func (o Op) IsSync() bool {
	switch o {
	case Fence, AtomicAdd, LockAcquire, LockRelease, Io:
		return true
	}
	return false
}

// IsTerminator reports whether the instruction ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case Jump, Branch, Ret, Halt:
		return true
	}
	return false
}

// Instr is a single instruction. Fields are interpreted per opcode; unused
// fields are zero. Imm doubles as the argument count for Call.
type Instr struct {
	Op       Op
	Rd       Reg   // destination register
	Rs1, Rs2 Reg   // source registers
	Imm      int64 // immediate / displacement / arg count for Call
	Target   int   // block index (Jump, Branch) or function index (Call)
	Target2  int   // fall-through block index (Branch only)
}

// Defs returns the register defined by the instruction and whether it
// defines one at all.
func (in *Instr) Defs() (Reg, bool) {
	switch in.Op {
	case MovImm, Mov, Add, AddImm, Sub, Mul, MulImm, And, Or, Xor, Shl, Shr,
		CmpLT, CmpEQ, Load, AtomicAdd:
		return in.Rd, true
	case Call:
		return RetReg, true
	}
	return 0, false
}

// Uses appends the registers the instruction reads to dst and returns it.
func (in *Instr) Uses(dst []Reg) []Reg {
	switch in.Op {
	case Mov:
		dst = append(dst, in.Rs1)
	case AddImm, MulImm:
		dst = append(dst, in.Rs1)
	case Add, Sub, Mul, And, Or, Xor, Shl, Shr, CmpLT, CmpEQ:
		dst = append(dst, in.Rs1, in.Rs2)
	case Load:
		dst = append(dst, in.Rs1)
	case Store:
		dst = append(dst, in.Rs1, in.Rs2)
	case Branch:
		dst = append(dst, in.Rs1)
	case Ret:
		dst = append(dst, in.Rs1)
	case Call:
		for i := 0; i < int(in.Imm); i++ {
			dst = append(dst, ArgReg(i))
		}
	case AtomicAdd:
		dst = append(dst, in.Rs1, in.Rs2)
	case LockAcquire, LockRelease:
		dst = append(dst, in.Rs1)
	case Io:
		dst = append(dst, in.Rs1)
	case CkptStore:
		dst = append(dst, in.Rs1)
	}
	return dst
}

func (in *Instr) String() string {
	switch in.Op {
	case Nop, Fence, Halt, Boundary:
		return in.Op.String()
	case MovImm:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case Mov:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	case AddImm, MulImm:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case Add, Sub, Mul, And, Or, Xor, Shl, Shr, CmpLT, CmpEQ:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	case Load:
		return fmt.Sprintf("%s %s, [%s+%d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case Store:
		return fmt.Sprintf("%s [%s+%d], %s", in.Op, in.Rs1, in.Imm, in.Rs2)
	case Jump:
		return fmt.Sprintf("%s b%d", in.Op, in.Target)
	case Branch:
		return fmt.Sprintf("%s %s, b%d, b%d", in.Op, in.Rs1, in.Target, in.Target2)
	case Call:
		return fmt.Sprintf("%s f%d/%d", in.Op, in.Target, in.Imm)
	case Ret:
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	case AtomicAdd:
		return fmt.Sprintf("%s %s, [%s+%d], %s", in.Op, in.Rd, in.Rs1, in.Imm, in.Rs2)
	case LockAcquire, LockRelease:
		return fmt.Sprintf("%s [%s+%d]", in.Op, in.Rs1, in.Imm)
	case Io:
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	case CkptStore:
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	}
	return in.Op.String()
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator. Blocks are identified by their index in Function.Blocks.
type Block struct {
	Instrs []Instr
}

// Terminator returns the block's final instruction. It panics on an empty
// block; Validate rejects those.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		panic("isa: empty block has no terminator")
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// Succs appends the indices of the blocks control may flow to next.
func (b *Block) Succs(dst []int) []int {
	t := b.Terminator()
	switch t.Op {
	case Jump:
		dst = append(dst, t.Target)
	case Branch:
		dst = append(dst, t.Target, t.Target2)
	}
	return dst
}

// StoreCount returns the number of persist-path stores in the block
// (including compiler-inserted checkpoint and boundary stores).
func (b *Block) StoreCount() int {
	n := 0
	for i := range b.Instrs {
		if b.Instrs[i].Op.IsStore() {
			n++
		}
	}
	return n
}

// Function is a single function: blocks[0] is the entry block.
type Function struct {
	Name   string
	Blocks []*Block
}

// Program is a whole compiled unit. Funcs[Entry] is where each hardware
// thread starts executing (threads are distinguished by their argument
// registers at startup).
type Program struct {
	Name  string
	Funcs []*Function
	Entry int
}

// PC is a program counter: a static location inside a program.
type PC struct {
	Func  int // function index
	Block int // block index within the function
	Index int // instruction index within the block
}

func (p PC) String() string { return fmt.Sprintf("f%d:b%d:%d", p.Func, p.Block, p.Index) }

// Pack encodes the PC into a single 64-bit word so a Boundary instruction
// can store it into the checkpoint array like any other 8-byte datum.
func (p PC) Pack() uint64 {
	return uint64(p.Func)<<40 | uint64(p.Block)<<20 | uint64(p.Index)
}

// UnpackPC decodes a PC previously encoded with Pack.
func UnpackPC(w uint64) PC {
	return PC{
		Func:  int(w >> 40 & 0xFFFFFF),
		Block: int(w >> 20 & 0xFFFFF),
		Index: int(w & 0xFFFFF),
	}
}

// InstrAt returns the instruction at pc.
func (p *Program) InstrAt(pc PC) *Instr {
	return &p.Funcs[pc.Func].Blocks[pc.Block].Instrs[pc.Index]
}

// NumInstrs returns the static instruction count of the program.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// NumStores returns the static persist-path store count of the program,
// including compiler-inserted boundary and checkpoint stores.
func (p *Program) NumStores() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += b.StoreCount()
		}
	}
	return n
}
