package isa

import (
	"fmt"
	"strings"
)

// Disasm renders the program as human-readable assembly, one function per
// section, with block labels and per-block store counts — the view the
// region-statistics tool prints.
func (p *Program) Disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %q (entry f%d)\n", p.Name, p.Entry)
	for fi, f := range p.Funcs {
		fmt.Fprintf(&sb, "\nf%d %s:\n", fi, f.Name)
		for bi, blk := range f.Blocks {
			fmt.Fprintf(&sb, "  b%d:  ; %d stores\n", bi, blk.StoreCount())
			for i := range blk.Instrs {
				fmt.Fprintf(&sb, "    %s\n", blk.Instrs[i].String())
			}
		}
	}
	return sb.String()
}

// Clone returns a deep copy of the program. Compiler passes mutate programs
// in place; Clone lets callers keep the original for comparison (and the
// experiment harness compile one source program under several thresholds).
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, Entry: p.Entry, Funcs: make([]*Function, len(p.Funcs))}
	for fi, f := range p.Funcs {
		nf := &Function{Name: f.Name, Blocks: make([]*Block, len(f.Blocks))}
		for bi, b := range f.Blocks {
			nb := &Block{Instrs: make([]Instr, len(b.Instrs))}
			copy(nb.Instrs, b.Instrs)
			nf.Blocks[bi] = nb
		}
		q.Funcs[fi] = nf
	}
	return q
}
