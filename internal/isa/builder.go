package isa

import "fmt"

// Builder assembles a Program incrementally. It exists so the workload
// generator and the compiler tests can construct programs without writing
// struct literals by hand; it keeps a current function and block and offers
// one method per opcode.
//
// Typical use:
//
//	b := isa.NewBuilder("demo")
//	f := b.Func("main")
//	b.MovImm(1, 0)          // r1 = 0
//	loop := b.NewBlock()
//	b.Jump(loop)
//	...
//	prog, err := b.Build()
type Builder struct {
	prog    *Program
	curFunc *Function
	curBlk  *Block
	err     error
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name}}
}

// Func starts a new function and its entry block, and makes both current.
// It returns the function's index (usable as a Call target).
func (b *Builder) Func(name string) int {
	f := &Function{Name: name}
	b.prog.Funcs = append(b.prog.Funcs, f)
	b.curFunc = f
	b.curBlk = nil
	b.NewBlock()
	return len(b.prog.Funcs) - 1
}

// SetEntry marks function index fi as the program entry point.
func (b *Builder) SetEntry(fi int) { b.prog.Entry = fi }

// NewBlock appends a fresh block to the current function, makes it current,
// and returns its index (usable as a branch target).
func (b *Builder) NewBlock() int {
	if b.curFunc == nil {
		b.fail("NewBlock before Func")
		return 0
	}
	blk := &Block{}
	b.curFunc.Blocks = append(b.curFunc.Blocks, blk)
	b.curBlk = blk
	return len(b.curFunc.Blocks) - 1
}

// SwitchTo makes an existing block of the current function current, so
// instructions can be appended to it (e.g. to fill in a loop latch after
// emitting the body).
func (b *Builder) SwitchTo(block int) {
	if b.curFunc == nil || block < 0 || block >= len(b.curFunc.Blocks) {
		b.fail("SwitchTo out of range")
		return
	}
	b.curBlk = b.curFunc.Blocks[block]
}

// CurrentBlock returns the index of the block under construction.
func (b *Builder) CurrentBlock() int {
	for i, blk := range b.curFunc.Blocks {
		if blk == b.curBlk {
			return i
		}
	}
	return -1
}

func (b *Builder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf("isa.Builder: "+format, args...)
	}
}

func (b *Builder) emit(in Instr) {
	if b.curBlk == nil {
		b.fail("instruction emitted outside a block")
		return
	}
	if n := len(b.curBlk.Instrs); n > 0 && b.curBlk.Instrs[n-1].Op.IsTerminator() {
		b.fail("instruction %s emitted after terminator", in.String())
		return
	}
	b.curBlk.Instrs = append(b.curBlk.Instrs, in)
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Instr{Op: Nop}) }

// MovImm emits rd = imm.
func (b *Builder) MovImm(rd Reg, imm int64) { b.emit(Instr{Op: MovImm, Rd: rd, Imm: imm}) }

// Mov emits rd = rs.
func (b *Builder) Mov(rd, rs Reg) { b.emit(Instr{Op: Mov, Rd: rd, Rs1: rs}) }

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Add, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// AddImm emits rd = rs1 + imm.
func (b *Builder) AddImm(rd, rs1 Reg, imm int64) {
	b.emit(Instr{Op: AddImm, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Sub, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Mul, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// MulImm emits rd = rs1 * imm.
func (b *Builder) MulImm(rd, rs1 Reg, imm int64) {
	b.emit(Instr{Op: MulImm, Rd: rd, Rs1: rs1, Imm: imm})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 Reg) { b.emit(Instr{Op: And, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Or, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Xor, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Shl emits rd = rs1 << rs2.
func (b *Builder) Shl(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Shl, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Shr emits rd = rs1 >> rs2.
func (b *Builder) Shr(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Shr, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// CmpLT emits rd = rs1 < rs2.
func (b *Builder) CmpLT(rd, rs1, rs2 Reg) { b.emit(Instr{Op: CmpLT, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// CmpEQ emits rd = rs1 == rs2.
func (b *Builder) CmpEQ(rd, rs1, rs2 Reg) { b.emit(Instr{Op: CmpEQ, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Load emits rd = mem[rs1+imm].
func (b *Builder) Load(rd, rs1 Reg, imm int64) {
	b.emit(Instr{Op: Load, Rd: rd, Rs1: rs1, Imm: imm})
}

// Store emits mem[rs1+imm] = rs2.
func (b *Builder) Store(rs1 Reg, imm int64, rs2 Reg) {
	b.emit(Instr{Op: Store, Rs1: rs1, Imm: imm, Rs2: rs2})
}

// Jump emits an unconditional branch to block.
func (b *Builder) Jump(block int) { b.emit(Instr{Op: Jump, Target: block}) }

// Branch emits: if rs1 != 0 goto then, else goto els.
func (b *Builder) Branch(rs1 Reg, then, els int) {
	b.emit(Instr{Op: Branch, Rs1: rs1, Target: then, Target2: els})
}

// Call emits a call to function fn passing nargs arguments.
func (b *Builder) Call(fn, nargs int) { b.emit(Instr{Op: Call, Target: fn, Imm: int64(nargs)}) }

// Ret emits a return of rs1.
func (b *Builder) Ret(rs1 Reg) { b.emit(Instr{Op: Ret, Rs1: rs1}) }

// Halt emits a thread halt.
func (b *Builder) Halt() { b.emit(Instr{Op: Halt}) }

// Io emits an irrevocable output of rs1 (§IV-A I/O functions).
func (b *Builder) Io(rs1 Reg) { b.emit(Instr{Op: Io, Rs1: rs1}) }

// Fence emits a full memory fence.
func (b *Builder) Fence() { b.emit(Instr{Op: Fence}) }

// AtomicAdd emits rd = fetch-and-add(mem[rs1+imm], rs2).
func (b *Builder) AtomicAdd(rd, rs1 Reg, imm int64, rs2 Reg) {
	b.emit(Instr{Op: AtomicAdd, Rd: rd, Rs1: rs1, Imm: imm, Rs2: rs2})
}

// LockAcquire emits a lock acquisition on mem[rs1+imm].
func (b *Builder) LockAcquire(rs1 Reg, imm int64) {
	b.emit(Instr{Op: LockAcquire, Rs1: rs1, Imm: imm})
}

// LockRelease emits a lock release on mem[rs1+imm].
func (b *Builder) LockRelease(rs1 Reg, imm int64) {
	b.emit(Instr{Op: LockRelease, Rs1: rs1, Imm: imm})
}

// Build validates and returns the assembled program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// BodyBlocks returns the current function's blocks from index head onward —
// the loop body a generator has emitted so far. The returned slices alias
// the builder's state; callers must not mutate them.
func (b *Builder) BodyBlocks(head int) []*Block {
	return b.curFunc.Blocks[head:]
}
