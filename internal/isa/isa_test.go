package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStringAllDefined(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", o)
		}
	}
}

func TestOpClassification(t *testing.T) {
	stores := []Op{Store, AtomicAdd, LockAcquire, LockRelease, Boundary, CkptStore, Call}
	for _, o := range stores {
		if !o.IsStore() {
			t.Errorf("%s should be a store", o)
		}
	}
	if Boundary.PersistStores() != BoundaryStores || Store.PersistStores() != 1 || Fence.PersistStores() != 0 {
		t.Error("PersistStores weights wrong")
	}
	nonStores := []Op{Nop, MovImm, Add, Load, Jump, Branch, Ret, Halt, Fence}
	for _, o := range nonStores {
		if o.IsStore() {
			t.Errorf("%s should not be a store", o)
		}
	}
	syncs := []Op{Fence, AtomicAdd, LockAcquire, LockRelease, Io}
	for _, o := range syncs {
		if !o.IsSync() {
			t.Errorf("%s should be sync", o)
		}
	}
	if Store.IsSync() || Load.IsSync() || Boundary.IsSync() {
		t.Error("store/load/boundary must not be sync")
	}
	terms := []Op{Jump, Branch, Ret, Halt}
	for _, o := range terms {
		if !o.IsTerminator() {
			t.Errorf("%s should be a terminator", o)
		}
	}
	if Store.IsTerminator() || Fence.IsTerminator() {
		t.Error("store/fence must not terminate blocks")
	}
}

func TestDefsUses(t *testing.T) {
	cases := []struct {
		in   Instr
		def  Reg
		has  bool
		uses []Reg
	}{
		{Instr{Op: MovImm, Rd: 3, Imm: 7}, 3, true, nil},
		{Instr{Op: Mov, Rd: 2, Rs1: 5}, 2, true, []Reg{5}},
		{Instr{Op: Add, Rd: 1, Rs1: 2, Rs2: 3}, 1, true, []Reg{2, 3}},
		{Instr{Op: Load, Rd: 4, Rs1: 6}, 4, true, []Reg{6}},
		{Instr{Op: Store, Rs1: 6, Rs2: 7}, 0, false, []Reg{6, 7}},
		{Instr{Op: Branch, Rs1: 9}, 0, false, []Reg{9}},
		{Instr{Op: Ret, Rs1: 1}, 0, false, []Reg{1}},
		{Instr{Op: Call, Imm: 2}, RetReg, true, []Reg{ArgReg(0), ArgReg(1)}},
		{Instr{Op: AtomicAdd, Rd: 8, Rs1: 9, Rs2: 10}, 8, true, []Reg{9, 10}},
		{Instr{Op: CkptStore, Rs1: 11}, 0, false, []Reg{11}},
		{Instr{Op: Io, Rs1: 12}, 0, false, []Reg{12}},
		{Instr{Op: Boundary}, 0, false, nil},
		{Instr{Op: Fence}, 0, false, nil},
	}
	for _, c := range cases {
		d, ok := c.in.Defs()
		if ok != c.has || (ok && d != c.def) {
			t.Errorf("%s: Defs = %v,%v want %v,%v", c.in.String(), d, ok, c.def, c.has)
		}
		u := c.in.Uses(nil)
		if len(u) != len(c.uses) {
			t.Fatalf("%s: Uses = %v want %v", c.in.String(), u, c.uses)
		}
		for i := range u {
			if u[i] != c.uses[i] {
				t.Errorf("%s: Uses = %v want %v", c.in.String(), u, c.uses)
			}
		}
	}
}

func buildValid(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("t")
	b.Func("main")
	b.MovImm(1, 0)
	b.MovImm(2, 10)
	loop := b.NewBlock()
	b.Store(1, 0, 2)
	b.AddImm(1, 1, 8)
	b.CmpLT(3, 1, 2)
	b.Branch(3, loop, loop+1)
	b.NewBlock()
	b.Halt()
	// patch entry to fall into loop
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderAndValidate(t *testing.T) {
	p := buildValid(t)
	if got := len(p.Funcs[0].Blocks); got != 3 {
		t.Fatalf("blocks = %d, want 3", got)
	}
	if p.NumInstrs() != 8 {
		t.Errorf("NumInstrs = %d, want 8", p.NumInstrs())
	}
	if p.NumStores() != 1 {
		t.Errorf("NumStores = %d, want 1", p.NumStores())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
	}{
		{"no funcs", &Program{}},
		{"bad entry", &Program{Entry: 5, Funcs: []*Function{{Name: "f", Blocks: []*Block{{Instrs: []Instr{{Op: Halt}}}}}}}},
		{"empty block", &Program{Funcs: []*Function{{Name: "f", Blocks: []*Block{{}}}}}},
		{"no terminator", &Program{Funcs: []*Function{{Name: "f", Blocks: []*Block{{Instrs: []Instr{{Op: Nop}}}}}}}},
		{"mid terminator", &Program{Funcs: []*Function{{Name: "f", Blocks: []*Block{{Instrs: []Instr{{Op: Halt}, {Op: Halt}}}}}}}},
		{"bad jump", &Program{Funcs: []*Function{{Name: "f", Blocks: []*Block{{Instrs: []Instr{{Op: Jump, Target: 9}}}}}}}},
		{"bad call", &Program{Funcs: []*Function{{Name: "f", Blocks: []*Block{{Instrs: []Instr{{Op: Call, Target: 4}, {Op: Halt}}}}}}}},
		{"bad argc", &Program{Funcs: []*Function{{Name: "f", Blocks: []*Block{{Instrs: []Instr{{Op: Call, Target: 0, Imm: 99}, {Op: Halt}}}}}}}},
	}
	for _, c := range cases {
		if err := c.prog.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid program", c.name)
		}
	}
}

func TestBuilderErrorPropagation(t *testing.T) {
	b := NewBuilder("bad")
	b.Func("f")
	b.Halt()
	b.Nop() // after terminator
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted instruction after terminator")
	}
	b2 := NewBuilder("bad2")
	b2.Nop() // before any Func
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build accepted instruction before Func")
	}
}

func TestPCPackRoundTrip(t *testing.T) {
	f := func(fn uint16, blk uint16, idx uint16) bool {
		pc := PC{Func: int(fn), Block: int(blk), Index: int(idx)}
		return UnpackPC(pc.Pack()) == pc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildValid(t)
	q := p.Clone()
	q.Funcs[0].Blocks[0].Instrs[0].Imm = 999
	if p.Funcs[0].Blocks[0].Instrs[0].Imm == 999 {
		t.Fatal("Clone shares instruction storage")
	}
	if q.NumInstrs() != p.NumInstrs() {
		t.Fatal("Clone changed instruction count")
	}
}

func TestDisasmMentionsEverything(t *testing.T) {
	p := buildValid(t)
	d := p.Disasm()
	for _, want := range []string{"main", "b0", "b1", "b2", "st [r1+0], r2", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("Disasm missing %q in:\n%s", want, d)
		}
	}
}

func TestSuccs(t *testing.T) {
	p := buildValid(t)
	f := p.Funcs[0]
	if s := f.Blocks[0].Succs(nil); len(s) != 1 || s[0] != 1 {
		t.Errorf("b0 succs = %v", s)
	}
	if s := f.Blocks[1].Succs(nil); len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Errorf("b1 succs = %v", s)
	}
	if s := f.Blocks[2].Succs(nil); len(s) != 0 {
		t.Errorf("b2 succs = %v", s)
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := map[string]Instr{
		"movi r1, 5":            {Op: MovImm, Rd: 1, Imm: 5},
		"ld r2, [r3+16]":        {Op: Load, Rd: 2, Rs1: 3, Imm: 16},
		"st [r3+8], r4":         {Op: Store, Rs1: 3, Imm: 8, Rs2: 4},
		"br r1, b2, b3":         {Op: Branch, Rs1: 1, Target: 2, Target2: 3},
		"call f1/2":             {Op: Call, Target: 1, Imm: 2},
		"amoadd r1, [r2+0], r3": {Op: AtomicAdd, Rd: 1, Rs1: 2, Rs2: 3},
		"ckpt r7":               {Op: CkptStore, Rs1: 7},
		"bdry":                  {Op: Boundary},
		"io r3":                 {Op: Io, Rs1: 3},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestArgRegPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArgReg(99) did not panic")
		}
	}()
	ArgReg(99)
}
