package isa

import "fmt"

// Validate checks structural well-formedness of a program: non-empty
// functions and blocks, a terminator exactly at the end of every block,
// in-range branch and call targets, in-range registers and argument counts.
// The compiler and the workload generator both run their outputs through
// Validate; the simulator assumes a validated program.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("isa: program %q has no functions", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return fmt.Errorf("isa: program %q entry %d out of range", p.Name, p.Entry)
	}
	for fi, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("isa: function %s (f%d) has no blocks", f.Name, fi)
		}
		for bi, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				return fmt.Errorf("isa: %s:b%d is empty", f.Name, bi)
			}
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				last := ii == len(b.Instrs)-1
				if err := p.validateInstr(fi, bi, ii, in, last, len(f.Blocks)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (p *Program) validateInstr(fi, bi, ii int, in *Instr, last bool, nblocks int) error {
	where := func() string {
		return fmt.Sprintf("isa: %s:b%d:%d (%s)", p.Funcs[fi].Name, bi, ii, in)
	}
	if !in.Op.Valid() {
		return fmt.Errorf("%s: invalid opcode", where())
	}
	if in.Op.IsTerminator() != last {
		if last {
			return fmt.Errorf("%s: block does not end in a terminator", where())
		}
		return fmt.Errorf("%s: terminator in the middle of a block", where())
	}
	if int(in.Rd) >= NumRegs || int(in.Rs1) >= NumRegs || int(in.Rs2) >= NumRegs {
		return fmt.Errorf("%s: register out of range", where())
	}
	switch in.Op {
	case Jump:
		if in.Target < 0 || in.Target >= nblocks {
			return fmt.Errorf("%s: jump target out of range", where())
		}
	case Branch:
		if in.Target < 0 || in.Target >= nblocks || in.Target2 < 0 || in.Target2 >= nblocks {
			return fmt.Errorf("%s: branch target out of range", where())
		}
	case Call:
		if in.Target < 0 || in.Target >= len(p.Funcs) {
			return fmt.Errorf("%s: call target out of range", where())
		}
		if in.Imm < 0 || in.Imm > MaxArgs {
			return fmt.Errorf("%s: call argument count %d out of range", where(), in.Imm)
		}
	case CkptStore:
		if int(in.Rs1) >= NumRegs {
			return fmt.Errorf("%s: checkpoint register out of range", where())
		}
	}
	return nil
}
