package crashfuzz

import (
	"reflect"
	"testing"
)

func TestShrinkTable(t *testing.T) {
	cases := []struct {
		name   string
		in     Schedule
		fails  func(Schedule) bool
		budget int
		want   Schedule
	}{
		{
			// Any schedule with a cut at or below 10 fails: the two late
			// cuts drop, the early one minimizes to zero.
			name: "early-cut-dominates",
			in:   Schedule{100, 7, 50},
			fails: func(s Schedule) bool {
				for _, c := range s {
					if c <= 10 {
						return true
					}
				}
				return false
			},
			budget: 100,
			want:   Schedule{0},
		},
		{
			// The bug needs two successive failures: shrinking may not drop
			// below two cuts, but both cycles descend to zero.
			name:   "needs-two-cuts",
			in:     Schedule{5, 9, 3},
			fails:  func(s Schedule) bool { return len(s) >= 2 },
			budget: 100,
			want:   Schedule{0, 0},
		},
		{
			// Unconditional failure shrinks to the single boot-image cut.
			name:   "always-fails",
			in:     Schedule{400, 200, 300},
			fails:  func(Schedule) bool { return true },
			budget: 100,
			want:   Schedule{0},
		},
		{
			// Only the exact original schedule fails: nothing shrinks.
			name: "irreducible",
			in:   Schedule{4, 8},
			fails: func(s Schedule) bool {
				return reflect.DeepEqual(s, Schedule{4, 8})
			},
			budget: 100,
			want:   Schedule{4, 8},
		},
		{
			// A zero budget probes nothing and returns the input.
			name:   "zero-budget",
			in:     Schedule{42, 17},
			fails:  func(Schedule) bool { return true },
			budget: 0,
			want:   Schedule{42, 17},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, probes := Shrink(tc.in, tc.fails, tc.budget)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Shrink(%v) = %v, want %v", tc.in, got, tc.want)
			}
			if probes > tc.budget {
				t.Fatalf("spent %d probes over budget %d", probes, tc.budget)
			}
			// A minimal schedule is a fixed point: re-shrinking probes the
			// same candidates, none fail, and the schedule is unchanged —
			// repro files are stable artifacts.
			again, _ := Shrink(got, tc.fails, tc.budget)
			if !reflect.DeepEqual(again, got) {
				t.Fatalf("Shrink not idempotent: %v -> %v", got, again)
			}
		})
	}
}

func TestShrinkOutputStillFails(t *testing.T) {
	// Every adopted candidate was observed failing, so the output must
	// satisfy the predicate whenever the input did.
	fails := func(s Schedule) bool {
		sum := uint64(0)
		for _, c := range s {
			sum += c
		}
		return sum >= 6
	}
	in := Schedule{10, 20, 30}
	got, _ := Shrink(in, fails, 1000)
	if !fails(got) {
		t.Fatalf("shrunk schedule %v no longer fails", got)
	}
}

func TestPlanDeterministicAndSeeded(t *testing.T) {
	cfg := Config{Seed: 7, ExhaustiveThreshold: 100, MaxInjections: 20, Cuts: 2}
	interesting := []uint64{0, 500, 9999}

	a, modeA := plan(cfg, 10_000, interesting)
	b, modeB := plan(cfg, 10_000, interesting)
	if modeA != "sampled" || modeB != "sampled" {
		t.Fatalf("modes = %s/%s, want sampled", modeA, modeB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed planned different campaigns")
	}

	// Probe-guided cycles and their neighbours are always included.
	first := map[uint64]bool{}
	for _, s := range a {
		first[s[0]] = true
	}
	for _, want := range []uint64{0, 1, 499, 500, 501, 9998, 9999} {
		if !first[want] {
			t.Fatalf("interesting cycle %d missing from the plan", want)
		}
	}
	// Every fourth schedule cuts again at cycle 0 of the recovered machine.
	zeroSecond := 0
	for i, s := range a {
		if len(s) != 2 {
			t.Fatalf("schedule %v has %d cuts, want 2", s, len(s))
		}
		if i%4 == 0 && s[1] != 0 {
			t.Fatalf("schedule %d = %v: second cut should hit recovery at cycle 0", i, s)
		}
		if s[1] == 0 {
			zeroSecond++
		}
	}
	if zeroSecond == 0 {
		t.Fatal("no schedule cuts during recovery")
	}

	// A different seed draws different random cycles.
	cfg.Seed = 8
	c, _ := plan(cfg, 10_000, interesting)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds planned identical campaigns")
	}

	// Below the threshold the plan is exhaustive, regardless of the seed.
	ex, mode := plan(Config{Seed: 3, ExhaustiveThreshold: 100}, 50, nil)
	if mode != "exhaustive" || len(ex) != 50 {
		t.Fatalf("exhaustive plan: mode %s, %d schedules", mode, len(ex))
	}
	for i, s := range ex {
		if len(s) != 1 || s[0] != uint64(i) {
			t.Fatalf("exhaustive schedule %d = %v", i, s)
		}
	}
}
