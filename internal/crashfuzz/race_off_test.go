//go:build !race

package crashfuzz

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
