package crashfuzz

import (
	"encoding/json"
	"fmt"
	"os"

	"lightwsp/internal/compiler"
	"lightwsp/internal/core"
	"lightwsp/internal/experiments"
	"lightwsp/internal/faults"
	"lightwsp/internal/machine"
	"lightwsp/internal/workload"
)

// ReproSchemaVersion stamps every repro file; it is the crashfuzz-repro
// version from the experiments codec table, the one place schema versions
// live. Bump it there whenever the replay semantics or the file format
// change; older repro files are then rejected instead of silently replaying
// something else.
//
// v2: repros carry a persist-fabric fault plan, replayed alongside the cuts.
var ReproSchemaVersion = experiments.ReproCodec.Version

// Repro is a minimal, self-contained reproducer of one crash-consistency
// divergence: everything needed to rebuild the exact workload (profiles are
// generated from a PRNG seeded by their name, so embedding the profile
// embeds the program), the exact machine, and the exact failure schedule.
// Campaigns write one JSON repro per shrunk divergence; `lightwsp-crashfuzz
// -replay file.json` re-executes it deterministically.
type Repro struct {
	SchemaVersion int `json:"schema_version"`
	// Profile rebuilds the workload program bit-identically.
	Profile workload.Profile `json:"profile"`
	// Scheme, Machine and Compiler pin the simulated hardware and the
	// region compiler exactly as the campaign resolved them.
	Scheme   machine.Scheme  `json:"scheme"`
	Machine  machine.Config  `json:"machine"`
	Compiler compiler.Config `json:"compiler"`
	// Cuts is the shrunk failure schedule (see Schedule).
	Cuts Schedule `json:"cuts"`
	// Faults is the (shrunk) persist-fabric fault plan each replay segment
	// runs under; the zero value replays on a perfect fabric.
	Faults faults.Plan `json:"faults,omitempty"`
	// Seed is the campaign seed that found the divergence (provenance; the
	// replay itself needs no randomness).
	Seed int64 `json:"seed"`
	// KeyHash is the canonical run-key hash (the experiments cache
	// identity) of the underlying simulation.
	KeyHash string `json:"key_hash"`
	// OracleCycles and OracleHash identify the failure-free run this
	// divergence was measured against; a replay whose fresh oracle hashes
	// differently signals a changed simulator, not a reproduced bug.
	OracleCycles uint64 `json:"oracle_cycles"`
	OracleHash   string `json:"oracle_hash"`
	// Diff samples the divergence (up to 8 mismatched words).
	Diff []string `json:"diff,omitempty"`
	Note string   `json:"note,omitempty"`
}

// WriteFile atomically-enough persists the repro as indented JSON.
func (r *Repro) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads and validates a repro file.
func LoadRepro(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("crashfuzz: %s: %w", path, err)
	}
	if r.SchemaVersion != ReproSchemaVersion {
		return nil, fmt.Errorf("crashfuzz: %s: schema version %d, this binary replays %d",
			path, r.SchemaVersion, ReproSchemaVersion)
	}
	if len(r.Cuts) == 0 {
		return nil, fmt.Errorf("crashfuzz: %s: empty failure schedule", path)
	}
	return &r, nil
}

// ReplayRepro deterministically re-executes a repro: rebuild the workload
// and runtime from the embedded configuration, re-run the failure-free
// oracle, replay the failure schedule, and re-check the verdict. It returns
// the divergence, or nil when the repro no longer fails (the bug is fixed —
// or was never real). An oracle whose cycle count or hash disagrees with the
// repro's is reported as an environment mismatch, not a divergence.
func ReplayRepro(r *Repro) error {
	rt, err := buildRuntime(r.Profile, r.Compiler, r.Machine)
	if err != nil {
		return err
	}
	orc, _, err := buildOracle(rt, maxReplayCycles, 0)
	if err != nil {
		return err
	}
	if orc.cycles != r.OracleCycles || orc.hash != r.OracleHash {
		return fmt.Errorf("crashfuzz: oracle mismatch: repro recorded %d cycles/%s, this tree produces %d cycles/%s — the simulator changed under the repro",
			r.OracleCycles, r.OracleHash, orc.cycles, orc.hash)
	}
	res, err := Replay(rt, r.Cuts, maxReplayCycles, nil, r.Faults)
	if err != nil {
		return err
	}
	if err := verdict(res.Sys, orc, r.Machine.Threads); err != nil {
		return fmt.Errorf("crashfuzz: repro still fails (cuts %v, %d fired): %w", r.Cuts, res.Fired, err)
	}
	return nil
}

// buildRuntime rebuilds the compiled LightWSP runtime for a profile under
// fully resolved configurations.
func buildRuntime(p workload.Profile, ccfg compiler.Config, mcfg machine.Config) (*core.Runtime, error) {
	prog, err := workload.Build(p)
	if err != nil {
		return nil, err
	}
	return core.NewRuntime(prog, ccfg, mcfg)
}
