package crashfuzz

import (
	"path/filepath"
	"reflect"
	"testing"

	"lightwsp/internal/experiments"
	"lightwsp/internal/mem"
	"lightwsp/internal/workload"
)

// smokeProfile returns the named miniature fuzz profile.
func smokeProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	for _, p := range workload.FuzzSmokeProfiles() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("no smoke profile %q", name)
	return workload.Profile{}
}

// TestExhaustiveSmokeCampaignsPass is the harness's core claim: over EVERY
// cycle of each miniature workload — single- and multi-threaded — a power
// failure followed by recovery converges to the failure-free result. Skipped
// under -race (thousands of replays; the CI full lane runs the CLI smoke
// campaign instead).
func TestExhaustiveSmokeCampaignsPass(t *testing.T) {
	if raceEnabled {
		t.Skip("exhaustive campaign too slow under -race")
	}
	if testing.Short() {
		t.Skip("exhaustive campaign skipped in -short mode")
	}
	for _, p := range workload.FuzzSmokeProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res, err := Run(Config{Profile: p, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Mode != "exhaustive" {
				t.Fatalf("smoke profile sampled (%d cycles); shrink the profile", res.OracleCycles)
			}
			if res.Divergences != 0 {
				t.Fatalf("%d divergences over %d cycles: %+v",
					res.Divergences, res.CyclesCovered, res.Repros)
			}
			if res.CyclesCovered != int(res.OracleCycles) {
				t.Fatalf("covered %d of %d cycles", res.CyclesCovered, res.OracleCycles)
			}
			if res.Injections == 0 || res.InterestingCycles == 0 {
				t.Fatalf("campaign fired %d injections, %d probe-guided cycles",
					res.Injections, res.InterestingCycles)
			}
		})
	}
}

// TestMultiCutCampaignPasses chains two successive power failures per
// schedule — every fourth one cutting again at cycle 0 of the recovered
// machine, a failure during recovery itself.
func TestMultiCutCampaignPasses(t *testing.T) {
	if raceEnabled {
		t.Skip("exhaustive campaign too slow under -race")
	}
	if testing.Short() {
		t.Skip("exhaustive campaign skipped in -short mode")
	}
	res, err := Run(Config{Profile: smokeProfile(t, "fuzz-st"), Cuts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergences != 0 {
		t.Fatalf("%d divergences with double cuts: %+v", res.Divergences, res.Repros)
	}
	// Double-cut schedules fire more injections than schedules.
	if res.Injections <= res.CyclesCovered {
		t.Fatalf("%d injections over %d double-cut schedules", res.Injections, res.CyclesCovered)
	}
}

// TestBrokenRecoveryCaughtAndShrunk wires in an intentionally broken
// recovery — the accumulator's checkpoint slot is corrupted in every crash
// image — and demands the harness catch it and shrink each divergence to a
// single-cut reproducer that still fails when replayed.
func TestBrokenRecoveryCaughtAndShrunk(t *testing.T) {
	corrupt := func(pm *mem.Image) {
		// A recovery that scribbles on user data: the word never matches
		// the architectural state, so every cut — including the boot-image
		// cut at cycle 0 — diverges, and shrinking must converge there.
		pm.Write(0x38, 0xDEAD)
	}
	res, err := Run(Config{
		Profile:             smokeProfile(t, "fuzz-st"),
		ExhaustiveThreshold: 1, // force sampling: keep the shrink work small
		MaxInjections:       6,
		MaxInteresting:      1,
		Seed:                1,
		CorruptPM:           corrupt,
		OutDir:              t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergences == 0 {
		t.Fatal("corrupted recovery not caught")
	}
	if res.ShrinkReplays == 0 {
		t.Fatal("divergences reported without any shrinking")
	}
	if len(res.ReproPaths) != len(res.Repros) {
		t.Fatalf("%d repros, %d files written", len(res.Repros), len(res.ReproPaths))
	}
	sawZero := false
	for _, r := range res.Repros {
		if len(r.Cuts) != 1 {
			t.Fatalf("repro not minimal: %d cuts (%v)", len(r.Cuts), r.Cuts)
		}
		if r.Cuts[0] == 0 {
			sawZero = true
		}
		if len(r.Diff) == 0 {
			t.Fatal("repro carries no divergence sample")
		}
	}
	// The corruption fails at the boot image too, so shrinking converges on
	// the cycle-0 cut.
	if !sawZero {
		t.Fatalf("no repro shrunk to the cycle-0 cut: %+v", res.Repros)
	}

	// The shrunk repro must still fail when replayed from its file under
	// the same broken recovery.
	r, err := LoadRepro(res.ReproPaths[0])
	if err != nil {
		t.Fatal(err)
	}
	rt, err := buildRuntime(r.Profile, r.Compiler, r.Machine)
	if err != nil {
		t.Fatal(err)
	}
	orc, _, err := buildOracle(rt, maxReplayCycles, 0)
	if err != nil {
		t.Fatal(err)
	}
	if orc.hash != r.OracleHash || orc.cycles != r.OracleCycles {
		t.Fatalf("repro oracle (%d cycles, %s) does not match this tree (%d cycles, %s)",
			r.OracleCycles, r.OracleHash, orc.cycles, orc.hash)
	}
	rep, err := Replay(rt, r.Cuts, maxReplayCycles, corrupt, r.Faults)
	if err != nil {
		t.Fatal(err)
	}
	if verdict(rep.Sys, orc, r.Machine.Threads) == nil {
		t.Fatalf("shrunk repro %v no longer fails", r.Cuts)
	}
	// Without the corruption the same schedule passes: the harness blamed
	// the broken recovery, not the machine.
	rep, err = Replay(rt, r.Cuts, maxReplayCycles, nil, r.Faults)
	if err != nil {
		t.Fatal(err)
	}
	if err := verdict(rep.Sys, orc, r.Machine.Threads); err != nil {
		t.Fatalf("schedule %v fails even with healthy recovery: %v", r.Cuts, err)
	}
}

// TestOracleDeterministicAcrossParallelCampaigns runs the same campaign
// twice over a multi-worker pool: parallel replay order must not leak into
// the oracle or any reproduced number.
func TestOracleDeterministicAcrossParallelCampaigns(t *testing.T) {
	cfg := Config{
		Profile:             smokeProfile(t, "fuzz-mt"),
		ExhaustiveThreshold: 1, // sampled: bounded work, still parallel
		MaxInjections:       12,
		MaxInteresting:      8,
		Seed:                3,
		Workers:             4,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.WallSeconds, b.WallSeconds = 0, 0
	a.InjectionsPerSec, b.InjectionsPerSec = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel campaigns disagree:\n%+v\n%+v", a, b)
	}
	if a.Divergences != 0 {
		t.Fatalf("%d divergences: %+v", a.Divergences, a.Repros)
	}
}

// TestVerdictCacheRoundTrip proves a repeated campaign skips every proven
// schedule — and that the cache never changes the reported coverage.
func TestVerdictCacheRoundTrip(t *testing.T) {
	cache := experiments.NewBlobCache(filepath.Join(t.TempDir(), "verdicts"))
	cfg := Config{
		Profile:             smokeProfile(t, "fuzz-st"),
		ExhaustiveThreshold: 1,
		MaxInjections:       10,
		MaxInteresting:      4,
		Seed:                5,
		Cache:               cache,
	}
	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 {
		t.Fatalf("cold campaign hit the cache %d times", cold.CacheHits)
	}
	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != warm.CyclesCovered {
		t.Fatalf("warm campaign: %d hits over %d schedules", warm.CacheHits, warm.CyclesCovered)
	}
	if warm.Injections != cold.Injections || warm.OracleHash != cold.OracleHash {
		t.Fatalf("cache changed reported numbers: cold %+v, warm %+v", cold, warm)
	}
}
