// Package crashfuzz is the crash-consistency fuzzing harness: it validates
// LightWSP's central claim — all-or-nothing region persistence under
// arbitrary power failure (§IV-F) — by making *every* cycle of a workload a
// candidate failure point instead of the handful of hand-picked cycles unit
// tests cover.
//
// A campaign runs the workload once crash-free to produce an oracle (final
// persisted image + cycle count), then replays it injecting PowerFail at
// enumerated cycles: exhaustively below a threshold, by seeded-random
// sampling above it, always seeded with the "interesting" cycles the oracle
// run's probe stream surfaced (boundary broadcasts, WPQ flushes, overflow-
// escape transitions, undo-log writes, FEB back-pressure bursts). Each
// injection drains, recovers, resumes to completion, and diffs the final
// persisted state against the oracle — any divergence is a found bug.
// Multi-cut schedules chain N successive power failures, including cuts at
// cycle 0 of a recovered machine: a failure during recovery itself.
//
// Failing schedules are shrunk (shrink.go) to a minimal reproducer and
// serialized as self-contained JSON repro files (repro.go) that
// `lightwsp-crashfuzz -replay` re-executes deterministically.
//
// Campaigns reuse the experiments infrastructure: injections fan out over an
// experiments.Pool, and passing verdicts are memoized in an
// experiments.BlobCache keyed by the canonical run key + schedule, so a
// repeated or resumed campaign skips every injection it has already proven.
package crashfuzz

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"lightwsp/internal/compiler"
	"lightwsp/internal/core"
	"lightwsp/internal/experiments"
	"lightwsp/internal/faults"
	"lightwsp/internal/machine"
	"lightwsp/internal/mem"
	"lightwsp/internal/stats"
	"lightwsp/internal/workload"
	"lightwsp/internal/wsperr"
)

// maxReplayCycles bounds any single replay segment chain.
const maxReplayCycles = experiments.MaxRunCycles

// Defaults for zero-valued Config knobs.
const (
	// DefaultExhaustiveThreshold: oracles at most this many cycles long are
	// fuzzed at every cycle; longer ones are sampled.
	DefaultExhaustiveThreshold = 4096
	// DefaultMaxInjections is the sampled-mode random-cycle budget.
	DefaultMaxInjections = 256
	// DefaultMaxInteresting caps probe-guided injection cycles.
	DefaultMaxInteresting = 64
	// DefaultShrinkBudget caps replays spent minimizing one divergence.
	DefaultShrinkBudget = 64
)

// Config describes one fuzzing campaign.
type Config struct {
	// Profile is the workload under test (any workload.Profile, including
	// the miniature workload.FuzzSmokeProfiles set).
	Profile workload.Profile
	// Machine is the simulated hardware; a zero value means the scaled
	// Table I configuration (experiments.ScaledConfig). Threads is always
	// overridden from the profile.
	Machine machine.Config
	// Compiler configures region formation; a zero StoreThreshold resolves
	// to half the WPQ size (§IV-A), exactly as the experiments Runner does.
	Compiler compiler.Config

	// ExhaustiveThreshold, MaxInjections and MaxInteresting tune the
	// schedule planner (zero = package defaults).
	ExhaustiveThreshold uint64
	MaxInjections       int
	MaxInteresting      int
	// Cuts is the number of successive power failures per schedule
	// (minimum 1). With Cuts > 1, every fourth schedule cuts again at
	// cycle 0 of the recovered machine — a failure during recovery itself.
	Cuts int
	// Seed drives sampled-mode cycle selection and multi-cut offsets; the
	// same seed always plans the same campaign.
	Seed int64
	// Faults, when enabled, injects persist-fabric faults (drop/dup/delay/
	// reorder, stuck controllers) into every replay segment — the fault plan
	// × power-cut product. The oracle run stays fault-free: reliable
	// delivery must make faulted outcomes indistinguishable from it.
	Faults faults.Plan
	// MaxCycles bounds each replay (zero = experiments.MaxRunCycles).
	MaxCycles uint64

	// Workers sizes the injection worker pool (zero = GOMAXPROCS); Pool,
	// when non-nil, overrides it with a shared pool.
	Workers int
	Pool    *experiments.Pool
	// Cache, when non-nil, memoizes passing verdicts so repeated campaigns
	// skip proven injections. Ignored while CorruptPM is set.
	Cache experiments.Store
	// OutDir, when non-empty, receives one JSON repro file per divergence
	// plus a manifest.json campaign summary.
	OutDir string

	// CorruptPM, when set, mutates the crash image after every drain and
	// before recovery — an intentionally broken recovery used by the
	// harness's own tests to prove divergences are caught and shrunk.
	CorruptPM func(pm *mem.Image)
	// Progress, if non-nil, receives occasional human-readable progress
	// lines. Calls are serialized.
	Progress func(string)
}

// Result is one campaign's manifest.
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Suite         string `json:"suite"`
	App           string `json:"app"`
	Scheme        string `json:"scheme"`
	// KeyHash is the canonical run-key hash of the underlying simulation.
	KeyHash string `json:"key_hash"`
	// Mode is "exhaustive" (every cycle) or "sampled".
	Mode string `json:"mode"`
	Cuts int    `json:"cuts"`
	Seed int64  `json:"seed"`
	// Faults is the campaign's fault plan in -faults flag syntax ("none"
	// when the campaign ran on a perfect fabric).
	Faults string `json:"faults,omitempty"`
	// OracleCycles and OracleHash identify the failure-free reference run.
	OracleCycles uint64 `json:"oracle_cycles"`
	OracleHash   string `json:"oracle_hash"`
	// CyclesCovered is the number of distinct first-cut cycles injected.
	CyclesCovered int `json:"cycles_covered"`
	// InterestingCycles counts probe-guided injection points.
	InterestingCycles int `json:"interesting_cycles"`
	// Injections counts power cuts actually fired across all replays;
	// CacheHits counts schedules skipped via memoized passing verdicts.
	Injections int `json:"injections"`
	CacheHits  int `json:"cache_hits"`
	// Divergences counts schedules whose final state differed from the
	// oracle; Repros holds their shrunk reproducers.
	Divergences int      `json:"divergences"`
	Repros      []Repro  `json:"repros,omitempty"`
	ReproPaths  []string `json:"repro_paths,omitempty"`
	// ShrinkReplays counts the extra replays spent minimizing divergences.
	ShrinkReplays    int     `json:"shrink_replays"`
	Workers          int     `json:"workers"`
	WallSeconds      float64 `json:"wall_seconds"`
	InjectionsPerSec float64 `json:"injections_per_sec"`
}

// String renders the campaign summary as a table.
func (r *Result) String() string {
	t := &stats.Table{
		Title:   fmt.Sprintf("crashfuzz %s/%s (%s)", r.Suite, r.App, r.Scheme),
		Columns: []string{"metric", "value"},
	}
	t.Add("mode", fmt.Sprintf("%s, %d cut(s), seed %d", r.Mode, r.Cuts, r.Seed))
	if r.Faults != "" && r.Faults != "none" {
		t.Add("faults", r.Faults)
	}
	t.Add("oracle", fmt.Sprintf("%d cycles, hash %s", r.OracleCycles, r.OracleHash))
	t.Add("cycles covered", r.CyclesCovered)
	t.Add("probe-guided cycles", r.InterestingCycles)
	t.Add("injections fired", r.Injections)
	t.Add("cached verdicts", r.CacheHits)
	t.Add("divergences", r.Divergences)
	t.Add("injections/sec", fmt.Sprintf("%.0f", r.InjectionsPerSec))
	return t.String()
}

// campaign carries the resolved state one Run shares across workers.
type campaign struct {
	cfg       Config
	rt        *core.Runtime
	mcfg      machine.Config
	orc       *oracle
	key       string
	maxCycles uint64

	mu       sync.Mutex
	done     int
	diverged int
}

// verdictEntry is the cached record of one schedule proven non-diverging
// (the experiments.VerdictCodec envelope payload).
type verdictEntry struct {
	Fired int `json:"fired"`
}

// Run executes one campaign and returns its manifest. Campaign errors
// (workload build failures, replays exceeding MaxCycles, unwritable OutDir)
// are returned as errors; divergences are results, not errors.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx ends, no further schedules
// are dispatched, in-flight replays run to completion (individual replays are
// short), and the campaign returns an error wrapping wsperr.ErrCanceled
// instead of a partial manifest.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	start := time.Now()
	p := cfg.Profile

	mcfg := cfg.Machine
	if mcfg.Cores == 0 {
		mcfg = experiments.ScaledConfig()
	}
	if p.Threads > 0 {
		mcfg.Threads = p.Threads
	}
	if mcfg.Threads < 1 {
		mcfg.Threads = 1
	}
	if mcfg.Threads > mcfg.Cores {
		mcfg.Cores = mcfg.Threads
	}
	ccfg := cfg.Compiler
	if ccfg.StoreThreshold == 0 {
		ccfg.StoreThreshold = mcfg.WPQEntries / 2
		if ccfg.MaxUnroll == 0 {
			ccfg.MaxUnroll = compiler.DefaultConfig().MaxUnroll
		}
	}
	rt, err := buildRuntime(p, ccfg, mcfg)
	if err != nil {
		return nil, err
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = maxReplayCycles
	}
	maxInteresting := cfg.MaxInteresting
	if maxInteresting == 0 {
		maxInteresting = DefaultMaxInteresting
	}

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("crashfuzz: %w: %v", wsperr.ErrCanceled, err)
	}
	orc, interesting, err := buildOracle(rt, maxCycles, maxInteresting)
	if err != nil {
		return nil, err
	}
	key, keyHash := experiments.CanonicalRunKey(p, rt.Sch, mcfg, ccfg)

	scheds, mode := plan(cfg, orc.cycles, interesting)
	c := &campaign{cfg: cfg, rt: rt, mcfg: mcfg, orc: orc, key: key, maxCycles: maxCycles}

	pool := cfg.Pool
	if pool == nil {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		pool = experiments.NewPool(workers)
	}

	outcomes := make([]outcome, len(scheds))
	var wg sync.WaitGroup
	for i := range scheds {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := pool.DoCtx(ctx, func() { outcomes[i] = c.resolve(scheds[i]) }); err != nil {
				outcomes[i] = outcome{err: err}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("crashfuzz: campaign %s/%s: %w: %v", p.Suite, p.Name, wsperr.ErrCanceled, err)
	}

	res := &Result{
		SchemaVersion:     ReproSchemaVersion,
		Suite:             string(p.Suite),
		App:               p.Name,
		Scheme:            rt.Sch.Name,
		KeyHash:           keyHash,
		Mode:              mode,
		Cuts:              maxInt(cfg.Cuts, 1),
		Seed:              cfg.Seed,
		OracleCycles:      orc.cycles,
		OracleHash:        orc.hash,
		Faults:            cfg.Faults.String(),
		CyclesCovered:     len(scheds),
		InterestingCycles: len(interesting),
		Workers:           pool.Size(),
	}
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil {
			return nil, fmt.Errorf("crashfuzz: schedule %v: %w", scheds[i], o.err)
		}
		res.Injections += o.fired
		res.ShrinkReplays += o.shrinkReplays
		if o.cached {
			res.CacheHits++
		}
		if o.repro != nil {
			res.Divergences++
			o.repro.Seed = cfg.Seed
			o.repro.KeyHash = keyHash
			res.Repros = append(res.Repros, *o.repro)
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	if res.WallSeconds > 0 {
		res.InjectionsPerSec = float64(res.Injections) / res.WallSeconds
	}
	if err := writeArtifacts(cfg.OutDir, res); err != nil {
		return nil, err
	}
	c.progress(fmt.Sprintf("crashfuzz %s/%s: %s over %d schedules, %d injections (%d cached), %d divergences, %.1fs",
		p.Suite, p.Name, mode, len(scheds), res.Injections, res.CacheHits, res.Divergences, res.WallSeconds))
	return res, nil
}

// outcome is one schedule's resolution.
type outcome struct {
	cached        bool
	fired         int
	shrinkReplays int
	repro         *Repro
	err           error
}

// resolve replays one schedule: cached verdict, or replay + verdict, with
// shrinking on divergence.
func (c *campaign) resolve(sched Schedule) outcome {
	defer c.tick()
	vkey, vhash := c.verdictKey(sched)
	useCache := c.cfg.Cache != nil && c.cfg.CorruptPM == nil
	if useCache {
		var e verdictEntry
		if experiments.VerdictCodec.Load(c.cfg.Cache, vhash, vkey, &e) {
			return outcome{cached: true, fired: e.Fired}
		}
	}
	rep, err := Replay(c.rt, sched, c.maxCycles, c.cfg.CorruptPM, c.cfg.Faults)
	if err != nil {
		return outcome{err: err}
	}
	if verr := verdict(rep.Sys, c.orc, c.mcfg.Threads); verr != nil {
		return c.diverge(sched, rep, verr)
	}
	if useCache {
		experiments.VerdictCodec.Store(c.cfg.Cache, vhash, vkey, verdictEntry{Fired: rep.Fired})
	}
	return outcome{fired: rep.Fired}
}

// diverge shrinks a failing schedule — first the cut cycles, then the fault
// plan's knobs — and packages the minimal reproducer.
func (c *campaign) diverge(sched Schedule, rep *ReplayResult, verr error) outcome {
	fired := rep.Fired
	probes := 0
	failsWith := func(s Schedule, plan faults.Plan) bool {
		r, err := Replay(c.rt, s, c.maxCycles, c.cfg.CorruptPM, plan)
		if err != nil {
			return false // a broken replay is not a reproduction
		}
		fired += r.Fired
		return verdict(r.Sys, c.orc, c.mcfg.Threads) != nil
	}
	minimal, n := Shrink(sched, func(s Schedule) bool {
		return failsWith(s, c.cfg.Faults)
	}, DefaultShrinkBudget)
	probes += n
	plan, n := ShrinkPlan(c.cfg.Faults, func(p faults.Plan) bool {
		return failsWith(minimal, p)
	}, DefaultShrinkBudget)
	probes += n
	// Re-derive the minimal reproducer's diff for the repro file.
	diff := verr
	if mrep, err := Replay(c.rt, minimal, c.maxCycles, c.cfg.CorruptPM, plan); err == nil {
		if merr := verdict(mrep.Sys, c.orc, c.mcfg.Threads); merr != nil {
			diff = merr
		}
	}
	c.mu.Lock()
	c.diverged++
	c.mu.Unlock()
	return outcome{
		fired:         fired,
		shrinkReplays: probes,
		repro: &Repro{
			SchemaVersion: ReproSchemaVersion,
			Profile:       c.cfg.Profile,
			Scheme:        c.rt.Sch,
			Machine:       c.mcfg,
			Compiler:      c.rt.Compiled.Config,
			Cuts:          minimal,
			Faults:        plan,
			OracleCycles:  c.orc.cycles,
			OracleHash:    c.orc.hash,
			Diff:          []string{diff.Error()},
			Note:          fmt.Sprintf("shrunk from %v in %d replays", sched, probes),
		},
	}
}

// verdictKey extends the canonical run key with the verdict schema version,
// the schedule and the fault plan, yielding the cache identity of one
// verdict.
func (c *campaign) verdictKey(sched Schedule) (key, hash string) {
	key = fmt.Sprintf("%s|crashfuzz:v%d|cuts=%v|faults=%s",
		c.key, experiments.VerdictCodec.Version, []uint64(sched), c.cfg.Faults.Key())
	sum := sha256.Sum256([]byte(key))
	return key, hex.EncodeToString(sum[:])
}

// tick advances the progress counter, emitting a line every 512 schedules.
func (c *campaign) tick() {
	if c.cfg.Progress == nil {
		return
	}
	c.mu.Lock()
	c.done++
	emit := c.done%512 == 0
	done, diverged := c.done, c.diverged
	c.mu.Unlock()
	if emit {
		c.progress(fmt.Sprintf("crashfuzz %s/%s: %d schedules resolved, %d divergences",
			c.cfg.Profile.Suite, c.cfg.Profile.Name, done, diverged))
	}
}

func (c *campaign) progress(line string) {
	if c.cfg.Progress == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.Progress(line)
}

// plan derives the campaign's failure schedules: the base (first-cut) cycles
// and, for multi-cut campaigns, the follow-on cut offsets.
func plan(cfg Config, total uint64, interesting []uint64) ([]Schedule, string) {
	thresh := cfg.ExhaustiveThreshold
	if thresh == 0 {
		thresh = DefaultExhaustiveThreshold
	}
	var bases []uint64
	mode := "exhaustive"
	if total <= thresh {
		bases = make([]uint64, 0, total)
		for c := uint64(0); c < total; c++ {
			bases = append(bases, c)
		}
	} else {
		mode = "sampled"
		budget := cfg.MaxInjections
		if budget <= 0 {
			budget = DefaultMaxInjections
		}
		seen := map[uint64]struct{}{}
		add := func(c uint64) {
			if c < total {
				seen[c] = struct{}{}
			}
		}
		// Probe-guided: each interesting cycle and its neighbours, where
		// boundary/WPQ/escape state is in flight.
		for _, ic := range interesting {
			if ic > 0 {
				add(ic - 1)
			}
			add(ic)
			add(ic + 1)
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		for i := 0; i < budget; i++ {
			add(rng.Uint64() % total)
		}
		bases = make([]uint64, 0, len(seen))
		for c := range seen {
			bases = append(bases, c)
		}
		sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	}

	cuts := maxInt(cfg.Cuts, 1)
	scheds := make([]Schedule, 0, len(bases))
	for i, base := range bases {
		s := Schedule{base}
		if cuts > 1 {
			// Per-base deterministic offsets; every fourth schedule's
			// second cut lands at cycle 0 of the recovered machine — a
			// power failure during recovery itself.
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64((base+1)*0x9E3779B97F4A7C15)))
			for k := 1; k < cuts; k++ {
				if k == 1 && i%4 == 0 {
					s = append(s, 0)
					continue
				}
				s = append(s, rng.Uint64()%total)
			}
		}
		scheds = append(scheds, s)
	}
	return scheds, mode
}

// writeArtifacts persists the campaign's repro files and manifest.
func writeArtifacts(dir string, res *Result) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range res.Repros {
		path := filepath.Join(dir, fmt.Sprintf("repro-%s-%02d.json", res.KeyHash[:12], i))
		if err := res.Repros[i].WriteFile(path); err != nil {
			return err
		}
		res.ReproPaths = append(res.ReproPaths, path)
	}
	blobs := experiments.NewBlobCache(dir)
	blobs.WriteJSON("manifest", res)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
