package crashfuzz

import (
	"fmt"

	"lightwsp/internal/core"
	"lightwsp/internal/faults"
	"lightwsp/internal/machine"
	"lightwsp/internal/mem"
	"lightwsp/internal/recovery"
)

// Schedule is one failure schedule: a sequence of power-cut cycles. Cut i
// fires when the machine of segment i — the initial run for i = 0, the i-th
// recovered machine afterwards — reaches that cycle of its own counter
// (recovered machines restart at cycle 0). A cut of 0 therefore cuts power
// the instant the previous recovery hands off, before a single cycle
// executes: the model's tightest "failure during recovery itself".
//
// A cut whose cycle lies beyond the segment's completion never fires (the
// run finishes first); the replay then skips the remaining cuts.
type Schedule []uint64

// String renders the schedule compactly for logs and error messages.
func (s Schedule) String() string {
	return fmt.Sprintf("%v", []uint64(s))
}

// clone returns an independent copy.
func (s Schedule) clone() Schedule { return append(Schedule{}, s...) }

// ReplayResult is one schedule's outcome.
type ReplayResult struct {
	// Sys is the final machine, run to completion after the last cut.
	Sys *machine.System
	// Fired counts the cuts that actually happened (a schedule can outlive
	// its program).
	Fired int
	// Discarded totals the WPQ entries of unpersisted regions dropped
	// across all drains.
	Discarded int
}

// Replay executes one failure schedule against a compiled runtime: run to
// each cut cycle, cut power (§IV-F drain), optionally corrupt the crash
// image (test-only broken-recovery hook), recover, and continue; after the
// last cut the machine runs to completion. An enabled fault plan attaches a
// fresh injector to every segment — the initial machine and each recovered
// one — so each segment's fault pattern depends only on the plan and the
// segment's own cycle counter, never on earlier cuts; the oracle stays
// fault-free. Replays are deterministic: the same runtime, schedule and plan
// always produce the same final machine.
func Replay(rt *core.Runtime, sched Schedule, maxCycles uint64, corrupt func(*mem.Image), plan faults.Plan) (*ReplayResult, error) {
	sys, err := rt.NewSystem()
	if err != nil {
		return nil, err
	}
	sys.SetFaultInjector(faults.New(plan))
	res := &ReplayResult{}
	for _, cut := range sched {
		if sys.RunUntil(cut) {
			break // completed before the cut could fire
		}
		rep := sys.PowerFail()
		if corrupt != nil {
			corrupt(sys.PM())
		}
		sys, err = rt.Recover(sys.PM(), rep.RegionCounter)
		if err != nil {
			return nil, fmt.Errorf("crashfuzz: recover after cut at cycle %d: %w", cut, err)
		}
		sys.SetFaultInjector(faults.New(plan))
		res.Fired++
		res.Discarded += rep.Discarded
	}
	if !sys.Run(maxCycles) {
		return nil, fmt.Errorf("crashfuzz: replay %v exceeded %d cycles", sched, maxCycles)
	}
	res.Sys = sys
	return res, nil
}

// verdict checks one completed replay against the oracle. Every run must
// finish with PM ≡ final architectural state on program data; single-
// threaded runs must additionally match the failure-free oracle word for
// word (multi-threaded runs can legally reorder commutative critical
// sections across a recovery, so their final data need not match any one
// failure-free interleaving).
func verdict(final *machine.System, orc *oracle, threads int) error {
	if err := recovery.VerifyPMMatchesArch(final.PM(), final.Arch()); err != nil {
		return err
	}
	if threads == 1 {
		if err := recovery.VerifyEquivalence(final.PM(), orc.pm); err != nil {
			return err
		}
	}
	return nil
}
