package crashfuzz

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/experiments"
	"lightwsp/internal/machine"
	"lightwsp/internal/workload"
)

func sampleRepro() *Repro {
	return &Repro{
		SchemaVersion: ReproSchemaVersion,
		Profile:       workload.FuzzSmokeProfiles()[0],
		Scheme:        machine.Scheme{Name: "lightwsp"},
		Machine:       machine.DefaultConfig(),
		Compiler:      compiler.DefaultConfig(),
		Cuts:          Schedule{42},
		Seed:          7,
		KeyHash:       "abc",
		OracleCycles:  1000,
		OracleHash:    "0123456789abcdef",
		Diff:          []string{"PM[0x1000] = 1, want 2"},
		Note:          "test",
	}
}

func TestReproFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	want := sampleRepro()
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the repro:\n%+v\n%+v", got, want)
	}
}

func TestLoadReproRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, mutate func(*Repro)) string {
		r := sampleRepro()
		mutate(r)
		path := filepath.Join(dir, name)
		if err := r.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if _, err := LoadRepro(write("v.json", func(r *Repro) { r.SchemaVersion = 99 })); err == nil ||
		!strings.Contains(err.Error(), "schema version") {
		t.Fatalf("wrong schema version accepted: %v", err)
	}
	if _, err := LoadRepro(write("c.json", func(r *Repro) { r.Cuts = nil })); err == nil ||
		!strings.Contains(err.Error(), "empty failure schedule") {
		t.Fatalf("empty schedule accepted: %v", err)
	}
	garbage := filepath.Join(dir, "g.json")
	if err := os.WriteFile(garbage, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRepro(garbage); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadRepro(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestReplayReproOnHealthyTree replays a passing schedule: the repro loads,
// the embedded oracle matches, and the verdict is clean (exit-0 path of
// `lightwsp-crashfuzz -replay`).
func TestReplayReproOnHealthyTree(t *testing.T) {
	p := workload.FuzzSmokeProfiles()[0]
	rt, err := buildRuntime(p, compiler.Config{}, resolveTestMachine(p))
	if err != nil {
		t.Fatal(err)
	}
	orc, _, err := buildOracle(rt, maxReplayCycles, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := &Repro{
		SchemaVersion: ReproSchemaVersion,
		Profile:       p,
		Scheme:        rt.Sch,
		Machine:       rt.Cfg,
		Compiler:      rt.Compiled.Config,
		Cuts:          Schedule{orc.cycles / 2},
		OracleCycles:  orc.cycles,
		OracleHash:    orc.hash,
	}
	if err := ReplayRepro(r); err != nil {
		t.Fatalf("healthy tree reported a divergence: %v", err)
	}
	// A stale oracle marks the repro as outdated, not as a divergence.
	r.OracleHash = "ffffffffffffffff"
	err = ReplayRepro(r)
	if err == nil || !strings.Contains(err.Error(), "oracle mismatch") {
		t.Fatalf("stale oracle not flagged: %v", err)
	}
}

// resolveTestMachine mirrors Run's machine-config resolution for a profile.
func resolveTestMachine(p workload.Profile) machine.Config {
	mcfg := experiments.ScaledConfig()
	if p.Threads > 0 {
		mcfg.Threads = p.Threads
	}
	if mcfg.Threads > mcfg.Cores {
		mcfg.Cores = mcfg.Threads
	}
	return mcfg
}
