package crashfuzz

import (
	"fmt"

	"lightwsp/internal/core"
	"lightwsp/internal/mem"
	"lightwsp/internal/probe"
	"lightwsp/internal/recovery"
)

// oracle is the failure-free reference a campaign diffs every injected run
// against: the final persisted image of one crash-free execution, its cycle
// count (the space of legal injection points), and a content hash that
// identifies the oracle across processes and parallel campaigns.
type oracle struct {
	pm     *mem.Image
	cycles uint64
	hash   string
}

// interestCollector watches the oracle run's probe stream and records the
// cycles at which persistence-machinery events fire — boundary broadcasts,
// WPQ flushes and overflow-escape transitions, undo-log writes, FEB
// back-pressure burst ends. Those are the cycles where the most protocol
// state is in flight, so a sampled campaign seeds its injection set with
// them (each ±1) before drawing random cycles.
type interestCollector struct {
	max    int
	seen   map[uint64]struct{}
	cycles []uint64
	common int // running count of high-frequency events, for striding
}

// commonStride thins the high-frequency kinds (every store flushes): only
// every commonStride-th such event contributes a cycle, so rare events —
// overflow escapes, undo writes, stall bursts — keep most of the budget.
const commonStride = 17

func newInterestCollector(max int) *interestCollector {
	return &interestCollector{max: max, seen: map[uint64]struct{}{}}
}

func (ic *interestCollector) sink() probe.Sink {
	return probe.SinkFunc(func(e probe.Event) {
		switch e.Kind {
		case probe.WPQOverflowEnter, probe.WPQOverflowExit, probe.WPQUndo,
			probe.FEBStallStop:
			// Rare: always interesting.
		case probe.BoundaryBroadcast, probe.WPQFlush:
			ic.common++
			if ic.common%commonStride != 0 {
				return
			}
		default:
			return
		}
		ic.record(e.Cycle)
	})
}

func (ic *interestCollector) record(cycle uint64) {
	if len(ic.seen) >= ic.max {
		return
	}
	if _, ok := ic.seen[cycle]; ok {
		return
	}
	ic.seen[cycle] = struct{}{}
	ic.cycles = append(ic.cycles, cycle)
}

// buildOracle runs the workload once crash-free, checks the completed run's
// own persistence invariant (PM ≡ architectural state on program data — if
// that fails, the harness has found a bug before injecting anything), and
// returns the oracle plus the interesting cycles observed.
func buildOracle(rt *core.Runtime, maxCycles uint64, maxInteresting int) (*oracle, []uint64, error) {
	sys, err := rt.NewSystem()
	if err != nil {
		return nil, nil, err
	}
	ic := newInterestCollector(maxInteresting)
	sys.SetProbeSink(ic.sink())
	if !sys.Run(maxCycles) {
		return nil, nil, fmt.Errorf("crashfuzz: oracle run exceeded %d cycles", maxCycles)
	}
	if err := recovery.VerifyPMMatchesArch(sys.PM(), sys.Arch()); err != nil {
		return nil, nil, fmt.Errorf("crashfuzz: failure-free run violates persistence invariant: %w", err)
	}
	return &oracle{
		pm:     sys.PM(),
		cycles: sys.Stats.Cycles,
		hash:   fmt.Sprintf("%016x", sys.PM().Hash()),
	}, ic.cycles, nil
}
