package crashfuzz

import (
	"strings"
	"testing"

	"lightwsp/internal/experiments"
	"lightwsp/internal/faults"
)

// gauntlet is the combined fabric-fault plan the faulted campaigns run
// under: drops, duplicates, delays and reorders all enabled at once.
func gauntlet(seed int64) faults.Plan {
	return faults.Plan{
		Seed:       seed,
		DropPct:    20,
		DupPct:     10,
		DelayPct:   20,
		MaxDelay:   24,
		ReorderPct: 10,
	}
}

// TestFaultedExhaustiveCampaignPasses is the tentpole acceptance criterion:
// with the full fault gauntlet active in EVERY replay segment — drops,
// duplicates, delays and reorders on the MC fabric — a power cut at every
// cycle of the miniature workload still converges to the failure-free
// oracle. Reliable boundary/ACK delivery must make a lossy fabric
// indistinguishable from a perfect one.
func TestFaultedExhaustiveCampaignPasses(t *testing.T) {
	if raceEnabled {
		t.Skip("exhaustive campaign too slow under -race")
	}
	if testing.Short() {
		t.Skip("exhaustive campaign skipped in -short mode")
	}
	plan := gauntlet(7)
	res, err := Run(Config{Profile: smokeProfile(t, "fuzz-st"), Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "exhaustive" {
		t.Fatalf("smoke profile sampled (%d cycles); shrink the profile", res.OracleCycles)
	}
	if res.Divergences != 0 {
		t.Fatalf("%d divergences under fault plan %s: %+v", res.Divergences, plan, res.Repros)
	}
	if res.Faults != plan.String() {
		t.Fatalf("manifest records faults %q, campaign ran %q", res.Faults, plan)
	}
}

// TestStuckMCFaultCampaignPasses drives the graceful-degradation path under
// power cuts: controller 1 goes unresponsive mid-run for long enough to
// blow the degrade deadline, the survivors fall back to undo-logged eager
// persistence, and a cut at every cycle — including inside the stuck window
// and while degraded — must still recover to the oracle.
func TestStuckMCFaultCampaignPasses(t *testing.T) {
	if raceEnabled {
		t.Skip("exhaustive campaign too slow under -race")
	}
	if testing.Short() {
		t.Skip("exhaustive campaign skipped in -short mode")
	}
	m := experiments.ScaledConfig()
	m.DegradeDeadline = 150
	res, err := Run(Config{
		Profile: smokeProfile(t, "fuzz-st"),
		Machine: m,
		Seed:    1,
		Faults:  faults.Plan{Seed: 5, StuckMC: 1, StuckFrom: 100, StuckFor: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergences != 0 {
		t.Fatalf("%d divergences with a stuck controller: %+v", res.Divergences, res.Repros)
	}
	if res.Mode != "exhaustive" {
		t.Fatalf("smoke profile sampled (%d cycles)", res.OracleCycles)
	}
}

// TestBrokenDupAcksCaughtShrunkReplayed wires in the intentionally broken
// ACK bookkeeping (BrokenDupAcks counts boundary-ACK messages instead of
// deduplicating by peer) and demands the fault campaign catch it, shrink the
// repro — schedule and fault plan — and replay it from its JSON file. The
// plan combines duplication with a stuck third controller: while it is
// stuck, its boundary replicas sit in the persist path, so a duplicated ACK
// from the healthy peer double-counts to the all-peers threshold and the
// home controller flushes regions — checkpoint PCs included — that the
// stuck controller has never seen. A cut in that window discards the stuck
// controller's stores while recovery believes the regions complete. (Drops
// alone cannot expose this: the power-fail drain's Reannounce round heals
// every lost ACK, so only missing boundary knowledge is fatal.)
func TestBrokenDupAcksCaughtShrunkReplayed(t *testing.T) {
	if raceEnabled {
		t.Skip("fault campaign too slow under -race")
	}
	if testing.Short() {
		t.Skip("fault campaign skipped in -short mode")
	}
	m := experiments.ScaledConfig()
	m.NumMCs = 3
	m.BrokenDupAcks = true
	plan := faults.Plan{Seed: 11, DupPct: 60, StuckMC: 2, StuckFrom: 800, StuckFor: 400}
	res, err := Run(Config{
		Profile:             smokeProfile(t, "fuzz-st"),
		Machine:             m,
		ExhaustiveThreshold: 1, // force sampling: keep the shrink work small
		MaxInjections:       200,
		MaxInteresting:      16,
		Seed:                2,
		Faults:              plan,
		OutDir:              t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergences == 0 {
		t.Fatal("broken duplicate-ACK bookkeeping not caught")
	}
	if res.ShrinkReplays == 0 {
		t.Fatal("divergences reported without any shrinking")
	}
	if len(res.ReproPaths) != len(res.Repros) {
		t.Fatalf("%d repros, %d files written", len(res.Repros), len(res.ReproPaths))
	}
	for _, r := range res.Repros {
		if len(r.Cuts) != 1 {
			t.Fatalf("repro not minimal: %d cuts (%v)", len(r.Cuts), r.Cuts)
		}
		// Plan shrinking may discover the injected duplicates are not even
		// needed — the reliability protocol's own replay re-ACKs already
		// provide duplicates for the broken counter to double-count — but
		// the stuck window is irreducible: without it every controller
		// holds every boundary and the drain converges.
		if !r.Faults.Enabled() || r.Faults.StuckFor == 0 {
			t.Fatalf("repro fault plan lost the stuck window the bug needs: %+v", r.Faults)
		}
		if !r.Machine.BrokenDupAcks {
			t.Fatal("repro does not pin the broken machine configuration")
		}
	}

	// The shrunk repro must still fail when replayed from its file — the
	// full ReplayRepro path: rebuild runtime, re-run the oracle, replay the
	// cuts under the shrunk fault plan.
	r, err := LoadRepro(res.ReproPaths[0])
	if err != nil {
		t.Fatal(err)
	}
	rerr := ReplayRepro(r)
	if rerr == nil {
		t.Fatalf("shrunk repro %v under plan %s no longer fails", r.Cuts, r.Faults)
	}
	if !strings.Contains(rerr.Error(), "still fails") {
		t.Fatalf("replay failed for the wrong reason: %v", rerr)
	}

	// With healthy per-peer ACK bookkeeping the same schedule and fault
	// plan pass: the harness blamed the broken bookkeeping, not the fabric.
	healthy := r.Machine
	healthy.BrokenDupAcks = false
	rt, err := buildRuntime(r.Profile, r.Compiler, healthy)
	if err != nil {
		t.Fatal(err)
	}
	orc, _, err := buildOracle(rt, maxReplayCycles, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(rt, r.Cuts, maxReplayCycles, nil, r.Faults)
	if err != nil {
		t.Fatal(err)
	}
	if err := verdict(rep.Sys, orc, healthy.Threads); err != nil {
		t.Fatalf("schedule %v fails even with healthy ACK bookkeeping: %v", r.Cuts, err)
	}
}
