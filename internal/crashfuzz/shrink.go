package crashfuzz

import "lightwsp/internal/faults"

// Shrink reduces a failing schedule to a minimal reproducer: first by
// dropping cuts (a one-cut repro beats a three-cut one), then by driving
// each surviving cut's cycle toward zero (candidates 0, half, minus one).
// fails must be a deterministic predicate — true when the schedule still
// diverges from the oracle — and budget caps how many times it is invoked,
// since each probe is a full replay.
//
// Shrink runs its passes to a fixpoint, so with a sufficient budget it is
// idempotent: re-shrinking a minimal schedule probes the exact same
// candidates, none fail, and the schedule comes back unchanged. That makes
// repro files stable artifacts — re-running the harness on a repro never
// rewrites it.
//
// It returns the shrunk schedule and the number of probes spent. The input
// schedule must fail; the output is guaranteed to fail (every adopted
// candidate was observed failing).
func Shrink(s Schedule, fails func(Schedule) bool, budget int) (Schedule, int) {
	used := 0
	probe := func(cand Schedule) bool {
		if used >= budget {
			return false
		}
		used++
		return fails(cand)
	}
	cur := s.clone()
	for changed := true; changed; {
		changed = false
		// Pass 1 — drop cuts, later ones first, so the earliest injection
		// (the one the divergence hinges on) is the last to go.
		for i := len(cur) - 1; i >= 0 && len(cur) > 1; i-- {
			cand := make(Schedule, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if probe(cand) {
				cur = cand
				changed = true
			}
		}
		// Pass 2 — minimize each cut's cycle. Zero first (most divergences
		// that fail at cycle c also fail at the boot image), then halving
		// for a logarithmic descent, then minus one to polish.
		for i := range cur {
			v := cur[i]
			for _, cand := range []uint64{0, v / 2, v - 1} {
				if cand >= v {
					continue
				}
				next := cur.clone()
				next[i] = cand
				if probe(next) {
					cur = next
					changed = true
					break
				}
			}
		}
	}
	return cur, used
}

// ShrinkPlan reduces a failing fault plan to a minimal one, holding the
// (already shrunk) schedule fixed: it tries disabling the whole plan, then
// zeroing each fault dimension independently, then halving the surviving
// rates — a divergence that reproduces with only duplication enabled is a
// much sharper repro than one needing the full gauntlet. Like Shrink, fails
// must be deterministic, budget caps the probes, and the returned plan is
// guaranteed to still fail (every adopted candidate was observed failing).
func ShrinkPlan(p faults.Plan, fails func(faults.Plan) bool, budget int) (faults.Plan, int) {
	if !p.Enabled() {
		return p, 0
	}
	used := 0
	probe := func(cand faults.Plan) bool {
		if used >= budget {
			return false
		}
		used++
		return fails(cand)
	}
	// The cheapest win: the divergence needs no faults at all (it was a
	// plain crash-consistency bug the fault campaign happened to surface).
	if off := (faults.Plan{}); probe(off) {
		return off, used
	}
	cur := p
	for changed := true; changed; {
		changed = false
		for _, cand := range []faults.Plan{
			func(c faults.Plan) faults.Plan { c.DropPct = 0; return c }(cur),
			func(c faults.Plan) faults.Plan { c.DupPct = 0; return c }(cur),
			func(c faults.Plan) faults.Plan { c.DelayPct = 0; c.MaxDelay = 0; return c }(cur),
			func(c faults.Plan) faults.Plan { c.ReorderPct = 0; return c }(cur),
			func(c faults.Plan) faults.Plan { c.StuckFor = 0; c.StuckFrom = 0; c.StuckMC = 0; return c }(cur),
			func(c faults.Plan) faults.Plan {
				c.DropPct /= 2
				c.DupPct /= 2
				c.DelayPct /= 2
				c.ReorderPct /= 2
				return c
			}(cur),
		} {
			if cand == cur || !cand.Enabled() {
				continue // the all-off plan was already probed up front
			}
			if probe(cand) {
				cur = cand
				changed = true
			}
		}
	}
	return cur, used
}
