package crashfuzz

// Shrink reduces a failing schedule to a minimal reproducer: first by
// dropping cuts (a one-cut repro beats a three-cut one), then by driving
// each surviving cut's cycle toward zero (candidates 0, half, minus one).
// fails must be a deterministic predicate — true when the schedule still
// diverges from the oracle — and budget caps how many times it is invoked,
// since each probe is a full replay.
//
// Shrink runs its passes to a fixpoint, so with a sufficient budget it is
// idempotent: re-shrinking a minimal schedule probes the exact same
// candidates, none fail, and the schedule comes back unchanged. That makes
// repro files stable artifacts — re-running the harness on a repro never
// rewrites it.
//
// It returns the shrunk schedule and the number of probes spent. The input
// schedule must fail; the output is guaranteed to fail (every adopted
// candidate was observed failing).
func Shrink(s Schedule, fails func(Schedule) bool, budget int) (Schedule, int) {
	used := 0
	probe := func(cand Schedule) bool {
		if used >= budget {
			return false
		}
		used++
		return fails(cand)
	}
	cur := s.clone()
	for changed := true; changed; {
		changed = false
		// Pass 1 — drop cuts, later ones first, so the earliest injection
		// (the one the divergence hinges on) is the last to go.
		for i := len(cur) - 1; i >= 0 && len(cur) > 1; i-- {
			cand := make(Schedule, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if probe(cand) {
				cur = cand
				changed = true
			}
		}
		// Pass 2 — minimize each cut's cycle. Zero first (most divergences
		// that fail at cycle c also fail at the boot image), then halving
		// for a logarithmic descent, then minus one to polish.
		for i := range cur {
			v := cur[i]
			for _, cand := range []uint64{0, v / 2, v - 1} {
				if cand >= v {
					continue
				}
				next := cur.clone()
				next[i] = cand
				if probe(next) {
					cur = next
					changed = true
					break
				}
			}
		}
	}
	return cur, used
}
