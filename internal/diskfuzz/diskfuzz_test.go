package diskfuzz

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sabotagePlan maximizes the corruption class only checksums catch: lying
// fsyncs whose crashes flip digits in content that still parses as JSON.
const sabotagePlan = "fsynclie=60,flip=80,keep=20,eio=1"

// TestCampaignCleanUnderHostileDisk is the headline claim: across the
// rotating fault presets — disk-full, torn writes, lying firmware — with a
// power cut after every leg, the store is always correct or loudly
// quarantined, never silently wrong.
func TestCampaignCleanUnderHostileDisk(t *testing.T) {
	res, err := Run(Config{Seed: 1, Rounds: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.SilentCorruptions != 0 {
		t.Fatalf("silent corruptions under verification: %+v", res.Violations)
	}
	if res.Crashes == 0 || res.Advances == 0 {
		t.Fatalf("campaign did no work: %+v", res)
	}
	// The faulted rounds must actually have bitten: loud failures and
	// integrity-layer activity, not a quiet walk in the park.
	if res.DetectedFailures == 0 {
		t.Fatal("no detected failures — fault injection is not reaching the store")
	}
	if res.FsyncLies == 0 {
		t.Fatal("no fsync lies fired — the lying-firmware preset is dead")
	}
}

// TestSabotageProvesTheOracle disables checksum verification and replays a
// digit-flipping campaign: the silent corruption the campaign exists to
// catch must now appear, and the same seed with verification back on must
// be clean with quarantines instead. A campaign that cannot fail cannot
// prove anything.
func TestSabotageProvesTheOracle(t *testing.T) {
	cfg := Config{Seed: 7, Rounds: 6, PlanSpec: sabotagePlan}

	sab := cfg
	sab.SkipVerify = true
	broken, err := Run(sab)
	if err != nil {
		t.Fatal(err)
	}
	if broken.SilentCorruptions == 0 {
		t.Fatal("verification disabled yet no silent corruption surfaced — the campaign cannot catch what it claims")
	}

	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.SilentCorruptions != 0 {
		t.Fatalf("checksums on, same seed: silent corruptions: %+v", clean.Violations)
	}
	if clean.Storage.Quarantined == 0 && clean.Storage.ChecksumFailures == 0 {
		t.Fatalf("checksums on, same seed: corruption neither quarantined nor counted: %+v", clean.Storage)
	}
}

// TestCampaignDeterministic: the same seed replays the same campaign, so
// every violation is its own reproducer.
func TestCampaignDeterministic(t *testing.T) {
	run := func() Result {
		res, err := Run(Config{Seed: 3, Rounds: 4})
		if err != nil {
			t.Fatal(err)
		}
		r := *res
		r.WallSeconds = 0
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("campaigns with the same seed diverge:\n%+v\n%+v", a, b)
	}
}

// TestArtifactsWritten: OutDir receives a manifest plus one repro file per
// violation (exercised via sabotage so violations exist).
func TestArtifactsWritten(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{Seed: 7, Rounds: 6, PlanSpec: sabotagePlan, SkipVerify: true, OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	if res.SilentCorruptions == 0 {
		t.Fatal("sabotage produced no violations to serialize")
	}
	if _, err := os.Stat(filepath.Join(dir, "violation-00.json")); err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty summary table")
	}
}
