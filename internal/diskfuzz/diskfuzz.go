// Package diskfuzz is the hostile-disk counterpart of internal/crashfuzz:
// it validates the durable layer's storage claim — every persisted artifact
// is either correct or loudly quarantined, never silently wrong — by running
// the session and blob-cache stacks over an in-memory filesystem
// (internal/hostfs.MemFS) that injects the faults real disks commit: ENOSPC,
// transient EIO, torn writes, firmware fsync lies, and power cuts that keep,
// tear, or digit-flip acknowledged-but-unsynced bytes.
//
// A campaign first runs the workload once on a perfect in-memory disk to
// produce an oracle stream (the exact NDJSON lines an uninterrupted session
// emits). Round 0 is the control: power cuts on an honest disk, which must
// reproduce the oracle byte-for-byte — anything else is a harness bug, not a
// finding. Later rounds rotate fault-plan emphases (disk-full, torn-write,
// lying-firmware), each round interleaving advances with crashes, then
// re-reading everything back over the bare crashed image. The verdict is a
// byte-prefix check: the replayed stream may be short (detected failure,
// lost tail — the disk was hostile) but may never diverge from the oracle.
// A divergence is a silent-corruption violation, the one outcome the
// integrity layer exists to make impossible. The campaign's own sabotage
// hook — SkipVerify, which disables checksum verification end to end — is
// how the harness's tests prove the violations it reports are real: the
// same seed that is clean with verification on must produce violations with
// it off.
//
// Everything is deterministic in the seed (fault decisions are hashed, the
// workload is a simulator): the same Config replays the same campaign,
// which makes every violation its own reproducer.
package diskfuzz

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"lightwsp/internal/experiments"
	"lightwsp/internal/hostfs"
	"lightwsp/internal/stats"
)

// SchemaVersion stamps campaign manifests and violation files.
const SchemaVersion = 1

// Defaults for zero-valued Config knobs.
const (
	// DefaultRounds is the campaign length including the round-0 control.
	DefaultRounds = 4
	// DefaultLegs is how many crash/reopen cycles each round's session leg
	// performs.
	DefaultLegs = 3
	// blobsPerRound sizes each round's blob-cache leg.
	blobsPerRound = 6
)

// defaultTargets is the advance ladder, chosen to straddle the 600-cycle
// snapshot cadence and run the fuzz-st workload to completion (~2.4k
// cycles).
var defaultTargets = []uint64{700, 1400, 10_000}

// planPresets are the fault-plan emphases faulted rounds rotate through:
// a filling disk, a tearing disk, and lying firmware whose crashes flip
// digits (corruption that still parses — exactly what checksums exist
// for).
var planPresets = []string{
	"enospc=6,eio=4,short=2,slow=2:1",
	"short=6,eio=3,torn=45,keep=25,fsynclie=10",
	"fsynclie=35,flip=45,keep=25,eio=1",
}

// Config describes one campaign.
type Config struct {
	// Seed drives every fault decision; the same seed replays the same
	// campaign.
	Seed int64
	// Rounds is the campaign length including the round-0 control
	// (zero = DefaultRounds).
	Rounds int
	// Legs is the number of crash/reopen cycles per round (zero =
	// DefaultLegs).
	Legs int
	// PlanSpec, when non-empty, replaces the rotating presets for every
	// faulted round (ParsePlan grammar). The control round stays fault-free.
	PlanSpec string
	// SkipVerify disables checksum verification across the whole stack —
	// the sabotage hatch the harness's own tests use to prove the campaign
	// catches what it claims.
	SkipVerify bool
	// OutDir, when non-empty, receives manifest.json plus one
	// violation-NN.json per silent-corruption finding.
	OutDir string
	// Progress, if non-nil, receives occasional human-readable lines.
	Progress func(string)
}

// Violation is one silent-corruption finding: a replayed artifact that
// decoded cleanly but disagreed with the failure-free oracle. The campaign
// seed plus the round replays it.
type Violation struct {
	SchemaVersion int    `json:"schema_version"`
	Seed          int64  `json:"seed"`
	Round         int    `json:"round"`
	Leg           string `json:"leg"` // "session" or "blobs"
	Plan          string `json:"plan"`
	Detail        string `json:"detail"`
	Line          int    `json:"line,omitempty"`
	Got           string `json:"got,omitempty"`
	Want          string `json:"want,omitempty"`
}

// Result is one campaign's manifest.
type Result struct {
	SchemaVersion int      `json:"schema_version"`
	Seed          int64    `json:"seed"`
	Rounds        int      `json:"rounds"`
	Legs          int      `json:"legs"`
	SkipVerify    bool     `json:"skip_verify,omitempty"`
	Plans         []string `json:"plans"`
	// OracleLines is the length of the failure-free reference stream.
	OracleLines int `json:"oracle_lines"`
	// Advances counts session advance calls; Crashes counts power cuts;
	// FsyncLies counts syncs the simulated firmware acknowledged without
	// persisting.
	Advances  int    `json:"advances"`
	Crashes   uint64 `json:"crashes"`
	FsyncLies uint64 `json:"fsync_lies"`
	// DetectedFailures counts operations that failed loudly — the
	// acceptable outcome under a hostile disk.
	DetectedFailures int `json:"detected_failures"`
	// Storage is the campaign-wide integrity counter snapshot
	// (quarantines, checksum failures, journal truncations, retries).
	Storage experiments.StorageSnapshot `json:"storage"`
	// ScrubQuarantined and ScrubRemoved total the verdict-time scrub
	// passes, which must never break restorability.
	ScrubQuarantined int `json:"scrub_quarantined"`
	ScrubRemoved     int `json:"scrub_removed"`
	// SilentCorruptions is the verdict: nonzero means the store served
	// wrong bytes as right ones.
	SilentCorruptions int         `json:"silent_corruptions"`
	Violations        []Violation `json:"violations,omitempty"`
	WallSeconds       float64     `json:"wall_seconds"`
}

// String renders the campaign summary as a table.
func (r *Result) String() string {
	t := &stats.Table{
		Title:   fmt.Sprintf("diskfuzz seed %d", r.Seed),
		Columns: []string{"metric", "value"},
	}
	mode := "verify on"
	if r.SkipVerify {
		mode = "verify OFF (sabotage)"
	}
	t.Add("mode", fmt.Sprintf("%d rounds × %d legs, %s", r.Rounds, r.Legs, mode))
	t.Add("oracle", fmt.Sprintf("%d lines", r.OracleLines))
	t.Add("advances", r.Advances)
	t.Add("crashes", r.Crashes)
	t.Add("fsync lies", r.FsyncLies)
	t.Add("detected failures", r.DetectedFailures)
	t.Add("quarantined", r.Storage.Quarantined)
	t.Add("checksum failures", r.Storage.ChecksumFailures)
	t.Add("journal truncations", r.Storage.JournalTruncations)
	t.Add("scrub removed", fmt.Sprintf("%d (+%d quarantined)", r.ScrubRemoved, r.ScrubQuarantined))
	t.Add("silent corruptions", r.SilentCorruptions)
	return t.String()
}

// campaign carries the state one Run shares across rounds.
type campaign struct {
	cfg      Config
	ctx      context.Context
	spec     experiments.SessionSpec
	targets  []uint64
	oracle   []string
	counters *experiments.StorageCounters
	res      *Result
}

// Run executes one campaign. Harness-level failures (the control round
// diverging, an unwritable OutDir) are errors; silent corruptions are
// results, not errors.
func Run(cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.Rounds <= 0 {
		cfg.Rounds = DefaultRounds
	}
	if cfg.Legs <= 0 {
		cfg.Legs = DefaultLegs
	}
	if cfg.PlanSpec != "" {
		if _, err := hostfs.ParsePlan(cfg.PlanSpec); err != nil {
			return nil, fmt.Errorf("diskfuzz: %w", err)
		}
	}
	c := &campaign{
		cfg: cfg,
		ctx: context.Background(),
		spec: experiments.SessionSpec{
			Suite: "cpu2006", App: "fuzz-st", Scheme: "lightwsp", SnapshotEvery: 600,
		},
		targets:  defaultTargets,
		counters: &experiments.StorageCounters{},
		res: &Result{
			SchemaVersion: SchemaVersion, Seed: cfg.Seed,
			Rounds: cfg.Rounds, Legs: cfg.Legs, SkipVerify: cfg.SkipVerify,
		},
	}
	oracle, err := buildOracle(c.spec, c.targets)
	if err != nil {
		return nil, err
	}
	c.oracle = oracle
	c.res.OracleLines = len(oracle)

	for round := 0; round < cfg.Rounds; round++ {
		plan := c.plan(round)
		c.res.Plans = append(c.res.Plans, plan.String())
		if err := c.sessionLeg(round, plan); err != nil {
			return nil, err
		}
		if err := c.blobLeg(round, plan); err != nil {
			return nil, err
		}
		if round == 0 && (c.res.DetectedFailures != 0 || len(c.res.Violations) != 0) {
			return nil, fmt.Errorf("diskfuzz: control round (power cuts on an honest disk) failed: %d detected failures, %d violations — harness bug",
				c.res.DetectedFailures, len(c.res.Violations))
		}
		c.progress(fmt.Sprintf("diskfuzz seed %d round %d (%s): %d advances, %d crashes, %d detected, %d silent",
			cfg.Seed, round, plan.String(), c.res.Advances, c.res.Crashes,
			c.res.DetectedFailures, len(c.res.Violations)))
	}
	c.res.SilentCorruptions = len(c.res.Violations)
	c.res.Storage = c.counters.Snapshot()
	c.res.WallSeconds = time.Since(start).Seconds()
	if err := writeArtifacts(cfg.OutDir, c.res); err != nil {
		return nil, err
	}
	return c.res, nil
}

// plan resolves one round's fault plan. Round 0 is the control: no
// operation faults, no crash-survival hazards — power cuts only.
func (c *campaign) plan(round int) hostfs.Plan {
	p := hostfs.Plan{Seed: roundSeed(c.cfg.Seed, round)}
	if round == 0 {
		return p
	}
	spec := c.cfg.PlanSpec
	if spec == "" {
		spec = planPresets[(round-1)%len(planPresets)]
	}
	parsed, _ := hostfs.ParsePlan(spec) // validated in Run
	parsed.Seed = p.Seed
	return parsed
}

// sessionLeg drives the durable-session stack over a faulted disk: Legs
// iterations of open → advance the full ladder → power cut, then a verdict
// pass (scrub + resume) over the bare crashed image.
func (c *campaign) sessionLeg(round int, plan hostfs.Plan) error {
	mem := hostfs.NewMem(plan)
	fsys := hostfs.WithRetry(hostfs.Inject(mem, plan), hostfs.RetryPolicy{Sleep: func(time.Duration) {}})
	const dir = "sessions"
	discard := func(experiments.SessionEvent) error { return nil }
	for leg := 0; leg < c.cfg.Legs; leg++ {
		st, err := experiments.OpenSessionStoreFS(dir, fsys)
		if err != nil {
			c.res.DetectedFailures++
			mem.Crash()
			continue
		}
		c.observe(st)
		s, err := st.Open(c.ctx, "fuzz")
		if errors.Is(err, experiments.ErrNoSession) {
			s, err = st.Create("fuzz", c.spec)
		}
		if err != nil {
			c.res.DetectedFailures++
		} else {
			// Always re-issue the full ladder: already-satisfied targets are
			// silent no-ops, so the journal's record sequence stays canonical
			// however far a crash rewound it. A failed advance ends the leg —
			// skipping ahead to a later target would journal a different
			// (legal) cadence split than the oracle's request schedule, and
			// the prefix verdict only holds for identical request schedules.
			for _, target := range c.targets {
				c.res.Advances++
				if err := s.Advance(c.ctx, target, discard, nil); err != nil {
					c.res.DetectedFailures++
					break
				}
			}
		}
		st.Close()
		mem.Crash()
	}
	err := c.sessionVerdict(round, plan, mem, dir)
	c.res.Crashes += mem.Crashes()
	c.res.FsyncLies += mem.Lies()
	return err
}

// sessionVerdict re-reads the crashed image over the bare MemFS (no
// operation faults — the disk has calmed down; what is on it is the
// question) and diffs the replayed stream against the oracle.
func (c *campaign) sessionVerdict(round int, plan hostfs.Plan, mem *hostfs.MemFS, dir string) error {
	strict := round == 0
	st, err := experiments.OpenSessionStoreFS(dir, mem)
	if err != nil {
		if strict {
			return fmt.Errorf("diskfuzz: control verdict open: %v", err)
		}
		c.res.DetectedFailures++
		return nil
	}
	defer st.Close()
	c.observe(st)
	// Scrub before reading back: self-healing must never break
	// restorability.
	if rep, err := st.Scrub(0); err != nil {
		if strict {
			return fmt.Errorf("diskfuzz: control scrub: %v", err)
		}
		c.res.DetectedFailures++
	} else {
		c.res.ScrubQuarantined += rep.Quarantined
		c.res.ScrubRemoved += rep.Removed()
	}
	s, err := st.Open(c.ctx, "fuzz")
	if errors.Is(err, experiments.ErrNoSession) {
		if strict {
			return errors.New("diskfuzz: control round lost the session on an honest disk")
		}
		return nil // total loss is loud, not silent
	}
	if err != nil {
		if strict {
			return fmt.Errorf("diskfuzz: control verdict reopen: %v", err)
		}
		c.res.DetectedFailures++
		return nil
	}
	var got []string
	if err := s.Resume(c.ctx, 0, collectLines(&got), nil); err != nil {
		if strict {
			return fmt.Errorf("diskfuzz: control resume: %v", err)
		}
		c.res.DetectedFailures++ // a loud replay failure; prefix-check what it emitted
	}
	c.checkPrefix(round, "session", plan, got)
	if strict && len(got) != len(c.oracle) {
		return fmt.Errorf("diskfuzz: control replay produced %d of %d oracle lines", len(got), len(c.oracle))
	}
	return nil
}

// blobLeg drives the blob-cache stack (the Runner's disk result cache)
// under the same plan on a fresh disk: store digit-rich payloads with
// crashes interleaved, then re-read over the bare image. Every load must be
// a miss or deep-equal to what was stored.
func (c *campaign) blobLeg(round int, plan hostfs.Plan) error {
	bplan := plan
	bplan.Seed = roundSeed(plan.Seed, 0x6b) // decorrelate from the session leg
	mem := hostfs.NewMem(bplan)
	fsys := hostfs.WithRetry(hostfs.Inject(mem, bplan), hostfs.RetryPolicy{Sleep: func(time.Duration) {}})
	const dir = "blobs"
	cache := experiments.NewBlobCacheFS(dir, fsys)
	cache.SetObserver(nil, c.counters)
	cache.SetInsecureSkipVerify(c.cfg.SkipVerify)
	for i := 0; i < blobsPerRound; i++ {
		key, hash := blobKey(round, i)
		experiments.RunCodec.Store(cache, hash, key, blobPayload(c.cfg.Seed, round, i))
		if i%2 == 1 {
			mem.Crash()
		}
	}
	mem.Crash()
	c.res.Crashes += mem.Crashes()
	c.res.FsyncLies += mem.Lies()

	vcache := experiments.NewBlobCacheFS(dir, mem)
	vcache.SetObserver(nil, c.counters)
	vcache.SetInsecureSkipVerify(c.cfg.SkipVerify)
	for i := 0; i < blobsPerRound; i++ {
		key, hash := blobKey(round, i)
		var got blobEntry
		if !experiments.RunCodec.Load(vcache, hash, key, &got) {
			if round == 0 {
				return fmt.Errorf("diskfuzz: control round lost blob %s on an honest disk", key)
			}
			continue // a miss is loud enough: the caller recomputes
		}
		if want := blobPayload(c.cfg.Seed, round, i); !reflect.DeepEqual(got, want) {
			g, _ := json.Marshal(got)
			w, _ := json.Marshal(want)
			c.violate(Violation{
				Round: round, Leg: "blobs", Plan: plan.String(),
				Detail: fmt.Sprintf("cached entry %s decoded cleanly but differs from what was stored", key),
				Got:    string(g), Want: string(w),
			})
		}
	}
	return nil
}

// checkPrefix enforces the campaign invariant: the replayed stream may be
// short, but it may never diverge from the failure-free oracle.
func (c *campaign) checkPrefix(round int, leg string, plan hostfs.Plan, got []string) {
	for i, line := range got {
		if i >= len(c.oracle) {
			c.violate(Violation{
				Round: round, Leg: leg, Plan: plan.String(), Line: i, Got: line,
				Detail: "replayed stream is longer than the failure-free oracle",
			})
			return
		}
		if line != c.oracle[i] {
			c.violate(Violation{
				Round: round, Leg: leg, Plan: plan.String(), Line: i,
				Got: line, Want: c.oracle[i],
				Detail: "replayed stream diverges from the failure-free oracle",
			})
			return
		}
	}
}

func (c *campaign) violate(v Violation) {
	v.SchemaVersion = SchemaVersion
	v.Seed = c.cfg.Seed
	c.res.Violations = append(c.res.Violations, v)
}

// observe wires a store for fuzzing: campaign counters, no real backoff
// sleeps, and the sabotage hatch.
func (c *campaign) observe(st *experiments.SessionStore) {
	st.SetObserver(nil, c.counters)
	st.SetInsecureSkipVerify(c.cfg.SkipVerify)
	st.SetRetrySleep(func(time.Duration) {})
}

func (c *campaign) progress(line string) {
	if c.cfg.Progress != nil {
		c.cfg.Progress(line)
	}
}

// buildOracle runs the session once on a perfect in-memory disk and
// returns its full event stream — the exact NDJSON bytes the serving layer
// would write.
func buildOracle(spec experiments.SessionSpec, targets []uint64) ([]string, error) {
	st, err := experiments.OpenSessionStoreFS("oracle", hostfs.NewMem(hostfs.Plan{}))
	if err != nil {
		return nil, err
	}
	defer st.Close()
	s, err := st.Create("fuzz", spec)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, target := range targets {
		if err := s.Advance(context.Background(), target, collectLines(&lines), nil); err != nil {
			return nil, fmt.Errorf("diskfuzz: oracle advance to %d: %v", target, err)
		}
	}
	if len(lines) == 0 {
		return nil, errors.New("diskfuzz: empty oracle stream")
	}
	return lines, nil
}

// collectLines marshals every event to one NDJSON line, matching the
// serving layer byte for byte.
func collectLines(dst *[]string) func(experiments.SessionEvent) error {
	return func(ev experiments.SessionEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		*dst = append(*dst, string(b))
		return nil
	}
}

// blobEntry is the blob leg's payload: mostly digits, so crash-time
// digit-flip corruption lands where JSON parsing cannot catch it.
type blobEntry struct {
	Round  int      `json:"round"`
	Index  int      `json:"index"`
	Values []uint64 `json:"values"`
}

func blobPayload(seed int64, round, i int) blobEntry {
	vals := make([]uint64, 12)
	for k := range vals {
		vals[k] = mix(uint64(seed) ^ uint64(round)<<40 ^ uint64(i)<<20 ^ uint64(k))
	}
	return blobEntry{Round: round, Index: i, Values: vals}
}

func blobKey(round, i int) (key, hash string) {
	key = fmt.Sprintf("diskfuzz:%d:%d", round, i)
	sum := sha256.Sum256([]byte(key))
	return key, hex.EncodeToString(sum[:])
}

// roundSeed derives one round's plan seed (splitmix64 finalizer).
func roundSeed(seed int64, round int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(round+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

func mix(z uint64) uint64 {
	z ^= z >> 33
	z *= 0xFF51AFD7ED558CCD
	z ^= z >> 33
	z *= 0xC4CEB9FE1A85EC53
	return z ^ z>>33
}

// writeArtifacts persists the manifest and one file per violation (the CI
// artifact a red lane uploads).
func writeArtifacts(dir string, res *Result) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(b, '\n'), 0o644); err != nil {
		return err
	}
	for i := range res.Violations {
		vb, err := json.MarshalIndent(res.Violations[i], "", "  ")
		if err != nil {
			return err
		}
		name := fmt.Sprintf("violation-%02d.json", i)
		if err := os.WriteFile(filepath.Join(dir, name), append(vb, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
