package core

import (
	"context"

	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/machine"
	"lightwsp/internal/recovery"
	"lightwsp/internal/workload"
)

// FuzzCrashConsistency is a native fuzz target over the system's central
// property: for any generated program, any store threshold and any failure
// point, crash + recover + finish must reproduce the failure-free persisted
// image. Run with:
//
//	go test ./internal/core -fuzz FuzzCrashConsistency -fuzztime 1m
func FuzzCrashConsistency(f *testing.F) {
	f.Add(int64(1), uint8(50), uint8(0))
	f.Add(int64(7), uint8(10), uint8(1))
	f.Add(int64(42), uint8(90), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, failPct uint8, thIdx uint8) {
		prog := workload.RandomProgram(seed)
		threshold := []int{8, 16, 32, 64}[int(thIdx)%4]
		cfg := machine.DefaultConfig()
		cfg.Cores = 2
		cfg.Threads = 1
		rt, err := NewRuntime(prog, compiler.Config{StoreThreshold: threshold, MaxUnroll: 4}, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clean, err := rt.RunToCompletion(100_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fail := clean.Stats.Cycles * uint64(failPct%101) / 100
		if fail == 0 {
			fail = 1
		}
		res, err := rt.RunWithFailure(context.Background(), fail, 100_000_000)
		if err != nil {
			t.Fatalf("seed %d fail %d: %v", seed, fail, err)
		}
		if err := recovery.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
			t.Fatalf("seed %d threshold %d fail %d/%d: %v",
				seed, threshold, fail, clean.Stats.Cycles, err)
		}
	})
}
