package core

import (
	"context"
	"errors"
	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/isa"
	"lightwsp/internal/machine"
	"lightwsp/internal/mem"
	"lightwsp/internal/probe"
	"lightwsp/internal/recovery"
	"lightwsp/internal/wsperr"
)

const maxCycles = 20_000_000

func maxUint64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func smallCfg() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	cfg.Threads = 1
	return cfg
}

// mixProg writes a deterministic pattern: a loop of stores, a call, a
// branch diamond — enough region structure to make failure points
// interesting.
func mixProg() *isa.Program {
	b := isa.NewBuilder("mix")
	b.Func("main")
	b.MovImm(1, 0x10000) // base
	b.MovImm(2, 0)       // i
	b.MovImm(3, 64)      // n
	loop := b.NewBlock()
	b.MulImm(4, 2, 3)
	b.AddImm(4, 4, 7)
	b.Store(1, 0, 4)
	b.AddImm(1, 1, 8)
	b.AddImm(2, 2, 1)
	b.CmpLT(5, 2, 3)
	b.Branch(5, loop, loop+1)
	after := b.NewBlock()
	b.Mov(isa.ArgReg(0), 2)
	b.Call(1, 1)
	b.MovImm(6, 0x20000)
	b.Store(6, 0, isa.RetReg)
	// diamond on the call result
	b.MovImm(7, 100)
	b.CmpLT(8, isa.RetReg, 7)
	b.Branch(8, after+1, after+2)
	b.NewBlock()
	b.MovImm(9, 111)
	b.Store(6, 8, 9)
	b.Jump(after + 3)
	b.NewBlock()
	b.MovImm(9, 222)
	b.Store(6, 8, 9)
	b.Jump(after + 3)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	b.Func("triple")
	b.MulImm(0, isa.ArgReg(0), 3)
	b.Ret(0)
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func newRT(t *testing.T, p *isa.Program, cfg machine.Config) *Runtime {
	t.Helper()
	rt, err := NewRuntime(p, compiler.Config{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestLightWSPCompletesAndPersistsEverything(t *testing.T) {
	rt := newRT(t, mixProg(), smallCfg())
	sys, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	// Whole-system persistence: after the final region commits, PM holds
	// the complete architectural data image.
	if !sys.PM().EqualRange(sys.Arch(), 0, recovery.UserRangeEnd) {
		t.Fatalf("PM != arch after completion: %v", sys.PM().Diff(sys.Arch(), 5))
	}
	if got := sys.PM().Read(0x10000); got != 7 {
		t.Fatalf("first loop store = %d", got)
	}
	if got := sys.PM().Read(0x20000); got != 64*3 {
		t.Fatalf("call result = %d, want %d", got, 64*3)
	}
	if got := sys.PM().Read(0x20008); got != 222 {
		t.Fatalf("diamond result = %d, want 222", got)
	}
	if sys.Stats.RegionsClosed == 0 || sys.Stats.Boundaries == 0 {
		t.Fatalf("no regions closed: %+v", sys.Stats)
	}
}

func TestCrashConsistencySweep(t *testing.T) {
	// Inject a power failure at a spread of cycles across the whole run
	// and verify the recovered final image matches the failure-free one.
	rt := newRT(t, mixProg(), smallCfg())
	clean, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	total := clean.Stats.Cycles
	if total < 100 {
		t.Fatalf("run too short to sweep: %d cycles", total)
	}
	step := total / 40
	if step == 0 {
		step = 1
	}
	for fail := uint64(1); fail < total+step; fail += step {
		res, err := rt.RunWithFailure(context.Background(), fail, maxCycles)
		if err != nil {
			t.Fatalf("failure at %d: %v", fail, err)
		}
		if err := recovery.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
			t.Fatalf("failure at cycle %d: %v", fail, err)
		}
	}
}

func TestRepeatedFailuresMakeProgress(t *testing.T) {
	rt := newRT(t, mixProg(), smallCfg())
	clean, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.RunWithRepeatedFailures(context.Background(), maxUint64(clean.Stats.Cycles/5, 350), maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Rollbacks < 2 {
		t.Fatalf("expected multiple failure rounds, got %d", res.Rollbacks)
	}
	if err := recovery.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryUsesRecipes(t *testing.T) {
	// A constant live-out gets pruned; recovery must reconstruct it.
	b := isa.NewBuilder("recipes")
	b.Func("main")
	b.MovImm(5, 12345) // constant, live across many boundaries
	b.MovImm(1, 0x30000)
	for i := 0; i < 40; i++ {
		b.Store(1, int64(8*i), 5)
	}
	b.Store(1, 400, 5)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := newRT(t, p, smallCfg())
	if rt.Compiled.Stats.PrunedCheckpoints == 0 {
		t.Skip("no pruning happened for this shape")
	}
	clean, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	total := clean.Stats.Cycles
	for _, frac := range []uint64{4, 3, 2} {
		res, err := rt.RunWithFailure(context.Background(), total/frac, maxCycles)
		if err != nil {
			t.Fatal(err)
		}
		if err := recovery.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
			t.Fatalf("failure at 1/%d: %v", frac, err)
		}
	}
}

func TestNoFailureBeforeCompletionIsIdentity(t *testing.T) {
	rt := newRT(t, mixProg(), smallCfg())
	clean, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.RunWithFailure(context.Background(), clean.Stats.Cycles+1000, maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("failure injected after completion")
	}
}

func TestMultiThreadLockedCounterCrashConsistency(t *testing.T) {
	// Threads increment a shared counter under a lock. After a crash and
	// recovery the final counter must be exactly threads*iters: no lost
	// or doubled increments (DESIGN.md invariants 1 and 6).
	b := isa.NewBuilder("mtlock")
	b.Func("main")
	b.MovImm(3, 0x40000) // lock
	b.MovImm(4, 0x40008) // counter
	b.MovImm(7, 0)
	b.MovImm(8, 6) // iterations
	loop := b.NewBlock()
	b.LockAcquire(3, 0)
	b.Load(5, 4, 0)
	b.AddImm(5, 5, 1)
	b.Store(4, 0, 5)
	b.LockRelease(3, 0)
	b.AddImm(7, 7, 1)
	b.CmpLT(9, 7, 8)
	b.Branch(9, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 4
	rt := newRT(t, p, cfg)
	clean, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	if got := clean.PM().Read(0x40008); got != 24 {
		t.Fatalf("failure-free counter = %d, want 24", got)
	}
	total := clean.Stats.Cycles
	step := total / 12
	if step == 0 {
		step = 1
	}
	for fail := step; fail < total; fail += step {
		res, err := rt.RunWithFailure(context.Background(), fail, maxCycles)
		if err != nil {
			t.Fatalf("failure at %d: %v", fail, err)
		}
		if got := res.Recovered.PM().Read(0x40008); got != 24 {
			t.Fatalf("failure at %d: counter = %d, want 24", fail, got)
		}
	}
}

func TestLRPOOutperformsNaiveSfence(t *testing.T) {
	// The motivation for LRPO (§III-B): stalling at every boundary is
	// much slower than offloading ordering to the MCs.
	p := mixProg()
	rt := newRT(t, p, smallCfg())
	light, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := machine.NewSystem(rt.Compiled.Prog, rt.Cfg, machine.Scheme{
		Name: "naive", Instrumented: true, UsePersistPath: true,
		EntryBytes: 8, StallAtBoundary: true, UseDRAMCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Run(maxCycles) {
		t.Fatal("naive run did not complete")
	}
	if naive.Stats.Cycles <= light.Stats.Cycles {
		t.Fatalf("naive sfence (%d cycles) not slower than LRPO (%d)",
			naive.Stats.Cycles, light.Stats.Cycles)
	}
	if naive.Stats.StallDrain == 0 {
		t.Fatal("naive sfence recorded no drain stalls")
	}
}

func TestRegionStatsTracked(t *testing.T) {
	rt := newRT(t, mixProg(), smallCfg())
	sys, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stats.InstrPerRegion() <= 0 || sys.Stats.StoresPerRegion() <= 0 {
		t.Fatalf("region stats empty: %+v", sys.Stats)
	}
	if sys.Stats.MaxDynRegionStores > rt.Compiled.Config.StoreThreshold {
		t.Fatalf("dynamic region stores %d exceed threshold %d",
			sys.Stats.MaxDynRegionStores, rt.Compiled.Config.StoreThreshold)
	}
}

func TestPersistenceEfficiencyNearPerfect(t *testing.T) {
	rt := newRT(t, mixProg(), smallCfg())
	sys, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	if eff := sys.Stats.PersistenceEfficiency(); eff < 90 {
		t.Fatalf("LightWSP efficiency = %.1f%%, want ≥ 90%%", eff)
	}
}

func TestIoEndToEndWithRecipes(t *testing.T) {
	// The full stack: Io regions, constant pruning with recipes, crash,
	// recovery-runtime restoration, restartable re-emission.
	b := isa.NewBuilder("io")
	b.Func("main")
	b.MovImm(1, 0x6000)
	b.MovImm(2, 0)
	b.MovImm(3, 9) // global constant: pruned, recipe-reconstructed
	loop := b.NewBlock()
	b.AddImm(2, 2, 1)
	b.Store(1, 0, 2)
	b.AddImm(1, 1, 8)
	b.Io(2)
	b.CmpLT(4, 2, 3)
	b.Branch(4, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := newRT(t, p, smallCfg())
	clean, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Output) != 9 {
		t.Fatalf("clean output = %v", clean.Output)
	}
	total := clean.Stats.Cycles
	for frac := uint64(2); frac <= 6; frac++ {
		sys, err := rt.NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		if sys.RunUntil(total / frac) {
			continue
		}
		rep := sys.PowerFail()
		rec, err := rt.Recover(sys.PM(), rep.RegionCounter)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Run(maxCycles) {
			t.Fatal("recovered run did not complete")
		}
		if err := recovery.VerifyEquivalence(rec.PM(), clean.PM()); err != nil {
			t.Fatalf("frac %d: %v", frac, err)
		}
		// Combined output: every value 1..9 in order, duplicates allowed
		// only as immediate re-emissions at the crash point.
		combined := append(append([]uint64{}, sys.Output...), rec.Output...)
		want := uint64(1)
		for _, v := range combined {
			switch {
			case v == want:
				want++
			case v == want-1: // restarted Io
			default:
				t.Fatalf("frac %d: broken output %v", frac, combined)
			}
		}
		if want != 10 {
			t.Fatalf("frac %d: missing emissions: %v", frac, combined)
		}
	}
}

func TestOverflowEscapeEndToEnd(t *testing.T) {
	// A deliberately tiny WPQ under 4 threads forces the §IV-D overflow
	// escape (undo-logged flushes) during normal execution; failures
	// injected across the run must still recover exactly, exercising the
	// undo-log rollback path end to end.
	prog, err := func() (*isa.Program, error) {
		bb := isa.NewBuilder("overflow")
		bb.Func("main")
		bb.Mov(30, isa.ArgReg(0)) // tid
		bb.MovImm(2, 0x1000)
		bb.Mul(10, 30, 2)
		bb.MovImm(11, 0x50000)
		bb.Add(10, 10, 11) // base
		bb.MovImm(12, 0)   // i
		bb.MovImm(13, 40)
		loop := bb.NewBlock()
		bb.Store(10, 0, 12)
		bb.AddImm(10, 10, 8)
		bb.AddImm(12, 12, 1)
		bb.CmpLT(14, 12, 13)
		bb.Branch(14, loop, loop+1)
		bb.NewBlock()
		bb.Halt()
		bb.SwitchTo(0)
		bb.Jump(loop)
		return bb.Build()
	}()
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 4
	cfg.WPQEntries = 12
	cfg.FEBEntries = 12
	rt, err := NewRuntime(prog, compiler.Config{StoreThreshold: 6, MaxUnroll: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Stats.WPQDeadlocks == 0 {
		t.Log("note: no overflow events in the clean run; escape path not stressed")
	}
	total := clean.Stats.Cycles
	step := total / 10
	if step == 0 {
		step = 1
	}
	for fail := step; fail < total; fail += step {
		res, err := rt.RunWithFailure(context.Background(), fail, maxCycles)
		if err != nil {
			t.Fatalf("failure at %d: %v", fail, err)
		}
		if err := recovery.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
			t.Fatalf("failure at %d (deadlocks %d, undo %d): %v",
				fail, clean.Stats.WPQDeadlocks, clean.Stats.WPQUndoWrites, err)
		}
	}
	t.Logf("clean-run overflow events: %d, undo writes: %d",
		clean.Stats.WPQDeadlocks, clean.Stats.WPQUndoWrites)
}

func TestConstPrunedAcrossCallResume(t *testing.T) {
	// Regression for the soundness hole the kvstore example exposed: a
	// caller's recipe-pruned constant (the loop limit) must survive a
	// crash whose resume point lies INSIDE the callee — the recipe has
	// to exist at callee region ends too, because the register's
	// checkpoint slot is never written.
	b := isa.NewBuilder("xcall")
	b.Func("main")
	b.MovImm(11, 12) // loop limit: single-def constant, live across calls
	b.MovImm(10, 0)  // i
	loop := b.NewBlock()
	b.Mov(isa.ArgReg(0), 10)
	b.Call(1, 1) // leaf writes several slots derived from i
	b.AddImm(10, 10, 1)
	b.CmpLT(12, 10, 11)
	b.Branch(12, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	b.Func("leaf")
	b.MovImm(3, 0x60000)
	b.MulImm(4, 1, 64)
	b.Add(3, 3, 4)
	for j := 0; j < 5; j++ {
		b.AddImm(5, 1, int64(100*j))
		b.Store(3, int64(8*j), 5)
	}
	b.MovImm(0, 0)
	b.Ret(0)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := newRT(t, p, smallCfg())
	// The limit must have been recipe-pruned for this regression to bite.
	pruned := rt.Compiled.Stats.ConstRecipes > 0
	clean, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	total := clean.Stats.Cycles
	for fail := uint64(1); fail < total; fail += total/29 + 1 {
		res, err := rt.RunWithFailure(context.Background(), fail, maxCycles)
		if err != nil {
			t.Fatalf("failure at %d: %v", fail, err)
		}
		if err := recovery.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
			t.Fatalf("failure at %d (pruned=%v): %v", fail, pruned, err)
		}
	}
	if !pruned {
		t.Log("note: limit register was not recipe-pruned in this layout")
	}
}

// TestCheckpointSuccessorMatchesImportedRecovery is the durable-session
// contract: a planned power failure's successor machine and a machine
// recovered later from the serialized crash image must be indistinguishable
// — same milestone events, same outputs, same final memory.
func TestCheckpointSuccessorMatchesImportedRecovery(t *testing.T) {
	rt := newRT(t, mixProg(), smallCfg())
	clean, err := rt.Run(context.Background(), maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	cut := clean.Stats.Cycles / 3
	if cut == 0 {
		t.Fatalf("run too short: %d cycles", clean.Stats.Cycles)
	}

	sys, err := rt.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if done, err := sys.RunUntilContext(context.Background(), cut); err != nil || done {
		t.Fatalf("pre-checkpoint run: done=%v err=%v", done, err)
	}
	res, err := rt.Checkpoint(sys)
	if err != nil {
		t.Fatal(err)
	}

	// Path A: continue on the checkpoint's own successor.
	var evA []probe.Event
	res.System.SetProbeSink(probe.SinkFunc(func(e probe.Event) {
		if probe.MilestoneKind(e.Kind) {
			evA = append(evA, e)
		}
	}))
	if err := res.System.RunContext(context.Background(), maxCycles); err != nil {
		t.Fatal(err)
	}

	// Path B: serialize the durable image, deserialize, recover, continue —
	// what a restarted server does.
	imported, err := mem.ImportImage(res.Image.Export())
	if err != nil {
		t.Fatal(err)
	}
	recB, err := rt.Recover(imported, res.Report.RegionCounter)
	if err != nil {
		t.Fatal(err)
	}
	var evB []probe.Event
	recB.SetProbeSink(probe.SinkFunc(func(e probe.Event) {
		if probe.MilestoneKind(e.Kind) {
			evB = append(evB, e)
		}
	}))
	if err := recB.RunContext(context.Background(), maxCycles); err != nil {
		t.Fatal(err)
	}

	if len(evA) != len(evB) {
		t.Fatalf("milestone counts diverge: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("milestone %d diverges: %+v vs %+v", i, evA[i], evB[i])
		}
	}
	if len(res.System.Output) != len(recB.Output) {
		t.Fatalf("output lengths diverge: %d vs %d", len(res.System.Output), len(recB.Output))
	}
	for i := range res.System.Output {
		if res.System.Output[i] != recB.Output[i] {
			t.Fatalf("output %d diverges", i)
		}
	}
	if !res.System.PM().Equal(recB.PM()) {
		t.Fatalf("final PM diverges: %v", res.System.PM().Diff(recB.PM(), 5))
	}
	// And the whole detour is invisible to the program: final data matches
	// the failure-free run.
	if err := recovery.VerifyEquivalence(recB.PM(), clean.PM()); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRequiresRecoveryMetadata(t *testing.T) {
	sch := machine.Scheme{Name: "plain"} // uninstrumented: no checkpoints
	rt, err := NewRuntimeFor(mixProg(), compiler.Config{}, smallCfg(), sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rt.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if done, err := sys.RunUntilContext(context.Background(), 100); err != nil || done {
		t.Fatalf("short run: done=%v err=%v", done, err)
	}
	if _, err := rt.Checkpoint(sys); !errors.Is(err, wsperr.ErrUnrecoverable) {
		t.Fatalf("checkpoint without metadata: %v", err)
	}
}
