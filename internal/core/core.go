// Package core is the LightWSP runtime: it binds the compiler (region
// partitioning + checkpointing), the machine (persist path, gated WPQ,
// LRPO) and the recovery runtime into the paper's whole-system-persistence
// scheme, and provides the crash/recover orchestration the examples, tests
// and experiment harness drive.
package core

import (
	"context"
	"fmt"

	"lightwsp/internal/compiler"
	"lightwsp/internal/isa"
	"lightwsp/internal/machine"
	"lightwsp/internal/mem"
	"lightwsp/internal/probe"
	"lightwsp/internal/recovery"
	"lightwsp/internal/wsperr"
)

// Scheme returns LightWSP's hardware behaviour: every store travels the
// 8-byte non-temporal persist path into a region-gated WPQ; cores never
// wait at region boundaries (lazy region-level persist ordering); the DRAM
// cache fronts PM.
func Scheme() machine.Scheme {
	return machine.Scheme{
		Name:           "lightwsp",
		Instrumented:   true,
		UsePersistPath: true,
		EntryBytes:     8,
		GatedWPQ:       true,
		UseDRAMCache:   true,
	}
}

// Runtime holds a program bound to a machine configuration and persistence
// scheme, ready to boot systems, inject failures and recover. For
// instrumented schemes Compiled carries the region compiler's output; for
// uninstrumented comparison schemes it is nil and the program runs as built.
type Runtime struct {
	// Compiled is the region compiler's result — nil when the scheme is
	// uninstrumented (baseline, ideal PSP), which also means no recovery
	// metadata exists and failure injection cannot recover.
	Compiled *compiler.Result
	Cfg      machine.Config
	Sch      machine.Scheme
	// Probe, when non-nil, is attached to every system this runtime boots
	// (clean boots and recoveries alike).
	Probe probe.Sink

	prog *isa.Program // the source program, pre-compilation
}

// NewRuntime compiles prog for LightWSP under the given configurations.
// The compiler's store threshold defaults to half the WPQ size (§IV-A) when
// ccfg.StoreThreshold is zero.
func NewRuntime(prog *isa.Program, ccfg compiler.Config, mcfg machine.Config) (*Runtime, error) {
	return NewRuntimeFor(prog, ccfg, mcfg, Scheme(), nil)
}

// NewRuntimeFor builds a runtime for an arbitrary scheme: instrumented
// schemes compile prog first (a zero ccfg.StoreThreshold resolves to half
// the WPQ size), uninstrumented ones run it as built. sink, when non-nil,
// is attached to every system the runtime boots.
func NewRuntimeFor(prog *isa.Program, ccfg compiler.Config, mcfg machine.Config, sch machine.Scheme, sink probe.Sink) (*Runtime, error) {
	rt := &Runtime{Cfg: mcfg, Sch: sch, Probe: sink, prog: prog}
	if !sch.Instrumented {
		return rt, nil
	}
	if ccfg.StoreThreshold == 0 {
		ccfg.StoreThreshold = mcfg.WPQEntries / 2
		if ccfg.MaxUnroll == 0 {
			ccfg.MaxUnroll = compiler.DefaultConfig().MaxUnroll
		}
	}
	res, err := compiler.Compile(prog, ccfg)
	if err != nil {
		return nil, err
	}
	rt.Compiled = res
	return rt, nil
}

// Prog returns the program a booted system will run: the compiler's output
// for instrumented schemes, the source program otherwise.
func (rt *Runtime) Prog() *isa.Program {
	if rt.Compiled != nil {
		return rt.Compiled.Prog
	}
	return rt.prog
}

// NewSystem boots a fresh machine running the program, with the runtime's
// probe sink (if any) attached.
func (rt *Runtime) NewSystem() (*machine.System, error) {
	sys, err := machine.NewSystem(rt.Prog(), rt.Cfg, rt.Sch)
	if err != nil {
		return nil, err
	}
	if rt.Probe != nil {
		sys.SetProbeSink(rt.Probe)
	}
	return sys, nil
}

// Recover builds a machine resuming from a crash image. Failures to rebuild
// a resumable machine wrap wsperr.ErrUnrecoverable.
func (rt *Runtime) Recover(pm *mem.Image, regionCounter uint64) (*machine.System, error) {
	if rt.Compiled == nil {
		return nil, fmt.Errorf("core: scheme %q has no recovery metadata: %w", rt.Sch.Name, wsperr.ErrUnrecoverable)
	}
	sys, err := recovery.Recover(rt.Compiled.Prog, rt.Cfg, rt.Sch, pm, rt.Compiled.Recipes, regionCounter)
	if err != nil {
		return nil, fmt.Errorf("core: %v: %w", err, wsperr.ErrUnrecoverable)
	}
	if rt.Probe != nil {
		sys.SetProbeSink(rt.Probe)
	}
	return sys, nil
}

// Run boots and runs a system to the end, returning it. Cancellation is
// honored at cycle-batch granularity; the returned error wraps
// wsperr.ErrCanceled, wsperr.ErrWPQOverflow or wsperr.ErrCyclesExceeded.
func (rt *Runtime) Run(ctx context.Context, maxCycles uint64) (*machine.System, error) {
	sys, err := rt.NewSystem()
	if err != nil {
		return nil, err
	}
	if err := sys.RunContext(ctx, maxCycles); err != nil {
		return nil, err
	}
	return sys, nil
}

// RunToCompletion boots and runs a system to the end, returning it.
//
// Deprecated: use Run, which takes a context.
func (rt *Runtime) RunToCompletion(maxCycles uint64) (*machine.System, error) {
	return rt.Run(context.Background(), maxCycles)
}

// CheckpointResult is one planned power failure: the drain report, the
// durable crash image, and the successor machine already recovered from it.
type CheckpointResult struct {
	// Report is the §IV-F drain summary.
	Report machine.FailureReport
	// Image is the persisted image exactly as the drain left it — cloned
	// before recovery's undo rollback mutates the machine's copy, so it is
	// byte-for-byte what a snapshot store should persist. Recovering from a
	// deserialized copy of it reproduces System.
	Image *mem.Image
	// System is the recovered successor, resuming each thread at its latest
	// persisted region boundary. The checkpointed machine is dead.
	System *machine.System
}

// Checkpoint executes a planned power failure on sys: drain via the §IV-F
// protocol, capture the durable crash image, and boot the recovered
// successor. This is how a durable session snapshots a live machine — the
// snapshot point is a real power-failure cut, so resuming from the stored
// image later replays the identical trajectory the successor ran. sys is
// dead afterwards; continue on the returned System.
func (rt *Runtime) Checkpoint(sys *machine.System) (*CheckpointResult, error) {
	rep := sys.PowerFail()
	img := sys.PM().Clone()
	rec, err := rt.Recover(sys.PM(), rep.RegionCounter)
	if err != nil {
		return nil, err
	}
	return &CheckpointResult{Report: rep, Image: img, System: rec}, nil
}

// CrashResult reports one crash/recover round trip.
type CrashResult struct {
	// Failed is false if execution completed before the injection point
	// (no failure happened).
	Failed bool
	// Report is the §IV-F drain summary.
	Report machine.FailureReport
	// Recovered is the post-recovery system, run to completion; when no
	// failure happened it is the original system.
	Recovered *machine.System
	// Rollbacks counts crash/recover rounds executed (1 for a single
	// injection).
	Rollbacks int
}

// RunWithFailure runs the program, cuts power at failCycle, drains, recovers
// and runs the recovered system to completion. If the program finishes
// before failCycle, no failure is injected. Cancellation is honored at
// cycle-batch granularity in both the pre-failure and recovered runs.
func (rt *Runtime) RunWithFailure(ctx context.Context, failCycle, maxCycles uint64) (*CrashResult, error) {
	sys, err := rt.NewSystem()
	if err != nil {
		return nil, err
	}
	done, err := sys.RunUntilContext(ctx, failCycle)
	if err != nil {
		return nil, err
	}
	if done {
		return &CrashResult{Failed: false, Recovered: sys}, nil
	}
	rep := sys.PowerFail()
	rec, err := rt.Recover(sys.PM(), rep.RegionCounter)
	if err != nil {
		return nil, err
	}
	if err := rec.RunContext(ctx, maxCycles); err != nil {
		return nil, fmt.Errorf("core: recovered run: %w", err)
	}
	return &CrashResult{Failed: true, Report: rep, Recovered: rec, Rollbacks: 1}, nil
}

// RunWithRepeatedFailures injects a power failure every interval cycles —
// each recovery itself gets interrupted — until the program completes. This
// exercises recovery-of-recovery (nested failures), which LightWSP's
// region-level persistence supports for free: every recovery point is just
// a region boundary.
//
// The interval must exceed the time one region needs to execute and persist
// (store-buffer drain + persist-path transit + WPQ flush), or no run can
// ever persist a new boundary and the program cannot make progress; that
// situation is detected (the persisted image stops changing across rounds)
// and reported as an error wrapping wsperr.ErrUnrecoverable.
func (rt *Runtime) RunWithRepeatedFailures(ctx context.Context, interval, maxCycles uint64) (*CrashResult, error) {
	if interval == 0 {
		return nil, fmt.Errorf("core: zero failure interval")
	}
	sys, err := rt.NewSystem()
	if err != nil {
		return nil, err
	}
	res := &CrashResult{}
	stagnant := 0
	lastFingerprint := ""
	for round := 0; ; round++ {
		if round > int(maxCycles/interval)+1 {
			return nil, fmt.Errorf("core: no forward progress after %d failure rounds: %w", round, wsperr.ErrUnrecoverable)
		}
		done, err := sys.RunUntilContext(ctx, sys.Cycle()+interval)
		if err != nil {
			return nil, err
		}
		if done {
			res.Recovered = sys
			return res, nil
		}
		rep := sys.PowerFail()
		res.Failed = true
		res.Report = rep
		res.Rollbacks++
		if fp := recoveryFingerprint(sys, rt.Cfg.Threads); fp == lastFingerprint {
			stagnant++
			if stagnant >= 8 {
				return nil, fmt.Errorf("core: failure interval %d too short to persist a region (no progress over %d rounds): %w",
					interval, stagnant, wsperr.ErrUnrecoverable)
			}
		} else {
			lastFingerprint, stagnant = fp, 0
		}
		sys, err = rt.Recover(sys.PM(), rep.RegionCounter)
		if err != nil {
			return nil, err
		}
	}
}

// recoveryFingerprint summarizes the persisted resume state; if it stops
// changing across failure rounds, recovery is not advancing.
func recoveryFingerprint(sys *machine.System, threads int) string {
	fp := fmt.Sprintf("%d", sys.PM().Len())
	for t := 0; t < threads; t++ {
		fp += fmt.Sprintf(":%x", sys.PM().Read(mem.CkptAddr(t, mem.CkptSlotPC)))
	}
	return fp
}

// VerifyCrashConsistency runs the program once failure-free and once with a
// failure at failCycle, and checks that the final persisted program data is
// identical (DESIGN.md invariant 5). It returns the failure-free system for
// further inspection.
func (rt *Runtime) VerifyCrashConsistency(ctx context.Context, failCycle, maxCycles uint64) (*machine.System, error) {
	clean, err := rt.Run(ctx, maxCycles)
	if err != nil {
		return nil, err
	}
	crashed, err := rt.RunWithFailure(ctx, failCycle, maxCycles)
	if err != nil {
		return nil, err
	}
	if err := recovery.VerifyEquivalence(crashed.Recovered.PM(), clean.PM()); err != nil {
		return nil, fmt.Errorf("failure at cycle %d: %w", failCycle, err)
	}
	return clean, nil
}
