package core

import (
	"context"

	"testing"

	"lightwsp/internal/compiler"
	"lightwsp/internal/isa"
	"lightwsp/internal/machine"
	"lightwsp/internal/recovery"
	"lightwsp/internal/workload"
)

// TestRandomProgramsCrashConsistency is the repository's strongest
// end-to-end property test: for randomly generated programs (loops, calls,
// diamonds, fences, atomics, store bursts), a power failure at arbitrary
// points followed by recovery must always reproduce the failure-free
// persisted image — across compiler thresholds, so chunked checkpoint runs
// and dense split boundaries are exercised too.
func TestRandomProgramsCrashConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("random sweep skipped in -short mode")
	}
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	cfg.Threads = 1
	for seed := int64(0); seed < 25; seed++ {
		prog := workload.RandomProgram(seed)
		threshold := []int{12, 32}[seed%2]
		rt, err := NewRuntime(prog, compiler.Config{StoreThreshold: threshold, MaxUnroll: 4}, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clean, err := rt.RunToCompletion(50_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total := clean.Stats.Cycles
		step := total / 7
		if step == 0 {
			step = 1
		}
		for fail := step; fail < total; fail += step {
			res, err := rt.RunWithFailure(context.Background(), fail, 50_000_000)
			if err != nil {
				t.Fatalf("seed %d failure at %d: %v", seed, fail, err)
			}
			if err := recovery.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
				t.Fatalf("seed %d threshold %d failure at %d/%d: %v",
					seed, threshold, fail, total, err)
			}
		}
	}
}

// TestRandomProgramsWholeSystemPersistence checks the WSP completeness
// property on random programs: after a failure-free run fully drains,
// PM holds the complete architectural data image.
func TestRandomProgramsWholeSystemPersistence(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	cfg.Threads = 1
	for seed := int64(100); seed < 120; seed++ {
		rt, err := NewRuntime(workload.RandomProgram(seed), compiler.Config{}, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sys, err := rt.RunToCompletion(50_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sys.PM().EqualRange(sys.Arch(), 0, recovery.UserRangeEnd) {
			t.Fatalf("seed %d: PM != architectural state: %v",
				seed, sys.PM().Diff(sys.Arch(), 5))
		}
	}
}

// TestUnrollingPreservesSemantics compiles random programs with and without
// speculative loop unrolling and verifies the final persisted images agree:
// the §IV-A region-size extension must be a pure performance transformation.
func TestUnrollingPreservesSemantics(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	cfg.Threads = 1
	for seed := int64(200); seed < 215; seed++ {
		prog := workload.RandomProgram(seed)
		run := func(unroll int) *machine.System {
			rt, err := NewRuntime(prog, compiler.Config{StoreThreshold: 32, MaxUnroll: unroll}, cfg)
			if err != nil {
				t.Fatalf("seed %d unroll %d: %v", seed, unroll, err)
			}
			sys, err := rt.RunToCompletion(50_000_000)
			if err != nil {
				t.Fatalf("seed %d unroll %d: %v", seed, unroll, err)
			}
			return sys
		}
		plain, unrolled := run(1), run(4)
		if !plain.PM().EqualRange(unrolled.PM(), 0, recovery.UserRangeEnd) {
			t.Fatalf("seed %d: unrolling changed the persisted result: %v",
				seed, plain.PM().Diff(unrolled.PM(), 5))
		}
	}
}

// TestManyThreadsCrashConsistency runs the locked-counter pattern at 16
// threads (the Figure 16 regime) with failures injected, checking the
// counter is exact after every recovery.
func TestManyThreadsCrashConsistency(t *testing.T) {
	b := isa.NewBuilder("mt16")
	b.Func("main")
	b.MovImm(3, 0x40000)
	b.MovImm(4, 0x40008)
	b.MovImm(7, 0)
	b.MovImm(8, 3)
	loop := b.NewBlock()
	b.LockAcquire(3, 0)
	b.Load(5, 4, 0)
	b.AddImm(5, 5, 1)
	b.Store(4, 0, 5)
	b.LockRelease(3, 0)
	b.AddImm(7, 7, 1)
	b.CmpLT(9, 7, 8)
	b.Branch(9, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Cores = 16
	cfg.Threads = 16
	rt := newRT(t, p, cfg)
	clean, err := rt.RunToCompletion(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	const want = 16 * 3
	if got := clean.PM().Read(0x40008); got != want {
		t.Fatalf("clean counter = %d", got)
	}
	for _, frac := range []uint64{5, 3, 2} {
		res, err := rt.RunWithFailure(context.Background(), clean.Stats.Cycles/frac, maxCycles)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Recovered.PM().Read(0x40008); got != want {
			t.Fatalf("failure at 1/%d: counter = %d, want %d", frac, got, want)
		}
	}
}

// TestFourControllersCrashConsistency runs the random-program sweep with
// one and with four memory controllers: the bdry-ACK/flush-ACK protocol
// must generalize on both sides of the paper's two-controller configuration
// (§IV-B claims "multiple MCs" with no constant baked in; a single MC
// degenerates to no ACKs at all).
func TestFourControllersCrashConsistency(t *testing.T) {
	for _, numMCs := range []int{1, 4} {
		testControllers(t, numMCs)
	}
}

func testControllers(t *testing.T, numMCs int) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	cfg.Threads = 1
	cfg.NumMCs = numMCs
	for seed := int64(300); seed < 310; seed++ {
		rt, err := NewRuntime(workload.RandomProgram(seed), compiler.Config{}, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clean, err := rt.RunToCompletion(50_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		step := clean.Stats.Cycles / 5
		if step == 0 {
			step = 1
		}
		for fail := step; fail < clean.Stats.Cycles; fail += step {
			res, err := rt.RunWithFailure(context.Background(), fail, 50_000_000)
			if err != nil {
				t.Fatalf("seed %d fail %d: %v", seed, fail, err)
			}
			if err := recovery.VerifyEquivalence(res.Recovered.PM(), clean.PM()); err != nil {
				t.Fatalf("seed %d, %d MCs, failure at %d: %v", seed, numMCs, fail, err)
			}
		}
	}
}
