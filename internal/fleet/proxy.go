package fleet

import (
	"io"
	"net/http"
	"net/url"
	"strings"
)

// ForwardedHeader marks a request that already crossed one node hop. A
// node receiving it always serves locally — the loop guard that keeps a
// stale ring view (two nodes each believing the other owns a key) from
// bouncing a request forever. One hop is enough: the forwarder computed
// ownership over the same deterministic ring, so a second disagreement
// means the membership views differ and serving locally is still correct
// (the shared L2 store makes any node able to serve any key).
const ForwardedHeader = "X-LightWSP-Forwarded"

// ServedByHeader names the node that actually served a response — the
// observable half of the forwarding contract, used by tests, the lb's
// logs, and operators staring at curl -i.
const ServedByHeader = "X-LightWSP-Served-By"

// hopHeaders are dropped when proxying (RFC 9110 connection-scoped).
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// Proxy forwards r to the node at targetBase (scheme://host[:port]),
// streaming the response — NDJSON event streams flush line by line. It
// reports whether anything was written to w: when it returns
// (written=false, err!=nil) the target was unreachable before a single
// byte went out, and the caller may safely fall back to handling the
// request itself.
//
// The caller is responsible for setting ForwardedHeader on r (or its body
// replacement) before calling; Proxy itself only moves bytes.
func Proxy(w http.ResponseWriter, r *http.Request, targetBase string, hc *http.Client) (written bool, err error) {
	target, err := url.Parse(strings.TrimRight(targetBase, "/"))
	if err != nil {
		return false, err
	}
	outURL := *r.URL
	outURL.Scheme = target.Scheme
	outURL.Host = target.Host

	out, err := http.NewRequestWithContext(r.Context(), r.Method, outURL.String(), r.Body)
	if err != nil {
		return false, err
	}
	out.Header = r.Header.Clone()
	for _, h := range hopHeaders {
		out.Header.Del(h)
	}
	out.ContentLength = r.ContentLength

	resp, err := hc.Do(out)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()

	dst := w.Header()
	for k, vv := range resp.Header {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
	return true, nil
}

// flushCopy streams src to w, flushing after every read so long-lived
// NDJSON streams cross the proxy without buffering a run's worth of
// events.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	f, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
