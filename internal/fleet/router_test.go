package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeNode is a minimal backend: /healthz honoring a togglable health bit,
// /stats with fixed gauges, and an echo of every /v1/* request that
// identifies the node and replays the received body.
type fakeNode struct {
	name    string
	healthy atomic.Bool
	hits    atomic.Uint64
	ts      *httptest.Server
}

func newFakeNode(t *testing.T, name string) *fakeNode {
	n := &fakeNode{name: name}
	n.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !n.healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"in_flight":3,"queued":1,"draining":false}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		n.hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Node", n.name)
		fmt.Fprintf(w, `{"node":%q,"path":%q,"body":%q}`, n.name, r.URL.Path, body)
	})
	n.ts = httptest.NewServer(mux)
	t.Cleanup(n.ts.Close)
	return n
}

func newTestFleet(t *testing.T, n int) ([]*fakeNode, *Router) {
	nodes := make([]*fakeNode, n)
	urls := make([]string, n)
	for i := range nodes {
		nodes[i] = newFakeNode(t, fmt.Sprintf("node%d", i))
		urls[i] = nodes[i].ts.URL
	}
	return nodes, NewRouter(RouterConfig{Nodes: urls})
}

// TestRouterKeyAffinity proves every request for one run key lands on the
// same backend, whatever the request count.
func TestRouterKeyAffinity(t *testing.T) {
	_, rt := newTestFleet(t, 3)
	lb := httptest.NewServer(rt)
	defer lb.Close()

	want := ""
	for i := 0; i < 10; i++ {
		resp, err := http.Post(lb.URL+"/v1/run", "application/json",
			strings.NewReader(`{"suite":"cpu2006","app":"mcf","scheme":"lightwsp"}`))
		if err != nil {
			t.Fatal(err)
		}
		var out struct{ Node string }
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if want == "" {
			want = out.Node
		} else if out.Node != want {
			t.Fatalf("request %d routed to %s, earlier ones to %s", i, out.Node, want)
		}
	}
	// A different key may route elsewhere, but must also be sticky.
	other := ""
	for i := 0; i < 5; i++ {
		resp, err := http.Post(lb.URL+"/v1/run", "application/json",
			strings.NewReader(`{"suite":"cpu2006","app":"lbm","scheme":"lightwsp"}`))
		if err != nil {
			t.Fatal(err)
		}
		var out struct{ Node string }
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if other == "" {
			other = out.Node
		} else if out.Node != other {
			t.Fatalf("second key not sticky: %s then %s", other, out.Node)
		}
	}
}

// TestRouterBodyReplay proves the routed body survives the body-peek: the
// backend receives exactly what the client sent.
func TestRouterBodyReplay(t *testing.T) {
	_, rt := newTestFleet(t, 2)
	lb := httptest.NewServer(rt)
	defer lb.Close()

	const sent = `{"suite":"cpu2006","app":"mcf","scheme":"lightwsp","timeout_ms":1234}`
	resp, err := http.Post(lb.URL+"/v1/run", "application/json", strings.NewReader(sent))
	if err != nil {
		t.Fatal(err)
	}
	var out struct{ Body string }
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if out.Body != sent {
		t.Fatalf("backend saw body %q, client sent %q", out.Body, sent)
	}
}

// TestRouterSessionAffinity proves session paths route by the ID segment.
func TestRouterSessionAffinity(t *testing.T) {
	_, rt := newTestFleet(t, 3)
	lb := httptest.NewServer(rt)
	defer lb.Close()

	paths := []string{
		"/v1/session/sess-1",
		"/v1/session/sess-1/advance",
		"/v1/session/sess-1/resume",
	}
	want := ""
	for _, p := range paths {
		resp, err := http.Post(lb.URL+p, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		var out struct{ Node string }
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if want == "" {
			want = out.Node
		} else if out.Node != want {
			t.Fatalf("path %s routed to %s, earlier session ops to %s", p, out.Node, want)
		}
	}
}

// TestRouterEjectsUnhealthy proves a 503-on-/healthz node leaves the ring
// on the next probe and its keys reroute, then return when it recovers.
func TestRouterEjectsUnhealthy(t *testing.T) {
	nodes, rt := newTestFleet(t, 3)
	lb := httptest.NewServer(rt)
	defer lb.Close()

	getOwner := func() string {
		resp, err := http.Post(lb.URL+"/v1/run", "application/json",
			strings.NewReader(`{"suite":"cpu2006","app":"mcf","scheme":"lightwsp"}`))
		if err != nil {
			t.Fatal(err)
		}
		var out struct{ Node string }
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		return out.Node
	}

	owner := getOwner()
	var ownerNode *fakeNode
	for _, n := range nodes {
		if n.name == owner {
			ownerNode = n
		}
	}
	ownerNode.healthy.Store(false)
	rt.CheckNow()
	if rt.Healthy() != true {
		t.Fatal("fleet with 2 healthy nodes reported unhealthy")
	}
	after := getOwner()
	if after == owner {
		t.Fatalf("key still routed to ejected node %s", owner)
	}
	ownerNode.healthy.Store(true)
	rt.CheckNow()
	if back := getOwner(); back != owner {
		t.Fatalf("recovered node did not regain its key: owner %s, got %s", owner, back)
	}
}

// TestRouterFailover proves a request to a dead owner fails over down the
// ladder before the poller notices, and the dead node is ejected.
func TestRouterFailover(t *testing.T) {
	nodes, rt := newTestFleet(t, 3)
	lb := httptest.NewServer(rt)
	defer lb.Close()

	body := `{"suite":"cpu2006","app":"mcf","scheme":"lightwsp"}`
	resp, err := http.Post(lb.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct{ Node string }
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()

	for _, n := range nodes {
		if n.name == out.Node {
			n.ts.Close() // kill the owner without telling the poller
		}
	}
	resp, err = http.Post(lb.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out2 struct{ Node string }
	json.NewDecoder(resp.Body).Decode(&out2)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out2.Node == out.Node || out2.Node == "" {
		t.Fatalf("failover failed: status %d node %q (dead owner %q)", resp.StatusCode, out2.Node, out.Node)
	}
	if rt.failovers.Load() == 0 {
		t.Fatal("failover counter not incremented")
	}
}

// TestRouterNoNodes proves total outage answers 503 with Retry-After.
func TestRouterNoNodes(t *testing.T) {
	nodes, rt := newTestFleet(t, 2)
	for _, n := range nodes {
		n.healthy.Store(false)
	}
	rt.CheckNow()
	lb := httptest.NewServer(rt)
	defer lb.Close()

	resp, err := http.Post(lb.URL+"/v1/run", "application/json",
		strings.NewReader(`{"suite":"cpu2006","app":"mcf","scheme":"lightwsp"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestRouterBackpressurePassthrough proves a backend 429 (and its
// Retry-After) reaches the client verbatim — admission stays with nodes.
func TestRouterBackpressurePassthrough(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte("ok"))
			return
		}
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"server busy"}`))
	}))
	defer busy.Close()

	rt := NewRouter(RouterConfig{Nodes: []string{busy.URL}})
	lb := httptest.NewServer(rt)
	defer lb.Close()

	resp, err := http.Post(lb.URL+"/v1/run", "application/json",
		strings.NewReader(`{"suite":"cpu2006","app":"mcf","scheme":"lightwsp"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After %q, want 7", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(body), "server busy") {
		t.Fatalf("backend error body lost: %q", body)
	}
}

// TestRouterMetrics smoke-checks the Prometheus exposition.
func TestRouterMetrics(t *testing.T) {
	nodes, rt := newTestFleet(t, 2)
	rt.CheckNow()
	nodes[0].healthy.Store(false)
	rt.CheckNow()

	var sb strings.Builder
	if err := rt.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"lightwsp_lb_node_up{",
		"lightwsp_lb_ring_size 1",
		"lightwsp_lb_rebalances_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
