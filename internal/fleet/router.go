package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lightwsp/internal/metrics"
)

// maxRoutedBody bounds the request body the Router buffers to extract a
// routing key and replay across failover attempts. Request bodies on every
// routed endpoint are small JSON documents; streams flow the other way.
const maxRoutedBody = 8 << 20

// NodeStatus is the Router's last known view of one backend.
type NodeStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// InFlight and Queued are scraped from the node's /stats on each poll
	// (zero when the node is unreachable).
	InFlight int  `json:"in_flight"`
	Queued   int  `json:"queued"`
	Draining bool `json:"draining"`
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Nodes are the backend base URLs ("http://host:port"). Required.
	Nodes []string
	// PollInterval is the health-probe period (default 500ms).
	PollInterval time.Duration
	// ProbeTimeout bounds one /healthz or /stats probe (default 2s).
	ProbeTimeout time.Duration
	// Logger receives membership-change and failover lines; nil discards.
	Logger *slog.Logger
}

// Router is the lb's http.Handler: it routes each request to the ring
// owner of its routing key among the currently healthy nodes, streams the
// response back, and fails over down the preference ladder when the owner
// drops mid-request. Admission stays with the nodes — a 429 or 503 from a
// backend passes through verbatim, Retry-After included, so backpressure
// reaches clients no matter which tier noticed the overload first.
type Router struct {
	cfg   RouterConfig
	hc    *http.Client // proxy transport: no timeout, streams can live long
	probe *http.Client // health probes: short timeout

	log *slog.Logger

	mu     sync.Mutex
	status map[string]*NodeStatus
	ring   *Ring // healthy members only
	rr     uint64

	rebalances atomic.Uint64
	forwarded  atomic.Uint64
	failovers  atomic.Uint64
	noNodes    atomic.Uint64
}

// NewRouter builds a Router over cfg.Nodes; every node starts healthy
// (optimistic — the first poll corrects it, and an early request to a dead
// node fails over anyway).
func NewRouter(cfg RouterConfig) *Router {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	rt := &Router{
		cfg:    cfg,
		hc:     &http.Client{},
		probe:  &http.Client{Timeout: cfg.ProbeTimeout},
		log:    cfg.Logger,
		status: map[string]*NodeStatus{},
	}
	var healthy []string
	for _, n := range cfg.Nodes {
		n = strings.TrimRight(n, "/")
		if n == "" {
			continue
		}
		rt.status[n] = &NodeStatus{URL: n, Healthy: true}
		healthy = append(healthy, n)
	}
	rt.ring = NewRing(healthy)
	return rt
}

// Poll runs the health loop until ctx ends: GET /healthz decides ring
// membership (drain and durability degradation both answer 503 there, so
// both eject), GET /stats feeds the load gauges.
func (rt *Router) Poll(ctx context.Context) {
	t := time.NewTicker(rt.cfg.PollInterval)
	defer t.Stop()
	rt.CheckNow()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.CheckNow()
		}
	}
}

// CheckNow probes every node once and rebuilds the ring on membership
// change. Exposed for tests and for an initial synchronous probe.
func (rt *Router) CheckNow() {
	rt.mu.Lock()
	nodes := make([]string, 0, len(rt.status))
	for n := range rt.status {
		nodes = append(nodes, n)
	}
	rt.mu.Unlock()

	type result struct {
		node    string
		healthy bool
		stats   statsProbe
	}
	results := make(chan result, len(nodes))
	for _, n := range nodes {
		go func(n string) {
			healthy := rt.probeHealthz(n)
			var sp statsProbe
			if healthy {
				sp = rt.probeStats(n)
			}
			results <- result{n, healthy, sp}
		}(n)
	}
	for range nodes {
		r := <-results
		rt.setHealth(r.node, r.healthy, r.stats)
	}
}

type statsProbe struct {
	InFlight int  `json:"in_flight"`
	Queued   int  `json:"queued"`
	Draining bool `json:"draining"`
}

func (rt *Router) probeHealthz(node string) bool {
	resp, err := rt.probe.Get(node + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (rt *Router) probeStats(node string) (sp statsProbe) {
	resp, err := rt.probe.Get(node + "/stats")
	if err != nil {
		return sp
	}
	defer resp.Body.Close()
	json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&sp)
	return sp
}

// setHealth records one probe outcome, rebuilding the ring when a node
// changes state.
func (rt *Router) setHealth(node string, healthy bool, sp statsProbe) {
	rt.mu.Lock()
	st, ok := rt.status[node]
	if !ok {
		rt.mu.Unlock()
		return
	}
	changed := st.Healthy != healthy
	st.Healthy = healthy
	st.InFlight, st.Queued, st.Draining = sp.InFlight, sp.Queued, sp.Draining
	if changed {
		var healthy []string
		for n, s := range rt.status {
			if s.Healthy {
				healthy = append(healthy, n)
			}
		}
		rt.ring = NewRing(healthy)
		rt.rebalances.Add(1)
	}
	ringLen := rt.ring.Len()
	rt.mu.Unlock()
	if changed && rt.log != nil {
		rt.log.Info("fleet membership change", "node", node, "healthy", healthy, "ring_size", ringLen)
	}
}

// Status snapshots every node's last probe, sorted by URL.
func (rt *Router) Status() []NodeStatus {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]NodeStatus, 0, len(rt.status))
	for _, n := range NewRing(keys(rt.status)).Nodes() {
		out = append(out, *rt.status[n])
	}
	return out
}

func keys(m map[string]*NodeStatus) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Healthy reports whether at least one backend is in the ring — the lb's
// own /healthz answer.
func (rt *Router) Healthy() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.Len() > 0
}

// candidates returns the healthy nodes to try for a request, in order:
// the key's preference ladder, or round-robin for unkeyed requests.
func (rt *Router) candidates(key string) []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.ring.Len() == 0 {
		return nil
	}
	if key != "" {
		return rt.ring.Owners(key)
	}
	nodes := rt.ring.Nodes()
	i := int(rt.rr % uint64(len(nodes)))
	rt.rr++
	return append(nodes[i:], nodes[:i]...)
}

// ServeHTTP routes one request.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key, body, err := routeKey(r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	cands := rt.candidates(key)
	if len(cands) == 0 {
		rt.noNodes.Add(1)
		w.Header().Set("Retry-After", "10")
		writeJSONError(w, http.StatusServiceUnavailable, "no healthy nodes")
		return
	}
	for i, node := range cands {
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		written, err := Proxy(w, r, node, rt.hc)
		if written {
			rt.forwarded.Add(1)
			if i > 0 {
				rt.failovers.Add(1)
			}
			return
		}
		// Nothing went out: the node is unreachable. Eject it immediately
		// (the poller will re-add it when it recovers) and try the next
		// candidate — but only when the body is replayable.
		rt.setHealth(node, false, statsProbe{})
		if rt.log != nil {
			rt.log.Warn("backend unreachable, failing over", "node", node, "path", r.URL.Path, "error", err)
		}
		replayable := body != nil ||
			r.Method == http.MethodGet || r.Method == http.MethodHead || r.Method == http.MethodDelete
		if !replayable {
			break
		}
	}
	rt.noNodes.Add(1)
	w.Header().Set("Retry-After", "10")
	writeJSONError(w, http.StatusServiceUnavailable, "no reachable node")
}

// routeKey derives the consistent-hash key of a request, buffering the
// body when the key lives inside it (returned for replay). An empty key
// means "any node".
func routeKey(r *http.Request) (key string, body []byte, err error) {
	path := r.URL.Path
	switch {
	case strings.HasPrefix(path, "/v1/session/"):
		rest := strings.TrimPrefix(path, "/v1/session/")
		if id, _, _ := strings.Cut(rest, "/"); id != "" {
			return SessionRouteKey(id), nil, nil
		}
		return "", nil, nil
	case path == "/v1/session" && r.Method == http.MethodPost:
		body, err = io.ReadAll(io.LimitReader(r.Body, maxRoutedBody))
		if err != nil {
			return "", nil, fmt.Errorf("reading body: %w", err)
		}
		var req struct {
			ID string `json:"id"`
		}
		json.Unmarshal(body, &req)
		if req.ID == "" {
			// The node will mint or reject the ID; no affinity to honor yet.
			return "", body, nil
		}
		return SessionRouteKey(req.ID), body, nil
	case path == "/v1/run" || path == "/v1/run/stream" ||
		path == "/v1/run-with-failure" || path == "/v1/crashfuzz":
		body, err = io.ReadAll(io.LimitReader(r.Body, maxRoutedBody))
		if err != nil {
			return "", nil, fmt.Errorf("reading body: %w", err)
		}
		var req struct {
			Suite  string `json:"suite"`
			App    string `json:"app"`
			Scheme string `json:"scheme"`
		}
		json.Unmarshal(body, &req)
		return RunRouteKey(req.Suite, req.App, req.Scheme), body, nil
	default:
		return "", nil, nil
	}
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// WriteProm renders the Router's metrics in Prometheus text format.
func (rt *Router) WriteProm(w io.Writer) error {
	p := metrics.NewProm(w)
	p.Family("lightwsp_lb_node_up", "gauge", "Per-backend health as of the last probe.")
	for _, st := range rt.Status() {
		up := 0.0
		if st.Healthy {
			up = 1
		}
		p.Sample("lightwsp_lb_node_up", []metrics.Label{{Name: "node", Value: st.URL}}, up)
	}
	p.Family("lightwsp_lb_node_in_flight", "gauge", "Per-backend in-flight requests from the last /stats scrape.")
	for _, st := range rt.Status() {
		p.Sample("lightwsp_lb_node_in_flight", []metrics.Label{{Name: "node", Value: st.URL}}, float64(st.InFlight))
	}
	p.Family("lightwsp_lb_ring_size", "gauge", "Healthy nodes currently in the ring.")
	rt.mu.Lock()
	ringLen := rt.ring.Len()
	rt.mu.Unlock()
	p.Sample("lightwsp_lb_ring_size", nil, float64(ringLen))
	p.Family("lightwsp_lb_rebalances_total", "counter", "Ring membership changes observed.")
	p.Sample("lightwsp_lb_rebalances_total", nil, float64(rt.rebalances.Load()))
	p.Family("lightwsp_lb_forwarded_total", "counter", "Requests proxied to a backend.")
	p.Sample("lightwsp_lb_forwarded_total", nil, float64(rt.forwarded.Load()))
	p.Family("lightwsp_lb_failovers_total", "counter", "Requests served by a non-first-choice node after the owner was unreachable.")
	p.Sample("lightwsp_lb_failovers_total", nil, float64(rt.failovers.Load()))
	p.Family("lightwsp_lb_no_nodes_total", "counter", "Requests rejected because no backend was reachable.")
	p.Sample("lightwsp_lb_no_nodes_total", nil, float64(rt.noNodes.Load()))
	return p.Err()
}
