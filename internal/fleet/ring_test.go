package fleet

import (
	"fmt"
	"testing"
)

func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingDeterministic proves ownership is a pure function of (nodes, key)
// regardless of construction order — the property that lets every node and
// the lb agree without coordination.
func TestRingDeterministic(t *testing.T) {
	nodes := ringNodes(5)
	a := NewRing(nodes)
	b := NewRing([]string{nodes[3], nodes[1], nodes[4], nodes[0], nodes[2]})
	for i := 0; i < 200; i++ {
		key := RunRouteKey("cpu2006", fmt.Sprintf("app-%d", i), "lightwsp")
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("construction order changed ownership of %q", key)
		}
	}
}

// TestRingBalance sanity-checks the rendezvous distribution: over many keys
// every node owns a non-trivial share.
func TestRingBalance(t *testing.T) {
	r := NewRing(ringNodes(4))
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for node, c := range counts {
		if c < keys/4/2 || c > keys/4*2 {
			t.Fatalf("node %s owns %d of %d keys — distribution is badly skewed: %v", node, c, keys, counts)
		}
	}
}

// TestRingMinimalDisruption proves the rendezvous property the warm caches
// rely on: removing one node only reassigns the keys that node owned.
func TestRingMinimalDisruption(t *testing.T) {
	nodes := ringNodes(5)
	full := NewRing(nodes)
	without := NewRing(nodes[:4]) // drop the last node
	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(key), without.Owner(key)
		if before == nodes[4] {
			continue // its keys must move somewhere
		}
		if before == after {
			kept++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving nodes (kept %d) — rendezvous should move none", moved, kept)
	}
}

// TestRingOwnersLadder proves Owners starts with Owner and covers every
// node exactly once.
func TestRingOwnersLadder(t *testing.T) {
	r := NewRing(ringNodes(4))
	key := SessionRouteKey("sess-42")
	ladder := r.Owners(key)
	if len(ladder) != 4 {
		t.Fatalf("ladder has %d entries, want 4", len(ladder))
	}
	if ladder[0] != r.Owner(key) {
		t.Fatalf("ladder head %s != owner %s", ladder[0], r.Owner(key))
	}
	seen := map[string]bool{}
	for _, n := range ladder {
		if seen[n] {
			t.Fatalf("node %s appears twice in the ladder", n)
		}
		seen[n] = true
	}
	// The failover property: removing the owner promotes ladder[1].
	rest := NewRing(ladder[1:])
	if rest.Owner(key) != ladder[1] {
		t.Fatalf("after owner loss, %s owns the key, want ladder[1]=%s", rest.Owner(key), ladder[1])
	}
}

// TestRingEmptyAndDuplicates covers the degenerate inputs.
func TestRingEmptyAndDuplicates(t *testing.T) {
	if NewRing(nil).Owner("k") != "" {
		t.Fatal("empty ring returned an owner")
	}
	r := NewRing([]string{"http://a", "http://a", "", "http://b"})
	if r.Len() != 2 {
		t.Fatalf("duplicates/empties not dropped: %v", r.Nodes())
	}
}
