// Package fleet shards the lightwsp serving daemon across replicas: a
// rendezvous-hash ring decides which node owns each routing key (run keys,
// session IDs), nodes forward requests that land on the wrong replica, and
// the lb Router fronts the fleet with health-aware admission. The design
// goal is cache coherence on the cheap — no membership gossip, no
// rebalancing protocol. Ownership is a pure function of (healthy node set,
// key); losing a node simply re-evaluates that function, and the shared L2
// store makes the rehash cheap because any node can serve any key's bytes.
package fleet

import (
	"hash/fnv"
	"sort"
)

// Ring is a rendezvous (highest-random-weight) hash ring over node base
// URLs. Unlike a ketama ring it needs no virtual nodes to balance, and
// removing a node moves only that node's keys — the property the fleet's
// warm caches depend on. A Ring is immutable; derive a new one when
// membership changes.
type Ring struct {
	nodes []string
}

// NewRing builds a ring over the given node identities (base URLs). Order
// does not matter; duplicates are dropped.
func NewRing(nodes []string) *Ring {
	seen := map[string]bool{}
	var uniq []string
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	return &Ring{nodes: uniq}
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// score is the rendezvous weight of (node, key): FNV-1a over the pair with
// a separator no URL contains. Deterministic across processes — every node
// and the lb compute identical ownership without talking to each other.
func score(node, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// Owner returns the node that owns key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	var best string
	var bestScore uint64
	for _, n := range r.nodes {
		if s := score(n, key); best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}

// Owners returns every node in preference order for key — the failover
// ladder: Owners(key)[0] is the owner, [1] takes over if it dies, and so
// on. The returned slice is freshly allocated.
func (r *Ring) Owners(key string) []string {
	type ranked struct {
		node string
		s    uint64
	}
	rs := make([]ranked, len(r.nodes))
	for i, n := range r.nodes {
		rs[i] = ranked{n, score(n, key)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].s != rs[j].s {
			return rs[i].s > rs[j].s
		}
		return rs[i].node < rs[j].node
	})
	out := make([]string, len(rs))
	for i, x := range rs {
		out[i] = x.node
	}
	return out
}

// RunRouteKey is the routing key of a run-shaped request. It hashes the
// workload identity, not the full canonical run key: the full key needs
// resolved machine/compiler configs that the lb cannot compute from the
// wire request, and suite/app/scheme is exactly the warmth the cache
// shards by.
func RunRouteKey(suite, app, scheme string) string {
	return "run|" + suite + "/" + app + "/" + scheme
}

// SessionRouteKey is the routing key of a session request: sessions are
// single-writer, so every operation on one ID must land on its owner.
func SessionRouteKey(id string) string { return "session|" + id }
