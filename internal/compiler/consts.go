package compiler

import (
	"lightwsp/internal/cfg"
	"lightwsp/internal/isa"
)

// Global-constant checkpoint pruning (the sound core of §IV-A's checkpoint
// pruning): a register that provably holds one compile-time constant at
// every possible resume point never needs a checkpoint slot — the recovery
// runtime re-materializes it from a recipe. Because a pruned register's
// slot is never valid, the recipe must be available at EVERY resume point
// that could observe the register, including resume points inside callees
// while the value is live in the caller. The qualification is therefore
// program-scoped:
//
//   - exactly one definition in the entire program, a MovImm,
//   - located in the program's entry function (the function every thread
//     starts in),
//   - the register is not read before that definition (not live into the
//     entry function, and the definition's block dominates every entry-
//     function block where the register is live),
//   - the definition's block dominates every call site of the entry
//     function (so any callee — and hence any callee resume point — runs
//     strictly after the constant exists),
//   - no other function defines the register.
//
// Recipes are then recorded at every region end of the entry function where
// the register is live and dominated, and at every region end of every
// other function unconditionally (any execution there postdates the
// definition, and applying a recipe to a dead register is harmless).
type progConsts struct {
	value map[isa.Reg]int64
	// defBlock is the defining block in the entry function.
	defBlock map[isa.Reg]int
}

// findProgramConstants qualifies registers per the rules above, analyzing
// the (boundary-instrumented, unrolled) program before checkpoint insertion.
func findProgramConstants(p *isa.Program) *progConsts {
	entry := p.Entry
	defCount := map[isa.Reg]int{}
	value := map[isa.Reg]int64{}
	where := map[isa.Reg]int{}
	otherFuncDef := map[isa.Reg]bool{}
	for fi, f := range p.Funcs {
		for bi, blk := range f.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if d, ok := in.Defs(); ok {
					defCount[d]++
					if fi != entry {
						otherFuncDef[d] = true
					}
					if in.Op == isa.MovImm && fi == entry {
						value[d] = in.Imm
						where[d] = bi
					} else {
						delete(value, d)
					}
				}
			}
		}
	}
	ef := p.Funcs[entry]
	g := cfg.New(ef)
	lv := cfg.ComputeLiveness(g)
	idom := g.Dominators()
	out := &progConsts{value: map[isa.Reg]int64{}, defBlock: map[isa.Reg]int{}}
	for r, v := range value {
		if defCount[r] != 1 || otherFuncDef[r] || lv.LiveIn[0].Has(r) {
			continue
		}
		ok := true
		for _, b := range g.RPO {
			if b == where[r] {
				continue
			}
			if lv.LiveIn[b].Has(r) && !cfg.Dominates(idom, where[r], b) {
				ok = false
				break
			}
			// Every call site must postdate the definition.
			hasCall := false
			for i := range ef.Blocks[b].Instrs {
				if ef.Blocks[b].Instrs[i].Op == isa.Call {
					hasCall = true
					break
				}
			}
			if hasCall && !cfg.Dominates(idom, where[r], b) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out.value[r] = v
		out.defBlock[r] = where[r]
	}
	return out
}

// mask returns the register set of the qualified constants.
func (pc *progConsts) mask() cfg.RegSet {
	var s cfg.RegSet
	for r := range pc.value {
		s = s.Add(r)
	}
	return s
}

// recordConstRecipes runs after the whole program's layout is final and
// writes one recipe per qualified register at every region end that could
// serve as its resume point: entry-function ends where the register is live
// past the definition, and every region end of every other function.
func recordConstRecipes(res *Result, pc *progConsts) int {
	if len(pc.value) == 0 {
		return 0
	}
	p := res.Prog
	recorded := 0
	for fi, f := range p.Funcs {
		g := cfg.New(f)
		var lv *cfg.Liveness
		var idom []int
		if fi == p.Entry {
			lv = cfg.ComputeLiveness(g)
			idom = g.Dominators()
		}
		for _, bi := range g.RPO {
			blk := f.Blocks[bi]
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if in.Op != isa.Boundary && !in.Op.IsSync() {
					continue
				}
				rpc := isa.PC{Func: fi, Block: bi, Index: i}
				if in.Op == isa.Boundary {
					rpc.Index++
				}
				for r, v := range pc.value {
					if fi == p.Entry {
						// Only past the definition (dominated), and only
						// where the register can still be observed.
						if !cfg.Dominates(idom, pc.defBlock[r], bi) {
							continue
						}
						if !lv.LiveBefore(g, bi, i).Has(r) {
							continue
						}
					}
					res.Recipes[rpc.Pack()] = append(res.Recipes[rpc.Pack()], Recipe{Reg: r, Const: v})
					recorded++
				}
			}
		}
	}
	return recorded
}
