package compiler

import (
	"lightwsp/internal/cfg"
	"lightwsp/internal/isa"
)

// clearCheckpoints removes every CkptStore so checkpoint insertion can be
// re-run from scratch after the region partitioning changed.
func (c *funcCompiler) clearCheckpoints() {
	for _, blk := range c.fn().Blocks {
		out := blk.Instrs[:0]
		for _, in := range blk.Instrs {
			if in.Op == isa.CkptStore {
				continue
			}
			out = append(out, in)
		}
		blk.Instrs = out
	}
}

// insertCheckpoints performs the paper's liveness-driven checkpoint
// insertion (§IV-A "Checkpoint Store Insertion"): at every region end —
// explicit Boundary instructions and implicit boundaries at synchronization
// instructions — it checkpoints each register that is (a) live into the
// following region and (b) possibly redefined since the previous region end
// (registers not redefined still hold a valid slot from an earlier region's
// checkpoint).
//
// The checkpoint stores are placed immediately before the region end, which
// captures exactly the value the next region's recovery needs. (The paper
// places them right after the register's last update point; the value
// stored is identical, only the micro-timing differs.)
func (c *funcCompiler) insertCheckpoints() {
	fn := c.fn()
	g := cfg.New(fn)
	lv := cfg.ComputeLiveness(g)
	mayIn := c.mayDefinedSinceBoundary(g)

	for _, b := range g.RPO {
		blk := fn.Blocks[b]
		// First pass: record, per region-end index, the set to checkpoint.
		type insertion struct {
			idx  int
			regs []isa.Reg
		}
		var ins []insertion
		def := mayIn[b]
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			end := in.Op == isa.Boundary || in.Op.IsSync()
			if end {
				// Registers holding a global compile-time constant are
				// never checkpointed: recovery reconstructs them from
				// recipes (recordConstRecipes). This is the paper's
				// checkpoint pruning at its most profitable, and it is
				// what keeps high-register-pressure regions within the
				// store threshold.
				need := lv.LiveBefore(g, b, i) & def &^ c.constRegs
				if regs := need.Regs(); len(regs) > 0 {
					ins = append(ins, insertion{idx: i, regs: regs})
				}
				def = 0
			}
			if d, ok := in.Defs(); ok {
				def = def.Add(d)
			}
		}
		if len(ins) == 0 {
			continue
		}
		// Second pass: rebuild the block with the checkpoints inserted.
		out := make([]isa.Instr, 0, len(blk.Instrs)+len(ins)*2)
		k := 0
		for i := range blk.Instrs {
			for k < len(ins) && ins[k].idx == i {
				for _, r := range ins[k].regs {
					out = append(out, isa.Instr{Op: isa.CkptStore, Rs1: r})
				}
				k++
			}
			out = append(out, blk.Instrs[i])
		}
		blk.Instrs = out
	}
}

// mayDefinedSinceBoundary computes, per block, the set of registers that may
// have been (re)defined since the most recent region end on some path into
// the block. Region ends (boundaries and sync instructions) clear the set:
// those registers were just checkpointed, so their slots are valid.
func (c *funcCompiler) mayDefinedSinceBoundary(g *cfg.Graph) []cfg.RegSet {
	fn := c.fn()
	n := len(fn.Blocks)
	in := make([]cfg.RegSet, n)
	out := make([]cfg.RegSet, n)
	transfer := func(b int) cfg.RegSet {
		def := in[b]
		for i := range fn.Blocks[b].Instrs {
			inst := &fn.Blocks[b].Instrs[i]
			if inst.Op == isa.Boundary || inst.Op.IsSync() {
				def = 0
			}
			if d, ok := inst.Defs(); ok {
				def = def.Add(d)
			}
		}
		return def
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.RPO {
			var s cfg.RegSet
			for _, p := range g.Pred[b] {
				s |= out[p]
			}
			o := s
			if o != in[b] {
				in[b] = o
				changed = true
			}
			no := transfer(b)
			if no != out[b] {
				out[b] = no
				changed = true
			}
		}
	}
	return in
}
