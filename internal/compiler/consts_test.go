package compiler

import (
	"testing"

	"lightwsp/internal/cfg"
	"lightwsp/internal/isa"
)

// constProg: r5 is a pure constant live across many regions; r1 is an
// incoming-style register overwritten once; r7 is defined only inside one
// branch arm.
func constProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("c")
	b.Func("main")
	b.MovImm(5, 777) // single-def constant, live throughout
	b.MovImm(1, 0x10000)
	b.MovImm(2, 0)
	b.MovImm(3, 60)
	loop := b.NewBlock()
	b.Store(1, 0, 5) // keeps r5 live across every region
	b.AddImm(1, 1, 8)
	b.AddImm(2, 2, 1)
	b.CmpLT(4, 2, 3)
	b.Branch(4, loop, loop+1)
	b.NewBlock()
	// Diamond defining r7 on one arm only.
	b.CmpLT(6, 2, 3)
	pre := b.CurrentBlock()
	then := b.NewBlock()
	b.MovImm(7, 42)
	b.Store(1, 0, 7)
	b.Jump(then + 2)
	els := b.NewBlock()
	b.Store(1, 8, 5)
	b.Jump(els + 1)
	join := b.NewBlock()
	b.Store(1, 16, 7) // r7 used at join: live on both paths
	b.Halt()
	b.SwitchTo(pre)
	b.Branch(6, then, els)
	b.SwitchTo(0)
	b.Jump(loop)
	_ = join
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGlobalConstantClassification(t *testing.T) {
	p := constProg(t)
	res := mustCompile(t, p, Config{StoreThreshold: 16, MaxUnroll: 1})
	// r5 must never be checkpointed: it is reconstructed by recipes.
	for _, f := range res.Prog.Funcs {
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Op == isa.CkptStore && blk.Instrs[i].Rs1 == 5 {
					t.Fatal("global constant r5 was checkpointed")
				}
			}
		}
	}
	if res.Stats.ConstRecipes == 0 {
		t.Fatal("no constant recipes recorded")
	}
	// Every recipe set containing r5 must carry its value.
	found := 0
	for _, rs := range res.Recipes {
		for _, r := range rs {
			if r.Reg == 5 {
				found++
				if r.Const != 777 {
					t.Fatalf("r5 recipe value = %d", r.Const)
				}
			}
			if r.Reg == 7 {
				t.Fatal("branch-arm-defined r7 must not be recipe-pruned (dominance)")
			}
		}
	}
	if found == 0 {
		t.Fatal("r5 has no recipes despite being live across regions")
	}
}

// TestConstRecipeAtEveryLiveBoundary is the soundness property that broke
// the earlier block-local pruning: a pruned register's slot is never valid,
// so a recipe must exist at every region end where it is live.
func TestConstRecipeAtEveryLiveBoundary(t *testing.T) {
	res := mustCompile(t, constProg(t), Config{StoreThreshold: 16, MaxUnroll: 1})
	for fi, f := range res.Prog.Funcs {
		g := cfg.New(f)
		lv := cfg.ComputeLiveness(g)
		for _, bi := range g.RPO {
			blk := f.Blocks[bi]
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if in.Op != isa.Boundary && !in.Op.IsSync() {
					continue
				}
				if !lv.LiveBefore(g, bi, i).Has(5) {
					continue
				}
				pc := isa.PC{Func: fi, Block: bi, Index: i}
				if in.Op == isa.Boundary {
					pc.Index++
				}
				hasR5 := false
				for _, r := range res.Recipes[pc.Pack()] {
					if r.Reg == 5 {
						hasR5 = true
					}
				}
				if !hasR5 {
					t.Fatalf("f%d b%d i%d: r5 live at region end but no recipe", fi, bi, i)
				}
			}
		}
	}
}

func TestDisablePruningCheckpointsConstants(t *testing.T) {
	p := constProg(t)
	on := mustCompile(t, p, Config{StoreThreshold: 16, MaxUnroll: 1})
	off := mustCompile(t, p, Config{StoreThreshold: 16, MaxUnroll: 1, DisablePruning: true})
	if off.Stats.ConstRecipes != 0 {
		t.Fatal("DisablePruning still recorded recipes")
	}
	if off.Stats.Checkpoints <= on.Stats.Checkpoints {
		t.Fatalf("pruning did not reduce checkpoints: %d vs %d",
			on.Stats.Checkpoints, off.Stats.Checkpoints)
	}
	// Without pruning, r5 must be checkpointed somewhere.
	found := false
	for _, f := range off.Prog.Funcs {
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Op == isa.CkptStore && blk.Instrs[i].Rs1 == 5 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("r5 not checkpointed with pruning disabled")
	}
}

func TestArgRegisterNeverConstPruned(t *testing.T) {
	// A register that arrives as a thread argument and is overwritten
	// once must not be treated as a global constant: resume points
	// before the overwrite need the argument value.
	b := isa.NewBuilder("arg")
	b.Func("main")
	b.MovImm(9, 0x20000)
	// Use the argument first...
	b.Store(9, 0, isa.ArgReg(0))
	// ...then overwrite it with a constant and keep it live.
	b.MovImm(isa.ArgReg(0), 5)
	for i := 1; i < 40; i++ {
		b.Store(9, int64(8*i), isa.ArgReg(0))
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := mustCompile(t, p, Config{StoreThreshold: 12, MaxUnroll: 1})
	for _, rs := range res.Recipes {
		for _, r := range rs {
			if r.Reg == isa.ArgReg(0) {
				t.Fatal("argument register recipe-pruned despite use-before-def")
			}
		}
	}
}

func TestRegionEndsReport(t *testing.T) {
	res := mustCompile(t, constProg(t), Config{StoreThreshold: 16, MaxUnroll: 1})
	ends := res.RegionEnds()
	if len(ends) == 0 {
		t.Fatal("no region ends reported")
	}
	max := 0
	recipes := 0
	for _, e := range ends {
		if e.MaxStores > max {
			max = e.MaxStores
		}
		recipes += e.Recipes
		if e.MaxStores > 16 {
			t.Fatalf("region end %v exceeds threshold: %d", e.PC, e.MaxStores)
		}
		in := res.Prog.InstrAt(e.PC)
		if in.Op != isa.Boundary && !in.Op.IsSync() {
			t.Fatalf("region end %v does not point at a boundary (%s)", e.PC, in.Op)
		}
	}
	if max != res.Stats.MaxRegionStores {
		t.Fatalf("report max %d != stats max %d", max, res.Stats.MaxRegionStores)
	}
	if recipes != res.Stats.ConstRecipes {
		t.Fatalf("report recipes %d != stats %d", recipes, res.Stats.ConstRecipes)
	}
}
