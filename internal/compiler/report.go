package compiler

import (
	"lightwsp/internal/cfg"
	"lightwsp/internal/isa"
)

// RegionEnd describes one static region end of a compiled program: an
// explicit Boundary or a synchronization instruction's implicit boundary.
type RegionEnd struct {
	// PC is the region end's location.
	PC isa.PC
	// Kind is the Boundary kind (KindRequired/KindLoop/KindSplit), or -1
	// for an implicit boundary at a synchronization instruction.
	Kind int64
	// MaxStores is the largest persist-path store count (including the
	// closing slot stores) any path into this region end can accumulate.
	MaxStores int
	// Checkpoints is the length of the checkpoint run attached here.
	Checkpoints int
	// Recipes is the number of reconstruction recipes recorded here.
	Recipes int
}

// RegionEnds enumerates the compiled program's static region ends with
// their worst-case store accounting — the compiler-side view behind the
// region statistics of §V-G3 and the threshold sweeps of Figures 11/12.
func (res *Result) RegionEnds() []RegionEnd {
	var out []RegionEnd
	for fi, f := range res.Prog.Funcs {
		g := cfg.New(f)
		counts, diverged := regionStoreCounts(g, func(cnt int, in *isa.Instr) int {
			return resetCount(stepCount(cnt, in), in)
		})
		if diverged {
			// Cannot happen for a validated compile result; report
			// nothing rather than bogus numbers.
			continue
		}
		for _, bi := range g.RPO {
			blk := f.Blocks[bi]
			cnt := counts[bi]
			run := 0
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				atEnd := in.Op == isa.Boundary || in.Op.IsSync()
				if atEnd {
					end := RegionEnd{
						PC:          isa.PC{Func: fi, Block: bi, Index: i},
						Kind:        -1,
						MaxStores:   stepCount(cnt, in),
						Checkpoints: run,
					}
					if in.Op == isa.Boundary {
						end.Kind = in.Imm
					}
					rpc := end.PC
					if in.Op == isa.Boundary {
						rpc.Index++
					}
					end.Recipes = len(res.Recipes[rpc.Pack()])
					out = append(out, end)
				}
				if in.Op == isa.CkptStore {
					run++
				} else {
					run = 0
				}
				cnt = resetCount(stepCount(cnt, in), in)
			}
		}
	}
	return out
}
