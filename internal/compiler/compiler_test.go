package compiler

import (
	"math/rand"
	"testing"

	"lightwsp/internal/cfg"
	"lightwsp/internal/isa"
)

func mustCompile(t *testing.T, p *isa.Program, cc Config) *Result {
	t.Helper()
	res, err := Compile(p, cc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return res
}

// straightLine builds a program with n stores in a row.
func straightLine(n int) *isa.Program {
	b := isa.NewBuilder("straight")
	b.Func("main")
	b.MovImm(1, 0x1000)
	b.MovImm(2, 7)
	for i := 0; i < n; i++ {
		b.Store(1, int64(8*i), 2)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func storeLoop(iters ...int) *isa.Program {
	b := isa.NewBuilder("loop")
	b.Func("main")
	b.MovImm(1, 0x1000) // base
	b.MovImm(2, 800)    // limit
	b.MovImm(3, 0)      // i
	loop := b.NewBlock()
	b.Store(1, 0, 3)
	b.AddImm(1, 1, 8)
	b.AddImm(3, 3, 1)
	b.CmpLT(4, 3, 2)
	b.Branch(4, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func TestEntryExitBoundaries(t *testing.T) {
	res := mustCompile(t, straightLine(3), DefaultConfig())
	f := res.Prog.Funcs[0]
	if f.Blocks[0].Instrs[0].Op != isa.Boundary {
		t.Errorf("entry does not start with a boundary: %s", f.Blocks[0].Instrs[0].String())
	}
	// Some boundary must immediately precede the Halt.
	found := false
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == isa.Halt && i > 0 && blk.Instrs[i-1].Op == isa.Boundary {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no boundary before halt:\n%s", res.Prog.Disasm())
	}
	if res.Stats.Boundaries < 2 {
		t.Errorf("Boundaries = %d, want >= 2", res.Stats.Boundaries)
	}
}

func TestThresholdEnforcement(t *testing.T) {
	// 100 stores with threshold 8: need at least ceil(100/6) regions.
	cc := Config{StoreThreshold: 8, MaxUnroll: 1}
	res := mustCompile(t, straightLine(100), cc)
	if res.Stats.MaxRegionStores > 8 {
		t.Errorf("MaxRegionStores = %d > 8", res.Stats.MaxRegionStores)
	}
	if res.Stats.Boundaries < 100/6 {
		t.Errorf("Boundaries = %d, want >= %d", res.Stats.Boundaries, 100/6)
	}
	// A larger threshold needs fewer boundaries.
	res2 := mustCompile(t, straightLine(100), Config{StoreThreshold: 32, MaxUnroll: 1})
	if res2.Stats.Boundaries >= res.Stats.Boundaries {
		t.Errorf("threshold 32 produced %d boundaries, threshold 8 produced %d",
			res2.Stats.Boundaries, res.Stats.Boundaries)
	}
}

func TestLoopHeaderBoundary(t *testing.T) {
	res := mustCompile(t, storeLoop(), Config{StoreThreshold: 32, MaxUnroll: 1})
	// The loop must be cut by at least one boundary (header), or the
	// region bound check inside Compile would have failed. Verify via
	// CheckRegionBound with the same threshold.
	if err := CheckRegionBound(res.Prog, 32, nil); err != nil {
		t.Fatal(err)
	}
	var kinds []int64
	for _, f := range res.Prog.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == isa.Boundary {
					kinds = append(kinds, b.Instrs[i].Imm)
				}
			}
		}
	}
	hasLoop := false
	for _, k := range kinds {
		if k == KindLoop {
			hasLoop = true
		}
	}
	if !hasLoop {
		t.Errorf("no loop-header boundary inserted; kinds = %v", kinds)
	}
}

func TestStoreFreeLoopGetsNoHeaderBoundary(t *testing.T) {
	b := isa.NewBuilder("pureloop")
	b.Func("main")
	b.MovImm(1, 0)
	b.MovImm(2, 100)
	loop := b.NewBlock()
	b.AddImm(1, 1, 1)
	b.CmpLT(3, 1, 2)
	b.Branch(3, loop, loop+1)
	b.NewBlock()
	b.Halt()
	b.SwitchTo(0)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := mustCompile(t, p, DefaultConfig())
	for _, f := range res.Prog.Funcs {
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Op == isa.Boundary && blk.Instrs[i].Imm == KindLoop {
					t.Fatal("store-free loop got a header boundary")
				}
			}
		}
	}
}

func TestUnrollingExtendsRegions(t *testing.T) {
	noUnroll := mustCompile(t, storeLoop(), Config{StoreThreshold: 32, MaxUnroll: 1})
	unrolled := mustCompile(t, storeLoop(), Config{StoreThreshold: 32, MaxUnroll: 4})
	if unrolled.Stats.UnrolledLoops != 1 {
		t.Fatalf("UnrolledLoops = %d, want 1", unrolled.Stats.UnrolledLoops)
	}
	if unrolled.Prog.NumInstrs() <= noUnroll.Prog.NumInstrs() {
		t.Errorf("unrolled program not larger: %d vs %d",
			unrolled.Prog.NumInstrs(), noUnroll.Prog.NumInstrs())
	}
	if err := CheckRegionBound(unrolled.Prog, 32, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointInsertionLiveOut(t *testing.T) {
	// r5 is defined before a call boundary and used after: must be
	// checkpointed at some boundary before its post-call use.
	b := isa.NewBuilder("live")
	callee := -1
	b.Func("main")
	b.MovImm(5, 42)
	b.MovImm(1, 1) // arg
	b.Call(1, 1)   // placeholder index; patched below
	b.Store(5, 0, 5)
	b.Halt()
	callee = b.Func("leaf")
	b.MovImm(0, 9)
	b.Ret(0)
	// Patch the call target.
	p, err := b.Build()
	if err == nil {
		p.Funcs[0].Blocks[0].Instrs[2].Target = callee
		err = p.Validate()
	}
	if err != nil {
		t.Fatal(err)
	}
	res := mustCompile(t, p, DefaultConfig())
	found := false
	for _, blk := range res.Prog.Funcs[0].Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == isa.CkptStore && blk.Instrs[i].Rs1 == 5 {
				found = true
			}
		}
	}
	// r5 = 42 is a constant, so pruning may legitimately remove the
	// checkpoint — in that case a recipe must exist.
	if !found {
		hasRecipe := false
		for _, rs := range res.Recipes {
			for _, r := range rs {
				if r.Reg == 5 && r.Const == 42 {
					hasRecipe = true
				}
			}
		}
		if !hasRecipe {
			t.Fatalf("r5 neither checkpointed nor recipe-recorded:\n%s", res.Prog.Disasm())
		}
	}
}

func TestCheckpointPruningRecordsRecipes(t *testing.T) {
	p := straightLine(3)
	resP := mustCompile(t, p, DefaultConfig())
	resNoP := mustCompile(t, p, Config{StoreThreshold: 32, MaxUnroll: 1, DisablePruning: true})
	if resP.Stats.PrunedCheckpoints == 0 {
		t.Skip("nothing pruned in this shape")
	}
	if resP.Stats.Checkpoints >= resNoP.Stats.Checkpoints {
		t.Errorf("pruning did not reduce checkpoints: %d vs %d",
			resP.Stats.Checkpoints, resNoP.Stats.Checkpoints)
	}
	total := 0
	for _, rs := range resP.Recipes {
		total += len(rs)
	}
	if total != resP.Stats.PrunedCheckpoints {
		t.Errorf("recipes (%d) != pruned (%d)", total, resP.Stats.PrunedCheckpoints)
	}
}

func TestRecipeKeysAreValidPCs(t *testing.T) {
	res := mustCompile(t, straightLine(40), Config{StoreThreshold: 12, MaxUnroll: 1})
	for key := range res.Recipes {
		pc := isa.UnpackPC(key)
		if pc.Func >= len(res.Prog.Funcs) ||
			pc.Block >= len(res.Prog.Funcs[pc.Func].Blocks) ||
			pc.Index > len(res.Prog.Funcs[pc.Func].Blocks[pc.Block].Instrs) {
			t.Fatalf("recipe key %v out of range", pc)
		}
		// The recovery PC of an explicit boundary points at the
		// instruction right after it.
		blk := res.Prog.Funcs[pc.Func].Blocks[pc.Block]
		if pc.Index > 0 && blk.Instrs[pc.Index-1].Op != isa.Boundary && !blk.Instrs[pc.Index].Op.IsSync() {
			t.Errorf("recipe key %v is not anchored to a region end", pc)
		}
	}
}

func TestCombiningReducesBoundaries(t *testing.T) {
	p := straightLine(60)
	on := mustCompile(t, p, Config{StoreThreshold: 32, MaxUnroll: 1})
	off := mustCompile(t, p, Config{StoreThreshold: 32, MaxUnroll: 1, DisableCombining: true})
	if on.Stats.Boundaries > off.Stats.Boundaries {
		t.Errorf("combining increased boundaries: %d vs %d", on.Stats.Boundaries, off.Stats.Boundaries)
	}
}

func TestSyncDelimitsRegions(t *testing.T) {
	// 20 stores, fence, 20 stores with threshold 50: the fence's implicit
	// boundary must reset the count, so no split boundary is needed.
	b := isa.NewBuilder("sync")
	b.Func("main")
	b.MovImm(1, 0x1000)
	b.MovImm(2, 3)
	for i := 0; i < 20; i++ {
		b.Store(1, int64(8*i), 2)
	}
	b.Fence()
	for i := 20; i < 40; i++ {
		b.Store(1, int64(8*i), 2)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := mustCompile(t, p, Config{StoreThreshold: 50, MaxUnroll: 1})
	for _, f := range res.Prog.Funcs {
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Op == isa.Boundary && blk.Instrs[i].Imm == KindSplit {
					t.Fatalf("unexpected split boundary; fence should delimit regions:\n%s", res.Prog.Disasm())
				}
			}
		}
	}
	// Registers live across the fence must be checkpointed before it.
	ckptBeforeFence := false
	for _, f := range res.Prog.Funcs {
		for _, blk := range f.Blocks {
			for i := 1; i < len(blk.Instrs); i++ {
				if blk.Instrs[i].Op == isa.Fence {
					for j := i - 1; j >= 0 && blk.Instrs[j].Op == isa.CkptStore; j-- {
						ckptBeforeFence = true
					}
				}
			}
		}
	}
	if !ckptBeforeFence {
		t.Log("note: no checkpoints before fence (may be all pruned as constants)")
	}
}

func TestRejectsInstrumentedInput(t *testing.T) {
	p := straightLine(2)
	p.Funcs[0].Blocks[0].Instrs[0] = isa.Instr{Op: isa.Boundary}
	if _, err := Compile(p, DefaultConfig()); err == nil {
		t.Fatal("accepted already-instrumented input")
	}
}

func TestRejectsTinyThreshold(t *testing.T) {
	if _, err := Compile(straightLine(2), Config{StoreThreshold: 2}); err == nil {
		t.Fatal("accepted threshold below minimum")
	}
}

func TestCompileDoesNotMutateInput(t *testing.T) {
	p := straightLine(5)
	before := p.NumInstrs()
	mustCompile(t, p, DefaultConfig())
	if p.NumInstrs() != before {
		t.Fatal("Compile mutated its input program")
	}
}

func TestBoundaryNormalForm(t *testing.T) {
	res := mustCompile(t, storeLoop(), DefaultConfig())
	for _, f := range res.Prog.Funcs {
		for bi, blk := range f.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Op == isa.Boundary && i != len(blk.Instrs)-2 {
					t.Errorf("b%d: boundary at %d not in normal form (len %d)", bi, i, len(blk.Instrs))
				}
			}
		}
	}
}

// randProg generates a structured random program exercising stores, loops,
// branches, calls and fences. Leaf functions occupy indices 1..nLeaf so call
// targets can be forward-referenced from main (function 0).
func randProg(r *rand.Rand) *isa.Program {
	b := isa.NewBuilder("rand")
	nLeaf := 1 + r.Intn(2)
	b.Func("main")
	segs := 2 + r.Intn(5)
	b.MovImm(1, 0x10000) // base pointer
	b.MovImm(2, int64(r.Intn(100)))
	for s := 0; s < segs; s++ {
		switch r.Intn(6) {
		case 0: // store run
			n := 1 + r.Intn(20)
			for i := 0; i < n; i++ {
				b.Store(1, int64(8*i), 2)
			}
		case 1: // alu
			for i := 0; i < r.Intn(6); i++ {
				b.AddImm(isa.Reg(3+r.Intn(5)), 2, int64(i))
			}
		case 2: // self loop with stores
			b.MovImm(3, 0)
			b.MovImm(4, int64(2+r.Intn(20)))
			loop := b.NewBlock() // previous block (loop-1) is still open
			b.Store(1, 0, 3)
			b.AddImm(3, 3, 1)
			b.CmpLT(5, 3, 4)
			next := loop + 1
			b.Branch(5, loop, next)
			b.NewBlock() // next
			b.SwitchTo(loop - 1)
			b.Jump(loop)
			b.SwitchTo(next)
		case 3: // fence
			b.Fence()
		case 4: // diamond
			b.CmpLT(6, 2, 1)
			pre := b.CurrentBlock()
			then := b.NewBlock()
			b.Store(1, 8, 2)
			b.Jump(then + 2) // join, created below
			els := b.NewBlock()
			b.Store(1, 16, 2)
			b.Jump(els + 1) // join
			join := b.NewBlock()
			b.SwitchTo(pre)
			b.Branch(6, then, els)
			b.SwitchTo(join)
		case 5: // call a leaf
			b.Mov(isa.ArgReg(0), 1)
			b.Call(1+r.Intn(nLeaf), 1)
		}
	}
	b.Halt()
	for i := 0; i < nLeaf; i++ {
		b.Func("leaf")
		n := r.Intn(8)
		for j := 0; j < n; j++ {
			b.Store(1, int64(8*j), 1)
		}
		b.MovImm(0, 5)
		b.Ret(0)
	}
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func TestCompileRandomProgramsHoldBound(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		p := randProg(r)
		for _, th := range []int{8, 16, 32, 64} {
			res, err := Compile(p, Config{StoreThreshold: th, MaxUnroll: 4})
			if err != nil {
				t.Fatalf("trial %d threshold %d: %v\n%s", trial, th, err, p.Disasm())
			}
			if res.Stats.MaxRegionStores > th {
				t.Fatalf("trial %d: bound violated: %d > %d", trial, res.Stats.MaxRegionStores, th)
			}
			if err := res.Prog.Validate(); err != nil {
				t.Fatalf("trial %d: invalid output: %v", trial, err)
			}
		}
	}
}

// TestCheckpointSoundness verifies the checkpoint invariant statically: for
// every region end, every register live into the next region is either in
// the may-defined set (and thus checkpointed there) or flows unchanged from
// a previous region end where induction applies.
func TestCheckpointSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		res := mustCompile(t, randProg(r), Config{StoreThreshold: 16, MaxUnroll: 2, DisablePruning: true})
		for fi, f := range res.Prog.Funcs {
			g := cfg.New(f)
			lv := cfg.ComputeLiveness(g)
			fc := &funcCompiler{prog: res.Prog, fi: fi, cfg: res.Config, res: res}
			mayIn := fc.mayDefinedSinceBoundary(g)
			for _, bi := range g.RPO {
				blk := f.Blocks[bi]
				def := mayIn[bi]
				for i := range blk.Instrs {
					in := &blk.Instrs[i]
					if in.Op == isa.Boundary || in.Op.IsSync() {
						need := lv.LiveBefore(g, bi, i) & def
						// Every needed register must have a CkptStore
						// directly before this instruction.
						got := cfg.RegSet(0)
						for j := i - 1; j >= 0 && blk.Instrs[j].Op == isa.CkptStore; j-- {
							got = got.Add(blk.Instrs[j].Rs1)
						}
						for _, reg := range need.Regs() {
							if !got.Has(reg) {
								t.Fatalf("f%d b%d i%d: live defined reg %s not checkpointed", fi, bi, i, reg)
							}
						}
						def = 0
					}
					if d, ok := in.Defs(); ok {
						def = def.Add(d)
					}
				}
			}
		}
	}
}
