// Package compiler implements the LightWSP compiler of §IV-A: it partitions
// a program into recoverable regions (epochs) whose persist-path store count
// never exceeds a WPQ-derived threshold, checkpoints live-out registers into
// the PM-resident checkpoint array, and shrinks the checkpoint overhead with
// region combining, (speculative) loop unrolling and checkpoint pruning.
//
// The pass pipeline mirrors Figure 3 of the paper:
//
//	initial region boundary insertion  →  (speculative) loop unrolling  →
//	liveness analysis / checkpoint insertion  ⇄  region formation
//	(combine + repartition to the store threshold)  →  checkpoint pruning
//
// The circular dependence between checkpoint insertion (which adds stores)
// and region partitioning (which bounds stores) is broken by iterating the
// two passes to a fixed point, exactly as the paper describes.
package compiler

import (
	"fmt"

	"lightwsp/internal/cfg"
	"lightwsp/internal/isa"
)

// Config controls compilation.
type Config struct {
	// StoreThreshold is the maximum number of persist-path stores
	// (including checkpoint and boundary stores) allowed in one region.
	// The paper sets it to half the WPQ entry count (§IV-A); 32 for the
	// default 64-entry WPQ.
	StoreThreshold int
	// MaxUnroll caps the (speculative) loop-unrolling factor used to
	// extend small loop regions. 1 disables unrolling. The paper reports
	// ~3x longer regions from this optimization; 4 is the default cap.
	MaxUnroll int
	// DisablePruning turns off checkpoint pruning (for ablation).
	DisablePruning bool
	// DisableCombining turns off region combining (for ablation).
	DisableCombining bool
}

// DefaultConfig returns the paper's default compiler configuration:
// threshold 32 (half of the 64-entry WPQ), unrolling capped at 4x.
func DefaultConfig() Config {
	return Config{StoreThreshold: 32, MaxUnroll: 4}
}

// Recipe reconstructs one pruned checkpoint: at recovery time the register
// holds a compile-time constant instead of a checkpoint-array load.
type Recipe struct {
	Reg   isa.Reg
	Const int64
}

// Result is the output of Compile.
type Result struct {
	// Prog is the instrumented program (boundaries + checkpoint stores).
	Prog *isa.Program
	// Config echoes the configuration used.
	Config Config
	// Recipes maps a Boundary's packed PC to the reconstruction recipes
	// of checkpoints pruned at that boundary. The recovery runtime
	// applies them after reloading the surviving checkpoint slots.
	Recipes map[uint64][]Recipe
	// Stats summarises the compilation.
	Stats Stats
}

// Stats are static compilation statistics.
type Stats struct {
	// SourceInstrs is the instruction count before instrumentation.
	SourceInstrs int
	// FinalInstrs is the instruction count after instrumentation.
	FinalInstrs int
	// Boundaries is the number of Boundary instructions inserted.
	Boundaries int
	// Checkpoints is the number of CkptStore instructions that survived
	// pruning.
	Checkpoints int
	// PrunedCheckpoints counts checkpoint stores avoided by pruning:
	// one per region end at which a global-constant register is live
	// and reconstructed by recipe instead of occupying a slot store.
	PrunedCheckpoints int
	// CombinedBoundaries is the number removed by region combining.
	CombinedBoundaries int
	// UnrolledLoops is the number of loops extended by unrolling.
	UnrolledLoops int
	// ConstRecipes is the number of per-boundary reconstruction recipes
	// recorded for global-constant registers (never checkpointed at all).
	ConstRecipes int
	// MaxRegionStores is the largest static per-region store bound
	// observed after partitioning (must be ≤ StoreThreshold).
	MaxRegionStores int
}

// Compile instruments prog (in place on a clone) for LightWSP region-level
// persistence and returns the result. The input program must not already
// contain Boundary or CkptStore instructions.
func Compile(prog *isa.Program, cc Config) (*Result, error) {
	if cc.StoreThreshold < minThreshold {
		return nil, fmt.Errorf("compiler: store threshold %d below minimum %d", cc.StoreThreshold, minThreshold)
	}
	if cc.MaxUnroll < 1 {
		cc.MaxUnroll = 1
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				switch b.Instrs[i].Op {
				case isa.Boundary, isa.CkptStore:
					return nil, fmt.Errorf("compiler: input already instrumented (%s in %s)", b.Instrs[i].Op, f.Name)
				}
			}
		}
	}
	res := &Result{
		Prog:    prog.Clone(),
		Config:  cc,
		Recipes: map[uint64][]Recipe{},
	}
	res.Stats.SourceInstrs = prog.NumInstrs()

	// Phase 1: structural instrumentation (initial boundaries, unrolling).
	fcs := make([]*funcCompiler, len(res.Prog.Funcs))
	for fi := range res.Prog.Funcs {
		fcs[fi] = &funcCompiler{prog: res.Prog, fi: fi, cfg: cc, res: res}
		fcs[fi].prepare()
	}
	// Phase 2: program-scope constant qualification (checkpoint pruning).
	var consts *progConsts
	if !cc.DisablePruning {
		consts = findProgramConstants(res.Prog)
		mask := consts.mask()
		for _, c := range fcs {
			c.constRegs = mask
		}
	}
	// Phase 3: per-function partitioning to the store threshold.
	for fi, c := range fcs {
		if err := c.partition(); err != nil {
			return nil, fmt.Errorf("compiler: %s: %w", res.Prog.Funcs[fi].Name, err)
		}
	}
	// Phase 4: recovery recipes on the final layout.
	if !cc.DisablePruning {
		n := recordConstRecipes(res, consts)
		res.Stats.ConstRecipes = n
		res.Stats.PrunedCheckpoints = n
	}

	res.Stats.FinalInstrs = res.Prog.NumInstrs()
	countInstrs(res)
	if err := res.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: produced invalid program: %w", err)
	}
	if err := CheckRegionBound(res.Prog, cc.StoreThreshold, &res.Stats.MaxRegionStores); err != nil {
		return nil, err
	}
	return res, nil
}

const minThreshold = 4 // room for a boundary plus a few checkpoints

func countInstrs(res *Result) {
	for _, f := range res.Prog.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				switch b.Instrs[i].Op {
				case isa.Boundary:
					res.Stats.Boundaries++
				case isa.CkptStore:
					res.Stats.Checkpoints++
				}
			}
		}
	}
}

// funcCompiler carries per-function pass state.
type funcCompiler struct {
	prog *isa.Program
	fi   int
	cfg  Config
	res  *Result
	// ckptReserve is the running maximum checkpoint-run length, reserved
	// out of the partitioning budget (see partitionFixpoint).
	ckptReserve int
	// constRegs are the global-constant registers (see findProgramConstants)
	// excluded from checkpointing and reconstructed by recipes instead.
	constRegs cfg.RegSet
}

func (c *funcCompiler) fn() *isa.Function { return c.prog.Funcs[c.fi] }

// prepare performs the structural phase on one function: initial boundary
// insertion, (speculative) loop unrolling, block normalization.
func (c *funcCompiler) prepare() {
	c.insertInitialBoundaries()
	if c.cfg.MaxUnroll > 1 {
		// Unrolling runs before block splitting so self-loops are still
		// single blocks (header == latch) and easy to replicate.
		c.res.Stats.UnrolledLoops += c.unrollLoops()
	}
	c.splitAtBoundaries()
}

// partition runs the checkpoint-insertion/threshold fixed point and region
// combining on one function. Registers in constRegs are never checkpointed:
// the program-scope pruning phase guarantees their recipes exist at every
// possible resume point (a pruned register's slot is never valid).
func (c *funcCompiler) partition() error {
	if err := c.partitionFixpoint(); err != nil {
		return err
	}
	if !c.cfg.DisableCombining {
		removed := c.combineRegions()
		c.res.Stats.CombinedBoundaries += removed
		if removed > 0 {
			// Re-establish checkpoints and the threshold once more.
			if err := c.partitionFixpoint(); err != nil {
				return err
			}
		}
	}
	return nil
}

// partitionFixpoint alternates checkpoint insertion and threshold
// enforcement until no new boundary is needed.
//
// The circular dependence the paper describes — checkpoint stores attach to
// whatever boundary closes their region, so a freshly inserted boundary
// attracts them and can be pushed back over the threshold — is broken by
// budgeting: the enforcement counts only non-checkpoint stores against a
// budget that reserves room for the longest checkpoint run seen so far (a
// running maximum, so the budget is monotone and the loop terminates). Any
// region then satisfies plain ≤ budget, checkpoints ≤ reserve, boundary = 2,
// whose sum is within the threshold.
func (c *funcCompiler) partitionFixpoint() error {
	const maxIter = 200
	for iter := 0; iter < maxIter; iter++ {
		c.clearCheckpoints()
		c.insertCheckpoints()
		if run := c.maxCheckpointRun(); run > c.ckptReserve {
			c.ckptReserve = run
		}
		budget := c.cfg.StoreThreshold - isa.BoundaryStores - c.ckptReserve
		if budget < 1 {
			return fmt.Errorf("register pressure (%d live checkpoints) exceeds store threshold %d",
				c.ckptReserve, c.cfg.StoreThreshold)
		}
		added, err := c.enforceThreshold(budget)
		if err != nil {
			return err
		}
		if added == 0 {
			return nil
		}
		c.splitAtBoundaries()
	}
	return fmt.Errorf("region partitioning did not converge after %d iterations", maxIter)
}

// maxCheckpointRun returns the length of the longest contiguous CkptStore
// run in the function — the largest per-boundary checkpoint cost.
func (c *funcCompiler) maxCheckpointRun() int {
	max, run := 0, 0
	for _, blk := range c.fn().Blocks {
		run = 0
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == isa.CkptStore {
				run++
				if run > max {
					max = run
				}
			} else {
				run = 0
			}
		}
	}
	return max
}

// CheckRegionBound verifies the compiler invariant that no region can
// dynamically issue more persist-path stores than threshold. It runs the
// same max-path dataflow the partitioner uses and fails if any program
// point can be reached with a higher in-region store count. maxOut, if
// non-nil, receives the largest count observed.
//
// The accounting matches the hardware: a region's count includes all its
// instruction stores (isa.Op.PersistStores), the closing boundary's two
// checkpoint-slot stores, and — when the region is closed by a
// synchronization instruction's implicit hardware boundary — the two slots
// that implicit boundary writes.
func CheckRegionBound(p *isa.Program, threshold int, maxOut *int) error {
	max := 0
	fullStep := func(cnt int, in *isa.Instr) int { return resetCount(stepCount(cnt, in), in) }
	for fi := range p.Funcs {
		g := cfg.New(p.Funcs[fi])
		counts, diverged := regionStoreCounts(g, fullStep)
		if diverged {
			return fmt.Errorf("compiler: %s has an unbounded store cycle within a region", p.Funcs[fi].Name)
		}
		for _, b := range g.RPO {
			cnt := counts[b]
			for i := range p.Funcs[fi].Blocks[b].Instrs {
				in := &p.Funcs[fi].Blocks[b].Instrs[i]
				cnt = stepCount(cnt, in)
				if cnt > max {
					max = cnt
				}
				if cnt > threshold {
					return fmt.Errorf("compiler: %s:b%d:%d exceeds store threshold (%d > %d)",
						p.Funcs[fi].Name, b, i, cnt, threshold)
				}
				cnt = resetCount(cnt, in)
			}
		}
	}
	if maxOut != nil {
		*maxOut = max
	}
	return nil
}
