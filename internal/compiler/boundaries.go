package compiler

import (
	"fmt"

	"lightwsp/internal/cfg"
	"lightwsp/internal/isa"
)

// Boundary kinds, carried in the Boundary instruction's Imm field. Combining
// may only remove splits the partitioner itself introduced; boundaries that
// carry semantics (call sites, function entry/exit) or boundedness (loop
// headers) are never removed.
const (
	// KindRequired marks entry/exit/call-site boundaries.
	KindRequired int64 = 0
	// KindLoop marks loop-header boundaries.
	KindLoop int64 = 1
	// KindSplit marks threshold-enforcement splits (combinable).
	KindSplit int64 = 2
)

func boundary(kind int64) isa.Instr { return isa.Instr{Op: isa.Boundary, Imm: kind} }

// insertInitialBoundaries performs the paper's first pass (§IV-A "Initial
// Region Boundary Insertion"): boundaries at function entry and exit, around
// every call site, and at the header of every loop whose body issues
// persist-path stores. Synchronization instructions get no explicit
// Boundary — the hardware treats them as implicit boundaries (§III-D) — but
// the partitioner and checkpoint inserter account for them as region
// delimiters.
func (c *funcCompiler) insertInitialBoundaries() {
	fn := c.fn()

	// Loop headers first, while block indices are still the source ones.
	g := cfg.New(fn)
	for _, l := range g.NaturalLoops() {
		stores := 0
		for _, b := range l.Body {
			for i := range fn.Blocks[b].Instrs {
				stores += fn.Blocks[b].Instrs[i].PersistStoresIncludingSync()
			}
		}
		if stores == 0 {
			continue // §IV-A: "unless it has no stores"
		}
		hdr := fn.Blocks[l.Header]
		hdr.Instrs = append([]isa.Instr{boundary(KindLoop)}, hdr.Instrs...)
	}

	// Entry, exit and call-site boundaries.
	for bi, blk := range fn.Blocks {
		out := make([]isa.Instr, 0, len(blk.Instrs)+4)
		if bi == 0 {
			out = append(out, boundary(KindRequired))
		}
		for _, in := range blk.Instrs {
			switch in.Op {
			case isa.Call:
				out = append(out, boundary(KindRequired), in, boundary(KindRequired))
			case isa.Ret, isa.Halt:
				out = append(out, boundary(KindRequired), in)
			default:
				out = append(out, in)
			}
		}
		blk.Instrs = out
	}
}

// splitAtBoundaries normalizes the function so every Boundary instruction is
// immediately followed by the block terminator: regions then always start at
// the beginning of basic blocks, which is the form the paper's liveness pass
// assumes. Splitting inserts a Jump to a fresh continuation block.
func (c *funcCompiler) splitAtBoundaries() {
	fn := c.fn()
	for bi := 0; bi < len(fn.Blocks); bi++ { // new blocks are appended and revisited
		blk := fn.Blocks[bi]
		for i := 0; i < len(blk.Instrs); i++ {
			if blk.Instrs[i].Op != isa.Boundary {
				continue
			}
			if i == len(blk.Instrs)-2 && blk.Instrs[i+1].Op.IsTerminator() {
				continue // already normalized
			}
			rest := make([]isa.Instr, len(blk.Instrs)-(i+1))
			copy(rest, blk.Instrs[i+1:])
			fn.Blocks = append(fn.Blocks, &isa.Block{Instrs: rest})
			nb := len(fn.Blocks) - 1
			blk.Instrs = append(blk.Instrs[:i+1], isa.Instr{Op: isa.Jump, Target: nb})
			break // the remainder of this block moved; continue with next block
		}
	}
}

// stepCount advances the in-region store count across one instruction and
// returns the count the closing region would see at this point (for the
// threshold check). resetCount then yields the count carried forward.
func stepCount(cnt int, in *isa.Instr) int {
	if in.Op == isa.Boundary || in.Op.IsSync() {
		return cnt + isa.BoundaryStores
	}
	return cnt + in.Op.PersistStores()
}

func resetCount(cnt int, in *isa.Instr) int {
	switch {
	case in.Op == isa.Boundary:
		return 0
	case in.Op.IsSync():
		return in.Op.PersistStores() // the sync's own store opens the new region
	}
	return cnt
}

// plainStep advances the in-region count of non-checkpoint stores: the
// accounting the threshold-enforcement pass uses. Checkpoint stores are
// budgeted separately (see partitionFixpoint), so they carry weight zero.
func plainStep(cnt int, in *isa.Instr) int {
	switch {
	case in.Op == isa.Boundary:
		return 0
	case in.Op.IsSync():
		return in.Op.PersistStores()
	case in.Op == isa.CkptStore:
		return cnt
	}
	return cnt + in.Op.PersistStores()
}

// regionStoreCounts runs a forward max-dataflow that computes, for each
// block, the largest in-region count with which the block can be entered,
// under the given per-instruction step function. diverged is true if a
// store-bearing cycle has no boundary, which would make a region's store
// count unbounded.
func regionStoreCounts(g *cfg.Graph, step func(int, *isa.Instr) int) (in []int, diverged bool) {
	n := len(g.Fn.Blocks)
	in = make([]int, n)
	out := make([]int, n)
	const cap = 1 << 14
	for changed := true; changed; {
		changed = false
		for _, b := range g.RPO {
			best := 0
			for _, p := range g.Pred[b] {
				if out[p] > best {
					best = out[p]
				}
			}
			cnt := best
			for i := range g.Fn.Blocks[b].Instrs {
				cnt = step(cnt, &g.Fn.Blocks[b].Instrs[i])
			}
			if best != in[b] || cnt != out[b] {
				in[b], out[b] = best, cnt
				changed = true
			}
			if cnt > cap {
				return in, true
			}
		}
	}
	return in, false
}

// enforceThreshold inserts KindSplit boundaries so that no region's count of
// non-checkpoint stores exceeds budget, and returns how many it added. The
// caller derives the budget as threshold − BoundaryStores − checkpoint
// reserve, so that a region's full cost — plain stores plus its closing
// boundary's checkpoint run plus the two boundary slot stores — stays within
// the threshold. Checkpoint stores never trigger a split: splitting inside a
// checkpoint run would just make the run migrate to the new boundary on the
// next iteration and livelock the fixed point.
func (c *funcCompiler) enforceThreshold(budget int) (added int, err error) {
	fn := c.fn()
	g := cfg.New(fn)
	counts, diverged := regionStoreCounts(g, plainStep)
	if diverged {
		return 0, fmt.Errorf("store cycle without a region boundary")
	}
	for _, b := range g.RPO {
		blk := fn.Blocks[b]
		cnt := counts[b]
		for i := 0; i < len(blk.Instrs); i++ {
			in := &blk.Instrs[i]
			if in.Op != isa.Boundary && !in.Op.IsSync() && in.Op != isa.CkptStore &&
				cnt+in.Op.PersistStores() > budget {
				blk.Instrs = insertAt(blk.Instrs, i, boundary(KindSplit))
				added++
				cnt = 0
				i++
				in = &blk.Instrs[i]
			}
			cnt = plainStep(cnt, in)
		}
	}
	return added, nil
}

func insertAt(s []isa.Instr, i int, in isa.Instr) []isa.Instr {
	s = append(s, isa.Instr{})
	copy(s[i+1:], s[i:])
	s[i] = in
	return s
}

// combineRegions implements the paper's region-formation combining step: it
// walks the CFG in topological order and removes KindSplit boundaries whose
// removal keeps every region at or under the store threshold, enlarging
// regions and (after checkpoint re-insertion) eliminating checkpoint stores
// whose registers are redefined by the merged successor region.
func (c *funcCompiler) combineRegions() (removed int) {
	fn := c.fn()
	// Candidates are examined in topological order; each successful removal
	// can enable further ones, so iterate passes until none is removable.
	// A pass without progress terminates the loop, and every removal
	// strictly shrinks the boundary count, so this always terminates.
	for {
		g := cfg.New(fn)
		progress := false
		for _, b := range g.RPO {
			blk := fn.Blocks[b]
			for i := 0; i < len(blk.Instrs); i++ {
				if blk.Instrs[i].Op != isa.Boundary || blk.Instrs[i].Imm != KindSplit {
					continue
				}
				saved := blk.Instrs[i]
				blk.Instrs = append(blk.Instrs[:i:i], blk.Instrs[i+1:]...)
				if CheckRegionBound(onlyFunc(c.prog, c.fi), c.cfg.StoreThreshold, nil) == nil {
					removed++
					progress = true
					i--
					continue
				}
				blk.Instrs = insertAt(blk.Instrs, i, saved)
			}
		}
		if !progress {
			return removed
		}
	}
}

// onlyFunc wraps a single function of prog in a throwaway program so
// CheckRegionBound can be reused for per-function checks.
func onlyFunc(p *isa.Program, fi int) *isa.Program {
	return &isa.Program{Name: p.Name, Funcs: []*isa.Function{p.Funcs[fi]}}
}
