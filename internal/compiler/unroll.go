package compiler

import (
	"lightwsp/internal/cfg"
	"lightwsp/internal/isa"
)

// unrollLoops implements the paper's region-size extension (§IV-A "Region
// Size Extension and Checkpoint Pruning"): loops whose bodies contain only a
// few stores produce many tiny regions (one per iteration, delimited by the
// loop-header boundary), each paying checkpoint stores for its live-outs.
// Speculative unrolling duplicates the loop body together with its exit
// condition, so one region covers several iterations while the store
// threshold still holds. Because the exit test is replicated with each copy,
// the transformation is valid for any trip count — this is exactly the
// "speculative loop unrolling" of [39], [53].
//
// Only self-loops (single-block bodies, the common shape after the workload
// generator and typical of innermost loops) are unrolled; the factor is the
// largest u ≤ MaxUnroll such that u × bodyStores plus the region-closing
// overhead stays under the store threshold.
//
// It returns the number of loops unrolled.
func (c *funcCompiler) unrollLoops() (count int) {
	fn := c.fn()
	g := cfg.New(fn)
	// Reserve room in the region for the loop-header boundary, a handful
	// of live-out checkpoints, and the closing boundary slots.
	const ckptHeadroom = 8
	budget := c.cfg.StoreThreshold - isa.BoundaryStores - ckptHeadroom

	for _, l := range g.NaturalLoops() {
		if len(l.Body) != 1 || len(l.Latches) != 1 || l.Latches[0] != l.Header {
			continue // not a self-loop
		}
		blk := fn.Blocks[l.Header]
		term := blk.Terminator()
		if term.Op != isa.Branch {
			continue
		}
		backIsThen := term.Target == l.Header
		if !backIsThen && term.Target2 != l.Header {
			continue // latch does not branch back (cannot happen for a self-loop)
		}
		// Split body from the leading loop-header boundary (inserted by
		// the initial pass) and from the trailing branch; reject bodies
		// with calls or syncs — those force region ends anyway.
		body := blk.Instrs[:len(blk.Instrs)-1]
		var lead []isa.Instr
		for len(body) > 0 && body[0].Op == isa.Boundary {
			lead = append(lead, body[0])
			body = body[1:]
		}
		stores, ok := 0, true
		for i := range body {
			if body[i].Op == isa.Call || body[i].Op.IsSync() || body[i].Op == isa.Boundary {
				ok = false
				break
			}
			stores += body[i].Op.PersistStores()
		}
		if !ok || stores == 0 {
			continue
		}
		factor := budget / stores
		if factor > c.cfg.MaxUnroll {
			factor = c.cfg.MaxUnroll
		}
		if factor < 2 {
			continue
		}

		// Build the unrolled chain: the header keeps its boundary and the
		// first copy; each further copy lives in a fresh block ending in
		// the replicated exit test; the last copy branches back to the
		// header.
		copies := make([]int, factor-1)
		for i := range copies {
			fn.Blocks = append(fn.Blocks, &isa.Block{})
			copies[i] = len(fn.Blocks) - 1
		}
		// The replicated branch keeps its exit edge; only the back edge is
		// redirected to chain the copies.
		link := func(b *isa.Block, next int) {
			br := *term
			if backIsThen {
				br.Target = next
			} else {
				br.Target2 = next
			}
			b.Instrs = append(b.Instrs, br)
		}
		// Rebuild the header block.
		hdr := append([]isa.Instr{}, lead...)
		hdr = append(hdr, body...)
		blkCopy := append([]isa.Instr{}, body...) // template for copies
		blk.Instrs = hdr
		link(blk, copies[0])
		for i, cb := range copies {
			nb := fn.Blocks[cb]
			nb.Instrs = append(nb.Instrs, blkCopy...)
			next := l.Header
			if i+1 < len(copies) {
				next = copies[i+1]
			}
			link(nb, next)
		}
		count++
	}
	return count
}
