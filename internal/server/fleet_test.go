package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"lightwsp/internal/experiments"
	"lightwsp/internal/fleet"
)

// fleetNode is one in-process fleet member: a Server plus its HTTP front.
type fleetNode struct {
	srv *Server
	ts  *httptest.Server
	url string
}

// newFleet boots n fleet members that know each other through the ring and
// share the L2 directory store (and, when sessionDir is non-empty, one
// session directory — the shared-storage topology the CI lane uses).
// Listeners are created first so every node's Config can name the full
// membership before any of them serves.
func newFleet(t *testing.T, n int, sessionDir string) []*fleetNode {
	t.Helper()
	l2dir := t.TempDir()
	nodes := make([]*fleetNode, n)
	peers := make([]string, n)
	for i := range nodes {
		ts := httptest.NewUnstartedServer(nil)
		nodes[i] = &fleetNode{ts: ts, url: "http://" + ts.Listener.Addr().String()}
		peers[i] = nodes[i].url
	}
	for i, nd := range nodes {
		nd.srv = New(Config{
			Workers: 2,
			// A key's owner absorbs the whole fleet's traffic for that key
			// (direct + forwarded); give the gate room for the fan-in.
			QueueDepth: 32,
			CacheDir:   t.TempDir(),
			SessionDir: sessionDir,
			FleetSelf:  peers[i],
			FleetPeers: peers,
			L2:         experiments.NewBlobCache(l2dir),
		})
		nd.ts.Config.Handler = nd.srv.Handler()
		nd.ts.Start()
		t.Cleanup(nd.ts.Close)
	}
	return nodes
}

// fleetFresh sums fresh-simulation counts across the given nodes.
func fleetFresh(nodes []*fleetNode) int {
	total := 0
	for _, nd := range nodes {
		if nd == nil {
			continue
		}
		total += nd.srv.runner.Counters().Fresh
	}
	return total
}

// TestFleetForwardingRoutesToOneOwner is the ring contract over HTTP: the
// same run request sent to every node lands on one owner (every response
// names the same X-LightWSP-Served-By), answers byte-identically, and the
// fleet executes exactly one fresh simulation.
func TestFleetForwardingRoutesToOneOwner(t *testing.T) {
	nodes := newFleet(t, 3, "")

	const perNode = 3
	type answer struct {
		body     []byte
		servedBy string
	}
	answers := make([]answer, len(nodes)*perNode)
	var wg sync.WaitGroup
	for i, nd := range nodes {
		for j := 0; j < perNode; j++ {
			wg.Add(1)
			go func(slot int, url string) {
				defer wg.Done()
				status, body, hdr := post(t, url+"/v1/run", fuzzStRun)
				if status != http.StatusOK {
					t.Errorf("run via %s: status %d: %s", url, status, body)
					return
				}
				answers[slot] = answer{body: body, servedBy: hdr.Get(fleet.ServedByHeader)}
			}(i*perNode+j, nd.url)
		}
	}
	wg.Wait()

	for i := 1; i < len(answers); i++ {
		if !bytes.Equal(answers[0].body, answers[i].body) {
			t.Fatalf("answer %d differs:\n%s\n%s", i, answers[0].body, answers[i].body)
		}
		if answers[i].servedBy != answers[0].servedBy {
			t.Fatalf("answer %d served by %q, answer 0 by %q — key has two owners",
				i, answers[i].servedBy, answers[0].servedBy)
		}
	}
	if answers[0].servedBy == "" {
		t.Fatal("fleet responses missing the Served-By header")
	}
	if got := fleetFresh(nodes); got != 1 {
		t.Fatalf("fleet ran %d fresh simulations for one key, want exactly 1", got)
	}
}

// TestFleetLeaseSingleflightWithoutRing drops the ring and keeps only the
// shared L2: three solo nodes hit with the same request concurrently must
// still simulate exactly once fleet-wide, arbitrated by the store lease,
// with every answer byte-identical. This is the topology a fleet degrades
// to when forwarding is unavailable, so it has to hold on its own.
func TestFleetLeaseSingleflightWithoutRing(t *testing.T) {
	l2dir := t.TempDir()
	nodes := make([]*fleetNode, 3)
	for i := range nodes {
		srv, ts := newTestServer(t, Config{
			Workers:  2,
			CacheDir: t.TempDir(),
			L2:       experiments.NewBlobCache(l2dir),
		})
		nodes[i] = &fleetNode{srv: srv, ts: ts, url: ts.URL}
	}

	bodies := make([][]byte, len(nodes))
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			status, body, _ := post(t, url+"/v1/run", fuzzStRun)
			if status != http.StatusOK {
				t.Errorf("node %d: status %d: %s", i, status, body)
				return
			}
			bodies[i] = body
		}(i, nd.url)
	}
	wg.Wait()

	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("node %d answer differs:\n%s\n%s", i, bodies[0], bodies[i])
		}
	}
	if got := fleetFresh(nodes); got != 1 {
		t.Fatalf("%d fresh simulations across solo nodes sharing L2, want exactly 1 (lease singleflight)", got)
	}
}

// TestFleetNodeKillRehash kills a run key's owner and re-asks a survivor:
// the forward fails, the survivor serves locally, and the shared L2 hands
// it the owner's cached result — byte-identical, zero new simulations.
func TestFleetNodeKillRehash(t *testing.T) {
	nodes := newFleet(t, 3, "")

	status, first, hdr := post(t, nodes[0].url+"/v1/run", fuzzStRun)
	if status != http.StatusOK {
		t.Fatalf("first run: status %d: %s", status, first)
	}
	owner := hdr.Get(fleet.ServedByHeader)
	if owner == "" {
		t.Fatal("first response missing Served-By")
	}

	var victim *fleetNode
	survivors := nodes[:0:0]
	for _, nd := range nodes {
		if nd.url == owner {
			victim = nd
		} else {
			survivors = append(survivors, nd)
		}
	}
	if victim == nil || len(survivors) != 2 {
		t.Fatalf("owner %q is not a fleet member", owner)
	}
	victim.ts.Close()

	for _, nd := range survivors {
		status, body, hdr := post(t, nd.url+"/v1/run", fuzzStRun)
		if status != http.StatusOK {
			t.Fatalf("post-kill run via %s: status %d: %s", nd.url, status, body)
		}
		if !bytes.Equal(first, body) {
			t.Fatalf("rehashed answer differs from the owner's:\n%s\n%s", first, body)
		}
		// The key's new owner is one of the survivors; a non-owner survivor
		// forwards there. Either way the dead node must not be named.
		if got := hdr.Get(fleet.ServedByHeader); got == "" || got == owner {
			t.Fatalf("post-kill request served by %q (dead owner %q)", got, owner)
		}
	}
	if got := fleetFresh(survivors); got != 0 {
		t.Fatalf("survivors ran %d fresh simulations, want 0 (L2 hit)", got)
	}
}

// TestFleetSessionResumesOnNewOwner advances a session through the fleet,
// kills the node that owns it, and resumes through a survivor: the shared
// session directory plus L2 snapshots let the new node reopen the session
// and replay its stream byte-identically.
func TestFleetSessionResumesOnNewOwner(t *testing.T) {
	sessionDir := t.TempDir()
	nodes := newFleet(t, 3, sessionDir)

	create := SessionCreateRequest{
		ID: "fleet-sess", Suite: "cpu2006", App: "fuzz-st",
		Scheme: "lightwsp", SnapshotEvery: 600,
	}
	status, body, hdr := post(t, nodes[0].url+"/v1/session", create)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, body)
	}
	owner := hdr.Get(fleet.ServedByHeader)

	status, live := postStream(t, nodes[0].url+"/v1/session/fleet-sess/advance",
		SessionAdvanceRequest{Target: 1300})
	if status != http.StatusOK || len(live) == 0 {
		t.Fatalf("advance: status %d, %d lines", status, len(live))
	}

	var victim *fleetNode
	survivors := nodes[:0:0]
	for _, nd := range nodes {
		if nd.url == owner {
			victim = nd
		} else {
			survivors = append(survivors, nd)
		}
	}
	if victim == nil {
		t.Fatalf("session owner %q is not a fleet member", owner)
	}
	// Abandon the owner the way a SIGKILL would: its SessionStore never
	// closes, the survivors reopen the shared directory cold.
	victim.ts.Close()

	nd := survivors[0]
	status, raw, _ := post(t, nd.url+"/v1/session/fleet-sess/resume",
		SessionResumeRequest{LastSeq: 0})
	if status != http.StatusOK {
		t.Fatalf("resume via survivor: status %d: %s", status, raw)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 0 || !strings.Contains(lines[0], `"type":"resume"`) {
		t.Fatalf("resume stream missing header: %v", lines)
	}
	replay := lines[1:]
	if len(replay) != len(live) {
		t.Fatalf("survivor replayed %d events, owner streamed %d", len(replay), len(live))
	}
	for i := range live {
		if replay[i] != live[i] {
			t.Fatalf("event %d differs after failover:\nowner:    %s\nsurvivor: %s",
				i, live[i], replay[i])
		}
	}

	// The survivor now reports the session at its exact position.
	var st experiments.SessionStatus
	resp, err := http.Get(nd.url + "/v1/session/fleet-sess")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after failover: %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "fleet-sess" || st.Total != 1300 {
		t.Fatalf("failed-over session at %+v, want total 1300", st)
	}
}
