package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"lightwsp/internal/fleet"
	"lightwsp/internal/obs"
	"lightwsp/internal/wsperr"
)

// reqInfo is the per-request telemetry scratchpad: the middleware creates it,
// handlers enrich it (workload identity, run key, queue wait, errors, the
// flight recorder), and the middleware's deferred tail turns it into the
// access log line, the Prometheus samples, the debug-run record and — when
// the request died badly — the flight-recorder dump. It is only ever touched
// from the request's handler goroutine, so it needs no lock.
type reqInfo struct {
	traceID  string
	endpoint string

	suite, app, scheme string
	keyHash            string
	// session is the durable session the request operated on, if any.
	session string
	// source is the run's resolution provenance when known ("fresh" or
	// "cached", from the manifest); empty otherwise.
	source string
	// queueWait is the measured wait for a worker-pool slot, where the
	// handler drives the pool directly (streaming and failure runs; the
	// Runner path queues internally).
	queueWait time.Duration
	err       error

	flight     *obs.FlightRecorder
	flightDump string
}

type reqInfoKey struct{}

// reqInfoFrom returns the request's telemetry scratchpad, or nil outside the
// instrument middleware (direct handler tests).
func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// statusWriter captures the response status for the access log and metrics
// while passing Flush through, so NDJSON streaming keeps its liveness.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the telemetry plane: trace identity
// (honoring a valid inbound X-LightWSP-Trace, generating one otherwise, and
// always echoing it on the response), panic recovery (the stack is logged
// with the request ID and the client gets a 500, not a torn connection),
// request metrics, the recent-run registry, flight-recorder dumps for
// requests that died, and one structured access-log line. readOnly marks
// cheap introspection endpoints whose access logs stay at debug level so
// scrapers do not drown the interesting lines.
func (s *Server) instrument(endpoint string, readOnly bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(id) {
			id = obs.NewTraceID()
		}
		ri := &reqInfo{traceID: id, endpoint: endpoint}
		ctx := obs.WithTraceID(r.Context(), id)
		ctx = context.WithValue(ctx, reqInfoKey{}, ri)
		r = r.WithContext(ctx)
		w.Header().Set(obs.TraceHeader, id)
		if s.self != "" {
			// Provisional: a forward replaces it with the peer's stamp.
			w.Header().Set(fleet.ServedByHeader, s.self)
		}
		sw := &statusWriter{ResponseWriter: w}

		defer func() {
			if p := recover(); p != nil {
				s.tel.panics.Add(1)
				if ri.err == nil {
					ri.err = fmt.Errorf("panic: %v", p)
				}
				s.log.Error("panic while serving request",
					"trace", id, "endpoint", endpoint,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError,
						errorResponse{Error: "internal server error (see server log, trace " + id + ")"})
				}
			}
			status := sw.code
			if !sw.wrote {
				status = http.StatusOK
			}
			d := time.Since(start)
			s.tel.observe(endpoint, status, d)
			if status == http.StatusGatewayTimeout {
				s.tel.deadlineCancels.Add(1)
			}
			if reason := dumpReason(ri, status); reason != "" {
				s.dumpFlight(ri, reason)
			}
			s.noteRun(ri, status, d)
			s.accessLog(r, ri, status, d, readOnly)
		}()

		h(sw, r)
	}
}

// dumpReason decides whether a finished request warrants a flight-recorder
// dump, and why. Streaming runs report failures on an already-200 stream, so
// a recorded error triggers a dump regardless of status.
func dumpReason(ri *reqInfo, status int) string {
	if ri.flight == nil || ri.flightDump != "" {
		return ""
	}
	deadline := status == http.StatusGatewayTimeout ||
		errors.Is(ri.err, wsperr.ErrCanceled) ||
		errors.Is(ri.err, context.DeadlineExceeded) ||
		errors.Is(ri.err, context.Canceled)
	switch {
	case deadline:
		return "deadline"
	case status == http.StatusInternalServerError,
		status == http.StatusUnprocessableEntity,
		ri.err != nil:
		return "error"
	}
	return ""
}

// dumpFlight writes the request's flight-recorder tail to the flight
// directory (idempotently — the first reason wins).
func (s *Server) dumpFlight(ri *reqInfo, reason string) {
	if ri.flight == nil || ri.flightDump != "" || s.flightDir == "" {
		return
	}
	path, err := ri.flight.Dump(s.flightDir, reason, ri.err)
	if err != nil {
		s.log.Error("flight-recorder dump failed",
			"trace", ri.traceID, "reason", reason, "error", err)
		return
	}
	ri.flightDump = path
	s.tel.flightDumps.Add(1)
	s.log.Info("flight recorder dumped",
		"trace", ri.traceID, "reason", reason, "path", path,
		"events", len(ri.flight.Events()), "total_events", ri.flight.Total())
}

// accessLog emits the request's one structured summary line.
func (s *Server) accessLog(r *http.Request, ri *reqInfo, status int, d time.Duration, readOnly bool) {
	lvl := slog.LevelInfo
	if readOnly {
		lvl = slog.LevelDebug
	}
	if status >= http.StatusInternalServerError {
		lvl = slog.LevelWarn
	}
	attrs := []any{
		"trace", ri.traceID,
		"method", r.Method,
		"path", r.URL.Path,
		"status", status,
		"dur_ms", float64(d.Microseconds()) / 1000,
	}
	if ri.queueWait > 0 {
		attrs = append(attrs, "queue_wait_ms", float64(ri.queueWait.Microseconds())/1000)
	}
	if ri.session != "" {
		attrs = append(attrs, "session", ri.session)
	}
	if ri.suite != "" {
		attrs = append(attrs, "suite", ri.suite, "app", ri.app)
	}
	if ri.scheme != "" {
		attrs = append(attrs, "scheme", ri.scheme)
	}
	if ri.source != "" {
		attrs = append(attrs, "source", ri.source)
	}
	if ri.keyHash != "" {
		attrs = append(attrs, "key", shortHash(ri.keyHash))
	}
	if ri.err != nil {
		attrs = append(attrs, "error", ri.err.Error())
	}
	if ri.flightDump != "" {
		attrs = append(attrs, "flight_dump", ri.flightDump)
	}
	s.log.Log(r.Context(), lvl, "request", attrs...)
}

// shortHash abbreviates a run-key hash for log lines.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// attachFlight equips the request with a flight recorder: the returned
// context carries it to whatever probe sink the run builds (the Runner picks
// it up via obs.Recorder), and the recorder is registered so a drain that
// gets interrupted with this request still in flight can dump every victim.
// The returned detach must be deferred.
func (s *Server) attachFlight(ctx context.Context, ri *reqInfo) (context.Context, func()) {
	rec := obs.NewFlightRecorder(ri.traceID, 0)
	rec.SetRun(ri.suite, ri.app, ri.scheme)
	if ri.session != "" {
		rec.SetSession(ri.session)
	}
	ri.flight = rec
	s.flightMu.Lock()
	s.activeFlights[ri.traceID] = rec
	s.flightMu.Unlock()
	return obs.WithRecorder(ctx, rec), func() {
		s.flightMu.Lock()
		delete(s.activeFlights, ri.traceID)
		s.flightMu.Unlock()
	}
}

// dumpInflightFlights dumps every still-registered flight recorder — the
// SIGTERM-while-in-flight path: the drain deadline expired with work still
// running, so each victim run leaves its last probe events behind before the
// process exits. Returns how many dumps were written.
func (s *Server) dumpInflightFlights(reason string) int {
	if s.flightDir == "" {
		return 0
	}
	s.flightMu.Lock()
	recs := make([]*obs.FlightRecorder, 0, len(s.activeFlights))
	for _, rec := range s.activeFlights {
		recs = append(recs, rec)
	}
	s.flightMu.Unlock()
	n := 0
	for _, rec := range recs {
		path, err := rec.Dump(s.flightDir, reason, nil)
		if err != nil {
			s.log.Error("flight-recorder dump failed",
				"trace", rec.TraceID(), "reason", reason, "error", err)
			continue
		}
		s.tel.flightDumps.Add(1)
		s.log.Info("flight recorder dumped",
			"trace", rec.TraceID(), "reason", reason, "path", path)
		n++
	}
	return n
}
