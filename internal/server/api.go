// Package server exposes the simulation harness as a long-running HTTP/JSON
// daemon: one process-wide experiments.Runner (memo table, disk cache,
// worker pool) shared by every request, with bounded-queue admission
// control, per-request deadlines that propagate into the simulation loop,
// NDJSON streaming of protocol events, and graceful drain on shutdown.
//
// API surface (all request/response bodies are JSON):
//
//	GET  /healthz            liveness (503 while draining)
//	GET  /stats              cache counters + admission statistics
//	GET  /metrics            Prometheus text-format exposition
//	GET  /v1/experiments     registry listing (name + description)
//	GET  /v1/debug/run/{id}  a recent run's record by trace ID
//	POST /v1/compile         static compilation statistics for a workload
//	POST /v1/run             one cached simulation run
//	POST /v1/run/stream      one fresh run, streaming NDJSON events
//	POST /v1/run-with-failure  power-cut + recovery round trip
//	POST /v1/crashfuzz       a crash-consistency fuzzing campaign
//	POST /v1/experiment      a full registry experiment (fig7, tab2, ...)
//	POST /v1/session         create a durable session
//	GET  /v1/session         list open sessions
//	GET  /v1/session/{id}    one session's status
//	DELETE /v1/session/{id}  remove a session and its snapshots
//	POST /v1/session/{id}/advance  run forward, streaming NDJSON events
//	POST /v1/session/{id}/resume   replay events after a last-seen seq
//	GET/PUT/DELETE /v1/blob/{hash} peer store API: sealed blob transfer
//	POST/DELETE /v1/lease/{name}   peer lease arbiter (fleet singleflight)
//
// Fleets (Config.FleetSelf/FleetPeers/L2): several nodes share one
// rendezvous-hash ring over run keys and session IDs. A request that lands
// on the wrong member is forwarded to its owner (one hop, loop-guarded by
// X-LightWSP-Forwarded; X-LightWSP-Served-By names the node that answered),
// every node's cache reads through the shared L2 store, and a fleet-wide
// lease makes concurrent requests for one run key simulate exactly once.
//
// Durable sessions (enabled by Config.SessionDir) are long-lived runs that
// survive power loss and server restarts: every advance is journaled before
// it executes, the machine is periodically snapshotted (checkpoint state +
// persistent-memory image, content-addressed into the session store), and a
// restarted server replays the recovery protocol to reopen every session at
// its last journaled position. Streams are resumable: a client that lost
// its connection posts its last-seen sequence number to /resume and
// receives exactly the events after it, byte-identical to an uninterrupted
// stream.
//
// Admission: at most Workers+QueueDepth requests are admitted at once;
// beyond that the server answers 429 with Retry-After. During drain new
// work gets 503 while admitted requests run to completion. Error mapping:
// a request deadline that fires mid-simulation is 504; simulation-budget
// failures (WPQ overflow, cycle budget) are 422; unrecoverable crash
// images are 500; unknown workloads are 404 and unknown schemes 400.
//
// Telemetry: every request carries an X-LightWSP-Trace identity (honored
// from the client when valid, generated otherwise, always echoed on the
// response) that threads into access logs, run manifests, timeline exports
// and the flight recorder — a bounded ring of each in-flight run's recent
// probe events, dumped to disk when a run dies (error, deadline, panic, or
// an interrupted drain).
package server

import (
	"lightwsp/internal/compiler"
	"lightwsp/internal/crashfuzz"
	"lightwsp/internal/experiments"
	"lightwsp/internal/machine"
	"lightwsp/internal/metrics"
)

// RunRequest names one simulation: a workload profile, a persistence scheme
// and an optional per-request deadline.
type RunRequest struct {
	// Suite and App select the workload profile (case-insensitive), e.g.
	// {"suite":"cpu2006","app":"hmmer"}.
	Suite string `json:"suite"`
	App   string `json:"app"`
	// Scheme is the persistence scheme name (lightwsp, baseline, capri,
	// ppa, cwsp, psp-ideal, naive-sfence); empty means lightwsp.
	Scheme string `json:"scheme,omitempty"`
	// TimeoutMS bounds this request in milliseconds (0: the server
	// default). Expiry cancels the simulation at cycle-batch granularity
	// and answers 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RunResponse is the deterministic result of a run: identical requests
// produce byte-identical responses whether the run was fresh, disk-cached
// or joined onto another client's in-flight simulation.
type RunResponse struct {
	Suite  string `json:"suite"`
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	// KeyHash is the canonical run-key hash identifying the simulation in
	// caches and manifests.
	KeyHash string        `json:"key_hash"`
	Stats   machine.Stats `json:"stats"`
}

// CompileRequest asks for the region compiler's static statistics.
type CompileRequest struct {
	Suite string `json:"suite"`
	App   string `json:"app"`
	// StoreThreshold overrides the §IV-A default (half the WPQ size).
	StoreThreshold int `json:"store_threshold,omitempty"`
}

// CompileResponse reports the resolved configuration and the compiler's
// static statistics.
type CompileResponse struct {
	Suite          string         `json:"suite"`
	App            string         `json:"app"`
	StoreThreshold int            `json:"store_threshold"`
	Stats          compiler.Stats `json:"stats"`
}

// FailureRequest runs a workload under LightWSP, cuts power at FailCycle,
// recovers and runs the recovered machine to completion.
type FailureRequest struct {
	Suite string `json:"suite"`
	App   string `json:"app"`
	// FailCycle is the power-cut cycle; if the program finishes first no
	// failure is injected.
	FailCycle uint64 `json:"fail_cycle"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// FailureResponse reports one crash/recover round trip.
type FailureResponse struct {
	Suite string `json:"suite"`
	App   string `json:"app"`
	// Failed is false when execution completed before the injection point.
	Failed bool `json:"failed"`
	// Discarded counts WPQ entries of unpersisted regions dropped by the
	// §IV-F drain.
	Discarded int `json:"discarded"`
	// Cycles is the recovered run's final cycle count.
	Cycles uint64 `json:"cycles"`
	// Consistent reports whether the final persisted image matches the
	// architectural state over the user address range.
	Consistent bool `json:"consistent"`
}

// CrashfuzzRequest runs one crash-consistency fuzzing campaign.
type CrashfuzzRequest struct {
	Suite string `json:"suite"`
	App   string `json:"app"`
	// Cuts is successive power failures per schedule (minimum 1).
	Cuts int `json:"cuts,omitempty"`
	// Seed drives sampled-mode cycle selection (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Threshold and Points tune the schedule planner (0: package defaults).
	Threshold uint64 `json:"threshold,omitempty"`
	Points    int    `json:"points,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// CrashfuzzResponse wraps the campaign result.
type CrashfuzzResponse struct {
	Result *crashfuzz.Result `json:"result"`
}

// ExperimentRequest runs one full registry experiment by name.
type ExperimentRequest struct {
	Name      string `json:"name"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// ExperimentResponse carries the experiment's rendered table or figure.
type ExperimentResponse struct {
	Name string `json:"name"`
	// Text is the driver's rendered output, exactly as lightwsp-bench
	// prints it.
	Text        string  `json:"text"`
	WallSeconds float64 `json:"wall_seconds"`
}

// ExperimentInfo is one /v1/experiments listing entry.
type ExperimentInfo struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

// StatsResponse is the /stats snapshot: the shared runner's cache counters
// plus the admission gate's request accounting.
type StatsResponse struct {
	// FreshRuns/DiskCacheHits/MemCacheHits/LeaseJoins are the process-wide
	// runner counters (see experiments.Counters); LeaseJoins counts runs
	// joined from a fleet peer's result under the singleflight lease.
	FreshRuns     int `json:"fresh_runs"`
	DiskCacheHits int `json:"disk_cache_hits"`
	MemCacheHits  int `json:"mem_cache_hits"`
	LeaseJoins    int `json:"lease_joins"`
	// Workers and QueueDepth describe the admission gate: at most
	// Workers+QueueDepth requests are in flight at once.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// InFlight and Queued are the gate's live occupancy: requests currently
	// executing and requests admitted but waiting for a worker.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// Admitted/Completed count requests past the gate; RejectedBusy is
	// 429s, RejectedDraining 503s.
	Admitted         int64 `json:"admitted"`
	Completed        int64 `json:"completed"`
	RejectedBusy     int64 `json:"rejected_busy"`
	RejectedDraining int64 `json:"rejected_draining"`
	// Draining is true once graceful shutdown began.
	Draining bool `json:"draining"`
	// SessionsOpen counts open durable sessions; SessionsRestored how many
	// were restored from disk at startup. Both zero when sessions are off.
	SessionsOpen     int   `json:"sessions_open"`
	SessionsRestored int64 `json:"sessions_restored"`
	// Metrics aggregates every resolved run's probe metrics.
	Metrics metrics.Snapshot `json:"metrics"`
}

// DebugRunResponse is one /v1/debug/run/{id} record: a recent run's
// identity, outcome and timing, the flight-dump path if one was written,
// and the Runner's provenance manifest when the run key is known.
type DebugRunResponse struct {
	TraceID  string `json:"trace_id"`
	Endpoint string `json:"endpoint"`
	Suite    string `json:"suite,omitempty"`
	App      string `json:"app,omitempty"`
	Scheme   string `json:"scheme,omitempty"`
	KeyHash  string `json:"key_hash,omitempty"`
	// Source is the run's resolution provenance ("fresh" or "cached") when
	// the manifest recorded it.
	Source string `json:"source,omitempty"`
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
	// DurationMS is the request's total wall time; QueueWaitMS the portion
	// spent waiting for a worker-pool slot (streaming/failure runs only).
	DurationMS  float64 `json:"duration_ms"`
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	// FlightDump is the path of the flight-recorder dump, when the run died
	// badly enough to leave one.
	FlightDump string                   `json:"flight_dump,omitempty"`
	FinishedAt string                   `json:"finished_at"`
	Manifest   *experiments.RunManifest `json:"manifest,omitempty"`
}

// SessionCreateRequest creates one durable session (POST /v1/session).
type SessionCreateRequest struct {
	// ID names the session ([A-Za-z0-9][A-Za-z0-9._-]{0,63}); empty gets a
	// generated one (returned in the response).
	ID string `json:"id,omitempty"`
	// Suite and App select the workload profile, like RunRequest.
	Suite string `json:"suite"`
	App   string `json:"app"`
	// Scheme must be an instrumented persistence scheme (snapshots are
	// power failures; only instrumented schemes recover); empty means
	// lightwsp.
	Scheme string `json:"scheme,omitempty"`
	// SnapshotEvery is the automatic snapshot cadence in session-total
	// cycles; 0 inherits the server default.
	SnapshotEvery uint64 `json:"snapshot_every,omitempty"`
}

// SessionAdvanceRequest runs a session forward (POST /v1/session/{id}/advance).
// The response streams NDJSON experiments.SessionEvent lines.
type SessionAdvanceRequest struct {
	// Target is the session-total cycle to run until. A target at or below
	// the session's current position streams nothing and succeeds (safe to
	// re-issue after a lost connection).
	Target    uint64 `json:"target"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// SessionResumeRequest replays a session's event stream (POST
// /v1/session/{id}/resume): one unnumbered header line, then exactly the
// events after LastSeq, byte-identical to an uninterrupted stream.
type SessionResumeRequest struct {
	// LastSeq is the highest event seq the client has already seen; 0
	// replays the stream from the beginning.
	LastSeq   uint64 `json:"last_seq"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// SessionListResponse is the GET /v1/session body.
type SessionListResponse struct {
	Sessions []experiments.SessionStatus `json:"sessions"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}
