package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lightwsp/internal/experiments"
	"lightwsp/internal/fleet"
	"lightwsp/internal/hostfs"
	"lightwsp/internal/obs"
	"lightwsp/internal/wsperr"
)

// Config tunes a Server. The zero value is usable: GOMAXPROCS workers, a
// queue twice that deep, no disk cache, no default request deadline.
type Config struct {
	// Workers sizes the shared simulation worker pool (minimum 1;
	// default GOMAXPROCS). One pool governs every kind of work the server
	// does — cached runs, streaming runs, failure injection, fuzzing.
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// beyond the Workers executing ones (default 2×Workers). Requests
	// beyond Workers+QueueDepth are answered 429 with Retry-After.
	QueueDepth int
	// CacheDir roots the persistent result/verdict cache; empty disables.
	CacheDir string
	// RequestTimeout bounds every request without its own timeout_ms
	// (zero: unbounded).
	RequestTimeout time.Duration
	// MaxRunCycles bounds any single simulation (zero:
	// experiments.MaxRunCycles).
	MaxRunCycles uint64
	// Progress, when non-nil, receives the runner's per-run progress lines.
	Progress func(string)
	// Logger receives the server's structured logs (access lines, run
	// lifecycle, panics, flight-recorder dumps). Nil discards them.
	Logger *slog.Logger
	// FlightDir is where flight-recorder dumps land; empty defaults to
	// CacheDir/flightrec when a cache directory is set, else dumps are off.
	FlightDir string
	// TimelineDir, when set, makes every fresh run export a Chrome
	// trace-event timeline (tagged with the request's trace ID) there.
	TimelineDir string
	// SessionDir roots the durable-session store (journals + snapshot
	// blobs); empty disables the /v1/session endpoints. On startup every
	// session found there is restored from its newest durable snapshot and
	// journal, so sessions survive server restarts and power loss.
	SessionDir string
	// SnapshotEvery is the default snapshot cadence (in session-total
	// cycles) for sessions created without one; 0 leaves cadence snapshots
	// to the client's spec.
	SnapshotEvery uint64
	// SnapshotInterval, when positive, forces a durable snapshot of every
	// idle session on this wall-clock period, bounding replay cost after a
	// hard crash even when clients stall between cadence points.
	SnapshotInterval time.Duration
	// SessionFS, when non-nil, replaces the host filesystem beneath the
	// session store — tests and fault campaigns inject hostfs.NewMem/Inject
	// stacks here. Nil uses the real disk.
	SessionFS hostfs.FS
	// FleetSelf is this node's base URL exactly as peers and the load
	// balancer reach it (e.g. "http://10.0.0.3:8080"). Empty means the
	// node serves solo; set it together with FleetPeers to join a fleet.
	FleetSelf string
	// FleetPeers is the full fleet membership, FleetSelf included. Every
	// node is configured with the same list; a request whose routing key
	// hashes to another member is forwarded there (one hop, loop-guarded
	// by the X-LightWSP-Forwarded header).
	FleetPeers []string
	// L2 is the shared second storage tier behind the local disk cache:
	// results and session snapshots written locally also publish here,
	// and local misses read through it — the mechanism that makes a
	// fleet's caches coherent. Typically experiments.NewBlobCache over a
	// shared directory or experiments.NewRemoteStore over a peer node.
	L2 experiments.Store
}

// Server is the HTTP serving layer over one process-wide Runner: every
// request shares its memo table, disk cache and worker pool, so concurrent
// clients asking for the same simulation share a single execution.
//
// Construct with New, expose via Handler, and retire with Drain. A Server
// is safe for concurrent use.
type Server struct {
	cfg    Config
	runner *experiments.Runner
	pool   *experiments.Pool
	mux    *http.ServeMux

	// Storage tiers: localBlobs is the node's own disk cache (nil without
	// a cache directory) — also what the /v1/blob peer API serves; tiered
	// composes it with Config.L2 (nil when no L2 is configured); blobs is
	// whichever of the two fuzzing verdicts should go through.
	localBlobs *experiments.BlobCache
	tiered     *experiments.TieredStore
	blobs      experiments.Store

	// Fleet: the rendezvous ring over FleetPeers (nil when solo), this
	// node's own identity on it, and the client forwards ride. The client
	// has no timeout — forwards carry NDJSON streams that legitimately
	// run for minutes; the request context still bounds every forward.
	ring             *fleet.Ring
	self             string
	fleetHC          *http.Client
	forwardsIn       atomic.Int64
	forwardsOut      atomic.Int64
	forwardFallbacks atomic.Int64

	// sem is the admission gate: Workers+QueueDepth slots. Admission is
	// non-blocking — a full gate is 429, not a wait — so saturation is
	// visible to clients instead of an unbounded queue.
	sem chan struct{}

	// drainMu guards draining against racing admissions: admit holds the
	// read lock while it checks the flag and registers with inflight, so
	// once Drain flips the flag under the write lock no new request can
	// slip into the WaitGroup.
	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	admitted         atomic.Int64
	completed        atomic.Int64
	rejectedBusy     atomic.Int64
	rejectedDraining atomic.Int64

	// Telemetry plane: the structured logger, the /metrics state, the
	// recent-run registry behind /v1/debug/run/{id}, and the flight-recorder
	// bookkeeping (dump directory plus the registry of in-flight recorders a
	// failed drain dumps before the process exits).
	log           *slog.Logger
	tel           *telemetry
	runs          *runLog
	flightDir     string
	flightMu      sync.Mutex
	activeFlights map[string]*obs.FlightRecorder

	// storage tallies the durable layer's detected failures (quarantines,
	// checksum mismatches, write errors, durability loss) across the result
	// cache and the session store; exposed on /metrics.
	storage *experiments.StorageCounters

	// Durable sessions: the store (nil when Config.SessionDir is empty or
	// failed to open), the periodic-snapshot ticker's stop plumbing, and the
	// count of sessions restored at startup.
	sessions         *experiments.SessionStore
	sessionStop      chan struct{}
	sessionStopOnce  sync.Once
	sessionsRestored atomic.Int64

	// hookAdmitted, when non-nil, runs after a request passes admission
	// and before its handler body (test instrumentation).
	hookAdmitted func(*http.Request)
}

// New builds a Server over a fresh process-wide Runner.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.MaxRunCycles == 0 {
		cfg.MaxRunCycles = experiments.MaxRunCycles
	}
	s := &Server{
		cfg:           cfg,
		sem:           make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		tel:           newTelemetry(),
		runs:          newRunLog(),
		activeFlights: map[string]*obs.FlightRecorder{},
		storage:       &experiments.StorageCounters{},
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.flightDir = cfg.FlightDir
	if s.flightDir == "" && cfg.CacheDir != "" {
		s.flightDir = filepath.Join(cfg.CacheDir, "flightrec")
	}
	s.runner = experiments.NewRunner()
	s.runner.SetWorkers(cfg.Workers)
	s.runner.SetCacheDir(cfg.CacheDir)
	s.runner.SetProgress(cfg.Progress)
	if cfg.TimelineDir != "" {
		s.runner.SetTimelineDir(cfg.TimelineDir)
	}
	s.initStores()
	s.runner.SetStorageObserver(s.log, s.storage)
	s.pool = s.runner.Pool()
	if cfg.FleetSelf != "" && len(cfg.FleetPeers) > 0 {
		s.self = cfg.FleetSelf
		s.ring = fleet.NewRing(cfg.FleetPeers)
		s.fleetHC = &http.Client{}
		s.log.Info("fleet member starting",
			"self", s.self, "ring_size", s.ring.Len(), "peers", s.ring.Nodes())
	}
	if cfg.SessionDir != "" {
		s.initSessions()
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// initStores builds the storage tiers: the local disk cache (L1), the
// optional shared L2 behind it, and the runner's view of the pair. With an
// L2 configured the runner resolves through the tiered store — its writes
// publish to both tiers and its misses read through the fleet's shared
// cache — which is what makes every node's result cache one coherent whole.
func (s *Server) initStores() {
	if s.cfg.CacheDir != "" {
		s.localBlobs = experiments.NewBlobCache(s.cfg.CacheDir)
		s.localBlobs.SetObserver(s.log, s.storage)
		s.blobs = s.localBlobs
	}
	if s.cfg.L2 == nil {
		return
	}
	if o, ok := s.cfg.L2.(interface {
		SetObserver(*slog.Logger, *experiments.StorageCounters)
	}); ok {
		o.SetObserver(s.log, s.storage)
	}
	if s.localBlobs != nil {
		s.tiered = experiments.NewTieredStore(s.localBlobs, s.cfg.L2)
		s.blobs = s.tiered
		s.runner.SetStore(s.tiered)
		return
	}
	// No local cache directory: the shared tier serves alone.
	s.blobs = s.cfg.L2
	s.runner.SetStore(s.cfg.L2)
}

// Drain gracefully retires the server: new requests are refused with 503,
// admitted ones run to completion (or until ctx ends), and the runner's
// provenance manifests are flushed alongside the disk cache. Drain returns
// ctx.Err() if in-flight work outlives the context.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.log.Info("drain started")

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// The drain deadline fired with runs still executing: before the
		// process dies, every in-flight run's flight recorder dumps its
		// final probe events so the interruption is diagnosable post-mortem,
		// and every session that can still be snapshotted gets a final
		// durable snapshot (busy ones are preserved by their journals).
		n := s.dumpInflightFlights("drain-interrupted")
		snaps := s.snapshotSessionsForDrain("drain-interrupted")
		s.log.Warn("drain interrupted with work in flight",
			"flight_dumps", n, "session_snapshots", snaps)
		s.closeSessions()
		return fmt.Errorf("server: drain interrupted with work in flight: %w", ctx.Err())
	}
	// Lossless drain: with no work in flight every open session takes one
	// final snapshot, so the next boot recovers each session at its exact
	// stop point with zero journal replay.
	if snaps := s.snapshotSessionsForDrain("drain"); snaps > 0 {
		s.log.Info("final session snapshots written", "count", snaps)
	}
	s.closeSessions()
	s.log.Info("drain complete")
	return s.flush()
}

// flush persists the runner's provenance manifests next to the disk cache
// so a restarted server (or an operator) can audit what this process
// resolved. A server without a cache directory has nothing to flush.
func (s *Server) flush() error {
	if s.cfg.CacheDir == "" {
		return nil
	}
	mans := s.runner.Manifests()
	data, err := json.MarshalIndent(mans, "", "\t")
	if err != nil {
		return err
	}
	path := filepath.Join(s.cfg.CacheDir, "serve-manifest.json")
	if err := os.MkdirAll(s.cfg.CacheDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// admit passes a request through the admission gate. On success it returns
// a release func the handler must defer; otherwise it has already written
// the 429/503 response and returns ok=false.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		s.rejectedDraining.Add(1)
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "server is draining; no new work accepted"})
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.drainMu.RUnlock()
		s.rejectedBusy.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			errorResponse{Error: "server saturated; retry later"})
		return nil, false
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	s.admitted.Add(1)
	if ri := reqInfoFrom(r.Context()); ri != nil {
		s.log.Debug("request admitted", "trace", ri.traceID, "endpoint", ri.endpoint)
	}
	if s.hookAdmitted != nil {
		s.hookAdmitted(r)
	}
	return func() {
		<-s.sem
		s.completed.Add(1)
		s.inflight.Done()
	}, true
}

// requestCtx derives the request's working context: the client connection
// context bounded by timeout_ms (or the server default).
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	d := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// writeJSON writes v as the JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(v)
}

// writeErr maps a harness error onto its HTTP status, records it in the
// request's telemetry scratchpad (so the access log and flight-recorder dump
// see it), and writes it.
func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	if ri := reqInfoFrom(r.Context()); ri != nil && ri.err == nil {
		ri.err = err
	}
	if errors.Is(err, experiments.ErrDurabilityLost) {
		// Degraded disk, not a dead server: invite the client back after
		// the store has had a chance to recover.
		w.Header().Set("Retry-After", "10")
	}
	writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
}

// statusOf is the error → status mapping of the API contract: canceled or
// timed-out work is 504 (the deadline fired, not the simulator), budget
// failures are 422 (the request was well-formed but the run exceeded its
// machine limits), unrecoverable crash images are 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, wsperr.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, wsperr.ErrWPQOverflow), errors.Is(err, wsperr.ErrCyclesExceeded):
		return http.StatusUnprocessableEntity
	case errors.Is(err, experiments.ErrSessionBusy),
		errors.Is(err, experiments.ErrSessionExists):
		return http.StatusConflict
	case errors.Is(err, experiments.ErrNoSession):
		return http.StatusNotFound
	case errors.Is(err, experiments.ErrSessionClosed):
		return http.StatusGone
	case errors.Is(err, experiments.ErrDurabilityLost):
		// The journal cannot be made durable; shed load instead of lying
		// about persistence (writeErr adds Retry-After).
		return http.StatusServiceUnavailable
	case errors.Is(err, wsperr.ErrUnrecoverable):
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// decode reads the JSON request body into v (an empty body decodes to the
// zero value, so every field is optional at the wire level).
func decode(r *http.Request, v any) error {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil || errors.Is(err, io.EOF) {
		return nil
	}
	return fmt.Errorf("bad request body: %v", err)
}
