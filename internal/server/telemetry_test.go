package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lightwsp/internal/obs"
)

// logBuffer is a goroutine-safe sink for the server's slog output (slog
// handlers serialize writes, but tests also read while handlers write).
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// postTraced posts with an X-LightWSP-Trace header.
func postTraced(t *testing.T, url, trace string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestTraceIDPropagation is the correlation contract end to end: the
// client's trace ID comes back on the response, lands in the access log, in
// the run's provenance manifest, and is queryable via /v1/debug/run/{id}.
func TestTraceIDPropagation(t *testing.T) {
	logs := &logBuffer{}
	log, err := obs.NewLogger(logs, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Logger: log})

	const trace = "e2e-trace-0001"
	resp, body := postTraced(t, ts.URL+"/v1/run", trace, fuzzStRun)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Fatalf("response %s = %q, want %q", obs.TraceHeader, got, trace)
	}

	// The debug endpoint returns the run record with the manifest, and the
	// manifest carries the resolving request's trace ID.
	var dbg DebugRunResponse
	if st := get(t, ts.URL+"/v1/debug/run/"+trace, &dbg); st != http.StatusOK {
		t.Fatalf("debug run status %d", st)
	}
	if dbg.TraceID != trace || dbg.Status != http.StatusOK || !strings.EqualFold(dbg.Suite, "cpu2006") {
		t.Fatalf("unexpected debug record %+v", dbg)
	}
	if dbg.Manifest == nil {
		t.Fatal("debug record missing the run manifest")
	}
	if dbg.Manifest.TraceID != trace {
		t.Fatalf("manifest TraceID = %q, want %q", dbg.Manifest.TraceID, trace)
	}
	if dbg.Source != "fresh" {
		t.Fatalf("source = %q, want fresh", dbg.Source)
	}

	// Access log: one structured line naming the trace and endpoint.
	if out := logs.String(); !strings.Contains(out, trace) || !strings.Contains(out, `"/v1/run"`) {
		t.Fatalf("access log missing trace/endpoint:\n%s", out)
	}

	// An unknown trace ID is a clean 404.
	if st := get(t, ts.URL+"/v1/debug/run/nope", nil); st != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", st)
	}
}

// TestGeneratedTraceID: requests without (or with an invalid) inbound trace
// header get a generated identity echoed back.
func TestGeneratedTraceID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, _ := postTraced(t, ts.URL+"/v1/compile", "", CompileRequest{Suite: "cpu2006", App: "fuzz-st"})
	id := resp.Header.Get(obs.TraceHeader)
	if !obs.ValidTraceID(id) {
		t.Fatalf("generated trace ID %q not valid", id)
	}
	resp2, _ := postTraced(t, ts.URL+"/v1/compile", "bad id with spaces", CompileRequest{Suite: "cpu2006", App: "fuzz-st"})
	id2 := resp2.Header.Get(obs.TraceHeader)
	if !obs.ValidTraceID(id2) || id2 == "bad id with spaces" {
		t.Fatalf("invalid inbound trace should be replaced, got %q", id2)
	}
}

// TestPanicRecoveryMiddleware: a panicking handler becomes a 500 with the
// stack in the log, not a torn connection — and the panic counter ticks.
func TestPanicRecoveryMiddleware(t *testing.T) {
	logs := &logBuffer{}
	log, err := obs.NewLogger(logs, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 1, Logger: log})
	s.hookAdmitted = func(r *http.Request) {
		if r.URL.Path == "/v1/run" {
			panic("synthetic telemetry-test panic")
		}
	}

	const trace = "panic-trace-01"
	resp, body := postTraced(t, ts.URL+"/v1/run", trace, fuzzStRun)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("500 body is not JSON: %v: %s", err, body)
	}
	if s.tel.panics.Load() != 1 {
		t.Fatalf("panics counter = %d, want 1", s.tel.panics.Load())
	}
	out := logs.String()
	if !strings.Contains(out, "synthetic telemetry-test panic") ||
		!strings.Contains(out, trace) ||
		!strings.Contains(out, "goroutine") {
		t.Fatalf("panic log missing message/trace/stack:\n%s", out)
	}
}

// TestDeadlineLeavesFlightDump: a run canceled by its deadline answers 504
// and leaves an atomic flight-recorder dump named by its trace ID.
func TestDeadlineLeavesFlightDump(t *testing.T) {
	flightDir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 2, FlightDir: flightDir})

	const trace = "deadline-trace-1"
	// hmmer runs millions of cycles; a 1ms deadline always fires mid-run.
	resp, body := postTraced(t, ts.URL+"/v1/run", trace,
		RunRequest{Suite: "cpu2006", App: "hmmer", TimeoutMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}

	path := filepath.Join(flightDir, trace+".flight.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight dump missing: %v", err)
	}
	var d obs.FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("flight dump does not parse: %v", err)
	}
	if d.TraceID != trace || d.Reason != "deadline" {
		t.Fatalf("dump header %+v, want trace %q reason deadline", d, trace)
	}
	if d.App != "hmmer" {
		t.Fatalf("dump app %q, want hmmer", d.App)
	}
	if d.Error == "" {
		t.Fatal("dump should carry the cancellation error")
	}
	if s.tel.flightDumps.Load() != 1 || s.tel.deadlineCancels.Load() != 1 {
		t.Fatalf("counters: dumps %d cancels %d, want 1/1",
			s.tel.flightDumps.Load(), s.tel.deadlineCancels.Load())
	}

	// The debug record points at the dump.
	var dbg DebugRunResponse
	if st := get(t, ts.URL+"/v1/debug/run/"+trace, &dbg); st != http.StatusOK {
		t.Fatalf("debug run status %d", st)
	}
	if dbg.FlightDump != path || dbg.Status != http.StatusGatewayTimeout {
		t.Fatalf("debug record %+v, want dump %q status 504", dbg, path)
	}
}

// TestMetricsEndpoint: /metrics serves a parsable exposition whose counters
// reflect the traffic that preceded the scrape.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	for i := 0; i < 2; i++ {
		resp, body := postTraced(t, ts.URL+"/v1/run", "", fuzzStRun)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// Shape: every TYPE once, every non-comment line a sample, histogram
	// series under their family.
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			if types[f[2]] {
				t.Fatalf("family %s declared twice", f[2])
			}
			types[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Fatalf("bad sample line %q", line)
		}
	}
	for _, want := range []string{
		"lightwsp_http_requests_total",
		"lightwsp_http_request_duration_us",
		"lightwsp_inflight_requests",
		"lightwsp_runs_total",
		"lightwsp_probe_events_total",
		"lightwsp_region_stores",
	} {
		if !types[want] {
			t.Fatalf("missing family %s in exposition:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `lightwsp_http_requests_total{endpoint="/v1/run",code="200"} 2`) {
		t.Fatalf("request counter did not reach 2:\n%s", text)
	}
	if !strings.Contains(text, `lightwsp_runs_total{source="fresh"} 1`) {
		t.Fatalf("fresh-run counter should be 1 (singleflight + memo):\n%s", text)
	}
}

// TestStatsLiveGauges: while a request holds an admission slot, /stats
// reports it in_flight.
func TestStatsLiveGauges(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	hold := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s.hookAdmitted = func(r *http.Request) {
		if r.URL.Path == "/v1/run" {
			once.Do(func() { close(entered) })
			<-hold
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		post(t, ts.URL+"/v1/run", fuzzStRun)
	}()
	<-entered

	var st StatsResponse
	if code := get(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.InFlight < 1 {
		t.Fatalf("in_flight = %d, want >= 1 while a run is admitted", st.InFlight)
	}
	close(hold)
	<-done
}

// TestStreamCarriesTrace: the NDJSON terminal line names the trace ID so a
// saved stream is correlatable without its HTTP headers.
func TestStreamCarriesTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	const trace = "stream-trace-01"
	resp, body := postTraced(t, ts.URL+"/v1/run/stream", trace, fuzzStRun)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Fatalf("stream response %s = %q", obs.TraceHeader, got)
	}
	var last streamEvent
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream line does not parse: %v: %s", err, sc.Text())
		}
	}
	if last.Type != "stats" || last.Trace != trace {
		t.Fatalf("terminal line %+v, want type stats trace %q", last, trace)
	}
}

// TestDrainInterruptedDumpsFlights: a drain that times out with a run still
// executing dumps that run's flight recorder before giving up — the
// SIGTERM-while-inflight path.
func TestDrainInterruptedDumpsFlights(t *testing.T) {
	flightDir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 2, FlightDir: flightDir})

	done := make(chan struct{})
	const trace = "drain-victim-01"
	go func() {
		defer close(done)
		// Long enough to still be in flight when the drain fires; its own
		// deadline bounds how long the test waits for cleanup.
		body, _ := json.Marshal(RunRequest{Suite: "cpu2006", App: "hmmer", TimeoutMS: 2000})
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set(obs.TraceHeader, trace)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("run request: %v", err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	// Wait for the run's flight recorder to register as in-flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.flightMu.Lock()
		_, inflight := s.activeFlights[trace]
		s.flightMu.Unlock()
		if inflight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never registered a flight recorder")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain should report the interruption")
	}
	path := filepath.Join(flightDir, trace+".flight.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("drain-interrupted dump missing: %v", err)
	}
	var d obs.FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "drain-interrupted" || d.TraceID != trace {
		t.Fatalf("dump header %+v, want reason drain-interrupted trace %q", d, trace)
	}
	<-done // the run 504s on its own 2s deadline; cleanup then closes ts
}
