package server

import (
	"bytes"
	"io"
	"net/http"

	"lightwsp/internal/fleet"
)

// This file is the server side of fleet routing: a node that receives a
// request whose routing key hashes to another member forwards it there, one
// hop at most. The lb usually lands requests on their owner directly, so
// forwarding is the correction path — a stale lb view, a client talking to
// a node directly, or a membership disagreement mid-rehash. Serving locally
// is always *correct* (the shared L2 makes any node able to resolve any
// key); forwarding is a warmth optimization, so every failure here falls
// back to local serving rather than erroring.

// maxForwardBody bounds a request body buffered for the forward decision;
// run- and session-shaped request bodies are a few hundred bytes.
const maxForwardBody = 8 << 20

// bufferBody reads and replaces the request body so the handler can decode
// it locally after the forward decision (which may have replayed it).
func bufferBody(r *http.Request) ([]byte, error) {
	if r.Body == nil || r.Body == http.NoBody {
		return nil, nil
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxForwardBody))
	if err != nil {
		return nil, err
	}
	r.Body.Close()
	r.Body = io.NopCloser(bytes.NewReader(body))
	return body, nil
}

// forwardOwned routes a keyed request to its ring owner when that is a
// different node, reporting whether a peer wrote the response. It walks the
// preference ladder top-down: the first entry that is this node means
// "serve locally"; an unreachable peer is skipped (and counted) rather than
// surfaced, because local serving is always a correct fallback.
func (s *Server) forwardOwned(w http.ResponseWriter, r *http.Request, key string, body []byte) bool {
	if s.ring == nil {
		return false
	}
	if r.Header.Get(fleet.ForwardedHeader) != "" {
		// Already forwarded once: a second disagreement means the peers'
		// membership views differ, so serve locally and break the loop.
		s.forwardsIn.Add(1)
		return false
	}
	for _, owner := range s.ring.Owners(key) {
		if owner == s.self {
			// Reached our own rank: serve locally. Fall through to the
			// restoration below — a higher-ranked peer may have failed
			// after the proxy attempt consumed the body and dropped the
			// provisional Served-By stamp.
			break
		}
		r.Header.Set(fleet.ForwardedHeader, s.self)
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		// The peer stamps its own identity on the response; drop the one
		// the middleware stamped for the local-serving case.
		w.Header().Del(fleet.ServedByHeader)
		written, err := fleet.Proxy(w, r, owner, s.fleetHC)
		if written {
			s.forwardsOut.Add(1)
			if ri := reqInfoFrom(r.Context()); ri != nil {
				ri.source = "forwarded:" + owner
			}
			return true
		}
		s.forwardFallbacks.Add(1)
		s.log.Warn("fleet peer unreachable; trying next owner",
			"key", key, "peer", owner, "error", err)
	}
	// Serving locally (own rank reached, or every better-ranked peer was
	// unreachable): restore what the forward attempts may have disturbed.
	w.Header().Set(fleet.ServedByHeader, s.self)
	r.Header.Del(fleet.ForwardedHeader)
	if body != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
	}
	return false
}
