package server

import (
	"context"
	"encoding/json"
	"io"
	iofs "io/fs"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"lightwsp/internal/experiments"
	"lightwsp/internal/hostfs"
)

// sessionSpec is the test workload: the miniature single-threaded fuzz
// profile (2405 cycles under LightWSP) with a cadence that yields several
// snapshots over a full run.
var sessionSpec = SessionCreateRequest{
	ID: "alpha", Suite: "cpu2006", App: "fuzz-st",
	Scheme: "lightwsp", SnapshotEvery: 600,
}

// postStream posts a JSON body and returns the response's NDJSON lines.
func postStream(t *testing.T, url string, body any) (int, []string) {
	t.Helper()
	status, raw, _ := post(t, url, body)
	text := strings.TrimSuffix(string(raw), "\n")
	if text == "" {
		return status, nil
	}
	return status, strings.Split(text, "\n")
}

// engineReference computes the canonical event stream of spec advanced
// through targets, straight from the experiments engine in its own store —
// the ground truth every HTTP stream must match byte for byte.
func engineReference(t *testing.T, req SessionCreateRequest, targets []uint64) []string {
	t.Helper()
	st, err := experiments.OpenSessionStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sess, err := st.Create(req.ID, experiments.SessionSpec{
		Suite: req.Suite, App: req.App, Scheme: req.Scheme,
		SnapshotEvery: req.SnapshotEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	emit := func(ev experiments.SessionEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		lines = append(lines, string(b))
		return nil
	}
	for _, target := range targets {
		if err := sess.Advance(context.Background(), target, emit, nil); err != nil {
			t.Fatalf("reference advance to %d: %v", target, err)
		}
	}
	return lines
}

func requireLines(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d lines, want %d\ngot:  %v\nwant: %v", what, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: line %d differs\ngot:  %s\nwant: %s", what, i, got[i], want[i])
		}
	}
}

// stripResumeHeader drops the unnumbered header line a resume stream starts
// with, after checking it is one.
func stripResumeHeader(t *testing.T, lines []string) []string {
	t.Helper()
	if len(lines) == 0 || !strings.Contains(lines[0], `"type":"resume"`) {
		t.Fatalf("resume stream missing header: %v", lines)
	}
	return lines[1:]
}

// TestSessionHTTPLifecycleSurvivesRestart is the tentpole contract over
// HTTP: a session advanced in steps streams exactly the engine's canonical
// events; a second server booted over the same directory (the first is
// simply abandoned, as a SIGKILL would leave it) restores the session and
// replays the stream byte-identically from any last-seen position.
func TestSessionHTTPLifecycleSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	targets := []uint64{1300, 10000}
	ref := engineReference(t, sessionSpec, targets)
	if len(ref) == 0 {
		t.Fatal("empty reference stream")
	}

	_, ts := newTestServer(t, Config{Workers: 2, SessionDir: dir})
	status, body, _ := post(t, ts.URL+"/v1/session", sessionSpec)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, body)
	}
	var created experiments.SessionStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID != "alpha" || created.Spec.SnapshotEvery != 600 {
		t.Fatalf("unexpected created status: %+v", created)
	}

	var live []string
	for _, target := range targets {
		status, lines := postStream(t, ts.URL+"/v1/session/alpha/advance",
			SessionAdvanceRequest{Target: target})
		if status != http.StatusOK {
			t.Fatalf("advance to %d: status %d: %v", target, status, lines)
		}
		live = append(live, lines...)
	}
	requireLines(t, "live advance stream", live, ref)

	// A re-issued advance past the end streams nothing and succeeds.
	if status, lines := postStream(t, ts.URL+"/v1/session/alpha/advance",
		SessionAdvanceRequest{Target: 10000}); status != http.StatusOK || len(lines) != 0 {
		t.Fatalf("re-issued advance: status %d, lines %v", status, lines)
	}

	var listed SessionListResponse
	if got := get(t, ts.URL+"/v1/session", &listed); got != http.StatusOK {
		t.Fatalf("list: status %d", got)
	}
	if len(listed.Sessions) != 1 || listed.Sessions[0].ID != "alpha" || !listed.Sessions[0].Done {
		t.Fatalf("unexpected listing: %+v", listed)
	}

	// "Restart": a new server over the same directory. The first server is
	// abandoned un-drained, exactly the state a kill -9 leaves behind.
	s2, ts2 := newTestServer(t, Config{Workers: 2, SessionDir: dir})
	if n := s2.sessionsRestored.Load(); n != 1 {
		t.Fatalf("restored %d sessions, want 1", n)
	}
	var st StatsResponse
	get(t, ts2.URL+"/stats", &st)
	if st.SessionsOpen != 1 || st.SessionsRestored != 1 {
		t.Fatalf("stats: open %d restored %d, want 1/1", st.SessionsOpen, st.SessionsRestored)
	}

	status, lines := postStream(t, ts2.URL+"/v1/session/alpha/resume",
		SessionResumeRequest{LastSeq: 0})
	if status != http.StatusOK {
		t.Fatalf("resume: status %d: %v", status, lines)
	}
	requireLines(t, "full resume replay", stripResumeHeader(t, lines), ref)

	// Resuming from a mid-stream position replays exactly the suffix.
	mid := len(ref) / 2
	var midEv experiments.SessionEvent
	if err := json.Unmarshal([]byte(ref[mid]), &midEv); err != nil {
		t.Fatal(err)
	}
	status, lines = postStream(t, ts2.URL+"/v1/session/alpha/resume",
		SessionResumeRequest{LastSeq: midEv.Seq})
	if status != http.StatusOK {
		t.Fatalf("mid resume: status %d", status)
	}
	requireLines(t, "mid resume replay", stripResumeHeader(t, lines), ref[mid+1:])

	// Metrics surface the session plane.
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"lightwsp_sessions_open 1",
		"lightwsp_sessions_restored_total 1",
		"lightwsp_session_resumes_total 2",
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	// Delete, then the session is gone for every verb.
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/v1/session/alpha", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if got := get(t, ts2.URL+"/v1/session/alpha", nil); got != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", got)
	}
}

// TestSessionHTTPValidation covers the create/lookup error contract.
func TestSessionHTTPValidation(t *testing.T) {
	// Without a session directory every session endpoint answers 503.
	_, tsOff := newTestServer(t, Config{Workers: 1})
	if status, body, _ := post(t, tsOff.URL+"/v1/session", sessionSpec); status != http.StatusServiceUnavailable {
		t.Fatalf("create without store: status %d: %s", status, body)
	}
	if got := get(t, tsOff.URL+"/v1/session", nil); got != http.StatusServiceUnavailable {
		t.Fatalf("list without store: status %d", got)
	}

	_, ts := newTestServer(t, Config{Workers: 1, SessionDir: t.TempDir()})
	cases := []struct {
		name string
		req  SessionCreateRequest
		want int
	}{
		{"unknown workload", SessionCreateRequest{ID: "x", Suite: "cpu2006", App: "nope"}, http.StatusNotFound},
		{"unknown scheme", SessionCreateRequest{ID: "x", Suite: "cpu2006", App: "fuzz-st", Scheme: "warp"}, http.StatusBadRequest},
		{"uninstrumented scheme", SessionCreateRequest{ID: "x", Suite: "cpu2006", App: "fuzz-st", Scheme: "baseline"}, http.StatusBadRequest},
		{"invalid id", SessionCreateRequest{ID: "no/slash", Suite: "cpu2006", App: "fuzz-st"}, http.StatusBadRequest},
		{"reserved id", SessionCreateRequest{ID: "blobs", Suite: "cpu2006", App: "fuzz-st"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if status, body, _ := post(t, ts.URL+"/v1/session", tc.req); status != tc.want {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, status, tc.want, body)
		}
	}
	if status, _, _ := post(t, ts.URL+"/v1/session", sessionSpec); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	if status, body, _ := post(t, ts.URL+"/v1/session", sessionSpec); status != http.StatusConflict {
		t.Fatalf("duplicate create: status %d: %s", status, body)
	}
	if got := get(t, ts.URL+"/v1/session/missing", nil); got != http.StatusNotFound {
		t.Fatalf("get unknown: status %d, want 404", got)
	}
	// An omitted ID gets a generated one.
	anon := sessionSpec
	anon.ID = ""
	status, body, _ := post(t, ts.URL+"/v1/session", anon)
	if status != http.StatusCreated {
		t.Fatalf("anonymous create: status %d: %s", status, body)
	}
	var created experiments.SessionStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(created.ID, "s-") || !experiments.ValidSessionID(created.ID) {
		t.Fatalf("generated id %q", created.ID)
	}
}

// TestSessionHTTPBusyConflict: while one operation holds a session, advance
// and delete answer 409 and leave the running operation untouched.
func TestSessionHTTPBusyConflict(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, SessionDir: t.TempDir()})
	if status, body, _ := post(t, ts.URL+"/v1/session", sessionSpec); status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, body)
	}
	sess, ok := srv.sessions.Get("alpha")
	if !ok {
		t.Fatal("session not open")
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		first := true
		done <- sess.Advance(context.Background(), 1300, func(experiments.SessionEvent) error {
			if first {
				first = false
				close(entered)
				<-release
			}
			return nil
		}, nil)
	}()
	<-entered

	if status, body, _ := post(t, ts.URL+"/v1/session/alpha/advance",
		SessionAdvanceRequest{Target: 2000}); status != http.StatusConflict {
		t.Fatalf("advance while busy: status %d: %s", status, body)
	}
	if status, body, _ := post(t, ts.URL+"/v1/session/alpha/resume",
		SessionResumeRequest{}); status != http.StatusConflict {
		t.Fatalf("resume while busy: status %d: %s", status, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/alpha", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delete while busy: status %d", resp.StatusCode)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("held advance failed: %v", err)
	}
}

// TestSessionDrainForcesFinalSnapshot is the lossless-drain fix: a session
// with cadence snapshots disabled still gets one durable snapshot when the
// server drains, so the next boot recovers it with zero replay.
func TestSessionDrainForcesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{Workers: 2, SessionDir: dir})
	spec := sessionSpec
	spec.SnapshotEvery = 0 // cadence off: only the drain snapshot can exist
	if status, body, _ := post(t, ts.URL+"/v1/session", spec); status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, body)
	}
	if status, lines := postStream(t, ts.URL+"/v1/session/alpha/advance",
		SessionAdvanceRequest{Target: 1000}); status != http.StatusOK {
		t.Fatalf("advance: status %d: %v", status, lines)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st, err := experiments.OpenSessionStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sess, err := st.Open(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	got := sess.Status()
	if got.Snapshots != 1 || got.LastSnapshotTotal != 1000 || got.Total != 1000 {
		t.Fatalf("after drain: %+v, want one snapshot at total 1000", got)
	}
}

// TestSessionHTTPTruncatedSnapshotsFallBack: a restart that finds every
// snapshot blob torn (truncated mid-write by the crash) falls back to full
// journal replay and still serves a byte-identical resume.
func TestSessionHTTPTruncatedSnapshotsFallBack(t *testing.T) {
	dir := t.TempDir()
	targets := []uint64{1300, 10000}
	ref := engineReference(t, sessionSpec, targets)

	_, ts := newTestServer(t, Config{Workers: 2, SessionDir: dir})
	if status, body, _ := post(t, ts.URL+"/v1/session", sessionSpec); status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, body)
	}
	for _, target := range targets {
		if status, lines := postStream(t, ts.URL+"/v1/session/alpha/advance",
			SessionAdvanceRequest{Target: target}); status != http.StatusOK {
			t.Fatalf("advance to %d: status %d: %v", target, status, lines)
		}
	}

	blobs, err := filepath.Glob(filepath.Join(dir, "blobs", "*"))
	if err != nil || len(blobs) == 0 {
		t.Fatalf("no snapshot blobs found (err %v)", err)
	}
	for _, b := range blobs {
		if err := os.Truncate(b, 10); err != nil {
			t.Fatal(err)
		}
	}

	_, ts2 := newTestServer(t, Config{Workers: 2, SessionDir: dir})
	status, lines := postStream(t, ts2.URL+"/v1/session/alpha/resume",
		SessionResumeRequest{LastSeq: 0})
	if status != http.StatusOK {
		t.Fatalf("resume: status %d: %v", status, lines)
	}
	requireLines(t, "resume after torn snapshots", stripResumeHeader(t, lines), ref)
}

// TestSessionResumeBeyondStreamRejected: asking to resume past the end of
// the stream is a client error carried on the NDJSON stream.
func TestSessionResumeBeyondStreamRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SessionDir: t.TempDir()})
	if status, _, _ := post(t, ts.URL+"/v1/session", sessionSpec); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	status, lines := postStream(t, ts.URL+"/v1/session/alpha/resume",
		SessionResumeRequest{LastSeq: 999999})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	lines = stripResumeHeader(t, lines)
	if len(lines) != 1 || !strings.Contains(lines[0], `"type":"error"`) {
		t.Fatalf("want one terminal error line, got %v", lines)
	}
}

// flakySessionFS wraps a real filesystem and fails every file fsync with
// ENOSPC while broken — the disk-full failure mode where writes appear to
// succeed but durability is gone.
type flakySessionFS struct {
	hostfs.FS
	broken atomic.Bool
}

func (f *flakySessionFS) OpenFile(name string, flag int, perm iofs.FileMode) (hostfs.File, error) {
	h, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &flakySessionFile{File: h, fs: f}, nil
}

func (f *flakySessionFS) CreateTemp(dir, pattern string) (hostfs.File, error) {
	h, err := f.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &flakySessionFile{File: h, fs: f}, nil
}

type flakySessionFile struct {
	hostfs.File
	fs *flakySessionFS
}

func (h *flakySessionFile) Sync() error {
	if h.fs.broken.Load() {
		return &iofs.PathError{Op: "sync", Path: h.Name(), Err: syscall.ENOSPC}
	}
	return h.File.Sync()
}

// TestSessionDegradedDiskServes503AndRecovers is the graceful-degradation
// ladder end to end: a disk that stops honoring fsync turns session
// advances into 503 + Retry-After (with the degraded gauge up), not a
// crash and not a silent durability lie — and the store heals itself the
// moment the disk recovers, converging on the byte-identical stream.
func TestSessionDegradedDiskServes503AndRecovers(t *testing.T) {
	ref := engineReference(t, sessionSpec, []uint64{700, 1400})

	ffs := &flakySessionFS{FS: hostfs.Disk()}
	_, ts := newTestServer(t, Config{Workers: 2, SessionDir: t.TempDir(), SessionFS: ffs})

	if status, body, _ := post(t, ts.URL+"/v1/session", sessionSpec); status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, body)
	}
	var live []string
	status, lines := postStream(t, ts.URL+"/v1/session/alpha/advance", SessionAdvanceRequest{Target: 700})
	if status != http.StatusOK {
		t.Fatalf("healthy advance: status %d: %v", status, lines)
	}
	live = append(live, lines...)

	// The disk dies. The in-flight advance fails loudly (stream error line
	// naming durability), because its journal append cannot be made durable.
	ffs.broken.Store(true)
	status, lines = postStream(t, ts.URL+"/v1/session/alpha/advance", SessionAdvanceRequest{Target: 1400})
	if status != http.StatusOK || len(lines) == 0 {
		t.Fatalf("advance on broken disk: status %d, lines %v", status, lines)
	}
	if last := lines[len(lines)-1]; !strings.Contains(last, "durability") {
		t.Fatalf("stream error does not name durability loss: %s", last)
	}

	// While degraded, further advances shed load fast: 503 + Retry-After.
	status, body, hdr := post(t, ts.URL+"/v1/session/alpha/advance", SessionAdvanceRequest{Target: 1400})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded advance: status %d: %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}

	// The degradation is loud on /metrics.
	prom := getText(t, ts.URL+"/metrics")
	if !strings.Contains(prom, "lightwsp_durability_degraded 1") {
		t.Fatal("degraded gauge not raised")
	}
	if !strings.Contains(prom, "lightwsp_storage_durability_lost_total") {
		t.Fatal("durability-lost counter family missing")
	}

	// The disk recovers: the pre-flight probe clears the flag and the
	// session converges on the canonical stream without operator action.
	ffs.broken.Store(false)
	status, lines = postStream(t, ts.URL+"/v1/session/alpha/advance", SessionAdvanceRequest{Target: 1400})
	if status != http.StatusOK {
		t.Fatalf("healed advance: status %d: %v", status, lines)
	}
	live = append(live, lines...)

	status, lines = postStream(t, ts.URL+"/v1/session/alpha/resume", SessionResumeRequest{LastSeq: 0})
	if status != http.StatusOK {
		t.Fatalf("resume: status %d", status)
	}
	requireLines(t, "stream after degradation + heal", stripResumeHeader(t, lines), ref)

	prom = getText(t, ts.URL+"/metrics")
	if !strings.Contains(prom, "lightwsp_durability_degraded 0") {
		t.Fatal("degraded gauge not cleared after heal")
	}
}

// getText fetches a URL and returns its body as text.
func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
