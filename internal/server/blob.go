package server

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"lightwsp/internal/experiments"
)

// This file is the peer store API: the HTTP face of the node's local blob
// cache (GET/PUT/DELETE /v1/blob/{hash}) and its lease arbiter (POST/DELETE
// /v1/lease/{name}). It is what experiments.RemoteStore speaks — a fleet
// without a shared filesystem points every node's L2 at one member, and
// that member's disk becomes the shared tier. Transfers are the sealed
// on-disk bytes: the server never re-marshals, so the CRC-32C seal written
// by the origin node is exactly what the fetching node verifies.

// maxPeerBlobBytes bounds one uploaded blob (mirrors the RemoteStore
// client's own transfer bound).
const maxPeerBlobBytes = 256 << 20

// peerStore resolves the local blob cache the peer API serves, or writes
// the 503 — a node without a cache directory has no disk to share.
func (s *Server) peerStore(w http.ResponseWriter) (*experiments.BlobCache, bool) {
	if s.localBlobs == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "no cache directory; this node cannot serve the peer store API"})
		return nil, false
	}
	return s.localBlobs, true
}

// handleBlobGet (GET /v1/blob/{hash}) serves one entry's sealed bytes.
func (s *Server) handleBlobGet(w http.ResponseWriter, r *http.Request) {
	bc, ok := s.peerStore(w)
	if !ok {
		return
	}
	hash := r.PathValue("hash")
	sealed, ok := bc.ReadRaw(hash)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("no blob %s", hash)})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(sealed)
}

// handleBlobPut (PUT /v1/blob/{hash}) stores pre-sealed bytes. The seal is
// verified before anything touches disk; bytes damaged in transit (or a
// lying peer) are 422, never a cache entry.
func (s *Server) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	bc, ok := s.peerStore(w)
	if !ok {
		return
	}
	sealed, err := io.ReadAll(io.LimitReader(r.Body, maxPeerBlobBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if err := bc.WriteRaw(r.PathValue("hash"), sealed); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleBlobDelete (DELETE /v1/blob/{hash}) evicts one entry, best-effort.
func (s *Server) handleBlobDelete(w http.ResponseWriter, r *http.Request) {
	bc, ok := s.peerStore(w)
	if !ok {
		return
	}
	bc.Remove(r.PathValue("hash"))
	w.WriteHeader(http.StatusNoContent)
}

// leaseWire is the wire form of a Claim/Renew call — the mirror of
// experiments.RemoteStore's client side.
type leaseWire struct {
	Owner string `json:"owner"`
	TTLMS int64  `json:"ttl_ms"`
	Renew bool   `json:"renew,omitempty"`
}

// handleLease (POST /v1/lease/{name}) arbitrates one lease: 200 when the
// caller holds it after the call, 409 when another owner does. The arbiter
// is this node's own lease files, so a fleet that points every L2 at one
// member gets cross-node singleflight from that member's disk.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	bc, ok := s.peerStore(w)
	if !ok {
		return
	}
	var req leaseWire
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Owner == "" || req.TTLMS <= 0 {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "lease call needs owner and a positive ttl_ms"})
		return
	}
	name := r.PathValue("name")
	ttl := time.Duration(req.TTLMS) * time.Millisecond
	held := false
	if req.Renew {
		held = bc.Renew(name, req.Owner, ttl)
	} else {
		held = bc.Claim(name, req.Owner, ttl)
	}
	if !held {
		writeJSON(w, http.StatusConflict,
			errorResponse{Error: fmt.Sprintf("lease %s held by another owner", name)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleLeaseRelease (DELETE /v1/lease/{name}?owner=) drops a lease if the
// named owner still holds it.
func (s *Server) handleLeaseRelease(w http.ResponseWriter, r *http.Request) {
	bc, ok := s.peerStore(w)
	if !ok {
		return
	}
	owner := r.URL.Query().Get("owner")
	if owner == "" {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "lease release needs ?owner="})
		return
	}
	bc.Release(r.PathValue("name"), owner)
	w.WriteHeader(http.StatusNoContent)
}
