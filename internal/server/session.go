package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"lightwsp/internal/experiments"
	"lightwsp/internal/fleet"
	"lightwsp/internal/hostfs"
	"lightwsp/internal/obs"
)

// This file is the HTTP face of durable sessions (experiments/session.go):
// long-lived simulations a client advances incrementally, which survive
// power loss and server restarts. The server owns one SessionStore; every
// session found on disk is reopened at startup (and lazily on first touch,
// so a session created by a previous process is reachable even if its boot
// restore failed), a wall-clock ticker forces snapshots of idle sessions,
// and the drain path takes one final snapshot of every open session so a
// planned shutdown loses nothing and costs the next boot no replay.

// initSessions opens the session store and restores every session found in
// it. Called from New when Config.SessionDir is set; a store that cannot
// open logs the error and leaves the session endpoints answering 503 rather
// than taking the rest of the API down with it.
func (s *Server) initSessions() {
	fsys := s.cfg.SessionFS
	if fsys == nil {
		fsys = hostfs.Disk()
	}
	st, err := experiments.OpenSessionStoreFS(s.cfg.SessionDir, fsys)
	if err != nil {
		s.log.Error("session store unavailable; session endpoints disabled",
			"dir", s.cfg.SessionDir, "error", err)
		return
	}
	st.SetObserver(s.log, s.storage)
	if s.cfg.L2 != nil {
		// Session snapshots publish to the shared tier too, so a session
		// that rehashes to another node after a member dies can restore
		// from its newest snapshot there.
		st.SetL2(s.cfg.L2)
	}
	st.OnSnapshot = func(id string, wall time.Duration) {
		s.tel.sessionSnaps.Add(1)
		us := wall.Microseconds()
		if us < 0 {
			us = 0
		}
		s.tel.mu.Lock()
		s.tel.snapLatency.Observe(uint64(us))
		s.tel.mu.Unlock()
		s.log.Debug("session snapshot written",
			"session", id, "wall_ms", float64(us)/1000)
	}
	s.sessions = st
	s.restoreSessions()
	if s.cfg.SnapshotInterval > 0 {
		s.sessionStop = make(chan struct{})
		go s.snapshotTicker()
	}
}

// restoreSessions replays the recovery protocol for every session on disk:
// each reopen loads the newest durable snapshot that validates, recovers the
// machine from its crash image, and replays the journal tail — so a server
// that was SIGKILLed mid-run comes back with every session live at its last
// journaled position.
func (s *Server) restoreSessions() {
	ids, err := s.sessions.List()
	if err != nil {
		s.log.Error("session scan failed", "dir", s.cfg.SessionDir, "error", err)
		return
	}
	for _, id := range ids {
		// In a fleet only the ring owner restores a session at boot —
		// eagerly opening a peer's sessions would fight it for the journal.
		// A session that rehashes here later (its owner died) is opened
		// lazily by lookupSession on first touch.
		if s.ring != nil && s.self != "" {
			if owner := s.ring.Owner(fleet.SessionRouteKey(id)); owner != s.self {
				s.log.Debug("session owned by a peer; skipping boot restore",
					"session", id, "owner", owner)
				continue
			}
		}
		start := time.Now()
		sess, err := s.sessions.Open(context.Background(), id)
		if err != nil {
			s.log.Error("session restore failed; will retry on first touch",
				"session", id, "error", err)
			continue
		}
		s.sessionsRestored.Add(1)
		st := sess.Status()
		s.log.Info("session restored",
			"session", id, "suite", st.Spec.Suite, "app", st.Spec.App,
			"total_cycles", st.Total, "records", st.Records,
			"snapshots", st.Snapshots, "done", st.Done,
			"wall_ms", float64(time.Since(start).Microseconds())/1000)
	}
	if len(ids) > 0 {
		s.log.Info("session restore complete",
			"found", len(ids), "restored", s.sessionsRestored.Load())
	}
}

// snapshotTicker periodically forces a snapshot of every open session that
// has advanced since its last one, bounding the journal replay a hard crash
// would cost even when clients never hit a cadence point. Busy sessions are
// skipped — an in-flight Advance snapshots on its own cadence.
func (s *Server) snapshotTicker() {
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-s.sessionStop:
			return
		case <-t.C:
		}
		for _, sess := range s.sessions.Sessions() {
			took, err := sess.ForceSnapshot(context.Background())
			switch {
			case errors.Is(err, experiments.ErrSessionBusy),
				errors.Is(err, experiments.ErrSessionClosed):
				// Busy: the running operation snapshots for us. Closed: the
				// session was removed between listing and snapshotting.
			case err != nil:
				s.log.Error("periodic session snapshot failed",
					"session", sess.ID, "error", err)
			case took:
				s.log.Debug("periodic session snapshot", "session", sess.ID)
			}
		}
	}
}

// stopSessionTicker halts the periodic snapshotter (idempotent).
func (s *Server) stopSessionTicker() {
	if s.sessionStop != nil {
		s.sessionStopOnce.Do(func() { close(s.sessionStop) })
	}
}

// snapshotSessionsForDrain forces a final durable snapshot of every open
// session so a planned shutdown is lossless without replay: the next boot
// recovers each session straight from a snapshot at its exact stop point.
// A session still busy when the drain deadline already fired is skipped —
// its write-ahead journal preserves the work, and its flight recorder has
// been dumped — because waiting would hold up the exit. Returns how many
// snapshots were written.
func (s *Server) snapshotSessionsForDrain(reason string) int {
	if s.sessions == nil {
		return 0
	}
	n := 0
	for _, sess := range s.sessions.Sessions() {
		took, err := sess.ForceSnapshot(context.Background())
		switch {
		case errors.Is(err, experiments.ErrSessionBusy):
			s.log.Warn("session busy at drain; journal preserves its progress",
				"session", sess.ID, "reason", reason)
		case errors.Is(err, experiments.ErrSessionClosed):
		case err != nil:
			s.log.Error("drain snapshot failed; journal preserves progress",
				"session", sess.ID, "reason", reason, "error", err)
		case took:
			n++
			s.log.Info("final session snapshot written",
				"session", sess.ID, "reason", reason)
		}
	}
	return n
}

// closeSessions closes the store (journals flushed and closed) and stops the
// snapshot ticker. Called at the end of both drain paths.
func (s *Server) closeSessions() {
	s.stopSessionTicker()
	if s.sessions != nil {
		s.sessions.Close()
	}
}

// lookupSession resolves a session ID or writes the error: 503 when the
// server has no session store, 404 when the ID is unknown. A session on disk
// that is not yet open (its boot restore failed, or another process created
// it) is opened on the spot.
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) (*experiments.Session, bool) {
	if s.sessions == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "sessions disabled; start the server with a session directory"})
		return nil, false
	}
	id := r.PathValue("id")
	if sess, ok := s.sessions.Get(id); ok {
		return sess, true
	}
	sess, err := s.sessions.Open(r.Context(), id)
	if err != nil {
		writeErr(w, r, err)
		return nil, false
	}
	return sess, true
}

// handleSessionCreate (POST /v1/session) creates a durable session. The
// workload and scheme are validated up front (404/400 exactly like /v1/run);
// an omitted ID gets a generated one; an omitted snapshot cadence inherits
// the server default.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	body, err := bufferBody(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	var req SessionCreateRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	p, ok := lookupProfile(w, req.Suite, req.App)
	if !ok {
		return
	}
	sch, ok := lookupScheme(w, req.Scheme)
	if !ok {
		return
	}
	if !sch.Instrumented {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(
			"scheme %q cannot host a session: snapshots are power failures and only instrumented schemes recover", sch.Name)})
		return
	}
	id := req.ID
	if id == "" {
		id = "s-" + obs.NewTraceID()
	}
	if !experiments.ValidSessionID(id) {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("invalid session id %q", id)})
		return
	}
	// A create with no client-chosen ID is unkeyed at the lb, so it may
	// land anywhere; the minted ID decides the owner. Forward the request
	// with the ID filled in so the owner creates exactly this session.
	if id != req.ID {
		req.ID = id
		if nb, merr := json.Marshal(req); merr == nil {
			body = nb
		}
	}
	if s.forwardOwned(w, r, fleet.SessionRouteKey(id), body) {
		return
	}
	if s.sessions == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "sessions disabled; start the server with a session directory"})
		return
	}
	ri := reqInfoFrom(r.Context())
	ri.session, ri.suite, ri.app, ri.scheme = id, string(p.Suite), p.Name, sch.Name

	spec := experiments.SessionSpec{
		Suite: string(p.Suite), App: p.Name, Scheme: sch.Name,
		SnapshotEvery: req.SnapshotEvery,
	}
	if spec.SnapshotEvery == 0 {
		spec.SnapshotEvery = s.cfg.SnapshotEvery
	}
	sess, err := s.sessions.Create(id, spec)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	s.log.Info("session created",
		"session", id, "suite", spec.Suite, "app", spec.App,
		"scheme", spec.Scheme, "snapshot_every", spec.SnapshotEvery)
	writeJSON(w, http.StatusCreated, sess.Status())
}

// handleSessionList (GET /v1/session) reports every open session's status.
func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	if s.sessions == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "sessions disabled; start the server with a session directory"})
		return
	}
	sessions := s.sessions.Sessions()
	out := make([]experiments.SessionStatus, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.Status())
	}
	// Sessions() returns map order; sort for a stable listing.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	writeJSON(w, http.StatusOK, SessionListResponse{Sessions: out})
}

// handleSessionGet (GET /v1/session/{id}) reports one session's status.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	if s.forwardOwned(w, r, fleet.SessionRouteKey(r.PathValue("id")), nil) {
		return
	}
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	if ri := reqInfoFrom(r.Context()); ri != nil {
		ri.session = sess.ID
	}
	writeJSON(w, http.StatusOK, sess.Status())
}

// handleSessionDelete (DELETE /v1/session/{id}) removes a session and its
// snapshots. A busy session is 409 — interrupt the client first.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	id := r.PathValue("id")
	if s.forwardOwned(w, r, fleet.SessionRouteKey(id), nil) {
		return
	}
	if s.sessions == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "sessions disabled; start the server with a session directory"})
		return
	}
	if ri := reqInfoFrom(r.Context()); ri != nil {
		ri.session = id
	}
	if err := s.sessions.Remove(id); err != nil {
		writeErr(w, r, err)
		return
	}
	s.log.Info("session removed", "session", id)
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed", "id": id})
}

// handleSessionAdvance (POST /v1/session/{id}/advance) runs the session
// forward to a session-total cycle target, streaming its milestone events as
// NDJSON. The stream carries only numbered SessionEvent lines (plus an
// unnumbered terminal error line if the run fails), so the concatenation of
// every advance stream a client ever received IS the session's canonical
// event stream — byte-identical to what a resume replays.
func (s *Server) handleSessionAdvance(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	body, err := bufferBody(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if s.forwardOwned(w, r, fleet.SessionRouteKey(r.PathValue("id")), body) {
		return
	}
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var req SessionAdvanceRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ri := reqInfoFrom(r.Context())
	ri.session = sess.ID
	ri.suite, ri.app, ri.scheme = sess.Spec.Suite, sess.Spec.App, sess.Spec.Scheme

	st := sess.Status()
	if st.Busy {
		writeJSON(w, http.StatusConflict, errorResponse{
			Error: fmt.Sprintf("session %q busy: another operation is in flight", sess.ID)})
		return
	}
	if !st.Done && req.Target > st.Total && req.Target-st.Total > s.cfg.MaxRunCycles {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: fmt.Sprintf(
			"advance of %d cycles exceeds the per-request budget of %d; advance in smaller steps",
			req.Target-st.Total, s.cfg.MaxRunCycles)})
		return
	}
	// Graceful degradation: a store that lost durability fails advances
	// fast (503 + Retry-After via writeErr) instead of burning a worker on
	// an operation whose journal append cannot be honored. The active probe
	// clears the flag the moment the disk recovers.
	if s.sessions.Degraded() && !s.sessions.RecheckDurability() {
		writeErr(w, r, fmt.Errorf("session store %q cannot persist: %w",
			s.cfg.SessionDir, experiments.ErrDurabilityLost))
		return
	}

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	ctx, detach := s.attachFlight(ctx, ri)
	defer detach()

	enc, flusher := s.startSessionStream(w)
	emit := func(ev experiments.SessionEvent) error {
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	err = nil
	queued := time.Now()
	perr := s.pool.DoCtx(ctx, func() {
		ri.queueWait = time.Since(queued)
		err = sess.Advance(ctx, req.Target, emit, ri.flight)
	})
	if perr != nil {
		err = perr
	}
	if err != nil {
		ri.err = err
		enc.Encode(streamEvent{Type: "error", Error: err.Error(), Trace: ri.traceID})
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// sessionResumeHeader is the one unnumbered line a resume stream starts
// with, so a client can confirm the replay point before events arrive.
// Strip it (it has no "seq") to splice the replay onto a saved stream.
type sessionResumeHeader struct {
	Type    string `json:"type"`
	Session string `json:"session"`
	FromSeq uint64 `json:"from_seq"`
	Trace   string `json:"trace,omitempty"`
}

// handleSessionResume (POST /v1/session/{id}/resume) replays the session's
// event stream after the client's last-seen sequence number: the server
// restores the newest durable snapshot that stream position allows,
// re-executes the journal forward, and streams exactly the events after
// last_seq — byte-identical to the stream an uninterrupted client received.
func (s *Server) handleSessionResume(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	body, err := bufferBody(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if s.forwardOwned(w, r, fleet.SessionRouteKey(r.PathValue("id")), body) {
		return
	}
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var req SessionResumeRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ri := reqInfoFrom(r.Context())
	ri.session = sess.ID
	ri.suite, ri.app, ri.scheme = sess.Spec.Suite, sess.Spec.App, sess.Spec.Scheme

	if st := sess.Status(); st.Busy {
		writeJSON(w, http.StatusConflict, errorResponse{
			Error: fmt.Sprintf("session %q busy: another operation is in flight", sess.ID)})
		return
	}

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	ctx, detach := s.attachFlight(ctx, ri)
	defer detach()

	enc, flusher := s.startSessionStream(w)
	enc.Encode(sessionResumeHeader{
		Type: "resume", Session: sess.ID, FromSeq: req.LastSeq, Trace: ri.traceID,
	})
	if flusher != nil {
		flusher.Flush()
	}
	emit := func(ev experiments.SessionEvent) error {
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	err = nil
	queued := time.Now()
	perr := s.pool.DoCtx(ctx, func() {
		ri.queueWait = time.Since(queued)
		err = sess.Resume(ctx, req.LastSeq, emit, ri.flight)
	})
	if perr != nil {
		err = perr
	}
	if err != nil {
		ri.err = err
		enc.Encode(streamEvent{Type: "error", Error: err.Error(), Trace: ri.traceID})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	s.tel.sessionResumes.Add(1)
	s.log.Info("session resumed",
		"trace", ri.traceID, "session", sess.ID, "from_seq", req.LastSeq)
}

// startSessionStream flips the response into NDJSON streaming mode.
func (s *Server) startSessionStream(w http.ResponseWriter) (*json.Encoder, http.Flusher) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	return json.NewEncoder(w), flusher
}
