package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"lightwsp/internal/compiler"
	"lightwsp/internal/core"
	"lightwsp/internal/crashfuzz"
	"lightwsp/internal/experiments"
	"lightwsp/internal/fleet"
	"lightwsp/internal/machine"
	"lightwsp/internal/recovery"
	"lightwsp/internal/workload"
)

// routes installs the API surface on the server's mux, every endpoint
// wrapped in the instrument middleware (trace identity, panic recovery,
// metrics, access logs). The readOnly flag keeps scrape/probe endpoints'
// access lines at debug level.
func (s *Server) routes() {
	handle := func(pattern, endpoint string, readOnly bool, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(endpoint, readOnly, h))
	}
	handle("GET /healthz", "/healthz", true, s.handleHealthz)
	handle("GET /stats", "/stats", true, s.handleStats)
	handle("GET /metrics", "/metrics", true, s.handleMetrics)
	handle("GET /v1/experiments", "/v1/experiments", true, s.handleExperiments)
	handle("GET /v1/debug/run/{id}", "/v1/debug/run", true, s.handleDebugRun)
	handle("POST /v1/compile", "/v1/compile", false, s.handleCompile)
	handle("POST /v1/run", "/v1/run", false, s.handleRun)
	handle("POST /v1/run/stream", "/v1/run/stream", false, s.handleRunStream)
	handle("POST /v1/run-with-failure", "/v1/run-with-failure", false, s.handleRunWithFailure)
	handle("POST /v1/crashfuzz", "/v1/crashfuzz", false, s.handleCrashfuzz)
	handle("POST /v1/experiment", "/v1/experiment", false, s.handleExperiment)
	handle("POST /v1/session", "/v1/session", false, s.handleSessionCreate)
	handle("GET /v1/session", "/v1/session", true, s.handleSessionList)
	handle("GET /v1/session/{id}", "/v1/session/get", true, s.handleSessionGet)
	handle("DELETE /v1/session/{id}", "/v1/session/delete", false, s.handleSessionDelete)
	handle("POST /v1/session/{id}/advance", "/v1/session/advance", false, s.handleSessionAdvance)
	handle("POST /v1/session/{id}/resume", "/v1/session/resume", false, s.handleSessionResume)
	// Peer store API (fleet traffic; readOnly keeps the 20ms lease polls
	// out of the info-level access log).
	handle("GET /v1/blob/{hash}", "/v1/blob", true, s.handleBlobGet)
	handle("PUT /v1/blob/{hash}", "/v1/blob", true, s.handleBlobPut)
	handle("DELETE /v1/blob/{hash}", "/v1/blob", true, s.handleBlobDelete)
	handle("POST /v1/lease/{name}", "/v1/lease", true, s.handleLease)
	handle("DELETE /v1/lease/{name}", "/v1/lease", true, s.handleLeaseRelease)
}

// handleHealthz is the liveness probe: 200 while serving, 503 once the
// drain began (load balancers stop routing here before shutdown) — and 503
// while the session store cannot make journal appends durable. The degraded
// case used to answer 200, which kept load balancers routing session work
// to a node that would refuse every advance; reporting it here lets the lb
// eject the node until the disk recovers (the store's active probe clears
// the flag on its own).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if s.sessions != nil && s.sessions.Degraded() && !s.sessions.RecheckDurability() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "degraded"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStats reports the shared runner's cache counters and the admission
// gate's request accounting.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	c := s.runner.Counters()
	inFlight, queued, _ := s.gaugeSnapshot()
	openSessions := 0
	if s.sessions != nil {
		openSessions = len(s.sessions.Sessions())
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		FreshRuns:        c.Fresh,
		DiskCacheHits:    c.DiskHits,
		MemCacheHits:     c.MemHits,
		LeaseJoins:       c.LeaseJoins,
		Workers:          s.cfg.Workers,
		QueueDepth:       s.cfg.QueueDepth,
		InFlight:         inFlight,
		Queued:           queued,
		Admitted:         s.admitted.Load(),
		Completed:        s.completed.Load(),
		RejectedBusy:     s.rejectedBusy.Load(),
		RejectedDraining: s.rejectedDraining.Load(),
		Draining:         draining,
		SessionsOpen:     openSessions,
		SessionsRestored: s.sessionsRestored.Load(),
		Metrics:          experiments.AggregateMetrics(s.runner.Manifests()),
	})
}

// handleExperiments lists every runnable experiment: the registry plus the
// crashfuzz campaign this package hosts (crashfuzz imports experiments, so
// its entry cannot live in the registry).
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var out []ExperimentInfo
	for _, e := range experiments.Registry() {
		out = append(out, ExperimentInfo{Name: e.Name, Desc: e.Desc})
	}
	out = append(out, ExperimentInfo{Name: "crashfuzz",
		Desc: "exhaustive crash-consistency smoke campaigns"})
	writeJSON(w, http.StatusOK, out)
}

// lookupProfile resolves a workload or writes the 404.
func lookupProfile(w http.ResponseWriter, suite, app string) (workload.Profile, bool) {
	p, ok := workload.Find(suite, app)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("unknown workload %s/%s", suite, app)})
	}
	return p, ok
}

// lookupScheme resolves a scheme name (empty: lightwsp) or writes the 400.
func lookupScheme(w http.ResponseWriter, name string) (machine.Scheme, bool) {
	if name == "" {
		name = "lightwsp"
	}
	sch, ok := experiments.SchemeByName(name)
	if !ok {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("unknown scheme %q", name)})
	}
	return sch, ok
}

// handleRun resolves one simulation through the shared Runner: concurrent
// requests for the same key join a single in-flight execution, and the
// response is byte-identical however the result was obtained.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	body, err := bufferBody(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	var req RunRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if s.forwardOwned(w, r, fleet.RunRouteKey(req.Suite, req.App, req.Scheme), body) {
		return
	}
	p, ok := lookupProfile(w, req.Suite, req.App)
	if !ok {
		return
	}
	sch, ok := lookupScheme(w, req.Scheme)
	if !ok {
		return
	}
	cfg, ccfg := experiments.ResolveConfigs(p, compiler.Config{})
	_, hash := experiments.CanonicalRunKey(p, sch, cfg, ccfg)
	ri := reqInfoFrom(r.Context())
	ri.suite, ri.app, ri.scheme, ri.keyHash = string(p.Suite), p.Name, sch.Name, hash

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	ctx, detach := s.attachFlight(ctx, ri)
	defer detach()

	st, err := s.runner.WithContext(ctx).Run(p, sch, compiler.Config{})
	if err != nil {
		writeErr(w, r, err)
		return
	}
	s.noteResolved(ri, hash)
	writeJSON(w, http.StatusOK, RunResponse{
		Suite:   string(p.Suite),
		App:     p.Name,
		Scheme:  sch.Name,
		KeyHash: hash,
		Stats:   *st,
	})
}

// noteResolved enriches the request record with the run's provenance
// manifest (resolution source, degradation warnings) once the Runner has
// one. Joined waiters see the manifest of whoever resolved the run.
func (s *Server) noteResolved(ri *reqInfo, hash string) {
	man, ok := s.runner.ManifestByHash(hash)
	if !ok {
		return
	}
	ri.source = man.Source
	s.log.Info("run resolved",
		"trace", ri.traceID, "key", shortHash(hash),
		"suite", ri.suite, "app", ri.app, "scheme", ri.scheme,
		"source", man.Source, "cycles", man.Cycles,
		"wall_s", man.WallSeconds, "resolved_by", man.TraceID)
	if man.Metrics.Degradations > 0 {
		s.log.Warn("memory controllers degraded during run",
			"trace", ri.traceID, "key", shortHash(hash),
			"degradations", man.Metrics.Degradations)
	}
}

// handleCompile reports static compilation statistics without running
// anything (cheap; still admitted so drain accounting covers it).
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req CompileRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	p, ok := lookupProfile(w, req.Suite, req.App)
	if !ok {
		return
	}
	if ri := reqInfoFrom(r.Context()); ri != nil {
		ri.suite, ri.app = string(p.Suite), p.Name
	}
	ccfg := compiler.Config{StoreThreshold: req.StoreThreshold}
	_, ccfg = experiments.ResolveConfigs(p, ccfg)
	prog, err := workload.Build(p)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	res, err := compiler.Compile(prog, ccfg)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, CompileResponse{
		Suite:          string(p.Suite),
		App:            p.Name,
		StoreThreshold: ccfg.StoreThreshold,
		Stats:          res.Stats,
	})
}

// handleRunWithFailure executes a power-cut + recovery round trip under
// LightWSP and verifies the recovered persistent image against the
// architectural state, exactly as the CLI and the fuzzing oracle do. The
// simulation runs on the shared worker pool so -j bounds it with
// everything else.
func (s *Server) handleRunWithFailure(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	body, err := bufferBody(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	var req FailureRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// Failure requests carry no scheme field; the route key's empty scheme
	// matches what the lb derives from the same body.
	if s.forwardOwned(w, r, fleet.RunRouteKey(req.Suite, req.App, ""), body) {
		return
	}
	p, ok := lookupProfile(w, req.Suite, req.App)
	if !ok {
		return
	}
	ri := reqInfoFrom(r.Context())
	ri.suite, ri.app, ri.scheme = string(p.Suite), p.Name, core.Scheme().Name

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	ctx, detach := s.attachFlight(ctx, ri)
	defer detach()

	prog, err := workload.Build(p)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	cfg, ccfg := experiments.ResolveConfigs(p, compiler.Config{})
	rt, err := core.NewRuntimeFor(prog, ccfg, cfg, core.Scheme(), ri.flight)
	if err != nil {
		ri.err = err
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	var res *core.CrashResult
	queued := time.Now()
	if perr := s.pool.DoCtx(ctx, func() {
		ri.queueWait = time.Since(queued)
		res, err = rt.RunWithFailure(ctx, req.FailCycle, s.cfg.MaxRunCycles)
	}); perr != nil {
		writeErr(w, r, perr)
		return
	}
	if err != nil {
		writeErr(w, r, err)
		return
	}
	rec := res.Recovered
	writeJSON(w, http.StatusOK, FailureResponse{
		Suite:      string(p.Suite),
		App:        p.Name,
		Failed:     res.Failed,
		Discarded:  res.Report.Discarded,
		Cycles:     rec.Stats.Cycles,
		Consistent: rec.PM().EqualRange(rec.Arch(), 0, recovery.UserRangeEnd),
	})
}

// handleCrashfuzz runs one crash-consistency fuzzing campaign on the shared
// pool, memoizing passing verdicts in the shared blob cache.
func (s *Server) handleCrashfuzz(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	body, err := bufferBody(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	var req CrashfuzzRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if s.forwardOwned(w, r, fleet.RunRouteKey(req.Suite, req.App, ""), body) {
		return
	}
	p, ok := lookupProfile(w, req.Suite, req.App)
	if !ok {
		return
	}
	if ri := reqInfoFrom(r.Context()); ri != nil {
		ri.suite, ri.app = string(p.Suite), p.Name
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	res, err := crashfuzz.RunContext(ctx, crashfuzz.Config{
		Profile:             p,
		ExhaustiveThreshold: req.Threshold,
		MaxInjections:       req.Points,
		Cuts:                req.Cuts,
		Seed:                seed,
		MaxCycles:           s.cfg.MaxRunCycles,
		Pool:                s.pool,
		Cache:               s.blobs,
		Progress:            s.cfg.Progress,
	})
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, CrashfuzzResponse{Result: res})
}

// handleExperiment runs one full registry experiment through a
// context-bound view of the shared Runner, so its grid lands in the same
// caches every other request uses.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req ExperimentRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	run, ok := s.experimentByName(ctx, req.Name)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("unknown experiment %q", req.Name)})
		return
	}
	if ri := reqInfoFrom(r.Context()); ri != nil {
		ri.suite, ri.app = "experiment", req.Name
	}
	start := time.Now()
	res, err := run()
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, ExperimentResponse{
		Name:        req.Name,
		Text:        res.String(),
		WallSeconds: time.Since(start).Seconds(),
	})
}

// experimentByName resolves a runnable experiment: a registry entry bound
// to the shared Runner, or the crashfuzz smoke campaign hosted here.
func (s *Server) experimentByName(ctx context.Context, name string) (func() (fmt.Stringer, error), bool) {
	if e, ok := experiments.ExperimentByName(name); ok {
		r := s.runner.WithContext(ctx)
		return func() (fmt.Stringer, error) { return e.Run(r) }, true
	}
	if name == "crashfuzz" {
		return func() (fmt.Stringer, error) { return s.crashfuzzSmoke(ctx) }, true
	}
	return nil, false
}

// crashfuzzSmoke mirrors lightwsp-bench's crashfuzz experiment: exhaustive
// one- and two-cut campaigns over the miniature fuzz profiles, any
// divergence an error.
func (s *Server) crashfuzzSmoke(ctx context.Context) (fmt.Stringer, error) {
	var out crashfuzzResults
	for _, p := range workload.FuzzSmokeProfiles() {
		for cuts := 1; cuts <= 2; cuts++ {
			res, err := crashfuzz.RunContext(ctx, crashfuzz.Config{
				Profile: p, Cuts: cuts, Seed: 1,
				MaxCycles: s.cfg.MaxRunCycles,
				Pool:      s.pool, Cache: s.blobs,
			})
			if err != nil {
				return nil, err
			}
			if res.Divergences > 0 {
				return nil, fmt.Errorf("crashfuzz: %s/%s (%d cuts): %d divergence(s)",
					p.Suite, p.Name, cuts, res.Divergences)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// crashfuzzResults renders a batch of campaigns one per line.
type crashfuzzResults []*crashfuzz.Result

func (rs crashfuzzResults) String() string {
	s := ""
	for i, r := range rs {
		if i > 0 {
			s += "\n"
		}
		s += r.String()
	}
	return s
}
