package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"lightwsp/internal/compiler"
	"lightwsp/internal/core"
	"lightwsp/internal/crashfuzz"
	"lightwsp/internal/experiments"
	"lightwsp/internal/machine"
	"lightwsp/internal/recovery"
	"lightwsp/internal/workload"
)

// routes installs the API surface on the server's mux.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/run/stream", s.handleRunStream)
	s.mux.HandleFunc("POST /v1/run-with-failure", s.handleRunWithFailure)
	s.mux.HandleFunc("POST /v1/crashfuzz", s.handleCrashfuzz)
	s.mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
}

// handleHealthz is the liveness probe: 200 while serving, 503 once the
// drain began (load balancers stop routing here before shutdown).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStats reports the shared runner's cache counters and the admission
// gate's request accounting.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	c := s.runner.Counters()
	writeJSON(w, http.StatusOK, StatsResponse{
		FreshRuns:        c.Fresh,
		DiskCacheHits:    c.DiskHits,
		MemCacheHits:     c.MemHits,
		Workers:          s.cfg.Workers,
		QueueDepth:       s.cfg.QueueDepth,
		Admitted:         s.admitted.Load(),
		Completed:        s.completed.Load(),
		RejectedBusy:     s.rejectedBusy.Load(),
		RejectedDraining: s.rejectedDraining.Load(),
		Draining:         draining,
		Metrics:          experiments.AggregateMetrics(s.runner.Manifests()),
	})
}

// handleExperiments lists every runnable experiment: the registry plus the
// crashfuzz campaign this package hosts (crashfuzz imports experiments, so
// its entry cannot live in the registry).
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var out []ExperimentInfo
	for _, e := range experiments.Registry() {
		out = append(out, ExperimentInfo{Name: e.Name, Desc: e.Desc})
	}
	out = append(out, ExperimentInfo{Name: "crashfuzz",
		Desc: "exhaustive crash-consistency smoke campaigns"})
	writeJSON(w, http.StatusOK, out)
}

// lookupProfile resolves a workload or writes the 404.
func lookupProfile(w http.ResponseWriter, suite, app string) (workload.Profile, bool) {
	p, ok := workload.Find(suite, app)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("unknown workload %s/%s", suite, app)})
	}
	return p, ok
}

// lookupScheme resolves a scheme name (empty: lightwsp) or writes the 400.
func lookupScheme(w http.ResponseWriter, name string) (machine.Scheme, bool) {
	if name == "" {
		name = "lightwsp"
	}
	sch, ok := experiments.SchemeByName(name)
	if !ok {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("unknown scheme %q", name)})
	}
	return sch, ok
}

// handleRun resolves one simulation through the shared Runner: concurrent
// requests for the same key join a single in-flight execution, and the
// response is byte-identical however the result was obtained.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req RunRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	p, ok := lookupProfile(w, req.Suite, req.App)
	if !ok {
		return
	}
	sch, ok := lookupScheme(w, req.Scheme)
	if !ok {
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	st, err := s.runner.WithContext(ctx).Run(p, sch, compiler.Config{})
	if err != nil {
		writeErr(w, err)
		return
	}
	cfg, ccfg := experiments.ResolveConfigs(p, compiler.Config{})
	_, hash := experiments.CanonicalRunKey(p, sch, cfg, ccfg)
	writeJSON(w, http.StatusOK, RunResponse{
		Suite:   string(p.Suite),
		App:     p.Name,
		Scheme:  sch.Name,
		KeyHash: hash,
		Stats:   *st,
	})
}

// handleCompile reports static compilation statistics without running
// anything (cheap; still admitted so drain accounting covers it).
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req CompileRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	p, ok := lookupProfile(w, req.Suite, req.App)
	if !ok {
		return
	}
	ccfg := compiler.Config{StoreThreshold: req.StoreThreshold}
	_, ccfg = experiments.ResolveConfigs(p, ccfg)
	prog, err := workload.Build(p)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := compiler.Compile(prog, ccfg)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, CompileResponse{
		Suite:          string(p.Suite),
		App:            p.Name,
		StoreThreshold: ccfg.StoreThreshold,
		Stats:          res.Stats,
	})
}

// handleRunWithFailure executes a power-cut + recovery round trip under
// LightWSP and verifies the recovered persistent image against the
// architectural state, exactly as the CLI and the fuzzing oracle do. The
// simulation runs on the shared worker pool so -j bounds it with
// everything else.
func (s *Server) handleRunWithFailure(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req FailureRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	p, ok := lookupProfile(w, req.Suite, req.App)
	if !ok {
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	prog, err := workload.Build(p)
	if err != nil {
		writeErr(w, err)
		return
	}
	cfg, ccfg := experiments.ResolveConfigs(p, compiler.Config{})
	rt, err := core.NewRuntimeFor(prog, ccfg, cfg, core.Scheme(), nil)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	var res *core.CrashResult
	if perr := s.pool.DoCtx(ctx, func() {
		res, err = rt.RunWithFailure(ctx, req.FailCycle, s.cfg.MaxRunCycles)
	}); perr != nil {
		writeErr(w, perr)
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	rec := res.Recovered
	writeJSON(w, http.StatusOK, FailureResponse{
		Suite:      string(p.Suite),
		App:        p.Name,
		Failed:     res.Failed,
		Discarded:  res.Report.Discarded,
		Cycles:     rec.Stats.Cycles,
		Consistent: rec.PM().EqualRange(rec.Arch(), 0, recovery.UserRangeEnd),
	})
}

// handleCrashfuzz runs one crash-consistency fuzzing campaign on the shared
// pool, memoizing passing verdicts in the shared blob cache.
func (s *Server) handleCrashfuzz(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req CrashfuzzRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	p, ok := lookupProfile(w, req.Suite, req.App)
	if !ok {
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	res, err := crashfuzz.RunContext(ctx, crashfuzz.Config{
		Profile:             p,
		ExhaustiveThreshold: req.Threshold,
		MaxInjections:       req.Points,
		Cuts:                req.Cuts,
		Seed:                seed,
		MaxCycles:           s.cfg.MaxRunCycles,
		Pool:                s.pool,
		Cache:               s.blobs,
		Progress:            s.cfg.Progress,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CrashfuzzResponse{Result: res})
}

// handleExperiment runs one full registry experiment through a
// context-bound view of the shared Runner, so its grid lands in the same
// caches every other request uses.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req ExperimentRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	run, ok := s.experimentByName(ctx, req.Name)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("unknown experiment %q", req.Name)})
		return
	}
	start := time.Now()
	res, err := run()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ExperimentResponse{
		Name:        req.Name,
		Text:        res.String(),
		WallSeconds: time.Since(start).Seconds(),
	})
}

// experimentByName resolves a runnable experiment: a registry entry bound
// to the shared Runner, or the crashfuzz smoke campaign hosted here.
func (s *Server) experimentByName(ctx context.Context, name string) (func() (fmt.Stringer, error), bool) {
	if e, ok := experiments.ExperimentByName(name); ok {
		r := s.runner.WithContext(ctx)
		return func() (fmt.Stringer, error) { return e.Run(r) }, true
	}
	if name == "crashfuzz" {
		return func() (fmt.Stringer, error) { return s.crashfuzzSmoke(ctx) }, true
	}
	return nil, false
}

// crashfuzzSmoke mirrors lightwsp-bench's crashfuzz experiment: exhaustive
// one- and two-cut campaigns over the miniature fuzz profiles, any
// divergence an error.
func (s *Server) crashfuzzSmoke(ctx context.Context) (fmt.Stringer, error) {
	var out crashfuzzResults
	for _, p := range workload.FuzzSmokeProfiles() {
		for cuts := 1; cuts <= 2; cuts++ {
			res, err := crashfuzz.RunContext(ctx, crashfuzz.Config{
				Profile: p, Cuts: cuts, Seed: 1,
				MaxCycles: s.cfg.MaxRunCycles,
				Pool:      s.pool, Cache: s.blobs,
			})
			if err != nil {
				return nil, err
			}
			if res.Divergences > 0 {
				return nil, fmt.Errorf("crashfuzz: %s/%s (%d cuts): %d divergence(s)",
					p.Suite, p.Name, cuts, res.Divergences)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// crashfuzzResults renders a batch of campaigns one per line.
type crashfuzzResults []*crashfuzz.Result

func (rs crashfuzzResults) String() string {
	s := ""
	for i, r := range rs {
		if i > 0 {
			s += "\n"
		}
		s += r.String()
	}
	return s
}
