package server

import (
	"encoding/json"
	"net/http"
	"time"

	"lightwsp/internal/compiler"
	"lightwsp/internal/core"
	"lightwsp/internal/experiments"
	"lightwsp/internal/fleet"
	"lightwsp/internal/machine"
	"lightwsp/internal/metrics"
	"lightwsp/internal/probe"
	"lightwsp/internal/workload"
)

// streamChunk is how many cycles the streaming run advances between
// progress lines: large enough that JSON encoding never dominates the
// simulation, small enough that clients see liveness every few wall-clock
// milliseconds.
const streamChunk = 1 << 20

// streamEvent is one NDJSON line. Type is "event" (a milestone probe
// event), "progress" (a cycle heartbeat), "stats" (the terminal line) or
// "error" (the terminal line of a failed run — the HTTP status is long
// gone by then).
type streamEvent struct {
	Type   string            `json:"type"`
	Kind   string            `json:"kind,omitempty"`
	Cycle  uint64            `json:"cycle,omitempty"`
	Core   int               `json:"core,omitempty"`
	MC     int               `json:"mc,omitempty"`
	Region uint64            `json:"region,omitempty"`
	Arg    uint64            `json:"arg,omitempty"`
	Error  string            `json:"error,omitempty"`
	Stats  any               `json:"stats,omitempty"`
	Metric *metrics.Snapshot `json:"metrics,omitempty"`
	// Trace rides on the terminal line so a saved stream can be correlated
	// with the access log and /v1/debug/run/{id} without the HTTP headers.
	Trace string `json:"trace,omitempty"`
}

// streamSink writes milestone probe events straight onto the response
// stream. It is driven from the single simulation goroutine, so no
// locking; flushing per event keeps latency low at milestone rates.
type streamSink struct {
	enc   *json.Encoder
	flush http.Flusher
}

func (ss *streamSink) Emit(e probe.Event) {
	// probe.MilestoneKind selects the rare protocol transitions worth a
	// line on the wire — the same filter the durable-session stream uses —
	// never the per-store firehose.
	if !probe.MilestoneKind(e.Kind) {
		return
	}
	ss.enc.Encode(streamEvent{
		Type: "event", Kind: e.Kind.String(), Cycle: e.Cycle,
		Core: e.Core, MC: e.MC, Region: e.Region, Arg: e.Arg,
	})
	if ss.flush != nil {
		ss.flush.Flush()
	}
}

// handleRunStream executes one fresh simulation and streams NDJSON while it
// runs: milestone protocol events as they fire, a progress heartbeat every
// streamChunk cycles, and a terminal stats (or error) line. Streaming runs
// bypass the result cache — the event stream is the product — but still
// execute on the shared worker pool under admission control.
func (s *Server) handleRunStream(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	body, err := bufferBody(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	var req RunRequest
	if err := decode(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if s.forwardOwned(w, r, fleet.RunRouteKey(req.Suite, req.App, req.Scheme), body) {
		return
	}
	p, ok := lookupProfile(w, req.Suite, req.App)
	if !ok {
		return
	}
	sch, ok := lookupScheme(w, req.Scheme)
	if !ok {
		return
	}
	ri := reqInfoFrom(r.Context())
	ri.suite, ri.app, ri.scheme = string(p.Suite), p.Name, sch.Name

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	ctx, detach := s.attachFlight(ctx, ri)
	defer detach()

	prog, err := workload.Build(p)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	cfg, ccfg := experiments.ResolveConfigs(p, compiler.Config{})

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ss := &streamSink{enc: enc, flush: flusher}
	m := metrics.New()

	fail := func(err error) {
		ri.err = err
		enc.Encode(streamEvent{Type: "error", Error: err.Error(), Trace: ri.traceID})
		if flusher != nil {
			flusher.Flush()
		}
	}

	rt, err := core.NewRuntimeFor(prog, ccfg, cfg, sch, probe.Multi(m, ss, ri.flight))
	if err != nil {
		fail(err)
		return
	}
	queued := time.Now()
	perr := s.pool.DoCtx(ctx, func() {
		ri.queueWait = time.Since(queued)
		var sys *machine.System
		sys, err = rt.NewSystem()
		if err != nil {
			return
		}
		for next := uint64(streamChunk); ; next += streamChunk {
			if next > s.cfg.MaxRunCycles {
				next = s.cfg.MaxRunCycles
			}
			var done bool
			done, err = sys.RunUntilContext(ctx, next)
			if err != nil {
				return
			}
			if done {
				break
			}
			if next == s.cfg.MaxRunCycles {
				err = sys.RunContext(ctx, s.cfg.MaxRunCycles) // surfaces the budget error
				return
			}
			enc.Encode(streamEvent{Type: "progress", Cycle: sys.Cycle()})
			if flusher != nil {
				flusher.Flush()
			}
		}
		snap := m.Snapshot()
		enc.Encode(streamEvent{
			Type: "stats", Cycle: sys.Cycle(),
			Stats: sys.Stats, Metric: &snap, Trace: ri.traceID,
		})
		if flusher != nil {
			flusher.Flush()
		}
	})
	if perr != nil {
		fail(perr)
		return
	}
	if err != nil {
		fail(err)
	}
}
