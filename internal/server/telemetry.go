package server

import (
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lightwsp/internal/experiments"
	"lightwsp/internal/metrics"
	"lightwsp/internal/stats"
)

// endpointCode keys the request counter: one series per (endpoint, status).
type endpointCode struct {
	endpoint string
	code     int
}

// telemetry is the server-side metrics state the middleware feeds and
// /metrics renders: per-endpoint request counters and latency histograms
// (log-2 microsecond buckets — the same histogram machinery the simulator
// uses), plus a few flat counters for the ugly outcomes.
type telemetry struct {
	mu       sync.Mutex
	requests map[endpointCode]uint64
	latency  map[string]*stats.Histogram
	// snapLatency is the durable-session snapshot-write latency (µs,
	// log-2 buckets), fed by the store's OnSnapshot hook.
	snapLatency stats.Histogram

	panics          atomic.Uint64
	deadlineCancels atomic.Uint64
	flightDumps     atomic.Uint64
	sessionSnaps    atomic.Uint64
	sessionResumes  atomic.Uint64
}

func newTelemetry() *telemetry {
	return &telemetry{
		requests: map[endpointCode]uint64{},
		latency:  map[string]*stats.Histogram{},
	}
}

// observe records one finished request.
func (t *telemetry) observe(endpoint string, code int, d time.Duration) {
	t.mu.Lock()
	t.requests[endpointCode{endpoint, code}]++
	h := t.latency[endpoint]
	if h == nil {
		h = &stats.Histogram{}
		t.latency[endpoint] = h
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.Observe(uint64(us))
	t.mu.Unlock()
}

// gaugeSnapshot reads the admission gate's live occupancy: executing
// requests, requests queued for a worker, and the drain flag.
func (s *Server) gaugeSnapshot() (inFlight, queued int, draining bool) {
	held := len(s.sem)
	inFlight = held
	if inFlight > s.cfg.Workers {
		inFlight = s.cfg.Workers
	}
	queued = held - inFlight
	s.drainMu.RLock()
	draining = s.draining
	s.drainMu.RUnlock()
	return inFlight, queued, draining
}

// handleMetrics serves the Prometheus text-format exposition (0.0.4): HTTP
// request families, admission gauges, run-resolution counters by source, and
// the probe-metrics families aggregated across every resolved run.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.WriteProm(w); err != nil {
		s.log.Error("metrics exposition failed", "error", err)
	}
}

// MetricsHandler returns a bare /metrics handler for side listeners (the
// loopback debug mux serves it next to pprof).
func (s *Server) MetricsHandler() http.Handler { return http.HandlerFunc(s.handleMetrics) }

// WriteProm renders the full exposition onto w.
func (s *Server) WriteProm(w io.Writer) error {
	p := metrics.NewProm(w)

	// HTTP plane.
	s.tel.mu.Lock()
	reqs := make(map[endpointCode]uint64, len(s.tel.requests))
	for k, v := range s.tel.requests {
		reqs[k] = v
	}
	lats := make(map[string]metrics.HistSnapshot, len(s.tel.latency))
	for ep, h := range s.tel.latency {
		lats[ep] = metrics.SnapHistogram(h)
	}
	snapLat := metrics.SnapHistogram(&s.tel.snapLatency)
	s.tel.mu.Unlock()

	p.Family("lightwsp_http_requests_total", "counter", "HTTP requests served, by endpoint and status code.")
	for _, k := range sortedEndpointCodes(reqs) {
		p.Sample("lightwsp_http_requests_total", []metrics.Label{
			{Name: "endpoint", Value: k.endpoint},
			{Name: "code", Value: strconv.Itoa(k.code)},
		}, float64(reqs[k]))
	}
	p.Family("lightwsp_http_request_duration_us", "histogram", "Request latency in microseconds (log-2 buckets), by endpoint.")
	for _, ep := range sortedKeysStr(lats) {
		p.Histogram("lightwsp_http_request_duration_us", []metrics.Label{{Name: "endpoint", Value: ep}}, lats[ep])
	}

	// Admission gate.
	inFlight, queued, draining := s.gaugeSnapshot()
	gauge := func(name, help string, v float64) {
		p.Family(name, "gauge", help)
		p.Sample(name, nil, v)
	}
	gauge("lightwsp_inflight_requests", "Admitted requests currently executing.", float64(inFlight))
	gauge("lightwsp_queued_requests", "Admitted requests waiting for a worker.", float64(queued))
	gauge("lightwsp_admission_capacity", "Admission gate size (workers + queue depth).", float64(s.cfg.Workers+s.cfg.QueueDepth))
	gauge("lightwsp_draining", "1 once graceful drain began, else 0.", boolGauge(draining))

	counter := func(name, help string, v float64) {
		p.Family(name, "counter", help)
		p.Sample(name, nil, v)
	}
	counter("lightwsp_requests_admitted_total", "Requests admitted past the gate.", float64(s.admitted.Load()))
	counter("lightwsp_requests_completed_total", "Admitted requests that finished.", float64(s.completed.Load()))
	p.Family("lightwsp_requests_rejected_total", "counter", "Requests refused at admission, by reason.")
	p.Sample("lightwsp_requests_rejected_total", []metrics.Label{{Name: "reason", Value: "busy"}}, float64(s.rejectedBusy.Load()))
	p.Sample("lightwsp_requests_rejected_total", []metrics.Label{{Name: "reason", Value: "draining"}}, float64(s.rejectedDraining.Load()))
	counter("lightwsp_request_panics_total", "Handler panics recovered by the middleware.", float64(s.tel.panics.Load()))
	counter("lightwsp_deadline_cancels_total", "Requests answered 504 after their deadline fired mid-run.", float64(s.tel.deadlineCancels.Load()))
	counter("lightwsp_flight_dumps_total", "Flight-recorder dumps written.", float64(s.tel.flightDumps.Load()))

	// Durable sessions (families exposed even at zero so dashboards and
	// alerts can be written before the first session exists).
	openSessions := 0
	if s.sessions != nil {
		openSessions = len(s.sessions.Sessions())
	}
	gauge("lightwsp_sessions_open", "Durable sessions currently open.", float64(openSessions))
	counter("lightwsp_sessions_restored_total", "Sessions restored from disk at startup.", float64(s.sessionsRestored.Load()))
	counter("lightwsp_session_snapshots_total", "Durable session snapshots written.", float64(s.tel.sessionSnaps.Load()))
	counter("lightwsp_session_resumes_total", "Session streams resumed by clients.", float64(s.tel.sessionResumes.Load()))
	p.Family("lightwsp_session_snapshot_duration_us", "histogram", "Durable-snapshot write latency in microseconds (log-2 buckets).")
	p.Histogram("lightwsp_session_snapshot_duration_us", nil, snapLat)

	// Durable-storage integrity plane: the loud gauges and counters behind
	// the hostile-disk hardening (quarantine, checksum, degradation).
	degraded := false
	if s.sessions != nil {
		degraded = s.sessions.Degraded()
	}
	gauge("lightwsp_durability_degraded", "1 while the session store cannot make journal appends durable (serving 503), else 0.", boolGauge(degraded))
	sc := s.storage.Snapshot()
	counter("lightwsp_storage_quarantined_total", "Corrupt artifacts moved aside (blobs and journal tails).", float64(sc.Quarantined))
	counter("lightwsp_storage_checksum_failures_total", "Integrity-seal mismatches detected on read.", float64(sc.ChecksumFailures))
	counter("lightwsp_storage_legacy_evictions_total", "Pre-seal artifacts evicted as stale.", float64(sc.LegacyEvictions))
	counter("lightwsp_storage_write_errors_total", "Best-effort blob writes that failed.", float64(sc.WriteErrors))
	counter("lightwsp_storage_remove_errors_total", "Blob evictions and prunes that failed.", float64(sc.RemoveErrors))
	counter("lightwsp_storage_retries_total", "Transient-I/O retries on durable writes.", float64(sc.Retries))
	counter("lightwsp_storage_journal_truncations_total", "Torn or corrupt journal tails severed on reopen.", float64(sc.JournalTruncations))
	counter("lightwsp_storage_durability_lost_total", "Journal appends that failed past the retry budget.", float64(sc.DurabilityLost))

	// Fleet plane: ring membership, forwarding traffic and the tiered
	// store's hit ladder. Families are exposed even when solo (all zero)
	// so fleet dashboards can be written before the fleet exists.
	ringSize := 0
	if s.ring != nil {
		ringSize = s.ring.Len()
	}
	gauge("lightwsp_fleet_ring_size", "Fleet members this node routes across (0 when solo).", float64(ringSize))
	p.Family("lightwsp_fleet_forwards_total", "counter", "Requests forwarded between fleet nodes, by direction.")
	p.Sample("lightwsp_fleet_forwards_total", []metrics.Label{{Name: "direction", Value: "in"}}, float64(s.forwardsIn.Load()))
	p.Sample("lightwsp_fleet_forwards_total", []metrics.Label{{Name: "direction", Value: "out"}}, float64(s.forwardsOut.Load()))
	counter("lightwsp_fleet_forward_fallbacks_total", "Forwards served locally because every better-ranked peer was unreachable.", float64(s.forwardFallbacks.Load()))
	var l1Hits, l2Hits, tierMisses, writebacks uint64
	if s.tiered != nil {
		tc := s.tiered.Counters()
		l1Hits, l2Hits = tc.L1Hits.Load(), tc.L2Hits.Load()
		tierMisses, writebacks = tc.Misses.Load(), tc.Writebacks.Load()
	}
	p.Family("lightwsp_store_reads_total", "counter", "Tiered-store reads, by outcome (l1_hit, l2_hit, miss).")
	p.Sample("lightwsp_store_reads_total", []metrics.Label{{Name: "outcome", Value: "l1_hit"}}, float64(l1Hits))
	p.Sample("lightwsp_store_reads_total", []metrics.Label{{Name: "outcome", Value: "l2_hit"}}, float64(l2Hits))
	p.Sample("lightwsp_store_reads_total", []metrics.Label{{Name: "outcome", Value: "miss"}}, float64(tierMisses))
	counter("lightwsp_store_writebacks_total", "L2 hits promoted into the local tier.", float64(writebacks))

	// Run resolution provenance. "fleet" is a run joined from a peer's
	// published result under the cross-node singleflight lease.
	c := s.runner.Counters()
	p.Family("lightwsp_runs_total", "counter", "Simulation runs resolved, by source.")
	for _, src := range []struct {
		name string
		v    int
	}{{"fresh", c.Fresh}, {"disk_cache", c.DiskHits}, {"mem_cache", c.MemHits}, {"fleet", c.LeaseJoins}} {
		p.Sample("lightwsp_runs_total", []metrics.Label{{Name: "source", Value: src.name}}, float64(src.v))
	}

	// Probe metrics aggregated across every resolved run's manifest.
	experiments.AggregateMetrics(s.runner.Manifests()).WriteProm(p, "lightwsp_")
	return p.Err()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sortedEndpointCodes orders counter keys for a stable exposition (scrape
// diffs and golden tests both appreciate determinism).
func sortedEndpointCodes(m map[endpointCode]uint64) []endpointCode {
	keys := make([]endpointCode, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && lessEC(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func lessEC(a, b endpointCode) bool {
	if a.endpoint != b.endpoint {
		return a.endpoint < b.endpoint
	}
	return a.code < b.code
}

func sortedKeysStr[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// runLogCap bounds the recent-run registry; old records fall off the ring.
const runLogCap = 256

// runRecord is one finished request in the recent-run registry.
type runRecord struct {
	TraceID     string
	Endpoint    string
	Suite       string
	App         string
	Scheme      string
	KeyHash     string
	Source      string
	Status      int
	Error       string
	DurationMS  float64
	QueueWaitMS float64
	FlightDump  string
	FinishedAt  time.Time
}

// runLog is the bounded registry behind /v1/debug/run/{id}: a ring of the
// most recent run-shaped requests indexed by trace ID.
type runLog struct {
	mu   sync.Mutex
	ring [runLogCap]runRecord
	n    int // total records ever added
	byID map[string]int
}

func newRunLog() *runLog {
	return &runLog{byID: map[string]int{}}
}

func (l *runLog) add(rec runRecord) {
	l.mu.Lock()
	slot := l.n % runLogCap
	if old := l.ring[slot]; old.TraceID != "" && l.byID[old.TraceID] == slot {
		delete(l.byID, old.TraceID)
	}
	l.ring[slot] = rec
	l.byID[rec.TraceID] = slot
	l.n++
	l.mu.Unlock()
}

func (l *runLog) get(traceID string) (runRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	slot, ok := l.byID[traceID]
	if !ok {
		return runRecord{}, false
	}
	rec := l.ring[slot]
	return rec, rec.TraceID == traceID
}

// noteRun records a finished run-shaped request (one that resolved a
// workload or carried a flight recorder) into the registry; introspection
// requests stay out.
func (s *Server) noteRun(ri *reqInfo, status int, d time.Duration) {
	if ri.suite == "" && ri.keyHash == "" && ri.flight == nil {
		return
	}
	rec := runRecord{
		TraceID:     ri.traceID,
		Endpoint:    ri.endpoint,
		Suite:       ri.suite,
		App:         ri.app,
		Scheme:      ri.scheme,
		KeyHash:     ri.keyHash,
		Source:      ri.source,
		Status:      status,
		DurationMS:  float64(d.Microseconds()) / 1000,
		QueueWaitMS: float64(ri.queueWait.Microseconds()) / 1000,
		FlightDump:  ri.flightDump,
		FinishedAt:  time.Now(),
	}
	if ri.err != nil {
		rec.Error = ri.err.Error()
	}
	s.runs.add(rec)
}

// handleDebugRun serves one recent run's record — identity, outcome, timing,
// flight-dump path — plus the provenance manifest when the run key is known
// to the Runner.
func (s *Server) handleDebugRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.runs.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "no recent run with trace ID " + id})
		return
	}
	resp := DebugRunResponse{
		TraceID:     rec.TraceID,
		Endpoint:    rec.Endpoint,
		Suite:       rec.Suite,
		App:         rec.App,
		Scheme:      rec.Scheme,
		KeyHash:     rec.KeyHash,
		Source:      rec.Source,
		Status:      rec.Status,
		Error:       rec.Error,
		DurationMS:  rec.DurationMS,
		QueueWaitMS: rec.QueueWaitMS,
		FlightDump:  rec.FlightDump,
		FinishedAt:  rec.FinishedAt.UTC().Format(time.RFC3339Nano),
	}
	if rec.KeyHash != "" {
		if man, found := s.runner.ManifestByHash(rec.KeyHash); found {
			resp.Manifest = &man
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
