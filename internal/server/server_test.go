package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"lightwsp/internal/compiler"
	"lightwsp/internal/core"
	"lightwsp/internal/experiments"
	"lightwsp/internal/workload"
)

// newTestServer boots a Server with its HTTP front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON request and returns the status and body. Transport
// failures report through t.Errorf (post is called from client goroutines,
// where Fatal is off-limits) and return status -1.
func post(t *testing.T, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Errorf("marshal request: %v", err)
		return -1, nil, nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Errorf("post %s: %v", url, err)
		return -1, nil, nil
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read response: %v", err)
		return -1, nil, nil
	}
	return resp.StatusCode, out, resp.Header
}

func get(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// fuzzStRun is the cheapest real simulation request: the miniature
// single-threaded fuzz profile under LightWSP.
var fuzzStRun = RunRequest{Suite: "cpu2006", App: "fuzz-st", Scheme: "lightwsp"}

// TestConcurrentRunsShareOneSimulation is the singleflight contract: many
// clients requesting the same run concurrently get byte-identical responses
// and the server executes exactly one fresh simulation.
func TestConcurrentRunsShareOneSimulation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, _ := post(t, ts.URL+"/v1/run", fuzzStRun)
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d response differs from client 0:\n%s\n%s", i, bodies[0], bodies[i])
		}
	}

	// The served stats must be byte-identical to a direct library run of
	// the same workload — the server adds sharing, never skew.
	p, ok := workload.Find("cpu2006", "fuzz-st")
	if !ok {
		t.Fatal("fuzz-st profile missing")
	}
	direct, err := experiments.NewRunner().Run(p, core.Scheme(), compiler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	var resp RunResponse
	if err := json.Unmarshal(bodies[0], &resp); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(resp.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served stats diverge from a direct run:\n%s\n%s", got, want)
	}

	var st StatsResponse
	// release() runs after the response body is written, so the completed
	// counter may lag the client's read by a moment.
	waitFor(t, func() bool {
		get(t, ts.URL+"/stats", &st)
		return st.Completed == clients
	})
	if st.FreshRuns != 1 {
		t.Fatalf("fresh runs = %d, want exactly 1 (got stats %+v)", st.FreshRuns, st)
	}
	if st.MemCacheHits != clients-1 {
		t.Fatalf("mem hits = %d, want %d", st.MemCacheHits, clients-1)
	}
	if st.Admitted != clients {
		t.Fatalf("admission accounting: %+v", st)
	}
}

// TestAdmissionControlRejectsOverCapacity pins the 429 path: with capacity
// Workers+QueueDepth = 2, a third concurrent request is turned away with
// Retry-After while the first two are still running.
func TestAdmissionControlRejectsOverCapacity(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	admitted := make(chan struct{}, 2)
	release := make(chan struct{})
	s.hookAdmitted = func(*http.Request) {
		admitted <- struct{}{}
		<-release
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, _ := post(t, ts.URL+"/v1/run", fuzzStRun)
			if status != http.StatusOK {
				t.Errorf("admitted request failed: %d: %s", status, body)
			}
		}()
	}
	// Both capacity slots are held inside the hook; the gate is full.
	<-admitted
	<-admitted

	status, body, hdr := post(t, ts.URL+"/v1/run", fuzzStRun)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: status %d, want 429: %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	close(release)
	wg.Wait()

	var st StatsResponse
	get(t, ts.URL+"/stats", &st)
	if st.RejectedBusy != 1 || st.Admitted != 2 {
		t.Fatalf("admission accounting: %+v", st)
	}
}

// TestGracefulDrain pins the shutdown sequence: Drain refuses new work with
// 503, lets the in-flight request finish, and returns once it has.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	admitted := make(chan struct{}, 1)
	release := make(chan struct{})
	s.hookAdmitted = func(*http.Request) {
		admitted <- struct{}{}
		<-release
	}

	inflightDone := make(chan []byte, 1)
	go func() {
		status, body, _ := post(t, ts.URL+"/v1/run", fuzzStRun)
		if status != http.StatusOK {
			t.Errorf("in-flight request failed during drain: %d: %s", status, body)
		}
		inflightDone <- body
	}()
	<-admitted

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// The drain flag flips synchronously; new work and the health probe
	// must observe it while the in-flight request is still running.
	waitFor(t, func() bool {
		return get(t, ts.URL+"/healthz", nil) == http.StatusServiceUnavailable
	})
	// A new request is refused at the gate, before the admission hook.
	if status, body, _ := post(t, ts.URL+"/v1/run", fuzzStRun); status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503: %s", status, body)
	}

	select {
	case err := <-drained:
		t.Fatalf("drain returned before in-flight work finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-inflightDone

	var st StatsResponse
	get(t, ts.URL+"/stats", &st)
	if !st.Draining || st.RejectedDraining != 1 || st.Completed != 1 {
		t.Fatalf("drain accounting: %+v", st)
	}
}

// TestDrainHonorsContext pins the bounded-drain path: a drain context that
// expires with work still in flight returns its error instead of hanging.
func TestDrainHonorsContext(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	admitted := make(chan struct{}, 1)
	release := make(chan struct{})
	s.hookAdmitted = func(*http.Request) {
		admitted <- struct{}{}
		<-release
	}
	go post(t, ts.URL+"/v1/run", fuzzStRun)
	<-admitted

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain error = %v, want DeadlineExceeded", err)
	}
	close(release)
}

// TestDeadlineCancelsSimulation pins the 504 path: a 1 ms deadline on a
// multi-million-cycle benchmark expires mid-simulation, the cancellation
// propagates into the cycle loop, and the run is not cached.
func TestDeadlineCancelsSimulation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	req := RunRequest{Suite: "cpu2006", App: "hmmer", Scheme: "lightwsp", TimeoutMS: 1}
	status, body, _ := post(t, ts.URL+"/v1/run", req)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline run: status %d, want 504: %s", status, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("504 body not an error envelope: %s", body)
	}

	var st StatsResponse
	get(t, ts.URL+"/stats", &st)
	if st.FreshRuns != 0 || st.DiskCacheHits != 0 {
		t.Fatalf("canceled run was cached: %+v", st)
	}
}

// TestErrorMapping pins the 404/400 request-validation answers.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	status, body, _ := post(t, ts.URL+"/v1/run", RunRequest{Suite: "cpu2006", App: "no-such-app"})
	if status != http.StatusNotFound {
		t.Fatalf("unknown workload: status %d: %s", status, body)
	}
	status, body, _ = post(t, ts.URL+"/v1/run", RunRequest{Suite: "cpu2006", App: "fuzz-st", Scheme: "no-such-scheme"})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown scheme: status %d: %s", status, body)
	}
	status, body, _ = post(t, ts.URL+"/v1/experiment", ExperimentRequest{Name: "no-such-experiment"})
	if status != http.StatusNotFound {
		t.Fatalf("unknown experiment: status %d: %s", status, body)
	}
}

// TestCompileEndpoint sanity-checks the static-stats surface.
func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	status, body, _ := post(t, ts.URL+"/v1/compile", CompileRequest{Suite: "cpu2006", App: "fuzz-st"})
	if status != http.StatusOK {
		t.Fatalf("compile: status %d: %s", status, body)
	}
	var resp CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Boundaries == 0 || resp.StoreThreshold == 0 {
		t.Fatalf("compile stats empty: %+v", resp)
	}
}

// TestRunWithFailureEndpoint runs a crash/recover round trip and demands a
// consistent recovered image.
func TestRunWithFailureEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	status, body, _ := post(t, ts.URL+"/v1/run-with-failure",
		FailureRequest{Suite: "cpu2006", App: "fuzz-st", FailCycle: 200})
	if status != http.StatusOK {
		t.Fatalf("run-with-failure: status %d: %s", status, body)
	}
	var resp FailureResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Failed {
		t.Fatalf("no failure injected at cycle 200: %+v", resp)
	}
	if !resp.Consistent {
		t.Fatalf("recovered image inconsistent: %+v", resp)
	}
}

// TestStreamEndpoint pins the NDJSON contract: every line is valid JSON
// with a known type, and the stream terminates with a stats line.
func TestStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	status, body, hdr := post(t, ts.URL+"/v1/run/stream", fuzzStRun)
	if status != http.StatusOK {
		t.Fatalf("stream: status %d: %s", status, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	var last streamEvent
	for i, ln := range lines {
		var ev streamEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d not JSON: %q: %v", i, ln, err)
		}
		switch ev.Type {
		case "event", "progress", "stats":
		default:
			t.Fatalf("line %d has unknown type %q", i, ev.Type)
		}
		last = ev
	}
	if last.Type != "stats" || last.Cycle == 0 {
		t.Fatalf("stream did not end with a stats line: %+v", last)
	}
}

// TestHealthzAndExperimentsList covers the read-only surface.
func TestHealthzAndExperimentsList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	if s := get(t, ts.URL+"/healthz", nil); s != http.StatusOK {
		t.Fatalf("healthz status %d", s)
	}
	var list []ExperimentInfo
	if s := get(t, ts.URL+"/v1/experiments", &list); s != http.StatusOK {
		t.Fatalf("experiments status %d", s)
	}
	names := map[string]bool{}
	for _, e := range list {
		names[e.Name] = true
	}
	for _, want := range []string{"fig7", "tab2", "recovery", "crashfuzz"} {
		if !names[want] {
			t.Fatalf("experiment listing missing %q: %v", want, list)
		}
	}
}

// TestDiskCacheAcrossServers proves two server processes share results
// through the cache directory, and that drain flushes the manifest.
func TestDiskCacheAcrossServers(t *testing.T) {
	dir := t.TempDir()

	_, ts1 := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	status, body1, _ := post(t, ts1.URL+"/v1/run", fuzzStRun)
	if status != http.StatusOK {
		t.Fatalf("first server run: %d: %s", status, body1)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	status, body2, _ := post(t, ts2.URL+"/v1/run", fuzzStRun)
	if status != http.StatusOK {
		t.Fatalf("second server run: %d: %s", status, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("disk-cached response differs:\n%s\n%s", body1, body2)
	}
	var st StatsResponse
	get(t, ts2.URL+"/stats", &st)
	if st.FreshRuns != 0 || st.DiskCacheHits != 1 {
		t.Fatalf("second server did not hit the disk cache: %+v", st)
	}

	if err := s2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	var mans []json.RawMessage
	data := readFile(t, dir+"/serve-manifest.json")
	if err := json.Unmarshal(data, &mans); err != nil || len(mans) != 1 {
		t.Fatalf("drain manifest: %v entries, err %v", len(mans), err)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
