// Package wpq models the battery-backed write pending queue that LightWSP
// repurposes as a redo buffer (§III-A), together with the per-controller
// protocol state of lazy region-level persist ordering (§IV-B): the
// persistent flush ID register, boundary bookkeeping, the bdry-ACK /
// flush-ACK exchange, the load-miss CAM search (§IV-H), and the
// deadlock-escape overflow path with undo logging (§IV-D).
//
// Two modes are provided. Gated is LightWSP's: entries are quarantined until
// their region's boundary has reached every controller, then flushed to PM
// strictly in region order. FIFO is the pass-through used by the baseline
// persistence schemes (Capri, PPA, cWSP), which enforce ordering elsewhere
// (core stalls or speculation): entries flush in arrival order at PM write
// bandwidth.
package wpq

import (
	"fmt"
	"sort"

	"lightwsp/internal/mem"
	"lightwsp/internal/noc"
	"lightwsp/internal/probe"
)

// Mode selects the queue's flush discipline.
type Mode int

const (
	// Gated quarantines entries per region and flushes in region order
	// (LightWSP's LRPO).
	Gated Mode = iota
	// FIFO flushes entries in arrival order.
	FIFO
)

// Entry is one 8-byte quarantined store.
type Entry struct {
	Addr, Val uint64
	Region    uint64
	Boundary  bool
	Core      int
	// Born is the cycle the entry entered the persist path.
	Born uint64
}

// Config parameterizes one controller's queue.
type Config struct {
	// ID is this controller's index; NumMCs the total count.
	ID, NumMCs int
	// Entries is the queue capacity (Table I: 64 × 8 B = 512 B).
	Entries int
	// Mode is the flush discipline.
	Mode Mode
	// PMWriteInterval is the cycles between successive 8-byte PM writes
	// (the PM write-bandwidth model).
	PMWriteInterval uint64
	// PMWriteExtra is added to every PM write; cWSP's in-line undo
	// logging cost (§II-C2) uses it.
	PMWriteExtra uint64
	// FirstRegion is the region ID the flush ID register starts at.
	FirstRegion uint64

	// RetryTimeout is the cycles the controller waits for missing
	// bdry-ACKs on the current flush region before retransmitting a
	// boundary replay; successive retransmissions back off exponentially.
	// Only consulted once EnableRetry has armed the reliable-delivery
	// machinery (a fault injector is attached).
	RetryTimeout uint64
	// RetryBudget caps the exponential backoff: after this many
	// retransmission rounds the controller reports the unresponsive peers
	// via Sinks.OnPeerTimeout (degradation) and keeps replaying at the
	// maximum backoff so delivery still eventually succeeds.
	RetryBudget int
	// BrokenDupAcks (test-only) reverts ACK bookkeeping to counting
	// instead of per-peer sets, so duplicated or re-solicited ACKs
	// double-count and regions can flush before every peer confirmed the
	// boundary — the seeded bug the crash-fuzzing campaign must catch.
	BrokenDupAcks bool
}

// Sinks are the callbacks the queue drives.
type Sinks struct {
	// PMWrite persists one word.
	PMWrite func(addr, val uint64)
	// PMRead reads one persisted word (for undo logging).
	PMRead func(addr uint64) uint64
	// Send transmits a protocol message to another controller.
	Send func(m noc.Message)
	// OnFlush is invoked when an entry reaches PM (per-core outstanding
	// accounting); it may be nil.
	OnFlush func(e Entry)
	// OnPeerTimeout reports a peer that stayed silent through the whole
	// retry budget, so the machine can declare it degraded; it may be nil
	// and may be invoked repeatedly for the same peer.
	OnPeerTimeout func(peer int)
}

// Queue is one memory controller's WPQ plus LRPO protocol state.
type Queue struct {
	cfg   Config
	sinks Sinks

	entries []Entry

	// flushID is the latest unpersisted region (a 2-byte persistent
	// register in real hardware, §IV-B). The paper's hardware encodes
	// region IDs in 16 unused address bits and would compare them with
	// wraparound-aware modular arithmetic; the simulation uses 64-bit IDs
	// directly, which never wrap over any feasible run length, so plain
	// comparisons are exact here.
	flushID uint64

	bdryRcvd map[uint64]bool
	// bdryAcks and flushAcks track, per region, which peers acknowledged —
	// a bitmask indexed by MC, so duplicated or re-solicited ACKs are
	// idempotent. Under the test-only BrokenDupAcks config the same maps
	// degenerate to plain counters (the pre-reliable-delivery bookkeeping).
	bdryAcks  map[uint64]uint64
	flushAcks map[uint64]uint64

	busyUntil uint64

	// Overflow escape state (§IV-D).
	overflow bool
	// undoRecs mirrors the PM-resident undo log, tagged with the region
	// each record belongs to so commits can retire a region's records
	// while later regions' eager writes stay covered.
	undoRecs []undoRec

	// Reliable-delivery state (armed by EnableRetry): a retransmission
	// timer for the flush region's missing bdry-ACKs.
	retryEnabled bool
	retryArmed   bool
	retryRegion  uint64
	retryCount   int
	retryAt      uint64

	// degraded switches the queue to undo-logged eager persistence: see
	// SetDegraded.
	degraded bool

	// probe, when set, receives the queue's internally-timed events (undo
	// logging); the enclosing machine emits the rest (enqueue, flush,
	// overflow transitions) where the global cycle is in scope.
	probe probe.Sink

	// Statistics.
	Flushed       uint64 // entries written to PM
	Committed     uint64 // regions committed at this controller
	CAMHits       uint64 // load-miss WPQ hits (§IV-H)
	CAMSearches   uint64
	Deadlocks     uint64 // overflow-escape activations
	UndoWrites    uint64 // undo-logged PM writes
	FullRejects   uint64 // entries declined because the queue was full
	Retries       uint64 // boundary replays retransmitted
	DupSuppressed uint64 // duplicate ACKs absorbed idempotently
	MaxOccupancy  int
}

// undoRec is the in-memory mirror of one PM undo-log record.
type undoRec struct {
	addr, old uint64
	region    uint64
}

// New builds a queue.
func New(cfg Config, sinks Sinks) *Queue {
	if cfg.FirstRegion == 0 {
		cfg.FirstRegion = 1
	}
	return &Queue{
		cfg:       cfg,
		sinks:     sinks,
		flushID:   cfg.FirstRegion,
		bdryRcvd:  map[uint64]bool{},
		bdryAcks:  map[uint64]uint64{},
		flushAcks: map[uint64]uint64{},
	}
}

// EnableRetry arms the reliable-delivery machinery: retransmission of
// boundary replays for missing bdry-ACKs with exponential backoff. The
// machine calls it when a fault injector is attached; without it the queue
// behaves exactly as the perfect-fabric protocol, decision for decision.
func (q *Queue) EnableRetry() { q.retryEnabled = true }

// SetDegraded switches the queue into degraded eager-persist mode — the
// §IV-D deadlock-escape generalized to every region: when the normal gated
// walk has nothing to do, the oldest entry is flushed ahead of its region's
// global confirmation with its pre-image undo-logged, so a controller that
// fell behind (stuck window, exhausted retry budget against it) drains its
// backlog at PM bandwidth instead of wedging the persist path. Commits
// retire a region's undo records; records of regions that never confirm are
// rolled back by recovery, preserving all-or-nothing region persistence.
func (q *Queue) SetDegraded() { q.degraded = true }

// Degraded reports whether the queue is in degraded eager-persist mode.
func (q *Queue) Degraded() bool { return q.degraded }

// SetProbe attaches an instrumentation sink (nil detaches).
func (q *Queue) SetProbe(s probe.Sink) { q.probe = s }

// Len returns the current occupancy.
func (q *Queue) Len() int { return len(q.entries) }

// FlushID returns the latest unpersisted region at this controller.
func (q *Queue) FlushID() uint64 { return q.flushID }

// InOverflow reports whether the deadlock-escape path is active.
func (q *Queue) InOverflow() bool { return q.overflow }

// Empty reports whether no entries are pending.
func (q *Queue) Empty() bool { return len(q.entries) == 0 }

// Search performs the CAM lookup of §IV-H for an LLC load miss: it reports
// whether addr has a quarantined entry (whose value is newer than PM's).
func (q *Queue) Search(addr uint64) bool {
	q.CAMSearches++
	for i := range q.entries {
		if q.entries[i].Addr == addr {
			q.CAMHits++
			return true
		}
	}
	return false
}

// recordBoundary notes that region r's boundary reached this controller and
// acknowledges it to every other controller.
func (q *Queue) recordBoundary(r uint64) {
	if q.bdryRcvd[r] {
		return
	}
	q.bdryRcvd[r] = true
	for m := 0; m < q.cfg.NumMCs; m++ {
		if m != q.cfg.ID {
			q.sinks.Send(noc.Message{Kind: noc.MsgBdryAck, Region: r, From: q.cfg.ID, To: m})
		}
	}
	if q.overflow && r == q.flushID {
		// The awaited boundary arrived; the escape path ends and the
		// region completes through the normal protocol.
		q.overflow = false
	}
}

// AcceptControl ingests a boundary replica that carries no data (delivered
// to a non-home controller). It always succeeds: control messages need no
// queue slot.
func (q *Queue) AcceptControl(region uint64) {
	if q.cfg.Mode == Gated {
		q.recordBoundary(region)
	}
}

// Accept tries to ingest a data entry. false means the persist-path channel
// must retry later (queue full, or overflow mode declining other regions'
// stores).
func (q *Queue) Accept(e Entry) bool {
	full := len(q.entries) >= q.cfg.Entries
	if q.cfg.Mode == Gated && full && !q.bdryRcvd[q.flushID] && !q.overflow {
		// Deadlock: the queue is full and cannot receive the boundary
		// its oldest entries wait for (§IV-D).
		q.overflow = true
		q.Deadlocks++
	}
	if q.cfg.Mode == Gated && q.overflow {
		// §IV-D: during overflow, only the currently persisting
		// region's stores are accepted — and those are accepted even
		// beyond capacity ("exceptionally lets the WPQ overflow"),
		// since the escape path is actively draining them with their
		// pre-images undo-logged. In particular the region's boundary
		// must be able to enter, or the system could never leave
		// overflow. The excess is bounded by the compiler's per-region
		// store threshold.
		if e.Region != q.flushID {
			q.FullRejects++
			return false
		}
	} else if full {
		q.FullRejects++
		return false
	}
	q.entries = append(q.entries, e)
	if len(q.entries) > q.MaxOccupancy {
		q.MaxOccupancy = len(q.entries)
	}
	if e.Boundary && q.cfg.Mode == Gated {
		q.recordBoundary(e.Region)
	}
	return true
}

// OnMessage ingests a protocol message from another controller at cycle now.
func (q *Queue) OnMessage(now uint64, m noc.Message) {
	if q.cfg.Mode != Gated {
		return
	}
	if m.Kind == noc.MsgBdryReplay {
		// A stalled peer is soliciting a (re-)ACK for m.Region. Reply iff
		// this controller has the boundary — including when the region
		// already committed here, since the original ACK may have been
		// lost. A replay never creates boundary knowledge: that only ever
		// arrives through this controller's own persist path, which is
		// what guarantees its portion of the region is complete.
		if m.Region < q.flushID || q.bdryRcvd[m.Region] {
			q.sinks.Send(noc.Message{Kind: noc.MsgBdryAck, Region: m.Region, From: q.cfg.ID, To: m.From})
		}
		return
	}
	if m.Region < q.flushID {
		return // stale bookkeeping for an already-committed region
	}
	switch m.Kind {
	case noc.MsgBdryAck:
		q.recordAck(now, q.bdryAcks, m)
	case noc.MsgFlushAck:
		q.recordAck(now, q.flushAcks, m)
	case noc.MsgBoundary:
		q.recordBoundary(m.Region)
	}
}

// OnMessageSync ingests a message while temporarily routing any replies
// through exchange instead of the (dead, at power failure) NoC. Used by the
// power-failure drain, where ACK exchanges complete synchronously on
// battery power.
func (q *Queue) OnMessageSync(now uint64, m noc.Message, exchange func(m noc.Message)) {
	saved := q.sinks.Send
	q.sinks.Send = exchange
	defer func() { q.sinks.Send = saved }()
	q.OnMessage(now, m)
}

// recordAck notes that m.From acknowledged m.Region. Per-peer sets make
// duplicated and re-solicited ACKs idempotent; the test-only BrokenDupAcks
// config counts them instead, re-creating the pre-reliable-delivery bug.
func (q *Queue) recordAck(now uint64, acks map[uint64]uint64, m noc.Message) {
	if q.cfg.BrokenDupAcks {
		acks[m.Region]++
		return
	}
	bit := uint64(1) << uint(m.From)
	if acks[m.Region]&bit != 0 {
		q.DupSuppressed++
		if q.probe != nil {
			q.probe.Emit(probe.Event{Kind: probe.FabricDupSuppressed, Cycle: now,
				Core: -1, MC: q.cfg.ID, Region: m.Region, Arg: uint64(m.From)})
		}
		return
	}
	acks[m.Region] |= bit
}

// peerMask is the bdry-ACK set that confirms a region: every controller but
// this one.
func (q *Queue) peerMask() uint64 {
	return (uint64(1)<<uint(q.cfg.NumMCs) - 1) &^ (uint64(1) << uint(q.cfg.ID))
}

// canFlush reports whether region r's quarantine may open: its boundary
// reached this controller and every other controller acknowledged it.
func (q *Queue) canFlush(r uint64) bool {
	if !q.bdryRcvd[r] {
		return false
	}
	if q.cfg.BrokenDupAcks {
		return q.bdryAcks[r] >= uint64(q.cfg.NumMCs-1)
	}
	return q.bdryAcks[r] == q.peerMask()
}

// tickRetry drives the reliable-delivery timer: when the flush region has
// its boundary but is missing bdry-ACKs, retransmit boundary replays to the
// silent peers with bounded exponential backoff. Once the retry budget is
// exhausted the silent peers are reported via Sinks.OnPeerTimeout (the
// machine declares them degraded) and replaying continues at the maximum
// backoff, so delivery still eventually succeeds under any drop rate.
func (q *Queue) tickRetry(now uint64) {
	fid := q.flushID
	if !q.bdryRcvd[fid] || q.canFlush(fid) {
		// Nothing to solicit: either the boundary hasn't arrived here yet
		// (our own persist path will deliver it) or the region is fully
		// acknowledged.
		q.retryArmed = false
		return
	}
	if !q.retryArmed || q.retryRegion != fid {
		q.retryArmed, q.retryRegion, q.retryCount = true, fid, 0
		q.retryAt = now + q.cfg.RetryTimeout
		return
	}
	if now < q.retryAt {
		return
	}
	exhausted := q.retryCount >= q.cfg.RetryBudget
	if !exhausted {
		q.retryCount++
	}
	q.retryAt = now + q.cfg.RetryTimeout<<uint(q.retryCount)
	for m := 0; m < q.cfg.NumMCs; m++ {
		if m == q.cfg.ID || (q.bdryAcks[fid]>>uint(m))&1 != 0 {
			continue
		}
		if exhausted && q.sinks.OnPeerTimeout != nil {
			q.sinks.OnPeerTimeout(m)
		}
		q.sinks.Send(noc.Message{Kind: noc.MsgBdryReplay, Region: fid, From: q.cfg.ID, To: m})
		q.Retries++
		if q.probe != nil {
			q.probe.Emit(probe.Event{Kind: probe.FabricRetry, Cycle: now,
				Core: -1, MC: q.cfg.ID, Region: fid, Arg: uint64(q.retryCount)})
		}
	}
}

// Reannounce re-broadcasts a boundary replay for every uncommitted region
// this controller has received, soliciting fresh ACKs from every peer. The
// power-failure drain runs one synchronous Reannounce round (exchange
// delivers immediately, on battery power) before the flush verdicts when a
// fault injector was attached: it heals ACKs the faulty fabric dropped, so
// every controller's view of which boundaries are global is symmetric again
// — exactly the fault-free invariant the drain protocol assumes.
func (q *Queue) Reannounce(exchange func(m noc.Message)) {
	if q.cfg.Mode != Gated {
		return
	}
	regions := make([]uint64, 0, len(q.bdryRcvd))
	for r := range q.bdryRcvd {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, r := range regions {
		for m := 0; m < q.cfg.NumMCs; m++ {
			if m != q.cfg.ID {
				exchange(noc.Message{Kind: noc.MsgBdryReplay, Region: r, From: q.cfg.ID, To: m})
			}
		}
	}
}

// Tick advances the queue one cycle.
func (q *Queue) Tick(now uint64) {
	if q.cfg.Mode == FIFO {
		q.tickFIFO(now)
		return
	}
	if q.retryEnabled {
		// The retransmission timer is control-plane logic, independent of
		// the PM write port — this branch is the persist path's entire
		// fault-free overhead.
		q.tickRetry(now)
	}
	q.tickGated(now)
}

func (q *Queue) tickFIFO(now uint64) {
	if now < q.busyUntil || len(q.entries) == 0 {
		return
	}
	e := q.entries[0]
	q.entries = q.entries[1:]
	q.writePM(e)
	q.busyUntil = now + q.cfg.PMWriteInterval + q.cfg.PMWriteExtra
}

// tickGated advances the LRPO flush pipeline. The flush ID walks regions in
// order; region r's entries flush to PM once r is globally confirmed (its
// boundary reached every controller — canFlush) and every older region's
// local entries are already flushed (the serial walk guarantees this). The
// controller does not wait for other controllers' flush progress: once a
// region is boundary-confirmed it is guaranteed durable — its remaining
// entries sit in battery-backed WPQs that the §IV-F drain protocol flushes
// even across a power failure — so per-controller flushing pipelines across
// regions and the ACK latency stays completely off the critical path, which
// is what lets LRPO hide the persistence latency (§III-B). Flush-ACKs are
// still exchanged as the paper describes; they serve as bookkeeping (and
// statistics) rather than as a flush precondition.
func (q *Queue) tickGated(now uint64) {
	if now < q.busyUntil {
		return
	}
	// Advance through committable regions. Regions with no local entries
	// are pure register increments, so several can retire per cycle (the
	// fast-forward bound models the flush-ID update logic's throughput);
	// flushing a data entry occupies the PM write port and ends the turn.
	for hop := 0; hop < 4; hop++ {
		fid := q.flushID
		if !q.canFlush(fid) {
			break
		}
		if i := q.findRegion(fid); i >= 0 {
			e := q.entries[i]
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			q.writePM(e)
			q.busyUntil = now + q.cfg.PMWriteInterval
			return
		}
		// Locally complete: announce and advance to the next region.
		for m := 0; m < q.cfg.NumMCs; m++ {
			if m != q.cfg.ID {
				q.sinks.Send(noc.Message{Kind: noc.MsgFlushAck, Region: fid, From: q.cfg.ID, To: m})
			}
		}
		q.commit(fid)
	}
	if q.overflow || q.degraded {
		// Escape path (§IV-D): flush ahead of global confirmation with the
		// pre-image undo-logged, so recovery can revert the write if the
		// region's boundary never becomes global. Overflow mode drains the
		// currently persisting region; degraded mode generalizes it to the
		// oldest entry of any region, which is what lets a degraded
		// controller work off its backlog at PM bandwidth.
		i := -1
		if q.overflow {
			i = q.findRegion(q.flushID)
		}
		if i < 0 && q.degraded && len(q.entries) > 0 {
			i = 0
		}
		if i >= 0 {
			e := q.entries[i]
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			q.undoLog(e.Addr, e.Region)
			if q.probe != nil {
				q.probe.Emit(probe.Event{Kind: probe.WPQUndo, Cycle: now,
					Core: -1, MC: q.cfg.ID, Addr: e.Addr, Arg: uint64(len(q.undoRecs))})
			}
			q.writePM(e)
			q.busyUntil = now + q.cfg.PMWriteInterval + q.cfg.PMWriteExtra + q.cfg.PMWriteInterval
		}
	}
}

// NoEvent is NextEvent's result when the queue has no scheduled activity.
const NoEvent = ^uint64(0)

// NextEvent returns the earliest cycle strictly after now at which Tick
// would do observable work, given no further entry or message arrives. It
// may be conservative (an early tick finds nothing to do and is a pure
// no-op) but never late: every cycle in (now, NextEvent) is provably an
// idle tick with no state change, statistic, or probe event. A queue
// waiting on external input (a boundary, an ACK) reports NoEvent — the
// delivery that unblocks it is another component's event, and the
// scheduler recomputes after every real tick.
func (q *Queue) NextEvent(now uint64) uint64 {
	if q.cfg.Mode == FIFO {
		if len(q.entries) == 0 {
			return NoEvent
		}
		return laterOf(now+1, q.busyUntil)
	}
	next := uint64(NoEvent)
	if q.retryEnabled {
		// The retransmission timer acts only when the flush region has its
		// boundary but is missing bdry-ACKs. Arming must happen on the very
		// next tick — the arming cycle fixes the retry deadline — and an
		// armed timer fires at retryAt. Disarming (wantsRetry false with the
		// timer still armed) is cycle-independent: deferring it to the next
		// real tick leaves identical observable state, because flushID is
		// monotonic and a later re-arm always goes through the
		// retryRegion-mismatch branch with the same resulting timer.
		fid := q.flushID
		if q.bdryRcvd[fid] && !q.canFlush(fid) {
			if q.retryArmed && q.retryRegion == fid {
				next = laterOf(now+1, q.retryAt)
			} else {
				return now + 1
			}
		}
	}
	// The gated flush walk has work exactly when the flush region is
	// globally confirmed, or an escape path (overflow, degraded) has an
	// eligible entry; the PM write port gates it by busyUntil.
	if q.canFlush(q.flushID) ||
		(q.overflow && q.findRegion(q.flushID) >= 0) ||
		(q.degraded && len(q.entries) > 0) {
		if ev := laterOf(now+1, q.busyUntil); ev < next {
			next = ev
		}
	}
	return next
}

func laterOf(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func (q *Queue) findRegion(r uint64) int {
	for i := range q.entries {
		if q.entries[i].Region == r {
			return i
		}
	}
	return -1
}

func (q *Queue) writePM(e Entry) {
	q.sinks.PMWrite(e.Addr, e.Val)
	q.Flushed++
	if q.sinks.OnFlush != nil {
		q.sinks.OnFlush(e)
	}
}

// Undo-log layout in PM: header word (record count) followed by
// (address, old value) pairs. The log is written before the data (write
// ahead), and invalidated by zeroing the header when its region commits.
func (q *Queue) undoBase() uint64 { return mem.UndoLogAddr(q.cfg.ID, 0) }

func (q *Queue) undoLog(addr, region uint64) {
	old := q.sinks.PMRead(addr)
	base := q.undoBase()
	rec := base + 8 + uint64(len(q.undoRecs))*16
	q.sinks.PMWrite(rec, addr)
	q.sinks.PMWrite(rec+8, old)
	q.undoRecs = append(q.undoRecs, undoRec{addr: addr, old: old, region: region})
	q.sinks.PMWrite(base, uint64(len(q.undoRecs)))
	q.UndoWrites++
}

func (q *Queue) commit(fid uint64) {
	if len(q.undoRecs) > 0 {
		// The region completed: its undo records are obsolete. Degraded
		// mode may have eager-flushed later regions too — their records
		// must stay live, so the surviving tail is compacted to the log
		// head before the header shrinks.
		keep := q.undoRecs[:0]
		for _, r := range q.undoRecs {
			if r.region > fid {
				keep = append(keep, r)
			}
		}
		if len(keep) == 0 {
			q.sinks.PMWrite(q.undoBase(), 0)
		} else if len(keep) != len(q.undoRecs) {
			base := q.undoBase()
			for i, r := range keep {
				rec := base + 8 + uint64(i)*16
				q.sinks.PMWrite(rec, r.addr)
				q.sinks.PMWrite(rec+8, r.old)
			}
			q.sinks.PMWrite(base, uint64(len(keep)))
		}
		q.undoRecs = keep
	}
	delete(q.bdryRcvd, fid)
	delete(q.bdryAcks, fid)
	delete(q.flushAcks, fid)
	q.flushID++
	q.Committed++
}

// DrainStep implements one round of the controller side of the power-failure
// protocol (§IV-F): with cores dead and in-flight MC↔MC ACKs delivered, it
// flushes the entries of every region whose boundary provably reached all
// controllers, exchanging ACKs instantly over battery power (exchange must
// deliver a message to its destination queue synchronously). It returns
// whether it made progress; the orchestrator keeps stepping all controllers
// until none does — a flush-ACK from one controller can unblock a commit at
// another.
func (q *Queue) DrainStep(exchange func(m noc.Message)) (progress bool) {
	if q.cfg.Mode != Gated {
		return false
	}
	saved := q.sinks.Send
	q.sinks.Send = exchange
	defer func() { q.sinks.Send = saved }()
	for q.canFlush(q.flushID) {
		fid := q.flushID
		for {
			i := q.findRegion(fid)
			if i < 0 {
				break
			}
			e := q.entries[i]
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			q.writePM(e)
			progress = true
		}
		for m := 0; m < q.cfg.NumMCs; m++ {
			if m != q.cfg.ID {
				exchange(noc.Message{Kind: noc.MsgFlushAck, Region: fid, From: q.cfg.ID, To: m})
			}
		}
		q.commit(fid)
		progress = true
	}
	return progress
}

// Discard drops the remaining entries — the stores of unpersisted regions,
// which "naturally disappear with the power failure" (§III-E). It returns
// how many were dropped.
func (q *Queue) Discard() int {
	n := len(q.entries)
	q.entries = nil
	return n
}

// RecoverUndo rolls back any undo-logged overflow writes whose region never
// committed, reading the log from PM and restoring pre-images in reverse
// order (§IV-D). It returns the number of records rolled back.
func RecoverUndo(mcID int, pmRead func(uint64) uint64, pmWrite func(addr, val uint64)) int {
	base := mem.UndoLogAddr(mcID, 0)
	count := int(pmRead(base))
	for i := count - 1; i >= 0; i-- {
		rec := base + 8 + uint64(i)*16
		addr := pmRead(rec)
		old := pmRead(rec + 8)
		pmWrite(addr, old)
	}
	pmWrite(base, 0)
	return count
}

func (q *Queue) String() string {
	return fmt.Sprintf("wpq[mc%d mode=%d len=%d flushID=%d overflow=%v]",
		q.cfg.ID, q.cfg.Mode, len(q.entries), q.flushID, q.overflow)
}
