// Package wpq models the battery-backed write pending queue that LightWSP
// repurposes as a redo buffer (§III-A), together with the per-controller
// protocol state of lazy region-level persist ordering (§IV-B): the
// persistent flush ID register, boundary bookkeeping, the bdry-ACK /
// flush-ACK exchange, the load-miss CAM search (§IV-H), and the
// deadlock-escape overflow path with undo logging (§IV-D).
//
// Two modes are provided. Gated is LightWSP's: entries are quarantined until
// their region's boundary has reached every controller, then flushed to PM
// strictly in region order. FIFO is the pass-through used by the baseline
// persistence schemes (Capri, PPA, cWSP), which enforce ordering elsewhere
// (core stalls or speculation): entries flush in arrival order at PM write
// bandwidth.
package wpq

import (
	"fmt"

	"lightwsp/internal/mem"
	"lightwsp/internal/noc"
	"lightwsp/internal/probe"
)

// Mode selects the queue's flush discipline.
type Mode int

const (
	// Gated quarantines entries per region and flushes in region order
	// (LightWSP's LRPO).
	Gated Mode = iota
	// FIFO flushes entries in arrival order.
	FIFO
)

// Entry is one 8-byte quarantined store.
type Entry struct {
	Addr, Val uint64
	Region    uint64
	Boundary  bool
	Core      int
	// Born is the cycle the entry entered the persist path.
	Born uint64
}

// Config parameterizes one controller's queue.
type Config struct {
	// ID is this controller's index; NumMCs the total count.
	ID, NumMCs int
	// Entries is the queue capacity (Table I: 64 × 8 B = 512 B).
	Entries int
	// Mode is the flush discipline.
	Mode Mode
	// PMWriteInterval is the cycles between successive 8-byte PM writes
	// (the PM write-bandwidth model).
	PMWriteInterval uint64
	// PMWriteExtra is added to every PM write; cWSP's in-line undo
	// logging cost (§II-C2) uses it.
	PMWriteExtra uint64
	// FirstRegion is the region ID the flush ID register starts at.
	FirstRegion uint64
}

// Sinks are the callbacks the queue drives.
type Sinks struct {
	// PMWrite persists one word.
	PMWrite func(addr, val uint64)
	// PMRead reads one persisted word (for undo logging).
	PMRead func(addr uint64) uint64
	// Send transmits a protocol message to another controller.
	Send func(m noc.Message)
	// OnFlush is invoked when an entry reaches PM (per-core outstanding
	// accounting); it may be nil.
	OnFlush func(e Entry)
}

// Queue is one memory controller's WPQ plus LRPO protocol state.
type Queue struct {
	cfg   Config
	sinks Sinks

	entries []Entry

	// flushID is the latest unpersisted region (a 2-byte persistent
	// register in real hardware, §IV-B). The paper's hardware encodes
	// region IDs in 16 unused address bits and would compare them with
	// wraparound-aware modular arithmetic; the simulation uses 64-bit IDs
	// directly, which never wrap over any feasible run length, so plain
	// comparisons are exact here.
	flushID uint64

	bdryRcvd  map[uint64]bool
	bdryAcks  map[uint64]int
	flushAcks map[uint64]int

	busyUntil uint64

	// Overflow escape state (§IV-D).
	overflow  bool
	undoCount int

	// probe, when set, receives the queue's internally-timed events (undo
	// logging); the enclosing machine emits the rest (enqueue, flush,
	// overflow transitions) where the global cycle is in scope.
	probe probe.Sink

	// Statistics.
	Flushed      uint64 // entries written to PM
	Committed    uint64 // regions committed at this controller
	CAMHits      uint64 // load-miss WPQ hits (§IV-H)
	CAMSearches  uint64
	Deadlocks    uint64 // overflow-escape activations
	UndoWrites   uint64 // undo-logged PM writes
	FullRejects  uint64 // entries declined because the queue was full
	MaxOccupancy int
}

// New builds a queue.
func New(cfg Config, sinks Sinks) *Queue {
	if cfg.FirstRegion == 0 {
		cfg.FirstRegion = 1
	}
	return &Queue{
		cfg:       cfg,
		sinks:     sinks,
		flushID:   cfg.FirstRegion,
		bdryRcvd:  map[uint64]bool{},
		bdryAcks:  map[uint64]int{},
		flushAcks: map[uint64]int{},
	}
}

// SetProbe attaches an instrumentation sink (nil detaches).
func (q *Queue) SetProbe(s probe.Sink) { q.probe = s }

// Len returns the current occupancy.
func (q *Queue) Len() int { return len(q.entries) }

// FlushID returns the latest unpersisted region at this controller.
func (q *Queue) FlushID() uint64 { return q.flushID }

// InOverflow reports whether the deadlock-escape path is active.
func (q *Queue) InOverflow() bool { return q.overflow }

// Empty reports whether no entries are pending.
func (q *Queue) Empty() bool { return len(q.entries) == 0 }

// Search performs the CAM lookup of §IV-H for an LLC load miss: it reports
// whether addr has a quarantined entry (whose value is newer than PM's).
func (q *Queue) Search(addr uint64) bool {
	q.CAMSearches++
	for i := range q.entries {
		if q.entries[i].Addr == addr {
			q.CAMHits++
			return true
		}
	}
	return false
}

// recordBoundary notes that region r's boundary reached this controller and
// acknowledges it to every other controller.
func (q *Queue) recordBoundary(r uint64) {
	if q.bdryRcvd[r] {
		return
	}
	q.bdryRcvd[r] = true
	for m := 0; m < q.cfg.NumMCs; m++ {
		if m != q.cfg.ID {
			q.sinks.Send(noc.Message{Kind: noc.MsgBdryAck, Region: r, From: q.cfg.ID, To: m})
		}
	}
	if q.overflow && r == q.flushID {
		// The awaited boundary arrived; the escape path ends and the
		// region completes through the normal protocol.
		q.overflow = false
	}
}

// AcceptControl ingests a boundary replica that carries no data (delivered
// to a non-home controller). It always succeeds: control messages need no
// queue slot.
func (q *Queue) AcceptControl(region uint64) {
	if q.cfg.Mode == Gated {
		q.recordBoundary(region)
	}
}

// Accept tries to ingest a data entry. false means the persist-path channel
// must retry later (queue full, or overflow mode declining other regions'
// stores).
func (q *Queue) Accept(e Entry) bool {
	full := len(q.entries) >= q.cfg.Entries
	if q.cfg.Mode == Gated && full && !q.bdryRcvd[q.flushID] && !q.overflow {
		// Deadlock: the queue is full and cannot receive the boundary
		// its oldest entries wait for (§IV-D).
		q.overflow = true
		q.Deadlocks++
	}
	if q.cfg.Mode == Gated && q.overflow {
		// §IV-D: during overflow, only the currently persisting
		// region's stores are accepted — and those are accepted even
		// beyond capacity ("exceptionally lets the WPQ overflow"),
		// since the escape path is actively draining them with their
		// pre-images undo-logged. In particular the region's boundary
		// must be able to enter, or the system could never leave
		// overflow. The excess is bounded by the compiler's per-region
		// store threshold.
		if e.Region != q.flushID {
			q.FullRejects++
			return false
		}
	} else if full {
		q.FullRejects++
		return false
	}
	q.entries = append(q.entries, e)
	if len(q.entries) > q.MaxOccupancy {
		q.MaxOccupancy = len(q.entries)
	}
	if e.Boundary && q.cfg.Mode == Gated {
		q.recordBoundary(e.Region)
	}
	return true
}

// OnMessage ingests a protocol message from another controller.
func (q *Queue) OnMessage(m noc.Message) {
	if q.cfg.Mode != Gated {
		return
	}
	if m.Region < q.flushID {
		return // stale bookkeeping for an already-committed region
	}
	switch m.Kind {
	case noc.MsgBdryAck:
		q.bdryAcks[m.Region]++
	case noc.MsgFlushAck:
		q.flushAcks[m.Region]++
	case noc.MsgBoundary:
		q.recordBoundary(m.Region)
	}
}

// canFlush reports whether region r's quarantine may open: its boundary
// reached this controller and every other controller acknowledged it.
func (q *Queue) canFlush(r uint64) bool {
	return q.bdryRcvd[r] && q.bdryAcks[r] >= q.cfg.NumMCs-1
}

// Tick advances the queue one cycle.
func (q *Queue) Tick(now uint64) {
	if q.cfg.Mode == FIFO {
		q.tickFIFO(now)
		return
	}
	q.tickGated(now)
}

func (q *Queue) tickFIFO(now uint64) {
	if now < q.busyUntil || len(q.entries) == 0 {
		return
	}
	e := q.entries[0]
	q.entries = q.entries[1:]
	q.writePM(e)
	q.busyUntil = now + q.cfg.PMWriteInterval + q.cfg.PMWriteExtra
}

// tickGated advances the LRPO flush pipeline. The flush ID walks regions in
// order; region r's entries flush to PM once r is globally confirmed (its
// boundary reached every controller — canFlush) and every older region's
// local entries are already flushed (the serial walk guarantees this). The
// controller does not wait for other controllers' flush progress: once a
// region is boundary-confirmed it is guaranteed durable — its remaining
// entries sit in battery-backed WPQs that the §IV-F drain protocol flushes
// even across a power failure — so per-controller flushing pipelines across
// regions and the ACK latency stays completely off the critical path, which
// is what lets LRPO hide the persistence latency (§III-B). Flush-ACKs are
// still exchanged as the paper describes; they serve as bookkeeping (and
// statistics) rather than as a flush precondition.
func (q *Queue) tickGated(now uint64) {
	if now < q.busyUntil {
		return
	}
	// Advance through committable regions. Regions with no local entries
	// are pure register increments, so several can retire per cycle (the
	// fast-forward bound models the flush-ID update logic's throughput);
	// flushing a data entry occupies the PM write port and ends the turn.
	for hop := 0; hop < 4; hop++ {
		fid := q.flushID
		if !q.canFlush(fid) {
			break
		}
		if i := q.findRegion(fid); i >= 0 {
			e := q.entries[i]
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			q.writePM(e)
			q.busyUntil = now + q.cfg.PMWriteInterval
			return
		}
		// Locally complete: announce and advance to the next region.
		for m := 0; m < q.cfg.NumMCs; m++ {
			if m != q.cfg.ID {
				q.sinks.Send(noc.Message{Kind: noc.MsgFlushAck, Region: fid, From: q.cfg.ID, To: m})
			}
		}
		q.commit(fid)
	}
	if q.overflow {
		// Escape path: flush the oldest region's entries with their
		// pre-images undo-logged, so recovery can revert them if the
		// boundary never arrives (§IV-D).
		if i := q.findRegion(q.flushID); i >= 0 {
			e := q.entries[i]
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			q.undoLog(e.Addr)
			if q.probe != nil {
				q.probe.Emit(probe.Event{Kind: probe.WPQUndo, Cycle: now,
					Core: -1, MC: q.cfg.ID, Addr: e.Addr, Arg: uint64(q.undoCount)})
			}
			q.writePM(e)
			q.busyUntil = now + q.cfg.PMWriteInterval + q.cfg.PMWriteExtra + q.cfg.PMWriteInterval
		}
	}
}

func (q *Queue) findRegion(r uint64) int {
	for i := range q.entries {
		if q.entries[i].Region == r {
			return i
		}
	}
	return -1
}

func (q *Queue) writePM(e Entry) {
	q.sinks.PMWrite(e.Addr, e.Val)
	q.Flushed++
	if q.sinks.OnFlush != nil {
		q.sinks.OnFlush(e)
	}
}

// Undo-log layout in PM: header word (record count) followed by
// (address, old value) pairs. The log is written before the data (write
// ahead), and invalidated by zeroing the header when its region commits.
func (q *Queue) undoBase() uint64 { return mem.UndoLogAddr(q.cfg.ID, 0) }

func (q *Queue) undoLog(addr uint64) {
	old := q.sinks.PMRead(addr)
	base := q.undoBase()
	rec := base + 8 + uint64(q.undoCount)*16
	q.sinks.PMWrite(rec, addr)
	q.sinks.PMWrite(rec+8, old)
	q.undoCount++
	q.sinks.PMWrite(base, uint64(q.undoCount))
	q.UndoWrites++
}

func (q *Queue) commit(fid uint64) {
	if q.undoCount > 0 {
		// The region completed: its undo records are obsolete.
		q.sinks.PMWrite(q.undoBase(), 0)
		q.undoCount = 0
	}
	delete(q.bdryRcvd, fid)
	delete(q.bdryAcks, fid)
	delete(q.flushAcks, fid)
	q.flushID++
	q.Committed++
}

// DrainStep implements one round of the controller side of the power-failure
// protocol (§IV-F): with cores dead and in-flight MC↔MC ACKs delivered, it
// flushes the entries of every region whose boundary provably reached all
// controllers, exchanging ACKs instantly over battery power (exchange must
// deliver a message to its destination queue synchronously). It returns
// whether it made progress; the orchestrator keeps stepping all controllers
// until none does — a flush-ACK from one controller can unblock a commit at
// another.
func (q *Queue) DrainStep(exchange func(m noc.Message)) (progress bool) {
	if q.cfg.Mode != Gated {
		return false
	}
	saved := q.sinks.Send
	q.sinks.Send = exchange
	defer func() { q.sinks.Send = saved }()
	for q.canFlush(q.flushID) {
		fid := q.flushID
		for {
			i := q.findRegion(fid)
			if i < 0 {
				break
			}
			e := q.entries[i]
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			q.writePM(e)
			progress = true
		}
		for m := 0; m < q.cfg.NumMCs; m++ {
			if m != q.cfg.ID {
				exchange(noc.Message{Kind: noc.MsgFlushAck, Region: fid, From: q.cfg.ID, To: m})
			}
		}
		q.commit(fid)
		progress = true
	}
	return progress
}

// Discard drops the remaining entries — the stores of unpersisted regions,
// which "naturally disappear with the power failure" (§III-E). It returns
// how many were dropped.
func (q *Queue) Discard() int {
	n := len(q.entries)
	q.entries = nil
	return n
}

// RecoverUndo rolls back any undo-logged overflow writes whose region never
// committed, reading the log from PM and restoring pre-images in reverse
// order (§IV-D). It returns the number of records rolled back.
func RecoverUndo(mcID int, pmRead func(uint64) uint64, pmWrite func(addr, val uint64)) int {
	base := mem.UndoLogAddr(mcID, 0)
	count := int(pmRead(base))
	for i := count - 1; i >= 0; i-- {
		rec := base + 8 + uint64(i)*16
		addr := pmRead(rec)
		old := pmRead(rec + 8)
		pmWrite(addr, old)
	}
	pmWrite(base, 0)
	return count
}

func (q *Queue) String() string {
	return fmt.Sprintf("wpq[mc%d mode=%d len=%d flushID=%d overflow=%v]",
		q.cfg.ID, q.cfg.Mode, len(q.entries), q.flushID, q.overflow)
}
