package wpq

import (
	"testing"

	"lightwsp/internal/mem"
	"lightwsp/internal/noc"
)

// rpair is the pair fixture with configurable retry knobs and a message
// filter, for exercising the reliable-delivery machinery directly.
type rpair struct {
	pm   *mem.Image
	q    [2]*Queue
	net  []noc.Message
	drop func(m noc.Message) bool // true = the fabric loses the message
}

func newRPair(t *testing.T, cfg Config) *rpair {
	t.Helper()
	p := &rpair{pm: mem.NewImage()}
	for i := 0; i < 2; i++ {
		c := cfg
		c.ID, c.NumMCs = i, 2
		if c.Entries == 0 {
			c.Entries = 8
		}
		c.Mode, c.PMWriteInterval = Gated, 1
		p.q[i] = New(c, Sinks{
			PMWrite: func(a, v uint64) { p.pm.Write(a, v) },
			PMRead:  func(a uint64) uint64 { return p.pm.Read(a) },
			Send: func(m noc.Message) {
				if p.drop != nil && p.drop(m) {
					return
				}
				p.net = append(p.net, m)
			},
		})
		p.q[i].EnableRetry()
	}
	return p
}

func (p *rpair) pump(now uint64) {
	msgs := p.net
	p.net = nil
	for _, m := range msgs {
		p.q[m.To].OnMessage(now, m)
	}
	for i := range p.q {
		p.q[i].Tick(now)
	}
}

func (p *rpair) run(from, to uint64) {
	for c := from; c <= to; c++ {
		p.pump(c)
	}
}

// TestRetryHealsDroppedAck drops the first bdry-ACK from MC1 and verifies
// the retransmission timer re-solicits it: MC0 sends a boundary replay after
// RetryTimeout, MC1 re-ACKs, and the region flushes.
func TestRetryHealsDroppedAck(t *testing.T) {
	p := newRPair(t, Config{RetryTimeout: 10, RetryBudget: 3})
	dropped := false
	p.drop = func(m noc.Message) bool {
		if m.Kind == noc.MsgBdryAck && m.From == 1 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	p.q[0].Accept(Entry{Addr: 0x100, Val: 7, Region: 1})
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 1, Region: 1, Boundary: true})
	p.q[1].AcceptControl(1)
	p.run(0, 100)
	if !dropped {
		t.Fatal("fixture never dropped the ACK")
	}
	if p.q[0].Retries == 0 {
		t.Fatal("no boundary replay retransmitted")
	}
	if p.pm.Read(0x100) != 7 {
		t.Fatal("region never flushed: the replay did not heal the dropped ACK")
	}
	if p.q[0].FlushID() != 2 || p.q[1].FlushID() != 2 {
		t.Fatalf("flush IDs = %d,%d want 2,2", p.q[0].FlushID(), p.q[1].FlushID())
	}
}

// TestRetryBudgetExhaustionReportsPeer blackholes every ACK and replay reply
// from MC1 and verifies that after the retry budget is spent, MC0 reports the
// silent peer via OnPeerTimeout — and keeps replaying at maximum backoff
// rather than going quiet.
func TestRetryBudgetExhaustionReportsPeer(t *testing.T) {
	p := newRPair(t, Config{RetryTimeout: 4, RetryBudget: 2})
	var timeouts []int
	p.q[0].sinks.OnPeerTimeout = func(peer int) { timeouts = append(timeouts, peer) }
	p.drop = func(m noc.Message) bool { return m.From == 1 } // MC1 is mute
	p.q[0].Accept(Entry{Addr: 0x100, Val: 7, Region: 1})
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 1, Region: 1, Boundary: true})
	p.q[1].AcceptControl(1)
	p.run(0, 400)
	if len(timeouts) == 0 {
		t.Fatal("retry budget exhaustion never reported the silent peer")
	}
	for _, peer := range timeouts {
		if peer != 1 {
			t.Fatalf("reported peer %d, want 1", peer)
		}
	}
	retriesSoFar := p.q[0].Retries
	if retriesSoFar < uint64(3) {
		t.Fatalf("Retries = %d, want at least budget+1 rounds", retriesSoFar)
	}
	p.run(401, 2000)
	if p.q[0].Retries <= retriesSoFar {
		t.Fatal("replaying stopped after budget exhaustion; delivery would never succeed")
	}
	// The region must still be quarantined: no ACK ever arrived.
	if p.pm.Read(0x100) != 0 {
		t.Fatal("region flushed without any peer ACK")
	}
}

// TestDuplicateAckSuppressed delivers the same bdry-ACK twice and checks the
// second is absorbed idempotently.
func TestDuplicateAckSuppressed(t *testing.T) {
	p := newRPair(t, Config{RetryTimeout: 50, RetryBudget: 3})
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 1, Region: 1, Boundary: true})
	ack := noc.Message{Kind: noc.MsgBdryAck, Region: 1, From: 1, To: 0}
	p.q[0].OnMessage(5, ack)
	p.q[0].OnMessage(6, ack)
	if p.q[0].DupSuppressed != 1 {
		t.Fatalf("DupSuppressed = %d, want 1", p.q[0].DupSuppressed)
	}
	// The duplicate changed nothing: the region is exactly confirmed.
	if !p.q[0].canFlush(1) {
		t.Fatal("single ACK from the only peer should confirm the region")
	}
}

// TestReplayReACKsHeldAndCommittedRegions verifies the receiver side of the
// replay protocol: a controller re-ACKs a replay iff it has the boundary —
// including after the region committed locally — and stays silent otherwise,
// because a replay must never create boundary knowledge.
func TestReplayReACKsHeldAndCommittedRegions(t *testing.T) {
	p := newRPair(t, Config{RetryTimeout: 50, RetryBudget: 3})
	// Commit region 1 everywhere.
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 1, Region: 1, Boundary: true})
	p.q[1].AcceptControl(1)
	p.run(0, 40)
	if p.q[1].FlushID() != 2 {
		t.Fatalf("flushID = %d, want 2", p.q[1].FlushID())
	}
	// Replay for the committed region: must re-ACK.
	p.net = nil
	p.q[1].OnMessage(41, noc.Message{Kind: noc.MsgBdryReplay, Region: 1, From: 0, To: 1})
	if len(p.net) != 1 || p.net[0].Kind != noc.MsgBdryAck || p.net[0].Region != 1 || p.net[0].To != 0 {
		t.Fatalf("committed-region replay reply = %v, want one bdry-ACK to 0", p.net)
	}
	// Replay for a region whose boundary never arrived: must stay silent.
	p.net = nil
	p.q[1].OnMessage(42, noc.Message{Kind: noc.MsgBdryReplay, Region: 7, From: 0, To: 1})
	if len(p.net) != 0 {
		t.Fatalf("replay for an unseen boundary produced %v; replays must not create knowledge", p.net)
	}
	// Held-but-uncommitted region: must re-ACK.
	p.q[1].AcceptControl(3)
	p.net = nil
	p.q[1].OnMessage(43, noc.Message{Kind: noc.MsgBdryReplay, Region: 3, From: 0, To: 1})
	if len(p.net) != 1 || p.net[0].Kind != noc.MsgBdryAck || p.net[0].Region != 3 {
		t.Fatalf("held-region replay reply = %v, want one bdry-ACK", p.net)
	}
}

// TestDegradedEagerPersistUndoAndCompaction drives a degraded queue: entries
// of any region flush eagerly with undo records; committing a region retires
// only that region's records; recovery rolls back the never-confirmed rest.
func TestDegradedEagerPersistUndoAndCompaction(t *testing.T) {
	p := newRPair(t, Config{RetryTimeout: 50, RetryBudget: 3})
	p.pm.Write(0x10, 0xAA)
	p.pm.Write(0x20, 0xBB)
	p.q[0].SetDegraded()
	if !p.q[0].Degraded() {
		t.Fatal("Degraded() false after SetDegraded")
	}
	p.q[0].Accept(Entry{Addr: 0x10, Val: 1, Region: 1})
	p.q[0].Accept(Entry{Addr: 0x20, Val: 2, Region: 2})
	p.run(0, 20)
	if p.pm.Read(0x10) != 1 || p.pm.Read(0x20) != 2 {
		t.Fatalf("degraded mode did not eager-flush: %#x %#x", p.pm.Read(0x10), p.pm.Read(0x20))
	}
	if p.q[0].UndoWrites != 2 {
		t.Fatalf("UndoWrites = %d, want 2", p.q[0].UndoWrites)
	}
	// Region 1 becomes globally confirmed and commits; its undo record
	// retires but region 2's must survive the log compaction.
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 1, Region: 1, Boundary: true})
	p.q[1].AcceptControl(1)
	p.run(21, 80)
	if p.q[0].FlushID() != 2 {
		t.Fatalf("flushID = %d, want 2", p.q[0].FlushID())
	}
	if got := p.pm.Read(mem.UndoLogAddr(0, 0)); got != 1 {
		t.Fatalf("undo log count after commit = %d, want 1 (region 2's record)", got)
	}
	// Power failure now: recovery must revert region 2's eager write only.
	n := RecoverUndo(0, p.pm.Read, func(a, v uint64) { p.pm.Write(a, v) })
	if n != 1 {
		t.Fatalf("rolled back %d records, want 1", n)
	}
	if p.pm.Read(0x10) != 1 {
		t.Fatal("committed region's data was rolled back")
	}
	if p.pm.Read(0x20) != 0xBB {
		t.Fatalf("unconfirmed region's pre-image not restored: %#x", p.pm.Read(0x20))
	}
}

// TestBrokenDupAcksPrematureFlush proves the seeded bug is a real torn-region
// hazard: with counting ACK bookkeeping and three controllers, two ACKs from
// the same peer confirm a region that a third controller never acknowledged.
// The fixed per-peer-set bookkeeping absorbs the duplicate and keeps waiting.
func TestBrokenDupAcksPrematureFlush(t *testing.T) {
	mk := func(broken bool) *Queue {
		pm := mem.NewImage()
		return New(Config{ID: 0, NumMCs: 3, Entries: 8, Mode: Gated,
			PMWriteInterval: 1, BrokenDupAcks: broken},
			Sinks{
				PMWrite: func(a, v uint64) { pm.Write(a, v) },
				PMRead:  pm.Read,
				Send:    func(noc.Message) {},
			})
	}
	ack := noc.Message{Kind: noc.MsgBdryAck, Region: 1, From: 1, To: 0}

	q := mk(true)
	q.Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 1, Region: 1, Boundary: true})
	q.OnMessage(0, ack)
	q.OnMessage(1, ack) // duplicate from the same peer double-counts
	if !q.canFlush(1) {
		t.Fatal("BrokenDupAcks did not let duplicates confirm the region")
	}

	q = mk(false)
	q.Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 1, Region: 1, Boundary: true})
	q.OnMessage(0, ack)
	q.OnMessage(1, ack)
	if q.canFlush(1) {
		t.Fatal("fixed bookkeeping confirmed a region missing a peer's ACK")
	}
	if q.DupSuppressed != 1 {
		t.Fatalf("DupSuppressed = %d, want 1", q.DupSuppressed)
	}
	q.OnMessage(2, noc.Message{Kind: noc.MsgBdryAck, Region: 1, From: 2, To: 0})
	if !q.canFlush(1) {
		t.Fatal("region not confirmed after every peer acknowledged")
	}
}

// TestOverflowLifecycle exercises the §IV-D deadlock-escape state machine
// directly: overflow turns on exactly once per episode, the Deadlocks and
// UndoWrites counters track it, and the awaited boundary's arrival ends it.
func TestOverflowLifecycle(t *testing.T) {
	p := newPair(t, 2)
	p.q[0].Accept(Entry{Addr: 0x10, Val: 1, Region: 1})
	p.q[0].Accept(Entry{Addr: 0x18, Val: 2, Region: 1})
	if p.q[0].InOverflow() {
		t.Fatal("overflow before any full reject")
	}
	p.q[0].Accept(Entry{Addr: 0x20, Val: 3, Region: 2})
	if !p.q[0].InOverflow() || p.q[0].Deadlocks != 1 {
		t.Fatalf("overflow=%v deadlocks=%d after trigger", p.q[0].InOverflow(), p.q[0].Deadlocks)
	}
	// Repeated rejects during the same episode must not re-count.
	p.q[0].Accept(Entry{Addr: 0x28, Val: 4, Region: 2})
	if p.q[0].Deadlocks != 1 {
		t.Fatalf("Deadlocks = %d, want 1 per episode", p.q[0].Deadlocks)
	}
	p.run(0, 10) // escape path drains region 1 with undo logging
	if p.q[0].UndoWrites == 0 {
		t.Fatal("escape path flushed without undo logging")
	}
	// The awaited boundary arrives: the episode ends immediately.
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 9, Region: 1, Boundary: true})
	if p.q[0].InOverflow() {
		t.Fatal("overflow persisted past the awaited boundary's arrival")
	}
	p.q[1].AcceptControl(1)
	p.run(11, 80)
	if p.q[0].FlushID() != 2 {
		t.Fatalf("flushID = %d after normal completion", p.q[0].FlushID())
	}
}
