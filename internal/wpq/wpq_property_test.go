package wpq

import (
	"math/rand"
	"testing"

	"lightwsp/internal/mem"
	"lightwsp/internal/noc"
)

// TestGatedPrefixPropertyRandomized drives a 2-controller gated WPQ pair
// with randomized store streams from several "cores" and verifies, at a
// random power-failure point, the central redo-buffer property: the set of
// regions whose stores reached PM is exactly a prefix of the region
// sequence (DESIGN.md invariant 1), and a region's stores are in PM
// all-or-nothing.
func TestGatedPrefixPropertyRandomized(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		p := newPair(t, 8+r.Intn(16))

		// Build a random region schedule: regions 1..N, each with 1..6
		// stores to random addresses, interleaved across two cores with
		// NUMA-skewed delivery order but per-region in-order arrival.
		type ev struct {
			mc    int
			e     Entry
			ctl   bool
			after int // earliest step it may be delivered
		}
		var evs []ev
		nRegions := 3 + r.Intn(8)
		step := 0
		regionStores := map[uint64][]uint64{}
		for reg := uint64(1); reg <= uint64(nRegions); reg++ {
			n := 1 + r.Intn(6)
			for i := 0; i < n; i++ {
				addr := uint64(0x1000 + 8*r.Intn(512))
				mc := r.Intn(2)
				evs = append(evs, ev{mc: mc, e: Entry{Addr: addr, Val: reg*1000 + uint64(i), Region: reg}, after: step})
				regionStores[reg] = append(regionStores[reg], addr)
				step++
			}
			// Boundary: data copy at a random home, control at the other.
			home := r.Intn(2)
			bAddr := mem.CkptAddr(0, mem.CkptSlotPC)
			evs = append(evs, ev{mc: home, e: Entry{Addr: bAddr, Val: reg, Region: reg, Boundary: true}, after: step})
			evs = append(evs, ev{mc: 1 - home, ctl: true, e: Entry{Region: reg}, after: step})
			step++
		}

		// Deliver with random skew: each event delayed by a random number
		// of pump steps past its earliest point, preserving per-(region)
		// order because `after` is monotone per region and we only ever
		// deliver in `after+jitter` order per controller... simpler: we
		// deliver events in order but pump a random number of cycles
		// between deliveries, and cut power at a random moment.
		cut := r.Intn(len(evs) + 1)
		now := uint64(0)
		for i, e := range evs {
			if i == cut {
				break
			}
			if e.ctl {
				p.q[e.mc].AcceptControl(e.e.Region)
			} else {
				for !p.q[e.mc].Accept(e.e) {
					now++
					p.pump(now)
				}
			}
			for k := 0; k < r.Intn(4); k++ {
				now++
				p.pump(now)
			}
		}
		// Power failure: drain committable, discard the rest.
		exchange := func(m noc.Message) { p.q[m.To].OnMessage(now, m) }
		for _, m := range p.net {
			p.q[m.To].OnMessage(now, m)
		}
		p.net = nil
		for {
			progress := false
			for i := range p.q {
				progress = p.q[i].DrainStep(exchange) || progress
			}
			if !progress {
				break
			}
		}
		for i := range p.q {
			p.q[i].Discard()
		}

		// Verify: per-region all-or-nothing, and persisted set = prefix.
		persisted := map[uint64]bool{}
		for reg := uint64(1); reg <= uint64(nRegions); reg++ {
			n, total := 0, 0
			seen := map[uint64]uint64{}
			for i, addr := range regionStores[reg] {
				total++
				want := reg*1000 + uint64(i)
				got := p.pm.Read(addr)
				// Later regions may overwrite the address; accept any
				// value from a region ≥ reg as evidence of persistence.
				if got == want || (got/1000) > reg && got != 0 {
					n++
				}
				seen[addr] = got
			}
			_ = seen
			switch {
			case n == total:
				persisted[reg] = true
			case n == 0:
				persisted[reg] = false
			default:
				// Mixed: only legal if every "missing" address was
				// overwritten by a later persisted region — conservative
				// approximation: require the flush IDs to cover reg.
				if p.q[0].FlushID() <= reg && p.q[1].FlushID() <= reg {
					t.Fatalf("trial %d: region %d partially persisted (%d/%d)", trial, reg, n, total)
				}
				persisted[reg] = true
			}
		}
		// Prefix check.
		broken := false
		for reg := uint64(1); reg <= uint64(nRegions); reg++ {
			if !persisted[reg] {
				broken = true
			} else if broken {
				t.Fatalf("trial %d: region %d persisted after an unpersisted predecessor", trial, reg)
			}
		}
	}
}

// TestFIFOModeNeverGates randomly fills a FIFO queue and checks every entry
// reaches PM in arrival order without any boundary traffic.
func TestFIFOModeNeverGates(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pm := mem.NewImage()
	var order []uint64
	q := New(Config{ID: 0, NumMCs: 1, Entries: 8, Mode: FIFO, PMWriteInterval: 1},
		Sinks{
			PMWrite: func(a, v uint64) { pm.Write(a, v) },
			PMRead:  pm.Read,
			Send:    func(noc.Message) {},
			OnFlush: func(e Entry) { order = append(order, e.Val) },
		})
	now := uint64(0)
	for i := 0; i < 100; i++ {
		e := Entry{Addr: uint64(0x1000 + 8*i), Val: uint64(i + 1), Region: uint64(r.Intn(5))}
		for !q.Accept(e) {
			now++
			q.Tick(now)
		}
	}
	for !q.Empty() {
		now++
		q.Tick(now)
	}
	if len(order) != 100 {
		t.Fatalf("flushed %d entries", len(order))
	}
	for i, v := range order {
		if v != uint64(i+1) {
			t.Fatalf("FIFO order broken at %d: %d", i, v)
		}
	}
}
