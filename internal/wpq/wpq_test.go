package wpq

import (
	"testing"

	"lightwsp/internal/mem"
	"lightwsp/internal/noc"
)

// pair wires two gated queues over synchronous message exchange and a shared
// PM image, the standard 2-MC test fixture.
type pair struct {
	pm      *mem.Image
	q       [2]*Queue
	net     []noc.Message // pending async messages
	flushed []Entry
}

func newPair(t *testing.T, entries int) *pair {
	t.Helper()
	p := &pair{pm: mem.NewImage()}
	for i := 0; i < 2; i++ {
		i := i
		p.q[i] = New(Config{
			ID: i, NumMCs: 2, Entries: entries, Mode: Gated, PMWriteInterval: 1,
		}, Sinks{
			PMWrite: func(a, v uint64) { p.pm.Write(a, v) },
			PMRead:  func(a uint64) uint64 { return p.pm.Read(a) },
			Send:    func(m noc.Message) { p.net = append(p.net, m) },
			OnFlush: func(e Entry) { p.flushed = append(p.flushed, e) },
		})
	}
	return p
}

// pump delivers queued messages and ticks both queues.
func (p *pair) pump(now uint64) {
	msgs := p.net
	p.net = nil
	for _, m := range msgs {
		p.q[m.To].OnMessage(now, m)
	}
	for i := range p.q {
		p.q[i].Tick(now)
	}
}

func (p *pair) run(from, to uint64) {
	for c := from; c <= to; c++ {
		p.pump(c)
	}
}

func TestGatedQuarantineUntilBoundary(t *testing.T) {
	p := newPair(t, 8)
	p.q[0].Accept(Entry{Addr: 0x100, Val: 7, Region: 1})
	p.run(0, 50)
	if p.pm.Read(0x100) != 0 {
		t.Fatal("entry flushed before its boundary arrived")
	}
	// Boundary reaches both controllers (data at MC0, control at MC1).
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 42, Region: 1, Boundary: true})
	p.q[1].AcceptControl(1)
	p.run(51, 120)
	if p.pm.Read(0x100) != 7 {
		t.Fatal("entry not flushed after boundary + ACKs")
	}
	if p.q[0].FlushID() != 2 || p.q[1].FlushID() != 2 {
		t.Fatalf("flush IDs = %d,%d want 2,2", p.q[0].FlushID(), p.q[1].FlushID())
	}
}

func TestRegionOrderAcrossMCs(t *testing.T) {
	// Region 2's stores arrive at MC1 before region 1 even has its
	// boundary (NUMA skew): they must not flush until region 1 commits.
	p := newPair(t, 8)
	p.q[1].Accept(Entry{Addr: 0x200, Val: 9, Region: 2})
	p.q[1].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 1, Region: 2, Boundary: true})
	p.q[0].AcceptControl(2)
	p.run(0, 60)
	if p.pm.Read(0x200) != 0 {
		t.Fatal("younger region flushed before older committed (LRPO violation)")
	}
	// Now region 1 arrives and commits; then region 2 may flush.
	p.q[0].Accept(Entry{Addr: 0x100, Val: 5, Region: 1})
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(1, mem.CkptSlotPC), Val: 2, Region: 1, Boundary: true})
	p.q[1].AcceptControl(1)
	p.run(61, 200)
	if p.pm.Read(0x100) != 5 || p.pm.Read(0x200) != 9 {
		t.Fatalf("final PM wrong: %#x %#x", p.pm.Read(0x100), p.pm.Read(0x200))
	}
	if p.q[0].FlushID() != 3 {
		t.Fatalf("flushID = %d, want 3", p.q[0].FlushID())
	}
	// Verify order: region 1's store flushed before region 2's.
	var i1, i2 = -1, -1
	for i, e := range p.flushed {
		if e.Addr == 0x100 {
			i1 = i
		}
		if e.Addr == 0x200 {
			i2 = i
		}
	}
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Fatalf("flush order violated: %v", p.flushed)
	}
}

func TestEmptyRegionCommits(t *testing.T) {
	// A region with no stores at either MC (e.g. all checkpoint slots on
	// one MC) must still commit so the flush ID advances.
	p := newPair(t, 8)
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 1, Region: 1, Boundary: true})
	p.q[1].AcceptControl(1)
	p.run(0, 100)
	if p.q[0].FlushID() != 2 || p.q[1].FlushID() != 2 {
		t.Fatalf("flush IDs = %d,%d", p.q[0].FlushID(), p.q[1].FlushID())
	}
}

func TestSearchCAM(t *testing.T) {
	p := newPair(t, 8)
	p.q[0].Accept(Entry{Addr: 0x300, Val: 1, Region: 1})
	if !p.q[0].Search(0x300) {
		t.Fatal("CAM miss on quarantined entry")
	}
	if p.q[0].Search(0x308) {
		t.Fatal("CAM false positive")
	}
	if p.q[0].CAMHits != 1 || p.q[0].CAMSearches != 2 {
		t.Fatalf("CAM stats = %d/%d", p.q[0].CAMHits, p.q[0].CAMSearches)
	}
}

func TestFullRejectAndDeadlockDetection(t *testing.T) {
	p := newPair(t, 2)
	p.q[0].Accept(Entry{Addr: 0x10, Val: 1, Region: 1})
	p.q[0].Accept(Entry{Addr: 0x18, Val: 2, Region: 1})
	// Full, and no boundary for flushID=1 received: deadlock.
	if p.q[0].Accept(Entry{Addr: 0x20, Val: 3, Region: 2}) {
		t.Fatal("full queue accepted an entry")
	}
	if !p.q[0].InOverflow() {
		t.Fatal("deadlock not detected")
	}
	if p.q[0].Deadlocks != 1 {
		t.Fatalf("Deadlocks = %d", p.q[0].Deadlocks)
	}
}

func TestOverflowEscapeUndoLogsAndRecovers(t *testing.T) {
	p := newPair(t, 2)
	p.pm.Write(0x10, 0xAA) // pre-image
	p.q[0].Accept(Entry{Addr: 0x10, Val: 1, Region: 1})
	p.q[0].Accept(Entry{Addr: 0x18, Val: 2, Region: 1})
	p.q[0].Accept(Entry{Addr: 0x20, Val: 3, Region: 2}) // triggers overflow
	p.run(0, 30)
	// The escape path flushed region 1's entries with undo logging.
	if p.pm.Read(0x10) != 1 || p.pm.Read(0x18) != 2 {
		t.Fatalf("overflow did not flush: %#x %#x", p.pm.Read(0x10), p.pm.Read(0x18))
	}
	if p.q[0].UndoWrites != 2 {
		t.Fatalf("UndoWrites = %d", p.q[0].UndoWrites)
	}
	// Power failure before the boundary arrives: recovery must restore
	// the pre-images.
	n := RecoverUndo(0, p.pm.Read, func(a, v uint64) { p.pm.Write(a, v) })
	if n != 2 {
		t.Fatalf("rolled back %d records", n)
	}
	if p.pm.Read(0x10) != 0xAA || p.pm.Read(0x18) != 0 {
		t.Fatalf("rollback wrong: %#x %#x", p.pm.Read(0x10), p.pm.Read(0x18))
	}
	// Rollback is idempotent once the log is cleared.
	if RecoverUndo(0, p.pm.Read, func(a, v uint64) { p.pm.Write(a, v) }) != 0 {
		t.Fatal("second rollback found records")
	}
}

func TestOverflowCommitClearsUndoLog(t *testing.T) {
	p := newPair(t, 2)
	p.q[0].Accept(Entry{Addr: 0x10, Val: 1, Region: 1})
	p.q[0].Accept(Entry{Addr: 0x18, Val: 2, Region: 1})
	p.q[0].Accept(Entry{Addr: 0x20, Val: 3, Region: 2}) // overflow
	p.run(0, 30)
	// The boundary finally arrives; the region commits normally and the
	// undo log must be invalidated.
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 9, Region: 1, Boundary: true})
	p.q[1].AcceptControl(1)
	p.run(31, 120)
	if p.q[0].FlushID() != 2 {
		t.Fatalf("flushID = %d", p.q[0].FlushID())
	}
	if got := p.pm.Read(mem.UndoLogAddr(0, 0)); got != 0 {
		t.Fatalf("undo log not invalidated: count = %d", got)
	}
	if RecoverUndo(0, p.pm.Read, func(a, v uint64) { p.pm.Write(a, v) }) != 0 {
		t.Fatal("cleared log still rolled back")
	}
	if p.pm.Read(0x10) != 1 {
		t.Fatal("committed data lost")
	}
}

func TestOverflowDeclinesOtherRegions(t *testing.T) {
	p := newPair(t, 2)
	p.q[0].Accept(Entry{Addr: 0x10, Val: 1, Region: 1})
	p.q[0].Accept(Entry{Addr: 0x18, Val: 2, Region: 1})
	p.q[0].Accept(Entry{Addr: 0x20, Val: 3, Region: 2}) // overflow on
	p.run(0, 10)                                        // frees room via escape flush
	if p.q[0].Accept(Entry{Addr: 0x28, Val: 4, Region: 2}) {
		t.Fatal("overflow mode accepted a younger region's store")
	}
	if !p.q[0].Accept(Entry{Addr: 0x30, Val: 5, Region: 1}) {
		t.Fatal("overflow mode declined the persisting region's store")
	}
}

func TestFIFOModeFlushesInArrivalOrder(t *testing.T) {
	pm := mem.NewImage()
	var flushed []uint64
	q := New(Config{ID: 0, NumMCs: 1, Entries: 4, Mode: FIFO, PMWriteInterval: 2},
		Sinks{
			PMWrite: func(a, v uint64) { pm.Write(a, v) },
			PMRead:  pm.Read,
			Send:    func(noc.Message) {},
			OnFlush: func(e Entry) { flushed = append(flushed, e.Addr) },
		})
	q.Accept(Entry{Addr: 0x10, Val: 1, Region: 5})
	q.Accept(Entry{Addr: 0x18, Val: 2, Region: 3})
	for c := uint64(0); c < 10; c++ {
		q.Tick(c)
	}
	if len(flushed) != 2 || flushed[0] != 0x10 || flushed[1] != 0x18 {
		t.Fatalf("FIFO flush order = %v", flushed)
	}
	if pm.Read(0x10) != 1 || pm.Read(0x18) != 2 {
		t.Fatal("FIFO data not in PM")
	}
}

func TestFIFOWriteExtraSlowsFlush(t *testing.T) {
	mk := func(extra uint64) uint64 {
		pm := mem.NewImage()
		q := New(Config{ID: 0, NumMCs: 1, Entries: 16, Mode: FIFO, PMWriteInterval: 2, PMWriteExtra: extra},
			Sinks{PMWrite: func(a, v uint64) { pm.Write(a, v) }, PMRead: pm.Read, Send: func(noc.Message) {}})
		for i := 0; i < 8; i++ {
			q.Accept(Entry{Addr: uint64(i * 8), Val: 1, Region: 1})
		}
		var done uint64
		for c := uint64(0); c < 1000; c++ {
			q.Tick(c)
			if q.Empty() && done == 0 {
				done = c
			}
		}
		return done
	}
	fast, slow := mk(0), mk(30)
	if slow <= fast {
		t.Fatalf("undo-delay did not slow flush: %d vs %d", fast, slow)
	}
}

func TestDrainCommittableOnFailure(t *testing.T) {
	p := newPair(t, 8)
	// Region 1 fully delivered (boundary at both MCs), region 2 only has
	// data, no boundary.
	p.q[0].Accept(Entry{Addr: 0x100, Val: 5, Region: 1})
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 1, Region: 1, Boundary: true})
	p.q[1].AcceptControl(1)
	p.q[1].Accept(Entry{Addr: 0x200, Val: 9, Region: 2})
	// Deliver pending bdry-ACKs synchronously, then drain.
	for _, m := range p.net {
		p.q[m.To].OnMessage(100, m)
	}
	p.net = nil
	exchange := func(m noc.Message) { p.q[m.To].OnMessage(100, m) }
	for {
		progress := false
		for i := range p.q {
			progress = p.q[i].DrainStep(exchange) || progress
		}
		if !progress {
			break
		}
	}
	d0, d1 := p.q[0].Discard(), p.q[1].Discard()
	if p.pm.Read(0x100) != 5 {
		t.Fatal("persisted region lost on failure")
	}
	if p.pm.Read(0x200) != 0 {
		t.Fatal("unpersisted region leaked to PM")
	}
	if d0 != 0 || d1 != 1 {
		t.Fatalf("discarded %d,%d want 0,1", d0, d1)
	}
}

func TestMaxOccupancyTracked(t *testing.T) {
	p := newPair(t, 8)
	for i := 0; i < 5; i++ {
		p.q[0].Accept(Entry{Addr: uint64(i * 8), Val: 1, Region: 1})
	}
	if p.q[0].MaxOccupancy != 5 {
		t.Fatalf("MaxOccupancy = %d", p.q[0].MaxOccupancy)
	}
}

func TestFIFOModeIgnoresControlAndMessages(t *testing.T) {
	pm := mem.NewImage()
	q := New(Config{ID: 0, NumMCs: 2, Entries: 4, Mode: FIFO, PMWriteInterval: 1},
		Sinks{PMWrite: func(a, v uint64) { pm.Write(a, v) }, PMRead: pm.Read,
			Send: func(noc.Message) { t.Fatal("FIFO mode sent a protocol message") }})
	q.AcceptControl(5)
	q.OnMessage(0, noc.Message{Kind: noc.MsgBdryAck, Region: 5, From: 1, To: 0})
	q.Accept(Entry{Addr: 0x10, Val: 1, Region: 5})
	for c := uint64(0); c < 5; c++ {
		q.Tick(c)
	}
	if pm.Read(0x10) != 1 {
		t.Fatal("FIFO flush failed")
	}
}

func TestStaleMessagesIgnored(t *testing.T) {
	p := newPair(t, 8)
	// Commit region 1 fully.
	p.q[0].Accept(Entry{Addr: mem.CkptAddr(0, mem.CkptSlotPC), Val: 1, Region: 1, Boundary: true})
	p.q[1].AcceptControl(1)
	p.run(0, 60)
	if p.q[0].FlushID() != 2 {
		t.Fatalf("flushID = %d", p.q[0].FlushID())
	}
	// A straggler ACK for region 1 must not corrupt bookkeeping.
	p.q[0].OnMessage(61, noc.Message{Kind: noc.MsgFlushAck, Region: 1, From: 1, To: 0})
	p.q[0].OnMessage(61, noc.Message{Kind: noc.MsgBdryAck, Region: 1, From: 1, To: 0})
	p.run(61, 80)
	if p.q[0].FlushID() != 2 {
		t.Fatalf("stale message moved flushID to %d", p.q[0].FlushID())
	}
}
