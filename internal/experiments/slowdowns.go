package experiments

import (
	"lightwsp/internal/baseline"
	"lightwsp/internal/compiler"
	"lightwsp/internal/stats"
	"lightwsp/internal/workload"
)

// Fig7Result reproduces Figure 7: per-application slowdown of Capri, PPA
// and LightWSP over the non-persistent baseline, with per-suite and overall
// geometric means. The paper reports 50.5% / 8.1% / 9.0% average overheads.
type Fig7Result struct {
	Apps []Fig7Row
	// SuiteGeo maps suite → [capri, ppa, lightwsp] geomeans.
	SuiteGeo map[workload.Suite][3]float64
	// OverallGeo is the all-application geomean triple.
	OverallGeo [3]float64
}

// Fig7Row is one application's slowdowns.
type Fig7Row struct {
	Suite                workload.Suite
	Name                 string
	Capri, PPA, LightWSP float64
}

// Fig7 runs the headline comparison.
func Fig7(r *Runner) (*Fig7Result, error) {
	var specs []RunSpec
	for _, p := range workload.Profiles() {
		specs = append(specs, slowdownSpecs(p, baseline.Capri(), compiler.Config{})...)
		specs = append(specs, slowdownSpecs(p, baseline.PPA(), compiler.Config{})...)
		specs = append(specs, slowdownSpecs(p, LightWSP(), compiler.Config{})...)
	}
	if err := r.Prefetch(specs); err != nil {
		return nil, err
	}
	res := &Fig7Result{SuiteGeo: map[workload.Suite][3]float64{}}
	var all [3][]float64
	perSuite := map[workload.Suite]*[3][]float64{}
	for _, p := range workload.Profiles() {
		row := Fig7Row{Suite: p.Suite, Name: p.Name}
		var err error
		if row.Capri, err = r.Slowdown(p, baseline.Capri(), compiler.Config{}); err != nil {
			return nil, err
		}
		if row.PPA, err = r.Slowdown(p, baseline.PPA(), compiler.Config{}); err != nil {
			return nil, err
		}
		if row.LightWSP, err = r.Slowdown(p, LightWSP(), compiler.Config{}); err != nil {
			return nil, err
		}
		res.Apps = append(res.Apps, row)
		if perSuite[p.Suite] == nil {
			perSuite[p.Suite] = &[3][]float64{}
		}
		for i, v := range []float64{row.Capri, row.PPA, row.LightWSP} {
			perSuite[p.Suite][i] = append(perSuite[p.Suite][i], v)
			all[i] = append(all[i], v)
		}
	}
	for s, vals := range perSuite {
		res.SuiteGeo[s] = [3]float64{
			stats.Geomean(vals[0]), stats.Geomean(vals[1]), stats.Geomean(vals[2]),
		}
	}
	res.OverallGeo = [3]float64{
		stats.Geomean(all[0]), stats.Geomean(all[1]), stats.Geomean(all[2]),
	}
	return res, nil
}

func (f *Fig7Result) String() string {
	t := &stats.Table{
		Title:   "Figure 7: slowdown of Capri, PPA and LightWSP vs baseline (Optane memory mode)",
		Columns: []string{"suite", "app", "capri", "ppa", "lightwsp"},
	}
	for _, a := range f.Apps {
		t.Add(string(a.Suite), a.Name, a.Capri, a.PPA, a.LightWSP)
	}
	for _, s := range workload.Suites() {
		g := f.SuiteGeo[s]
		t.Add(string(s), "geomean", g[0], g[1], g[2])
	}
	t.Add("ALL", "geomean", f.OverallGeo[0], f.OverallGeo[1], f.OverallGeo[2])
	return t.String()
}

// Fig9Result reproduces Figure 9: the ideal PSP scheme (no DRAM cache)
// against LightWSP on the memory-intensive applications. The paper reports
// 51.2% vs 3% average, with libquantum up to 260%.
type Fig9Result struct {
	Apps []Fig9Row
	// Geo is the [pspIdeal, lightwsp] geomean pair.
	Geo [2]float64
	// WorstPSP names the application with the largest PSP slowdown.
	WorstPSP string
	WorstVal float64
}

// Fig9Row is one memory-intensive application's pair.
type Fig9Row struct {
	Suite              workload.Suite
	Name               string
	PSPIdeal, LightWSP float64
}

// Fig9 runs the PSP-vs-WSP comparison.
func Fig9(r *Runner) (*Fig9Result, error) {
	var specs []RunSpec
	for _, p := range workload.MemoryIntensiveProfiles() {
		specs = append(specs, slowdownSpecs(p, baseline.PSPIdeal(), compiler.Config{})...)
		specs = append(specs, slowdownSpecs(p, LightWSP(), compiler.Config{})...)
	}
	if err := r.Prefetch(specs); err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	var psp, light []float64
	for _, p := range workload.MemoryIntensiveProfiles() {
		row := Fig9Row{Suite: p.Suite, Name: p.Name}
		var err error
		if row.PSPIdeal, err = r.Slowdown(p, baseline.PSPIdeal(), compiler.Config{}); err != nil {
			return nil, err
		}
		if row.LightWSP, err = r.Slowdown(p, LightWSP(), compiler.Config{}); err != nil {
			return nil, err
		}
		res.Apps = append(res.Apps, row)
		psp = append(psp, row.PSPIdeal)
		light = append(light, row.LightWSP)
		if row.PSPIdeal > res.WorstVal {
			res.WorstVal = row.PSPIdeal
			res.WorstPSP = row.Name
		}
	}
	res.Geo = [2]float64{stats.Geomean(psp), stats.Geomean(light)}
	return res, nil
}

func (f *Fig9Result) String() string {
	t := &stats.Table{
		Title:   "Figure 9: ideal PSP vs LightWSP on memory-intensive applications",
		Columns: []string{"suite", "app", "psp-ideal", "lightwsp"},
	}
	for _, a := range f.Apps {
		t.Add(string(a.Suite), a.Name, a.PSPIdeal, a.LightWSP)
	}
	t.Add("ALL", "geomean", f.Geo[0], f.Geo[1])
	return t.String()
}

// Fig10Result reproduces Figure 10: cWSP vs LightWSP per suite, excluding
// NPB as the paper does ("cWSP does not use it"). Paper: 5.7% vs 8.5%.
type Fig10Result struct {
	Suites []Fig10Row
	// Geo is the [cwsp, lightwsp] overall geomean pair.
	Geo [2]float64
}

// Fig10Row is one suite's pair.
type Fig10Row struct {
	Suite          workload.Suite
	CWSP, LightWSP float64
}

// Fig10 runs the state-of-the-art comparison.
func Fig10(r *Runner) (*Fig10Result, error) {
	var specs []RunSpec
	for _, s := range workload.Suites() {
		if s == workload.NPB {
			continue
		}
		for _, p := range workload.BySuite(s) {
			specs = append(specs, slowdownSpecs(p, baseline.CWSP(), compiler.Config{})...)
			specs = append(specs, slowdownSpecs(p, LightWSP(), compiler.Config{})...)
		}
	}
	if err := r.Prefetch(specs); err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	var allC, allL []float64
	for _, s := range workload.Suites() {
		if s == workload.NPB {
			continue
		}
		var cs, ls []float64
		for _, p := range workload.BySuite(s) {
			c, err := r.Slowdown(p, baseline.CWSP(), compiler.Config{})
			if err != nil {
				return nil, err
			}
			l, err := r.Slowdown(p, LightWSP(), compiler.Config{})
			if err != nil {
				return nil, err
			}
			cs, ls = append(cs, c), append(ls, l)
			allC, allL = append(allC, c), append(allL, l)
		}
		res.Suites = append(res.Suites, Fig10Row{Suite: s, CWSP: stats.Geomean(cs), LightWSP: stats.Geomean(ls)})
	}
	res.Geo = [2]float64{stats.Geomean(allC), stats.Geomean(allL)}
	return res, nil
}

func (f *Fig10Result) String() string {
	t := &stats.Table{
		Title:   "Figure 10: cWSP vs LightWSP (suite geomeans, NPB excluded)",
		Columns: []string{"suite", "cwsp", "lightwsp"},
	}
	for _, s := range f.Suites {
		t.Add(string(s.Suite), s.CWSP, s.LightWSP)
	}
	t.Add("Geomean", f.Geo[0], f.Geo[1])
	return t.String()
}

// Fig8Result reproduces Figure 8: region-level persistence efficiency
// (Eq. (1)) of PPA vs LightWSP per suite. Paper: 89.3% vs 99.9% average.
type Fig8Result struct {
	Suites []Fig8Row
	// Avg is the [ppa, lightwsp] all-application average pair.
	Avg [2]float64
}

// Fig8Row is one suite's efficiency pair (percent).
type Fig8Row struct {
	Suite         workload.Suite
	PPA, LightWSP float64
}

// Fig8 measures persistence efficiency.
func Fig8(r *Runner) (*Fig8Result, error) {
	var specs []RunSpec
	for _, p := range workload.Profiles() {
		specs = append(specs,
			spec(p, baseline.PPA(), compiler.Config{}),
			spec(p, LightWSP(), compiler.Config{}))
	}
	if err := r.Prefetch(specs); err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	var allP, allL []float64
	for _, s := range workload.Suites() {
		var ps, ls []float64
		for _, p := range workload.BySuite(s) {
			pst, err := r.Run(p, baseline.PPA(), compiler.Config{})
			if err != nil {
				return nil, err
			}
			lst, err := r.Run(p, LightWSP(), compiler.Config{})
			if err != nil {
				return nil, err
			}
			ps = append(ps, pst.PersistenceEfficiency())
			ls = append(ls, lst.PersistenceEfficiency())
		}
		allP, allL = append(allP, ps...), append(allL, ls...)
		res.Suites = append(res.Suites, Fig8Row{Suite: s, PPA: stats.Mean(ps), LightWSP: stats.Mean(ls)})
	}
	res.Avg = [2]float64{stats.Mean(allP), stats.Mean(allL)}
	return res, nil
}

func (f *Fig8Result) String() string {
	t := &stats.Table{
		Title:   "Figure 8: region-level persistence efficiency (%), Eq. (1)",
		Columns: []string{"suite", "ppa", "lightwsp"},
	}
	for _, s := range f.Suites {
		t.Add(string(s.Suite), s.PPA, s.LightWSP)
	}
	t.Add("Average", f.Avg[0], f.Avg[1])
	return t.String()
}
