package experiments

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"time"

	"lightwsp/internal/baseline"
	"lightwsp/internal/compiler"
	"lightwsp/internal/machine"
	"lightwsp/internal/workload"
)

// This file benchmarks the cycle loop itself rather than anything the paper
// measures: every workload runs twice on identical systems — once on the
// naive per-cycle reference stepper, once on the event/epoch fast path —
// and the two runs are verified byte-identical before any number is
// reported. No probe sink is attached, so the figures are the honest
// simulation-throughput numbers the experiment harness sees.

// CoreBenchEntry is one workload × scheme cell of the stepper benchmark.
type CoreBenchEntry struct {
	Suite  string `json:"suite"`
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	// Cycles is the simulated cycle count (identical for both steppers).
	Cycles uint64 `json:"cycles"`
	// NaiveWallSec and FastWallSec are the wall-clock seconds of the naive
	// and event/epoch runs.
	NaiveWallSec float64 `json:"naive_wall_sec"`
	FastWallSec  float64 `json:"fast_wall_sec"`
	// NaiveCPS and FastCPS are simulated cycles per wall-clock second.
	NaiveCPS float64 `json:"naive_cycles_per_sec"`
	FastCPS  float64 `json:"fast_cycles_per_sec"`
	// Speedup is NaiveWallSec / FastWallSec.
	Speedup float64 `json:"speedup"`
	// FFRatio is the fraction of simulated cycles the event/epoch scheduler
	// fast-forwarded past instead of ticking.
	FFRatio float64 `json:"fast_forward_ratio"`
	// FFJumps is how many fast-forward jumps the scheduler took.
	FFJumps uint64 `json:"fast_forward_jumps"`
}

// CoreBenchReport is the full stepper benchmark: per-workload entries plus
// the aggregate speedup (geometric mean, the CI guardrail's metric).
type CoreBenchReport struct {
	Entries []CoreBenchEntry `json:"entries"`
	// GeomeanSpeedup is the geometric mean of every entry's speedup.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// CoreBenchProfiles resolves a comma-separated application list against the
// evaluation profiles (empty selects all of them). Names appearing in two
// suites (lbm, namd) select both entries.
func CoreBenchProfiles(names string) ([]workload.Profile, error) {
	if names == "" {
		return workload.Profiles(), nil
	}
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	var out []workload.Profile
	matched := map[string]bool{}
	for _, p := range workload.Profiles() {
		if want[p.Name] {
			out = append(out, p)
			matched[p.Name] = true
		}
	}
	for n := range want {
		if !matched[n] {
			return nil, fmt.Errorf("corebench: unknown application %q", n)
		}
	}
	return out, nil
}

// CoreBench runs every profile under LightWSP and the non-persistent
// baseline on both steppers, verifies the runs byte-identical, and returns
// the timing report. Any observable divergence is an error — a benchmark
// number from a wrong simulation is worse than no number.
func CoreBench(ctx context.Context, profiles []workload.Profile) (*CoreBenchReport, error) {
	rep := &CoreBenchReport{}
	logSpeedup := 0.0
	for _, p := range profiles {
		for _, sch := range []machine.Scheme{LightWSP(), baseline.Baseline()} {
			e, err := coreBenchOne(ctx, p, sch)
			if err != nil {
				return nil, err
			}
			rep.Entries = append(rep.Entries, e)
			logSpeedup += math.Log(e.Speedup)
		}
	}
	if n := len(rep.Entries); n > 0 {
		rep.GeomeanSpeedup = math.Exp(logSpeedup / float64(n))
	}
	return rep, nil
}

// coreBenchOne times one (profile, scheme) cell: naive then fast, equal
// inputs, verified equal outputs.
func coreBenchOne(ctx context.Context, p workload.Profile, sch machine.Scheme) (CoreBenchEntry, error) {
	cfg, ccfg := resolve(p, compiler.Config{}, nil)
	prog, err := workload.Build(p)
	if err != nil {
		return CoreBenchEntry{}, err
	}
	if sch.Instrumented {
		res, err := compiler.Compile(prog, ccfg)
		if err != nil {
			return CoreBenchEntry{}, fmt.Errorf("%s/%s: %w", p.Suite, p.Name, err)
		}
		prog = res.Prog
	}
	run := func(naive bool) (*machine.System, float64, error) {
		sys, err := machine.NewSystem(prog, cfg, sch)
		if err != nil {
			return nil, 0, err
		}
		sys.SetNaiveStepper(naive)
		start := time.Now()
		if err := sys.RunContext(ctx, MaxRunCycles); err != nil {
			return nil, 0, fmt.Errorf("%s/%s under %s: %w", p.Suite, p.Name, sch.Name, err)
		}
		return sys, time.Since(start).Seconds(), nil
	}
	nSys, nWall, err := run(true)
	if err != nil {
		return CoreBenchEntry{}, err
	}
	fSys, fWall, err := run(false)
	if err != nil {
		return CoreBenchEntry{}, err
	}
	if !reflect.DeepEqual(nSys.Stats, fSys.Stats) || !nSys.PM().Equal(fSys.PM()) ||
		!reflect.DeepEqual(nSys.Output, fSys.Output) {
		return CoreBenchEntry{}, fmt.Errorf(
			"corebench: %s/%s under %s: fast path diverges from the naive stepper", p.Suite, p.Name, sch.Name)
	}
	skipped, jumps := fSys.FastForwardStats()
	e := CoreBenchEntry{
		Suite: string(p.Suite), App: p.Name, Scheme: sch.Name,
		Cycles:       fSys.Stats.Cycles,
		NaiveWallSec: nWall, FastWallSec: fWall,
		FFJumps: jumps,
	}
	if nWall > 0 {
		e.NaiveCPS = float64(e.Cycles) / nWall
	}
	if fWall > 0 {
		e.FastCPS = float64(e.Cycles) / fWall
		e.Speedup = nWall / fWall
	}
	if e.Cycles > 0 {
		e.FFRatio = float64(skipped) / float64(e.Cycles)
	}
	return e, nil
}

// String renders the benchmark as an aligned table.
func (r *CoreBenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Event/epoch stepper benchmark (naive vs fast, byte-identical verified)\n")
	fmt.Fprintf(&b, "%-8s %-10s %-10s %12s %10s %10s %8s %6s\n",
		"suite", "app", "scheme", "cycles", "naiveMc/s", "fastMc/s", "speedup", "ff%")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%-8s %-10s %-10s %12d %10.2f %10.2f %7.2fx %5.1f%%\n",
			e.Suite, e.App, e.Scheme, e.Cycles,
			e.NaiveCPS/1e6, e.FastCPS/1e6, e.Speedup, e.FFRatio*100)
	}
	fmt.Fprintf(&b, "geomean speedup: %.2fx\n", r.GeomeanSpeedup)
	return b.String()
}
