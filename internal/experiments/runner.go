// Package experiments reproduces every table and figure of the paper's
// evaluation (§V): one driver per result, all running the same machine with
// different persistence schemes and configuration sweeps, over the
// synthetic application profiles of internal/workload.
//
// Capacity scaling: the paper simulates Table I capacities (16 MB L2, 4 GB
// DRAM cache) against full benchmark footprints. Simulating gigabyte
// footprints is pointless here, so the harness scales the capacity-class
// parameters down by a constant factor (L2 16 MB → 2 MB, DRAM cache 4 GB →
// 512 MB) and sizes the workload footprints to preserve each application's
// residency class (L1-resident / L2-resident / DRAM-cache-resident). All
// latencies, queue depths and bandwidths stay at their Table I values, so
// the persistence behaviour under study is untouched. See EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"lightwsp/internal/baseline"
	"lightwsp/internal/compiler"
	"lightwsp/internal/core"
	"lightwsp/internal/machine"
	"lightwsp/internal/workload"
)

// MaxRunCycles bounds any single simulation.
const MaxRunCycles = 2_000_000_000

// ScaledConfig returns the Table I configuration with capacities scaled
// down 8× (see the package comment); everything else is Table I verbatim.
func ScaledConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.L2Size = 2 << 20
	cfg.DRAMCacheSize = 512 << 20
	return cfg
}

// Runner executes and memoizes simulation runs. Results are keyed by
// (application, scheme, configuration), so experiments sharing runs — every
// figure needs the baseline — pay for them once.
type Runner struct {
	cache map[string]*machine.Stats
	// Quiet mode suppresses progress output.
	Quiet bool
	// Progress, if non-nil, receives one line per fresh (uncached) run.
	Progress func(string)
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{cache: map[string]*machine.Stats{}}
}

// Mutator tweaks a configuration before a run (sweep parameter).
type Mutator func(*machine.Config)

// Run executes profile p under scheme sch with the scaled configuration,
// optionally mutated, and returns the run's statistics. Instrumented
// schemes compile the program first; ccfg.StoreThreshold zero means half
// the WPQ size (§IV-A).
func (r *Runner) Run(p workload.Profile, sch machine.Scheme, ccfg compiler.Config, muts ...Mutator) (*machine.Stats, error) {
	cfg := ScaledConfig()
	cfg.Threads = p.Threads
	if cfg.Threads > cfg.Cores {
		cfg.Cores = cfg.Threads
	}
	for _, m := range muts {
		m(&cfg)
	}
	if ccfg.StoreThreshold == 0 {
		ccfg.StoreThreshold = cfg.WPQEntries / 2
		ccfg.MaxUnroll = compiler.DefaultConfig().MaxUnroll
	}
	key := fmt.Sprintf("%s/%s|%s|%+v|%+v", p.Suite, p.Name, sch.Name, cfg, ccfg)
	if st, ok := r.cache[key]; ok {
		return st, nil
	}

	prog, err := workload.Build(p)
	if err != nil {
		return nil, err
	}
	if sch.Instrumented {
		res, err := compiler.Compile(prog, ccfg)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", p.Suite, p.Name, err)
		}
		prog = res.Prog
	}
	sys, err := machine.NewSystem(prog, cfg, sch)
	if err != nil {
		return nil, err
	}
	if !sys.Run(MaxRunCycles) {
		return nil, fmt.Errorf("%s/%s under %s exceeded %d cycles", p.Suite, p.Name, sch.Name, uint64(MaxRunCycles))
	}
	st := sys.Stats
	r.cache[key] = &st
	if r.Progress != nil {
		r.Progress(fmt.Sprintf("ran %-8s %-12s %-12s %12d cycles", p.Suite, p.Name, sch.Name, st.Cycles))
	}
	return &st, nil
}

// Slowdown returns cycles(sch)/cycles(baseline) for one profile.
func (r *Runner) Slowdown(p workload.Profile, sch machine.Scheme, ccfg compiler.Config, muts ...Mutator) (float64, error) {
	base, err := r.Run(p, baseline.Baseline(), compiler.Config{}, muts...)
	if err != nil {
		return 0, err
	}
	st, err := r.Run(p, sch, ccfg, muts...)
	if err != nil {
		return 0, err
	}
	return float64(st.Cycles) / float64(base.Cycles), nil
}

// LightWSP returns the LightWSP scheme (re-exported for harness brevity).
func LightWSP() machine.Scheme { return core.Scheme() }

// CXLPreset is one row of Table III: a CXL-attached memory device replacing
// the iMC-attached PM.
type CXLPreset struct {
	Name string
	// ReadLat and WriteLat are device latencies in cycles (2 GHz).
	ReadLat, WriteLat uint64
	// WriteInterval is the cycles per 8-byte persist write, derived from
	// the device's write bandwidth.
	WriteInterval uint64
}

// CXLPresets returns the four configurations of Table III. Latencies are
// the paper's numbers converted at 2 GHz; write intervals derive from each
// device's bandwidth (CXL-PMEM: Optane's 2.3 GB/s write path).
func CXLPresets() []CXLPreset {
	return []CXLPreset{
		{Name: "CXL-I", ReadLat: 316, WriteLat: 240, WriteInterval: 1},    // DDR5-4800, 38.4 GB/s
		{Name: "CXL-II", ReadLat: 446, WriteLat: 278, WriteInterval: 2},   // DDR4-2400, 19.2 GB/s
		{Name: "CXL-III", ReadLat: 696, WriteLat: 482, WriteInterval: 2},  // DDR4-3200 soft IP, 25.6 GB/s
		{Name: "CXL-PMem", ReadLat: 490, WriteLat: 320, WriteInterval: 7}, // Optane behind CXL
	}
}

// Apply returns a Mutator installing the preset.
func (c CXLPreset) Apply() Mutator {
	return func(cfg *machine.Config) {
		cfg.PMReadLat = c.ReadLat
		cfg.PMWriteLat = c.WriteLat
		cfg.PMWriteInterval = c.WriteInterval
	}
}
