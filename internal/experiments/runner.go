// Package experiments reproduces every table and figure of the paper's
// evaluation (§V): one driver per result, all running the same machine with
// different persistence schemes and configuration sweeps, over the
// synthetic application profiles of internal/workload.
//
// The evaluation grid — ~38 application profiles × schemes × configuration
// sweeps — is embarrassingly parallel: every simulation is deterministic
// and shares no state with any other. The Runner exploits that end to end:
// drivers declare their full run set up front with Prefetch, distinct runs
// fan out across a GOMAXPROCS-sized worker pool, concurrent requests for
// the same run share one in-flight simulation, and completed results are
// memoized in memory and (optionally) persisted to an on-disk cache so
// repeated invocations skip finished simulations entirely. Parallelism
// never changes a reproduced number: results are keyed by the canonical
// run key (key.go) and each driver aggregates memoized results in its own
// deterministic order.
//
// Capacity scaling: the paper simulates Table I capacities (16 MB L2, 4 GB
// DRAM cache) against full benchmark footprints. Simulating gigabyte
// footprints is pointless here, so the harness scales the capacity-class
// parameters down by a constant factor (L2 16 MB → 2 MB, DRAM cache 4 GB →
// 512 MB) and sizes the workload footprints to preserve each application's
// residency class (L1-resident / L2-resident / DRAM-cache-resident). All
// latencies, queue depths and bandwidths stay at their Table I values, so
// the persistence behaviour under study is untouched. See EXPERIMENTS.md.
package experiments

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"lightwsp/internal/baseline"
	"lightwsp/internal/compiler"
	"lightwsp/internal/core"
	"lightwsp/internal/machine"
	"lightwsp/internal/metrics"
	"lightwsp/internal/obs"
	"lightwsp/internal/probe"
	"lightwsp/internal/workload"
	"lightwsp/internal/wsperr"
)

// MaxRunCycles bounds any single simulation.
const MaxRunCycles = 2_000_000_000

// CacheDirEnv names the environment variable that, when set, enables the
// persistent on-disk result cache for every new Runner.
const CacheDirEnv = "LIGHTWSP_CACHE_DIR"

// ScaledConfig returns the Table I configuration with capacities scaled
// down 8× (see the package comment); everything else is Table I verbatim.
func ScaledConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.L2Size = 2 << 20
	cfg.DRAMCacheSize = 512 << 20
	return cfg
}

// Counters snapshots a Runner's cache effectiveness. Fresh+DiskHits is the
// number of distinct simulations the Runner resolved; MemHits counts Run
// calls served without touching disk or the simulator.
type Counters struct {
	// Fresh is the number of simulations actually executed.
	Fresh int
	// DiskHits is the number of distinct runs loaded from the disk cache.
	DiskHits int
	// MemHits is the number of Run calls served from the in-memory memo
	// table or joined onto an already-in-flight simulation.
	MemHits int
	// LeaseJoins is the number of distinct runs resolved by waiting on
	// another node's lease-held simulation and loading its published result
	// — the cross-node singleflight path. Each is also counted in DiskHits
	// (the result arrives through the store).
	LeaseJoins int
}

// Runner executes and memoizes simulation runs. Results are keyed by the
// canonical run key over (profile, scheme, machine config, compiler
// config), so experiments sharing runs — every figure needs the baseline —
// pay for them once.
//
// A Runner is safe for concurrent use. Simulations fan out over a worker
// pool sized by GOMAXPROCS (SetWorkers overrides); two callers requesting
// the same key share a single in-flight simulation. Configure the Runner
// (SetWorkers, SetCacheDir, SetProgress) before the first Run.
//
// A Runner is a light handle over shared state: WithContext returns a new
// handle bound to a request context that shares every cache, counter and
// pool slot with the original — the serving layer hands each request a
// context-scoped view of the one process-wide Runner.
type Runner struct {
	s   *runnerState
	ctx context.Context
}

// runnerState is the memoization state every Runner handle shares.
type runnerState struct {
	mu          sync.Mutex
	cache       map[string]*machine.Stats
	inflight    map[string]*inflightRun
	workerPool  *Pool
	workers     int
	disk        *diskCache
	counters    Counters
	manifests   map[string]RunManifest
	timelineDir string

	progressMu sync.Mutex
	progress   func(string)
}

// inflightRun is one executing simulation plus the callers waiting on it.
// The run executes under its own detached context; cancel fires only when
// the last waiter abandons it, so one impatient client never kills a
// simulation other clients still want.
type inflightRun struct {
	done   chan struct{}
	st     *machine.Stats
	err    error
	cancel context.CancelFunc
	// waiters is guarded by runnerState.mu.
	waiters int
}

// NewRunner returns an empty runner with a GOMAXPROCS-sized worker pool.
// If LIGHTWSP_CACHE_DIR is set, the persistent disk cache is enabled there.
func NewRunner() *Runner {
	r := &Runner{
		s: &runnerState{
			cache:     map[string]*machine.Stats{},
			inflight:  map[string]*inflightRun{},
			workers:   runtime.GOMAXPROCS(0),
			manifests: map[string]RunManifest{},
		},
		ctx: context.Background(),
	}
	if dir := os.Getenv(CacheDirEnv); dir != "" {
		r.s.disk = newDiskCache(dir)
	}
	return r
}

// WithContext returns a Runner handle bound to ctx, sharing all memoization
// state, counters and pool capacity with r. Runs started through the handle
// honor ctx at cycle-batch granularity; a run several handles wait on is
// canceled only when every waiter's context has ended.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Runner{s: r.s, ctx: ctx}
}

// SetWorkers sets the worker-pool size (minimum 1). Call before Run.
func (r *Runner) SetWorkers(n int) {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if n < 1 {
		n = 1
	}
	r.s.workers = n
	r.s.workerPool = nil
}

// SetPool makes the Runner fan simulations out over a caller-owned pool, so
// one semaphore can govern the Runner and other workloads (crash-fuzzing
// campaigns, streaming runs) together. Call before Run.
func (r *Runner) SetPool(p *Pool) {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	r.s.workerPool = p
}

// Pool returns the Runner's worker pool, building it on first use.
func (r *Runner) Pool() *Pool {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return r.s.pool()
}

// SetCacheDir enables the persistent disk cache under dir, overriding
// LIGHTWSP_CACHE_DIR; an empty dir disables it. Call before Run.
func (r *Runner) SetCacheDir(dir string) {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if dir == "" {
		r.s.disk = nil
		return
	}
	r.s.disk = newDiskCache(dir)
}

// SetStore points the Runner's persistent result cache at an arbitrary
// Store — typically a TieredStore whose L2 is shared with the rest of a
// fleet. When the store also implements Leaser, fresh simulations go
// through the fleet-wide lease gate (cross-node singleflight): the first
// node to claim a run key simulates, every other node waits and loads the
// leader's published result. A nil store disables the cache. Call before
// Run; overrides SetCacheDir.
func (r *Runner) SetStore(st Store) {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if st == nil {
		r.s.disk = nil
		return
	}
	r.s.disk = newDiskCacheStore(st)
}

// SetStorageObserver routes the disk cache's integrity/failure logging and
// counters (quarantines, checksum failures, write errors). Call after
// SetCacheDir/SetStore — enabling or moving the cache resets the observer —
// and before Run.
func (r *Runner) SetStorageObserver(log *slog.Logger, counters *StorageCounters) {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if r.s.disk != nil {
		if o, ok := r.s.disk.blobs.(observable); ok {
			o.SetObserver(log, counters)
		}
	}
}

// SetTimelineDir enables per-run Chrome trace-event timelines: every fresh
// simulation writes dir/<hash12>.trace.json (empty disables). Call before
// Run. Timelines are a fresh-simulation artifact — disk-cache hits skip the
// simulation and therefore produce none.
func (r *Runner) SetTimelineDir(dir string) {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	r.s.timelineDir = dir
}

// SetProgress installs a progress callback receiving one line per distinct
// resolved run: its identity (suite/app/scheme plus the run-key hash),
// whether it was freshly simulated or loaded from the disk cache, and its
// wall time. Calls are serialized. Pass nil to disable.
func (r *Runner) SetProgress(f func(string)) {
	r.s.progressMu.Lock()
	defer r.s.progressMu.Unlock()
	r.s.progress = f
}

// Counters returns a snapshot of the runner's cache counters.
func (r *Runner) Counters() Counters {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return r.s.counters
}

// Manifests returns one provenance record per distinct resolved run, in a
// deterministic order (suite, app, scheme, key hash).
func (r *Runner) Manifests() []RunManifest {
	r.s.mu.Lock()
	out := make([]RunManifest, 0, len(r.s.manifests))
	for _, m := range r.s.manifests {
		out = append(out, m)
	}
	r.s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Suite != b.Suite {
			return a.Suite < b.Suite
		}
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		return a.KeyHash < b.KeyHash
	})
	return out
}

// ManifestByHash returns the provenance record whose KeyHash matches, if this
// process resolved such a run. The serving layer uses it to enrich run
// lifecycle logs and the /v1/debug/run endpoint.
func (r *Runner) ManifestByHash(hash string) (RunManifest, bool) {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	for _, m := range r.s.manifests {
		if m.KeyHash == hash {
			return m, true
		}
	}
	return RunManifest{}, false
}

func (s *runnerState) noteManifest(key string, m RunManifest) {
	s.mu.Lock()
	s.manifests[key] = m
	s.mu.Unlock()
}

// pool returns the worker pool, building it on first use; the caller must
// hold s.mu.
func (s *runnerState) pool() *Pool {
	if s.workerPool == nil {
		s.workerPool = NewPool(s.workers)
	}
	return s.workerPool
}

// Mutator tweaks a configuration before a run (sweep parameter).
type Mutator func(*machine.Config)

// RunSpec names one simulation: the arguments of a Run call. Figure drivers
// build their full run set as RunSpecs and hand it to Prefetch so all
// distinct simulations fan out at once.
type RunSpec struct {
	Profile  workload.Profile
	Scheme   machine.Scheme
	Compiler compiler.Config
	Muts     []Mutator
}

// spec builds a RunSpec (driver shorthand).
func spec(p workload.Profile, sch machine.Scheme, ccfg compiler.Config, muts ...Mutator) RunSpec {
	return RunSpec{Profile: p, Scheme: sch, Compiler: ccfg, Muts: muts}
}

// slowdownSpecs returns the two runs a Slowdown needs: the non-persistent
// baseline and the scheme under test, under the same mutators.
func slowdownSpecs(p workload.Profile, sch machine.Scheme, ccfg compiler.Config, muts ...Mutator) []RunSpec {
	return []RunSpec{
		spec(p, baseline.Baseline(), compiler.Config{}, muts...),
		spec(p, sch, ccfg, muts...),
	}
}

// resolve derives the effective machine and compiler configurations of a
// run, exactly as Run will execute it: the scaled Table I config with the
// profile's thread count, then the mutators, then the §IV-A store-threshold
// default (half the WPQ size).
func resolve(p workload.Profile, ccfg compiler.Config, muts []Mutator) (machine.Config, compiler.Config) {
	cfg := ScaledConfig()
	cfg.Threads = p.Threads
	if cfg.Threads > cfg.Cores {
		cfg.Cores = cfg.Threads
	}
	for _, m := range muts {
		m(&cfg)
	}
	if ccfg.StoreThreshold == 0 {
		ccfg.StoreThreshold = cfg.WPQEntries / 2
		ccfg.MaxUnroll = compiler.DefaultConfig().MaxUnroll
	}
	return cfg, ccfg
}

// Prefetch resolves every spec's run key, deduplicates, and executes all
// distinct runs concurrently on the worker pool, returning the first error.
// After a successful Prefetch, the driver's subsequent Run calls are
// in-memory cache hits, so its aggregation order — and therefore every
// reproduced number — is identical to a sequential execution.
func (r *Runner) Prefetch(specs []RunSpec) error {
	seen := map[string]bool{}
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for _, s := range specs {
		cfg, ccfg := resolve(s.Profile, s.Compiler, s.Muts)
		key := runKey(s.Profile, s.Scheme, cfg, ccfg)
		if seen[key] {
			continue
		}
		seen[key] = true
		wg.Add(1)
		s := s
		go func() {
			defer wg.Done()
			if _, err := r.Run(s.Profile, s.Scheme, s.Compiler, s.Muts...); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Run executes profile p under scheme sch with the scaled configuration,
// optionally mutated, and returns the run's statistics. Instrumented
// schemes compile the program first; ccfg.StoreThreshold zero means half
// the WPQ size (§IV-A). The returned Stats are shared and must be treated
// as read-only.
//
// Run honors the handle's context (WithContext): while waiting — for a pool
// slot, or on another caller's in-flight simulation of the same key — a
// context end returns an error wrapping wsperr.ErrCanceled immediately; the
// simulation itself is canceled at cycle-batch granularity once no caller is
// waiting on it. Canceled runs are never cached.
func (r *Runner) Run(p workload.Profile, sch machine.Scheme, ccfg compiler.Config, muts ...Mutator) (*machine.Stats, error) {
	cfg, ccfg := resolve(p, ccfg, muts)
	key := runKey(p, sch, cfg, ccfg)
	s := r.s

	s.mu.Lock()
	if st, ok := s.cache[key]; ok {
		s.counters.MemHits++
		s.mu.Unlock()
		return st, nil
	}
	fl, joined := s.inflight[key]
	if joined {
		s.counters.MemHits++
		fl.waiters++
		s.mu.Unlock()
	} else {
		// First caller for this key: start the run under its own detached
		// context so it outlives any single waiter, then wait like everyone
		// else. cancel fires when the last waiter gives up. The detachment
		// drops the caller's context values, so the telemetry identity —
		// trace ID, flight recorder — is carried across explicitly; that is
		// how a served run's manifest, timeline and flight dump all end up
		// tagged with the first requester's X-LightWSP-Trace ID.
		execCtx, cancel := context.WithCancel(obs.CarryTelemetry(context.Background(), r.ctx))
		fl = &inflightRun{done: make(chan struct{}), cancel: cancel, waiters: 1}
		s.inflight[key] = fl
		pool := s.pool()
		s.mu.Unlock()
		go s.runInflight(execCtx, pool, fl, key, p, sch, cfg, ccfg)
	}

	select {
	case <-fl.done:
		return fl.st, fl.err
	case <-r.ctx.Done():
		s.mu.Lock()
		fl.waiters--
		abandoned := fl.waiters == 0
		s.mu.Unlock()
		if abandoned {
			fl.cancel()
		}
		return nil, fmt.Errorf("experiments: %s/%s under %s: %w: %v",
			p.Suite, p.Name, sch.Name, wsperr.ErrCanceled, r.ctx.Err())
	}
}

// runInflight resolves one distinct run on the worker pool and publishes the
// outcome to every waiter.
func (s *runnerState) runInflight(ctx context.Context, pool *Pool, fl *inflightRun, key string, p workload.Profile, sch machine.Scheme, cfg machine.Config, ccfg compiler.Config) {
	var st *machine.Stats
	var fromDisk bool
	err := pool.DoCtx(ctx, func() {
		st, fromDisk, fl.err = s.execute(ctx, key, p, sch, cfg, ccfg)
	})
	if err != nil {
		fl.err = err // canceled while waiting for a worker slot
	}
	s.mu.Lock()
	delete(s.inflight, key)
	if fl.err == nil {
		s.cache[key] = st
		if fromDisk {
			s.counters.DiskHits++
		} else {
			s.counters.Fresh++
		}
	}
	s.mu.Unlock()
	fl.st = st
	close(fl.done)
	fl.cancel()
}

// execute resolves one distinct run: disk-cache load if enabled, else a
// full simulation (persisted to the disk cache afterwards) behind the
// fleet-wide lease gate when the store arbitrates leases. Either way it
// records a RunManifest carrying the run's provenance and metrics.
func (s *runnerState) execute(ctx context.Context, key string, p workload.Profile, sch machine.Scheme, cfg machine.Config, ccfg compiler.Config) (*machine.Stats, bool, error) {
	hash := keyHash(key)
	start := time.Now()
	if s.disk != nil {
		if st, man, ok := s.disk.load(key, hash); ok {
			man.Source = "cached"
			man.WallSeconds = time.Since(start).Seconds()
			man.TraceID = obs.TraceID(ctx)
			s.noteManifest(key, man)
			s.progressLine(p, sch, hash, "cached", time.Since(start), st)
			return st, true, nil
		}
		// Cross-node singleflight: when the store can arbitrate leases,
		// exactly one node in the fleet simulates this key; everyone else
		// waits for the leader's published result.
		if ls, ok := s.disk.leaser(); ok {
			st, man, joined, release, err := s.leaseGate(ctx, ls, key, hash)
			if err != nil {
				return nil, false, err
			}
			if joined {
				man.Source = "fleet"
				man.WallSeconds = time.Since(start).Seconds()
				man.TraceID = obs.TraceID(ctx)
				s.noteManifest(key, man)
				s.progressLine(p, sch, hash, "fleet", time.Since(start), st)
				s.mu.Lock()
				s.counters.LeaseJoins++
				s.mu.Unlock()
				return st, true, nil
			}
			defer release()
		}
	}
	st, snap, err := simulate(ctx, p, sch, cfg, ccfg, s.timelinePath(hash))
	if err != nil {
		return nil, false, err
	}
	man := RunManifest{
		SchemaVersion: RunCodec.Version,
		KeyHash:       hash,
		Suite:         string(p.Suite),
		App:           p.Name,
		Scheme:        sch.Name,
		Source:        "fresh",
		WallSeconds:   time.Since(start).Seconds(),
		Cycles:        st.Cycles,
		GitDescribe:   gitDescribe(),
		TraceID:       obs.TraceID(ctx),
		Metrics:       snap,
	}
	if s.disk != nil {
		s.disk.store(key, hash, st, man)
	}
	s.noteManifest(key, man)
	s.progressLine(p, sch, hash, "fresh", time.Since(start), st)
	return st, false, nil
}

// Lease-gate tuning: a run lease is renewed at a third of its TTL while the
// leader simulates, so followers only break it when the leader actually
// died. The failsafe bounds how long a follower trusts a lease it can
// neither take nor observe results from (a broken shared store) before
// simulating redundantly — fail open, never deadlock.
var (
	runLeaseTTL       = 30 * time.Second
	leasePollInterval = 20 * time.Millisecond
	leaseFailsafe     = 3 * runLeaseTTL
)

// leaseOwner returns a random identity for one lease claim.
func leaseOwner() string {
	var b [8]byte
	crand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// leaseGate is the cross-node singleflight. It returns either
// joined=true with another node's result loaded from the shared store, or
// joined=false with the lease held — the caller simulates, publishes, and
// must call release. The lease is renewed in the background until release.
// A context end while waiting surfaces as an error wrapping
// wsperr.ErrCanceled, like every other wait in Run.
func (s *runnerState) leaseGate(ctx context.Context, ls Leaser, key, hash string) (*machine.Stats, RunManifest, bool, func(), error) {
	name := "run-" + hash
	owner := leaseOwner()
	deadline := time.Now().Add(leaseFailsafe)
	for !ls.Claim(name, owner, runLeaseTTL) {
		// Follower: the leader holds the lease. Poll for its published
		// result; Claim above breaks expired leases, so a dead leader
		// promotes the first poller to leadership.
		select {
		case <-ctx.Done():
			return nil, RunManifest{}, false, nil, fmt.Errorf("experiments: waiting on fleet leader for %s: %w: %v",
				hash[:12], wsperr.ErrCanceled, ctx.Err())
		case <-time.After(leasePollInterval):
		}
		if st, man, ok := s.disk.load(key, hash); ok {
			return st, man, true, nil, nil
		}
		if time.Now().After(deadline) {
			// The arbiter is unreachable or wedged: simulate without the
			// lease rather than wait forever. Duplicate work, never a stall.
			return nil, RunManifest{}, false, func() {}, nil
		}
	}
	// Won the claim. Re-check the store first: a leader that finished and
	// released between our load miss and this claim already published the
	// result, and re-simulating it would defeat the whole gate.
	if st, man, ok := s.disk.load(key, hash); ok {
		ls.Release(name, owner)
		return st, man, true, nil, nil
	}
	// Leader: hold the lease for the duration of the simulation.
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(runLeaseTTL / 3)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if !ls.Renew(name, owner, runLeaseTTL) {
					return // lease lost; worst case a follower duplicates the work
				}
			}
		}
	}()
	release := func() {
		close(stop)
		ls.Release(name, owner)
	}
	return nil, RunManifest{}, false, release, nil
}

// timelinePath returns where a fresh run's Chrome trace goes, or "".
func (s *runnerState) timelinePath(hash string) string {
	if s.timelineDir == "" {
		return ""
	}
	return filepath.Join(s.timelineDir, hash[:12]+".trace.json")
}

func (s *runnerState) progressLine(p workload.Profile, sch machine.Scheme, hash, src string, d time.Duration, st *machine.Stats) {
	s.progressMu.Lock()
	defer s.progressMu.Unlock()
	if s.progress == nil {
		return
	}
	s.progress(fmt.Sprintf("%-6s %-8s %-12s %-12s %8.2fs %12d cycles  %s",
		src, p.Suite, p.Name, sch.Name, d.Seconds(), st.Cycles, hash[:12]))
}

// simulate performs one simulation with fully resolved configurations. A
// metrics sink rides along on every run (its snapshot feeds the manifest);
// a non-empty timelinePath additionally buffers the full event stream and
// writes it as Chrome trace-event JSON. Cancellation is honored at
// cycle-batch granularity; run failures wrap the wsperr sentinels.
func simulate(ctx context.Context, p workload.Profile, sch machine.Scheme, cfg machine.Config, ccfg compiler.Config, timelinePath string) (*machine.Stats, metrics.Snapshot, error) {
	prog, err := workload.Build(p)
	if err != nil {
		return nil, metrics.Snapshot{}, err
	}
	if sch.Instrumented {
		res, err := compiler.Compile(prog, ccfg)
		if err != nil {
			return nil, metrics.Snapshot{}, fmt.Errorf("%s/%s: %w", p.Suite, p.Name, err)
		}
		prog = res.Prog
	}
	sys, err := machine.NewSystem(prog, cfg, sch)
	if err != nil {
		return nil, metrics.Snapshot{}, err
	}
	m := metrics.New()
	// The sink stack: the per-run metrics accumulator always rides along;
	// a request-scoped flight recorder (obs.WithRecorder) and a timeline
	// buffer join it when asked for. probe.Multi collapses the common
	// metrics-only case back to a single direct sink.
	sinks := []probe.Sink{m}
	if rec := obs.Recorder(ctx); rec != nil {
		sinks = append(sinks, rec)
	}
	var tl *probe.Timeline
	if timelinePath != "" {
		tl = probe.NewTimeline(0)
		tl.TraceID = obs.TraceID(ctx)
		sinks = append(sinks, tl)
	}
	sys.SetProbeSink(probe.Multi(sinks...))
	if err := sys.RunContext(ctx, MaxRunCycles); err != nil {
		return nil, metrics.Snapshot{}, fmt.Errorf("%s/%s under %s: %w", p.Suite, p.Name, sch.Name, err)
	}
	if tl != nil {
		if err := os.MkdirAll(filepath.Dir(timelinePath), 0o755); err != nil {
			return nil, metrics.Snapshot{}, err
		}
		if err := tl.WriteFile(timelinePath); err != nil {
			return nil, metrics.Snapshot{}, err
		}
	}
	st := sys.Stats
	return &st, m.Snapshot(), nil
}

// Slowdown returns cycles(sch)/cycles(baseline) for one profile.
func (r *Runner) Slowdown(p workload.Profile, sch machine.Scheme, ccfg compiler.Config, muts ...Mutator) (float64, error) {
	base, err := r.Run(p, baseline.Baseline(), compiler.Config{}, muts...)
	if err != nil {
		return 0, err
	}
	st, err := r.Run(p, sch, ccfg, muts...)
	if err != nil {
		return 0, err
	}
	return float64(st.Cycles) / float64(base.Cycles), nil
}

// LightWSP returns the LightWSP scheme (re-exported for harness brevity).
func LightWSP() machine.Scheme { return core.Scheme() }

// CXLPreset is one row of Table III: a CXL-attached memory device replacing
// the iMC-attached PM.
type CXLPreset struct {
	Name string
	// ReadLat and WriteLat are device latencies in cycles (2 GHz).
	ReadLat, WriteLat uint64
	// WriteInterval is the cycles per 8-byte persist write, derived from
	// the device's write bandwidth.
	WriteInterval uint64
}

// CXLPresets returns the four configurations of Table III. Latencies are
// the paper's numbers converted at 2 GHz; write intervals derive from each
// device's bandwidth (CXL-PMEM: Optane's 2.3 GB/s write path).
func CXLPresets() []CXLPreset {
	return []CXLPreset{
		{Name: "CXL-I", ReadLat: 316, WriteLat: 240, WriteInterval: 1},    // DDR5-4800, 38.4 GB/s
		{Name: "CXL-II", ReadLat: 446, WriteLat: 278, WriteInterval: 2},   // DDR4-2400, 19.2 GB/s
		{Name: "CXL-III", ReadLat: 696, WriteLat: 482, WriteInterval: 2},  // DDR4-3200 soft IP, 25.6 GB/s
		{Name: "CXL-PMem", ReadLat: 490, WriteLat: 320, WriteInterval: 7}, // Optane behind CXL
	}
}

// Apply returns a Mutator installing the preset.
func (c CXLPreset) Apply() Mutator {
	return func(cfg *machine.Config) {
		cfg.PMReadLat = c.ReadLat
		cfg.PMWriteLat = c.WriteLat
		cfg.PMWriteInterval = c.WriteInterval
	}
}
