package experiments

import "encoding/json"

// Codec names one versioned on-disk JSON schema. Every artifact this repo
// persists and later trusts — cached run stats, memoized crash-fuzzing
// verdicts, repro files — carries a (schema, version) stamp from the table
// below, and the Load/Store helpers wrap payloads in a common envelope that
// also embeds the full content key. A reader that finds the wrong schema
// name, the wrong version, the wrong key, or an undecodable payload treats
// the entry as a miss and evicts it — never as a result. Beneath the
// envelope, BlobCache seals every file with a CRC-32C integrity trailer
// (internal/hostfs), so the envelope defends against semantic staleness and
// the seal against physical corruption: a bit flip that still decodes as a
// plausible envelope quarantines instead of loading.
//
// Before this table existed the repo had three ad-hoc version constants
// (disk-cache entries, crash-fuzz repro files, the run key) that had to be
// bumped in lock-step by convention; now each schema's version lives in
// exactly one place and the envelope makes cross-schema reads structurally
// impossible (a verdict blob can never decode as run stats, whatever the
// hash collision).
type Codec struct {
	// Schema is the artifact family, e.g. "run-stats".
	Schema string
	// Version is the family's current schema version; bump it whenever the
	// meaning of a persisted payload changes.
	Version int
}

// The schema versions, one const per family. These are the only version
// numbers in the repo; everything else (run keys, manifests, repro files,
// cache envelopes) derives from them.
const (
	// runSchemaVersion covers the canonical run key, cached run stats and
	// run manifests.
	//
	// v2: disk entries carry a RunManifest (provenance + metrics snapshot).
	// v3: machine.Config grew the persist-fabric robustness knobs
	// (RetryTimeout, RetryBudget, DegradeDeadline, BrokenDupAcks);
	// envelope-based storage (pre-envelope flat entries read as a miss).
	runSchemaVersion = 3
	// verdictSchemaVersion covers memoized crash-fuzzing verdicts; it moves
	// with reproSchemaVersion because both describe the same replay
	// semantics.
	verdictSchemaVersion = 2
	// reproSchemaVersion covers self-contained crash-fuzzing repro files.
	reproSchemaVersion = 2
	// sessionSchemaVersion covers durable-session manifests (the per-session
	// list of snapshot refs).
	//
	// v2: refs carry the boot-event sequence number so resume can pick the
	// newest snapshot a client's last-seen milestone allows. A v1 manifest
	// (refs without boot seqs) reads as a miss, and the session falls back to
	// booting fresh and replaying its full journal — slower, never wrong.
	sessionSchemaVersion = 2
	// snapshotSchemaVersion covers content-addressed session snapshot blobs
	// (drained PM image + resume metadata).
	snapshotSchemaVersion = 1
)

// The codec table: one entry per persisted artifact family.
var (
	// RunCodec stores one simulation's Stats + RunManifest keyed by the
	// canonical run key (the Runner's disk cache).
	RunCodec = Codec{Schema: "run-stats", Version: runSchemaVersion}
	// VerdictCodec memoizes passing crash-fuzzing verdicts keyed by run key
	// + schedule + fault plan (internal/crashfuzz).
	VerdictCodec = Codec{Schema: "crashfuzz-verdict", Version: verdictSchemaVersion}
	// ReproCodec versions self-contained crash-fuzzing repro files
	// (internal/crashfuzz repro.go); repros keep their flat self-describing
	// layout for hand-editing, but their version number lives here.
	ReproCodec = Codec{Schema: "crashfuzz-repro", Version: reproSchemaVersion}
	// SessionCodec stores a durable session's manifest: its spec plus the
	// refs of its retained snapshots (session.go).
	SessionCodec = Codec{Schema: "session-manifest", Version: sessionSchemaVersion}
	// SnapshotCodec stores one durable session snapshot — the power-failure
	// crash image exported word by word, with the metadata needed to recover
	// and keep replaying the journal — keyed by content hash in the session
	// store's blob cache.
	SnapshotCodec = Codec{Schema: "session-snapshot", Version: snapshotSchemaVersion}
)

// codecEnvelope is the on-disk wrapper around every blob-cache payload.
type codecEnvelope struct {
	Schema  string          `json:"schema"`
	Version int             `json:"version"`
	Key     string          `json:"key,omitempty"`
	Payload json.RawMessage `json:"payload"`
}

// Load reads the entry named hash from b and decodes its payload into out.
// A missing entry is a plain miss; an entry whose schema, version or
// embedded key disagree — or whose payload does not decode — is stale (the
// format changed under it, or a hash collided) and is evicted before the
// miss is reported.
func (c Codec) Load(b Store, hash, key string, out any) bool {
	var env codecEnvelope
	if !b.ReadJSON(hash, &env) {
		b.Remove(hash) // corrupt or absent; removing an absent file is a no-op
		return false
	}
	if env.Schema != c.Schema || env.Version != c.Version || env.Key != key ||
		json.Unmarshal(env.Payload, out) != nil {
		b.Remove(hash)
		return false
	}
	return true
}

// Store wraps payload in the codec's envelope and persists it under hash.
// Best-effort, like all blob-cache writes.
func (c Codec) Store(b Store, hash, key string, payload any) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return
	}
	b.WriteJSON(hash, codecEnvelope{Schema: c.Schema, Version: c.Version, Key: key, Payload: raw})
}

// knownEnvelope reports whether env matches a current blob-cache codec —
// the keep-criterion Scrub uses.
func knownEnvelope(env codecEnvelope) bool {
	for _, c := range []Codec{RunCodec, VerdictCodec, SessionCodec, SnapshotCodec} {
		if env.Schema == c.Schema && env.Version == c.Version {
			return true
		}
	}
	return false
}
