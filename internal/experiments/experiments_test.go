package experiments

import (
	"strings"
	"testing"

	"lightwsp/internal/baseline"
	"lightwsp/internal/compiler"
	"lightwsp/internal/machine"
	"lightwsp/internal/mem"
	"lightwsp/internal/workload"
)

// The full figure drivers sweep all 39 applications and belong to the
// benchmark harness (bench_test.go at the repository root); these tests
// exercise every driver building block on small subsets so `go test` stays
// fast.

func TestScaledConfigPreservesLatencies(t *testing.T) {
	def, sc := machine.DefaultConfig(), ScaledConfig()
	if sc.L2Size >= def.L2Size || sc.DRAMCacheSize >= def.DRAMCacheSize {
		t.Fatal("capacity scaling missing")
	}
	if sc.PMReadLat != def.PMReadLat || sc.L2Lat != def.L2Lat || sc.WPQEntries != def.WPQEntries ||
		sc.PersistBytesPerCredit != def.PersistBytesPerCredit {
		t.Fatal("scaling must not touch latencies, queue sizes or bandwidths")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner()
	p, _ := workload.ByName(workload.CPU2006, "hmmer")
	a, err := r.Run(p, baseline.Baseline(), compiler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(p, baseline.Baseline(), compiler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical runs not memoized")
	}
	// A different mutator must miss the cache.
	c, err := r.Run(p, baseline.Baseline(), compiler.Config{}, func(c *machine.Config) { c.NUMAExtra++ })
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct configurations shared a cache entry")
	}
}

func TestSlowdownAboveOneForLightWSP(t *testing.T) {
	r := NewRunner()
	p, _ := workload.ByName(workload.CPU2006, "bzip2")
	sd, err := r.Slowdown(p, LightWSP(), compiler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sd < 1.0 || sd > 2.0 {
		t.Fatalf("bzip2 LightWSP slowdown = %.3f, outside sanity range", sd)
	}
}

func TestFig9ShapeHolds(t *testing.T) {
	// The Figure 9 driver is small enough (6 applications) to run whole:
	// the paper's headline shape — PSP loses badly without a DRAM cache,
	// LightWSP stays close to the baseline — must hold.
	r := NewRunner()
	res, err := Fig9(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 6 {
		t.Fatalf("fig9 apps = %d, want 6", len(res.Apps))
	}
	if res.Geo[0] <= res.Geo[1] {
		t.Fatalf("PSP (%.3f) must be slower than LightWSP (%.3f)", res.Geo[0], res.Geo[1])
	}
	if res.Geo[0] < 1.2 {
		t.Fatalf("PSP geomean %.3f too low: DRAM cache not mattering", res.Geo[0])
	}
	if !strings.Contains(res.String(), "libquan") {
		t.Fatal("fig9 table missing applications")
	}
}

func TestSweepEngineOnSubset(t *testing.T) {
	r := NewRunner()
	subset := ablationSet()[:2]
	res, err := sweep(r, "test sweep", []string{"a", "b"}, []sweepPoint{
		{ccfg: compiler.Config{StoreThreshold: 32, MaxUnroll: 4}},
		{ccfg: compiler.Config{StoreThreshold: 16, MaxUnroll: 4}},
	}, subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OverallGeo) != 2 {
		t.Fatalf("sweep columns = %d", len(res.OverallGeo))
	}
	for _, g := range res.OverallGeo {
		if g < 0.9 || g > 5 {
			t.Fatalf("sweep geomean %.3f out of sanity range", g)
		}
	}
	if !strings.Contains(res.String(), "test sweep") {
		t.Fatal("sweep table missing title")
	}
}

func TestCXLPresetsApply(t *testing.T) {
	presets := CXLPresets()
	if len(presets) != 4 {
		t.Fatalf("CXL presets = %d, want 4 (Table III)", len(presets))
	}
	for _, p := range presets {
		cfg := ScaledConfig()
		p.Apply()(&cfg)
		if cfg.PMReadLat != p.ReadLat || cfg.PMWriteInterval != p.WriteInterval {
			t.Fatalf("%s: preset not applied", p.Name)
		}
		if p.ReadLat <= 0 || p.WriteLat <= 0 {
			t.Fatalf("%s: degenerate latencies", p.Name)
		}
	}
	// CXL-PMem (Optane) must be the slowest write path.
	if presets[3].WriteInterval <= presets[0].WriteInterval {
		t.Fatal("CXL-PMem should have the narrowest write bandwidth")
	}
}

func TestHWCostMatchesPaper(t *testing.T) {
	res := HWCost(8, 2)
	if got := res.BytesPerCore["lightwsp"]; got != 0.5 {
		t.Fatalf("lightwsp cost = %g B/core, want 0.5 (§V-G4)", got)
	}
	if got := res.BytesPerCore["ppa"]; got != 337 {
		t.Fatalf("ppa cost = %g, want 337", got)
	}
	if got := res.BytesPerCore["capri"]; got != 54*1024 {
		t.Fatalf("capri cost = %g, want 54 KiB", got)
	}
	if !strings.Contains(res.String(), "lightwsp") {
		t.Fatal("table missing rows")
	}
}

func TestRecoverySweepSmall(t *testing.T) {
	res, err := RecoverySweep(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified != res.Injections || res.Verified == 0 {
		t.Fatalf("verified %d of %d injections", res.Verified, res.Injections)
	}
}

func TestAblationLRPOShape(t *testing.T) {
	r := NewRunner()
	res, err := AblationLRPO(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Geo[0] <= res.Geo[1] {
		t.Fatalf("naive sfence (%.3f) must be slower than LRPO (%.3f)", res.Geo[0], res.Geo[1])
	}
}

func TestOverflowRateSubset(t *testing.T) {
	r := NewRunner()
	p, _ := workload.ByName(workload.WHISPER, "tatp")
	rate, err := overflowRate(r, []workload.Profile{p}, func(c *machine.Config) {})
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0 {
		t.Fatalf("overflow rate = %f", rate)
	}
}

func TestAdversarialSnoopingRow(t *testing.T) {
	rates, conflicts, err := adversarialRow([]mem.VictimPolicy{mem.FullVictim, mem.StaleLoad})
	if err != nil {
		t.Fatal(err)
	}
	if conflicts == 0 {
		t.Fatal("adversarial pattern provoked no buffer conflicts")
	}
	if rates[1] <= rates[0] {
		t.Fatalf("stale-load mode (%.2f%%) not worse than snooping (%.2f%%)", rates[1], rates[0])
	}
}
